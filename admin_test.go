package pqs_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"pqs"
)

// TestAdminStatsEndpoint drives traffic through a TCP replica and checks the
// admin handler reports it: store keys and counters, transport frames, and
// codec activity.
func TestAdminStatsEndpoint(t *testing.T) {
	srv, err := pqs.ListenAndServe(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()

	tc, err := pqs.Dial(map[int]string{0: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	sys, err := pqs.New(pqs.Config{N: 1, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	client, err := pqs.NewClient(pqs.ClientConfig{System: sys, Transport: tc, WriterID: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := client.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Read(ctx, "k"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(admin.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: %s", resp.Status)
	}
	var st pqs.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID != 0 || st.Addr != srv.Addr() || st.Codec != "binary" {
		t.Errorf("identity: %+v", st)
	}
	if st.Store.Keys != 1 || st.Store.Applies == 0 || st.Store.Gets == 0 || st.Store.Shards == 0 {
		t.Errorf("store stats missing traffic: %+v", st.Store)
	}
	if st.Transport.FramesRead < 2 || st.Transport.FramesWritten < 2 || st.Transport.Conns != 1 {
		t.Errorf("transport stats missing traffic: %+v", st.Transport)
	}
	if st.WireCodec.MessagesEncoded == 0 || st.WireCodec.MessagesDecoded == 0 {
		t.Errorf("codec stats missing traffic: %+v", st.WireCodec)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime %v", st.UptimeSeconds)
	}

	health, err := http.Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz: %s", health.Status)
	}
}
