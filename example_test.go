package pqs_test

import (
	"context"
	"fmt"

	"pqs"
)

// ExampleNew shows how a target consistency guarantee resolves to a
// concrete construction with exact quality measures.
func ExampleNew() {
	sys, err := pqs.New(pqs.Config{N: 100, Epsilon: 1e-3, Mode: pqs.ModeBenign})
	if err != nil {
		panic(err)
	}
	fmt.Printf("quorum size: %d\n", sys.QuorumSize())
	fmt.Printf("load: %.2f\n", sys.Load())
	fmt.Printf("fault tolerance: %d of %d servers\n", sys.FaultTolerance(), sys.N())
	fmt.Printf("epsilon <= 1e-3: %v\n", sys.Epsilon() <= 1e-3)
	// Output:
	// quorum size: 23
	// load: 0.23
	// fault tolerance: 78 of 100 servers
	// epsilon <= 1e-3: true
}

// ExampleNewClient demonstrates the full write/read round trip on an
// in-process cluster.
func ExampleNewClient() {
	// Quorums of 16/30 guarantee intersection, making the example
	// deterministic; probabilistic sizes work the same way with ε risk.
	sys, err := pqs.New(pqs.Config{N: 30, Q: 16})
	if err != nil {
		panic(err)
	}
	cluster, err := pqs.NewLocalCluster(sys.N(), 1)
	if err != nil {
		panic(err)
	}
	client, err := pqs.NewClient(pqs.ClientConfig{
		System:    sys,
		Transport: cluster.Transport(),
		WriterID:  1,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	if _, err := client.Write(ctx, "greeting", []byte("hello, quorums")); err != nil {
		panic(err)
	}
	r, err := client.Read(ctx, "greeting")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s (stamp %s, vouched by at least 2 servers: %v)\n",
		r.Value, r.Stamp, r.Vouchers >= 2)
	// Output:
	// hello, quorums (stamp 1@1, vouched by at least 2 servers: true)
}

// ExampleSystem_FailProb evaluates availability at crash probabilities
// beyond what any strict quorum system survives.
func ExampleSystem_FailProb() {
	sys, err := pqs.New(pqs.Config{N: 400, Epsilon: 1e-3})
	if err != nil {
		panic(err)
	}
	for _, p := range []float64{0.5, 0.6, 0.7} {
		fmt.Printf("p=%.1f: F_p < 1e-9: %v (any strict system has F_p >= %.1f)\n",
			p, sys.FailProb(p) < 1e-9, p)
	}
	// Output:
	// p=0.5: F_p < 1e-9: true (any strict system has F_p >= 0.5)
	// p=0.6: F_p < 1e-9: true (any strict system has F_p >= 0.6)
	// p=0.7: F_p < 1e-9: true (any strict system has F_p >= 0.7)
}

// ExampleLockService shows the voter-ID-locking pattern from the paper's
// e-voting application: lock a resource country-wide through quorums.
func ExampleLockService() {
	sys, err := pqs.New(pqs.Config{N: 30, Q: 16})
	if err != nil {
		panic(err)
	}
	cluster, err := pqs.NewLocalCluster(sys.N(), 1)
	if err != nil {
		panic(err)
	}
	client, err := pqs.NewClient(pqs.ClientConfig{
		System: sys, Transport: cluster.Transport(), WriterID: 1, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	locks, err := pqs.NewLockService(client, "voterid/")
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	first, _ := locks.TryAcquire(ctx, "voter-1234", "station-7")
	second, _ := locks.TryAcquire(ctx, "voter-1234", "station-32")
	fmt.Printf("first use accepted: %v\n", first)
	fmt.Printf("repeat use accepted: %v\n", second)
	// Output:
	// first use accepted: true
	// repeat use accepted: false
}
