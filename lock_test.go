package pqs

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/register"
	"pqs/internal/replica"
	"pqs/internal/transport"
	"pqs/internal/ts"
	"pqs/internal/vtime"
)

func lockFixture(t *testing.T) (*LockService, *LockService) {
	t.Helper()
	// Majority-sized quorums make the lock deterministic for unit testing;
	// the probabilistic behavior is covered by the voting example and the
	// sim package.
	sys, err := New(Config{N: 15, Q: 8})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewLocalCluster(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewClient(ClientConfig{System: sys, Transport: cluster.Transport(), WriterID: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient(ClientConfig{System: sys, Transport: cluster.Transport(), WriterID: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := NewLockService(c1, "")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLockService(c2, "")
	if err != nil {
		t.Fatal(err)
	}
	return l1, l2
}

func TestLockAcquireReleaseCycle(t *testing.T) {
	l1, l2 := lockFixture(t)
	ctx := context.Background()

	ok, err := l1.TryAcquire(ctx, "res", "alice")
	if err != nil || !ok {
		t.Fatalf("acquire: %v %v", ok, err)
	}
	// Same owner reacquires; different owner is refused.
	if ok, _ := l1.TryAcquire(ctx, "res", "alice"); !ok {
		t.Error("reacquire by holder failed")
	}
	if ok, _ := l2.TryAcquire(ctx, "res", "bob"); ok {
		t.Error("second owner acquired a held lock")
	}
	holder, held, err := l2.Holder(ctx, "res")
	if err != nil || !held || holder != "alice" {
		t.Errorf("holder = %q %v %v", holder, held, err)
	}
	// Wrong owner cannot release.
	if ok, _ := l2.Release(ctx, "res", "bob"); ok {
		t.Error("non-holder released the lock")
	}
	if ok, err := l1.Release(ctx, "res", "alice"); err != nil || !ok {
		t.Fatalf("release: %v %v", ok, err)
	}
	// Now bob can take it.
	if ok, _ := l2.TryAcquire(ctx, "res", "bob"); !ok {
		t.Error("acquire after release failed")
	}
}

func TestLockReleaseUnheld(t *testing.T) {
	l1, _ := lockFixture(t)
	ctx := context.Background()
	if ok, err := l1.Release(ctx, "never-locked", "anyone"); err != nil || !ok {
		t.Errorf("releasing a free lock should be a no-op success: %v %v", ok, err)
	}
	if _, held, _ := l1.Holder(ctx, "never-locked"); held {
		t.Error("free lock reported held")
	}
}

func TestLockValidation(t *testing.T) {
	if _, err := NewLockService(nil, ""); err == nil {
		t.Error("nil client accepted")
	}
	l1, _ := lockFixture(t)
	if _, err := l1.TryAcquire(context.Background(), "res", ""); err == nil {
		t.Error("empty owner accepted")
	}
}

func TestLockNamespacesAreIndependent(t *testing.T) {
	l1, _ := lockFixture(t)
	ctx := context.Background()
	if ok, _ := l1.TryAcquire(ctx, "a", "alice"); !ok {
		t.Fatal("acquire a")
	}
	if ok, _ := l1.TryAcquire(ctx, "b", "bob"); !ok {
		t.Error("lock on a blocked lock on b")
	}
}

// lockSimFixture builds two lock services (writers alice=1, bob=2) over a
// latency-injected MemNetwork driven by a SimClock, all randomness seeded,
// so every acquire/release interleaving replays identically.
func lockSimFixture(t *testing.T, sc *vtime.SimClock) (*LockService, *LockService) {
	t.Helper()
	const n, q = 9, 5
	net := transport.NewMemNetwork(17)
	net.SetClock(sc)
	net.SetLatency(1*time.Millisecond, 5*time.Millisecond)
	for i := 0; i < n; i++ {
		net.Register(quorum.ServerID(i), replica.New(quorum.ServerID(i)))
	}
	sys, err := New(Config{N: n, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(writer uint32) *LockService {
		cl, err := register.NewClient(register.Options{
			System: sys, Mode: ModeBenign, Transport: net,
			Rand:  rand.New(rand.NewSource(int64(writer))),
			Clock: ts.NewClock(writer),
			Time:  sc,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := NewLockService(cl, "")
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	return mk(1), mk(2)
}

// TestLockSimClockInterleavings drives an acquire/release/reacquire
// interleaving between two owners on a virtual clock and checks every
// decision point; majority quorums make each outcome deterministic.
func TestLockSimClockInterleavings(t *testing.T) {
	sc := vtime.NewSimClock()
	sc.Run(func() {
		alice, bob := lockSimFixture(t, sc)
		ctx := context.Background()
		step := func(what string, got, want bool, err error) {
			if err != nil {
				t.Fatalf("%s: %v", what, err)
			}
			if got != want {
				t.Fatalf("%s = %v, want %v", what, got, want)
			}
		}
		ok, err := alice.TryAcquire(ctx, "res", "alice")
		step("alice acquire", ok, true, err)
		ok, err = bob.TryAcquire(ctx, "res", "bob")
		step("bob acquire while held", ok, false, err)
		ok, err = bob.Release(ctx, "res", "bob")
		step("bob release foreign lock", ok, false, err)
		// The foreign-holder path writes the record back unchanged: alice
		// must still be the visible holder.
		holder, held, err := bob.Holder(ctx, "res")
		if err != nil || !held || holder != "alice" {
			t.Fatalf("holder after failed release = %q %v %v", holder, held, err)
		}
		ok, err = alice.Release(ctx, "res", "alice")
		step("alice release", ok, true, err)
		ok, err = bob.TryAcquire(ctx, "res", "bob")
		step("bob acquire after release", ok, true, err)
		ok, err = alice.TryAcquire(ctx, "res", "alice")
		step("alice reacquire while bob holds", ok, false, err)
		ok, err = bob.Release(ctx, "res", "bob")
		step("bob release", ok, true, err)
		ok, err = alice.TryAcquire(ctx, "res", "alice")
		step("alice reacquire after bob", ok, true, err)
		// Releasing an already-free lock stays a no-op success.
		ok, err = alice.Release(ctx, "res", "alice")
		step("alice release", ok, true, err)
		ok, err = bob.Release(ctx, "res", "bob")
		step("bob release free lock", ok, true, err)
	})
}

// TestLockSimClockDeterministic replays the same interleaving twice and
// requires identical virtual-time traces: the RMW release path sleeps and
// samples only from injected clocks and seeded rngs.
func TestLockSimClockDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var trace []time.Duration
		sc := vtime.NewSimClock()
		sc.Run(func() {
			alice, bob := lockSimFixture(t, sc)
			ctx := context.Background()
			mark := func() { trace = append(trace, sc.Elapsed()) }
			if ok, err := alice.TryAcquire(ctx, "res", "alice"); err != nil || !ok {
				t.Fatalf("acquire: %v %v", ok, err)
			}
			mark()
			if ok, err := bob.TryAcquire(ctx, "res", "bob"); err != nil || ok {
				t.Fatalf("bob acquire: %v %v", ok, err)
			}
			mark()
			if ok, err := alice.Release(ctx, "res", "alice"); err != nil || !ok {
				t.Fatalf("release: %v %v", ok, err)
			}
			mark()
			if ok, err := bob.TryAcquire(ctx, "res", "bob"); err != nil || !ok {
				t.Fatalf("bob reacquire: %v %v", ok, err)
			}
			mark()
		})
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d at %v vs %v: lock schedule is not replaying", i, a[i], b[i])
		}
	}
	if a[len(a)-1] == 0 {
		t.Fatal("virtual clock never advanced; latency injection is not active")
	}
}
