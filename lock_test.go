package pqs

import (
	"context"
	"testing"
)

func lockFixture(t *testing.T) (*LockService, *LockService) {
	t.Helper()
	// Majority-sized quorums make the lock deterministic for unit testing;
	// the probabilistic behavior is covered by the voting example and the
	// sim package.
	sys, err := New(Config{N: 15, Q: 8})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewLocalCluster(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewClient(ClientConfig{System: sys, Transport: cluster.Transport(), WriterID: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient(ClientConfig{System: sys, Transport: cluster.Transport(), WriterID: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := NewLockService(c1, "")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLockService(c2, "")
	if err != nil {
		t.Fatal(err)
	}
	return l1, l2
}

func TestLockAcquireReleaseCycle(t *testing.T) {
	l1, l2 := lockFixture(t)
	ctx := context.Background()

	ok, err := l1.TryAcquire(ctx, "res", "alice")
	if err != nil || !ok {
		t.Fatalf("acquire: %v %v", ok, err)
	}
	// Same owner reacquires; different owner is refused.
	if ok, _ := l1.TryAcquire(ctx, "res", "alice"); !ok {
		t.Error("reacquire by holder failed")
	}
	if ok, _ := l2.TryAcquire(ctx, "res", "bob"); ok {
		t.Error("second owner acquired a held lock")
	}
	holder, held, err := l2.Holder(ctx, "res")
	if err != nil || !held || holder != "alice" {
		t.Errorf("holder = %q %v %v", holder, held, err)
	}
	// Wrong owner cannot release.
	if ok, _ := l2.Release(ctx, "res", "bob"); ok {
		t.Error("non-holder released the lock")
	}
	if ok, err := l1.Release(ctx, "res", "alice"); err != nil || !ok {
		t.Fatalf("release: %v %v", ok, err)
	}
	// Now bob can take it.
	if ok, _ := l2.TryAcquire(ctx, "res", "bob"); !ok {
		t.Error("acquire after release failed")
	}
}

func TestLockReleaseUnheld(t *testing.T) {
	l1, _ := lockFixture(t)
	ctx := context.Background()
	if ok, err := l1.Release(ctx, "never-locked", "anyone"); err != nil || !ok {
		t.Errorf("releasing a free lock should be a no-op success: %v %v", ok, err)
	}
	if _, held, _ := l1.Holder(ctx, "never-locked"); held {
		t.Error("free lock reported held")
	}
}

func TestLockValidation(t *testing.T) {
	if _, err := NewLockService(nil, ""); err == nil {
		t.Error("nil client accepted")
	}
	l1, _ := lockFixture(t)
	if _, err := l1.TryAcquire(context.Background(), "res", ""); err == nil {
		t.Error("empty owner accepted")
	}
}

func TestLockNamespacesAreIndependent(t *testing.T) {
	l1, _ := lockFixture(t)
	ctx := context.Background()
	if ok, _ := l1.TryAcquire(ctx, "a", "alice"); !ok {
		t.Fatal("acquire a")
	}
	if ok, _ := l1.TryAcquire(ctx, "b", "bob"); !ok {
		t.Error("lock on a blocked lock on b")
	}
}
