# Tier-1 verification and developer shortcuts. CI (.github/workflows/ci.yml)
# runs `make ci` on every push.

GO ?= go

.PHONY: all build test vet race tier1 ci bench bench-tail

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/register/ ./internal/transport/ ./internal/quorum/

# tier1 is the repository's acceptance gate: it must pass from a clean
# checkout.
tier1: build test

ci: vet tier1 race

bench:
	$(GO) test -bench=. -benchmem ./...

# The straggler-tolerance headline numbers: wait-for-all vs hedged p50/p99,
# and the empirical-ε validation with hedging enabled.
bench-tail:
	$(GO) test -run 'XXX' -bench 'ReadTailLatency|EpsilonBenignHedged|EpsilonMaskingHedged' -benchtime 2s .
