# Tier-1 verification and developer shortcuts. CI (.github/workflows/ci.yml)
# runs these same targets on every push: `make ci` is the tier1 job, and the
# lint / chaos-short / chaos-tcp / sim-fast / sim-scale / fuzz-smoke /
# bench-regress targets back the remaining jobs one-for-one, so a green
# `make ci-full` locally means a green wall.

GO ?= go

# bench-json iteration budget: 1s for real measurements, overridable (CI's
# bench-smoke passes 1x to guard against bit-rot without timing flakiness).
BENCHTIME ?= 1s

.PHONY: all build test vet lint race tier1 ci ci-full bench bench-tail bench-json bench-smoke bench-regress chaos-short chaos-tcp fuzz-smoke sim-fast sim-scale e2e-smoke

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The determinism lint wall (internal/lint): wallclock, rawgo, globalrand,
# lockspan, epsblind plus the bundled vet-lite passes, with mandatory-reason
# //pqslint:allow suppressions. Must exit 0 on the whole tree; see the
# "Static analysis & determinism invariants" section of README.md.
lint:
	$(GO) run ./cmd/pqs-lint ./...

race:
	$(GO) test -race ./internal/register/ ./internal/transport/ ./internal/quorum/ ./internal/replica/ ./internal/chaos/ ./internal/diffusion/

# tier1 is the repository's acceptance gate: it must pass from a clean
# checkout.
tier1: build test

# ci mirrors the CI tier1 job exactly (vet, lint, build, test, race,
# bench-smoke).
ci: vet lint tier1 race bench-smoke

# ci-full runs every CI job locally.
ci-full: ci chaos-short chaos-tcp sim-fast sim-scale fuzz-smoke bench-regress

bench:
	$(GO) test -bench=. -benchmem ./...

# The straggler-tolerance headline numbers: wait-for-all vs hedged p50/p99,
# and the empirical-ε validation with hedging enabled.
bench-tail:
	$(GO) test -run 'XXX' -bench 'ReadTailLatency|EpsilonBenignHedged|EpsilonMaskingHedged' -benchtime 2s .

# The data-plane throughput numbers: codec encode/decode cost (binary vs the
# gob baseline) and end-to-end ops/sec over MemNetwork and TCP, recorded as
# machine-readable JSON so the perf trajectory across PRs has data points.
# Staged through a temp file rather than a pipe so a benchmark failure
# fails the target (/bin/sh has no pipefail).
bench-json:
	$(GO) test -run 'XXX' -bench '^(BenchmarkThroughput|BenchmarkCodec|BenchmarkHighFanIn)' -benchmem -benchtime $(BENCHTIME) . > BENCH_throughput.out
	$(GO) run ./cmd/benchjson < BENCH_throughput.out > BENCH_throughput.json
	@rm -f BENCH_throughput.out
	@echo "wrote BENCH_throughput.json"

# CI bit-rot guard: run every throughput/codec benchmark for one iteration
# and verify the JSON pipeline still produces a well-formed document.
# Staged through a scratch file so the committed BENCH_throughput.json —
# the bench-regress baseline — is never clobbered with 1-iteration rates.
bench-smoke:
	$(GO) test -run 'XXX' -bench '^(BenchmarkThroughput|BenchmarkCodec|BenchmarkHighFanIn)' -benchmem -benchtime 1x . > BENCH_smoke.out
	$(GO) run ./cmd/benchjson < BENCH_smoke.out > BENCH_smoke.json
	@rm -f BENCH_smoke.out
	$(GO) run ./cmd/benchjson -check BENCH_smoke.json
	@rm -f BENCH_smoke.json

# The throughput regression gate: measure fresh numbers (full 1s rounds, so
# the rates are real) and compare them against the committed
# BENCH_throughput.json, failing on any benchmark whose ops/sec dropped by
# more than BENCH_TOLERANCE. The tolerance is 30%: wide enough to absorb
# run-to-run and runner-hardware noise (the committed baseline was measured
# on a developer machine; CI runners differ), narrow enough that a real
# data-plane regression — a lost fast path, an accidental extra syscall per
# frame — trips it. Refresh the baseline with `make bench-json` when a PR
# legitimately moves the numbers.
BENCH_TOLERANCE ?= 0.30
bench-regress:
	$(GO) test -run 'XXX' -bench '^(BenchmarkThroughput|BenchmarkCodec|BenchmarkHighFanIn)' -benchmem -benchtime $(BENCHTIME) . > BENCH_fresh.out
	$(GO) run ./cmd/benchjson < BENCH_fresh.out > BENCH_fresh.json
	@rm -f BENCH_fresh.out
	$(GO) run ./cmd/benchjson -compare BENCH_throughput.json BENCH_fresh.json -tolerance $(BENCH_TOLERANCE)
	@rm -f BENCH_fresh.json

# The adversarial regression gate: the full chaos scenario matrix at small
# trial counts (seconds, deterministic in CHAOS_SEED), plus the negative
# scenario demonstrating the checker fails when ε exceeds the bound. A
# failing seed replays locally with the same command or with
# `go test ./internal/chaos -run TestChaos -chaos.seed=N`. -json records
# the per-scenario ε trend to BENCH_epsilon.json (uploaded as a CI
# artifact, like BENCH_throughput.json for throughput).
CHAOS_SEED ?= 1
chaos-short:
	$(GO) run ./cmd/pqs-chaos -scale 1 -seed $(CHAOS_SEED) -negative -json -o /dev/null

# The real-wire chaos gate: the same scenario matrix over BOTH data planes
# (MemNetwork and the virtual-time TCP stack), each scenario run TWICE per
# plane with one seed — the run fails unless the histories replay
# byte-for-byte, which is the determinism contract for the data plane
# production actually runs. BENCH_epsilon.json gains one section per
# transport. Replay a CI failure locally with the same command and
# CHAOS_SEED=N, or `go test ./internal/chaos -run TCPVirtual -chaos.seed=N`.
chaos-tcp:
	$(GO) run ./cmd/pqs-chaos -scale 1 -seed $(CHAOS_SEED) -transport mem,tcp-virtual -verify-determinism -json -o /dev/null

# The virtual-time gate: the long-form ε measurements (hundreds of trials
# over a 100-server cluster with tens of milliseconds of injected latency,
# stragglers and adaptive hedging — minutes of simulated time that used to
# be far too slow for CI) run under vtime.SimClock and must finish >= 50x
# (MemNetwork) / >= 20x (virtual TCP data plane) faster than the simulated
# duration, proving the speedup is real and gating regressions that
# reintroduce wall-clock waits into the simulated path.
sim-fast:
	$(GO) test -run 'TestSimFastLongFormEpsilon|TestSimFastLongFormEpsilonTCP|TestAdaptiveHedgeEpsilonPreserved' -v ./internal/sim

# The population-scale gate: the internal/load scale/ matrix — 10k-client
# open-loop populations against n=1000 and n=2000 universes (plus a
# reduced-scale point on the real TCP stack), over a million operations in
# total, with churn waves gated by the time-decayed timed-quorum bound.
# Every scale point runs TWICE and must replay byte-for-byte (digest +
# full-result comparison); -negative proves the gate fails a view-blind
# storm; -budget 5m keeps the whole matrix CI-affordable, failing the
# target if simulation ever gets slow enough to blow the wall-clock
# budget. -json records per-scale-point ε / staleness-depth / tail-latency
# metrics to BENCH_epsilon.json (the CI artifact). Scale points are
# independent simulations, so they run on a bounded worker pool
# (-load-parallel, default half the cores) without affecting any digest.
# A failing seed replays locally with the same command and CHAOS_SEED=N.
sim-scale:
	$(GO) run ./cmd/pqs-chaos -load -seed $(CHAOS_SEED) -negative -verify-determinism -json -budget 5m -o /dev/null

# Ten seconds of coverage-guided fuzzing each for the binary codec's decode
# surface and the virtual byte-stream fault injector, so both fuzz targets
# actually execute in CI rather than only replaying their seed corpora.
fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzDecodeMessage -fuzztime 10s ./internal/wire
	$(GO) test -run XXX -fuzz FuzzVNetFaultInjector -fuzztime 10s ./internal/transport

# The end-to-end smoke gate: build the real pqsd/pqs-cli binaries, stand a
# 5-replica cluster up on loopback TCP, write and read through the CLI, kill
# one server, and require reads to keep succeeding. Guarded behind PQS_E2E=1
# so ordinary `go test ./...` runs stay hermetic.
e2e-smoke:
	PQS_E2E=1 $(GO) test -run TestE2ESmoke -v -count=1 .
