# Tier-1 verification and developer shortcuts. CI (.github/workflows/ci.yml)
# runs `make ci` on every push.

GO ?= go

# bench-json iteration budget: 1s for real measurements, overridable (CI's
# bench-smoke passes 1x to guard against bit-rot without timing flakiness).
BENCHTIME ?= 1s

.PHONY: all build test vet race tier1 ci bench bench-tail bench-json bench-smoke chaos-short fuzz-smoke sim-fast

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/register/ ./internal/transport/ ./internal/quorum/ ./internal/replica/ ./internal/chaos/ ./internal/diffusion/

# tier1 is the repository's acceptance gate: it must pass from a clean
# checkout.
tier1: build test

ci: vet tier1 race

bench:
	$(GO) test -bench=. -benchmem ./...

# The straggler-tolerance headline numbers: wait-for-all vs hedged p50/p99,
# and the empirical-ε validation with hedging enabled.
bench-tail:
	$(GO) test -run 'XXX' -bench 'ReadTailLatency|EpsilonBenignHedged|EpsilonMaskingHedged' -benchtime 2s .

# The data-plane throughput numbers: codec encode/decode cost (binary vs the
# gob baseline) and end-to-end ops/sec over MemNetwork and TCP, recorded as
# machine-readable JSON so the perf trajectory across PRs has data points.
# Staged through a temp file rather than a pipe so a benchmark failure
# fails the target (/bin/sh has no pipefail).
bench-json:
	$(GO) test -run 'XXX' -bench '^(BenchmarkThroughput|BenchmarkCodec)' -benchmem -benchtime $(BENCHTIME) . > BENCH_throughput.out
	$(GO) run ./cmd/benchjson < BENCH_throughput.out > BENCH_throughput.json
	@rm -f BENCH_throughput.out
	@echo "wrote BENCH_throughput.json"

# CI bit-rot guard: run every throughput/codec benchmark for one iteration
# and verify BENCH_throughput.json is regenerable and well-formed.
bench-smoke:
	$(MAKE) bench-json BENCHTIME=1x
	$(GO) run ./cmd/benchjson -check BENCH_throughput.json

# The adversarial regression gate: the full chaos scenario matrix at small
# trial counts (seconds, deterministic in CHAOS_SEED), plus the negative
# scenario demonstrating the checker fails when ε exceeds the bound. A
# failing seed replays locally with the same command or with
# `go test ./internal/chaos -run TestChaos -chaos.seed=N`. -json records
# the per-scenario ε trend to BENCH_epsilon.json (uploaded as a CI
# artifact, like BENCH_throughput.json for throughput).
CHAOS_SEED ?= 1
chaos-short:
	$(GO) run ./cmd/pqs-chaos -scale 1 -seed $(CHAOS_SEED) -negative -json -o /dev/null

# The virtual-time gate: the long-form ε measurement (400 trials over a
# 100-server cluster with 20-60ms injected latency, stragglers and
# adaptive hedging — minutes of simulated time that used to be far too
# slow for CI) runs under vtime.SimClock and must finish >= 50x faster
# than the simulated duration, proving the speedup is real and gating
# regressions that reintroduce wall-clock waits into the simulated path.
sim-fast:
	$(GO) test -run 'TestSimFastLongFormEpsilon|TestAdaptiveHedgeEpsilonPreserved' -v ./internal/sim

# Ten seconds of coverage-guided fuzzing on the binary codec's decode
# surface, so the FuzzDecodeMessage target actually executes in CI rather
# than only replaying its seed corpus.
fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzDecodeMessage -fuzztime 10s ./internal/wire
