// Package pqs implements probabilistic quorum systems (Malkhi, Reiter,
// Wool, Wright: "Probabilistic Quorum Systems", PODC 1997 / Information and
// Computation 170, 2001): replicated-data quorums that intersect with
// probability 1-ε instead of always, buying dramatically better fault
// tolerance and failure probability at unchanged (optimal) load.
//
// The package offers three constructions over a universe of n servers:
//
//   - ε-intersecting systems (ModeBenign): tolerate crash failures;
//     quorums are uniformly random sets of size ~ℓ√n (Section 3).
//   - (b, ε)-dissemination systems (ModeDissemination): tolerate b
//     Byzantine servers storing self-verifying (signed) data (Section 4).
//   - (b, ε)-masking systems (ModeMasking): tolerate b Byzantine servers
//     storing arbitrary data via a read threshold k (Section 5).
//
// Start with New to resolve a System from a target ε, then run replicas
// (in-process via NewLocalCluster, or over TCP via ListenAndServe/Dial) and
// access them through a Client:
//
//	sys, _ := pqs.New(pqs.Config{N: 100, Epsilon: 1e-3, Mode: pqs.ModeBenign})
//	cluster, _ := pqs.NewLocalCluster(sys.N(), 1)
//	client, _ := pqs.NewClient(pqs.ClientConfig{
//		System: sys, Transport: cluster.Transport(), WriterID: 1, Seed: 1,
//	})
//	client.Write(ctx, "x", []byte("hello"))
//	r, _ := client.Read(ctx, "x")
//
// The quality measures of every System — Load, FaultTolerance, FailProb,
// Epsilon — are exact, computed from hypergeometric identities rather than
// the paper's asymptotic bounds (which are also available as EpsilonBound).
//
// # Straggler tolerance
//
// Because any set sampled by the access strategy is a valid quorum
// (Section 3: quorums are ~ℓ√n uniformly random servers), a client never
// has to wait for specific stragglers. ClientConfig exposes three knobs
// that exploit this:
//
//   - Spares and HedgeDelay oversample the access set: up to Spares extra
//     servers are drawn by the same strategy and promoted when a member's
//     call fails or each time HedgeDelay elapses without completion
//     (hedged requests).
//   - EagerRead returns a read as soon as its mode's acceptance rule is
//     decidable — quorum-size replies (benign), plus a verified reply
//     (dissemination), or an unbeatable K-voucher candidate (masking) —
//     draining stragglers in the background (read repair included).
//   - W completes a write after W acknowledgements; the in-flight calls
//     keep delivering the write to the remaining members while the
//     operation's context stays live.
//
// Promotion preserves the ε analysis at the attempt level: spares come from
// the same uniform sample and are dispatched only on observed failure or on
// an identity-blind timer, which is the same conditioning-on-liveness that
// quorum re-sampling (RetryingClient) already performs. The empirical-ε
// benchmarks (BenchmarkEmpiricalEpsilon*Hedged) measure the bound with
// hedging enabled.
package pqs

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"pqs/internal/config"
	"pqs/internal/core"
	"pqs/internal/quorum"
	"pqs/internal/register"
	"pqs/internal/ring"
	"pqs/internal/sv"
	"pqs/internal/transport"
	"pqs/internal/ts"
)

// Mode selects the failure model and with it the access protocol.
type Mode = register.Mode

// Modes.
const (
	// ModeBenign tolerates crash failures only (Section 3).
	ModeBenign = register.Benign
	// ModeDissemination tolerates Byzantine servers for self-verifying
	// (signed) data (Section 4).
	ModeDissemination = register.Dissemination
	// ModeMasking tolerates Byzantine servers for arbitrary data
	// (Section 5).
	ModeMasking = register.Masking
)

// Config describes the system to construct. New resolves it to the smallest
// quorum size meeting the ε target (or uses Q verbatim when given).
type Config struct {
	// N is the number of servers.
	N int
	// Mode is the failure model. Default ModeBenign.
	Mode Mode
	// Epsilon is the target consistency error (0 < ε < 1). Ignored when Q
	// is set. Default 1e-3, the guarantee used throughout the paper's
	// evaluation.
	Epsilon float64
	// B is the number of Byzantine servers tolerated (dissemination and
	// masking modes).
	B int
	// Q, when non-zero, fixes the quorum size explicitly instead of solving
	// for the minimal size meeting Epsilon.
	Q int
}

// System is a resolved probabilistic quorum system: a sampling strategy
// plus its exact quality measures. It implements the internal quorum
// sampling interface and is accepted by ClientConfig.
type System struct {
	quorum.System

	mode Mode
	b    int
	k    int

	epsilon      float64
	epsilonBound float64
}

// New resolves cfg into a System.
func New(cfg Config) (*System, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("pqs: N = %d must be positive", cfg.N)
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeBenign
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-3
	}
	if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
		return nil, fmt.Errorf("pqs: Epsilon = %v outside (0, 1)", cfg.Epsilon)
	}
	if cfg.B < 0 {
		return nil, fmt.Errorf("pqs: B = %d must be non-negative", cfg.B)
	}
	switch cfg.Mode {
	case ModeBenign:
		q := cfg.Q
		if q == 0 {
			var err error
			q, err = core.MinQForEpsilon(cfg.N, cfg.Epsilon)
			if err != nil {
				return nil, err
			}
		}
		e, err := core.NewEpsilonIntersecting(cfg.N, q)
		if err != nil {
			return nil, err
		}
		return &System{
			System: e, mode: cfg.Mode,
			epsilon: e.Epsilon(), epsilonBound: e.EpsilonBound(),
		}, nil
	case ModeDissemination:
		q := cfg.Q
		if q == 0 {
			var err error
			q, err = core.MinQForDissemination(cfg.N, cfg.B, cfg.Epsilon)
			if err != nil {
				return nil, err
			}
		}
		d, err := core.NewDissemination(cfg.N, q, cfg.B)
		if err != nil {
			return nil, err
		}
		return &System{
			System: d, mode: cfg.Mode, b: cfg.B,
			epsilon: d.Epsilon(), epsilonBound: d.EpsilonBound(),
		}, nil
	case ModeMasking:
		q := cfg.Q
		if q == 0 {
			var err error
			q, err = core.MinQForMasking(cfg.N, cfg.B, cfg.Epsilon)
			if err != nil {
				return nil, err
			}
		}
		m, err := core.NewMasking(cfg.N, q, cfg.B)
		if err != nil {
			return nil, err
		}
		return &System{
			System: m, mode: cfg.Mode, b: cfg.B, k: m.K(),
			epsilon: m.Epsilon(), epsilonBound: m.EpsilonBound(),
		}, nil
	default:
		return nil, fmt.Errorf("pqs: unknown mode %v", cfg.Mode)
	}
}

// Mode returns the system's failure model.
func (s *System) Mode() Mode { return s.mode }

// B returns the Byzantine threshold (0 in benign mode).
func (s *System) B() int { return s.b }

// K returns the masking read threshold (0 outside masking mode).
func (s *System) K() int { return s.k }

// Epsilon returns the exact consistency error of the construction: the
// probability that a read misses the last written value under the mode's
// failure model (Theorems 3.2, 4.2, 5.2).
func (s *System) Epsilon() float64 { return s.epsilon }

// EpsilonBound returns the paper's closed-form bound on Epsilon
// (Theorems 3.16, 4.4/4.6, 5.10). Always >= Epsilon.
func (s *System) EpsilonBound() float64 { return s.epsilonBound }

// PickWithSpares implements quorum.SpareSampler by forwarding to the
// underlying construction (all three constructions are carried by the
// uniform system, which supports spare sampling). Systems built over a
// carrier without spare support degrade to Pick with no spares.
func (s *System) PickWithSpares(r *rand.Rand, spares int) (q, spare []quorum.ServerID) {
	if ss, ok := s.System.(quorum.SpareSampler); ok {
		return ss.PickWithSpares(r, spares)
	}
	return s.System.Pick(r), nil
}

var _ quorum.SpareSampler = (*System)(nil)

// PickInto implements quorum.InplacePicker by forwarding to the underlying
// construction, letting clients sample quorums into a reused buffer with
// zero allocations (the data-plane fast path). Carriers without in-place
// support degrade to an allocating Pick.
func (s *System) PickInto(r *rand.Rand, dst []quorum.ServerID) []quorum.ServerID {
	if ip, ok := s.System.(quorum.InplacePicker); ok {
		return ip.PickInto(r, dst)
	}
	return append(dst[:0], s.System.Pick(r)...)
}

var _ quorum.InplacePicker = (*System)(nil)

// WriterKey is a writer's signing identity for self-verifying data.
type WriterKey struct {
	// ID is the writer id embedded in timestamps.
	ID uint32
	// Public verifies; Private signs.
	Public  ed25519.PublicKey
	Private ed25519.PrivateKey
}

// GenerateWriterKey creates a signing identity for writer id using entropy
// from rand (pass crypto/rand.Reader in production).
func GenerateWriterKey(id uint32, rand interface{ Read([]byte) (int, error) }) (WriterKey, error) {
	kp, err := sv.GenerateKey(rand)
	if err != nil {
		return WriterKey{}, err
	}
	return WriterKey{ID: id, Public: kp.Public, Private: kp.Private}, nil
}

// Registry maps writer ids to public keys; dissemination readers require
// one to decide which replies are verifiable.
type Registry = sv.Registry

// NewRegistry returns an empty writer-key registry.
func NewRegistry() *Registry { return sv.NewRegistry() }

// Tuning is the canonical access-tuning block — Spares, HedgeDelay,
// AdaptiveHedge, HedgeDeviations, EagerRead, W, ReadRepair — shared by
// ClientConfig, sim.ConsistencyConfig, chaos.Config and load.Config. Set
// the knobs once here and embed the block; the flat fields of the same
// names on each config are deprecated aliases that forward into it. See
// the README section "Configuring access tuning" for the migration note.
type Tuning = config.Tuning

// Topology is the canonical cluster-shape block — Cells, CellVnodes, N,
// Transport plane, latency model — shared by the same four configs as
// Tuning. Fields a config cannot honor are documented on that config.
type Topology = config.Topology

// ClientConfig configures a Client.
//
// The access-tuning knobs (Spares, HedgeDelay, AdaptiveHedge,
// HedgeDeviations, EagerRead, W, ReadRepair) and the cluster-shape knobs
// (Cells, CellVnodes) exist twice: canonically on the embedded Tuning and
// Topology blocks, and as the original flat fields, kept as deprecated
// aliases. Both spellings behave identically; when a knob is set through
// both, the embedded block wins (booleans combine by OR). New code should
// set the embedded blocks only.
type ClientConfig struct {
	// Tuning is the canonical access-tuning block (see the Tuning alias).
	Tuning
	// Topology is the canonical cluster-shape block. NewClient honors
	// Cells and CellVnodes; N, Transport and the latency fields are
	// ignored here (the universe comes from System, the plane from the
	// Transport field below).
	Topology
	// System is the quorum system to access (from New).
	System *System
	// Transport reaches the replicas: a LocalCluster's Transport or a TCP
	// client from Dial.
	Transport Transport
	// WriterID identifies this client's writes. Clients that only read may
	// leave it zero.
	WriterID uint32
	// Key, when set, signs writes (required for dissemination writers).
	Key WriterKey
	// Registry verifies replies (required for dissemination readers).
	Registry *Registry
	// Seed fixes the access strategy's randomness; use distinct seeds per
	// client. Zero means seed 1.
	Seed int64
	// RequireFullWrite makes writes fail unless the whole quorum
	// acknowledged (see register.Options.RequireFullWrite).
	RequireFullWrite bool
	// ReadRepair pushes the value a read accepted back to stale quorum
	// members. Valid in benign and dissemination modes; rejected in
	// masking mode (a fooled read must not persist fabricated data).
	//
	// Deprecated: set Tuning.ReadRepair; this flat alias forwards.
	ReadRepair bool
	// Spares oversamples every access set by this many extra servers,
	// promoted when a member fails or lags (see HedgeDelay). Spares are
	// drawn by the same access strategy, preserving the attempt-level ε
	// argument (see the package docs).
	//
	// Deprecated: set Tuning.Spares; this flat alias forwards.
	Spares int
	// HedgeDelay, when positive, promotes one spare each time this delay
	// elapses before the operation completes. Zero promotes spares only on
	// observed member failure. With AdaptiveHedge set this is only the
	// bootstrap delay used until the latency estimator warms up.
	//
	// Deprecated: set Tuning.HedgeDelay; this flat alias forwards.
	HedgeDelay time.Duration
	// AdaptiveHedge derives the hedge delay from an online estimate of the
	// cluster's reply-latency distribution instead of the fixed
	// HedgeDelay: the client tracks a latency EWMA and deviation EWMA
	// (Jacobson/Karels gains, as in TCP retransmission timers) and hedges
	// at EWMA + HedgeDeviations·deviation, so the delay follows the
	// cluster as it speeds up or degrades. The delay is computed from
	// pooled history only — never from the identity of the servers in the
	// current access set — preserving the ε argument for hedged promotion.
	// Requires Spares > 0 and a positive HedgeDelay bootstrap.
	//
	// Deprecated: set Tuning.AdaptiveHedge; this flat alias forwards.
	AdaptiveHedge bool
	// HedgeDeviations is the adaptive-hedge quantile knob (deviations
	// above the latency EWMA at which the hedge fires); zero means the
	// default of 4.
	//
	// Deprecated: set Tuning.HedgeDeviations; this flat alias forwards.
	HedgeDeviations float64
	// EagerRead returns reads at the mode's decidable completion threshold
	// instead of waiting for every straggler; remaining replies are drained
	// in the background (read repair included).
	//
	// Deprecated: set Tuning.EagerRead; this flat alias forwards.
	EagerRead bool
	// W, when between 1 and the quorum size, completes writes after W
	// acknowledgements, trading a further ε degradation for latency; the
	// calls already in flight keep delivering the write to the remaining
	// members while the operation's context stays live. Zero (or
	// RequireFullWrite) waits for the full access set.
	//
	// Deprecated: set Tuning.W; this flat alias forwards.
	W int
	// Cells partitions the keyspace across this many independent quorum
	// cells by consistent hashing: cell i is a full System-sized PQS over
	// servers [i*N, (i+1)*N) of the Transport (see NewLocalClusterCells),
	// with its own strategy, ε budget and stats; aggregate throughput
	// scales with the cell count while each cell keeps the paper's
	// per-cell guarantees. 0 or 1 is the classic single-cell client.
	//
	// Deprecated: set Topology.Cells; this flat alias forwards.
	Cells int
	// CellVnodes is the virtual-node count per cell on the routing ring
	// (0 = the ring package default). Only meaningful with Cells > 1.
	//
	// Deprecated: set Topology.CellVnodes; this flat alias forwards.
	CellVnodes int
}

// Transport delivers one request to one server. Implemented by LocalCluster
// transports and TCP clients.
type Transport = transport.Transport

// Client accesses a replicated variable through quorums. Safe for
// concurrent use; the single-writer protocol requires one writer per key.
type Client = register.Client

// ReadResult reports a read's outcome and diagnostics.
type ReadResult = register.ReadResult

// WriteResult reports a write's outcome and diagnostics.
type WriteResult = register.WriteResult

// AccessStats reports a client's cumulative straggler-tolerance counters
// (spares promoted, early completions, late replies and late repairs); see
// Client.Stats and Client.WaitDrained.
type AccessStats = register.AccessStats

// RingView is a versioned description of a multi-cell client's routing
// ring (ClientConfig.Cells > 1): which cells currently serve the keyspace,
// and the view version ordering advertisements. See Client.View,
// Client.ApplyView, Client.AdvertiseView and Client.RefreshView for how a
// deployment rebalances on cell Join/Leave: an administrator advertises a
// new view under a reserved register key, diffusion spreads it between
// replicas, and clients that refresh adopt it and route new keys to the
// new member set.
type RingView = ring.View

// Errors re-exported for errors.Is matching.
var (
	// ErrNoReplies: no quorum member answered.
	ErrNoReplies = register.ErrNoReplies
	// ErrPartialWrite: RequireFullWrite was set and some member failed.
	ErrPartialWrite = register.ErrPartialWrite
)

// RetryingClient wraps a Client with quorum re-sampling on transient
// failures (crashed or unreachable quorum members), the practical
// counterpart of the live-quorum-probing literature the paper cites in
// Section 2.1. Each retry draws a fresh quorum from the same strategy, so
// the ε analysis is preserved.
type RetryingClient = register.RetryingClient

// NewRetryingClient wraps client with up to attempts quorum samples per
// operation.
func NewRetryingClient(client *Client, attempts int) (*RetryingClient, error) {
	return register.NewRetryingClient(client, attempts)
}

// NewClient builds a protocol client for the system's mode.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.System == nil {
		return nil, errors.New("pqs: ClientConfig.System is required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("pqs: ClientConfig.Transport is required")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	// Resolve the canonical Tuning/Topology blocks against the deprecated
	// flat aliases: embedded wins when set, flat fills the gaps, booleans
	// OR. A config written entirely in either spelling is unchanged by
	// this, which is what pins bit-for-bit seed compatibility.
	tun := cfg.Tuning.Or(Tuning{
		Spares:          cfg.Spares,
		HedgeDelay:      cfg.HedgeDelay,
		AdaptiveHedge:   cfg.AdaptiveHedge,
		HedgeDeviations: cfg.HedgeDeviations,
		EagerRead:       cfg.EagerRead,
		W:               cfg.W,
		ReadRepair:      cfg.ReadRepair,
	})
	topo := cfg.Topology.Or(Topology{Cells: cfg.Cells, CellVnodes: cfg.CellVnodes})
	opts := register.Options{
		System:           cfg.System,
		Mode:             cfg.System.Mode(),
		K:                cfg.System.K(),
		Transport:        cfg.Transport,
		Rand:             rand.New(rand.NewSource(seed)),
		Clock:            ts.NewClock(cfg.WriterID),
		Registry:         cfg.Registry,
		RequireFullWrite: cfg.RequireFullWrite,
		ReadRepair:       tun.ReadRepair,
		Spares:           tun.Spares,
		HedgeDelay:       tun.HedgeDelay,
		AdaptiveHedge:    tun.AdaptiveHedge,
		HedgeDeviations:  tun.HedgeDeviations,
		EagerRead:        tun.EagerRead,
		W:                tun.W,
		Cells:            topo.Cells,
		RingVnodes:       topo.CellVnodes,
	}
	if cfg.Key.Private != nil {
		opts.Signer = cfg.Key.Private
	}
	return register.NewClient(opts)
}
