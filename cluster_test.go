package pqs

import (
	"context"
	"testing"
)

func TestLocalClusterDiffusion(t *testing.T) {
	// Small quorums (q=5 of n=25, exact ε ≈ 0.29) miss writes often; after
	// a few gossip rounds no read can miss.
	sys, err := New(Config{N: 25, Q: 5})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewLocalCluster(25, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := cluster.GossipRounds(ctx, 1); err == nil {
		t.Fatal("GossipRounds before EnableDiffusion must fail")
	}
	if err := cluster.EnableDiffusion(2, 3); err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{System: sys, Transport: cluster.Transport(), WriterID: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(ctx, "x", []byte("spread me")); err != nil {
		t.Fatal(err)
	}
	if err := cluster.GossipRounds(ctx, 6); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r, err := client.Read(ctx, "x")
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found || string(r.Value) != "spread me" {
			t.Fatalf("read %d missed the diffused value: %+v", i, r)
		}
	}
}

func TestLocalClusterValidation(t *testing.T) {
	if _, err := NewLocalCluster(0, 1); err == nil {
		t.Error("zero-size cluster accepted")
	}
	cluster, err := NewLocalCluster(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cluster.Replicas()) != 3 {
		t.Error("Replicas() size wrong")
	}
	// Byzantine toggling round-trips.
	cluster.MakeByzantine(0, []byte("evil"))
	cluster.MakeCorrect(0)
	cluster.SetDropProb(0)
}
