package pqs

import (
	"context"
	"testing"
)

func TestLocalClusterDiffusion(t *testing.T) {
	// Small quorums (q=5 of n=25, exact ε ≈ 0.29) miss writes often; after
	// a few gossip rounds no read can miss.
	sys, err := New(Config{N: 25, Q: 5})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewLocalCluster(25, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := cluster.GossipRounds(ctx, 1); err == nil {
		t.Fatal("GossipRounds before EnableDiffusion must fail")
	}
	if err := cluster.EnableDiffusion(2, 3); err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{System: sys, Transport: cluster.Transport(), WriterID: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(ctx, "x", []byte("spread me")); err != nil {
		t.Fatal(err)
	}
	if err := cluster.GossipRounds(ctx, 6); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r, err := client.Read(ctx, "x")
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found || string(r.Value) != "spread me" {
			t.Fatalf("read %d missed the diffused value: %+v", i, r)
		}
	}
}

func TestLocalClusterValidation(t *testing.T) {
	if _, err := NewLocalCluster(0, 1); err == nil {
		t.Error("zero-size cluster accepted")
	}
	cluster, err := NewLocalCluster(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cluster.Replicas()) != 3 {
		t.Error("Replicas() size wrong")
	}
	// Byzantine toggling round-trips.
	cluster.MakeByzantine(0, []byte("evil"))
	cluster.MakeCorrect(0)
	cluster.SetDropProb(0)
}

// TestMultiCellFacade exercises the cells configuration end to end through
// the public API: a 4-cell cluster, keyspace routing, whole-cell crash
// isolation and recovery.
func TestMultiCellFacade(t *testing.T) {
	const cells, n, q = 4, 15, 8
	sys, err := New(Config{N: n, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewLocalClusterCells(cells, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cluster.N() != cells*n || cluster.Cells() != cells {
		t.Fatalf("cluster layout %d servers / %d cells", cluster.N(), cluster.Cells())
	}
	client, err := NewClient(ClientConfig{
		System: sys, Transport: cluster.Transport(), WriterID: 1, Seed: 1,
		Cells: cells,
	})
	if err != nil {
		t.Fatal(err)
	}
	if client.Cells() != cells {
		t.Fatalf("client.Cells() = %d, want %d", client.Cells(), cells)
	}
	ctx := context.Background()
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for _, k := range keys {
		if _, err := client.Write(ctx, k, []byte("v-"+k)); err != nil {
			t.Fatalf("write %q: %v", k, err)
		}
	}
	for _, k := range keys {
		r, err := client.Read(ctx, k)
		if err != nil || !r.Found || string(r.Value) != "v-"+k {
			t.Fatalf("read %q: %+v %v", k, r, err)
		}
	}
	// Crash one whole cell: its keys fail, keys in other cells survive.
	victim := client.CellFor(keys[0])
	cluster.CrashCell(victim)
	if _, err := client.Read(ctx, keys[0]); err == nil {
		t.Fatalf("read from fully-crashed cell %d succeeded", victim)
	}
	for _, k := range keys[1:] {
		if client.CellFor(k) == victim {
			continue
		}
		if r, err := client.Read(ctx, k); err != nil || string(r.Value) != "v-"+k {
			t.Fatalf("cell %d crash leaked into key %q: %+v %v", victim, k, r, err)
		}
	}
	cluster.RecoverCell(victim)
	if r, err := client.Read(ctx, keys[0]); err != nil || string(r.Value) != "v-"+keys[0] {
		t.Fatalf("read after RecoverCell: %+v %v", r, err)
	}
}
