package sv

import (
	"bytes"
	"math/rand"
	"testing"

	"pqs/internal/ts"
)

// detRand is a deterministic entropy source for tests.
type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func testKey(t *testing.T, seed int64) KeyPair {
	t.Helper()
	kp, err := GenerateKey(detRand{rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func TestSignVerifyRoundTrip(t *testing.T) {
	kp := testKey(t, 1)
	stamp := ts.Stamp{Counter: 42, Writer: 7}
	sig := Sign(kp.Private, "x", []byte("value"), stamp)
	if !Verify(kp.Public, "x", []byte("value"), stamp, sig) {
		t.Error("valid signature rejected")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	kp := testKey(t, 2)
	stamp := ts.Stamp{Counter: 42, Writer: 7}
	sig := Sign(kp.Private, "x", []byte("value"), stamp)
	if Verify(kp.Public, "y", []byte("value"), stamp, sig) {
		t.Error("altered key accepted")
	}
	if Verify(kp.Public, "x", []byte("VALUE"), stamp, sig) {
		t.Error("altered value accepted")
	}
	if Verify(kp.Public, "x", []byte("value"), ts.Stamp{Counter: 43, Writer: 7}, sig) {
		t.Error("altered counter accepted")
	}
	if Verify(kp.Public, "x", []byte("value"), ts.Stamp{Counter: 42, Writer: 8}, sig) {
		t.Error("altered writer accepted")
	}
	bad := append([]byte(nil), sig...)
	bad[0] ^= 0xff
	if Verify(kp.Public, "x", []byte("value"), stamp, bad) {
		t.Error("corrupted signature accepted")
	}
	other := testKey(t, 3)
	if Verify(other.Public, "x", []byte("value"), stamp, sig) {
		t.Error("wrong key accepted")
	}
	if Verify(nil, "x", []byte("value"), stamp, sig) {
		t.Error("nil key accepted")
	}
}

func TestDigestInjective(t *testing.T) {
	// The classic length-extension confusion: ("ab", "c") vs ("a", "bc")
	// must produce different digests.
	s := ts.Stamp{Counter: 1, Writer: 1}
	if bytes.Equal(Digest("ab", []byte("c"), s), Digest("a", []byte("bc"), s)) {
		t.Error("digest not injective across key/value boundary")
	}
	if bytes.Equal(Digest("", []byte("ab"), s), Digest("ab", nil, s)) {
		t.Error("digest not injective for empty fields")
	}
	s2 := ts.Stamp{Counter: 1, Writer: 2}
	if bytes.Equal(Digest("a", []byte("b"), s), Digest("a", []byte("b"), s2)) {
		t.Error("digest ignores writer")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if reg.Len() != 0 {
		t.Error("new registry not empty")
	}
	kp := testKey(t, 4)
	reg.Add(9, kp.Public)
	if reg.Len() != 1 {
		t.Error("Len after Add")
	}
	got, ok := reg.Lookup(9)
	if !ok || !bytes.Equal(got, kp.Public) {
		t.Error("Lookup failed")
	}
	if _, ok := reg.Lookup(10); ok {
		t.Error("Lookup of unknown writer succeeded")
	}

	stamp := ts.Stamp{Counter: 5, Writer: 9}
	sig := Sign(kp.Private, "k", []byte("v"), stamp)
	if !reg.VerifyEntry("k", []byte("v"), stamp, sig) {
		t.Error("registry verification failed")
	}
	// Same signature presented under an unregistered writer id fails.
	badStamp := ts.Stamp{Counter: 5, Writer: 10}
	if reg.VerifyEntry("k", []byte("v"), badStamp, sig) {
		t.Error("unknown writer accepted")
	}
	// A forged entry claiming writer 9 without the private key fails.
	forger := testKey(t, 5)
	forgedSig := Sign(forger.Private, "k", []byte("evil"), stamp)
	if reg.VerifyEntry("k", []byte("evil"), stamp, forgedSig) {
		t.Error("forged entry accepted: dissemination assumption would be broken")
	}
}

func TestRegistryKeyIsolation(t *testing.T) {
	// The registry must not alias the caller's key slice.
	reg := NewRegistry()
	kp := testKey(t, 6)
	pub := append([]byte(nil), kp.Public...)
	reg.Add(1, pub)
	pub[0] ^= 0xff
	got, _ := reg.Lookup(1)
	if !bytes.Equal(got, kp.Public) {
		t.Error("registry aliased caller's slice")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	kp := testKey(t, 7)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			reg.Add(uint32(i%16), kp.Public)
		}
	}()
	for i := 0; i < 1000; i++ {
		reg.Lookup(uint32(i % 16))
		reg.Len()
	}
	<-done
}
