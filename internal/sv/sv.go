// Package sv implements self-verifying data for (b, ε)-dissemination quorum
// systems (Section 4 of the paper): data that faulty servers "can suppress
// but not undetectably alter". Writers sign (key, value, timestamp) tuples
// with ed25519; readers verify signatures against a registry of authorized
// writer keys, so any fabricated or altered value is rejected and a faulty
// server is reduced to replaying old-but-genuine values, which timestamps
// already order out.
package sv

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"pqs/internal/ts"
)

// KeyPair holds a writer's ed25519 key pair.
type KeyPair struct {
	Public  ed25519.PublicKey
	Private ed25519.PrivateKey
}

// GenerateKey creates a fresh key pair from the given entropy source
// (crypto/rand.Reader in production; a deterministic reader in tests).
func GenerateKey(rand io.Reader) (KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return KeyPair{}, fmt.Errorf("sv: generating key: %w", err)
	}
	return KeyPair{Public: pub, Private: priv}, nil
}

// Digest produces the canonical byte string that is signed for a
// (key, value, stamp) tuple. Fields are length-prefixed so that no two
// distinct tuples share an encoding.
func Digest(key string, value []byte, stamp ts.Stamp) []byte {
	buf := make([]byte, 0, 8+len(key)+8+len(value)+12)
	var lenb [8]byte
	binary.BigEndian.PutUint64(lenb[:], uint64(len(key)))
	buf = append(buf, lenb[:]...)
	buf = append(buf, key...)
	binary.BigEndian.PutUint64(lenb[:], uint64(len(value)))
	buf = append(buf, lenb[:]...)
	buf = append(buf, value...)
	binary.BigEndian.PutUint64(lenb[:], stamp.Counter)
	buf = append(buf, lenb[:]...)
	var wb [4]byte
	binary.BigEndian.PutUint32(wb[:], stamp.Writer)
	buf = append(buf, wb[:]...)
	return buf
}

// Sign returns the writer's signature over the tuple.
func Sign(priv ed25519.PrivateKey, key string, value []byte, stamp ts.Stamp) []byte {
	return ed25519.Sign(priv, Digest(key, value, stamp))
}

// Verify reports whether sig is a valid signature over the tuple under pub.
func Verify(pub ed25519.PublicKey, key string, value []byte, stamp ts.Stamp, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(pub, Digest(key, value, stamp), sig)
}

// Registry maps writer ids to their public keys. Readers consult it to
// decide which replies are verifiable (step 3 of the Section 4 read
// protocol). Registry is safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	keys map[uint32]ed25519.PublicKey
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{keys: make(map[uint32]ed25519.PublicKey)}
}

// Add registers (or replaces) the public key for a writer.
func (r *Registry) Add(writer uint32, pub ed25519.PublicKey) {
	cp := make(ed25519.PublicKey, len(pub))
	copy(cp, pub)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys[writer] = cp
}

// Lookup returns the public key for a writer, if registered.
func (r *Registry) Lookup(writer uint32) (ed25519.PublicKey, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pub, ok := r.keys[writer]
	return pub, ok
}

// VerifyEntry checks a reply tuple against the registered key of the writer
// named in the stamp. Unknown writers are not verifiable.
func (r *Registry) VerifyEntry(key string, value []byte, stamp ts.Stamp, sig []byte) bool {
	pub, ok := r.Lookup(stamp.Writer)
	if !ok {
		return false
	}
	return Verify(pub, key, value, stamp, sig)
}

// Len returns the number of registered writers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.keys)
}
