package ring

import (
	"fmt"
	"testing"
)

func TestLookupDeterministicAndInMembers(t *testing.T) {
	r, err := New([]int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New([]int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		c := r.Lookup(key)
		if c < 0 || c > 3 {
			t.Fatalf("Lookup(%q) = %d outside members", key, c)
		}
		if c2 := r2.Lookup(key); c2 != c {
			t.Fatalf("rings built from the same members disagree on %q: %d vs %d", key, c, c2)
		}
	}
}

func TestBalance(t *testing.T) {
	const cells, keys = 4, 4000
	r, err := New([]int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cells)
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	for c, got := range counts {
		// With 64 vnodes/cell the arc lengths concentrate tightly; accept a
		// generous 2x band around the mean so the test pins gross imbalance
		// (e.g. a cell owning no arc at all), not hash luck.
		if got < keys/cells/2 || got > keys*2/cells {
			t.Fatalf("cell %d owns %d/%d keys; want within [%d, %d]", c, got, keys, keys/cells/2, keys*2/cells)
		}
	}
}

func TestRebalanceMovesOnlyDepartedArcs(t *testing.T) {
	const keys = 2000
	full, err := New([]int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	without2, err := New([]int{0, 1, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Lookup(key)
		after := without2.Lookup(key)
		if before != 2 && after != before {
			t.Fatalf("key %q moved from surviving cell %d to %d when cell 2 left", key, before, after)
		}
		if before == 2 {
			if after == 2 {
				t.Fatalf("key %q still routes to departed cell 2", key)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the departed cell; balance test should have caught this")
	}
}

func TestNewRejectsBadMembers(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("New(nil) should fail")
	}
	if _, err := New([]int{0, 0}, 0); err == nil {
		t.Fatal("duplicate members should fail")
	}
	if _, err := New([]int{-1}, 0); err == nil {
		t.Fatal("negative member should fail")
	}
	if _, err := New([]int{0}, -3); err == nil {
		t.Fatal("negative vnodes should fail")
	}
}

func TestViewEncodeDecodeRoundTrip(t *testing.T) {
	v := View{Version: 7, Members: []int{0, 1, 3}, Vnodes: 32}
	got, err := DecodeView(v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != v.Version || got.Vnodes != v.Vnodes || len(got.Members) != len(v.Members) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, v)
	}
	for i := range v.Members {
		if got.Members[i] != v.Members[i] {
			t.Fatalf("member %d: %d vs %d", i, got.Members[i], v.Members[i])
		}
	}
	if _, err := DecodeView(nil); err == nil {
		t.Fatal("DecodeView(nil) should fail")
	}
	if _, err := DecodeView(v.Encode()[:10]); err == nil {
		t.Fatal("truncated view should fail")
	}
	if _, err := DecodeView(append(v.Encode(), 0)); err == nil {
		t.Fatal("over-long view should fail")
	}
}
