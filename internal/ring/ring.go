// Package ring implements the consistent-hash keyspace partition behind
// multi-cell clients: an immutable ring of virtual nodes mapping every key
// to one quorum *cell* (a fixed group of n replicas running its own
// probabilistic quorum system).
//
// The construction is the classical consistent-hash ring (Karger et al.;
// the same shape production sharded clients such as memcache routers use):
// each member cell contributes Vnodes points on a 64-bit hash circle, a key
// hashes to a point on the circle, and the first member point at or after
// it (wrapping) owns the key. Virtual nodes smooth the arc lengths, so the
// expected fraction of the keyspace per cell is 1/|members| with variance
// shrinking as Vnodes grows; when the member set changes, only the keys on
// the arcs adjacent to the joining or leaving cell's points move — the
// property that makes Join/Leave rebalancing cheap.
//
// Everything here is a pure function of its inputs: hashing is FNV-1a
// (seedless, stable across processes), so every client that holds the same
// View routes every key identically — which is what lets the chaos
// harness replay multi-cell runs byte-for-byte and lets the per-cell ε
// accounting attribute each operation to exactly one cell.
package ring

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per cell used when a View or
// client configuration leaves Vnodes zero. 64 keeps the max/mean keyspace
// imbalance within a few percent for small member counts while keeping
// ring construction and lookup (binary search over members×64 points)
// trivially cheap.
const DefaultVnodes = 64

// point is one virtual node: a position on the hash circle owned by a cell.
type point struct {
	hash uint64
	cell int
}

// Ring is an immutable consistent-hash ring over a set of member cells.
// Construct with New (or View.Ring); safe for concurrent use.
type Ring struct {
	points  []point
	members []int
}

// New builds a ring over the given member cell ids with vnodes virtual
// nodes per member (0 means DefaultVnodes). Member ids must be
// non-negative and distinct.
func New(members []int, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ring: at least one member cell is required")
	}
	if vnodes == 0 {
		vnodes = DefaultVnodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("ring: vnodes %d must be positive", vnodes)
	}
	seen := make(map[int]bool, len(members))
	r := &Ring{
		points:  make([]point, 0, len(members)*vnodes),
		members: append([]int(nil), members...),
	}
	for _, m := range members {
		if m < 0 {
			return nil, fmt.Errorf("ring: member cell id %d must be non-negative", m)
		}
		if seen[m] {
			return nil, fmt.Errorf("ring: duplicate member cell id %d", m)
		}
		seen[m] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(m, v), cell: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit collision between distinct vnodes is astronomically
		// unlikely; break it by cell id so the order — and with it every
		// client's routing — is still a pure function of the member set.
		return r.points[i].cell < r.points[j].cell
	})
	return r, nil
}

// Lookup returns the member cell owning key: the cell of the first virtual
// node at or clockwise-after the key's position on the circle.
func (r *Ring) Lookup(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the circle's start
	}
	return r.points[i].cell
}

// Members returns the member cell ids (a copy, in construction order).
func (r *Ring) Members() []int { return append([]int(nil), r.members...) }

// keyHash positions a key on the circle: FNV-1a 64 finalized with
// splitmix64. Raw FNV of short structured inputs leaves the high bits
// poorly mixed (vnode points would cluster on the circle and skew arc
// lengths badly); the finalizer decorrelates them.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// pointHash positions virtual node v of cell m on the circle. The input is
// a fixed 16-byte encoding rather than a formatted string, so the layout
// can never collide with (or allocate like) key hashing.
func pointHash(m, v int) uint64 {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(m))
	binary.BigEndian.PutUint64(buf[8:16], uint64(v))
	h := fnv.New64a()
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// mix64 is the standard splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// View is a versioned description of the ring membership — the unit
// diffusion re-advertises when cells join or leave. Higher versions win;
// clients swap their ring atomically when they learn a newer view (see
// register.Client.ApplyView / RefreshView).
type View struct {
	// Version orders views; a client only adopts a view strictly newer
	// than the one it routes by.
	Version uint64 `json:"version"`
	// Members are the cell ids currently serving the keyspace.
	Members []int `json:"members"`
	// Vnodes is the virtual-node count per member (0 = DefaultVnodes).
	Vnodes int `json:"vnodes,omitempty"`
}

// Ring materializes the view.
func (v View) Ring() (*Ring, error) { return New(v.Members, v.Vnodes) }

// viewMagic versions the View wire encoding.
const viewMagic = 0x52 // 'R'

// Encode serializes the view for storage in a replicated register entry
// (fixed-width big-endian fields; deterministic, so the same view encodes
// to the same bytes on every writer).
func (v View) Encode() []byte {
	buf := make([]byte, 0, 1+8+4+4+4*len(v.Members))
	buf = append(buf, viewMagic)
	buf = binary.BigEndian.AppendUint64(buf, v.Version)
	buf = binary.BigEndian.AppendUint32(buf, uint32(v.Vnodes))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Members)))
	for _, m := range v.Members {
		buf = binary.BigEndian.AppendUint32(buf, uint32(m))
	}
	return buf
}

// DecodeView parses an encoded view.
func DecodeView(b []byte) (View, error) {
	if len(b) < 1+8+4+4 || b[0] != viewMagic {
		return View{}, fmt.Errorf("ring: malformed view encoding (%d bytes)", len(b))
	}
	v := View{
		Version: binary.BigEndian.Uint64(b[1:9]),
		Vnodes:  int(binary.BigEndian.Uint32(b[9:13])),
	}
	n := int(binary.BigEndian.Uint32(b[13:17]))
	if len(b) != 17+4*n {
		return View{}, fmt.Errorf("ring: view encoding truncated: %d members, %d bytes", n, len(b))
	}
	v.Members = make([]int, n)
	for i := 0; i < n; i++ {
		v.Members[i] = int(binary.BigEndian.Uint32(b[17+4*i : 21+4*i]))
	}
	return v, nil
}
