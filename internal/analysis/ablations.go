package analysis

import (
	"fmt"

	"pqs/internal/combin"
	"pqs/internal/core"
	"pqs/internal/quorum"
	"pqs/internal/sim"
)

// AblationMaskingK sweeps the masking read threshold k for fixed (n, q, b)
// and reports the two failure components P(X >= k) (too many faulty
// servers accepted) and P(Y < k) (too few up-to-date servers), plus the
// total exact ε. It demonstrates the Section 5.3 analysis: k must sit
// between E[X] = q²/ℓn and E[Y] ≈ q²/n, and the paper's k = q²/2n choice
// is near the optimum.
func AblationMaskingK(n, q, b int) (*Table, error) {
	m, err := core.NewMasking(n, q, b)
	if err != nil {
		return nil, err
	}
	bestK, bestEps, err := BestMaskingK(n, q, b)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ablation-masking-k",
		Title: fmt.Sprintf("Masking threshold sweep (n=%d, q=%d, b=%d): paper's k=%d, optimal k=%d", n, q, b, m.K(), bestK),
		Columns: []string{
			"k", "P(X>=k)", "P(Y<k)", "exact eps", "marker",
		},
		Notes: []string{
			fmt.Sprintf("E[X] = q^2/(l n) = %.2f, E[Y] = (n-b)q^2/n^2 = %.2f (Section 5.3)",
				combin.HypergeomMean(n, b, q),
				float64(n-b)*float64(q)*float64(q)/(float64(n)*float64(n))),
			fmt.Sprintf("optimal exact eps %.3e at k=%d vs paper-choice eps %.3e at k=%d",
				bestEps, bestK, m.Epsilon(), m.K()),
		},
	}
	for k := 1; k <= q; k++ {
		mk, err := core.NewMaskingWithK(n, q, b, k)
		if err != nil {
			return nil, err
		}
		pxk := combin.HypergeomTailGE(n, b, q, k)
		// P(Y < k) marginal: Y | X=x ~ Hyp(n, q-x, q); report the
		// unconditional value via total probability.
		pyk := 0.0
		for x := 0; x <= min(b, q); x++ {
			px := combin.HypergeomPMF(n, b, q, x)
			if px == 0 {
				continue
			}
			pyk += px * combin.HypergeomCDF(n, q-x, q, k-1)
		}
		marker := ""
		if k == m.K() {
			marker = "paper k=q^2/2n"
		}
		if k == bestK {
			if marker != "" {
				marker += ", "
			}
			marker += "optimal"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%.3e", pxk),
			fmt.Sprintf("%.3e", pyk),
			fmt.Sprintf("%.3e", mk.Epsilon()),
			marker,
		})
	}
	return t, nil
}

// AblationBoundTightness sweeps ℓ for a fixed universe and compares the
// exact ε of R(n, ℓ√n) with the closed-form bound e^{-ℓ²} of Theorem 3.16,
// and likewise the dissemination ε for b = n/3 with the 2e^{-ℓ²/6} bound of
// Theorem 4.4. It quantifies how conservative the paper's bounds are (the
// bounds drive asymptotic claims; the tables use exact values).
func AblationBoundTightness(n int) (*Table, error) {
	t := &Table{
		ID:    "ablation-bound-tightness",
		Title: fmt.Sprintf("Exact eps vs closed-form bounds for R(n=%d, l*sqrt(n))", n),
		Columns: []string{
			"l", "q", "exact eps", "bound e^-l^2", "ratio",
			"dissem exact (b=n/3)", "dissem bound", "ratio",
		},
	}
	b := n / 3
	for _, ell := range []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0} {
		q := core.QFromEll(n, ell)
		if q < 1 || q > n-b {
			continue
		}
		e, err := core.NewEpsilonIntersecting(n, q)
		if err != nil {
			return nil, err
		}
		d, err := core.NewDissemination(n, q, b)
		if err != nil {
			return nil, err
		}
		row := []string{
			fmt.Sprintf("%.1f", ell),
			fmt.Sprint(q),
			fmt.Sprintf("%.3e", e.Epsilon()),
			fmt.Sprintf("%.3e", e.EpsilonBound()),
			ratioStr(e.Epsilon(), e.EpsilonBound()),
			fmt.Sprintf("%.3e", d.Epsilon()),
			fmt.Sprintf("%.3e", d.EpsilonBound()),
			ratioStr(d.Epsilon(), d.EpsilonBound()),
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func ratioStr(exact, bound float64) string {
	if bound == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", exact/bound)
}

// AblationDiffusion measures the empirical stale-read rate of the benign
// protocol on R(n, q) as a function of gossip rounds executed between write
// and read (Section 1.1's strengthening claim). rounds=0 reproduces ε;
// a handful of rounds drives the rate to zero.
func AblationDiffusion(n, q, maxRounds, fanout, trials int, seed int64) (*Table, error) {
	e, err := core.NewEpsilonIntersecting(n, q)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "ablation-diffusion",
		Title: fmt.Sprintf("Diffusion strengthening: stale-read rate vs gossip rounds (n=%d, q=%d, fanout=%d, exact eps=%.3e)",
			n, q, fanout, e.Epsilon()),
		Columns: []string{"gossip rounds", "trials", "stale reads", "empirical rate"},
	}
	for r := 0; r <= maxRounds; r++ {
		res, err := sim.MeasureDiffusionConsistency(e, r, fanout, trials, seed+int64(r))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r),
			fmt.Sprint(res.Trials),
			fmt.Sprint(res.Stale),
			fmt.Sprintf("%.4f", res.Rate),
		})
	}
	return t, nil
}

// AblationLoadFaultTradeoff contrasts the strict load/fault-tolerance
// trade-off (A <= n·L for strict systems, Section 2.2) with the
// probabilistic construction that escapes it: for each n it lists the
// majority system, the grid, and R(n, ℓ√n), showing that only the latter
// combines O(1/√n) load with Θ(n) fault tolerance.
func AblationLoadFaultTradeoff() (*Table, error) {
	t := &Table{
		ID:    "ablation-load-fault",
		Title: "Load vs fault tolerance: strict trade-off and its probabilistic escape",
		Columns: []string{
			"n", "system", "load", "fault tolerance A", "n*load (strict bound on A)", "eps",
		},
	}
	for _, n := range TableSizes {
		maj, err := quorum.NewMajority(n)
		if err != nil {
			return nil, err
		}
		g, err := quorum.NewGrid(n)
		if err != nil {
			return nil, err
		}
		e, err := core.NewEpsilonIntersectingEll(n, PaperEll2[n])
		if err != nil {
			return nil, err
		}
		add := func(name string, load float64, a int, eps string) {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), name,
				fmt.Sprintf("%.4f", load),
				fmt.Sprint(a),
				fmt.Sprintf("%.1f", float64(n)*load),
				eps,
			})
		}
		add(maj.Name(), maj.Load(), maj.FaultTolerance(), "0 (strict)")
		add(g.Name(), g.Load(), g.FaultTolerance(), "0 (strict)")
		add(e.Name(), e.Load(), e.FaultTolerance(), fmt.Sprintf("%.2e", e.Epsilon()))
	}
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
