package analysis

import (
	"fmt"
	"math"

	"pqs/internal/core"
	"pqs/internal/quorum"
	"pqs/internal/sim"
)

// validationSystems returns the full zoo of systems at n=100, b=4 — every
// construction the Section 6 tables mention — for cross-validation runs.
func validationSystems() ([]quorum.System, error) {
	n, b := 100, 4
	var out []quorum.System
	maj, err := quorum.NewMajority(n)
	if err != nil {
		return nil, err
	}
	grid, err := quorum.NewGrid(n)
	if err != nil {
		return nil, err
	}
	dth, err := quorum.NewDissemThreshold(n, b)
	if err != nil {
		return nil, err
	}
	mth, err := quorum.NewMaskThreshold(n, b)
	if err != nil {
		return nil, err
	}
	dgr, err := quorum.NewDissemGrid(n, b)
	if err != nil {
		return nil, err
	}
	mgr, err := quorum.NewMaskGrid(n, b)
	if err != nil {
		return nil, err
	}
	eps, err := core.NewEpsilonIntersectingEll(n, PaperEll2[n])
	if err != nil {
		return nil, err
	}
	dis, err := core.NewDisseminationEll(n, b, PaperEll3[n])
	if err != nil {
		return nil, err
	}
	msk, err := core.NewMasking(n, core.QFromEll(n, PaperEll4[n]), b)
	if err != nil {
		return nil, err
	}
	out = append(out, maj, grid, dth, mth, dgr, mgr, eps, dis, msk)
	return out, nil
}

// TableLoadValidation cross-checks the analytic load (Definition 2.4) of
// every Section 6 construction against the empirical access frequency of
// the busiest server under the built-in strategy.
func TableLoadValidation(trials int, seed int64) (*Table, error) {
	systems, err := validationSystems()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "validation-load",
		Title:   fmt.Sprintf("Analytic vs empirical load (n=100, b=4, %d sampled quorums)", trials),
		Columns: []string{"system", "quorum size", "analytic load", "empirical max rate", "empirical mean rate"},
		Notes: []string{
			"empirical max rate is the Monte-Carlo estimate of L_w(Q): the busiest server's access frequency.",
		},
	}
	for _, sys := range systems {
		res, err := sim.MeasureLoad(sys, trials, seed)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			sys.Name(),
			fmt.Sprint(sys.QuorumSize()),
			fmt.Sprintf("%.4f", sys.Load()),
			fmt.Sprintf("%.4f", res.MaxRate),
			fmt.Sprintf("%.4f", res.MeanRate),
		})
	}
	return t, nil
}

// TableAvailabilityValidation cross-checks the analytic failure probability
// (Definition 2.6) against Monte-Carlo crash sampling for every Section 6
// construction, at several crash probabilities. For ByzGrid systems the
// analytic column is a documented union-bound upper estimate and the
// Monte-Carlo column is the ground truth.
func TableAvailabilityValidation(trials int, seed int64) (*Table, error) {
	systems, err := validationSystems()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "validation-availability",
		Title:   fmt.Sprintf("Analytic vs Monte-Carlo failure probability (n=100, b=4, %d crash samples)", trials),
		Columns: []string{"system", "p", "analytic F_p", "monte-carlo F_p"},
	}
	for _, sys := range systems {
		for _, p := range []float64{0.25, 0.5, 0.75} {
			mc, err := sim.MeasureAvailability(sys, p, trials, seed)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				sys.Name(),
				fmt.Sprintf("%.2f", p),
				fmt.Sprintf("%.4f", sys.FailProb(p)),
				fmt.Sprintf("%.4f", mc),
			})
		}
	}
	return t, nil
}

// FigureScaling is an extension experiment: how the minimal quorum size
// achieving exact ε ≤ 1e-3 grows with n for the three constructions
// (b = √n for the Byzantine ones), demonstrating the ℓ√n scaling law that
// drives the paper's O(1/√n) load results — and the ℓb cost of masking.
func FigureScaling() (*Figure, error) {
	sizes := []int{25, 49, 100, 225, 400, 625, 900, 1225, 1600}
	f := &Figure{
		ID:     "figure-scaling",
		Title:  "Minimal quorum size for eps <= 1e-3 vs universe size (extension)",
		XLabel: "n",
		YLabel: "q",
		Notes: []string{
			"benign and dissemination track l*sqrt(n) with l ~ 2.6-2.9; masking tracks l*b = l*sqrt(n) with l ~ 4-5.",
		},
	}
	benign := Series{Name: "benign min q"}
	dissem := Series{Name: "dissemination min q (b=sqrt(n))"}
	masking := Series{Name: "masking min q (b=sqrt(n))"}
	ref := Series{Name: "2.63*sqrt(n) reference"}
	for _, n := range sizes {
		b := sqrtB(n)
		qb, err := core.MinQForEpsilon(n, EpsTarget)
		if err != nil {
			return nil, err
		}
		qd, err := core.MinQForDissemination(n, b, EpsTarget)
		if err != nil {
			return nil, err
		}
		qm, err := core.MinQForMasking(n, b, EpsTarget)
		if err != nil {
			return nil, err
		}
		x := float64(n)
		benign.X = append(benign.X, x)
		benign.Y = append(benign.Y, float64(qb))
		dissem.X = append(dissem.X, x)
		dissem.Y = append(dissem.Y, float64(qd))
		masking.X = append(masking.X, x)
		masking.Y = append(masking.Y, float64(qm))
		ref.X = append(ref.X, x)
		ref.Y = append(ref.Y, 2.63*math.Sqrt(x))
	}
	f.Series = []Series{benign, dissem, masking, ref}
	return f, nil
}
