package analysis

import (
	"math"
	"strings"
	"testing"
)

func TestTableLoadValidation(t *testing.T) {
	tbl, err := TableLoadValidation(8000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		analytic := floatCell(t, tbl, i, 2)
		empirical := floatCell(t, tbl, i, 3)
		// The busiest-server estimate concentrates near the analytic load
		// (every construction here is symmetric, so max ≈ mean ≈ load).
		if math.Abs(analytic-empirical) > 0.05 {
			t.Errorf("%s: analytic %v vs empirical %v", row[0], analytic, empirical)
		}
	}
}

func TestTableAvailabilityValidation(t *testing.T) {
	tbl, err := TableAvailabilityValidation(6000, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9*3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		analytic := floatCell(t, tbl, i, 2)
		mc := floatCell(t, tbl, i, 3)
		if strings.Contains(row[0], "grid(n=100,b=") {
			// ByzGrid analytic is a union-bound upper estimate.
			if mc > analytic+0.03 {
				t.Errorf("%s p=%s: MC %v exceeds union bound %v", row[0], row[1], mc, analytic)
			}
			continue
		}
		if math.Abs(analytic-mc) > 0.03 {
			t.Errorf("%s p=%s: analytic %v vs MC %v", row[0], row[1], analytic, mc)
		}
	}
}

func TestFigureScaling(t *testing.T) {
	f, err := FigureScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	benign, dissem, masking := f.Series[0], f.Series[1], f.Series[2]
	last := len(benign.X) - 1
	// The sqrt scaling law: q/sqrt(n) stays within a narrow band for the
	// benign construction across two orders of magnitude in n.
	firstRatio := benign.Y[0] / math.Sqrt(benign.X[0])
	lastRatio := benign.Y[last] / math.Sqrt(benign.X[last])
	if lastRatio > firstRatio*1.5 || lastRatio < firstRatio/1.5 {
		t.Errorf("benign q/sqrt(n) drifted: %v -> %v", firstRatio, lastRatio)
	}
	// Ordering: masking needs the largest quorums, dissemination slightly
	// more than benign (b = sqrt(n) servers must be overcome).
	for i := range benign.X {
		if !(benign.Y[i] <= dissem.Y[i] && dissem.Y[i] <= masking.Y[i]) {
			t.Errorf("ordering violated at n=%v: %v, %v, %v",
				benign.X[i], benign.Y[i], dissem.Y[i], masking.Y[i])
		}
	}
	// All curves grow with n.
	for _, s := range f.Series[:3] {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Errorf("%s not monotone at n=%v", s.Name, s.X[i])
			}
		}
	}
}
