package analysis

import (
	"fmt"

	"pqs/internal/core"
	"pqs/internal/quorum"
)

// FigureSizes are the universe sizes plotted in Figures 1-3: n = 100 and
// n = 300, against the strict lower bound for n <= 300.
var FigureSizes = []int{100, 300}

// figureGrid returns the crash-probability domain p ∈ [0, 1].
func figureGrid() []float64 {
	xs := make([]float64, 0, 101)
	for i := 0; i <= 100; i++ {
		xs = append(xs, float64(i)/100)
	}
	return xs
}

// seriesFromFailProb samples sys.FailProb over the p grid.
func seriesFromFailProb(name string, sys quorum.System, xs []float64) Series {
	s := Series{Name: name, X: xs, Y: make([]float64, len(xs))}
	for i, p := range xs {
		s.Y[i] = sys.FailProb(p)
	}
	return s
}

// strictBoundSeries is the lower bound on the failure probability of any
// strict quorum system over at most n servers: min(majority F_p, p).
func strictBoundSeries(n int, xs []float64) Series {
	s := Series{Name: fmt.Sprintf("strict lower bound (n<=%d)", n), X: xs, Y: make([]float64, len(xs))}
	for i, p := range xs {
		s.Y[i] = core.StrictFailLowerBound(n, p)
	}
	return s
}

// Figure1 reproduces Figure 1: failure probabilities of ε-intersecting
// quorum systems. The left panel plots R(n, q) for n = 100, 300 against the
// strict lower bound; the right panel against the threshold (majority)
// construction. Quorum sizes are the minimal q with exact ε ≤ .001,
// matching the figure's stated guarantee.
func Figure1() (left, right *Figure, err error) {
	xs := figureGrid()
	left = &Figure{
		ID:     "figure1-left",
		Title:  "Failure probabilities of probabilistic quorum systems vs strict lower bound",
		XLabel: "p",
		YLabel: "F_p",
		LogY:   true,
	}
	right = &Figure{
		ID:     "figure1-right",
		Title:  "Failure probabilities of probabilistic vs threshold quorum systems",
		XLabel: "p",
		YLabel: "F_p",
		LogY:   true,
	}
	for _, n := range FigureSizes {
		q, err := core.MinQForEpsilon(n, EpsTarget)
		if err != nil {
			return nil, nil, err
		}
		e, err := core.NewEpsilonIntersecting(n, q)
		if err != nil {
			return nil, nil, err
		}
		prob := seriesFromFailProb(fmt.Sprintf("R(n=%d,q=%d)", n, q), e, xs)
		left.Series = append(left.Series, prob)
		right.Series = append(right.Series, prob)
		th, err := quorum.NewMajority(n)
		if err != nil {
			return nil, nil, err
		}
		right.Series = append(right.Series, seriesFromFailProb(fmt.Sprintf("threshold(n=%d)", n), th, xs))
	}
	left.Series = append(left.Series, strictBoundSeries(300, xs))
	annotateCrossovers(left)
	annotatePairwise(right)
	return left, right, nil
}

// Figure2 reproduces Figure 2: failure probabilities of probabilistic
// dissemination quorum systems with b = √n, against the strict lower bound
// (left) and the threshold dissemination construction of size
// ceil((n+b+1)/2) (right).
func Figure2() (left, right *Figure, err error) {
	xs := figureGrid()
	left = &Figure{
		ID:     "figure2-left",
		Title:  "Failure probabilities of probabilistic dissemination quorum systems vs strict lower bound",
		XLabel: "p",
		YLabel: "F_p",
		LogY:   true,
	}
	right = &Figure{
		ID:     "figure2-right",
		Title:  "Failure probabilities of probabilistic vs threshold dissemination quorum systems",
		XLabel: "p",
		YLabel: "F_p",
		LogY:   true,
	}
	for _, n := range FigureSizes {
		b := sqrtB(n)
		q, err := core.MinQForDissemination(n, b, EpsTarget)
		if err != nil {
			return nil, nil, err
		}
		d, err := core.NewDissemination(n, q, b)
		if err != nil {
			return nil, nil, err
		}
		prob := seriesFromFailProb(fmt.Sprintf("R(n=%d,q=%d) b=%d", n, q, b), d, xs)
		left.Series = append(left.Series, prob)
		right.Series = append(right.Series, prob)
		th, err := quorum.NewDissemThreshold(n, b)
		if err != nil {
			return nil, nil, err
		}
		right.Series = append(right.Series,
			seriesFromFailProb(fmt.Sprintf("dissem-threshold(n=%d,b=%d)", n, b), th, xs))
	}
	left.Series = append(left.Series, strictBoundSeries(300, xs))
	annotateCrossovers(left)
	annotatePairwise(right)
	return left, right, nil
}

// Figure3 reproduces Figure 3: failure probabilities of probabilistic
// masking quorum systems with b = √n, against the strict lower bound (left)
// and the threshold masking construction of size ceil((n+2b+1)/2) (right).
func Figure3() (left, right *Figure, err error) {
	xs := figureGrid()
	left = &Figure{
		ID:     "figure3-left",
		Title:  "Failure probabilities of probabilistic masking quorum systems vs strict lower bound",
		XLabel: "p",
		YLabel: "F_p",
		LogY:   true,
	}
	right = &Figure{
		ID:     "figure3-right",
		Title:  "Failure probabilities of probabilistic vs threshold masking quorum systems",
		XLabel: "p",
		YLabel: "F_p",
		LogY:   true,
	}
	for _, n := range FigureSizes {
		b := sqrtB(n)
		q, err := core.MinQForMasking(n, b, EpsTarget)
		if err != nil {
			return nil, nil, err
		}
		m, err := core.NewMasking(n, q, b)
		if err != nil {
			return nil, nil, err
		}
		prob := seriesFromFailProb(fmt.Sprintf("Rk(n=%d,q=%d,k=%d) b=%d", n, q, m.K(), b), m, xs)
		left.Series = append(left.Series, prob)
		right.Series = append(right.Series, prob)
		th, err := quorum.NewMaskThreshold(n, b)
		if err != nil {
			return nil, nil, err
		}
		right.Series = append(right.Series,
			seriesFromFailProb(fmt.Sprintf("mask-threshold(n=%d,b=%d)", n, b), th, xs))
	}
	left.Series = append(left.Series, strictBoundSeries(300, xs))
	annotateCrossovers(left)
	annotatePairwise(right)
	return left, right, nil
}

// sqrtB returns b = floor(√n), the figures' "b = √n" setting.
func sqrtB(n int) int {
	b := 0
	for (b+1)*(b+1) <= n {
		b++
	}
	return b
}

// annotateCrossovers appends a note per series pair describing where the
// first (probabilistic) series beats the last (baseline) series — the
// "who wins where" summary of the figure's left panels, where every
// probabilistic curve is compared against the single strict lower bound.
func annotateCrossovers(f *Figure) {
	if len(f.Series) < 2 {
		return
	}
	base := f.Series[len(f.Series)-1]
	for _, s := range f.Series[:len(f.Series)-1] {
		if s.Name == base.Name {
			continue
		}
		annotatePair(f, s, base)
	}
}

// annotatePairwise annotates (series[0] vs series[1]), (series[2] vs
// series[3]), ...: the right panels interleave each probabilistic curve
// with its same-n threshold baseline.
func annotatePairwise(f *Figure) {
	for i := 0; i+1 < len(f.Series); i += 2 {
		annotatePair(f, f.Series[i], f.Series[i+1])
	}
}

func annotatePair(f *Figure, s, base Series) {
	xo := Crossovers(s, base)
	note := fmt.Sprintf("%s vs %s: beats baseline on p in %s", s.Name, base.Name, winRange(s, base))
	if len(xo) > 0 {
		note += fmt.Sprintf("; crossovers near p = %.2g", xo)
	}
	f.Notes = append(f.Notes, note)
}

// winRange reports the sub-interval of the domain where a < b, formatted
// for human consumption.
func winRange(a, b Series) string {
	lo, hi := -1.0, -1.0
	for i := range a.X {
		if a.Y[i] < b.Y[i] {
			if lo < 0 {
				lo = a.X[i]
			}
			hi = a.X[i]
		}
	}
	if lo < 0 {
		return "(nowhere)"
	}
	return fmt.Sprintf("[%.2f, %.2f]", lo, hi)
}
