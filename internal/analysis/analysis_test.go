package analysis

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses an integer table cell.
func cell(t *testing.T, tbl *Table, row, col int) int {
	t.Helper()
	v, err := strconv.Atoi(tbl.Rows[row][col])
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not an int: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func floatCell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a float: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestTable2MatchesPaper(t *testing.T) {
	tbl, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 2: eps-intersecting (q, A) and grid (q, A) per row.
	wantQ := []int{9, 22, 36, 49, 62, 75}
	wantA := []int{17, 79, 190, 352, 564, 826}
	wantGridQ := []int{9, 19, 29, 39, 49, 59}
	wantGridA := []int{5, 10, 15, 20, 25, 30}
	wantThQ := []int{13, 51, 113, 201, 313, 451}
	if len(tbl.Rows) != len(TableSizes) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if got := cell(t, tbl, i, 2); got != wantQ[i] {
			t.Errorf("row %d: eps-int q = %d, want %d", i, got, wantQ[i])
		}
		if got := cell(t, tbl, i, 3); got != wantA[i] {
			t.Errorf("row %d: eps-int A = %d, want %d", i, got, wantA[i])
		}
		if got := cell(t, tbl, i, 6); got != wantThQ[i] {
			t.Errorf("row %d: threshold q = %d, want %d", i, got, wantThQ[i])
		}
		if got := cell(t, tbl, i, 8); got != wantGridQ[i] {
			t.Errorf("row %d: grid q = %d, want %d", i, got, wantGridQ[i])
		}
		if got := cell(t, tbl, i, 9); got != wantGridA[i] {
			t.Errorf("row %d: grid A = %d, want %d", i, got, wantGridA[i])
		}
		// The probabilistic quorums must be far smaller than threshold ones.
		if cell(t, tbl, i, 2) >= cell(t, tbl, i, 6) {
			t.Errorf("row %d: probabilistic quorum not smaller than threshold", i)
		}
		// Exact eps must be small (within 6x of the 1e-3 target everywhere,
		// per the calibration note in DESIGN.md).
		if eps := floatCell(t, tbl, i, 4); eps > 6e-3 {
			t.Errorf("row %d: exact eps %v implausibly large", i, eps)
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	tbl, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	wantB := []int{2, 4, 7, 9, 12, 14}
	wantQ := []int{11, 24, 37, 50, 63, 77}
	wantA := []int{15, 77, 189, 351, 563, 824}
	wantThQ := []int{14, 53, 117, 205, 319, 458} // n=225 row OCR-corrected
	wantGridQ := []int{16, 36, 56, 111, 141, 171}
	for i := range tbl.Rows {
		if got := cell(t, tbl, i, 1); got != wantB[i] {
			t.Errorf("row %d: b = %d, want %d", i, got, wantB[i])
		}
		if got := cell(t, tbl, i, 3); got != wantQ[i] {
			t.Errorf("row %d: dissem q = %d, want %d", i, got, wantQ[i])
		}
		if got := cell(t, tbl, i, 4); got != wantA[i] {
			t.Errorf("row %d: dissem A = %d, want %d", i, got, wantA[i])
		}
		if got := cell(t, tbl, i, 6); got != wantThQ[i] {
			t.Errorf("row %d: threshold q = %d, want %d", i, got, wantThQ[i])
		}
		if got := cell(t, tbl, i, 8); got != wantGridQ[i] {
			t.Errorf("row %d: grid q = %d, want %d", i, got, wantGridQ[i])
		}
		// The paper's l values achieve the advertised eps <= 1e-3 exactly.
		if eps := floatCell(t, tbl, i, 5); eps > EpsTarget {
			t.Errorf("row %d: exact eps %v exceeds 1e-3", i, eps)
		}
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	tbl, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	wantQ := []int{15, 38, 64, 94, 123, 152}
	wantA := []int{11, 63, 162, 307, 503, 749}
	wantThQ := []int{15, 55, 120, 210, 325, 465}
	wantGridQ := []int{16, 51, 81, 144, 184, 224}
	for i := range tbl.Rows {
		if got := cell(t, tbl, i, 3); got != wantQ[i] {
			t.Errorf("row %d: mask q = %d, want %d", i, got, wantQ[i])
		}
		if got := cell(t, tbl, i, 5); got != wantA[i] {
			t.Errorf("row %d: mask A = %d, want %d", i, got, wantA[i])
		}
		if got := cell(t, tbl, i, 8); got != wantThQ[i] {
			t.Errorf("row %d: threshold q = %d, want %d", i, got, wantThQ[i])
		}
		if got := cell(t, tbl, i, 10); got != wantGridQ[i] {
			t.Errorf("row %d: grid q = %d, want %d", i, got, wantGridQ[i])
		}
		// Optimal-k eps must be no worse than the paper-choice eps.
		if best, std := floatCell(t, tbl, i, 7), floatCell(t, tbl, i, 6); best > std*1.0000001 {
			t.Errorf("row %d: best-k eps %v worse than standard %v", i, best, std)
		}
	}
}

func TestTable1(t *testing.T) {
	tbl := Table1(100, 4)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	md := tbl.Markdown()
	for _, want := range []string{"sqrt(1/n) = 0.1000", "floor((n-1)/3) = 33", "floor((n-1)/4) = 24"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	left, right, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(left.Series) != 3 || len(right.Series) != 4 {
		t.Fatalf("series counts: left %d, right %d", len(left.Series), len(right.Series))
	}
	// Headline claim: for p in [0.5, 0.7] the probabilistic systems beat
	// the strict lower bound (and a fortiori every strict system).
	bound := left.Series[2]
	for _, prob := range left.Series[:2] {
		for i, p := range prob.X {
			if p >= 0.5 && p <= 0.7 {
				if prob.Y[i] >= bound.Y[i] {
					t.Errorf("%s at p=%v: %v not below strict bound %v", prob.Name, p, prob.Y[i], bound.Y[i])
				}
			}
		}
	}
	// Against the threshold construction the probabilistic curve must be
	// decisively below for all interior p (paper: "decisively beat them").
	for pair := 0; pair < 2; pair++ {
		prob, th := right.Series[2*pair], right.Series[2*pair+1]
		for i, p := range prob.X {
			if p >= 0.05 && p <= 0.95 {
				if prob.Y[i] > th.Y[i]*1.0000001 {
					t.Errorf("%s at p=%v: %v above threshold %v", prob.Name, p, prob.Y[i], th.Y[i])
				}
			}
		}
	}
	if len(left.Notes) == 0 || len(right.Notes) == 0 {
		t.Error("crossover annotations missing")
	}
}

func TestFigure2And3Shape(t *testing.T) {
	// The win window over the strict bound narrows as quorums grow: the
	// masking construction needs q=44 at n=100 (fault tolerance 57), so its
	// F_p takes off around p = 1 - q/n ≈ 0.56, exactly as in the paper's
	// Figure 3.
	windows := map[string]float64{"figure2": 0.65, "figure3": 0.54}
	for name, gen := range map[string]func() (*Figure, *Figure, error){
		"figure2": Figure2, "figure3": Figure3,
	} {
		left, right, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bound := left.Series[len(left.Series)-1]
		for _, prob := range left.Series[:len(left.Series)-1] {
			for i, p := range prob.X {
				if p >= 0.5 && p <= windows[name] && prob.Y[i] >= bound.Y[i] {
					t.Errorf("%s %s at p=%v: %v not below bound %v", name, prob.Name, p, prob.Y[i], bound.Y[i])
				}
			}
		}
		// Threshold Byzantine constructions have larger quorums, so the
		// probabilistic curves must beat them even more decisively.
		for pair := 0; pair*2+1 < len(right.Series); pair++ {
			prob, th := right.Series[2*pair], right.Series[2*pair+1]
			for i, p := range prob.X {
				if p >= 0.05 && p <= 0.95 && prob.Y[i] > th.Y[i]*1.0000001 {
					t.Errorf("%s %s at p=%v above threshold baseline", name, prob.Name, p)
				}
			}
		}
	}
}

func TestFigureCSVAndASCII(t *testing.T) {
	left, _, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	csv := left.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 102 { // header + 101 points
		t.Errorf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "p,") {
		t.Errorf("csv header = %q", lines[0])
	}
	art := left.ASCII(60, 20)
	if !strings.Contains(art, "[1]") || !strings.Contains(art, "|") {
		t.Errorf("ascii plot missing structure:\n%s", art)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "with,comma"}, {"2", `with"quote`}},
		Notes:   []string{"a note"},
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "> a note") {
		t.Errorf("markdown:\n%s", md)
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, `"with,comma"`) || !strings.Contains(csv, `"with""quote"`) {
		t.Errorf("csv quoting:\n%s", csv)
	}
}

func TestCrossovers(t *testing.T) {
	a := Series{X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 3, 5}}
	b := Series{X: []float64{0, 1, 2, 3}, Y: []float64{2, 2, 2, 2}}
	xo := Crossovers(a, b)
	if len(xo) != 1 || xo[0] != 2 {
		t.Errorf("crossovers = %v, want [2]", xo)
	}
	if got := Crossovers(b, b); len(got) != 0 {
		t.Errorf("self crossovers = %v", got)
	}
}

func TestAblationMaskingK(t *testing.T) {
	tbl, err := AblationMaskingK(100, 38, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 38 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The paper's k and the optimum must both be marked.
	var sawPaper, sawBest bool
	for _, row := range tbl.Rows {
		if strings.Contains(row[4], "paper") {
			sawPaper = true
		}
		if strings.Contains(row[4], "optimal") {
			sawBest = true
		}
	}
	if !sawPaper || !sawBest {
		t.Error("markers missing")
	}
	// P(X>=k) decreases in k, P(Y<k) increases in k.
	for i := 1; i < len(tbl.Rows); i++ {
		if floatCell(t, tbl, i, 1) > floatCell(t, tbl, i-1, 1)*1.0000001 {
			t.Errorf("P(X>=k) not decreasing at row %d", i)
		}
		if floatCell(t, tbl, i, 2)+1e-12 < floatCell(t, tbl, i-1, 2)-1e-9 {
			t.Errorf("P(Y<k) not increasing at row %d", i)
		}
	}
}

func TestAblationBoundTightness(t *testing.T) {
	tbl, err := AblationBoundTightness(900)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Exact must never exceed the bound: ratio <= 1.
	for i := range tbl.Rows {
		if r := floatCell(t, tbl, i, 4); r > 1.0000001 {
			t.Errorf("row %d: intersecting ratio %v > 1", i, r)
		}
		if r := floatCell(t, tbl, i, 7); r > 1.0000001 {
			t.Errorf("row %d: dissemination ratio %v > 1", i, r)
		}
	}
}

func TestAblationDiffusion(t *testing.T) {
	// n=25, q=5: eps ≈ 0.29, big enough that the decay is visible with few
	// trials. After 6 fanout-2 rounds the update has reached every server.
	tbl, err := AblationDiffusion(25, 5, 6, 2, 120, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	first := floatCell(t, tbl, 0, 3)
	last := floatCell(t, tbl, len(tbl.Rows)-1, 3)
	if first < 0.15 {
		t.Errorf("round-0 rate %v too small to be eps≈0.29", first)
	}
	if last > 0.02 {
		t.Errorf("final rate %v: diffusion did not drive eps toward zero", last)
	}
}

func TestAblationLoadFaultTradeoff(t *testing.T) {
	tbl, err := AblationLoadFaultTradeoff()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3*len(TableSizes) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// For every strict system, A <= n*L (the trade-off); the probabilistic
	// system must break it at the larger n.
	for i := 0; i < len(tbl.Rows); i += 3 {
		for j := 0; j < 2; j++ { // majority, grid
			a := floatCell(t, tbl, i+j, 3)
			nl := floatCell(t, tbl, i+j, 4)
			if a > nl+0.51 { // the bound holds up to rounding of q
				t.Errorf("strict row %d: A=%v exceeds n*L=%v", i+j, a, nl)
			}
		}
	}
	// Last size (n=900): probabilistic A far exceeds n*L.
	i := (len(TableSizes) - 1) * 3
	a := floatCell(t, tbl, i+2, 3)
	nl := floatCell(t, tbl, i+2, 4)
	if a < 2*nl {
		t.Errorf("probabilistic system does not escape the trade-off: A=%v, n*L=%v", a, nl)
	}
}

func TestTableB(t *testing.T) {
	want := map[int]int{25: 2, 100: 4, 225: 7, 400: 9, 625: 12, 900: 14}
	for n, b := range want {
		if got := TableB(n); got != b {
			t.Errorf("TableB(%d) = %d, want %d", n, got, b)
		}
	}
}
