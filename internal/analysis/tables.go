package analysis

import (
	"fmt"
	"math"

	"pqs/internal/core"
	"pqs/internal/quorum"
)

// TableSizes are the universe sizes used throughout Section 6.
var TableSizes = []int{25, 100, 225, 400, 625, 900}

// PaperEll2 are the ℓ values of Table 2 (ε-intersecting systems).
var PaperEll2 = map[int]float64{25: 1.80, 100: 2.20, 225: 2.40, 400: 2.45, 625: 2.48, 900: 2.50}

// PaperEll3 are the ℓ values of Table 3 (dissemination systems).
var PaperEll3 = map[int]float64{25: 2.20, 100: 2.40, 225: 2.47, 400: 2.50, 625: 2.52, 900: 2.57}

// PaperEll4 are the ℓ values of Table 4 (masking systems; ℓ = q/√n there).
var PaperEll4 = map[int]float64{25: 3.00, 100: 3.80, 225: 4.27, 400: 4.70, 625: 4.92, 900: 5.07}

// TableB returns the Byzantine threshold used in Tables 3 and 4:
// b = floor((√n - 1)/2), "the largest b for which all the constructions in
// the table work".
func TableB(n int) int {
	s := int(math.Sqrt(float64(n)))
	return (s - 1) / 2
}

// EpsTarget is the consistency guarantee of Section 6: every probabilistic
// construction shown there claims ε ≤ .001.
const EpsTarget = 1e-3

// Table1 reproduces the Section 2 summary (Table I): lower bounds on load
// and upper bounds on resilience per system type, instantiated at a
// representative n and b so the numbers are concrete.
func Table1(n, b int) *Table {
	t := &Table{
		ID:      "table1",
		Title:   fmt.Sprintf("Bounds on load and resilience of strict quorum system types (n=%d, b=%d)", n, b),
		Columns: []string{"bound", "strict", "b-dissemination", "b-masking"},
	}
	t.Rows = append(t.Rows, []string{
		"load lower bound",
		fmt.Sprintf("sqrt(1/n) = %.4f", core.StrictLoadLowerBound(n)),
		fmt.Sprintf("sqrt((b+1)/n) = %.4f", core.DissemLoadLowerBound(n, b)),
		fmt.Sprintf("sqrt((2b+1)/n) = %.4f", core.MaskLoadLowerBound(n, b)),
	})
	t.Rows = append(t.Rows, []string{
		"max resilience b",
		"n/a",
		fmt.Sprintf("floor((n-1)/3) = %d", quorum.MaxDissemB(n)),
		fmt.Sprintf("floor((n-1)/4) = %d", quorum.MaxMaskB(n)),
	})
	return t
}

// Table2 reproduces Table 2: quorum size and fault tolerance of the
// ε-intersecting construction (with the paper's ℓ) against the threshold
// and grid strict systems, extended with the exact ε our computation gives
// and the minimal quorum size that meets ε ≤ .001 exactly.
func Table2() (*Table, error) {
	t := &Table{
		ID:    "table2",
		Title: "Properties of various quorum systems (paper Table 2)",
		Columns: []string{
			"n", "l", "eps-int q", "eps-int A", "exact eps", "min q for eps<=1e-3",
			"threshold q", "threshold A", "grid q", "grid A",
		},
		Notes: []string{
			"exact eps is C(n-q,q)/C(n,q); the paper's l values give eps slightly above 1e-3 at the smallest n (see EXPERIMENTS.md).",
			"threshold A = n-q+1 (the paper lists q, which differs by one for even n).",
		},
	}
	for _, n := range TableSizes {
		ell := PaperEll2[n]
		e, err := core.NewEpsilonIntersectingEll(n, ell)
		if err != nil {
			return nil, err
		}
		minQ, err := core.MinQForEpsilon(n, EpsTarget)
		if err != nil {
			return nil, err
		}
		th, err := quorum.NewMajority(n)
		if err != nil {
			return nil, err
		}
		g, err := quorum.NewGrid(n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.2f", ell),
			fmt.Sprint(e.QuorumSize()),
			fmt.Sprint(e.FaultTolerance()),
			fmt.Sprintf("%.2e", e.Epsilon()),
			fmt.Sprint(minQ),
			fmt.Sprint(th.QuorumSize()),
			fmt.Sprint(th.FaultTolerance()),
			fmt.Sprint(g.QuorumSize()),
			fmt.Sprint(g.FaultTolerance()),
		})
	}
	return t, nil
}

// Table3 reproduces Table 3: dissemination quorum systems with
// b = floor((√n-1)/2).
func Table3() (*Table, error) {
	t := &Table{
		ID:    "table3",
		Title: "Properties of various dissemination quorum systems (paper Table 3)",
		Columns: []string{
			"n", "b", "l", "dissem q", "dissem A", "exact eps",
			"threshold q", "threshold A", "grid q", "grid A",
		},
		Notes: []string{
			"the paper's l values achieve exact eps <= 1e-3 in every row.",
			"n=225 threshold row: the published table prints 166/60; the construction formulas give 117/109 (OCR corruption; all other rows match the formulas).",
			"grid A = sqrt(n)-r+1 (the paper lists sqrt(n); see EXPERIMENTS.md).",
		},
	}
	for _, n := range TableSizes {
		b := TableB(n)
		ell := PaperEll3[n]
		d, err := core.NewDisseminationEll(n, b, ell)
		if err != nil {
			return nil, err
		}
		th, err := quorum.NewDissemThreshold(n, b)
		if err != nil {
			return nil, err
		}
		g, err := quorum.NewDissemGrid(n, b)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(b),
			fmt.Sprintf("%.2f", ell),
			fmt.Sprint(d.QuorumSize()),
			fmt.Sprint(d.FaultTolerance()),
			fmt.Sprintf("%.2e", d.Epsilon()),
			fmt.Sprint(th.QuorumSize()),
			fmt.Sprint(th.FaultTolerance()),
			fmt.Sprint(g.QuorumSize()),
			fmt.Sprint(g.FaultTolerance()),
		})
	}
	return t, nil
}

// Table4 reproduces Table 4: masking quorum systems with
// b = floor((√n-1)/2) and the paper's ℓ = q/√n parameterization.
func Table4() (*Table, error) {
	t := &Table{
		ID:    "table4",
		Title: "Properties of various masking quorum systems (paper Table 4)",
		Columns: []string{
			"n", "b", "l", "mask q", "k", "mask A", "exact eps", "eps @ best k",
			"threshold q", "threshold A", "grid q", "grid A",
		},
		Notes: []string{
			"k = ceil(q^2/2n) per Section 5.3; 'eps @ best k' shows the k minimizing exact eps (the paper notes the balanced choice is marginally better).",
		},
	}
	for _, n := range TableSizes {
		b := TableB(n)
		q := core.QFromEll(n, PaperEll4[n])
		m, err := core.NewMasking(n, q, b)
		if err != nil {
			return nil, err
		}
		_, bestEps, err := BestMaskingK(n, q, b)
		if err != nil {
			return nil, err
		}
		th, err := quorum.NewMaskThreshold(n, b)
		if err != nil {
			return nil, err
		}
		g, err := quorum.NewMaskGrid(n, b)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(b),
			fmt.Sprintf("%.2f", PaperEll4[n]),
			fmt.Sprint(m.QuorumSize()),
			fmt.Sprint(m.K()),
			fmt.Sprint(m.FaultTolerance()),
			fmt.Sprintf("%.2e", m.Epsilon()),
			fmt.Sprintf("%.2e", bestEps),
			fmt.Sprint(th.QuorumSize()),
			fmt.Sprint(th.FaultTolerance()),
			fmt.Sprint(g.QuorumSize()),
			fmt.Sprint(g.FaultTolerance()),
		})
	}
	return t, nil
}

// BestMaskingK scans all thresholds 1..q and returns the k minimizing the
// exact masking error, with that error. This is the "balance the bounds on
// P(X >= k) and P(Y < k)" refinement the paper mentions at the end of
// Section 5.4.
func BestMaskingK(n, q, b int) (int, float64, error) {
	bestK, bestEps := 0, math.Inf(1)
	for k := 1; k <= q; k++ {
		m, err := core.NewMaskingWithK(n, q, b, k)
		if err != nil {
			return 0, 0, err
		}
		if eps := m.Epsilon(); eps < bestEps {
			bestK, bestEps = k, eps
		}
	}
	return bestK, bestEps, nil
}
