// Package analysis regenerates every table and figure of the paper's
// evaluation (Section 6, plus the Table 1 bounds summary of Section 2) from
// the exact formulas implemented in core/combin, and provides the ablation
// studies called out in DESIGN.md. Generators return structured Tables and
// Figures; render helpers emit Markdown, CSV and ASCII plots, which the
// pqs-experiments command writes to disk.
package analysis

import (
	"fmt"
	"math"
	"strings"
)

// Table is a rendered-agnostic result table.
type Table struct {
	// ID is a short stable identifier, e.g. "table2".
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Notes are free-form footnotes (deviations, parameter choices).
	Notes []string
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", strings.ToUpper(t.ID[:1])+t.ID[1:], t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values. Cells containing commas
// are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Series is one named curve of a figure. X and Y have equal length.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a rendered-agnostic plot: a set of series over a shared domain.
type Figure struct {
	// ID is a short stable identifier, e.g. "figure1-left".
	ID string
	// Title describes the plot.
	Title  string
	XLabel string
	YLabel string
	// LogY plots log10(y); values are clamped at 1e-16 for display.
	LogY   bool
	Series []Series
	Notes  []string
}

// CSV renders the figure as one x column plus one column per series.
// All series must share the same X grid (the generators guarantee this).
func (f *Figure) CSV() string {
	var b strings.Builder
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	writeCSVRow(&b, header)
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].X {
		row := []string{formatFloat(f.Series[0].X[i])}
		for _, s := range f.Series {
			row = append(row, formatFloat(s.Y[i]))
		}
		writeCSVRow(&b, row)
	}
	return b.String()
}

func formatFloat(v float64) string {
	return fmt.Sprintf("%.6g", v)
}

// ASCII renders the figure as a text plot of the given interior size.
// Series are drawn with markers 1..9/a..z in declaration order; later series
// overwrite earlier ones where they collide.
func (f *Figure) ASCII(width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	const floorY = 1e-16
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tr := func(y float64) float64 {
		if !f.LogY {
			return y
		}
		if y < floorY {
			y = floorY
		}
		return math.Log10(y)
	}
	for _, s := range f.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, tr(s.Y[i]))
			ymax = math.Max(ymax, tr(s.Y[i]))
		}
	}
	if math.IsInf(xmin, 1) || xmin == xmax {
		return f.Title + ": (no data)\n"
	}
	if ymin == ymax {
		ymin, ymax = ymin-1, ymax+1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marker := func(i int) byte {
		const marks = "123456789abcdefghijklmnopqrstuvwxyz"
		if i < len(marks) {
			return marks[i]
		}
		return '*'
	}
	for si, s := range f.Series {
		for i := range s.X {
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((tr(s.Y[i]) - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = marker(si)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	yname := f.YLabel
	if f.LogY {
		yname = "log10(" + yname + ")"
	}
	fmt.Fprintf(&b, "  y: %s in [%.3g, %.3g]\n", yname, ymin, ymax)
	for _, row := range grid {
		b.WriteString("  |" + string(row) + "|\n")
	}
	fmt.Fprintf(&b, "  x: %s in [%.3g, %.3g]\n", f.XLabel, xmin, xmax)
	for i, s := range f.Series {
		fmt.Fprintf(&b, "  [%c] %s\n", marker(i), s.Name)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Crossovers returns the x positions where series a first becomes smaller
// than series b and vice versa (sign changes of a-b), assuming a shared X
// grid. It is used to report "who wins where" for the figure comparisons.
func Crossovers(a, b Series) []float64 {
	var out []float64
	n := len(a.X)
	if len(b.X) < n {
		n = len(b.X)
	}
	prev := 0.0
	for i := 0; i < n; i++ {
		d := a.Y[i] - b.Y[i]
		if i > 0 && ((prev < 0 && d > 0) || (prev > 0 && d < 0)) {
			out = append(out, a.X[i])
		}
		if d != 0 {
			prev = d
		}
	}
	return out
}
