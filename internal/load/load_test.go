package load

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"pqs/internal/config"
	"pqs/internal/core"
	"pqs/internal/sim"
)

// smokeConfig is a CI-sized scale point: same machinery as the scale/
// matrix, two orders of magnitude smaller.
func smokeConfig(t *testing.T, seed int64) Config {
	t.Helper()
	sys, err := core.NewEpsilonIntersectingEll(150, 2)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Name: "smoke/steady", System: sys,
		Clients: 400, Arrivals: 10,
		Seed: seed, Bound: sys.EpsilonBound(),
		Tuning:     config.Tuning{Spares: 2, HedgeDelay: 2 * time.Millisecond, EagerRead: true},
		Topology:   config.Topology{LatencyMin: 200 * time.Microsecond, LatencyMax: 800 * time.Microsecond},
		LatencyOps: 600,
	}
}

func TestLoadSteadySmoke(t *testing.T) {
	res, err := Run(smokeConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	if want := 400 * (10 + 9); res.Ops-res.LatencyOps != want {
		t.Errorf("counting ops = %d, want %d (10 writes + 9 lagged reads per client)", res.Ops-res.LatencyOps, want)
	}
	if res.LatencyOps != 600 || res.P50Ms <= 0 || res.P999Ms < res.P50Ms {
		t.Errorf("latency phase malformed: ops=%d p50=%.3f p99=%.3f p999=%.3f",
			res.LatencyOps, res.P50Ms, res.P99Ms, res.P999Ms)
	}
	if !res.Pass {
		t.Errorf("steady smoke failed its bound: ε=%.5f bound=%.4g p=%.3g", res.Epsilon, res.Bound, res.PValue)
	}
	t.Logf("steady: ops=%d ε=%.5f (bound %.4g, p=%.3g) p50=%.2fms p99=%.2fms p999=%.2fms digest=%s sim=%.3fs",
		res.Ops, res.Epsilon, res.Bound, res.PValue, res.P50Ms, res.P99Ms, res.P999Ms, res.Digest, res.SimSeconds)
}

// TestLoadDeterminism is the replay contract: two runs of one Config give
// equal Results, digest included; a different seed gives a different
// digest (the harness is not ignoring it).
func TestLoadDeterminism(t *testing.T) {
	a, err := Run(smokeConfig(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smokeConfig(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("digests diverge: %s vs %s", a.Digest, b.Digest)
	}
	if !reflect.DeepEqual(a, b) {
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		t.Fatalf("results diverge:\n%s\n%s", aj, bj)
	}
	c, err := Run(smokeConfig(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Fatal("seeds 7 and 8 produced identical digests; the harness is ignoring its seed")
	}
}

func churnSmokeConfig(t *testing.T, seed int64) Config {
	cfg := smokeConfig(t, seed)
	cfg.Name = "smoke/churn"
	cfg.Waves = 6
	cfg.WaveSize = 15
	cfg.GossipWaveRounds = 1
	cfg.Timed = true
	cfg.LatencyOps = 0
	return cfg
}

// TestLoadChurnSmoke runs the churn machinery end to end: depth buckets
// beyond D=0 are populated, the decayed verdict passes, and the
// membership view the churn driver re-advertised through the data plane
// is read back by a fresh client.
func TestLoadChurnSmoke(t *testing.T) {
	res, err := Run(churnSmokeConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timed == nil {
		t.Fatal("Timed config produced no timed verdict")
	}
	deep := 0
	for _, g := range res.Timed.Groups {
		t.Logf("D=%d: reads=%d bad=%d bound=%.4g", g.Departures, g.Reads, g.Bad, g.Bound)
		if g.Departures > 0 {
			deep += g.Reads
		}
	}
	if deep == 0 {
		t.Error("no reads landed in D>0 buckets; the view stamping or wave placement is broken")
	}
	if want := 6 * 15; res.Departures != want || res.MemberView != uint64(want) {
		t.Errorf("departures=%d view=%d, want %d", res.Departures, res.MemberView, want)
	}
	if res.AdvertisedView != res.MemberView {
		t.Errorf("fresh reader observed advertised view %d, want %d: the diffusion re-advertisement is broken",
			res.AdvertisedView, res.MemberView)
	}
	if !res.Pass {
		t.Errorf("churn smoke failed its decayed bound: ε=%.5f p=%.3g", res.Epsilon, res.Timed.PValue)
	}
}

// TestLoadNegativeViewBlind is the acceptance negative test: the
// view-blind storm must FAIL the timed gate — proof that the depth
// bucketing (and not just the churn itself) is load-bearing.
func TestLoadNegativeViewBlind(t *testing.T) {
	cfg, err := NegativeConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timed == nil {
		t.Fatal("negative config produced no timed verdict")
	}
	for _, g := range res.Timed.Groups {
		if g.Departures != 0 {
			t.Errorf("view-blind run produced depth bucket D=%d", g.Departures)
		}
	}
	if res.Pass {
		t.Fatalf("negative view-blind config PASSED (ε=%.5f vs bound %.4g, p=%.3g): the scale gate has no teeth",
			res.Epsilon, res.Bound, res.Timed.PValue)
	}
	t.Logf("negative: ε=%.5f vs bound %.4g, p=%.3g — failed as required", res.Epsilon, res.Bound, res.Timed.PValue)

	// The same storm WITH views must pass: the failure above comes from
	// blinding the view stamps, not from the storm being unsurvivable.
	cfg2, err := NegativeConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg2.ViewBlind = false
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Pass {
		t.Errorf("the negative storm fails even WITH views (p=%.3g): it does not isolate view-blindness", res2.Timed.PValue)
	}
}

// TestLoadReadHeavy exercises fraction mode.
func TestLoadReadHeavy(t *testing.T) {
	cfg := smokeConfig(t, 5)
	cfg.Name = "smoke/read-heavy"
	cfg.ReadFraction = 0.8
	cfg.Arrivals = 20
	cfg.LatencyOps = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads <= res.Writes {
		t.Errorf("read-heavy run did more writes (%d) than reads (%d)", res.Writes, res.Reads)
	}
	if !res.Pass {
		t.Errorf("read-heavy smoke failed: ε=%.5f p=%.3g", res.Epsilon, res.PValue)
	}
}

// TestLoadTCPVirtual pins the scale harness to the real wire path at
// reduced scale, including its determinism.
func TestLoadTCPVirtual(t *testing.T) {
	sys, err := core.NewEpsilonIntersectingEll(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	build := func() Config {
		return Config{
			Name: "smoke/tcp", System: sys,
			Clients: 1, Arrivals: 120,
			Seed: 2, Bound: sys.EpsilonBound(),
			Topology: config.Topology{
				Transport:  sim.TransportTCPVirtual,
				LatencyMin: 200 * time.Microsecond,
				LatencyMax: 800 * time.Microsecond,
			},
			LatencyOps: 200,
		}
	}
	a, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Pass {
		t.Errorf("tcp smoke failed: ε=%.5f p=%.3g", a.Epsilon, a.PValue)
	}
	if a.Transport != sim.TransportTCPVirtual {
		t.Errorf("transport = %q", a.Transport)
	}
	if a.LatencyOps != 200 || a.P50Ms <= 0 {
		t.Errorf("tcp latency phase is not charging wire delay: ops=%d p50=%.4fms", a.LatencyOps, a.P50Ms)
	}
	b, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("tcp runs diverge: %s vs %s", a.Digest, b.Digest)
	}
}

// TestScaleScenarioLibrary pins the matrix shape the acceptance criteria
// name: at least one n>=1000 point with >=10k clients, churn on and off,
// a >=2000-replica point, a tcp point, and >=1M ops across the matrix
// (counting arrivals conservatively, before lag trimming).
func TestScaleScenarioLibrary(t *testing.T) {
	seen := map[string]bool{}
	totalOps, maxN, maxClients := 0, 0, 0
	churn, tcp := false, false
	for _, sc := range Scenarios() {
		if sc.Name == "" || sc.Doc == "" {
			t.Errorf("scenario %+v missing name or doc", sc)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario %q", sc.Name)
		}
		seen[sc.Name] = true
		if _, ok := Find(sc.Name); !ok {
			t.Errorf("Find(%q) failed", sc.Name)
		}
		cfg, err := sc.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		ops := cfg.Clients * cfg.Arrivals
		if cfg.ReadFraction == 0 {
			ops = cfg.Clients * (2*cfg.Arrivals - cfg.ReadLag - 1)
		}
		totalOps += ops + cfg.LatencyOps
		if n := cfg.System.N(); n > maxN {
			maxN = n
		}
		if cfg.Clients > maxClients {
			maxClients = cfg.Clients
		}
		if cfg.Waves > 0 {
			churn = true
		}
		if cfg.Topology.Transport == sim.TransportTCPVirtual {
			tcp = true
		}
	}
	if maxN < 2000 {
		t.Errorf("largest universe is %d, want >= 2000", maxN)
	}
	if maxClients < 10000 {
		t.Errorf("largest client population is %d, want >= 10000", maxClients)
	}
	if totalOps < 1_000_000 {
		t.Errorf("matrix totals %d ops, want >= 1M", totalOps)
	}
	if !churn || !tcp {
		t.Errorf("matrix must cover churn (%v) and tcp (%v)", churn, tcp)
	}
}
