// Package load is the population-scale load harness: an open-loop,
// SimClock-driven generator that runs tens of thousands of simulated
// clients at configured arrival rates against universes of a thousand or
// more replicas, with membership churn as a first-class scenario
// dimension, and records the empirical ε, the PBS-style staleness depth
// distribution, and tail-latency percentiles per scale point.
//
// The engine runs two phases under one vtime.SimClock:
//
//   - The COUNTING phase measures ε at population scale. Every client is
//     its own SimClock worker with its own register.Client, rng, writer
//     clock and disjoint keyspace ("c<id>/k<j>"), issuing operations on an
//     open-loop arrival grid (whole microseconds). On the mem plane the
//     clients run with register.Options.InlineDispatch and zero simulated
//     latency, so an operation completes synchronously at its arrival
//     instant: at any moment exactly one client is running, the only
//     shared mutable state (the membership-view counter) changes only at
//     churn-wave instants deliberately placed off the arrival grid (+1ns),
//     and the whole interleaving is deterministic — the run replays
//     byte-for-byte from its seed (Result.Digest pins it). The
//     latency-tolerance knobs of the embedded Tuning block are stripped
//     here (hedging is meaningless at zero latency); W and ReadRepair,
//     which change coverage and therefore ε, are honored.
//
//   - The LATENCY phase measures the tail. A single sequential issuer runs
//     against the same cluster with the Topology latency model installed
//     and the FULL Tuning block (spares, hedging, eager reads) in effect,
//     and records per-operation virtual-time durations into p50/p99/p999.
//
// Churn runs as replacement waves: WaveSize servers are deregistered and
// replaced by empty replicas (their copies are destroyed — a departure in
// the timed-quorum sense), the membership-view counter advances by the
// number of destroyed copies, and the new view version is re-advertised
// through the data plane itself — a quorum write of MemberViewKey by the
// churn driver — while the replacements run rejoin anti-entropy
// (GossipWaveRounds targeted gossip steps), exactly how a real deployment
// brings a fresh server up. Clients stamp every operation with the view
// they currently observe (the engine mirrors the advertised version in an
// atomic, as a deployment would cache its last-seen membership), and the
// checker buckets reads by view distance D and applies the time-decayed
// Gramoli-Raynal bound ε(D) via chaos.EvaluateTimed. Config.ViewBlind
// (the negative configuration) breaks exactly this link — ops stamp view
// 0 while churn still destroys copies — and must fail the timed gate,
// proving it has teeth.
package load

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"pqs/internal/chaos"
	"pqs/internal/combin"
	"pqs/internal/config"
	"pqs/internal/diffusion"
	"pqs/internal/quorum"
	"pqs/internal/register"
	"pqs/internal/replica"
	"pqs/internal/sim"
	"pqs/internal/transport"
	"pqs/internal/ts"
	"pqs/internal/vtime"
)

// MemberViewKey is the reserved register key under which the churn driver
// re-advertises the current membership-view version (the timed-quorum view
// counter), following the precedent of register.ViewKey for ring views.
// The NUL prefix keeps it out of every client keyspace.
const MemberViewKey = "\x00pqs/member-view"

// Config drives one population-scale load run. The access-tuning knobs
// live on the embedded config.Tuning block and the shape knobs on
// config.Topology — load is the first harness born after the Tuning/
// Topology unification, so it has no deprecated flat aliases at all.
type Config struct {
	// Tuning is the access-tuning block. It is honored in full by the
	// latency phase; the counting phase strips the latency-tolerance knobs
	// (Spares/HedgeDelay/AdaptiveHedge/HedgeDeviations/EagerRead) and
	// keeps the coverage knobs (W, ReadRepair) — see the package comment.
	config.Tuning
	// Topology supplies Cells/CellVnodes, Transport and the latency model
	// (used by the latency phase). Topology.N is ignored; the universe
	// size comes from System.N().
	config.Topology

	// Name labels the scale point in reports and BENCH_epsilon.json.
	Name string
	// System is the quorum system under test.
	System quorum.System
	// Clients is the number of concurrently simulated clients.
	Clients int
	// Arrivals is the number of arrival instants per client. In pair mode
	// (ReadFraction == 0) each arrival issues a write plus — once the lag
	// has primed — a lagged read; in fraction mode each arrival issues one
	// operation, a read with probability ReadFraction.
	Arrivals int
	// Arrival is the mean inter-arrival time per client (default 1ms).
	// Actual gaps are drawn uniformly from [Arrival/2, 3·Arrival/2) on a
	// whole-microsecond grid, per client, from the run seed.
	Arrival time.Duration
	// ReadFraction > 0 selects fraction mode: each arrival is a read with
	// this probability (of a uniformly chosen already-written key), else a
	// write. 0 selects pair mode.
	ReadFraction float64
	// Keys is the per-client rotating key-set size (default 4).
	Keys int
	// ReadLag is the pair-mode lag: the read at arrival t targets the key
	// written at arrival t-ReadLag, so churn waves land between a key's
	// write and its read and the depth buckets D > 0 are populated.
	// Default 1; clamped below Keys.
	ReadLag int
	// Seed fixes every random choice. Equal Configs produce equal Results
	// (Result.Digest is the replay contract).
	Seed int64
	// Bound is the flat per-read ε bound (a system's EpsilonBound); Alpha
	// the checker confidence (default chaos.DefaultAlpha).
	Bound float64
	Alpha float64

	// Waves and WaveSize configure churn: Waves replacement waves, evenly
	// spaced over the run (at off-grid +1ns instants), each replacing
	// WaveSize servers (round-robin over the universe) with empty
	// replicas.
	Waves    int
	WaveSize int
	// CrashN, when positive, crashes the CrashN highest-numbered servers
	// (which the churn rotation never touches) a third into the run and
	// recovers them at two thirds — fail-stop pressure on top of churn.
	// Crashes are not departures: the stores survive, so the view counter
	// does not move.
	CrashN int
	// GossipWaveRounds, when positive, runs that many rejoin anti-entropy
	// rounds after each churn wave: only the freshly replaced servers step
	// (push-pull against random live peers), the way a real replacement
	// syncs itself in — a global synchronized round would be n full-store
	// exchanges per wave at population scale. Gossip heals the staleness
	// churn causes — rejoined-empty servers pull state back — so scenarios
	// that want to measure RAW timed decay leave it 0; the membership-view
	// advertisement itself always goes through the data plane's quorum
	// write regardless.
	GossipWaveRounds int
	// Timed enables the time-decayed verdict (chaos.EvaluateTimed over the
	// per-depth read buckets) instead of the flat bound test.
	Timed bool
	// ViewBlind is the negative knob: ops are stamped with view 0 while
	// churn still destroys copies. A Timed run with ViewBlind set must
	// FAIL (all reads collapse into the D=0 bucket, which has no churn
	// allowance) — the scale gate's proof of teeth.
	ViewBlind bool

	// LatencyOps is the number of sequential operations the latency phase
	// issues (0 skips the phase; it also requires Topology.LatencyMax >
	// 0). The phase runs after counting, on the same cluster.
	LatencyOps int
}

// Result is one scale point's record — the per-scenario entry of
// BENCH_epsilon.json.
type Result struct {
	Name      string `json:"name"`
	Seed      int64  `json:"seed"`
	N         int    `json:"n"`
	Q         int    `json:"q"`
	Clients   int    `json:"clients"`
	Transport string `json:"transport"`

	// Ops is the grand total (counting + latency phases); the remaining
	// counters cover the counting phase, whose reads the ε gate judges.
	Ops         int `json:"ops"`
	Writes      int `json:"writes"`
	Reads       int `json:"reads"`
	Correct     int `json:"correct"`
	Stale       int `json:"stale"`
	Unavailable int `json:"unavailable,omitempty"`
	WriteErrs   int `json:"write_errs,omitempty"`

	// Epsilon is the empirical per-read miss rate over eligible reads
	// (reads that got an answer), tested against Bound.
	Epsilon float64 `json:"epsilon"`
	Bound   float64 `json:"bound"`
	// PValue is the flat binomial gate; with Timed set the timed verdict
	// below decides Pass instead and PValue is informational.
	PValue float64 `json:"p_value"`

	// Departures is the total number of copy-destroying replacements;
	// MemberView the final view-counter value; AdvertisedView what a
	// FRESH client read back from MemberViewKey after the run (0 when no
	// churn ran) — the end-to-end check that diffusion re-advertised the
	// membership view through the data plane.
	Departures     int    `json:"departures,omitempty"`
	MemberView     uint64 `json:"member_view,omitempty"`
	AdvertisedView uint64 `json:"advertised_view,omitempty"`

	// Timed is the time-decayed verdict (present when Config.Timed).
	Timed *chaos.TimedResult `json:"timed,omitempty"`

	// StaleDepth[d-1] counts stale reads that were d writes behind the
	// freshest value (the PBS staleness-depth distribution); the last
	// bucket absorbs deeper misses.
	StaleDepth []int `json:"stale_depth,omitempty"`

	// Latency-phase percentiles, in milliseconds of virtual time.
	LatencyOps int     `json:"latency_ops,omitempty"`
	P50Ms      float64 `json:"p50_ms,omitempty"`
	P99Ms      float64 `json:"p99_ms,omitempty"`
	P999Ms     float64 `json:"p999_ms,omitempty"`

	// SimSeconds is the virtual time the whole run covered; Digest is the
	// FNV-64a digest of every client's operation stream in client order —
	// two runs of one Config must produce identical Results, Digest
	// included.
	SimSeconds float64 `json:"sim_seconds"`
	Digest     string  `json:"digest"`
	Pass       bool    `json:"pass"`
}

// staleDepthCap is the histogram size; the last bucket absorbs deeper.
const staleDepthCap = 16

// Run executes one load configuration under a fresh SimClock and returns
// its scale-point record. Deterministic: equal cfg, equal *Result.
func Run(cfg Config) (*Result, error) {
	if cfg.System == nil {
		return nil, errors.New("load: System is required")
	}
	if cfg.Clients <= 0 || cfg.Arrivals <= 0 {
		return nil, errors.New("load: Clients and Arrivals must be positive")
	}
	if cfg.Keys == 0 {
		cfg.Keys = 4
	}
	if cfg.Arrival == 0 {
		cfg.Arrival = time.Millisecond
	}
	if cfg.Arrival < 2*time.Microsecond {
		return nil, errors.New("load: Arrival must be at least 2us (arrivals live on a microsecond grid)")
	}
	if cfg.ReadLag == 0 {
		cfg.ReadLag = 1
	}
	if cfg.ReadLag >= cfg.Keys {
		return nil, fmt.Errorf("load: ReadLag %d must be below Keys %d", cfg.ReadLag, cfg.Keys)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = chaos.DefaultAlpha
	}
	sc := vtime.NewSimClock()
	var res *Result
	var err error
	sc.Run(func() {
		res, err = run(cfg, sc)
	})
	if res != nil {
		res.SimSeconds = sc.Elapsed().Seconds()
	}
	return res, err
}

// engine is the per-run shared state.
type engine struct {
	cfg     cfg
	sc      *vtime.SimClock
	net     *transport.MemNetwork
	vnet    *transport.VirtualNet // tcp-virtual byte streams (nil on mem)
	callTr  transport.Transport
	gossip  *diffusion.Group
	view    atomic.Uint64
	horizon time.Duration
	// nextChurn rotates the replacement targets over [0, churnSpan).
	nextChurn int
	churnSpan int
	total     int
	departed  int
}

type cfg = Config

func run(c Config, sc *vtime.SimClock) (*Result, error) {
	n := c.System.N()
	q := c.System.QuorumSize()
	cluster := sim.NewClusterCfg(config.Cluster{Cells: c.Topology.Cells, N: n, Seed: c.Seed, Clock: sc})
	total := len(cluster.Replicas)

	e := &engine{cfg: c, sc: sc, net: cluster.Net, total: total}
	e.churnSpan = total - c.CrashN
	e.horizon = time.Duration(c.Arrivals) * c.Arrival

	var callTr transport.Transport = cluster.Net
	switch c.Topology.Transport {
	case "", sim.TransportMem:
		// Zero latency during counting; clients dispatch inline (see
		// newClient), so each operation completes at its arrival instant.
	case sim.TransportTCPVirtual:
		if c.Waves > 0 || c.CrashN > 0 {
			return nil, errors.New("load: churn and crashes require the mem plane")
		}
		tc, err := sim.NewTCPCluster(cluster, sc, c.Seed+0x7C9, 0)
		if err != nil {
			return nil, err
		}
		defer tc.Close()
		callTr = tc.Client
		e.vnet = tc.Net
	default:
		return nil, fmt.Errorf("load: unknown Transport %q", c.Topology.Transport)
	}
	e.callTr = callTr

	if c.Waves > 0 && c.GossipWaveRounds > 0 {
		g, err := diffusion.NewGroupClock(cluster.Replicas, cluster.Net, 1, nil, c.Seed+0x60551, sc)
		if err != nil {
			return nil, err
		}
		e.gossip = g
	}

	// The counting phase: one SimClock worker per client, plus the churn
	// and crash drivers.
	clients := make([]*clientState, c.Clients)
	for i := range clients {
		cs, err := e.newClientState(i)
		if err != nil {
			return nil, err
		}
		clients[i] = cs
	}
	wg := vtime.NewWaitGroup(sc)
	wg.Add(len(clients))
	for _, cs := range clients {
		cs := cs
		sc.Go(func() {
			defer wg.Done()
			e.clientLoop(cs)
		})
	}
	if c.Waves > 0 {
		wg.Add(1)
		sc.Go(func() {
			defer wg.Done()
			e.churnLoop()
		})
	}
	if c.CrashN > 0 {
		wg.Add(1)
		sc.Go(func() {
			defer wg.Done()
			e.crashLoop()
		})
	}
	wg.Wait()
	for _, cs := range clients {
		cs.cl.WaitDrained()
	}

	res := e.collect(clients, n, q)

	// End-to-end advertisement check: a FRESH client (new rng, new view of
	// the world) must read back the latest advertised membership version.
	if c.Waves > 0 && !c.ViewBlind {
		fresh, err := e.newClient(c.Seed+0x4EAD, uint32(c.Clients+3), false)
		if err != nil {
			return nil, err
		}
		if rr, err := fresh.Read(context.Background(), MemberViewKey); err == nil && rr.Found && len(rr.Value) == 8 {
			res.AdvertisedView = binary.BigEndian.Uint64(rr.Value)
		}
	}

	// The latency phase: sequential issuer, real latency model, full
	// Tuning block.
	if c.LatencyOps > 0 && c.Topology.LatencyMax > 0 {
		if err := e.latencyPhase(res); err != nil {
			return nil, err
		}
	}

	e.verdict(res)
	return res, nil
}

// clientState is one simulated client's private world: its own register
// client, rng, per-key write records and result counters. Clients share
// only the replicas (on disjoint keys) and the view counter, so the
// interleaving of same-instant arrivals cannot change any outcome.
type clientState struct {
	id   int
	rng  *rand.Rand
	cl   *register.Client
	keys []string
	// ctr[k] is the write counter of key k (its value is the decimal
	// counter); viewAt[k] the membership view observed at its last write.
	ctr    []int
	viewAt []uint64

	writes, reads          int
	correct, stale         int
	unavailable, writeErrs int
	depth                  [staleDepthCap]int
	groups                 map[int]*chaos.TimedGroup
	digest                 uint64
}

// newClient builds a register client for this engine's plane. Counting
// clients strip the latency-tolerance knobs (see the package comment);
// the latency-phase issuer and the churn driver's advertiser keep them.
func (e *engine) newClient(seed int64, writer uint32, fullTuning bool) (*register.Client, error) {
	opts := register.Options{
		System:     e.cfg.System,
		Mode:       register.Benign,
		Transport:  e.callTr,
		Rand:       rand.New(rand.NewSource(seed)),
		Clock:      ts.NewClock(writer),
		Time:       e.sc,
		W:          e.cfg.Tuning.W,
		ReadRepair: e.cfg.Tuning.ReadRepair,
		Cells:      e.cfg.Topology.Cells,
		RingVnodes: e.cfg.Topology.CellVnodes,
	}
	if fullTuning {
		opts.Spares = e.cfg.Tuning.Spares
		opts.HedgeDelay = e.cfg.Tuning.HedgeDelay
		opts.AdaptiveHedge = e.cfg.Tuning.AdaptiveHedge
		opts.HedgeDeviations = e.cfg.Tuning.HedgeDeviations
		opts.EagerRead = e.cfg.Tuning.EagerRead
	} else if e.cfg.Topology.Transport == "" || e.cfg.Topology.Transport == sim.TransportMem {
		opts.InlineDispatch = true
	}
	return register.NewClient(opts)
}

func (e *engine) newClientState(i int) (*clientState, error) {
	cl, err := e.newClient(e.cfg.Seed+0x9E3779B9*int64(i+1), uint32(i+1), false)
	if err != nil {
		return nil, err
	}
	cs := &clientState{
		id:     i,
		rng:    rand.New(rand.NewSource(e.cfg.Seed ^ (0x5DEECE66D * int64(i+1)))),
		cl:     cl,
		keys:   make([]string, e.cfg.Keys),
		ctr:    make([]int, e.cfg.Keys),
		viewAt: make([]uint64, e.cfg.Keys),
		groups: map[int]*chaos.TimedGroup{},
		digest: 14695981039346656037, // FNV-64a offset basis
	}
	for k := range cs.keys {
		cs.keys[k] = "c" + strconv.Itoa(i) + "/k" + strconv.Itoa(k)
	}
	return cs, nil
}

// curView is the membership version ops are stamped with; ViewBlind (the
// negative configuration) severs the link.
func (e *engine) curView() uint64 {
	if e.cfg.ViewBlind {
		return 0
	}
	return e.view.Load()
}

// mix folds v into the client's FNV-64a digest.
func (c *clientState) mix(v uint64) {
	for i := 0; i < 8; i++ {
		c.digest ^= v & 0xFF
		c.digest *= 1099511628211
		v >>= 8
	}
}

// sleepUntil advances the worker to absolute virtual instant t.
func (e *engine) sleepUntil(t time.Duration) {
	if d := t - e.sc.Elapsed(); d > 0 {
		e.sc.Sleep(d)
	}
}

// draw returns the next inter-arrival gap: uniform in [Arrival/2,
// 3·Arrival/2) on a whole-microsecond grid, at least 1us.
func (c *clientState) draw(mean time.Duration) time.Duration {
	us := int64(mean / time.Microsecond)
	gap := us/2 + c.rng.Int63n(us)
	if gap < 1 {
		gap = 1
	}
	return time.Duration(gap) * time.Microsecond
}

func (e *engine) clientLoop(c *clientState) {
	next := c.draw(e.cfg.Arrival)
	for t := 0; t < e.cfg.Arrivals; t++ {
		e.sleepUntil(next)
		next += c.draw(e.cfg.Arrival)
		if e.cfg.ReadFraction > 0 {
			written := e.cfg.Keys
			if c.writes < written {
				written = c.writes
			}
			if written == 0 || c.rng.Float64() >= e.cfg.ReadFraction {
				e.doWrite(c, c.writes%e.cfg.Keys)
			} else {
				e.doRead(c, c.rng.Intn(written))
			}
		} else {
			e.doWrite(c, t%e.cfg.Keys)
			if t >= e.cfg.ReadLag {
				e.doRead(c, (t-e.cfg.ReadLag)%e.cfg.Keys)
			}
		}
	}
}

func (e *engine) doWrite(c *clientState, k int) {
	c.ctr[k]++
	c.viewAt[k] = e.curView()
	val := []byte(strconv.Itoa(c.ctr[k]))
	if _, err := c.cl.Write(context.Background(), c.keys[k], val); err != nil {
		c.writeErrs++
	}
	c.writes++
	c.mix(1)
	c.mix(uint64(k))
	c.mix(uint64(c.ctr[k]))
	c.mix(c.viewAt[k])
}

func (e *engine) doRead(c *clientState, k int) {
	view := e.curView()
	rr, err := c.cl.Read(context.Background(), c.keys[k])
	c.reads++
	exp := c.ctr[k]
	var got int
	switch {
	case err != nil:
		c.unavailable++
		c.mix(2)
		c.mix(uint64(k))
		c.mix(^uint64(0))
		return
	case rr.Found:
		got, _ = strconv.Atoi(string(rr.Value))
	}
	d := 0
	if view > c.viewAt[k] {
		d = int(view - c.viewAt[k])
	}
	g := c.groups[d]
	if g == nil {
		g = &chaos.TimedGroup{Departures: d}
		c.groups[d] = g
	}
	g.Reads++
	if got >= exp {
		c.correct++
	} else {
		c.stale++
		g.Bad++
		depth := exp - got
		if depth > staleDepthCap {
			depth = staleDepthCap
		}
		c.depth[depth-1]++
	}
	c.mix(2)
	c.mix(uint64(k))
	c.mix(uint64(exp))
	c.mix(uint64(got))
	c.mix(uint64(d))
}

// churnLoop fires the replacement waves at off-grid instants (+1ns past
// evenly spaced points of the horizon), so a wave never ties with an
// arrival timer and every client observes a consistent before/after view.
func (e *engine) churnLoop() {
	ctx := context.Background()
	adv, err := e.newClient(e.cfg.Seed+0xAD7E7, uint32(e.cfg.Clients+2), false)
	if err != nil {
		panic(fmt.Sprintf("load: churn advertiser: %v", err))
	}
	replaced := make([]quorum.ServerID, e.cfg.WaveSize)
	joined := make([]*replica.Replica, e.cfg.WaveSize)
	for w := 1; w <= e.cfg.Waves; w++ {
		e.sleepUntil(e.horizon*time.Duration(w)/time.Duration(e.cfg.Waves+1) + time.Nanosecond)
		for j := 0; j < e.cfg.WaveSize; j++ {
			id := quorum.ServerID(e.nextChurn % e.churnSpan)
			e.nextChurn++
			e.net.Deregister(id)
			r := replica.New(id)
			e.net.Register(id, r)
			replaced[j], joined[j] = id, r
		}
		if e.gossip != nil {
			// One batched swap: per-server Add/Remove would refresh every
			// engine's peer set per call — O(n²) id copies per wave, which
			// dominates wall time at n=1000.
			if err := e.gossip.Replace(replaced, joined); err != nil {
				panic(fmt.Sprintf("load: rejoin gossip: %v", err))
			}
		}
		e.view.Add(uint64(e.cfg.WaveSize))
		e.departed += e.cfg.WaveSize
		// Re-advertise the new membership version through the data plane
		// (quorum write) and let the replacements anti-entropy themselves
		// back in. Only the rejoining servers step: a global round at
		// population scale is n full-store first-contact exchanges, and the
		// replacements are the only stores churn emptied.
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], e.view.Load())
		if _, err := adv.Write(ctx, MemberViewKey, buf[:]); err != nil {
			panic(fmt.Sprintf("load: view advertisement: %v", err))
		}
		for r := 0; e.gossip != nil && r < e.cfg.GossipWaveRounds; r++ {
			if err := e.gossip.StepOnly(ctx, replaced); err != nil {
				panic(fmt.Sprintf("load: gossip step: %v", err))
			}
		}
	}
}

// crashLoop crashes the CrashN highest servers (outside the churn
// rotation) a third into the run and recovers them at two thirds; the +2ns
// offsets dodge both the arrival grid and the wave instants.
func (e *engine) crashLoop() {
	e.sleepUntil(e.horizon/3 + 2*time.Nanosecond)
	for j := 0; j < e.cfg.CrashN; j++ {
		e.net.Crash(quorum.ServerID(e.total - 1 - j))
	}
	e.sleepUntil(2*e.horizon/3 + 2*time.Nanosecond)
	for j := 0; j < e.cfg.CrashN; j++ {
		e.net.Recover(quorum.ServerID(e.total - 1 - j))
	}
}

// collect folds the per-client records, in client order, into the Result.
func (e *engine) collect(clients []*clientState, n, q int) *Result {
	res := &Result{
		Name: e.cfg.Name, Seed: e.cfg.Seed, N: n, Q: q,
		Clients: e.cfg.Clients, Transport: e.planeName(),
		Bound:      e.cfg.Bound,
		Departures: e.departed,
		MemberView: e.view.Load(),
		StaleDepth: make([]int, staleDepthCap),
	}
	groups := map[int]*chaos.TimedGroup{}
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range clients {
		res.Writes += c.writes
		res.Reads += c.reads
		res.Correct += c.correct
		res.Stale += c.stale
		res.Unavailable += c.unavailable
		res.WriteErrs += c.writeErrs
		for d, g := range c.groups {
			t := groups[d]
			if t == nil {
				t = &chaos.TimedGroup{Departures: d}
				groups[d] = t
			}
			t.Reads += g.Reads
			t.Bad += g.Bad
		}
		for i, v := range c.depth {
			res.StaleDepth[i] += v
		}
		binary.BigEndian.PutUint64(buf[:], c.digest)
		h.Write(buf[:])
	}
	res.Ops = res.Writes + res.Reads
	eligible := res.Reads - res.Unavailable
	if eligible > 0 {
		res.Epsilon = float64(res.Stale) / float64(eligible)
	}
	if e.cfg.Timed {
		gs := make([]chaos.TimedGroup, 0, len(groups))
		for _, g := range groups {
			gs = append(gs, *g)
		}
		sort.Slice(gs, func(i, j int) bool { return gs[i].Departures < gs[j].Departures })
		res.Timed = chaos.EvaluateTimed(gs, chaos.TimedBound{N: n, QW: q, QR: q, Base: e.cfg.Bound}, e.cfg.Alpha)
	}
	res.Digest = fmt.Sprintf("%016x", h.Sum64())
	return res
}

func (e *engine) planeName() string {
	if e.cfg.Topology.Transport == "" {
		return sim.TransportMem
	}
	return e.cfg.Topology.Transport
}

// latencyPhase runs the sequential tail-latency issuer: the Topology
// latency model goes live on the plane and the full Tuning block (spares,
// hedging, eager reads) steers the client.
func (e *engine) latencyPhase(res *Result) error {
	min, max := e.cfg.Topology.LatencyMin, e.cfg.Topology.LatencyMax
	if e.vnet != nil {
		// TCP traffic rides the virtual byte streams, not the mem network:
		// the chunk-delivery latency lives on the VirtualNet.
		e.vnet.SetLatency(min, max)
	} else {
		e.net.SetLatency(min, max)
	}
	issuer, err := e.newClient(e.cfg.Seed+0x1A7E4C, uint32(e.cfg.Clients+4), true)
	if err != nil {
		return err
	}
	ctx := context.Background()
	durs := make([]time.Duration, 0, e.cfg.LatencyOps)
	for i := 0; i < e.cfg.LatencyOps; i++ {
		key := "lat/k" + strconv.Itoa(i%16)
		start := e.sc.Elapsed()
		if i%2 == 0 {
			if _, err := issuer.Write(ctx, key, []byte{byte(i)}); err != nil {
				return fmt.Errorf("load: latency write: %w", err)
			}
		} else {
			if _, err := issuer.Read(ctx, key); err != nil {
				return fmt.Errorf("load: latency read: %w", err)
			}
		}
		durs = append(durs, e.sc.Elapsed()-start)
	}
	issuer.WaitDrained()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	res.LatencyOps = len(durs)
	res.P50Ms = quantileMs(durs, 50, 100)
	res.P99Ms = quantileMs(durs, 99, 100)
	res.P999Ms = quantileMs(durs, 999, 1000)
	res.Ops += len(durs)
	return nil
}

func quantileMs(sorted []time.Duration, num, den int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * num / den
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// verdict applies the gate: the timed verdict when Config.Timed, else the
// flat binomial bound test (same statistic as the chaos checker's).
func (e *engine) verdict(res *Result) {
	eligible := res.Reads - res.Unavailable
	if eligible <= 0 {
		res.Pass = false
		return
	}
	res.PValue = 1
	if res.Stale > 0 {
		res.PValue = combinTail(eligible, e.cfg.Bound, res.Stale)
	}
	if res.Timed != nil {
		res.Pass = res.Timed.Pass
		return
	}
	res.Pass = res.PValue >= e.cfg.Alpha
}

// combinTail is P(Binomial(m, p) >= k) — the flat gate statistic.
func combinTail(m int, p float64, k int) float64 {
	return combin.GroupedBinomialTailGE([]int{m}, []float64{p}, k)
}
