// The scale/ scenario matrix: the named population-scale points that
// cmd/pqs-chaos -load, `make sim-scale` and CI all run. Together the
// matrix covers over a million operations — four n=1000 points with 10k
// clients (steady, read-heavy, churn, churn-storm), an n=2000 surge, and
// a reduced-scale point on the real TCP stack — each recording its ε,
// staleness-depth and tail-latency record into BENCH_epsilon.json and
// replaying byte-for-byte from its seed.
package load

import (
	"time"

	"pqs/internal/config"
	"pqs/internal/core"
	"pqs/internal/sim"
)

// Scenario is one named scale point.
type Scenario struct {
	Name string
	// Doc is a one-line description for -list and the README.
	Doc string
	// Build instantiates the scale point at the given seed.
	Build func(seed int64) (Config, error)
}

// scaleTuning is the latency-phase access tuning every mem scale point
// uses: hedged, spare-backed, eager — the full straggler-tolerant path.
var scaleTuning = config.Tuning{
	Spares:        2,
	HedgeDelay:    2 * time.Millisecond,
	AdaptiveHedge: true,
	EagerRead:     true,
}

// scaleLatency is the latency model of the tail phase.
var scaleLatency = config.Topology{
	LatencyMin: 200 * time.Microsecond,
	LatencyMax: 800 * time.Microsecond,
}

// Scenarios returns the shipped scale matrix.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "scale/steady",
			Doc:  "n=1000, 10k clients, 230k ops at 1ms mean arrivals; empirical ε of R(n, 2√n) vs e^{-ℓ²}, plus hedged tail percentiles",
			Build: func(seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(1000, 2)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "scale/steady", System: sys,
					Clients: 10000, Arrivals: 12,
					Seed: seed, Bound: sys.EpsilonBound(),
					Tuning: scaleTuning, Topology: scaleLatency,
					LatencyOps: 4000,
				}, nil
			},
		},
		{
			Name: "scale/read-heavy",
			Doc:  "n=1000, 10k clients, 220k ops at an 80% read mix; re-read keys re-sample quorums, so ε must hold per read, not per key",
			Build: func(seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(1000, 2)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "scale/read-heavy", System: sys,
					Clients: 10000, Arrivals: 22, ReadFraction: 0.8,
					Seed: seed, Bound: sys.EpsilonBound(),
					Tuning: scaleTuning, Topology: scaleLatency,
					LatencyOps: 4000,
				}, nil
			},
		},
		{
			Name: "scale/churn",
			Doc:  "n=1000, 10k clients, 230k ops under 12 replacement waves of 25 servers; ops carry membership views and the run is gated by the time-decayed timed-quorum bound ε(D)",
			Build: func(seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(1000, 2)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "scale/churn", System: sys,
					Clients: 10000, Arrivals: 12,
					Waves: 12, WaveSize: 25, Timed: true,
					GossipWaveRounds: 1,
					Seed:             seed, Bound: sys.EpsilonBound(),
					Tuning: scaleTuning, Topology: scaleLatency,
					LatencyOps: 4000,
				}, nil
			},
		},
		{
			Name: "scale/churn-storm",
			Doc:  "n=1000, 10k clients, 230k ops under 16 waves of 50 replacements PLUS 10 fail-stop crashes mid-run; the decayed bound must absorb the storm while crashes (no view movement) stay inside the base margin",
			Build: func(seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(1000, 2)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "scale/churn-storm", System: sys,
					Clients: 10000, Arrivals: 12,
					Waves: 16, WaveSize: 50, CrashN: 10, Timed: true,
					Seed: seed, Bound: sys.EpsilonBound(),
					Tuning: scaleTuning, Topology: scaleLatency,
					LatencyOps: 4000,
				}, nil
			},
		},
		{
			Name: "scale/surge-2k",
			Doc:  "n=2000, 10k clients, 110k ops; the quorum ℓ drops to 1.8 so the bound is looser but the universe doubles — the q≈ℓ√n load/consistency trade at the next scale step",
			Build: func(seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(2000, 1.8)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "scale/surge-2k", System: sys,
					Clients: 10000, Arrivals: 6,
					Seed: seed, Bound: sys.EpsilonBound(),
					Tuning: scaleTuning, Topology: scaleLatency,
					LatencyOps: 4000,
				}, nil
			},
		},
		{
			Name: "scale/tcp",
			Doc:  "n=144 on the REAL TCP stack (framing, binary codec, virtual byte streams) at reduced scale: a sequential issuer drives 6k ops, pinning the scale harness to the production wire path",
			Build: func(seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(144, 2)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "scale/tcp", System: sys,
					Clients: 1, Arrivals: 3000,
					Seed: seed, Bound: sys.EpsilonBound(),
					Tuning: scaleTuning,
					Topology: config.Topology{
						Transport:  sim.TransportTCPVirtual,
						LatencyMin: scaleLatency.LatencyMin,
						LatencyMax: scaleLatency.LatencyMax,
					},
					LatencyOps: 2000,
				}, nil
			},
		},
	}
}

// Find returns the named scale point.
func Find(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// NegativeConfig is the intentionally failing scale configuration (run by
// cmd/pqs-chaos -load -negative and the negative test): a view-blind
// timed run under brutal churn — 40% of the universe replaced per wave,
// ten waves — whose ops all claim view 0. Every read lands in the D=0
// bucket, the decayed allowance never applies, and the observed staleness
// overshoots the flat bound by an enormous margin. The gate MUST fail it;
// it is not part of Scenarios().
func NegativeConfig(seed int64) (Config, error) {
	sys, err := core.NewEpsilonIntersectingEll(300, 2)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Name: "negative/view-blind", System: sys,
		Clients: 2000, Arrivals: 12,
		Waves: 10, WaveSize: 120, Timed: true, ViewBlind: true,
		Seed: seed, Bound: sys.EpsilonBound(),
	}, nil
}
