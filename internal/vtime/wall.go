package vtime

import (
	"context"
	"sync"
	"time"
)

// WallClock is the production Clock: a stateless veneer over the time
// package. All binaries default to it, so threading a Clock through the
// stack changed no runtime behavior.
type WallClock struct{}

// wall is the shared instance handed out by Wall.
var wall = &WallClock{}

// Wall returns the process-wide wall clock.
func Wall() *WallClock { return wall }

// Or returns c, or the wall clock when c is nil — the idiom option structs
// use to make the wall clock their zero-value default.
func Or(c Clock) Clock {
	if c == nil {
		return wall
	}
	return c
}

// Now implements Clock.
func (*WallClock) Now() time.Time { return time.Now() }

// Since implements Clock.
func (*WallClock) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (*WallClock) Sleep(d time.Duration) { time.Sleep(d) }

// NewTimer implements Clock.
func (*WallClock) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, wall: t}
}

// AfterFunc implements Clock.
func (*WallClock) AfterFunc(d time.Duration, fn func()) *Timer {
	t := time.AfterFunc(d, fn)
	return &Timer{wall: t}
}

// timerPool recycles SleepCtx timers: allocating a time.Timer (plus its
// runtime timer) per simulated-latency call dominated MemNetwork profiles,
// so the pooled path the transport grew in PR 2 lives on here.
var timerPool = sync.Pool{New: func() any { return time.NewTimer(time.Hour) }}

// SleepCtx implements Clock, blocking for d or until ctx is done, using a
// pooled timer. Go 1.23 timer semantics (Stop and Reset discard an
// undelivered fire) make the reuse safe without drain dances.
func (*WallClock) SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := timerPool.Get().(*time.Timer)
	t.Reset(d)
	select {
	case <-t.C:
		timerPool.Put(t)
		return nil
	case <-ctx.Done():
		t.Stop()
		timerPool.Put(t)
		return ctx.Err()
	}
}

var _ Clock = (*WallClock)(nil)
