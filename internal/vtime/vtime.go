// Package vtime is the injectable time source every timer-bearing layer of
// the system runs on: the transport's simulated latency, the register
// client's hedge timers and adaptive-hedge latency measurements, the chaos
// harness's slow-lorris delays, and the diffusion round loop all draw their
// notion of "now", their sleeps and their timers from a Clock instead of
// the time package.
//
// Two implementations are provided:
//
//   - WallClock (the default everywhere; see Wall) delegates to the time
//     package, so production binaries — pqsd, pqs-cli — behave exactly as
//     before this package existed.
//   - SimClock is a deterministic virtual-time scheduler for the sim and
//     chaos harnesses: timers fire in virtual-time order with no real
//     waiting, so a run that simulates minutes of latency completes in
//     milliseconds of wall time, and hedge timers — previously the one
//     wall-clock input excluded from the determinism contract — become
//     replayable from the run seed.
//
// # SimClock ordering guarantees
//
// The SimClock scheduler maintains a single virtual now and a heap of
// pending timers ordered by (deadline, creation sequence number):
//
//  1. Timers fire in nondecreasing virtual-time order. Two timers with the
//     same deadline fire in the order they were created (sequence-number
//     tie-break). Creation order — and therefore the fire order of
//     equal-deadline timers — is deterministic when the creations are
//     ordered by the program itself: issued by a single worker, or
//     separated by a quiescence point. Equal-deadline timers created by
//     concurrently racing workers (e.g. two fixed-latency calls dispatched
//     in one burst) may fire in either order across runs; harness code
//     must therefore never let a RECORDED outcome depend on the relative
//     order of same-instant events. The shipped harnesses satisfy this by
//     construction: completion rules are count-based, value selection is
//     max-timestamp with value-equality at equal stamps, and the latency
//     estimator pools values — so same-instant reordering never changes a
//     recorded history, which is what the determinism regressions assert.
//  2. Virtual time advances only at quiescence: every registered worker
//     goroutine is parked (blocked in a clock sleep, a tracked channel
//     receive, or a vtime.WaitGroup wait) and every tracked message has
//     been consumed (see NoteSend/NoteRecv). The scheduler then pops the
//     earliest timer, advances now to its deadline instantly, and fires it
//     — exactly one event at a time, each fully processed (the system
//     re-quiesces) before the next fires.
//  3. A fired timer either delivers on its channel (counting as a tracked
//     message until received) or runs its AfterFunc callback as a fresh
//     registered worker.
//
// Together 1-3 make every recorded outcome under a SimClock a
// deterministic function of the program's inputs: with seeded randomness,
// two runs produce identical histories — including hedge promotions and
// fault delays, which wall clocks cannot replay.
//
// # Worker discipline
//
// SimClock must know about every goroutine participating in the simulated
// world, or it would advance time while work is still in flight. The rules:
//
//   - Enter the simulation through Run (or spawn with Go); plain go
//     statements are invisible to the scheduler and will deadlock or race
//     the clock.
//   - Block only through the clock: Sleep/SleepCtx, a Timer channel
//     consumed with NoteRecv, a tracked channel (NoteSend before send,
//     NoteRecv after receive, Park around the blocking receive), or a
//     vtime.WaitGroup.
//   - Timer channel values follow Go 1.23 semantics: Stop and Reset
//     discard an undelivered fire, so callers never drain stale values.
//   - A channel timer must have a consumer selecting on its channel
//     whenever it can fire (the hedge-timer pattern: the timer's channel is
//     a case of the same select that consumes tracked messages). A fire
//     nobody consumes counts as pending forever and stalls the scheduler.
//
// Context cancellation (SleepCtx) is honored — the sleeper returns ctx.Err()
// promptly and never deadlocks — but a cancellation's wake-up is invisible
// to the scheduler, so it is excluded from the determinism contract. The
// shipped harnesses never cancel inside a virtual run.
//
// Run panics on deadlock (all workers parked, nothing pending, no timer to
// fire): in a simulation that situation means a goroutine is blocked on an
// event that can never happen.
package vtime

import (
	"context"
	"time"
)

// Clock is the time source. Production code receives a Clock and never
// touches the time package for Now/Sleep/timers, which is what lets the
// harnesses substitute virtual time.
type Clock interface {
	// Now returns the current (wall or virtual) time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// Sleep blocks the calling worker for d.
	Sleep(d time.Duration)
	// SleepCtx blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case. It is the context-aware sleep the transport's
	// latency simulation runs on.
	SleepCtx(ctx context.Context, d time.Duration) error
	// NewTimer returns a timer that delivers the clock's now on C after d.
	NewTimer(d time.Duration) *Timer
	// AfterFunc runs fn after d. Under a SimClock fn runs as a registered
	// worker goroutine.
	AfterFunc(d time.Duration, fn func()) *Timer
}

// Timer is the clock-agnostic timer handle. Exactly one of the backing
// fields is set. Stop and Reset follow Go 1.23 time.Timer semantics: an
// undelivered fire is discarded, so the channel never holds a stale value
// after either call.
type Timer struct {
	// C delivers the fire time.
	C <-chan time.Time

	wall *time.Timer
	sim  *simTimer
}

// Stop cancels the timer, reporting whether it was still pending.
func (t *Timer) Stop() bool {
	if t.wall != nil {
		return t.wall.Stop()
	}
	return t.sim.stop()
}

// Reset re-arms the timer for d from now, reporting whether it was still
// pending.
func (t *Timer) Reset(d time.Duration) bool {
	if t.wall != nil {
		return t.wall.Reset(d)
	}
	return t.sim.reset(d)
}
