package vtime

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"time"
)

// simEpoch is the fixed virtual origin. A constant (rather than the wall
// clock at construction) keeps every SimClock run bit-identical: virtual
// timestamps recorded by one run equal those of a replay.
var simEpoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// SimClock is the deterministic virtual-time scheduler. Construct with
// NewSimClock, enter the simulated world with Run, and spawn every
// participant goroutine with Go. See the package documentation for the
// ordering guarantees and the worker discipline.
//
// All methods are safe for concurrent use by worker goroutines.
type SimClock struct {
	mu   sync.Mutex
	cond *sync.Cond

	now     time.Time
	seq     uint64 // timer creation sequence; the deadline tie-break
	timers  timerHeap
	workers int // registered worker goroutines
	parked  int // workers blocked in a clock wait
	pending int // tracked messages sent but not yet consumed
	weak    int // weak wake-ups in flight (see NoteWeakSend)
	running bool
}

// NewSimClock returns a virtual clock at the simulation epoch. It is inert
// until Run is called.
func NewSimClock() *SimClock {
	c := &SimClock{now: simEpoch}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Run executes fn as the root worker of the simulated world and drives the
// scheduler until fn and every worker it spawned (Go, AfterFunc) have
// finished. It panics if the simulation deadlocks: every worker parked,
// no undelivered message, and no timer left to fire.
func (c *SimClock) Run(fn func()) {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		panic("vtime: SimClock.Run called while already running")
	}
	c.running = true
	c.mu.Unlock()

	c.Go(fn)
	c.schedule()

	c.mu.Lock()
	c.running = false
	c.mu.Unlock()
}

// Go spawns fn as a registered worker goroutine. Every goroutine that
// participates in the simulation must be spawned this way (or be the Run
// root); a plain go statement is invisible to the quiescence detector.
func (c *SimClock) Go(fn func()) {
	c.mu.Lock()
	c.workers++
	c.mu.Unlock()
	go func() {
		defer c.workerDone()
		fn()
	}()
}

func (c *SimClock) workerDone() {
	c.mu.Lock()
	c.workers--
	c.cond.Broadcast()
	c.mu.Unlock()
}

// wakeLocked wakes the scheduler, but only when its actionable condition —
// every worker parked and no tracked message in flight — currently holds.
// The scheduler re-checks the full condition on every wake anyway, so
// skipping a broadcast while some worker is still runnable is safe (that
// worker's own Park or exit performs the next guarded wake); what the guard
// buys is not waking the sleeping scheduler thread on every tracked
// message receipt, which at population scale (tens of replies per
// operation, hundreds of thousands of operations) is millions of futex
// round-trips. c.mu must be held.
func (c *SimClock) wakeLocked() {
	if c.parked == c.workers && c.pending == 0 {
		c.cond.Broadcast()
	}
}

// Park marks the calling worker as blocked on an event outside the clock
// (a tracked channel receive, a WaitGroup). It returns the unpark function
// the worker must call as soon as the blocking operation returns, before
// consuming what woke it (NoteRecv comes after unpark).
func (c *SimClock) Park() func() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		panic("vtime: SimClock used outside Run")
	}
	c.parked++
	c.wakeLocked()
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		c.parked--
		c.mu.Unlock()
	}
}

// NoteSend records that a tracked message is about to be sent: the system
// cannot be quiescent until a NoteRecv consumes it. Call immediately
// before the channel send.
func (c *SimClock) NoteSend() {
	c.mu.Lock()
	c.pending++
	c.mu.Unlock()
}

// NoteRecv records consumption of a tracked message. Call after the
// receive (and after unparking).
func (c *SimClock) NoteRecv() {
	c.mu.Lock()
	c.pending--
	c.wakeLocked()
	c.mu.Unlock()
}

// NoteWeakSend records a WEAK wake-up in flight: unlike a tracked message
// it does not stop virtual time from advancing — timers still fire while
// it pends — but it does hold off the deadlock detector, which would
// otherwise see every worker parked with nothing pending and panic while
// the wake-up is still being scheduled by the Go runtime.
//
// Use it for teardown signals whose receivers do nothing observable (a
// worker-pool close making idle workers exit): a strong NoteSend there can
// deadlock the clock — the wake pends until EVERY receiver consumes it,
// and a receiver busy in a handler that sleeps on the clock needs time to
// advance before it can consume anything — while an untracked close can
// race the detector. Weak tracking is exactly the middle ground, at the
// cost that timer fire may interleave with the receiver's (unobservable)
// exit path.
func (c *SimClock) NoteWeakSend() {
	c.mu.Lock()
	c.weak++
	c.mu.Unlock()
}

// NoteWeakRecv records consumption of a weak wake-up (after unparking).
func (c *SimClock) NoteWeakRecv() {
	c.mu.Lock()
	c.weak--
	c.wakeLocked()
	c.mu.Unlock()
}

// Elapsed returns the virtual time consumed since construction — the
// "simulated seconds" a speedup measurement compares against wall time.
func (c *SimClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now.Sub(simEpoch)
}

// schedule is the event loop Run drives on the caller's goroutine: wait
// for quiescence, fire the earliest timer, repeat; return when every
// worker has finished.
func (c *SimClock) schedule() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.workers == 0 {
			return
		}
		if c.parked == c.workers && c.pending == 0 {
			if len(c.timers) == 0 {
				if c.weak > 0 {
					// Weak wake-ups are in flight: their receivers are about
					// to unpark, so this is a scheduling gap, not a deadlock.
					c.cond.Wait()
					continue
				}
				panic(fmt.Sprintf(
					"vtime: deadlock: %d workers all parked, nothing pending, no timer to fire",
					c.workers))
			}
			t := heap.Pop(&c.timers).(*simTimer)
			if t.when.After(c.now) {
				c.now = t.when
			}
			c.fireLocked(t)
			continue
		}
		c.cond.Wait()
	}
}

// fireLocked delivers one timer. c.mu must be held.
func (c *SimClock) fireLocked(t *simTimer) {
	if t.fn != nil {
		// AfterFunc: the callback runs as a registered worker.
		c.workers++
		go func() {
			defer c.workerDone()
			t.fn()
		}()
		return
	}
	// Channel timer: the fire is a tracked message. The channel has
	// capacity 1 and is empty here (Stop/Reset discard undelivered fires,
	// and a timer fires at most once per arming), so the send cannot
	// block.
	select {
	case t.c <- c.now:
		c.pending++
	default:
	}
}

// Now implements Clock.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since implements Clock.
func (c *SimClock) Since(t time.Time) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now.Sub(t)
}

// Sleep implements Clock: it blocks the calling worker until virtual time
// has advanced by d.
func (c *SimClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := c.NewTimer(d)
	unpark := c.Park()
	<-t.C
	unpark()
	c.NoteRecv()
}

// SleepCtx implements Clock: Sleep, abandoned early if ctx is done. The
// cancellation must originate inside the simulated world (a worker or an
// AfterFunc); external cancellations race the scheduler.
func (c *SimClock) SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := c.NewTimer(d)
	unpark := c.Park()
	select {
	case <-t.C:
		unpark()
		c.NoteRecv()
		// A cancellation that raced the timer fire still reports as a
		// cancellation, so the caller's outcome does not depend on which
		// wake-up won.
		return ctx.Err()
	case <-ctx.Done():
		unpark()
		t.Stop()
		return ctx.Err()
	}
}

// NewTimer implements Clock.
func (c *SimClock) NewTimer(d time.Duration) *Timer {
	st := &simTimer{clk: c, c: make(chan time.Time, 1), idx: -1}
	c.mu.Lock()
	c.scheduleLocked(st, d)
	c.mu.Unlock()
	return &Timer{C: st.c, sim: st}
}

// AfterFunc implements Clock: fn runs as a registered worker when the
// timer fires.
func (c *SimClock) AfterFunc(d time.Duration, fn func()) *Timer {
	st := &simTimer{clk: c, fn: fn, idx: -1}
	c.mu.Lock()
	c.scheduleLocked(st, d)
	c.mu.Unlock()
	return &Timer{sim: st}
}

// scheduleLocked arms st for d from now. c.mu must be held.
func (c *SimClock) scheduleLocked(st *simTimer, d time.Duration) {
	if d < 0 {
		d = 0
	}
	st.when = c.now.Add(d)
	c.seq++
	st.seq = c.seq
	heap.Push(&c.timers, st)
	c.wakeLocked()
}

// simTimer is a SimClock timer: either a channel timer (c != nil) or an
// AfterFunc timer (fn != nil).
type simTimer struct {
	clk  *SimClock
	c    chan time.Time
	fn   func()
	when time.Time
	seq  uint64
	idx  int // heap index; -1 when not scheduled
}

// stop implements Timer.Stop: cancel if pending, and discard an
// undelivered fire (Go 1.23 semantics).
func (t *simTimer) stop() bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	if t.idx >= 0 {
		heap.Remove(&t.clk.timers, t.idx)
		return true
	}
	t.drainLocked()
	return false
}

// reset implements Timer.Reset: re-arm for d from now, discarding any
// undelivered fire first.
func (t *simTimer) reset(d time.Duration) bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	active := t.idx >= 0
	if active {
		heap.Remove(&t.clk.timers, t.idx)
	} else {
		t.drainLocked()
	}
	t.clk.scheduleLocked(t, d)
	return active
}

// drainLocked discards an undelivered fire, balancing its pending count.
// clk.mu must be held.
func (t *simTimer) drainLocked() {
	if t.c == nil {
		return
	}
	select {
	case <-t.c:
		t.clk.pending--
		t.clk.wakeLocked()
	default:
	}
}

// timerHeap orders timers by (deadline, creation sequence).
type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *timerHeap) Push(x any) {
	t := x.(*simTimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}

var _ Clock = (*SimClock)(nil)

// WaitGroup is a clock-aware sync.WaitGroup: under a SimClock, a Wait is a
// parked state the quiescence detector understands, and the final Done is
// a tracked wake-up, so the scheduler never advances virtual time while a
// waiter is between release and resumption. Under a wall clock it is a
// plain sync.WaitGroup. Construct with NewWaitGroup.
type WaitGroup struct {
	sim *SimClock // nil in wall mode

	wg sync.WaitGroup // wall mode

	mu      sync.Mutex // sim mode
	n       int
	waiters []chan struct{}
}

// NewWaitGroup returns a WaitGroup bound to c's scheduling discipline.
func NewWaitGroup(c Clock) *WaitGroup {
	sc, _ := c.(*SimClock)
	return &WaitGroup{sim: sc}
}

// Add adds delta to the counter.
func (w *WaitGroup) Add(delta int) {
	if w.sim == nil {
		w.wg.Add(delta)
		return
	}
	w.mu.Lock()
	w.n += delta
	if w.n < 0 {
		w.mu.Unlock()
		panic("vtime: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.releaseLocked()
	}
	w.mu.Unlock()
}

// Done decrements the counter, releasing waiters at zero.
func (w *WaitGroup) Done() { w.Add(-1) }

// releaseLocked wakes every waiter; each wake-up is a tracked message so
// the scheduler waits for the waiters to actually resume. w.mu must be
// held.
func (w *WaitGroup) releaseLocked() {
	for _, ch := range w.waiters {
		w.sim.NoteSend()
		ch <- struct{}{}
	}
	w.waiters = nil
}

// Wait blocks until the counter is zero.
func (w *WaitGroup) Wait() {
	if w.sim == nil {
		w.wg.Wait()
		return
	}
	w.mu.Lock()
	if w.n == 0 {
		w.mu.Unlock()
		return
	}
	ch := make(chan struct{}, 1)
	w.waiters = append(w.waiters, ch)
	w.mu.Unlock()

	unpark := w.sim.Park()
	<-ch
	unpark()
	w.sim.NoteRecv()
}
