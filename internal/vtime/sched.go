package vtime

// Sched exposes the SimClock worker primitives (Go, Park, NoteSend,
// NoteRecv) behind a value that is safe to use under any Clock: built from
// a WallClock it is inert — Go is a plain go statement, Park a no-op, the
// note methods free — so code threaded through it behaves identically in
// production. Built from a SimClock it enrolls every spawn in the
// scheduler's worker registry and every channel handoff in the tracked-
// message accounting, which is what lets a subsystem full of long-lived
// goroutines (the TCP data plane: accept loops, read loops, flushers,
// worker pools) join the virtual-time determinism contract.
//
// The discipline for a tracked handoff over a channel ch:
//
//	sender:                         receiver:
//	  s.NoteSend()                    unpark := s.Park()
//	  ch <- v                         v := <-ch
//	                                  unpark()
//	                                  s.NoteRecv()
//
// A close(ch) that wakes a parked receiver must be preceded by one
// NoteSend per receiver that will observe it, because the receiver's
// NoteRecv is unconditional. See the SimClock package doc for why: the
// scheduler must never advance virtual time while a wake-up is in flight.
type Sched struct {
	sim *SimClock
}

// SchedOf returns the scheduling discipline of c: live when c is a
// SimClock, inert otherwise (including nil).
func SchedOf(c Clock) Sched {
	sc, _ := c.(*SimClock)
	return Sched{sim: sc}
}

// Virtual reports whether the discipline is backed by a SimClock.
func (s Sched) Virtual() bool { return s.sim != nil }

// Go spawns fn: as a registered scheduler worker under a SimClock, as a
// plain goroutine otherwise.
func (s Sched) Go(fn func()) {
	if s.sim != nil {
		s.sim.Go(fn)
		return
	}
	go fn()
}

// noopUnpark keeps Park allocation-free in wall mode.
func noopUnpark() {}

// Park marks the calling worker blocked on a tracked handoff; call the
// returned function the moment the blocking operation returns.
func (s Sched) Park() func() {
	if s.sim == nil {
		return noopUnpark
	}
	return s.sim.Park()
}

// NoteSend records that a tracked message is about to be sent.
func (s Sched) NoteSend() {
	if s.sim != nil {
		s.sim.NoteSend()
	}
}

// NoteRecv records consumption of a tracked message (after unparking).
func (s Sched) NoteRecv() {
	if s.sim != nil {
		s.sim.NoteRecv()
	}
}

// NoteWeakSend records a weak wake-up in flight (a teardown signal whose
// receiver does nothing observable); see SimClock.NoteWeakSend.
func (s Sched) NoteWeakSend() {
	if s.sim != nil {
		s.sim.NoteWeakSend()
	}
}

// NoteWeakRecv records consumption of a weak wake-up.
func (s Sched) NoteWeakRecv() {
	if s.sim != nil {
		s.sim.NoteWeakRecv()
	}
}
