package vtime

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestSimTimersFireInVirtualOrder locks in guarantee 1 of the package doc:
// timers fire in nondecreasing deadline order, ties broken by creation
// sequence, regardless of creation order.
func TestSimTimersFireInVirtualOrder(t *testing.T) {
	clk := NewSimClock()
	var order []int
	clk.Run(func() {
		done := NewWaitGroup(clk)
		fire := func(i int, d time.Duration) {
			done.Add(1)
			clk.AfterFunc(d, func() {
				order = append(order, i)
				done.Done()
			})
		}
		fire(3, 30*time.Millisecond)
		fire(1, 10*time.Millisecond)
		fire(2, 10*time.Millisecond) // same deadline as 1; created later
		fire(4, 40*time.Millisecond)
		done.Wait()
	})
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if got := clk.Elapsed(); got != 40*time.Millisecond {
		t.Fatalf("elapsed %v, want 40ms", got)
	}
}

// TestSimSleepAdvancesInstantly proves the speedup mechanism: simulated
// hours complete in wall milliseconds.
func TestSimSleepAdvancesInstantly(t *testing.T) {
	clk := NewSimClock()
	start := time.Now()
	clk.Run(func() {
		for i := 0; i < 100; i++ {
			clk.Sleep(time.Hour)
		}
	})
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("100 simulated hours took %v of wall time", wall)
	}
	if got := clk.Elapsed(); got != 100*time.Hour {
		t.Fatalf("elapsed %v, want 100h", got)
	}
}

// TestSimConcurrentSleepers checks quiescence detection with many workers:
// time advances only when all are parked, and each wakes at its own
// virtual deadline.
func TestSimConcurrentSleepers(t *testing.T) {
	clk := NewSimClock()
	var woke [8]time.Duration
	clk.Run(func() {
		wg := NewWaitGroup(clk)
		for i := 0; i < 8; i++ {
			i := i
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				clk.Sleep(time.Duration(i+1) * time.Millisecond)
				woke[i] = clk.Now().Sub(simEpoch)
			})
		}
		wg.Wait()
	})
	for i, d := range woke {
		if d != time.Duration(i+1)*time.Millisecond {
			t.Fatalf("worker %d woke at %v", i, d)
		}
	}
}

// TestSimTrackedChannelHandoff exercises the NoteSend/Park/NoteRecv
// protocol gather-style loops use: a producer sleeping virtual latency
// hands results to a parked consumer, and the hedge-style timer fires only
// when the producer is slower than the hedge deadline.
func TestSimTrackedChannelHandoff(t *testing.T) {
	for _, tc := range []struct {
		name      string
		latency   time.Duration
		wantHedge bool
	}{
		{"fast-producer", 2 * time.Millisecond, false},
		{"slow-producer", 20 * time.Millisecond, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clk := NewSimClock()
			hedged := false
			clk.Run(func() {
				ch := make(chan int, 1)
				clk.Go(func() {
					clk.Sleep(tc.latency)
					clk.NoteSend()
					ch <- 42
				})
				hedge := clk.NewTimer(10 * time.Millisecond)
				defer hedge.Stop()
				for {
					unpark := clk.Park()
					select {
					case v := <-ch:
						unpark()
						clk.NoteRecv()
						if v != 42 {
							t.Errorf("got %d", v)
						}
						return
					case <-hedge.C:
						unpark()
						clk.NoteRecv()
						hedged = true
					}
				}
			})
			if hedged != tc.wantHedge {
				t.Fatalf("hedged=%v, want %v", hedged, tc.wantHedge)
			}
		})
	}
}

// TestSimSleepCtxCancel checks that a context cancelled from inside the
// simulated world aborts a virtual sleep. Cancellation is outside the
// determinism contract (the wake is invisible to the scheduler), but the
// observable outcome — a prompt ctx.Err() — must hold either way.
func TestSimSleepCtxCancel(t *testing.T) {
	clk := NewSimClock()
	var err error
	clk.Run(func() {
		ctx, cancel := context.WithCancel(context.Background())
		clk.AfterFunc(5*time.Millisecond, cancel)
		err = clk.SleepCtx(ctx, time.Hour)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSimTimerStopReset checks Stop cancels a pending timer for good and
// Reset moves a pending timer to its new deadline.
func TestSimTimerStopReset(t *testing.T) {
	clk := NewSimClock()
	clk.Run(func() {
		tm := clk.NewTimer(time.Millisecond)
		if !tm.Stop() {
			t.Error("Stop on pending timer = false")
		}
		// The stopped timer must not fire: sleep past its old deadline.
		clk.Sleep(2 * time.Millisecond)

		tm2 := clk.NewTimer(time.Millisecond)
		if !tm2.Reset(3 * time.Millisecond) {
			t.Error("Reset on pending timer = false")
		}
		unpark := clk.Park()
		<-tm2.C
		unpark()
		clk.NoteRecv()
		if got := clk.Elapsed(); got != 5*time.Millisecond {
			t.Errorf("reset timer fired at %v, want 5ms (2ms + reset 3ms)", got)
		}
	})
}

// TestSimDeadlockPanics locks in the failure mode: a worker blocked on an
// event that can never happen panics the run instead of hanging.
func TestSimDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked run did not panic")
		}
	}()
	clk := NewSimClock()
	clk.Run(func() {
		unpark := clk.Park()
		defer unpark()
		<-make(chan struct{}) // never satisfied, no timer pending
	})
}

// TestSimWaitGroupReleaseOrdering checks the scheduler does not advance
// time between a WaitGroup release and the waiter resuming: the waiter
// observes the virtual time of the final Done, not of any later timer.
func TestSimWaitGroupReleaseOrdering(t *testing.T) {
	clk := NewSimClock()
	var at time.Duration
	clk.Run(func() {
		wg := NewWaitGroup(clk)
		wg.Add(1)
		clk.Go(func() {
			clk.Sleep(3 * time.Millisecond)
			wg.Done()
		})
		// A later timer the scheduler could wrongly jump to.
		lure := clk.NewTimer(time.Hour)
		defer lure.Stop()
		wg.Wait()
		at = clk.Elapsed()
	})
	if at != 3*time.Millisecond {
		t.Fatalf("waiter resumed at %v, want 3ms", at)
	}
}

// TestWallClockBasics smoke-tests the production implementation.
func TestWallClockBasics(t *testing.T) {
	c := Wall()
	if Or(nil) != c {
		t.Fatal("Or(nil) is not the wall clock")
	}
	start := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(start) <= 0 {
		t.Fatal("Since went backwards")
	}
	if err := c.SleepCtx(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("SleepCtx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.SleepCtx(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("cancelled SleepCtx: %v", err)
	}
	var fired atomic.Bool
	tm := c.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	defer tm.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for !fired.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !fired.Load() {
		t.Fatal("AfterFunc never fired")
	}
}

// TestSimDeterministicReplay runs the same mixed workload twice and
// requires identical event traces — the property the chaos and sim
// harnesses build their determinism contract on.
func TestSimDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		clk := NewSimClock()
		var trace []time.Duration
		clk.Run(func() {
			wg := NewWaitGroup(clk)
			ch := make(chan time.Duration, 16)
			for i := 0; i < 5; i++ {
				i := i
				wg.Add(1)
				clk.Go(func() {
					defer wg.Done()
					clk.Sleep(time.Duration(7*i%5+1) * time.Millisecond)
					clk.NoteSend()
					ch <- clk.Elapsed()
				})
			}
			for n := 0; n < 5; n++ {
				unpark := clk.Park()
				d := <-ch
				unpark()
				clk.NoteRecv()
				trace = append(trace, d)
			}
			wg.Wait()
		})
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a, b)
		}
	}
}
