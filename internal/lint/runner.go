package lint

import (
	"fmt"
	"sort"
)

// All returns the full analyzer suite in reporting order: the five
// determinism invariants first, then the vet-lite passes.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock,
		Rawgo,
		Globalrand,
		Lockspan,
		Epsblind,
		Copylocks,
		Atomic,
		Shadow,
		Loopclosure,
		Nilness,
	}
}

// Run executes analyzers over pkgs, applies //pqslint:allow suppressions,
// and returns the surviving diagnostics sorted by position. Directive
// problems (missing reason, unknown analyzer, unused suppression) are
// reported under the pseudo-analyzer "pqslint" and cannot themselves be
// suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		idx := collectDirectives(pkg, known)
		out = append(out, idx.diags...)
		for _, a := range analyzers {
			var found []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Pkg:       pkg,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Types:     pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report:    func(d Diagnostic) { found = append(found, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range found {
				if !idx.suppresses(d) {
					out = append(out, d)
				}
			}
		}
		out = append(out, idx.unused(ran)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}
