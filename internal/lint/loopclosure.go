package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Loopclosure is a lite reimplementation of vet's loopclosure pass. Under
// go1.22+ semantics loop variables are per-iteration and the classic bug
// cannot happen, so the pass only applies when the enclosing module's go
// directive selects pre-1.22 semantics — it is bundled so the suite stays
// correct if a fixture module (or a future vendored subtree) pins an older
// language version.
var Loopclosure = &Analyzer{
	Name: "loopclosure",
	Doc:  "flag pre-go1.22 loop variables captured by go/defer func literals (vet-lite)",
	Run:  runLoopclosure,
}

func runLoopclosure(pass *Pass) error {
	if !pass.Pkg.langBelow122(false) {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vars := map[types.Object]bool{}
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.RangeStmt:
				body = n.Body
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
			case *ast.ForStmt:
				body = n.Body
				if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, e := range init.Lhs {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := info.Defs[id]; obj != nil {
								vars[obj] = true
							}
						}
					}
				}
			default:
				return true
			}
			if len(vars) == 0 {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				var lit *ast.FuncLit
				switch m := m.(type) {
				case *ast.GoStmt:
					lit, _ = m.Call.Fun.(*ast.FuncLit)
				case *ast.DeferStmt:
					lit, _ = m.Call.Fun.(*ast.FuncLit)
				}
				if lit == nil {
					return true
				}
				ast.Inspect(lit.Body, func(u ast.Node) bool {
					if id, ok := u.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil && vars[obj] {
							pass.Reportf(id.Pos(),
								"loop variable %s captured by func literal (per-loop semantics before go1.22)", id.Name)
						}
					}
					return true
				})
				return true
			})
			return true
		})
	}
	return nil
}
