package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// epsblindTargets matches the register functions that make up the
// hedge-delay and spare-promotion paths. The ε-preservation argument
// (PR 1's promotion analysis, re-proved for adaptive hedging in PR 4)
// requires these paths to be identity-blind: a spare is dispatched on
// observed failure or on a timer, never because of WHICH servers are in
// the access set — that conditioning is what keeps the completing quorum
// the strategy's sample conditioned on liveness, so Theorems 3.2/4.2/5.2
// still bound ε. Branching on a server identity anywhere in these
// functions silently voids the theorem.
var epsblindTargets = regexp.MustCompile(`(?i)hedge|promote|spare|gather|dispatch|delay|route`)

// epsblindAllowed are the functions that legitimately touch per-server or
// per-cell state. observe/ServerLatencies record and expose per-server
// latency EWMAs but feed nothing back into hedging decisions. routeCell is
// the multi-cell router's key→cell consistent-hash lookup — the ONE
// sanctioned identity-dependent step: it picks which cell's engine serves a
// key BEFORE any quorum is sampled, so within the chosen cell the access
// strategy remains the uniform sample the theorems analyze. Any other
// route/dispatch-path function consulting identities still trips the
// analyzer.
var epsblindAllowed = map[string]bool{
	"observe":         true,
	"ServerLatencies": true,
	"routeCell":       true,
}

// Epsblind mechanizes the identity-blindness invariant in
// internal/register: within the hedge/spare-path functions it flags
// comparisons on server identities, switches over them, per-server map
// reads, and identity-to-scalar conversions. Writes (recording an error
// under the failing server's id) and passing identities along to calls are
// fine — it is *deciding* based on identity that breaks the argument.
var Epsblind = &Analyzer{
	Name: "epsblind",
	Doc: "in internal/register's hedge-delay and spare-promotion paths, forbid branching " +
		"on server identities outside the allowlisted observability accessors (ε-preservation)",
	Run: runEpsblind,
}

func runEpsblind(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg.PkgPath, "internal/register") {
		return nil
	}
	lhsOnly := lhsIndexExprs(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if epsblindAllowed[fd.Name.Name] || !epsblindTargets.MatchString(fd.Name.Name) {
				continue
			}
			checkEpsblind(pass, fd, lhsOnly)
		}
	}
	return nil
}

// lhsIndexExprs collects the IndexExprs that appear only as assignment
// targets (m[id] = v): pure writes record state, they do not branch on it.
func lhsIndexExprs(files []*ast.File) map[*ast.IndexExpr]bool {
	set := map[*ast.IndexExpr]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					set[ix] = true
				}
			}
			return true
		})
	}
	return set
}

func checkEpsblind(pass *Pass, fd *ast.FuncDecl, lhsOnly map[*ast.IndexExpr]bool) {
	info := pass.TypesInfo
	name := fd.Name.Name
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				if isServerID(info, n.X) || isServerID(info, n.Y) {
					pass.Reportf(n.Pos(),
						"comparison on server identity in hedge/spare path %s: hedging must stay identity-blind (ε-preservation)", name)
				}
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && isServerID(info, n.Tag) {
				pass.Reportf(n.Pos(),
					"switch over server identity in hedge/spare path %s: hedging must stay identity-blind (ε-preservation)", name)
			}
		case *ast.IndexExpr:
			if lhsOnly[n] {
				return true
			}
			t, ok := info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := t.Type.Underlying().(*types.Map); isMap && isServerID(info, n.Index) {
				pass.Reportf(n.Pos(),
					"per-server map read in hedge/spare path %s: only the allowlisted observability accessors may consult per-server state", name)
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 && isServerID(info, n.Args[0]) {
				if _, isBasic := tv.Type.Underlying().(*types.Basic); isBasic {
					pass.Reportf(n.Pos(),
						"server identity converted to a scalar in hedge/spare path %s: identity must not leak into hedging arithmetic", name)
				}
			}
		}
		return true
	})
}

// isServerID reports whether e's type is the quorum package's ServerID.
func isServerID(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "ServerID" && obj.Pkg() != nil &&
		pathHasSuffix(obj.Pkg().Path(), "internal/quorum")
}
