package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package — the unit the
// analyzers run over. Only non-test files are loaded: the invariants guard
// the code production runs, and tests legitimately reach for wall time and
// ad-hoc randomness.
type Package struct {
	// PkgPath is the import path; Name the package name ("main" for
	// commands, which several analyzers exempt).
	PkgPath string
	Name    string
	// Dir is the package's source directory.
	Dir string
	// ModulePath and GoVersion come from the enclosing module: ModulePath
	// identifies the module root package, GoVersion (e.g. "1.24") selects
	// language semantics (loopclosure only applies below 1.22).
	ModulePath string
	GoVersion  string

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Load lists, parses and type-checks the packages matching patterns,
// resolved relative to dir. It shells out to `go list -deps -export`, which
// compiles every dependency's export data into the build cache; the
// returned target packages are then type-checked from source against that
// export data with a bare go/types configuration. This is the stdlib-only
// equivalent of golang.org/x/tools/go/packages.Load(LoadAllSyntax) for a
// module whose dependencies all resolve locally.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Standard,DepOnly,Export,Module,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var targets []*listPkg
	exports := map[string]string{} // import path -> export data file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	// The gc importer resolves every import from the export data `go list
	// -export` just compiled. Target packages are type-checked from source;
	// their intra-module imports load from export data too, which is fine
	// because the analyzers match types by (package path, name), never by
	// object identity across packages.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one listed package from source.
func typecheck(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		PkgPath: t.ImportPath,
		Name:    t.Name,
		Dir:     t.Dir,
		Fset:    fset,
		Syntax:  files,
	}
	if t.Module != nil {
		pkg.ModulePath = t.Module.Path
		pkg.GoVersion = t.Module.GoVersion
	}
	conf := types.Config{
		Importer: imp,
		// Keep language semantics aligned with the module's go directive —
		// loopclosure, in particular, is only meaningful below go1.22.
		GoVersion: goVersionDirective(pkg.GoVersion),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tp, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
	}
	pkg.Types = tp
	pkg.TypesInfo = info
	return pkg, nil
}

// goVersionDirective converts a module go directive ("1.24") to the
// types.Config.GoVersion form ("go1.24"); empty stays empty (no limit).
func goVersionDirective(v string) string {
	if v == "" {
		return ""
	}
	return "go" + v
}

// langBelow122 reports whether the package's module selects pre-go1.22
// semantics (per-loop rather than per-iteration loop variables).
func (p *Package) langBelow122(defaultTrue bool) bool {
	v := p.GoVersion
	if v == "" {
		return defaultTrue
	}
	var major, minor int
	if _, err := fmt.Sscanf(v, "%d.%d", &major, &minor); err != nil {
		return defaultTrue
	}
	return major < 1 || (major == 1 && minor < 22)
}
