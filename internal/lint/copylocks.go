package lint

import (
	"go/ast"
	"go/types"
)

// Copylocks is a lite reimplementation of vet's copylocks pass (bundled
// here because the container has no module proxy for x/tools): it flags
// values containing sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once,
// sync.Cond, sync.Pool or sync.Map being copied — as function parameters
// or results declared by value, as assignments from existing values, as
// call arguments, or as range values. A copied lock guards nothing.
var Copylocks = &Analyzer{
	Name: "copylocks",
	Doc:  "flag by-value copies of types containing sync primitives (vet-lite)",
	Run:  runCopylocks,
}

// syncLockTypes are the sync types whose copy is always a bug.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// containsLock reports whether t holds a sync primitive by value.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
		return containsLock(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLock(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return false
}

// copiesLock reports whether evaluating e as a value copies a lock: e names
// an existing lock-containing value (identifier, field, dereference, or
// element). Composite literals and calls construct fresh values — vet
// accepts those.
func copiesLock(info *types.Info, e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return containsLock(tv.Type, map[types.Type]bool{})
}

// exprType resolves e's type, looking through Defs for the identifiers a
// `for i, v := range` clause declares (go/types records those as
// definitions, not value expressions).
func exprType(info *types.Info, e ast.Expr) types.Type {
	if id, ok := e.(*ast.Ident); ok {
		if id.Name == "_" {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func runCopylocks(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				for _, fl := range []*ast.FieldList{n.Params, n.Results} {
					if fl == nil {
						continue
					}
					for _, field := range fl.List {
						tv, ok := info.Types[field.Type]
						if !ok || tv.Type == nil {
							continue
						}
						if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
							continue
						}
						if containsLock(tv.Type, map[types.Type]bool{}) {
							pass.Reportf(field.Type.Pos(), "%s passes a lock by value: use a pointer", exprString(field.Type))
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Assigning to _ stores nothing; vet accepts it too.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if copiesLock(info, rhs) {
						pass.Reportf(rhs.Pos(), "assignment copies a lock value: %s", exprString(rhs))
					}
				}
			case *ast.CallExpr:
				if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				for _, arg := range n.Args {
					// new(sync.Mutex) / make(...) name the type, not a value.
					if tv, ok := info.Types[arg]; ok && tv.IsType() {
						continue
					}
					if copiesLock(info, arg) {
						pass.Reportf(arg.Pos(), "call passes a lock by value: %s", exprString(arg))
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if copiesLock(info, r) {
						pass.Reportf(r.Pos(), "return copies a lock value: %s", exprString(r))
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := exprType(info, n.Value); t != nil && containsLock(t, map[types.Type]bool{}) {
						pass.Reportf(n.Value.Pos(), "range value copies a lock: range over indices or pointers instead")
					}
				}
			}
			return true
		})
	}
	return nil
}
