package lint

import (
	"go/ast"
	"strings"
)

// Atomic is a lite reimplementation of vet's atomic pass: it flags
//
//	x = atomic.AddUint64(&x, 1)
//
// — assigning an atomic read-modify-write's result back to its own operand
// with a plain (non-atomic) store, which re-introduces exactly the race
// the atomic call was meant to close.
var Atomic = &Analyzer{
	Name: "atomic",
	Doc:  "flag x = atomic.AddT(&x, ...) style plain stores of atomic results (vet-lite)",
	Run:  runAtomic,
}

func runAtomic(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				fn := funcOf(info, call.Fun)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					continue
				}
				if !strings.HasPrefix(fn.Name(), "Add") && !strings.HasPrefix(fn.Name(), "Swap") {
					continue
				}
				addr, ok := call.Args[0].(*ast.UnaryExpr)
				if !ok {
					continue
				}
				if exprString(addr.X) == exprString(as.Lhs[i]) {
					pass.Reportf(as.Pos(),
						"direct assignment of atomic.%s result to %s races with the atomic operation",
						fn.Name(), exprString(as.Lhs[i]))
				}
			}
			return true
		})
	}
	return nil
}
