package lint

// This file is the fixture harness the per-analyzer tests run on: a small
// reimplementation of golang.org/x/tools/go/analysis/analysistest (which
// the container cannot fetch) over this package's own Load/Run pipeline.
//
// Each fixture under testdata/<name> is a self-contained module (own
// go.mod, module path fixture.example) so Load's `go list` works there and
// the suffix-based package scoping (internal/transport, internal/vtime,
// internal/quorum, ...) matches the same rules as the real tree.
// Expectations are written as trailing comments on the offending line:
//
//	ch <- 1 // want "channel send while mu is held"
//
// Every diagnostic must match an unconsumed want on its line, and every
// want must be consumed by exactly one diagnostic. The regex is matched
// against "[analyzer] message", so a want can pin the analyzer too.

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runFixture loads testdata/<name>, runs the given analyzers over every
// package in it, and compares diagnostics against the `// want` comments.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	diags, pkgs := loadFixture(t, name, analyzers...)
	wants := collectWants(t, pkgs)
	for _, d := range diags {
		key := lineKey(d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString("["+d.Analyzer+"] "+d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", relPos(d.Pos), d.Analyzer, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matched want %q", filepath.Base(w.file), w.line, w.pattern)
			}
		}
	}
}

// loadFixture loads and analyzes one fixture module.
func loadFixture(t *testing.T, name string, analyzers ...*Analyzer) ([]Diagnostic, []*Package) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over fixture %s: %v", name, err)
	}
	return diags, pkgs
}

// want is one parsed expectation: a regex anchored to a file and line.
type want struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	used    bool
}

// wantStringRE matches one double-quoted Go string literal inside a want
// comment's tail.
var wantStringRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants parses every `// want "re" ["re" ...]` comment in the loaded
// fixture packages, keyed by the line the comment sits on.
func collectWants(t *testing.T, pkgs []*Package) map[string][]*want {
	t.Helper()
	out := map[string][]*want{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					body, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					quoted := wantStringRE.FindAllString(body, -1)
					if len(quoted) == 0 {
						t.Fatalf("%s: want comment with no quoted pattern: %s", relPos(pos), c.Text)
					}
					for _, q := range quoted {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: unquoting want pattern %s: %v", relPos(pos), q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: compiling want pattern %q: %v", relPos(pos), pat, err)
						}
						key := lineKey(pos.Filename, pos.Line)
						out[key] = append(out[key], &want{
							file: pos.Filename, line: pos.Line, pattern: pat, re: re,
						})
					}
				}
			}
		}
	}
	return out
}

// relPos renders a position with just the base filename, keeping test
// output stable across checkouts.
func relPos(p token.Position) string {
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Column)
}
