package lint

// One fixture module per analyzer (see linttest_test.go for the harness).
// The wallclock and globalrand fixtures reproduce the two real violations
// this PR scrubbed out of tcp.go: the wall-clock uptime stamp and the
// time.Now().UnixNano()-seeded diffusion RNG.

import "testing"

func TestWallclock(t *testing.T)   { runFixture(t, "wallclock", Wallclock) }
func TestRawgo(t *testing.T)       { runFixture(t, "rawgo", Rawgo) }
func TestGlobalrand(t *testing.T)  { runFixture(t, "globalrand", Globalrand) }
func TestLockspan(t *testing.T)    { runFixture(t, "lockspan", Lockspan) }
func TestEpsblind(t *testing.T)    { runFixture(t, "epsblind", Epsblind) }
func TestCopylocks(t *testing.T)   { runFixture(t, "copylocks", Copylocks) }
func TestAtomic(t *testing.T)      { runFixture(t, "atomic", Atomic) }
func TestShadow(t *testing.T)      { runFixture(t, "shadow", Shadow) }
func TestLoopclosure(t *testing.T) { runFixture(t, "loopclosure", Loopclosure) }
func TestNilness(t *testing.T)     { runFixture(t, "nilness", Nilness) }

// TestRepoClean runs the full suite over the real tree: the repository
// must stay lint-clean, which is the same gate `make lint` enforces in CI.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}
