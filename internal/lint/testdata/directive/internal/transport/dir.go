// Package transport exercises every //pqslint:allow outcome against the
// rawgo analyzer: a suppression that works, a missing reason, an unknown
// analyzer name, an unused directive, and a malformed one.
package transport

func work() {}

func suppressed() {
	//pqslint:allow rawgo worker enrolled by hand in the harness scheduler
	go work()
}

func missingReason() {
	//pqslint:allow rawgo
	go work()
}

func unknownAnalyzer() {
	//pqslint:allow gofmt a reason that helps nobody
	go work()
}

func unusedDirective() {
	//pqslint:allow rawgo nothing below ever spawns
	work()
}

func malformed() {
	//pqslint:allow
	work()
}
