module fixture.example

go 1.21
