// Package fixture pins go 1.21 in its go.mod, the pre-per-iteration
// semantics under which loopclosure applies (the pass is a no-op under
// go1.22+ modules — the language fixed the bug).
package fixture

func capture(fns []func()) {
	for i := range fns {
		go func() {
			fns[i]() // want "loop variable i captured by func literal"
		}()
	}
}

func indexed(n int) {
	for i := 0; i < n; i++ {
		defer func() {
			println(i) // want "loop variable i captured by func literal"
		}()
	}
}

// pinned rebinds per iteration — the classic pre-1.22 fix.
func pinned(fns []func()) {
	for i := range fns {
		i := i
		go func() {
			fns[i]()
		}()
	}
}
