// Command tool exercises the main-package exemption: production entropy
// defaults belong at the edges.
package main

import (
	"fmt"
	"math/rand"
)

func main() {
	fmt.Println(rand.Int())
}
