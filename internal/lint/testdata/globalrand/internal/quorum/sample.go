// Package quorum is in the deterministic scope: its sampling must be
// seed-derived.
package quorum

import "math/rand"

func sample() float64 {
	return rand.Float64() // want "math/rand.Float64 draws from the process-global source"
}

func sampleSeeded(r *rand.Rand) float64 {
	return r.Float64()
}
