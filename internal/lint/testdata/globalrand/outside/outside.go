// Package outside sits outside the deterministic scope; global randomness
// here is unflagged.
package outside

import "math/rand"

func Draw() int { return rand.Int() }
