// Package fixture is the module root (in scope: the real module root
// constructs the diffusion RNG). oldDiffusionRNG reproduces the exact
// pre-PR-6 tcp.go pattern: gossip peer selection seeded from the wall
// clock, unreplayable by construction.
package fixture

import (
	"math/rand"
	"time"
)

func oldDiffusionRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "math/rand.NewSource seeded from the wall clock"
}

func globalDraw(n int) int {
	return rand.Intn(n) // want "math/rand.Intn draws from the process-global source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand.Shuffle draws from the process-global source"
}

// seeded is the approved form: a private source derived from configuration.
func seeded(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}
