// Package fixture seeds the x = atomic.AddT(&x, ...) store-back race the
// atomic pass flags, and the assignments to other variables it accepts.
package fixture

import "sync/atomic"

func racyAdd(n int64) int64 {
	n = atomic.AddInt64(&n, 1) // want "direct assignment of atomic.AddInt64 result to n"
	return n
}

func racySwap(n int64) {
	n = atomic.SwapInt64(&n, 0) // want "direct assignment of atomic.SwapInt64 result to n"
	_ = n
}

func addOK(n *int64) int64 {
	v := atomic.AddInt64(n, 1)
	return v
}

func swapOK(n *int64) int64 {
	old := atomic.SwapInt64(n, 0)
	return old
}
