// Package fixture seeds by-value copies of lock-bearing values in every
// position copylocks checks, plus the pointer and fresh-value forms it
// accepts.
package fixture

import "sync"

// guarded embeds its mutex by value, as structs should.
type guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(g guarded) int { // want "guarded passes a lock by value"
	return g.n
}

func assignCopy(g *guarded) {
	snapshot := *g // want "assignment copies a lock value"
	_ = snapshot
}

func returnCopy(g *guarded) guarded { // want "guarded passes a lock by value"
	return *g // want "return copies a lock value"
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range value copies a lock"
		total += g.n
	}
	return total
}

// byPointer is the correct shape everywhere.
func byPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// fresh values are constructed, not copied; new(sync.Mutex) names a type,
// not a value.
func fresh() *guarded {
	g := guarded{}
	m := new(sync.Mutex)
	_ = m
	return &g
}
