// Package quorum carries the identity type epsblind keys on.
package quorum

// ServerID mirrors the real quorum.ServerID.
type ServerID int

// delayFor matches the hedge-path name pattern but lives outside
// internal/register, so epsblind leaves it alone.
func delayFor(id ServerID) bool { return id == 1 }
