// Package register seeds the identity-conditioned shapes that void the
// ε-preservation argument, alongside the recording/observability forms
// that stay legal.
package register

import "fixture.example/internal/quorum"

// hedgeDelay branches on WHICH server is in the access set — the shape
// the theorems forbid.
func hedgeDelay(ids []quorum.ServerID) bool {
	return ids[0] == 3 // want "comparison on server identity in hedge/spare path hedgeDelay"
}

func promoteSpare(id quorum.ServerID) int {
	switch id { // want "switch over server identity in hedge/spare path promoteSpare"
	case 0:
		return 1
	}
	return 0
}

func dispatchNext(lat map[quorum.ServerID]float64, id quorum.ServerID) float64 {
	return lat[id] // want "per-server map read in hedge/spare path dispatchNext"
}

func spareDelay(id quorum.ServerID) int {
	return int(id) * 3 // want "server identity converted to a scalar in hedge/spare path spareDelay"
}

// gatherErrs only RECORDS per-server state: pure writes stay clean.
func gatherErrs(errs map[quorum.ServerID]error, id quorum.ServerID, err error) {
	errs[id] = err
}

// observe is an allowlisted observability accessor.
func observe(lat map[quorum.ServerID]float64, id quorum.ServerID) float64 {
	return lat[id]
}

// statsByID consults identity but is not a hedge/spare path.
func statsByID(id quorum.ServerID) bool { return id == 0 }

// routeByServer decides routing from a server identity — route-path
// functions are in scope since the multi-cell router landed, and only the
// allowlisted key→cell hash may be identity-dependent.
func routeByServer(id quorum.ServerID) bool {
	return id < 8 // want "comparison on server identity in hedge/spare path routeByServer"
}

// routeCell is the sanctioned key→cell consistent-hash lookup: the one
// allowlisted identity-dependent step in the router.
func routeCell(owners map[quorum.ServerID]float64, id quorum.ServerID) float64 {
	return owners[id]
}
