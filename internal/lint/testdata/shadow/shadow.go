// Package fixture seeds the one shadowing shape this repo's tuned shadow
// pass still reports — identical type, outer variable READ after the inner
// scope — next to the idioms it deliberately stays quiet on.
package fixture

func two() (int, error) { return 2, nil }

// misread shadows x, then reads the OUTER x right after the scope ends:
// a reader tracing the inner x could believe the return sees 2.
func misread() int {
	x := 1
	{
		x := 2 // want "declaration of \"x\" shadows declaration at line"
		_ = x
	}
	return x
}

// rewritten writes the outer variable before any read after the scope:
// quiet.
func rewritten() int {
	x := 1
	{
		x := 2
		_ = x
	}
	x = 3
	return x
}

// retyped shadows with a different type: the two cannot be confused.
func retyped() string {
	x := 1
	{
		x := "two"
		_ = x
	}
	_ = x
	return ""
}

// guard is the `if v, err := f(); err != nil` idiom: init-clause shadows
// are scoped to the statement by construction and exempt.
func guard() error {
	v, err := two()
	_ = v
	if v, err := two(); err != nil {
		_ = v
	}
	return err
}
