// Package fixture seeds dereferences inside branches where a nil check
// just proved the pointer nil, plus the repair idiom and nil-receiver
// method calls the pass accepts.
package fixture

type node struct {
	next *node
	val  int
}

func derefInNilBranch(n *node) int {
	if n == nil {
		return n.val // want "nil dereference: n is nil in this branch"
	}
	return n.val
}

func derefInElse(n *node) int {
	if n != nil {
		return n.val
	} else {
		return n.val // want "nil dereference: n is nil in this branch"
	}
}

func starDeref(n *node) node {
	if n == nil {
		return *n // want "nil dereference: n is nil in this branch"
	}
	return *n
}

// repaired reassigns before the deref — the guard-and-default idiom.
func repaired(n *node) int {
	if n == nil {
		n = &node{}
		return n.val
	}
	return n.val
}

// methodOnNil calls a method: legal on nil receivers, and depth handles
// exactly that.
func methodOnNil(n *node) int {
	if n == nil {
		return n.depth()
	}
	return 0
}

func (n *node) depth() int {
	if n == nil {
		return 0
	}
	return 1 + n.next.depth()
}
