// Package transport sits inside the virtual-time-enrolled scope, where a
// bare go statement spawns a worker the SimClock cannot track.
package transport

func work() {}

func bare() {
	go work() // want "bare go statement in virtual-time-enrolled package"
}

func enrolled() {
	//pqslint:allow rawgo the scheduler is nil on this branch; there is no SimClock to enroll with
	go work()
}
