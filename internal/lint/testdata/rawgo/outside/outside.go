// Package outside is not in the enrolled set: free goroutines are fine
// here.
package outside

func work() {}

func spawn() { go work() }
