// Package fixture seeds the blocking-under-lock shapes lockspan flags,
// plus the release patterns and the one legal wait it must stay quiet on.
package fixture

import (
	"sync"
	"time"
)

var mu sync.Mutex

func send(ch chan int) {
	mu.Lock()
	ch <- 1 // want "channel send while mu is held"
	mu.Unlock()
}

func recv(ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	return <-ch // want "channel receive while mu is held"
}

func blockingSelect(a, b chan int) {
	mu.Lock()
	defer mu.Unlock()
	select { // want "select with no default while mu is held"
	case <-a:
	case <-b:
	}
}

func sleepUnderLock() {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while mu is held"
}

func waitUnderLock(wg *sync.WaitGroup) {
	mu.Lock()
	defer mu.Unlock()
	wg.Wait() // want "sync wg.Wait while mu is held"
}

// condWait is the one Wait that REQUIRES the lock: sync.Cond releases it
// internally while parked.
func condWait(c *sync.Cond) {
	mu.Lock()
	defer mu.Unlock()
	c.Wait()
}

// unlockFirst is the unlock-then-act pattern: the send runs outside the
// region.
func unlockFirst(ch chan int) {
	mu.Lock()
	v := 1
	mu.Unlock()
	ch <- v
}

// branchRelease unlocks inside the branch before handing off.
func branchRelease(ch chan int, ready bool) {
	mu.Lock()
	if ready {
		mu.Unlock()
		ch <- 1
		return
	}
	mu.Unlock()
}

// handoff proves its send cannot block and says so with a directive.
func handoff(ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	//pqslint:allow lockspan ch is buffered with capacity 1 and this is the only sender
	ch <- 1
}
