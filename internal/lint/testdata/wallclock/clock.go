// Package fixture seeds the wall-clock patterns the wallclock analyzer
// fences, including the uptime pattern PR 6 scrubbed out of the real
// tcp.go/admin.go (a server stamping time.Now at construction and
// measuring time.Since at stats time).
package fixture

import "time"

// server mirrors pqs.Server before clock injection: started from the wall
// clock instead of an injected vtime.Clock.
type server struct {
	started time.Time
}

func newServer() *server {
	return &server{started: time.Now()} // want "time.Now reads the wall clock"
}

func (s *server) uptime() float64 {
	return time.Since(s.started).Seconds() // want "time.Since reads the wall clock"
}

func sleepy() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func timers(f func()) {
	_ = time.After(time.Second)        // want "time.After reads the wall clock"
	_ = time.AfterFunc(time.Second, f) // want "time.AfterFunc reads the wall clock"
	_ = time.NewTimer(time.Second)     // want "time.NewTimer reads the wall clock"
	_ = time.NewTicker(time.Second)    // want "time.NewTicker reads the wall clock"
}

// durations touch no clock: only the clock itself is fenced, not the
// time package's arithmetic.
func durations() time.Duration {
	d, _ := time.ParseDuration("3ms")
	return d + 2*time.Millisecond
}
