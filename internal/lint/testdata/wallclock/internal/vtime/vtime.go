// Package vtime stands in for the real clock layer: the one package
// allowed to touch the time package directly, exercising the analyzer's
// path exemption.
package vtime

import "time"

// Wall reads the wall clock — legal here, and only here.
func Wall() time.Time { return time.Now() }

// Sleep parks on the wall clock — also legal here.
func Sleep(d time.Duration) { time.Sleep(d) }
