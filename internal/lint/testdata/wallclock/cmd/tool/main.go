// Command tool exercises the main-package exemption: a CLI printing wall
// timings is wall-clock by nature.
package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now())
}
