package lint

import (
	"go/ast"
	"go/types"
)

// wallclockForbidden is the set of time-package functions that read or
// schedule against the process wall clock. Referencing any of them outside
// internal/vtime makes the call site invisible to a SimClock: the run can
// no longer be replayed from its seed, which is the contract the chaos
// checker, the determinism regressions and the ε measurements all stand on.
// Duration arithmetic (time.Duration, time.Millisecond, ParseDuration) is
// untouched — only the clock itself is fenced.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

// Wallclock forbids wall-clock reads and timers everywhere except
// internal/vtime (the one place allowed to touch the time package, behind
// the Clock interface) and main packages (a CLI printing wall timings is
// wall-clock by nature). Library code gets its clock injected:
// vtime.Or(cfg.Clock) is the established idiom.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Sleep/Since/Until/After/AfterFunc/NewTimer/NewTicker/Tick " +
		"outside internal/vtime and main packages; time must flow through an injected vtime.Clock",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	if pass.Pkg.Name == "main" || pathHasSuffix(pass.Pkg.PkgPath, "internal/vtime") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil || !wallclockForbidden[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock: inject a vtime.Clock (vtime.Or(cfg.Clock)) so the call replays under a SimClock",
				fn.Name())
			return true
		})
	}
	return nil
}
