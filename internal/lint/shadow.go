package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shadow is a lite reimplementation of vet's shadow pass, tuned one notch
// quieter than stock: a declaration shadowing an outer variable is
// reported only when the types are identical (so the inner one could
// plausibly be mistaken for the outer), the outer variable is still used
// after the shadowing scope ends, and the shadow is NOT the
// `if v, err := f(); err != nil` guard idiom — init-clause shadows are
// scoped to the statement by construction and are universal Go style.
var Shadow = &Analyzer{
	Name: "shadow",
	Doc:  "flag declarations that shadow an outer variable of identical type that is used afterwards (vet-lite)",
	Run:  runShadow,
}

func runShadow(pass *Pass) error {
	info := pass.TypesInfo
	pkgScope := pass.Types.Scope()
	writes := writeIdents(pass.Files)
	for _, f := range pass.Files {
		inits := initClauseStmts(f)
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || inits[as] {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil || obj.Parent() == nil {
					continue
				}
				inner := obj.Parent()
				prev := outerShadowed(pkgScope, inner, id.Name, obj.Pos())
				if prev == nil || !types.Identical(prev.Type(), obj.Type()) {
					continue
				}
				if misreadAfter(info, writes, prev, inner.End()) {
					pass.Reportf(id.Pos(),
						"declaration of %q shadows declaration at line %d, and the outer variable is read after this scope",
						id.Name, pass.Fset.Position(prev.Pos()).Line)
				}
			}
			return true
		})
	}
	return nil
}

// initClauseStmts collects the statements appearing as the Init clause of
// an if/for/switch — the guard-idiom declarations Shadow exempts.
func initClauseStmts(f *ast.File) map[ast.Stmt]bool {
	set := map[ast.Stmt]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if n.Init != nil {
				set[n.Init] = true
			}
		case *ast.ForStmt:
			if n.Init != nil {
				set[n.Init] = true
			}
		case *ast.SwitchStmt:
			if n.Init != nil {
				set[n.Init] = true
			}
		case *ast.TypeSwitchStmt:
			if n.Init != nil {
				set[n.Init] = true
			}
		}
		return true
	})
	return set
}

// outerShadowed finds a function-local variable named name declared before
// pos in a scope strictly enclosing inner (stopping short of package and
// universe scope — shadowing a package-level variable inside one function
// is the universal `err := ...` idiom vet also leaves alone).
func outerShadowed(pkgScope, inner *types.Scope, name string, pos token.Pos) *types.Var {
	for s := inner.Parent(); s != nil && s != pkgScope && s != types.Universe; s = s.Parent() {
		if obj := s.Lookup(name); obj != nil {
			v, ok := obj.(*types.Var)
			if ok && v.Pos() < pos {
				return v
			}
			return nil
		}
	}
	return nil
}

// writeIdents collects the identifiers appearing as assignment targets —
// including the `x, err := f()` form that reuses an already-declared err,
// which go/types records as a use.
func writeIdents(files []*ast.File) map[*ast.Ident]bool {
	set := map[*ast.Ident]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						set[id] = true
					}
				}
			}
			return true
		})
	}
	return set
}

// misreadAfter reports whether v is READ after end before being written
// again — the only sequence where the shadow could have misled a reader.
// The pervasive Go pattern `inner block shadows err; later x, err := f();
// if err != nil` re-writes the outer variable before every read, and stays
// quiet here.
func misreadAfter(info *types.Info, writes map[*ast.Ident]bool, v *types.Var, end token.Pos) bool {
	firstRead, firstWrite := token.Pos(-1), token.Pos(-1)
	for id, obj := range info.Uses {
		if obj != v || id.Pos() <= end {
			continue
		}
		if writes[id] {
			if firstWrite < 0 || id.Pos() < firstWrite {
				firstWrite = id.Pos()
			}
		} else if firstRead < 0 || id.Pos() < firstRead {
			firstRead = id.Pos()
		}
	}
	return firstRead >= 0 && (firstWrite < 0 || firstRead < firstWrite)
}
