package lint

import (
	"go/ast"
	"go/types"
)

// globalrandScoped lists the packages whose randomness must be a function
// of configured seeds: every draw from the process-global math/rand source
// (shared, racy, seeded who-knows-when) or from a wall-clock-derived seed
// makes a recorded history unreproducible, even when every timer is
// virtual. The set is the rawgo scope plus the sampling/data layers and
// the module root package (the facade constructs the diffusion RNG).
var globalrandScoped = append([]string{
	"internal/quorum",
	"internal/replica",
	"internal/wire",
}, rawgoScoped...)

// globalrandFuncs are the package-level math/rand (and v2) functions that
// draw from the process-global source.
var globalrandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
}

// Globalrand forbids process-global and wall-clock-seeded randomness in the
// deterministic packages. Randomness there must be seed-derived (a
// *rand.Rand built from configuration, like chaos.Config.Seed) or
// counter-hashed (the transport's per-link draws) so that a run is a pure
// function of its seed. Production entropy defaults belong in main
// packages or crypto/rand, not in the deterministic core.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid package-level math/rand functions and wall-clock-seeded rand.NewSource " +
		"in deterministic packages; randomness must be seed-derived or counter-hashed",
	Run: runGlobalrand,
}

func runGlobalrand(pass *Pass) error {
	if pass.Pkg.Name == "main" {
		return nil
	}
	scoped := pass.Pkg.ModulePath != "" && pass.Pkg.PkgPath == pass.Pkg.ModulePath
	for _, suffix := range globalrandScoped {
		if pathHasSuffix(pass.Pkg.PkgPath, suffix) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil {
				return true
			}
			switch {
			case globalrandFuncs[fn.Name()]:
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the process-global source: use a seed-derived *rand.Rand so the run replays from its seed",
					path, fn.Name())
			case fn.Name() == "NewSource" || fn.Name() == "NewPCG" || fn.Name() == "NewChaCha8":
				if call := enclosingCall(f, sel); call != nil && wallClockSeeded(pass.TypesInfo, call) {
					pass.Reportf(sel.Pos(),
						"%s.%s seeded from the wall clock: derive the seed from configuration (crypto/rand for production defaults) so the run replays",
						path, fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// enclosingCall returns the CallExpr whose Fun is sel, or nil when sel is
// referenced without being called.
func enclosingCall(f *ast.File, sel *ast.SelectorExpr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == sel {
			found = call
			return false
		}
		return true
	})
	return found
}

// wallClockSeeded reports whether any argument subtree of call reads the
// wall clock (a reference to time.Now — the canonical
// time.Now().UnixNano() seed pattern and all its variations).
func wallClockSeeded(info *types.Info, call *ast.CallExpr) bool {
	seeded := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if seeded {
				return false
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if fn, _ := info.Uses[sel.Sel].(*types.Func); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
					seeded = true
					return false
				}
			}
			return true
		})
	}
	return seeded
}
