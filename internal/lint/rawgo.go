package lint

import (
	"go/ast"
)

// rawgoScoped lists the packages whose goroutines must be enrolled with the
// SimClock scheduler: exactly the layers PRs 4–5 threaded vtime through.
// An unenrolled goroutine is invisible to quiescence detection — the clock
// advances while its work is still in flight, and the deterministic event
// order (and with it byte-for-byte replay) is gone.
var rawgoScoped = []string{
	"internal/transport",
	"internal/register",
	"internal/chaos",
	"internal/diffusion",
	"internal/sim",
}

// Rawgo forbids bare go statements in the virtual-time-enrolled packages.
// Spawns go through vtime.Sched.Go (or Clock.AfterFunc), which registers
// the worker under a SimClock and degrades to a plain go statement under
// the wall clock. The one legitimate bare spawn — a wall-clock-only
// fallback branch that runs precisely when there is no SimClock to enroll
// with — carries a //pqslint:allow rawgo directive saying so.
var Rawgo = &Analyzer{
	Name: "rawgo",
	Doc: "forbid bare go statements in internal/{transport,register,chaos,diffusion,sim}; " +
		"spawn through vtime.Sched.Go/Clock.AfterFunc so SimClock quiescence detection sees the worker",
	Run: runRawgo,
}

func runRawgo(pass *Pass) error {
	scoped := false
	for _, suffix := range rawgoScoped {
		if pathHasSuffix(pass.Pkg.PkgPath, suffix) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"bare go statement in virtual-time-enrolled package %s: spawn via vtime.Sched.Go so SimClock tracks the worker",
					pass.Pkg.PkgPath)
			}
			return true
		})
	}
	return nil
}
