package lint

import (
	"go/token"
	"strings"
)

// directivePrefix introduces an in-source suppression:
//
//	//pqslint:allow <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The reason is
// mandatory: a suppression that cannot say why it exists is a suppression
// nobody can audit, and the whole point of the suite is that the
// determinism invariants are auditable.
const directivePrefix = "pqslint:allow"

// directive is one parsed //pqslint:allow comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// directiveIndex holds a package's suppressions keyed by file:line, plus
// the diagnostics produced while parsing them (missing reason, unknown
// analyzer).
type directiveIndex struct {
	// byLine maps "filename:line" to the directives governing that line.
	byLine map[string][]*directive
	diags  []Diagnostic
}

// collectDirectives parses every //pqslint:allow comment in the package.
// known is the set of analyzer names the driver is running with; an
// unknown name is reported (it is a typo or a stale suppression, and
// either way it silences nothing).
func collectDirectives(pkg *Package, known map[string]bool) *directiveIndex {
	idx := &directiveIndex{byLine: map[string][]*directive{}}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					idx.diags = append(idx.diags, Diagnostic{
						Analyzer: "pqslint",
						Pos:      pos,
						Message:  "malformed directive: //pqslint:allow requires an analyzer name and a reason",
					})
					continue
				}
				name := fields[0]
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), name))
				if reason == "" {
					idx.diags = append(idx.diags, Diagnostic{
						Analyzer: "pqslint",
						Pos:      pos,
						Message:  "//pqslint:allow " + name + " is missing its mandatory reason",
					})
					continue
				}
				if !known[name] {
					idx.diags = append(idx.diags, Diagnostic{
						Analyzer: "pqslint",
						Pos:      pos,
						Message:  "//pqslint:allow names unknown analyzer " + name,
					})
					continue
				}
				d := &directive{analyzer: name, reason: reason, pos: pos}
				key := lineKey(pos.Filename, pos.Line)
				idx.byLine[key] = append(idx.byLine[key], d)
			}
		}
	}
	return idx
}

// suppresses reports whether a directive for analyzer covers the line d
// sits on (same line or the line above), marking it used.
func (idx *directiveIndex) suppresses(d Diagnostic) bool {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range idx.byLine[lineKey(d.Pos.Filename, line)] {
			if dir.analyzer == d.Analyzer {
				dir.used = true
				return true
			}
		}
	}
	return false
}

// unused reports directives that suppressed nothing, but only for analyzers
// in ran — when the driver runs a subset (pqs-lint -only, or a single
// analyzer's test), directives for the others are not stale, just idle.
func (idx *directiveIndex) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dirs := range idx.byLine {
		for _, d := range dirs {
			if !d.used && ran[d.analyzer] {
				out = append(out, Diagnostic{
					Analyzer: "pqslint",
					Pos:      d.pos,
					Message:  "unused //pqslint:allow " + d.analyzer + " directive (nothing to suppress here)",
				})
			}
		}
	}
	return out
}

func lineKey(file string, line int) string {
	return file + ":" + itoa(line)
}

// itoa avoids strconv for this one hot, tiny call.
func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}
