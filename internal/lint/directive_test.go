package lint

// The directive fixture can't carry `// want` comments — a directive and a
// line comment can't share a line — so this test asserts on the returned
// diagnostics directly.

import (
	"strings"
	"testing"
)

func TestDirectives(t *testing.T) {
	diags, _ := loadFixture(t, "directive", Rawgo)

	has := func(analyzer, substr string) bool {
		for _, d := range diags {
			if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
				return true
			}
		}
		return false
	}

	// A well-formed directive suppresses the rawgo finding under it; the
	// other four bare go statements and directive problems all surface.
	rawgoCount := 0
	for _, d := range diags {
		if d.Analyzer == "rawgo" {
			rawgoCount++
		}
	}
	if rawgoCount != 2 {
		t.Errorf("want 2 surviving rawgo findings (missingReason, unknownAnalyzer), got %d", rawgoCount)
	}
	for _, d := range diags {
		if d.Analyzer == "rawgo" && d.Pos.Line <= 11 {
			t.Errorf("suppressed go statement still reported: %s", d.String())
		}
	}

	if !has("pqslint", "missing its mandatory reason") {
		t.Error("reason-less directive not reported")
	}
	if !has("pqslint", "unknown analyzer gofmt") {
		t.Error("unknown-analyzer directive not reported")
	}
	if !has("pqslint", "unused //pqslint:allow rawgo") {
		t.Error("unused directive not reported")
	}
	if !has("pqslint", "malformed directive") {
		t.Error("malformed directive not reported")
	}

	if got := len(diags); got != 6 {
		for _, d := range diags {
			t.Logf("  %s", d.String())
		}
		t.Errorf("want exactly 6 diagnostics, got %d", got)
	}
}

// TestDirectiveUnusedOnlyForRanAnalyzers: a directive for an analyzer the
// driver is not running is idle, not stale — running only wallclock over
// the same fixture must not report the rawgo directives as unused.
func TestDirectiveUnusedOnlyForRanAnalyzers(t *testing.T) {
	diags, _ := loadFixture(t, "directive", Wallclock)
	for _, d := range diags {
		if strings.Contains(d.Message, "unused //pqslint:allow") {
			t.Errorf("idle directive reported as unused: %s", d.String())
		}
	}
}
