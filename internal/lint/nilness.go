package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilness is a lite, syntax-directed take on the x/tools nilness pass
// (which needs SSA, unavailable here): it flags dereferences of a pointer
// inside the branch where a nil check just proved it nil —
//
//	if p == nil { use(p.field) }        // flagged
//	if p != nil { ... } else { *p = v } // flagged
//
// Scanning stops at the first statement that reassigns the pointer, so the
// `if p == nil { p = newP() }; p.f` repair idiom stays clean. Only field
// selections and explicit dereferences are flagged — method calls on nil
// receivers are legal Go and some types support them deliberately.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc:  "flag pointer dereferences in branches where the pointer is provably nil (vet-lite)",
	Run:  runNilness,
}

func runNilness(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			ptr, op := nilCheckedPtr(info, ifs.Cond)
			if ptr == "" {
				return true
			}
			var nilBranch *ast.BlockStmt
			switch op {
			case token.EQL:
				nilBranch = ifs.Body
			case token.NEQ:
				nilBranch, _ = ifs.Else.(*ast.BlockStmt)
			}
			if nilBranch == nil {
				return true
			}
			for _, st := range nilBranch.List {
				if assignsTo(st, ptr) {
					break
				}
				reportNilDeref(pass, st, ptr)
			}
			return true
		})
	}
	return nil
}

// nilCheckedPtr recognizes `x == nil` / `x != nil` where x is a
// pointer-typed identifier or selector, returning its rendering and the
// comparison operator.
func nilCheckedPtr(info *types.Info, cond ast.Expr) (string, token.Token) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return "", token.ILLEGAL
	}
	x, y := be.X, be.Y
	if !isNilIdent(info, y) {
		if !isNilIdent(info, x) {
			return "", token.ILLEGAL
		}
		x = y
	}
	switch x.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return "", token.ILLEGAL
	}
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return "", token.ILLEGAL
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr {
		return "", token.ILLEGAL
	}
	return exprString(x), be.Op
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// assignsTo reports whether st (at its top level) assigns a new value to
// the expression rendered as ptr.
func assignsTo(st ast.Stmt, ptr string) bool {
	as, ok := st.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if exprString(lhs) == ptr {
			return true
		}
	}
	return false
}

// reportNilDeref flags field selections and explicit dereferences of ptr
// within st. Function literals are skipped (they run later, possibly after
// the pointer is set).
func reportNilDeref(pass *Pass, st ast.Stmt, ptr string) {
	info := pass.TypesInfo
	ast.Inspect(st, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.StarExpr:
			if exprString(n.X) == ptr {
				pass.Reportf(n.Pos(), "nil dereference: %s is nil in this branch", ptr)
			}
		case *ast.SelectorExpr:
			if exprString(n.X) != ptr {
				return true
			}
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				pass.Reportf(n.Pos(), "nil dereference: %s is nil in this branch", ptr)
			}
		}
		return true
	})
}
