package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lockspan flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: channel sends and receives, selects without a
// default, clock sleeps, sync.WaitGroup/Cond waits, and transport calls.
// Blocking under a lock serializes the data plane at best; under a
// SimClock it is worse — a worker parked on a channel while holding a lock
// that another worker needs stalls quiescence in ways that depend on
// scheduling, which is exactly what the determinism contract forbids. Code
// that must hand off under a lock (and can prove the send never blocks,
// e.g. a buffered reply channel sized for every possible sender) says so
// with //pqslint:allow lockspan <reason>.
var Lockspan = &Analyzer{
	Name: "lockspan",
	Doc: "flag blocking operations (channel send/recv, blocking select, clock sleeps, " +
		"WaitGroup waits, transport calls) while a sync.Mutex/RWMutex is held",
	Run: runLockspan,
}

func runLockspan(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			for _, list := range stmtLists(n) {
				scanLockRegions(pass, list)
			}
			return true
		})
	}
	return nil
}

// stmtLists returns the statement lists hanging off n, so lock regions are
// detected inside blocks, case bodies and comm clauses alike.
func stmtLists(n ast.Node) [][]ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{n.List}
	case *ast.CaseClause:
		return [][]ast.Stmt{n.Body}
	case *ast.CommClause:
		return [][]ast.Stmt{n.Body}
	}
	return nil
}

// scanLockRegions finds x.Lock()/x.RLock() calls in one statement list and
// checks the statements executed before the matching release for blocking
// operations. An inline x.Unlock()/x.RUnlock() ends the region — including
// one inside a nested branch, which conservatively ends the region for
// everything after that branch (the early-unlock-then-return pattern). A
// deferred unlock holds to the end of the list.
func scanLockRegions(pass *Pass, stmts []ast.Stmt) {
	for i, st := range stmts {
		recv, kind := mutexCall(pass.TypesInfo, st, false)
		if kind != "Lock" && kind != "RLock" {
			continue
		}
		scanRegion(pass, stmts[i+1:], recv)
	}
}

// scanRegion walks statements executed with lock held, in order, reporting
// blocking operations until the lock is released. It returns true when
// this list (or any branch inside it) released the lock; the caller stops
// scanning at that point, trading a little recall (code after a
// conditional release that returns may still hold the lock) for zero false
// positives on the unlock-then-act pattern the transport uses.
func scanRegion(pass *Pass, stmts []ast.Stmt, lock string) bool {
	for _, st := range stmts {
		if r, k := mutexCall(pass.TypesInfo, st, false); r == lock && (k == "Unlock" || k == "RUnlock") {
			return true
		}
		if scanStmt(pass, st, lock) {
			return true
		}
	}
	return false
}

// scanStmt checks one held-lock statement: control flow recurses through
// scanRegion so a nested release is seen; leaf statements are walked for
// blocking operations.
func scanStmt(pass *Pass, st ast.Stmt, lock string) bool {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return scanRegion(pass, st.List, lock)
	case *ast.LabeledStmt:
		return scanStmt(pass, st.Stmt, lock)
	case *ast.IfStmt:
		reportBlockingExpr(pass, st.Cond, lock)
		released := scanStmt(pass, st.Body, lock)
		if st.Else != nil {
			released = scanStmt(pass, st.Else, lock) || released
		}
		return released
	case *ast.ForStmt:
		if st.Cond != nil {
			reportBlockingExpr(pass, st.Cond, lock)
		}
		return scanStmt(pass, st.Body, lock)
	case *ast.RangeStmt:
		if t, ok := pass.TypesInfo.Types[st.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				pass.Reportf(st.Pos(), "range over channel while %s is held", lock)
			}
		}
		return scanStmt(pass, st.Body, lock)
	case *ast.SwitchStmt:
		return scanCaseBodies(pass, st.Body, lock)
	case *ast.TypeSwitchStmt:
		return scanCaseBodies(pass, st.Body, lock)
	case *ast.SelectStmt:
		blocking := true
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false
			}
		}
		if blocking {
			pass.Reportf(st.Pos(), "select with no default while %s is held", lock)
		}
		released := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				released = scanRegion(pass, cc.Body, lock) || released
			}
		}
		return released
	default:
		reportBlocking(pass, st, lock)
		return false
	}
}

// scanCaseBodies scans each case clause of a switch body as its own
// held-lock region.
func scanCaseBodies(pass *Pass, body *ast.BlockStmt, lock string) bool {
	released := false
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			released = scanRegion(pass, cc.Body, lock) || released
		}
	}
	return released
}

// reportBlockingExpr reports blocking operations inside a bare expression
// (an if/for condition evaluated under the lock).
func reportBlockingExpr(pass *Pass, e ast.Expr, lock string) {
	reportBlocking(pass, &ast.ExprStmt{X: e}, lock)
}

// mutexCall recognizes a statement of the form x.Lock() / x.Unlock() /
// x.RLock() / x.RUnlock() where the method is sync's (directly or through
// an embedded mutex), returning the rendered receiver expression and the
// method name. With deferred set it matches the defer form instead.
func mutexCall(info *types.Info, st ast.Stmt, deferred bool) (recv, method string) {
	var call *ast.CallExpr
	if deferred {
		d, ok := st.(*ast.DeferStmt)
		if !ok {
			return "", ""
		}
		call = d.Call
	} else {
		e, ok := st.(*ast.ExprStmt)
		if !ok {
			return "", ""
		}
		if call, ok = e.X.(*ast.CallExpr); !ok {
			return "", ""
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return exprString(sel.X), fn.Name()
	}
	return "", ""
}

// reportBlocking walks one statement of a lock region and reports blocking
// operations. Function literals are skipped: their bodies run on whatever
// goroutine eventually calls them, not under this lock.
func reportBlocking(pass *Pass, st ast.Stmt, lock string) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while %s is held", lock)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while %s is held", lock)
			}
		case *ast.RangeStmt:
			if t, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(n.Pos(), "range over channel while %s is held", lock)
				}
			}
		case *ast.SelectStmt:
			blocking := true
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					blocking = false
				}
			}
			if blocking {
				pass.Reportf(n.Pos(), "select with no default while %s is held", lock)
			}
			// Clause bodies still run under the lock; the comm headers are
			// part of the select already reported (or non-blocking).
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						reportBlocking(pass, s, lock)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if msg := blockingCall(pass.TypesInfo, n); msg != "" {
				pass.Reportf(n.Pos(), "%s while %s is held", msg, lock)
			}
		}
		return true
	}
	ast.Inspect(st, walk)
}

// namedOf unwraps pointers to the named type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// blockingCall classifies calls that can block indefinitely: wall or
// virtual clock sleeps, WaitGroup/Cond waits, and transport RPCs.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := funcOf(info, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "time" && name == "Sleep":
		return "time.Sleep"
	case path == "sync" && name == "Wait":
		// sync.Cond.Wait is the one Wait that REQUIRES holding the lock
		// (it releases it internally while parked).
		if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
			if named := namedOf(sig.Recv().Type()); named != nil && named.Obj().Name() == "Cond" {
				return ""
			}
		}
		return "sync " + exprString(call.Fun)
	case pathHasSuffix(path, "internal/vtime") && (name == "Sleep" || name == "SleepCtx" || name == "Wait"):
		return "clock " + name
	case (pathHasSuffix(path, "internal/transport") || pathHasSuffix(path, "internal/diffusion")) &&
		(name == "Call" || name == "Gossip"):
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			return "transport " + name
		}
	}
	return ""
}
