// Package lint is the determinism-invariant static analysis suite behind
// cmd/pqs-lint. It enforces, at compile time, the invariants that make the
// virtual-time replay story (PRs 3–5) sound:
//
//   - wallclock: no wall-clock reads or timers outside internal/vtime and
//     main packages — time must flow through an injected vtime.Clock, or a
//     SimClock run cannot replay it.
//   - rawgo: no bare go statements in the virtual-time-enrolled packages —
//     a goroutine the SimClock cannot see defeats quiescence detection.
//   - globalrand: no process-global or wall-clock-seeded randomness in
//     deterministic packages — randomness must be seed-derived so a run is
//     a function of its seed.
//   - lockspan: no blocking operations (channel handoffs, clock sleeps,
//     transport calls) while a sync mutex is held.
//   - epsblind: the hedge-delay and spare-promotion paths of
//     internal/register must not branch on server identities, mechanizing
//     the ε-preservation argument (hedging conditioned only on time and
//     observed failure keeps the completing access set the strategy's
//     sample conditioned on liveness).
//
// plus lite reimplementations of the relevant stock vet passes (copylocks,
// nilness, shadow, atomic, loopclosure) so one binary gates them all. The
// framework mirrors the golang.org/x/tools/go/analysis API shape but is
// self-contained on the standard library: the container this repo builds in
// has no module proxy, so the loader (load.go) drives `go list -export` and
// go/types directly instead of depending on x/tools.
//
// # Suppressions
//
// A finding that is genuinely intended (a CLI main that wants wall time, a
// wall-clock-only fallback path) is silenced in place with
//
//	//pqslint:allow <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory — a directive without one is itself a diagnostic — and unused
// or unknown-analyzer directives are flagged so suppressions cannot rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant check. It mirrors the x/tools
// analysis.Analyzer shape (Name, Doc, Run over a Pass) so the checks read
// like standard vet passes and could be ported onto the real driver if the
// dependency ever becomes available.
type Analyzer struct {
	// Name is the analyzer's identifier: used in diagnostics, -only
	// selections, and //pqslint:allow directives.
	Name string
	// Doc is the one-paragraph description printed by pqs-lint -list.
	Doc string
	// Run performs the check on one package, reporting findings through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Pkg       *Package
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic the way compilers do, so editors and CI log
// scrapers pick the location up: file:line:col: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// pathHasSuffix reports whether pkgPath ends with the path suffix want on a
// package-path-segment boundary: "pqs/internal/vtime" matches
// "internal/vtime", "fixture.example/internal/vtime" does too, but
// "a/notinternal/vtime" does not. Matching by suffix rather than full path
// keeps the analyzers honest under analysistest-style fixture modules,
// whose module path differs from the real tree's.
func pathHasSuffix(pkgPath, want string) bool {
	if pkgPath == want {
		return true
	}
	return strings.HasSuffix(pkgPath, "/"+want)
}

// funcOf resolves the *types.Func a selector or identifier refers to, or
// nil. It sees through method values, method expressions and plain calls.
func funcOf(info *types.Info, e ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether e refers to the package-level function
// pkgPath.name (receiver-less, exact package path).
func isPkgFunc(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	fn := funcOf(info, e)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// exprString renders e compactly for use in messages and for matching a
// mutex receiver across Lock/Unlock pairs.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
