package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/vtime"
	"pqs/internal/wire"
)

// echoHandler returns the request payload, optionally failing.
type echoHandler struct {
	id   int
	fail error
}

func (e *echoHandler) Handle(_ context.Context, req any) (any, error) {
	if e.fail != nil {
		return nil, e.fail
	}
	if _, ok := req.(wire.PingRequest); ok {
		return wire.PingReply{ServerID: e.id}, nil
	}
	return req, nil
}

func TestMemNetworkBasicCall(t *testing.T) {
	n := NewMemNetwork(1)
	n.Register(0, &echoHandler{id: 0})
	resp, err := n.Call(context.Background(), 0, wire.PingRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(wire.PingReply); got.ServerID != 0 {
		t.Errorf("reply %+v", got)
	}
}

func TestMemNetworkUnknownServer(t *testing.T) {
	n := NewMemNetwork(1)
	_, err := n.Call(context.Background(), 42, wire.PingRequest{})
	if !errors.Is(err, ErrUnknownServer) {
		t.Errorf("err = %v, want ErrUnknownServer", err)
	}
}

func TestMemNetworkCrashRecover(t *testing.T) {
	n := NewMemNetwork(1)
	n.Register(3, &echoHandler{id: 3})
	n.Crash(3)
	if _, err := n.Call(context.Background(), 3, wire.PingRequest{}); !errors.Is(err, ErrCrashed) {
		t.Errorf("err = %v, want ErrCrashed", err)
	}
	if n.CrashedCount() != 1 {
		t.Errorf("CrashedCount = %d", n.CrashedCount())
	}
	n.Recover(3)
	if _, err := n.Call(context.Background(), 3, wire.PingRequest{}); err != nil {
		t.Errorf("after recover: %v", err)
	}
	if n.CrashedCount() != 0 {
		t.Errorf("CrashedCount after recover = %d", n.CrashedCount())
	}
}

func TestMemNetworkDropStatistics(t *testing.T) {
	n := NewMemNetwork(7)
	n.Register(0, &echoHandler{id: 0})
	n.SetDropProb(0.3)
	trials, drops := 20000, 0
	for i := 0; i < trials; i++ {
		if _, err := n.Call(context.Background(), 0, wire.PingRequest{}); errors.Is(err, ErrDropped) {
			drops++
		}
	}
	rate := float64(drops) / float64(trials)
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("drop rate %v, want ~0.3", rate)
	}
	n.SetDropProb(0)
	if _, err := n.Call(context.Background(), 0, wire.PingRequest{}); err != nil {
		t.Errorf("after clearing drops: %v", err)
	}
}

func TestMemNetworkPartition(t *testing.T) {
	n := NewMemNetwork(1)
	n.Register(0, &echoHandler{id: 0})
	n.Register(1, &echoHandler{id: 1})
	n.SetPartition(map[quorum.ServerID]int{0: 0, 1: 1})
	if _, err := n.Call(context.Background(), 0, wire.PingRequest{}); err != nil {
		t.Errorf("same-group call failed: %v", err)
	}
	if _, err := n.Call(context.Background(), 1, wire.PingRequest{}); !errors.Is(err, ErrPartitioned) {
		t.Errorf("cross-group err = %v, want ErrPartitioned", err)
	}
	n.SetCallerGroup(1)
	if _, err := n.Call(context.Background(), 1, wire.PingRequest{}); err != nil {
		t.Errorf("after moving caller group: %v", err)
	}
	n.ClearPartition()
	n.SetCallerGroup(0)
	if _, err := n.Call(context.Background(), 1, wire.PingRequest{}); err != nil {
		t.Errorf("after healing: %v", err)
	}
}

func TestMemNetworkLatencyAndContext(t *testing.T) {
	n := NewMemNetwork(1)
	n.Register(0, &echoHandler{id: 0})
	n.SetLatency(5*time.Millisecond, 10*time.Millisecond)
	start := time.Now()
	if _, err := n.Call(context.Background(), 0, wire.PingRequest{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("latency not simulated: %v", elapsed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := n.Call(ctx, 0, wire.PingRequest{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestMemNetworkHandlerError(t *testing.T) {
	n := NewMemNetwork(1)
	boom := errors.New("boom")
	n.Register(0, &echoHandler{id: 0, fail: boom})
	if _, err := n.Call(context.Background(), 0, wire.PingRequest{}); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestMemNetworkConcurrent(t *testing.T) {
	n := NewMemNetwork(1)
	for id := 0; id < 8; id++ {
		n.Register(quorum.ServerID(id), &echoHandler{id: id})
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := quorum.ServerID((g + i) % 8)
				resp, err := n.Call(context.Background(), id, wire.PingRequest{})
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if resp.(wire.PingReply).ServerID != int(id) {
					t.Errorf("cross-talk: asked %d got %d", id, resp.(wire.PingReply).ServerID)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", &echoHandler{id: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient(map[quorum.ServerID]string{5: srv.Addr()})
	defer client.Close()
	resp, err := client.Call(context.Background(), 5, wire.PingRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(wire.PingReply).ServerID != 5 {
		t.Errorf("reply %+v", resp)
	}
	// Round-trip a full write/read pair to exercise gob registration.
	wreq := wire.WriteRequest{Key: "k", Value: []byte("v")}
	if resp, err = client.Call(context.Background(), 5, wreq); err != nil {
		t.Fatal(err)
	}
	if got := resp.(wire.WriteRequest); got.Key != "k" || string(got.Value) != "v" {
		t.Errorf("echoed write = %+v", got)
	}
}

func TestTCPServerError(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", &echoHandler{id: 1, fail: errors.New("storage exploded")})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient(map[quorum.ServerID]string{1: srv.Addr()})
	defer client.Close()
	_, err = client.Call(context.Background(), 1, wire.PingRequest{})
	if err == nil || err.Error() != "server 1: storage exploded" {
		t.Errorf("err = %v", err)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", &echoHandler{id: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient(map[quorum.ServerID]string{2: srv.Addr()})
	defer client.Close()
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-i%d", g, i)
				resp, err := client.Call(context.Background(), 2, wire.ReadRequest{Key: key})
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if got := resp.(wire.ReadRequest).Key; got != key {
					t.Errorf("multiplexing mixed replies: want %q got %q", key, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTCPUnknownServer(t *testing.T) {
	client := NewTCPClient(nil)
	defer client.Close()
	if _, err := client.Call(context.Background(), 9, wire.PingRequest{}); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("err = %v, want ErrUnknownServer", err)
	}
}

func TestTCPClientClose(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", &echoHandler{id: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient(map[quorum.ServerID]string{0: srv.Addr()})
	if _, err := client.Call(context.Background(), 0, wire.PingRequest{}); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(context.Background(), 0, wire.PingRequest{}); !errors.Is(err, ErrClosed) {
		t.Errorf("after close: %v, want ErrClosed", err)
	}
}

func TestTCPServerCloseFailsPendingCalls(t *testing.T) {
	block := make(chan struct{})
	h := HandlerFunc(func(ctx context.Context, req any) (any, error) {
		<-block
		return req, nil
	})
	srv, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	client := NewTCPClient(map[quorum.ServerID]string{0: srv.Addr()})
	defer client.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := client.Call(context.Background(), 0, wire.PingRequest{})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call reach the server
	close(block)
	srv.Close()
	select {
	case err := <-errc:
		if err != nil && !IsTransient(err) {
			t.Errorf("pending call returned unexpected error class: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call never completed after server close")
	}
}

func TestTCPContextCancellation(t *testing.T) {
	h := HandlerFunc(func(ctx context.Context, req any) (any, error) {
		time.Sleep(200 * time.Millisecond)
		return req, nil
	})
	srv, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient(map[quorum.ServerID]string{0: srv.Addr()})
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Call(ctx, 0, wire.PingRequest{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Error("call did not honor context deadline")
	}
}

// TestTCPBothCodecsRoundTrip runs the full request/reply exchange under each
// codec, including an error reply and a payload with nil and empty slices.
func TestTCPBothCodecsRoundTrip(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		t.Run(codec.String(), func(t *testing.T) {
			srv, err := ListenTCPCodec("127.0.0.1:0", &echoHandler{id: 9}, codec)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			if srv.Codec() != codec {
				t.Fatalf("server codec %v", srv.Codec())
			}
			client := NewTCPClientCodec(map[quorum.ServerID]string{9: srv.Addr()}, codec)
			defer client.Close()
			resp, err := client.Call(context.Background(), 9, wire.PingRequest{})
			if err != nil {
				t.Fatal(err)
			}
			if resp.(wire.PingReply).ServerID != 9 {
				t.Errorf("ping reply %+v", resp)
			}
			wreq := wire.WriteRequest{Key: "k", Value: []byte{}, Sig: nil}
			resp, err = client.Call(context.Background(), 9, wreq)
			if err != nil {
				t.Fatal(err)
			}
			got := resp.(wire.WriteRequest)
			if got.Key != "k" || len(got.Value) != 0 || len(got.Sig) != 0 {
				t.Errorf("echoed write = %+v", got)
			}
		})
	}
}

// TestTCPServerCloseCancelsHandlerContext locks in the per-connection
// context: a handler blocked on ctx.Done must be released by Close (with
// context.Background it would deadlock Close forever).
func TestTCPServerCloseCancelsHandlerContext(t *testing.T) {
	started := make(chan struct{})
	h := HandlerFunc(func(ctx context.Context, req any) (any, error) {
		close(started)
		<-ctx.Done() // only Close (or conn teardown) can release this
		return nil, ctx.Err()
	})
	srv, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	client := NewTCPClient(map[quorum.ServerID]string{0: srv.Addr()})
	defer client.Close()
	go client.Call(context.Background(), 0, wire.PingRequest{})
	<-started
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung: in-flight handler context was not cancelled")
	}
}

// TestTCPStatsAndCoalescing drives concurrent calls through one connection
// and checks the wire counters: every frame accounted for, and flushes +
// coalesced writes summing to frames written (the coalescing invariant).
func TestTCPStatsAndCoalescing(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", &echoHandler{id: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient(map[quorum.ServerID]string{2: srv.Addr()})
	defer client.Close()
	const goroutines, calls = 16, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if _, err := client.Call(context.Background(), 2, wire.ReadRequest{Key: "k"}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	const total = goroutines * calls
	cs, ss := client.Stats(), srv.Stats()
	if cs.Conns != 1 || ss.Conns != 1 {
		t.Errorf("conns: client %d server %d, want 1", cs.Conns, ss.Conns)
	}
	if cs.FramesWritten != total || cs.FramesRead != total {
		t.Errorf("client frames: wrote %d read %d, want %d", cs.FramesWritten, cs.FramesRead, total)
	}
	if ss.FramesRead != total || ss.FramesWritten != total {
		t.Errorf("server frames: read %d wrote %d, want %d", ss.FramesRead, ss.FramesWritten, total)
	}
	for name, s := range map[string]TCPStats{"client": cs, "server": ss} {
		if s.Flushes+s.WritesCoalesced != s.FramesWritten {
			t.Errorf("%s: flushes %d + coalesced %d != frames written %d",
				name, s.Flushes, s.WritesCoalesced, s.FramesWritten)
		}
		if s.BytesWritten == 0 || s.BytesRead == 0 {
			t.Errorf("%s: byte counters did not advance: %+v", name, s)
		}
	}
}

// slowSinkConn is a net.Conn stub whose Write succeeds after a fixed delay,
// emulating a socket slower than the producers feeding it.
type slowSinkConn struct {
	net.Conn // panics if any unimplemented method is called
	delay    time.Duration
}

func (c slowSinkConn) Write(p []byte) (int, error) {
	time.Sleep(c.delay)
	return len(p), nil
}

// TestFrameWriterCoalesces drives many concurrent writers into a frameWriter
// over a slow sink and asserts that frames actually shared flushes: while
// the flusher is inside one slow Flush, later writers append behind it and
// must ride the next one.
func TestFrameWriterCoalesces(t *testing.T) {
	var stats tcpCounters
	w := newFrameWriter(slowSinkConn{delay: 2 * time.Millisecond}, CodecBinary, &stats, vtime.SchedOf(nil))
	defer w.close()
	const writers, frames = 16, 8
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				if err := w.writeFrame([]byte("frame-body")); err != nil {
					t.Errorf("writeFrame: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Wait for the trailing flush to drain before reading counters.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := stats.snapshot()
		if s.FramesWritten == writers*frames && func() bool {
			w.mu.Lock()
			defer w.mu.Unlock()
			return w.bw.Buffered() == 0
		}() {
			if s.WritesCoalesced == 0 {
				t.Errorf("no coalescing under %d concurrent writers: %+v", writers, s)
			}
			if s.Flushes == 0 || s.Flushes+s.WritesCoalesced != s.FramesWritten {
				t.Errorf("flush accounting: %+v", s)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("writer never drained: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrCrashed, true},
		{ErrDropped, true},
		{ErrPartitioned, true},
		{ErrClosed, true},
		{fmt.Errorf("server 3: %w", ErrCrashed), true},
		{context.DeadlineExceeded, true},
		{context.Canceled, true},
		{errors.New("byzantine reply"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestMemNetworkSetDropProbPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMemNetwork(1).SetDropProb(1.5)
}
