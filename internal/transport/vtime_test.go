package transport

import (
	"context"
	"testing"
	"time"

	"pqs/internal/vtime"
)

// TestMemNetworkVirtualLatency checks the latency path on a SimClock: the
// injected per-call delay is served in virtual time (instant on the wall,
// exact on the virtual clock) and the counter-hashed draw replays from the
// seed — the property that lets hedged runs join the determinism contract.
func TestMemNetworkVirtualLatency(t *testing.T) {
	const calls = 50
	run := func() []time.Duration {
		clk := vtime.NewSimClock()
		var lats []time.Duration
		clk.Run(func() {
			n := NewMemNetwork(99)
			n.SetClock(clk)
			n.Register(1, HandlerFunc(func(context.Context, any) (any, error) { return "ok", nil }))
			n.SetLatency(2*time.Millisecond, 9*time.Millisecond)
			ctx := context.Background()
			for i := 0; i < calls; i++ {
				start := clk.Now()
				if _, err := n.Call(ctx, 1, "ping"); err != nil {
					t.Errorf("call %d: %v", i, err)
					return
				}
				lats = append(lats, clk.Since(start))
			}
		})
		return lats
	}
	a := run()
	if len(a) != calls {
		t.Fatalf("got %d latencies", len(a))
	}
	seen := map[time.Duration]bool{}
	for i, d := range a {
		if d < 2*time.Millisecond || d > 9*time.Millisecond {
			t.Fatalf("call %d: virtual latency %v outside [2ms, 9ms]", i, d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatalf("latency draws look degenerate: only %d distinct values over %d calls", len(seen), calls)
	}
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency schedule did not replay: call %d was %v then %v", i, a[i], b[i])
		}
	}
}

// TestMemNetworkPerServerVirtualLatency checks SetServerLatency overrides
// flow through the virtual clock too (the straggler mechanism the adaptive
// hedge tests rely on).
func TestMemNetworkPerServerVirtualLatency(t *testing.T) {
	clk := vtime.NewSimClock()
	clk.Run(func() {
		n := NewMemNetwork(7)
		n.SetClock(clk)
		h := HandlerFunc(func(context.Context, any) (any, error) { return "ok", nil })
		n.Register(1, h)
		n.Register(2, h)
		n.SetLatency(time.Millisecond, 2*time.Millisecond)
		n.SetServerLatency(2, 30*time.Millisecond, 30*time.Millisecond)
		ctx := context.Background()

		start := clk.Now()
		if _, err := n.Call(ctx, 1, "ping"); err != nil {
			t.Error(err)
			return
		}
		if d := clk.Since(start); d > 2*time.Millisecond {
			t.Errorf("fast server took %v virtual", d)
		}
		start = clk.Now()
		if _, err := n.Call(ctx, 2, "ping"); err != nil {
			t.Error(err)
			return
		}
		if d := clk.Since(start); d != 30*time.Millisecond {
			t.Errorf("straggler took %v virtual, want exactly 30ms", d)
		}
	})
	if got := clk.Elapsed(); got > 33*time.Millisecond {
		t.Fatalf("run consumed %v virtual, want ~31-32ms", got)
	}
}

// TestServerLatencyFixedRange covers the fixed-latency branch
// (min == max > 0) that skips the counter-hashed draw.
func TestServerLatencyFixedRange(t *testing.T) {
	clk := vtime.NewSimClock()
	clk.Run(func() {
		n := NewMemNetwork(7)
		n.SetClock(clk)
		n.Register(1, HandlerFunc(func(context.Context, any) (any, error) { return "ok", nil }))
		n.SetLatency(5*time.Millisecond, 5*time.Millisecond)
		start := clk.Now()
		if _, err := n.Call(context.Background(), 1, "ping"); err != nil {
			t.Error(err)
			return
		}
		if d := clk.Since(start); d != 5*time.Millisecond {
			t.Errorf("fixed latency call took %v, want exactly 5ms", d)
		}
	})
}
