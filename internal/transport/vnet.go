package transport

// This file implements VirtualNet, the virtual-time byte-stream network the
// TCP data plane runs on inside the sim and chaos harnesses: an in-process
// net.Conn / net.Listener implementation whose write→read delivery latency,
// byte pacing and half-close semantics are scheduled on a vtime.Clock. The
// real TCP stack — framing, binary codec, bufio group-commit flusher,
// worker pool, per-connection contexts — runs on it unmodified (see
// ServeListener and TCPClientOptions.Dial), which is what puts the
// production code path inside the determinism contract: under a
// vtime.SimClock a whole chaos scenario over "TCP" replays byte-for-byte
// from its seed and executes in wall-clock milliseconds.
//
// Fault injection happens at the byte-stream layer, below framing, so the
// adversary works against framed bytes rather than messages:
//
//   - Drop: a lost chunk is unrecoverable for a stream (the framing after
//     the gap is garbage), so the connection pair is reset — exactly how a
//     real TCP stack surfaces persistent segment loss to the application.
//   - Corrupt: one bit of the chunk is flipped in flight (a checksum-evading
//     adversary). Depending on where it lands the receiver sees a broken
//     length prefix (connection dropped), an undecodable body (connection
//     dropped), or a decodable-but-wrong message (the protocol's end-to-end
//     defenses — signatures, vouch thresholds — must absorb it).
//   - Delay/jitter: per-chunk delivery delay, monotone per direction so the
//     stream never reorders internally; across connections it shuffles
//     reply arrival exactly like MemNetwork's reorder fault.
//   - Block/Crash/Deregister: connections touching the target are reset and
//     new dials refused, the byte-level analogue of the chaos engine's
//     link blocks and the simulated network's crash/membership faults.
//
// Duplication has no byte-stream analogue by design: TCP sequence numbers
// deduplicate segments, so at-least-once delivery cannot be observed above
// a stream transport. Scenarios that set a duplication probability are
// exercising a fault class this transport provably rules out, and the
// verdict is a deliberate no-op here.
//
// Determinism: every latency draw and fault verdict is a pure function of
// (seed, link, per-link chunk counter), the same counter-hashing discipline
// MemNetwork and the chaos engine use. The harnesses serialize traffic per
// connection (one outstanding RPC per server per operation), so per-link
// chunk sequences — and therefore delivery schedules — replay exactly.

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/vtime"
)

// vnetError is a transport-level failure of the virtual network. It
// implements net.Error so IsTransient classifies it exactly like a real
// socket error.
type vnetError struct {
	msg     string
	timeout bool
}

func (e *vnetError) Error() string   { return e.msg }
func (e *vnetError) Timeout() bool   { return e.timeout }
func (e *vnetError) Temporary() bool { return true }

// errVConnReset is what readers and writers observe on a connection the
// fault plane reset (chunk drop, block, crash, deregister).
var errVConnReset = &vnetError{msg: "transport: virtual connection reset"}

// VNetStats counts a VirtualNet's byte-stream activity.
type VNetStats struct {
	// Dials counts connection establishments.
	Dials uint64
	// Chunks and ChunkBytes count scheduled write chunks (a bufio flush is
	// one chunk, like one TCP segment burst).
	Chunks     uint64
	ChunkBytes uint64
	// Dropped, Corrupted and Resets count fault-plane interventions.
	Dropped   uint64
	Corrupted uint64
	Resets    uint64
	// Stalled counts chunks silently swallowed because an endpoint was
	// stalled (see Stall).
	Stalled uint64
}

// vlinkKey identifies one directed byte path. client is the dialing
// identity (ClientSource for plain clients), server the listener id;
// toServer distinguishes the request leg from the reply leg.
type vlinkKey struct {
	client, server quorum.ServerID
	toServer       bool
}

// blockKey is a directed block; either side may be Anyone.
type blockKey struct{ from, to quorum.ServerID }

// Anyone is the wildcard endpoint for VirtualNet.Block, mirroring the
// chaos package's Any.
const Anyone quorum.ServerID = -2

// VirtualNet is the virtual-time byte-stream network. Construct with
// NewVirtualNet; all methods are safe for concurrent use.
type VirtualNet struct {
	clock vtime.Clock
	sched vtime.Sched
	seed  uint64

	mu        sync.Mutex
	listeners map[quorum.ServerID]*VListener
	conns     map[*vconn]struct{} // client-side endpoints of live pairs
	crashed   map[quorum.ServerID]bool
	stalled   map[quorum.ServerID]bool
	blocked   map[blockKey]bool
	minLat    time.Duration
	maxLat    time.Duration
	perServer map[quorum.ServerID]latRange
	// Per-direction link bandwidth in bytes per second; 0 = infinite.
	// rateUp paces client→server chunks (the request leg), rateDown
	// server→client (the reply leg) — asymmetric WAN links have different
	// capacities per direction.
	rateUp    int64
	rateDown  int64
	dropP     float64
	corruptP  float64
	jitterMax time.Duration
	chunkSeq  map[vlinkKey]uint64

	stats struct {
		dials, chunks, chunkBytes, dropped, corrupted, resets, stalled uint64
	}
}

// NewVirtualNet returns an empty virtual network on clk (nil means the wall
// clock — the conn semantics work under either, but only a vtime.SimClock
// makes runs deterministic and instant). seed fixes every latency draw and
// fault verdict.
func NewVirtualNet(clk vtime.Clock, seed int64) *VirtualNet {
	c := vtime.Or(clk)
	return &VirtualNet{
		clock:     c,
		sched:     vtime.SchedOf(c),
		seed:      uint64(seed),
		listeners: make(map[quorum.ServerID]*VListener),
		conns:     make(map[*vconn]struct{}),
		crashed:   make(map[quorum.ServerID]bool),
		stalled:   make(map[quorum.ServerID]bool),
		blocked:   make(map[blockKey]bool),
		perServer: make(map[quorum.ServerID]latRange),
		chunkSeq:  make(map[vlinkKey]uint64),
	}
}

// Clock returns the network's time source.
func (vn *VirtualNet) Clock() vtime.Clock { return vn.clock }

// Stats returns a snapshot of the network's counters.
func (vn *VirtualNet) Stats() VNetStats {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	return VNetStats{
		Dials:      vn.stats.dials,
		Chunks:     vn.stats.chunks,
		ChunkBytes: vn.stats.chunkBytes,
		Dropped:    vn.stats.dropped,
		Corrupted:  vn.stats.corrupted,
		Resets:     vn.stats.resets,
		Stalled:    vn.stats.stalled,
	}
}

// SetLatency sets the uniform per-chunk delivery latency range (drawn
// deterministically per link from the seed). Zero disables delay.
func (vn *VirtualNet) SetLatency(min, max time.Duration) {
	if min < 0 || max < min {
		panic("transport: invalid latency range")
	}
	vn.mu.Lock()
	defer vn.mu.Unlock()
	vn.minLat, vn.maxLat = min, max
}

// SetServerLatency overrides the chunk latency range for every connection
// whose listener end is id (both directions), modelling a straggler. A zero
// max restores the global range.
func (vn *VirtualNet) SetServerLatency(id quorum.ServerID, min, max time.Duration) {
	if min < 0 || max < min {
		panic("transport: invalid latency range")
	}
	vn.mu.Lock()
	defer vn.mu.Unlock()
	if max == 0 {
		delete(vn.perServer, id)
		return
	}
	vn.perServer[id] = latRange{min: min, max: max}
}

// SetByteRate sets the link bandwidth in bytes per second, symmetrically in
// both directions: each chunk adds its serialization delay and occupies its
// direction of the link while transmitting. Zero means infinite bandwidth.
func (vn *VirtualNet) SetByteRate(bytesPerSec int64) {
	vn.SetByteRateAsym(bytesPerSec, bytesPerSec)
}

// SetByteRateAsym sets the link bandwidth per direction: toServer paces
// client→server chunks (request legs, gossip pushes), toClient paces
// server→client chunks (reply legs). Zero means infinite in that direction.
// Asymmetric rates model WAN access links whose upstream and downstream
// capacities differ.
func (vn *VirtualNet) SetByteRateAsym(toServer, toClient int64) {
	if toServer < 0 || toClient < 0 {
		panic("transport: negative byte rate")
	}
	vn.mu.Lock()
	defer vn.mu.Unlock()
	vn.rateUp, vn.rateDown = toServer, toClient
}

// SetDrop sets the per-chunk loss probability. A dropped chunk resets its
// connection pair (stream framing cannot survive a gap).
func (vn *VirtualNet) SetDrop(p float64) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	vn.dropP = p
}

// SetCorrupt sets the per-chunk bit-flip probability.
func (vn *VirtualNet) SetCorrupt(p float64) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	vn.corruptP = p
}

// SetJitter sets the maximum extra per-chunk delivery delay (reordering
// across connections; within one stream delivery stays monotone).
func (vn *VirtualNet) SetJitter(max time.Duration) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	vn.jitterMax = max
}

// Crash marks a server crashed: dials to it fail with ErrCrashed and every
// connection touching it is reset. Recover clears the mark (existing
// connections stay dead; clients re-dial).
func (vn *VirtualNet) Crash(id quorum.ServerID) {
	vn.mu.Lock()
	vn.crashed[id] = true
	victims := vn.connsTouchingLocked(id)
	vn.mu.Unlock()
	resetAll(victims)
}

// Recover clears a server's crashed state.
func (vn *VirtualNet) Recover(id quorum.ServerID) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	delete(vn.crashed, id)
}

// Stall marks a server unresponsive without failing anything promptly:
// chunks to or from it are silently swallowed (the write succeeds, nothing
// is ever delivered), so in-flight RPCs hang until the caller's own timeout
// fires. This is the slow/hung-server failure mode — the one a circuit
// breaker exists for — as opposed to Crash, whose resets fail fast.
// Existing connections stay up; dials still succeed.
func (vn *VirtualNet) Stall(id quorum.ServerID) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	vn.stalled[id] = true
}

// Unstall clears a server's stalled state. Chunks swallowed while stalled
// are gone for good (their streams will look reset to any framing above).
func (vn *VirtualNet) Unstall(id quorum.ServerID) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	delete(vn.stalled, id)
}

// stallVerdict reports whether a chunk on the pair (client, server) should
// be swallowed, counting it when so.
func (vn *VirtualNet) stallVerdict(server quorum.ServerID) bool {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	if !vn.stalled[server] {
		return false
	}
	vn.stats.stalled++
	return true
}

// Block severs the directed path from→to (either may be Anyone): new dials
// whose request leg matches fail with ErrDropped, and existing connections
// carrying a matching direction are reset. This is the prompt-failure
// semantics of the chaos engine's link blocks: a stream with one direction
// blackholed can only stall, and a stalled RPC is surfaced as a reset
// rather than a hung virtual world.
func (vn *VirtualNet) Block(from, to quorum.ServerID) {
	vn.mu.Lock()
	vn.blocked[blockKey{from, to}] = true
	var victims []*vconn
	for c := range vn.conns {
		if vn.blockAppliesLocked(c.client, c.server) || vn.blockAppliesLocked(c.server, c.client) {
			victims = append(victims, c)
		}
	}
	vn.mu.Unlock()
	resetAll(victims)
}

// Unblock restores the directed path from→to (exact key match).
func (vn *VirtualNet) Unblock(from, to quorum.ServerID) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	delete(vn.blocked, blockKey{from, to})
}

// Heal removes every block and zeroes every fault probability (latency and
// bandwidth are topology, not faults, and stay).
func (vn *VirtualNet) Heal() {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	vn.blocked = make(map[blockKey]bool)
	vn.dropP, vn.corruptP, vn.jitterMax = 0, 0, 0
}

// Deregister removes a server from the address space: dials fail with
// ErrUnknownServer, its listener stops accepting, and connections touching
// it are reset. A later Listen rebinds the id (membership rejoin).
func (vn *VirtualNet) Deregister(id quorum.ServerID) {
	vn.mu.Lock()
	l := vn.listeners[id]
	delete(vn.listeners, id)
	delete(vn.crashed, id)
	delete(vn.perServer, id)
	victims := vn.connsTouchingLocked(id)
	vn.mu.Unlock()
	if l != nil {
		l.close()
	}
	resetAll(victims)
}

// connsTouchingLocked returns live pairs with id as either endpoint.
func (vn *VirtualNet) connsTouchingLocked(id quorum.ServerID) []*vconn {
	var out []*vconn
	for c := range vn.conns {
		if c.client == id || c.server == id {
			out = append(out, c)
		}
	}
	return out
}

func resetAll(conns []*vconn) {
	for _, c := range conns {
		c.reset(errVConnReset)
	}
}

// blockAppliesLocked reports whether a directed block covers from→to.
func (vn *VirtualNet) blockAppliesLocked(from, to quorum.ServerID) bool {
	return vn.blocked[blockKey{from, to}] ||
		vn.blocked[blockKey{Anyone, to}] ||
		vn.blocked[blockKey{from, Anyone}]
}

// Listen binds a virtual listener to id. The returned listener plugs into
// ServeListener; its Addr is "virtual:<id>".
func (vn *VirtualNet) Listen(id quorum.ServerID) (*VListener, error) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	if _, ok := vn.listeners[id]; ok {
		return nil, fmt.Errorf("transport: virtual address %d already bound", id)
	}
	l := &VListener{net: vn, id: id, ch: make(chan struct{}, 1)}
	vn.listeners[id] = l
	return l, nil
}

// Dialer returns a dial function bound to the given source identity,
// matching TCPClientOptions.Dial. Per-link fault decisions and latency
// draws key on (source, destination), so per-source dialers are what give
// server-initiated traffic (gossip) true link identities.
func (vn *VirtualNet) Dialer(from quorum.ServerID) func(to quorum.ServerID, addr string) (net.Conn, error) {
	return func(to quorum.ServerID, _ string) (net.Conn, error) {
		return vn.dial(from, to)
	}
}

func (vn *VirtualNet) dial(from, to quorum.ServerID) (net.Conn, error) {
	vn.mu.Lock()
	if vn.crashed[to] {
		vn.mu.Unlock()
		return nil, ErrCrashed
	}
	if vn.blockAppliesLocked(from, to) {
		vn.mu.Unlock()
		return nil, ErrDropped
	}
	l, ok := vn.listeners[to]
	if !ok {
		vn.mu.Unlock()
		return nil, ErrUnknownServer
	}
	pmu := new(sync.Mutex)
	cl := &vconn{net: vn, client: from, server: to, toServer: true, pmu: pmu, readCh: make(chan struct{}, 1)}
	sv := &vconn{net: vn, client: from, server: to, toServer: false, pmu: pmu, readCh: make(chan struct{}, 1)}
	cl.peer, sv.peer = sv, cl
	vn.conns[cl] = struct{}{}
	vn.stats.dials++
	vn.mu.Unlock()
	if !l.enqueue(sv) {
		// The listener is closed but the address still bound: the server
		// stopped accepting without leaving the membership, which is a
		// refused/reset connection — NOT an unknown address (Deregister is
		// what removes the binding and produces ErrUnknownServer).
		cl.reset(errVConnReset)
		return nil, errVConnReset
	}
	return cl, nil
}

// dropConn forgets a finished pair (either endpoint).
func (vn *VirtualNet) dropConn(c *vconn) {
	if !c.toServer {
		c = c.peer
	}
	vn.mu.Lock()
	delete(vn.conns, c)
	vn.mu.Unlock()
}

// chunkVerdict is the fault plane's decision on one written chunk.
type chunkVerdict struct {
	drop       bool
	corruptBit int64 // < 0: none; else bit index into the chunk
	delay      time.Duration
}

// verdict draws the per-chunk decision word: delivery latency (global or
// per-server override), jitter, drop and corruption, all counter-hashed
// from (seed, link, chunk sequence) exactly like MemNetwork's per-call
// draws, so a run whose per-link chunk sequence is deterministic replays
// its delivery schedule and fault pattern from the seed.
func (vn *VirtualNet) verdict(link vlinkKey, size int) chunkVerdict {
	vn.mu.Lock()
	vn.chunkSeq[link]++
	seq := vn.chunkSeq[link]
	minLat, maxLat := vn.minLat, vn.maxLat
	if lr, ok := vn.perServer[link.server]; ok {
		minLat, maxLat = lr.min, lr.max
	}
	dropP, corruptP, jitterMax := vn.dropP, vn.corruptP, vn.jitterMax
	rate := vn.rateDown
	if link.toServer {
		rate = vn.rateUp
	}
	vn.stats.chunks++
	vn.stats.chunkBytes += uint64(size)

	dir := uint64(0)
	if link.toServer {
		dir = 1 << 63
	}
	base := splitmix64(vn.seed ^ dir ^ (uint64(link.client)+3)<<40 ^ (uint64(link.server)+3)<<20 ^ seq)
	v := chunkVerdict{corruptBit: -1, delay: minLat}
	if maxLat > minLat {
		v.delay = minLat + time.Duration(splitmix64(base^0x1A)%uint64(maxLat-minLat+1))
	}
	if jitterMax > 0 {
		v.delay += time.Duration(unitFloat(splitmix64(base^0x03)) * float64(jitterMax))
	}
	if rate > 0 {
		v.delay += time.Duration(int64(size) * int64(time.Second) / rate)
	}
	if dropP > 0 && unitFloat(splitmix64(base^0x0D)) < dropP {
		v.drop = true
		vn.stats.dropped++
		vn.mu.Unlock()
		return v
	}
	if corruptP > 0 && size > 0 && unitFloat(splitmix64(base^0x04)) < corruptP {
		v.corruptBit = int64(splitmix64(base^0x05) % uint64(size*8))
		vn.stats.corrupted++
	}
	vn.mu.Unlock()
	return v
}

// unitFloat maps a decision word to [0, 1).
func unitFloat(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// VListener is a virtual listener; it implements net.Listener.
type VListener struct {
	net *VirtualNet
	id  quorum.ServerID

	mu      sync.Mutex
	queue   []*vconn
	waiting bool
	ch      chan struct{}
	closed  bool
}

var _ net.Listener = (*VListener)(nil)

// enqueue hands a server-side endpoint to the acceptor, reporting false if
// the listener is closed.
func (l *VListener) enqueue(c *vconn) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	l.queue = append(l.queue, c)
	l.wakeLocked()
	l.mu.Unlock()
	return true
}

// wakeLocked wakes a parked acceptor; one tracked signal per waiter.
func (l *VListener) wakeLocked() {
	if l.waiting {
		l.waiting = false
		l.net.sched.NoteSend()
		l.ch <- struct{}{}
	}
}

// Accept implements net.Listener.
func (l *VListener) Accept() (net.Conn, error) {
	for {
		l.mu.Lock()
		if len(l.queue) > 0 {
			c := l.queue[0]
			l.queue = l.queue[1:]
			l.mu.Unlock()
			return c, nil
		}
		if l.closed {
			l.mu.Unlock()
			return nil, net.ErrClosed
		}
		l.waiting = true
		l.mu.Unlock()
		unpark := l.net.sched.Park()
		<-l.ch
		unpark()
		l.net.sched.NoteRecv()
	}
}

// Close implements net.Listener. It stops Accept; the binding itself is
// removed by VirtualNet.Deregister (a closed-but-bound listener models a
// server that stopped accepting without leaving the membership: dials
// fail with a reset rather than an unknown address).
func (l *VListener) Close() error {
	l.close()
	return nil
}

func (l *VListener) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	pending := l.queue
	l.queue = nil
	l.wakeLocked()
	l.mu.Unlock()
	for _, c := range pending {
		c.reset(errVConnReset)
	}
}

// Addr implements net.Listener.
func (l *VListener) Addr() net.Addr { return vAddr(fmt.Sprintf("virtual:%d", l.id)) }

// vAddr is the net.Addr of virtual endpoints.
type vAddr string

func (a vAddr) Network() string { return "virtual" }
func (a vAddr) String() string  { return string(a) }

// vchunk is one scheduled unit of stream data (or a FIN).
type vchunk struct {
	seq  uint64
	data []byte
	fin  bool
}

// vconn is one endpoint of a virtual byte-stream pair. It implements
// net.Conn. Reads block until scheduled delivery releases bytes (parked
// under a SimClock); writes never block — they copy the chunk, consult the
// fault plane, and schedule delivery on the clock.
//
// Both endpoints of a pair share one stream mutex (pmu): writes touch the
// peer's pending queue and resets touch both ends, so a single lock keeps
// the two directions from deadlocking against each other.
type vconn struct {
	net            *VirtualNet
	client, server quorum.ServerID
	toServer       bool // direction of this endpoint's writes
	peer           *vconn

	pmu *sync.Mutex // shared stream mutex, guards everything below on BOTH ends

	pending []vchunk // written by peer, not yet released by the clock
	readBuf []byte   // released, readable
	eof     bool     // peer's FIN released
	closed  bool     // local Close
	rstErr  error    // fault-plane reset
	waiting bool
	readCh  chan struct{}

	// writer-side scheduling state.
	sendSeq     uint64
	nextDeliver time.Time
}

var _ net.Conn = (*vconn)(nil)

// Read implements net.Conn.
func (c *vconn) Read(p []byte) (int, error) {
	for {
		c.pmu.Lock()
		if err := c.rstErr; err != nil {
			c.pmu.Unlock()
			return 0, err
		}
		if c.closed {
			c.pmu.Unlock()
			return 0, net.ErrClosed
		}
		if len(c.readBuf) > 0 {
			n := copy(p, c.readBuf)
			c.readBuf = c.readBuf[n:]
			c.pmu.Unlock()
			return n, nil
		}
		if c.eof {
			c.pmu.Unlock()
			return 0, io.EOF
		}
		c.waiting = true
		c.pmu.Unlock()
		unpark := c.net.sched.Park()
		<-c.readCh
		unpark()
		c.net.sched.NoteRecv()
	}
}

// wakeLocked wakes a parked reader; one tracked signal per waiter.
func (c *vconn) wakeLocked() {
	if c.waiting {
		c.waiting = false
		c.net.sched.NoteSend()
		c.readCh <- struct{}{}
	}
}

// Write implements net.Conn: consult the fault plane, copy the chunk, and
// schedule its delivery at the peer. Delivery deadlines are monotone per
// direction, so the stream never reorders internally even when jitter
// varies across chunks.
func (c *vconn) Write(p []byte) (int, error) {
	c.pmu.Lock()
	if err := c.writeErrLocked(); err != nil {
		c.pmu.Unlock()
		return 0, err
	}
	c.pmu.Unlock()

	// A stalled endpoint swallows the chunk before the fault plane sees it:
	// the write reports success, no chunkSeq is consumed (so stalling a
	// server does not perturb the deterministic verdict stream of other
	// links), and nothing arrives at the peer.
	if c.net.stallVerdict(c.server) {
		return len(p), nil
	}

	v := c.net.verdict(vlinkKey{client: c.client, server: c.server, toServer: c.toServer}, len(p))
	if v.drop {
		// A gap in a byte stream is unrecoverable for the framing behind
		// it: surface the loss as a connection reset, the stream-transport
		// analogue of ErrDropped.
		c.reset(errVConnReset)
		return 0, errVConnReset
	}
	data := make([]byte, len(p))
	copy(data, p)
	if v.corruptBit >= 0 {
		data[v.corruptBit/8] ^= 1 << (v.corruptBit % 8)
	}
	c.scheduleChunk(vchunk{data: data}, v.delay)
	return len(p), nil
}

func (c *vconn) writeErrLocked() error {
	if c.rstErr != nil {
		return c.rstErr
	}
	if c.closed {
		return net.ErrClosed
	}
	return nil
}

// scheduleChunk enqueues ch at the peer and arms its delivery timer.
func (c *vconn) scheduleChunk(ch vchunk, delay time.Duration) {
	now := c.net.clock.Now()
	c.pmu.Lock()
	if c.rstErr != nil { // reset raced the fault draw; nothing to deliver
		c.pmu.Unlock()
		return
	}
	c.sendSeq++
	ch.seq = c.sendSeq
	deliverAt := now.Add(delay)
	if deliverAt.Before(c.nextDeliver) {
		deliverAt = c.nextDeliver
	}
	c.nextDeliver = deliverAt
	seq := ch.seq
	peer := c.peer
	peer.pending = append(peer.pending, ch)
	c.pmu.Unlock()
	c.net.clock.AfterFunc(deliverAt.Sub(now), func() { peer.arrive(seq) })
}

// arrive releases every pending chunk up to seq into the read buffer.
// Release by sequence prefix keeps the stream ordered even if the
// underlying timers fire out of order (wall clocks give no ordering
// guarantee for equal deadlines).
func (c *vconn) arrive(seq uint64) {
	c.pmu.Lock()
	for len(c.pending) > 0 && c.pending[0].seq <= seq {
		ch := c.pending[0]
		c.pending = c.pending[1:]
		if ch.fin {
			c.eof = true
		} else {
			c.readBuf = append(c.readBuf, ch.data...)
		}
	}
	c.wakeLocked()
	c.pmu.Unlock()
}

// Close implements net.Conn: local reads and writes fail from now on, and
// a FIN is scheduled behind any bytes already in flight, so the peer
// drains delivered data before seeing io.EOF — TCP's half-close ordering.
func (c *vconn) Close() error {
	c.pmu.Lock()
	if c.closed || c.rstErr != nil {
		c.pmu.Unlock()
		return nil
	}
	c.closed = true
	c.wakeLocked()
	c.pmu.Unlock()
	// The FIN rides the normal delivery schedule (minimum latency for its
	// link, no fault draws: losing a FIN could only stall the peer's read
	// loop forever, which no real stack allows — timeouts reap it).
	vn := c.net
	vn.mu.Lock()
	minLat := vn.minLat
	if lr, ok := vn.perServer[c.server]; ok {
		minLat = lr.min
	}
	vn.mu.Unlock()
	c.scheduleChunk(vchunk{fin: true}, minLat)
	c.net.dropConn(c)
	return nil
}

// reset kills both endpoints immediately (TCP RST): buffered and in-flight
// data is discarded, blocked readers wake with the error, writers fail.
func (c *vconn) reset(err error) {
	c.net.dropConn(c)
	c.net.mu.Lock()
	c.net.stats.resets++
	c.net.mu.Unlock()
	c.pmu.Lock()
	for _, e := range [2]*vconn{c, c.peer} {
		if e.rstErr == nil {
			e.rstErr = err
			e.pending = nil
			e.readBuf = nil
			e.wakeLocked()
		}
	}
	c.pmu.Unlock()
}

// LocalAddr implements net.Conn.
func (c *vconn) LocalAddr() net.Addr {
	if c.toServer {
		return vAddr(fmt.Sprintf("virtual:client:%d", c.client))
	}
	return vAddr(fmt.Sprintf("virtual:%d", c.server))
}

// RemoteAddr implements net.Conn.
func (c *vconn) RemoteAddr() net.Addr {
	if c.toServer {
		return vAddr(fmt.Sprintf("virtual:%d", c.server))
	}
	return vAddr(fmt.Sprintf("virtual:client:%d", c.client))
}

// SetDeadline implements net.Conn. The virtual transport has no deadline
// support (the TCP stack above it never sets one; cancellation rides the
// per-call contexts and the client's call timeout instead).
func (c *vconn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn.
func (c *vconn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn.
func (c *vconn) SetWriteDeadline(time.Time) error { return nil }
