package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/vtime"
	"pqs/internal/wire"
)

// lifecycleCluster stands up n virtual TCP servers and a lifecycle-enabled
// client whose dialer is wrapped by wrap (nil = the plain VirtualNet
// dialer).
func lifecycleCluster(t testing.TB, vn *VirtualNet, clk vtime.Clock, n int, lc LifecycleConfig,
	wrap func(inner func(quorum.ServerID, string) (net.Conn, error)) func(quorum.ServerID, string) (net.Conn, error),
) (*TCPClient, []*TCPServer) {
	t.Helper()
	servers := make([]*TCPServer, 0, n)
	addrs := make(map[quorum.ServerID]string, n)
	for i := 0; i < n; i++ {
		id := quorum.ServerID(i)
		l, err := vn.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, ServeListener(l, upperHandler{}, TCPOptions{Clock: clk}))
		addrs[id] = l.Addr().String()
	}
	dial := vn.Dialer(ClientSource)
	if wrap != nil {
		dial = wrap(dial)
	}
	client := NewTCPClientOpts(addrs, TCPClientOptions{
		Clock:       clk,
		Dial:        dial,
		CallTimeout: time.Second,
		Lifecycle:   lc,
	})
	return client, servers
}

// TestLifecyclePoolGrowth checks the pool's two laws: sequential traffic
// stays on one connection, and the pool grows one connection at a time only
// while every live connection is busy, never past PoolSize.
func TestLifecyclePoolGrowth(t *testing.T) {
	sc := vtime.NewSimClock()
	sc.Run(func() {
		vn := NewVirtualNet(sc, 11)
		vn.SetLatency(time.Millisecond, 2*time.Millisecond)
		client, servers := lifecycleCluster(t, vn, sc, 1, LifecycleConfig{PoolSize: 3}, nil)
		defer func() {
			client.Close()
			for _, s := range servers {
				s.Close()
			}
		}()
		ctx := context.Background()

		for i := 0; i < 5; i++ {
			if _, err := client.Call(ctx, 0, wire.ReadRequest{Key: "seq"}); err != nil {
				t.Fatalf("sequential call %d: %v", i, err)
			}
		}
		if got := client.Stats().Conns; got != 1 {
			t.Fatalf("sequential traffic used %d conns, want 1", got)
		}

		// 8 concurrent calls against PoolSize 3: the pool must grow to the
		// cap and stop there.
		sched := vtime.SchedOf(sc)
		wg := vtime.NewWaitGroup(sc)
		wg.Add(8)
		for i := 0; i < 8; i++ {
			sched.Go(func() {
				defer wg.Done()
				if _, err := client.Call(ctx, 0, wire.ReadRequest{Key: "par"}); err != nil {
					t.Errorf("concurrent call: %v", err)
				}
			})
		}
		wg.Wait()
		if got := client.Stats().Conns; got < 2 || got > 3 {
			t.Fatalf("concurrent traffic used %d conns, want 2..3 (PoolSize 3)", got)
		}
	})
}

// TestLifecycleDialCoalescing parks seven callers behind one in-flight dial
// and requires exactly one dial plus seven coalesced joins, each holding a
// usable connection afterwards.
func TestLifecycleDialCoalescing(t *testing.T) {
	sc := vtime.NewSimClock()
	var dials atomic.Int32
	sc.Run(func() {
		vn := NewVirtualNet(sc, 13)
		sched := vtime.SchedOf(sc)
		gate := make(chan struct{})
		wrap := func(inner func(quorum.ServerID, string) (net.Conn, error)) func(quorum.ServerID, string) (net.Conn, error) {
			return func(to quorum.ServerID, addr string) (net.Conn, error) {
				dials.Add(1)
				unpark := sched.Park()
				<-gate
				unpark()
				sched.NoteRecv()
				return inner(to, addr)
			}
		}
		client, servers := lifecycleCluster(t, vn, sc, 1, LifecycleConfig{PoolSize: 1}, wrap)
		defer func() {
			client.Close()
			for _, s := range servers {
				s.Close()
			}
		}()
		ctx := context.Background()

		wg := vtime.NewWaitGroup(sc)
		wg.Add(8)
		for i := 0; i < 8; i++ {
			sched.Go(func() {
				defer wg.Done()
				if _, err := client.Call(ctx, 0, wire.ReadRequest{Key: "x"}); err != nil {
					t.Errorf("coalesced call: %v", err)
				}
			})
		}
		// The SimClock fires this timer only once every caller is parked:
		// one inside the gated dial, seven as singleflight waiters.
		sc.Sleep(time.Millisecond)
		if got := client.Stats().DialsCoalesced; got != 7 {
			t.Errorf("before gate open: %d coalesced, want 7", got)
		}
		sched.NoteSend()
		gate <- struct{}{}
		wg.Wait()

		// Regression: the dialer leases once per waiter before the hand-off
		// and the waiter must not lease again. A leaked lease per coalesced
		// caller would pin load() above zero forever, so the connection
		// would never be idle-reaped, never health-probed, and always count
		// as busy for pool growth.
		client.mu.Lock()
		st := client.states[0]
		client.mu.Unlock()
		st.mu.Lock()
		if len(st.conns) == 0 {
			t.Error("pool empty after coalesced calls completed")
		}
		for _, cn := range st.conns {
			if got := cn.load(); got != 0 {
				t.Errorf("pooled conn load = %d after all coalesced calls returned, want 0", got)
			}
		}
		st.mu.Unlock()
	})
	if got := dials.Load(); got != 1 {
		t.Fatalf("dialed %d times, want 1 (singleflight)", got)
	}
}

// TestLifecycleBackoffDeterminism replays a redial storm against a dead
// server twice from one seed and requires the identical jittered backoff
// schedule: same dial-attempt timestamps, exponentially widening windows,
// each jittered into [d/2, d).
func TestLifecycleBackoffDeterminism(t *testing.T) {
	run := func() []time.Duration {
		sc := vtime.NewSimClock()
		var stamps []time.Duration
		sc.Run(func() {
			vn := NewVirtualNet(sc, 17)
			wrap := func(func(quorum.ServerID, string) (net.Conn, error)) func(quorum.ServerID, string) (net.Conn, error) {
				return func(quorum.ServerID, string) (net.Conn, error) {
					stamps = append(stamps, sc.Elapsed())
					return nil, errors.New("refused")
				}
			}
			client, servers := lifecycleCluster(t, vn, sc, 1, LifecycleConfig{
				DialBackoffBase: 10 * time.Millisecond,
				DialBackoffMax:  80 * time.Millisecond,
				Seed:            99,
			}, wrap)
			defer func() {
				client.Close()
				for _, s := range servers {
					s.Close()
				}
			}()
			ctx := context.Background()
			for i := 0; i < 300; i++ {
				if _, err := client.Call(ctx, 0, wire.ReadRequest{Key: "x"}); err == nil {
					t.Fatal("call against a refusing dialer succeeded")
				}
				sc.Sleep(time.Millisecond)
			}
		})
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("attempt counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d at %v vs %v: backoff schedule is not replaying", i, a[i], b[i])
		}
	}
	if len(a) < 4 {
		t.Fatalf("only %d dial attempts in 300ms; backoff windows too wide", len(a))
	}
	// Consecutive failures must widen the window exponentially (jitter keeps
	// each gap in [d/2, d), so gap i+1 / gap i stays below 4) and never
	// exceed the cap.
	for i := 1; i < len(a); i++ {
		gap := a[i] - a[i-1]
		if gap < 5*time.Millisecond {
			t.Fatalf("gap %d = %v below base/2", i, gap)
		}
		if gap > 81*time.Millisecond {
			t.Fatalf("gap %d = %v above DialBackoffMax+poll", i, gap)
		}
	}
	t.Logf("replayed %d dial attempts identically; first gaps: %v %v %v",
		len(a), a[1]-a[0], a[2]-a[1], a[3]-a[2])
}

// TestLifecycleBreakerStateMachine walks the breaker through its whole
// cycle: consecutive dial failures trip it, the open state fast-fails with
// ErrServerDown (and reports ServerDown), the cooldown half-opens it for one
// trial whose failure re-opens and whose success closes.
func TestLifecycleBreakerStateMachine(t *testing.T) {
	sc := vtime.NewSimClock()
	sc.Run(func() {
		vn := NewVirtualNet(sc, 23)
		var refuse atomic.Bool
		refuse.Store(true)
		wrap := func(inner func(quorum.ServerID, string) (net.Conn, error)) func(quorum.ServerID, string) (net.Conn, error) {
			return func(to quorum.ServerID, addr string) (net.Conn, error) {
				if refuse.Load() {
					return nil, errors.New("refused")
				}
				return inner(to, addr)
			}
		}
		client, servers := lifecycleCluster(t, vn, sc, 1, LifecycleConfig{
			BreakerThreshold: 3,
			BreakerCooldown:  50 * time.Millisecond,
		}, wrap)
		defer func() {
			client.Close()
			for _, s := range servers {
				s.Close()
			}
		}()
		ctx := context.Background()
		call := func() error { _, err := client.Call(ctx, 0, wire.ReadRequest{Key: "x"}); return err }

		// Three consecutive dial failures trip the breaker.
		for i := 0; i < 3; i++ {
			if client.ServerDown(0) {
				t.Fatalf("ServerDown before failure %d", i)
			}
			if err := call(); err == nil || errors.Is(err, ErrServerDown) {
				t.Fatalf("failure %d: got %v, want a dial error", i, err)
			}
		}
		if st := client.Stats(); st.BreakerTrips != 1 {
			t.Fatalf("BreakerTrips = %d, want 1", st.BreakerTrips)
		}
		if !client.ServerDown(0) {
			t.Fatal("breaker tripped but ServerDown is false")
		}
		if err := call(); !errors.Is(err, ErrServerDown) {
			t.Fatalf("open breaker returned %v, want ErrServerDown", err)
		}
		if !IsTransient(fmt.Errorf("wrapped: %w", ErrServerDown)) {
			t.Fatal("ErrServerDown must classify transient")
		}

		// Cooldown elapses: the half-open trial fails, re-opening it.
		sc.Sleep(60 * time.Millisecond)
		if client.ServerDown(0) {
			t.Fatal("ServerDown still true after the cooldown elapsed")
		}
		if err := call(); err == nil || errors.Is(err, ErrServerDown) {
			t.Fatalf("half-open trial: got %v, want a dial error", err)
		}
		if err := call(); !errors.Is(err, ErrServerDown) {
			t.Fatalf("after failed trial: got %v, want ErrServerDown", err)
		}
		if st := client.Stats(); st.BreakerHalfOpens != 1 || st.BreakerTrips != 2 {
			t.Fatalf("after failed trial: half-opens=%d trips=%d, want 1/2", st.BreakerHalfOpens, st.BreakerTrips)
		}

		// The server heals: the next trial closes the breaker for good.
		refuse.Store(false)
		sc.Sleep(60 * time.Millisecond)
		if err := call(); err != nil {
			t.Fatalf("healed trial: %v", err)
		}
		if st := client.Stats(); st.BreakerCloses != 1 {
			t.Fatalf("BreakerCloses = %d, want 1", st.BreakerCloses)
		}
		if client.ServerDown(0) {
			t.Fatal("ServerDown after the breaker closed")
		}
		if err := call(); err != nil {
			t.Fatalf("post-close call: %v", err)
		}
	})
}

// TestLifecycleIdleReapAndProbe runs the maintenance loop under a SimClock:
// idle connections get health-check pings on the probe period, a crashed
// server fails its probe (evicting the connection and counting a breaker
// failure), and a connection idle past IdleTimeout is reaped.
func TestLifecycleIdleReapAndProbe(t *testing.T) {
	sc := vtime.NewSimClock()
	sc.Run(func() {
		vn := NewVirtualNet(sc, 29)
		vn.SetLatency(time.Millisecond, 2*time.Millisecond)
		client, servers := lifecycleCluster(t, vn, sc, 1, LifecycleConfig{
			PoolSize:     2,
			ProbeEvery:   20 * time.Millisecond,
			ProbeTimeout: 10 * time.Millisecond,
			IdleTimeout:  100 * time.Millisecond,
		}, nil)
		defer func() {
			client.Close()
			for _, s := range servers {
				s.Close()
			}
		}()
		ctx := context.Background()
		if _, err := client.Call(ctx, 0, wire.ReadRequest{Key: "x"}); err != nil {
			t.Fatal(err)
		}

		sc.Sleep(50 * time.Millisecond)
		st := client.Stats()
		if st.ProbesSent == 0 {
			t.Fatal("no health probes sent while the connection idled")
		}
		if st.ProbeFailures != 0 {
			t.Fatalf("%d probe failures against a healthy server", st.ProbeFailures)
		}

		sc.Sleep(200 * time.Millisecond)
		if st := client.Stats(); st.ConnsReaped == 0 {
			t.Fatal("idle connection was never reaped")
		}

		// A fresh connection against a server that hangs (stalled: chunks
		// silently swallowed, the conn stays up): the next probe times out,
		// counting a failure and evicting the connection.
		if _, err := client.Call(ctx, 0, wire.ReadRequest{Key: "y"}); err != nil {
			t.Fatal(err)
		}
		vn.Stall(0)
		sc.Sleep(50 * time.Millisecond)
		if st := client.Stats(); st.ProbeFailures == 0 {
			t.Fatal("probe against a stalled server never failed")
		}
		vn.Unstall(0)
	})
}

// TestRPCErrorClassification covers the typed error path end to end over
// the virtual wire: a handler error comes back as an *RPCError with the
// legacy message text, classified permanent (upperHandler marks its
// malformed-request rejection via wire.PermanentError), while the breaker
// ignores it — the server answered, so it is alive.
func TestRPCErrorClassification(t *testing.T) {
	sc := vtime.NewSimClock()
	sc.Run(func() {
		vn := NewVirtualNet(sc, 31)
		client, servers := lifecycleCluster(t, vn, sc, 1, LifecycleConfig{BreakerThreshold: 2}, nil)
		defer func() {
			client.Close()
			for _, s := range servers {
				s.Close()
			}
		}()
		ctx := context.Background()
		for i := 0; i < 5; i++ {
			_, err := client.Call(ctx, 0, wire.WriteRequest{Key: "k"}) // upperHandler rejects non-reads
			if err == nil {
				t.Fatal("handler error did not surface")
			}
			var rpc *RPCError
			if !errors.As(err, &rpc) {
				t.Fatalf("got %T (%v), want *RPCError", err, err)
			}
			if rpc.Server != 0 || rpc.Msg == "" {
				t.Fatalf("RPCError = %+v", rpc)
			}
			if want := fmt.Sprintf("server %d: %s", rpc.Server, rpc.Msg); err.Error() != want {
				t.Fatalf("error text %q, want legacy form %q", err.Error(), want)
			}
			if !IsPermanent(err) {
				t.Fatalf("handler rejection %v not classified permanent", err)
			}
			if IsTransient(err) {
				t.Fatalf("permanent RPCError %v classified transient", err)
			}
		}
		// Five server-answered errors, threshold two: the breaker must not
		// have counted them.
		if st := client.Stats(); st.BreakerTrips != 0 {
			t.Fatalf("breaker tripped on server-answered RPC errors: %d", st.BreakerTrips)
		}
		if client.ServerDown(0) {
			t.Fatal("ServerDown after RPC errors only")
		}
	})
}

// TestRPCErrorUnclassifiedStaysRetryable pins the classification default: a
// handler error the server cannot positively identify travels as
// ErrKindUnknown, which clients treat as retryable — misfiling a transient
// app-level error (overload, shutdown) as permanent would stop a quorum
// re-sample that could succeed.
func TestRPCErrorUnclassifiedStaysRetryable(t *testing.T) {
	sc := vtime.NewSimClock()
	sc.Run(func() {
		vn := NewVirtualNet(sc, 37)
		l, err := vn.Listen(0)
		if err != nil {
			t.Fatal(err)
		}
		h := HandlerFunc(func(context.Context, any) (any, error) {
			return nil, errors.New("briefly overloaded, try again")
		})
		srv := ServeListener(l, h, TCPOptions{Clock: sc})
		client := NewTCPClientOpts(map[quorum.ServerID]string{0: l.Addr().String()}, TCPClientOptions{
			Clock:     sc,
			Dial:      vn.Dialer(ClientSource),
			Lifecycle: LifecycleConfig{BreakerThreshold: 2},
		})
		defer func() {
			client.Close()
			srv.Close()
		}()
		for i := 0; i < 3; i++ {
			_, err := client.Call(context.Background(), 0, wire.ReadRequest{Key: "k"})
			var rpc *RPCError
			if !errors.As(err, &rpc) {
				t.Fatalf("got %T (%v), want *RPCError", err, err)
			}
			if rpc.Kind != wire.ErrKindUnknown {
				t.Fatalf("Kind = %d, want ErrKindUnknown", rpc.Kind)
			}
			if IsPermanent(err) {
				t.Fatalf("unclassified error %v classified permanent", err)
			}
		}
		if st := client.Stats(); st.BreakerTrips != 0 {
			t.Fatalf("breaker counted server-answered errors: %d trips", st.BreakerTrips)
		}
	})
}
