package transport_test

// Goroutine-leak regression for the TCP transport: the PR 2 rebuild gave
// every connection a context cancelled on Close so in-flight handlers
// cannot outlive the server, and the client's access engine promises its
// background drains always terminate. These tests close endpoints with
// work still in flight — including a register client with unfinished
// hedged reads — and require the goroutine count to return to baseline.

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/register"
	"pqs/internal/replica"
	"pqs/internal/transport"
	"pqs/internal/ts"
	"pqs/internal/wire"
)

// waitForGoroutines polls until the goroutine count drops to at most want,
// failing the test otherwise. The poll tolerates runtime bookkeeping
// goroutines by allowing slack already folded into want.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutines did not drain: %d > %d\n%s", n, want, buf)
}

// TestTCPServerCloseWithInflightRequests closes a server while handlers are
// still running; Close must cancel them via the per-connection context and
// every server and client goroutine must exit.
func TestTCPServerCloseWithInflightRequests(t *testing.T) {
	baseline := runtime.NumGoroutine()

	started := make(chan struct{}, 64)
	h := transport.HandlerFunc(func(ctx context.Context, req any) (any, error) {
		started <- struct{}{}
		// Block until the server's Close cancels the per-connection context;
		// without that cancellation this handler (and Close itself) would
		// hang until the 10s fallback, failing the drain below.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return wire.PingReply{}, nil
		}
	})
	srv, err := transport.ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	client := transport.NewTCPClient(map[quorum.ServerID]string{1: srv.Addr()})

	const inflight = 8
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client.Call(context.Background(), 1, wire.PingRequest{}) //nolint:errcheck // failure expected at teardown
		}()
	}
	for i := 0; i < inflight; i++ {
		<-started
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	wg.Wait()
	client.Close()
	waitForGoroutines(t, baseline+2)
}

// TestHedgedReadsDrainOverTCP runs a register client with spares and a
// hedge timer against slow TCP replicas, closes everything with hedged
// reads unfinished, and requires the goroutine count to return to
// baseline: the access engine's background drains and the transport's
// connection goroutines must all terminate.
func TestHedgedReadsDrainOverTCP(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const n = 5
	sys, err := quorum.NewUniform(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make(map[quorum.ServerID]string, n)
	servers := make([]*transport.TCPServer, 0, n)
	for i := 0; i < n; i++ {
		r := replica.New(quorum.ServerID(i))
		// Slow replicas keep replies in flight when the reads return early.
		r.SetBehavior(replica.Delayed{Delay: 5 * time.Millisecond})
		srv, err := transport.ListenTCP("127.0.0.1:0", r)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs[quorum.ServerID(i)] = srv.Addr()
	}
	tcpClient := transport.NewTCPClient(addrs)
	client, err := register.NewClient(register.Options{
		System:     sys,
		Mode:       register.Benign,
		Transport:  tcpClient,
		Rand:       rand.New(rand.NewSource(1)),
		Clock:      ts.NewClock(1),
		Spares:     2,
		HedgeDelay: time.Millisecond,
		EagerRead:  true,
		W:          1,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if _, err := client.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("write: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := client.Read(ctx, "k"); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	// Close the servers while hedged stragglers may still be in flight,
	// then wait out the client's drains: nothing may leak.
	for _, srv := range servers {
		if err := srv.Close(); err != nil {
			t.Fatalf("server close: %v", err)
		}
	}
	client.WaitDrained()
	tcpClient.Close()
	waitForGoroutines(t, baseline+2)
}
