package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/vtime"
	"pqs/internal/wire"
)

// --- raw conn semantics (wall clock: the conn must behave like a socket
// under either time source) ---------------------------------------------

func vpair(t *testing.T, vn *VirtualNet, id quorum.ServerID) (client, server net.Conn) {
	t.Helper()
	l, err := vn.Listen(id)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	cl, err := vn.dial(ClientSource, id)
	if err != nil {
		t.Fatal(err)
	}
	sv, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	return cl, sv
}

// TestVirtualConnSplitFrames writes one logical frame in several chunks and
// reads it back through partial reads: the stream must reassemble exactly,
// in order, regardless of chunk boundaries.
func TestVirtualConnSplitFrames(t *testing.T) {
	vn := NewVirtualNet(nil, 1)
	cl, sv := vpair(t, vn, 7)
	defer cl.Close()
	defer sv.Close()

	payload := []byte("length-prefixed frame split across many writes")
	go func() {
		for i := 0; i < len(payload); i += 5 {
			end := i + 5
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := cl.Write(payload[i:end]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()
	got := make([]byte, 0, len(payload))
	buf := make([]byte, 3) // deliberately tiny reads
	for len(got) < len(payload) {
		n, err := sv.Read(buf)
		if err != nil {
			t.Fatalf("read after %d bytes: %v", len(got), err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stream reassembled wrong:\n got %q\nwant %q", got, payload)
	}
}

// TestVirtualConnHalfCloseMidFrame closes the writer with bytes still in
// flight: the reader must drain every delivered byte BEFORE seeing io.EOF
// (TCP's FIN ordering), even when the close lands mid-frame.
func TestVirtualConnHalfCloseMidFrame(t *testing.T) {
	vn := NewVirtualNet(nil, 2)
	vn.SetLatency(time.Millisecond, 2*time.Millisecond)
	cl, sv := vpair(t, vn, 3)
	defer sv.Close()

	// A "frame" whose writer dies after the length prefix and half the body.
	if _, err := cl.Write([]byte{0x20}); err != nil { // prefix: 32-byte body
		t.Fatal(err)
	}
	half := bytes.Repeat([]byte{0xAB}, 16)
	if _, err := cl.Write(half); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	got, err := io.ReadAll(sv)
	if err != nil {
		t.Fatalf("ReadAll: %v", err) // io.EOF is swallowed by ReadAll
	}
	want := append([]byte{0x20}, half...)
	if !bytes.Equal(got, want) {
		t.Fatalf("reader saw %x, want the partial frame %x then EOF", got, want)
	}
	// And the local end is really closed.
	if _, err := cl.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write after close: %v, want net.ErrClosed", err)
	}
}

// TestVirtualConnReset checks RST semantics: both ends fail promptly,
// buffered data is discarded, and the error is transient.
func TestVirtualConnReset(t *testing.T) {
	vn := NewVirtualNet(nil, 3)
	cl, sv := vpair(t, vn, 9)
	if _, err := cl.Write([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	vn.Crash(9)
	if _, err := sv.Read(make([]byte, 8)); err == nil || !IsTransient(err) {
		t.Fatalf("read on reset conn: %v, want transient error", err)
	}
	if _, err := cl.Write([]byte("x")); err == nil || !IsTransient(err) {
		t.Fatalf("write on reset conn: %v, want transient error", err)
	}
	// Crashed address refuses dials until recovered.
	if _, err := vn.dial(ClientSource, 9); !errors.Is(err, ErrCrashed) {
		t.Fatalf("dial crashed server: %v, want ErrCrashed", err)
	}
	vn.Recover(9)
	if _, err := vn.dial(ClientSource, 9); err != nil {
		t.Fatalf("dial after recover: %v", err)
	}
}

// --- the full TCP stack over VirtualNet ---------------------------------

// upperHandler replies with the request's key upper-cased, so the test can
// verify end-to-end decode → handle → encode.
type upperHandler struct{}

func (upperHandler) Handle(_ context.Context, req any) (any, error) {
	r, ok := req.(wire.ReadRequest)
	if !ok {
		return nil, wire.PermanentError(fmt.Errorf("unexpected request %T", req))
	}
	return wire.ReadReply{Found: true, Value: []byte(strings.ToUpper(r.Key))}, nil
}

// startVirtualCluster stands up n TCP servers over vn and a client that
// reaches them, all on clk.
func startVirtualCluster(t testing.TB, vn *VirtualNet, clk vtime.Clock, n int, timeout time.Duration) (*TCPClient, []*TCPServer) {
	t.Helper()
	servers := make([]*TCPServer, 0, n)
	addrs := make(map[quorum.ServerID]string, n)
	for i := 0; i < n; i++ {
		id := quorum.ServerID(i)
		l, err := vn.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, ServeListener(l, upperHandler{}, TCPOptions{Clock: clk}))
		addrs[id] = l.Addr().String()
	}
	client := NewTCPClientOpts(addrs, TCPClientOptions{
		Clock:       clk,
		Dial:        vn.Dialer(ClientSource),
		CallTimeout: timeout,
	})
	return client, servers
}

// TestVirtualTCPRoundTripSimClock runs the real TCP stack — framing, binary
// codec, group-commit flusher, worker pool — over virtual-time byte streams
// inside a SimClock, with per-chunk latency. The run must complete
// instantly in wall time while covering real virtual duration.
func TestVirtualTCPRoundTripSimClock(t *testing.T) {
	sc := vtime.NewSimClock()
	var elapsed time.Duration
	sc.Run(func() {
		vn := NewVirtualNet(sc, 42)
		vn.SetLatency(5*time.Millisecond, 20*time.Millisecond)
		client, servers := startVirtualCluster(t, vn, sc, 4, time.Second)
		ctx := context.Background()
		for round := 0; round < 5; round++ {
			for id := 0; id < 4; id++ {
				resp, err := client.Call(ctx, quorum.ServerID(id), wire.ReadRequest{Key: fmt.Sprintf("k%d-%d", round, id)})
				if err != nil {
					t.Errorf("call %d/%d: %v", round, id, err)
					continue
				}
				want := strings.ToUpper(fmt.Sprintf("k%d-%d", round, id))
				if rr := resp.(wire.ReadReply); string(rr.Value) != want {
					t.Errorf("call %d/%d: got %q want %q", round, id, rr.Value, want)
				}
			}
		}
		client.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	elapsed = sc.Elapsed()
	if elapsed < 50*time.Millisecond {
		t.Fatalf("virtual elapsed %v; latency is not reaching the byte streams", elapsed)
	}
	t.Logf("20 RPCs covered %v virtual", elapsed)
}

// TestVirtualTCPDeterminism replays the same seeded workload twice over the
// virtual TCP stack and requires identical virtual-time traces: per-call
// completion timestamps AND the byte/chunk counters of the network — the
// data plane's replay contract at byte granularity.
func TestVirtualTCPDeterminism(t *testing.T) {
	type trace struct {
		stamps []time.Duration
		chunks uint64
		bytes  uint64
	}
	run := func() trace {
		sc := vtime.NewSimClock()
		var tr trace
		sc.Run(func() {
			vn := NewVirtualNet(sc, 7)
			vn.SetLatency(time.Millisecond, 9*time.Millisecond)
			vn.SetJitter(500 * time.Microsecond)
			client, servers := startVirtualCluster(t, vn, sc, 6, time.Second)
			ctx := context.Background()
			for i := 0; i < 30; i++ {
				id := quorum.ServerID(i % 6)
				if _, err := client.Call(ctx, id, wire.ReadRequest{Key: fmt.Sprintf("k%d", i)}); err != nil {
					t.Errorf("call %d: %v", i, err)
				}
				tr.stamps = append(tr.stamps, sc.Elapsed())
			}
			client.Close()
			for _, s := range servers {
				s.Close()
			}
			st := vn.Stats()
			tr.chunks, tr.bytes = st.Chunks, st.ChunkBytes
		})
		return tr
	}
	a, b := run(), run()
	if a.chunks != b.chunks || a.bytes != b.bytes {
		t.Fatalf("chunk traffic diverged: %d/%dB vs %d/%dB", a.chunks, a.bytes, b.chunks, b.bytes)
	}
	for i := range a.stamps {
		if a.stamps[i] != b.stamps[i] {
			t.Fatalf("call %d completed at %v vs %v: virtual TCP is not replaying", i, a.stamps[i], b.stamps[i])
		}
	}
	t.Logf("30 calls, %d chunks (%d bytes) replayed bit-identically", a.chunks, a.bytes)
}

// TestVirtualTCPServerCloseWithBufferedFlusher closes the server while a
// reply is still buffered in a connection's group-commit flusher: teardown
// must not deadlock or leak goroutines, and the client must observe a
// transient failure, not a hang. (The flusher's shutdown path drains its
// kick channel; this is its regression.)
func TestVirtualTCPServerCloseWithBufferedFlusher(t *testing.T) {
	base := runtime.NumGoroutine()
	sc := vtime.NewSimClock()
	sc.Run(func() {
		vn := NewVirtualNet(sc, 11)
		client, servers := startVirtualCluster(t, vn, sc, 1, 100*time.Millisecond)
		ctx := context.Background()
		// Prime the connection.
		if _, err := client.Call(ctx, 0, wire.ReadRequest{Key: "warm"}); err != nil {
			t.Errorf("warm call: %v", err)
		}
		// Close the server immediately after issuing a call; whatever state
		// the flusher is in (reply buffered, kick pending), teardown must
		// converge and the call must resolve with an error or a reply.
		done := make(chan struct{})
		sc.Go(func() {
			defer func() {
				sc.NoteSend()
				close(done)
			}()
			_, err := client.Call(ctx, 0, wire.ReadRequest{Key: "racing"})
			if err != nil && !IsTransient(err) {
				t.Errorf("racing call failed non-transiently: %v", err)
			}
		})
		servers[0].Close()
		unpark := sc.Park()
		<-done
		unpark()
		sc.NoteRecv()
		client.Close()
	})
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		buf := make([]byte, 1<<16)
		t.Fatalf("%d goroutines leaked past teardown:\n%s", n-base, buf[:runtime.Stack(buf, true)])
	}
}

// TestVirtualTCPCallTimeout poisons a server's reply stream (every reply id
// corrupted via byte-level corruption is hard to aim; instead the server is
// blocked after the request leaves) and checks that the clock-driven call
// timeout fires deterministically instead of hanging the virtual world.
func TestVirtualTCPCallTimeout(t *testing.T) {
	sc := vtime.NewSimClock()
	var elapsed time.Duration
	sc.Run(func() {
		vn := NewVirtualNet(sc, 13)
		// A server that never replies: its handler parks on a timer far in
		// the future relative to the call timeout.
		l, err := vn.Listen(0)
		if err != nil {
			t.Fatal(err)
		}
		stall := ServeListener(l, HandlerFunc(func(ctx context.Context, req any) (any, error) {
			sc.Sleep(time.Hour)
			return wire.ReadReply{}, nil
		}), TCPOptions{Clock: sc})
		client := NewTCPClientOpts(map[quorum.ServerID]string{0: l.Addr().String()}, TCPClientOptions{
			Clock: sc, Dial: vn.Dialer(ClientSource), CallTimeout: 50 * time.Millisecond,
		})
		start := sc.Elapsed()
		_, err = client.Call(context.Background(), 0, wire.ReadRequest{Key: "void"})
		elapsed = sc.Elapsed() - start
		if err == nil || !IsTransient(err) {
			t.Errorf("call into stalled server: %v, want transient timeout", err)
		}
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Errorf("timeout error does not report Timeout(): %v", err)
		}
		client.Close()
		// Close waits out the handler's hour-long sleep — virtual time, so
		// it completes instantly while proving teardown converges even with
		// a handler mid-sleep.
		stall.Close()
	})
	if elapsed != 50*time.Millisecond {
		t.Fatalf("timeout fired after %v, want exactly the 50ms call timeout", elapsed)
	}
}

// FuzzVNetFaultInjector drives arbitrary payloads and fault probabilities
// through a virtual conn pair and asserts the stream invariants: without a
// reset the reader sees exactly len(payload) bytes in write order (bit
// flips change content, never length or order), and with a reset both ends
// fail transiently — the injector can kill a stream but never corrupt its
// framing silently or panic.
func FuzzVNetFaultInjector(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), []byte("hello virtual wire"))
	f.Add(int64(7), uint8(40), uint8(0), []byte("droppy"))
	f.Add(int64(9), uint8(0), uint8(200), bytes.Repeat([]byte{0x5A}, 300))
	f.Add(int64(3), uint8(25), uint8(25), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, dropP, corruptP uint8, payload []byte) {
		vn := NewVirtualNet(nil, seed)
		vn.SetDrop(float64(dropP) / 255 / 2)       // up to ~0.5
		vn.SetCorrupt(float64(corruptP) / 255 / 2) // up to ~0.5
		vn.SetLatency(0, time.Microsecond)
		l, err := vn.Listen(1)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		accepted := make(chan net.Conn, 1)
		go func() {
			c, err := l.Accept()
			if err == nil {
				accepted <- c
			} else {
				close(accepted)
			}
		}()
		cl, err := vn.dial(ClientSource, 1)
		if err != nil {
			t.Fatal(err)
		}
		sv, ok := <-accepted
		if !ok {
			t.Fatal("accept failed")
		}
		defer sv.Close()

		writeErr := make(chan error, 1)
		go func() {
			var werr error
			for i := 0; i < len(payload) && werr == nil; i += 7 {
				end := i + 7
				if end > len(payload) {
					end = len(payload)
				}
				_, werr = cl.Write(payload[i:end])
			}
			if werr == nil {
				cl.Close()
			}
			writeErr <- werr
		}()

		got, rerr := io.ReadAll(sv)
		werr := <-writeErr
		if werr == nil && rerr == nil {
			if len(got) != len(payload) {
				t.Fatalf("no fault surfaced but stream length changed: wrote %d read %d", len(payload), len(got))
			}
		} else {
			// A surfaced fault must be the reset, and it must be transient.
			for _, e := range []error{werr, rerr} {
				if e != nil && !IsTransient(e) {
					t.Fatalf("fault surfaced as non-transient error: %v", e)
				}
			}
		}
	})
}
