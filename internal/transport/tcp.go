package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"pqs/internal/quorum"
	"pqs/internal/wire"
)

// TCPServer serves a Handler over a TCP listener using gob-encoded
// wire.Envelope frames. Each accepted connection is multiplexed: requests
// are handled concurrently and replies are written back tagged with the
// request id, so a single client connection can have many calls in flight.
type TCPServer struct {
	handler  Handler
	listener net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ListenTCP starts serving h on addr (e.g. "127.0.0.1:0"). Close shuts the
// server down and waits for connection goroutines to finish.
func ListenTCP(addr string, h Handler) (*TCPServer, error) {
	wire.RegisterGob()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{handler: h, listener: l, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address, useful with port 0.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

// Close stops the listener, closes open connections and waits for all
// server goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		var env wire.Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		reqWG.Add(1)
		go func(env wire.Envelope) {
			defer reqWG.Done()
			resp, err := s.handler.Handle(context.Background(), env.Payload)
			reply := wire.ReplyEnvelope{ID: env.ID, Payload: resp}
			if err != nil {
				reply.Err = err.Error()
				reply.Payload = nil
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			// An encode error means the connection is going away; the
			// decode loop will observe it and exit.
			_ = enc.Encode(&reply)
		}(env)
	}
}

// TCPClient implements Transport over TCP. It maintains one multiplexed
// connection per server, established lazily and re-dialed after failures.
type TCPClient struct {
	addrs map[quorum.ServerID]string

	mu     sync.Mutex
	conns  map[quorum.ServerID]*tcpConn
	closed bool
	nextID atomic.Uint64
}

// NewTCPClient returns a client that reaches server id at addrs[id].
func NewTCPClient(addrs map[quorum.ServerID]string) *TCPClient {
	wire.RegisterGob()
	cp := make(map[quorum.ServerID]string, len(addrs))
	for id, a := range addrs {
		cp[id] = a
	}
	return &TCPClient{addrs: cp, conns: make(map[quorum.ServerID]*tcpConn)}
}

var _ Transport = (*TCPClient)(nil)

// Call implements Transport.
func (c *TCPClient) Call(ctx context.Context, to quorum.ServerID, req any) (any, error) {
	conn, err := c.conn(to)
	if err != nil {
		return nil, err
	}
	id := c.nextID.Add(1)
	ch, err := conn.send(id, req)
	if err != nil {
		c.evict(to, conn)
		return nil, err
	}
	select {
	case r, ok := <-ch:
		if !ok {
			c.evict(to, conn)
			return nil, fmt.Errorf("server %d: %w", to, ErrClosed)
		}
		if r.Err != "" {
			return nil, fmt.Errorf("server %d: %s", to, r.Err)
		}
		return r.Payload, nil
	case <-ctx.Done():
		conn.abandon(id)
		return nil, ctx.Err()
	}
}

// Close closes all connections. Subsequent calls fail.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	var first error
	for id, conn := range c.conns {
		if err := conn.close(); err != nil && first == nil {
			first = err
		}
		delete(c.conns, id)
	}
	return first
}

func (c *TCPClient) conn(to quorum.ServerID) (*tcpConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if conn, ok := c.conns[to]; ok {
		return conn, nil
	}
	addr, ok := c.addrs[to]
	if !ok {
		return nil, fmt.Errorf("server %d: %w", to, ErrUnknownServer)
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server %d: %w", to, err)
	}
	conn := newTCPConn(raw)
	c.conns[to] = conn
	return conn, nil
}

func (c *TCPClient) evict(to quorum.ServerID, conn *tcpConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conns[to] == conn {
		delete(c.conns, to)
	}
	conn.close()
}

// tcpConn is one multiplexed client connection.
type tcpConn struct {
	raw net.Conn
	enc *gob.Encoder

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan wire.ReplyEnvelope
	closed  bool
}

func newTCPConn(raw net.Conn) *tcpConn {
	c := &tcpConn{
		raw:     raw,
		enc:     gob.NewEncoder(raw),
		pending: make(map[uint64]chan wire.ReplyEnvelope),
	}
	go c.readLoop()
	return c
}

func (c *tcpConn) send(id uint64, req any) (chan wire.ReplyEnvelope, error) {
	ch := make(chan wire.ReplyEnvelope, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := c.enc.Encode(&wire.Envelope{ID: id, Payload: req})
	c.writeMu.Unlock()
	if err != nil {
		c.abandon(id)
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	return ch, nil
}

func (c *tcpConn) abandon(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pending, id)
}

func (c *tcpConn) readLoop() {
	dec := gob.NewDecoder(c.raw)
	for {
		var reply wire.ReplyEnvelope
		if err := dec.Decode(&reply); err != nil {
			c.failAll()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[reply.ID]
		delete(c.pending, reply.ID)
		c.mu.Unlock()
		if ok {
			ch <- reply
		}
	}
}

// failAll closes the connection and wakes every pending caller with a
// closed channel.
func (c *tcpConn) failAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.raw.Close()
}

func (c *tcpConn) close() error {
	c.failAll()
	return nil
}

// IsTransient reports whether err is a transport-level failure that a
// client protocol may treat as a missing reply from one server (rather
// than a protocol violation): crashes, drops, partitions, closed
// transports, timeouts and network errors.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrCrashed) || errors.Is(err, ErrDropped) ||
		errors.Is(err, ErrPartitioned) || errors.Is(err, ErrClosed) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return true
	}
	var netErr net.Error
	return errors.As(err, &netErr)
}
