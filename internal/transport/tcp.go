package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/vtime"
	"pqs/internal/wire"
)

// Codec selects the serialization the TCP transport uses. Both ends of a
// connection must agree (the framings are not self-describing).
type Codec int

// Codecs.
const (
	// CodecBinary is the hand-rolled length-prefixed binary codec of
	// internal/wire (codec.go): the data-plane fast path. Default.
	CodecBinary Codec = iota
	// CodecGob is the encoding/gob framing the transport originally used,
	// kept for wire-compat tests and as a safety hatch: it can carry payload
	// types the closed binary codec rejects.
	CodecGob
	// CodecBinaryFlate is the binary codec with DEFLATE-compressed payload
	// slots (wire.TagCompressed): the WAN profile. Frames below the
	// compression threshold — or that deflate cannot shrink — go out in
	// the legacy binary layout byte-for-byte, so only byte-limited links
	// pay the compression CPU where it buys bandwidth. A CodecBinary peer
	// receiving a compressed frame fails loudly with wire.ErrUnknownTag
	// (both ends must agree on the codec).
	CodecBinaryFlate
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecGob:
		return "gob"
	case CodecBinaryFlate:
		return "binary-flate"
	default:
		return fmt.Sprintf("codec(%d)", int(c))
	}
}

// ParseCodec maps a codec name (as printed by String) back to the Codec,
// for -codec flags.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	case "binary-flate":
		return CodecBinaryFlate, nil
	default:
		return 0, fmt.Errorf("transport: unknown codec %q (want binary, gob or binary-flate)", s)
	}
}

// maxFrameSize bounds a single binary frame (64 MiB); a length prefix beyond
// it indicates a corrupt stream or a protocol mismatch, and failing fast
// beats attempting the allocation.
const maxFrameSize = 64 << 20

// readBufSize/writeBufSize size the per-connection bufio buffers. Typical
// frames (read/write RPCs with small values) are well under 4 KiB, so these
// hold several coalesced frames per syscall.
const (
	readBufSize  = 32 << 10
	writeBufSize = 32 << 10
)

// errCallTimeout is returned by TCPClient.Call when CallTimeout elapses
// before the reply. It implements net.Error (Timeout() == true), so
// IsTransient classifies it like any socket timeout.
var errCallTimeout = &vnetError{msg: "transport: call timed out", timeout: true}

// ConnCodecStats counts one connection's traffic through the message codec:
// envelope bodies encoded and decoded, and their byte volume. Gob
// connections count messages only (gob's framing is opaque, so byte counts
// stay zero). These counters are kept per connection — each connection's
// goroutines increment their own uncontended cache line — and aggregated
// into TCPStats on snapshot, replacing the process-wide counters the wire
// package used to maintain on the hot path (one shared cache line hammered
// by every connection in the process).
type ConnCodecStats struct {
	MessagesEncoded uint64 `json:"messages_encoded"`
	MessagesDecoded uint64 `json:"messages_decoded"`
	BytesEncoded    uint64 `json:"bytes_encoded"`
	BytesDecoded    uint64 `json:"bytes_decoded"`
	// Compression accounting (CodecBinaryFlate, encode side; other codecs
	// leave these zero): RawBytes is the uncompressed size of encoded
	// payload slots, WireBytes what they occupied on the wire after the
	// threshold/incompressible-fallback decision, and BytesSaved the
	// difference — the bandwidth deflate actually bought on this
	// connection.
	RawBytes   uint64 `json:"raw_bytes"`
	WireBytes  uint64 `json:"wire_bytes"`
	BytesSaved uint64 `json:"bytes_saved"`
}

// add accumulates o into s.
func (s *ConnCodecStats) add(o ConnCodecStats) {
	s.MessagesEncoded += o.MessagesEncoded
	s.MessagesDecoded += o.MessagesDecoded
	s.BytesEncoded += o.BytesEncoded
	s.BytesDecoded += o.BytesDecoded
	s.RawBytes += o.RawBytes
	s.WireBytes += o.WireBytes
	s.BytesSaved += o.BytesSaved
}

// codecCounters is the mutable per-connection form of ConnCodecStats.
type codecCounters struct {
	msgEnc, msgDec, bytesEnc, bytesDec atomic.Uint64
	rawBytes, wireBytes, bytesSaved    atomic.Uint64
}

func (c *codecCounters) countEncode(n int) { c.msgEnc.Add(1); c.bytesEnc.Add(uint64(n)) }
func (c *codecCounters) countDecode(n int) { c.msgDec.Add(1); c.bytesDec.Add(uint64(n)) }

// countFlate records one compressed-capable encode's raw-vs-wire outcome.
func (c *codecCounters) countFlate(r wire.FlateResult) {
	c.rawBytes.Add(uint64(r.RawBytes))
	c.wireBytes.Add(uint64(r.WireBytes))
	if r.RawBytes > r.WireBytes {
		c.bytesSaved.Add(uint64(r.RawBytes - r.WireBytes))
	}
}

func (c *codecCounters) snapshot() ConnCodecStats {
	return ConnCodecStats{
		MessagesEncoded: c.msgEnc.Load(),
		MessagesDecoded: c.msgDec.Load(),
		BytesEncoded:    c.bytesEnc.Load(),
		BytesDecoded:    c.bytesDec.Load(),
		RawBytes:        c.rawBytes.Load(),
		WireBytes:       c.wireBytes.Load(),
		BytesSaved:      c.bytesSaved.Load(),
	}
}

// codecRegistry tracks an endpoint's live connections' codec counters and
// folds finished connections into a closed total, so TCPStats aggregation
// never loses counts when connections churn.
type codecRegistry struct {
	mu     sync.Mutex
	live   map[*codecCounters]struct{}
	closed ConnCodecStats
}

func (r *codecRegistry) open() *codecCounters {
	c := &codecCounters{}
	r.mu.Lock()
	if r.live == nil {
		r.live = make(map[*codecCounters]struct{})
	}
	r.live[c] = struct{}{}
	r.mu.Unlock()
	return c
}

func (r *codecRegistry) close(c *codecCounters) {
	r.mu.Lock()
	if _, ok := r.live[c]; ok {
		delete(r.live, c)
		r.closed.add(c.snapshot())
	}
	r.mu.Unlock()
}

// total returns closed + live aggregate.
func (r *codecRegistry) total() ConnCodecStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.closed
	for c := range r.live {
		t.add(c.snapshot())
	}
	return t
}

// perConn returns a snapshot per live connection.
func (r *codecRegistry) perConn() []ConnCodecStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ConnCodecStats, 0, len(r.live))
	for c := range r.live {
		out = append(out, c.snapshot())
	}
	return out
}

// TCPStats counts one TCP endpoint's wire activity. All counters are
// cumulative; obtain snapshots via TCPServer.Stats or TCPClient.Stats.
type TCPStats struct {
	// Conns is the number of connections accepted (server) or dialed
	// (client) over the endpoint's lifetime.
	Conns uint64
	// FramesRead and FramesWritten count complete frames (requests or
	// replies) moved across the wire.
	FramesRead    uint64
	FramesWritten uint64
	// BytesRead and BytesWritten count frame bytes, including length
	// prefixes, as handed to the buffered reader/writer (gob connections
	// count only frames, not bytes).
	BytesRead    uint64
	BytesWritten uint64
	// Flushes counts syscall-bound writer flushes, including the inline
	// flushes bufio performs for frames larger than the write buffer;
	// WritesCoalesced counts frames that piggybacked on another frame's
	// flush (FramesWritten - Flushes, clamped at zero). For binary
	// connections carrying frames smaller than the write buffer,
	// Flushes + WritesCoalesced == FramesWritten and
	// WritesCoalesced/FramesWritten is the syscall savings of coalescing.
	// Gob connections count only explicit flushes (gob's own buffering is
	// opaque).
	Flushes         uint64
	WritesCoalesced uint64
	// Connection-lifecycle counters, all zero unless the client was built
	// with an active TCPClientOptions.Lifecycle. DialsCoalesced counts
	// callers that joined another caller's in-flight dial instead of
	// dialing themselves (singleflight); BackoffFastFails counts calls
	// failed immediately inside a redial-backoff window.
	DialsCoalesced   uint64
	BackoffFastFails uint64
	// BreakerTrips, BreakerHalfOpens and BreakerCloses count circuit
	// breaker transitions; BreakerFastFails counts calls an open breaker
	// rejected with ErrServerDown.
	BreakerTrips     uint64
	BreakerHalfOpens uint64
	BreakerCloses    uint64
	BreakerFastFails uint64
	// ConnsReaped counts idle pool connections closed by the maintenance
	// loop; ProbesSent/ProbeFailures count its health-check ping frames.
	ConnsReaped   uint64
	ProbesSent    uint64
	ProbeFailures uint64
	// Codec aggregates the per-connection message-codec counters (closed
	// connections included). See ConnCodecStats.
	Codec ConnCodecStats
}

// tcpCounters is the shared mutable form of TCPStats' frame counters.
type tcpCounters struct {
	conns, framesRead, framesWritten, bytesRead, bytesWritten, flushes atomic.Uint64

	// Lifecycle counters (client side only; see TCPStats).
	dialsCoalesced, backoffFastFails       atomic.Uint64
	breakerTrips, breakerHalfOpens         atomic.Uint64
	breakerCloses, breakerFastFails        atomic.Uint64
	connsReaped, probesSent, probeFailures atomic.Uint64
}

func (c *tcpCounters) snapshot() TCPStats {
	s := TCPStats{
		Conns:         c.conns.Load(),
		FramesRead:    c.framesRead.Load(),
		FramesWritten: c.framesWritten.Load(),
		BytesRead:     c.bytesRead.Load(),
		BytesWritten:  c.bytesWritten.Load(),
		Flushes:       c.flushes.Load(),

		DialsCoalesced:   c.dialsCoalesced.Load(),
		BackoffFastFails: c.backoffFastFails.Load(),
		BreakerTrips:     c.breakerTrips.Load(),
		BreakerHalfOpens: c.breakerHalfOpens.Load(),
		BreakerCloses:    c.breakerCloses.Load(),
		BreakerFastFails: c.breakerFastFails.Load(),
		ConnsReaped:      c.connsReaped.Load(),
		ProbesSent:       c.probesSent.Load(),
		ProbeFailures:    c.probeFailures.Load(),
	}
	// Each flush covers at least one frame, so the difference is exactly
	// the frames that rode along on another frame's flush.
	if s.FramesWritten > s.Flushes {
		s.WritesCoalesced = s.FramesWritten - s.Flushes
	}
	return s
}

// frameBufPool recycles binary frame read buffers across requests.
var frameBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// readFrame reads one length-prefixed frame into a pooled buffer. The
// returned release function recycles the buffer; callers must not retain the
// slice after calling it (decoded values copy out of it).
func readFrame(br *bufio.Reader, c *tcpCounters) (body []byte, release func(), err error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	if n > maxFrameSize {
		return nil, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	bp := frameBufPool.Get().(*[]byte)
	if cap(*bp) < int(n) {
		*bp = make([]byte, n)
	}
	buf := (*bp)[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		frameBufPool.Put(bp)
		return nil, nil, err
	}
	c.framesRead.Add(1)
	c.bytesRead.Add(n + uint64(uvarintLen(n)))
	return buf, func() {
		// Don't let one huge gossip frame pin megabytes in the pool (same
		// cap as wire.PutBuffer).
		if cap(buf) > 1<<20 {
			return
		}
		*bp = buf[:0]
		frameBufPool.Put(bp)
	}, nil
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// frameWriter serializes frame writes onto one connection through a buffered
// writer with group-commit flush coalescing: writers append frames under the
// lock and kick a dedicated flusher goroutine, which flushes whatever has
// accumulated by the time it runs. A burst of concurrent replies or requests
// therefore reaches the socket in one syscall, and the flush syscall itself
// is off every writer's critical path.
//
// Under a vtime.SimClock the flusher is a registered worker and the kick
// channel a tracked handoff (kickPending mirrors its occupancy under mu), so
// flushes happen at the same virtual instant as the frames they carry and
// the scheduler never advances time past an unflushed frame.
type frameWriter struct {
	mu          sync.Mutex
	bw          *bufio.Writer
	err         error // sticky write/flush error (guarded by mu)
	stats       *tcpCounters
	sched       vtime.Sched
	kickPending bool // a kick is in the channel (guarded by mu)

	kick    chan struct{} // capacity 1: wakes the flusher
	done    chan struct{} // closed by close(); stops the flusher
	stopped chan struct{} // closed by flushLoop on exit; close() waits on it

	// enc is non-nil on gob connections; writeGob uses it under mu with the
	// same coalescing rule.
	enc *gob.Encoder
}

func newFrameWriter(conn net.Conn, codec Codec, stats *tcpCounters, sched vtime.Sched) *frameWriter {
	w := &frameWriter{
		bw:      bufio.NewWriterSize(conn, writeBufSize),
		stats:   stats,
		sched:   sched,
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	if codec == CodecGob {
		w.enc = gob.NewEncoder(w.bw)
	}
	sched.Go(w.flushLoop)
	return w
}

// close stops the flusher goroutine and waits for it. Callers must close the
// underlying connection first: that makes any Flush the flusher is blocked
// in fail promptly instead of stalling teardown behind a peer that has
// stopped reading (un-flushed frames at teardown are lost, which callers
// already treat as a transient connection failure).
func (w *frameWriter) close() {
	w.mu.Lock()
	if w.err == nil {
		w.err = ErrClosed
	}
	w.mu.Unlock()
	w.sched.NoteSend() // the done close is one tracked wake-up
	close(w.done)
	unpark := w.sched.Park()
	<-w.stopped
	unpark()
	w.sched.NoteRecv()
}

// flushLoop runs the group commit: each kick flushes everything buffered
// since the last flush. The number of frames per flush grows with write
// concurrency (see TCPStats.WritesCoalesced).
func (w *frameWriter) flushLoop() {
	defer func() {
		w.sched.NoteSend() // pairs with close()'s wait on stopped
		close(w.stopped)
	}()
	for {
		unpark := w.sched.Park()
		select {
		case <-w.kick:
			unpark()
			w.sched.NoteRecv()
			// Yield once before flushing: writers that are runnable right
			// now get to append their frames first, growing the batch. On an
			// idle connection this is a no-op, so it costs no latency.
			runtime.Gosched()
			w.mu.Lock()
			w.kickPending = false
			if w.err == nil && w.bw.Buffered() > 0 {
				w.stats.flushes.Add(1)
				if err := w.bw.Flush(); err != nil {
					w.err = err
				}
			}
			w.mu.Unlock()
		case <-w.done:
			unpark()
			w.sched.NoteRecv()
			// Consume a kick that raced the shutdown, so its tracked send
			// does not strand the scheduler's pending count.
			w.mu.Lock()
			if w.kickPending {
				//pqslint:allow lockspan kickPending (guarded by w.mu) means exactly one value sits buffered in w.kick, so this receive cannot block
				<-w.kick
				w.kickPending = false
				w.sched.NoteRecv()
			}
			w.mu.Unlock()
			return
		}
	}
}

// appendDone marks a frame appended and wakes the flusher. Call with mu
// held; it unlocks. The kick send stays under mu so kickPending exactly
// mirrors the channel (the flusher's shutdown drain relies on that).
func (w *frameWriter) appendDone() {
	w.stats.framesWritten.Add(1)
	if !w.kickPending {
		w.kickPending = true
		w.sched.NoteSend()
		w.kick <- struct{}{}
	}
	w.mu.Unlock()
}

// writeFrame writes a length-prefixed binary frame.
func (w *frameWriter) writeFrame(body []byte) error {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(body)))

	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	// Keep the flush counters honest for frames the buffer cannot absorb:
	// appending past the free space makes bufio flush the buffered bytes
	// inline, and a body at least as large as the whole buffer goes to the
	// socket as its own write. Both are syscalls this frame caused, so they
	// must not be reported as coalesced.
	if total := n + len(body); total > w.bw.Available() && w.bw.Buffered() > 0 {
		w.stats.flushes.Add(1)
	}
	if len(body) >= w.bw.Size() {
		w.stats.flushes.Add(1)
	}
	if _, err := w.bw.Write(lenBuf[:n]); err != nil {
		w.err = err
		w.mu.Unlock()
		return err
	}
	if _, err := w.bw.Write(body); err != nil {
		w.err = err
		w.mu.Unlock()
		return err
	}
	w.stats.bytesWritten.Add(uint64(n + len(body)))
	w.appendDone()
	return nil
}

// writeGob gob-encodes v (a *wire.Envelope or *wire.ReplyEnvelope) with the
// same coalescing as writeFrame.
func (w *frameWriter) writeGob(v any) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if err := w.enc.Encode(v); err != nil {
		w.err = err
		w.mu.Unlock()
		return err
	}
	w.appendDone()
	return nil
}

// TCPOptions configures a TCPServer beyond its codec.
type TCPOptions struct {
	// Codec selects the wire serialization (CodecBinary default).
	Codec Codec
	// Clock supplies the scheduling discipline. Nil means the wall clock;
	// a vtime.SimClock enrolls every server goroutine (accept loop,
	// connection read loops, flushers, worker pools) in the virtual-time
	// scheduler, which is what lets the real data plane run inside the
	// deterministic harnesses (see VirtualNet).
	Clock vtime.Clock
}

// TCPServer serves a Handler over a listener using framed wire.Envelope
// messages (binary codec by default; see ListenTCPCodec). Each accepted
// connection is multiplexed: requests are handled concurrently and replies
// are written back tagged with the request id, so a single client connection
// can have many calls in flight. Concurrent replies are coalesced into
// shared flushes (one syscall per burst).
type TCPServer struct {
	handler  Handler
	listener net.Listener
	codec    Codec
	clock    vtime.Clock
	sched    vtime.Sched

	// baseCtx is the root of every per-connection context; Close cancels it,
	// so in-flight handlers observe shutdown instead of running on past it.
	baseCtx   context.Context
	cancelCtx context.CancelFunc

	stats    tcpCounters
	codecReg codecRegistry

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     *vtime.WaitGroup
}

// ListenTCP starts serving h on addr (e.g. "127.0.0.1:0") with the default
// binary codec. Close shuts the server down and waits for connection
// goroutines to finish.
func ListenTCP(addr string, h Handler) (*TCPServer, error) {
	return ListenTCPCodec(addr, h, CodecBinary)
}

// ListenTCPCodec is ListenTCP with an explicit codec. Clients must dial with
// the same codec.
func ListenTCPCodec(addr string, h Handler, codec Codec) (*TCPServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return ServeListener(l, h, TCPOptions{Codec: codec}), nil
}

// ServeListener runs the TCP server stack on an existing listener — a real
// socket or a VirtualNet listener. This is the injection point that lets
// the unmodified data plane (framing, codec, flusher, worker pool) run on
// virtual-time byte streams inside the harnesses.
func ServeListener(l net.Listener, h Handler, o TCPOptions) *TCPServer {
	wire.RegisterGob()
	clk := vtime.Or(o.Clock)
	ctx, cancel := context.WithCancel(context.Background())
	s := &TCPServer{
		handler: h, listener: l, codec: o.Codec,
		clock: clk, sched: vtime.SchedOf(clk),
		baseCtx: ctx, cancelCtx: cancel,
		conns: make(map[net.Conn]struct{}),
		wg:    vtime.NewWaitGroup(clk),
	}
	s.wg.Add(1)
	s.sched.Go(s.acceptLoop)
	return s
}

// Addr returns the listener's address, useful with port 0.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

// Codec returns the codec the server speaks.
func (s *TCPServer) Codec() Codec { return s.codec }

// Stats returns a snapshot of the server's wire counters.
func (s *TCPServer) Stats() TCPStats {
	st := s.stats.snapshot()
	st.Codec = s.codecReg.total()
	return st
}

// ConnStats returns per-connection codec counters for the server's live
// connections (the admin endpoint surfaces these).
func (s *TCPServer) ConnStats() []ConnCodecStats { return s.codecReg.perConn() }

// Close stops the listener, cancels the context of every in-flight request,
// closes open connections and waits for all server goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancelCtx()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.stats.conns.Add(1)
		s.sched.Go(func() { s.serveConn(conn) })
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Every request on this connection runs under a context cancelled when
	// the connection tears down or the server closes, so in-flight handlers
	// cannot outlive either.
	ctx, cancel := context.WithCancel(s.baseCtx)
	w := newFrameWriter(conn, s.codec, &s.stats, s.sched)
	cc := s.codecReg.open()
	defer s.codecReg.close(cc)
	// Teardown order (LIFO): cancel the connection context FIRST — its
	// replies are undeliverable, and a handler blocked on ctx.Done would
	// otherwise deadlock the wait — then wait out in-flight handlers, then
	// close the socket, then stop the flusher (the socket must die before
	// the flusher; see frameWriter.close).
	defer w.close()
	defer conn.Close()
	reqWG := vtime.NewWaitGroup(s.clock)
	defer reqWG.Wait()
	defer cancel()

	handle := func(env wire.Envelope) {
		resp, err := s.handler.Handle(ctx, env.Payload)
		reply := wire.ReplyEnvelope{ID: env.ID, Payload: resp}
		if err != nil {
			reply.Err = err.Error()
			// Classify the failure on the wire so clients can stop retrying
			// what retrying cannot fix (see wire.ErrKind*). Permanent is
			// claimed only on positive identification (the handler marked it
			// via wire.PermanentError or its own Permanent() method) — an
			// unrecognized error stays Unknown, which clients treat as
			// retryable, because misfiling a transient overload/shutdown
			// error as permanent would stop a quorum re-sample that could
			// succeed.
			switch {
			case IsPermanent(err):
				reply.ErrKind = wire.ErrKindPermanent
			case IsTransient(err):
				reply.ErrKind = wire.ErrKindTransient
			default:
				reply.ErrKind = wire.ErrKindUnknown
			}
			reply.Payload = nil
		}
		// A write error means the connection is going away; the read loop
		// will observe it and exit.
		if s.codec == CodecGob {
			cc.countEncode(0)
			_ = w.writeGob(&reply)
			return
		}
		bp := wire.GetBuffer()
		var frame []byte
		var encErr error
		if s.codec == CodecBinaryFlate {
			var res wire.FlateResult
			frame, res, encErr = wire.AppendReplyEnvelopeFlate(*bp, reply)
			if encErr == nil {
				cc.countFlate(res)
			}
		} else {
			frame, encErr = wire.AppendReplyEnvelope(*bp, reply)
		}
		if encErr != nil {
			// The handler returned a payload the closed binary codec cannot
			// carry; surface that as a permanent RPC error instead of
			// dropping the reply (the client would hang).
			frame, _ = wire.AppendReplyEnvelope((*bp)[:0], wire.ReplyEnvelope{
				ID: env.ID, Err: encErr.Error(), ErrKind: wire.ErrKindPermanent,
			})
		}
		cc.countEncode(len(frame))
		_ = w.writeFrame(frame)
		*bp = frame[:0]
		wire.PutBuffer(bp)
	}

	// A small pool of resident workers absorbs the steady request stream
	// (goroutine creation and its stack growth were measurable on the hot
	// path). The channel is unbuffered on purpose: a request is only handed
	// to a worker that is already idle and overflows to a fresh goroutine
	// otherwise, so a slow handler can never head-of-line-block a request
	// that arrived after it.
	const workers = 4
	reqCh := make(chan wire.Envelope)
	defer func() {
		// Each pool worker consumes the close as one WEAK wake-up: weak so
		// that a worker busy in a handler sleeping on the clock cannot
		// freeze virtual time with its unconsumed wake (exiting workers do
		// nothing observable; reqWG.Done is its own tracked release), yet
		// visible enough that the deadlock detector waits out the wake
		// in-flight window instead of panicking.
		for i := 0; i < workers; i++ {
			s.sched.NoteWeakSend()
		}
		close(reqCh)
	}()
	for i := 0; i < workers; i++ {
		reqWG.Add(1)
		s.sched.Go(func() {
			defer reqWG.Done()
			for {
				unpark := s.sched.Park()
				env, ok := <-reqCh
				unpark()
				if !ok {
					s.sched.NoteWeakRecv()
					return
				}
				s.sched.NoteRecv()
				handle(env)
			}
		})
	}
	dispatch := func(env wire.Envelope) {
		s.sched.NoteSend()
		select {
		case reqCh <- env:
		default:
			s.sched.NoteRecv() // no idle worker took it; undo the note
			reqWG.Add(1)
			s.sched.Go(func() {
				defer reqWG.Done()
				handle(env)
			})
		}
	}

	if s.codec == CodecGob {
		dec := gob.NewDecoder(bufio.NewReaderSize(conn, readBufSize))
		for {
			var env wire.Envelope
			if err := dec.Decode(&env); err != nil {
				return
			}
			s.stats.framesRead.Add(1)
			cc.countDecode(0)
			dispatch(env)
		}
	}
	br := bufio.NewReaderSize(conn, readBufSize)
	for {
		body, release, err := readFrame(br, &s.stats)
		if err != nil {
			return
		}
		var env wire.Envelope
		if s.codec == CodecBinaryFlate {
			env, err = wire.DecodeEnvelopeFlate(body)
		} else {
			env, err = wire.DecodeEnvelope(body)
		}
		cc.countDecode(len(body))
		release()
		if err != nil {
			return // corrupt stream; drop the connection
		}
		dispatch(env)
	}
}

// TCPClientOptions configures a TCPClient beyond its codec.
type TCPClientOptions struct {
	// Codec selects the wire serialization (CodecBinary default); it must
	// match the servers'.
	Codec Codec
	// Clock supplies timers and the scheduling discipline (nil = wall).
	Clock vtime.Clock
	// Dial overrides how connections are established. It receives the
	// destination server id and its configured address; nil means
	// net.Dial("tcp", addr). The harnesses pass VirtualNet.Dialer here.
	Dial func(to quorum.ServerID, addr string) (net.Conn, error)
	// CallTimeout, when positive, bounds every Call on the client's clock:
	// a call that has not completed within it fails with a transient
	// timeout error and its connection is torn down (re-dialed on the next
	// call). Under a SimClock the timer is part of the deterministic event
	// order, which gives the harnesses bounded-liveness over faults no
	// prompt error can surface — a corrupted length prefix, a reply whose
	// id was flipped in flight — without wall-clock deadlines.
	CallTimeout time.Duration
	// Lifecycle tunes the per-server connection lifecycle: pool size, idle
	// reaping, health probes, dial backoff and the circuit breaker. The
	// zero value preserves the legacy single-connection behavior exactly.
	Lifecycle LifecycleConfig
}

// TCPClient implements Transport over TCP. It maintains a small pool of
// multiplexed connections per server (one by default), established lazily
// and re-dialed after failures, with optional dial coalescing, jittered
// redial backoff and a per-server circuit breaker (see LifecycleConfig).
// Concurrent requests on one connection are coalesced into shared flushes.
type TCPClient struct {
	addrs       map[quorum.ServerID]string
	codec       Codec
	clock       vtime.Clock
	sched       vtime.Sched
	dial        func(to quorum.ServerID, addr string) (net.Conn, error)
	callTimeout time.Duration
	lifecycle   LifecycleConfig

	stats    tcpCounters
	codecReg codecRegistry

	// maintDone/maintStopped bracket the maintenance loop's lifetime; both
	// are nil when the lifecycle config needs no background maintenance.
	maintDone    chan struct{}
	maintStopped chan struct{}

	mu     sync.Mutex
	states map[quorum.ServerID]*serverState
	closed bool
	nextID atomic.Uint64
}

// NewTCPClient returns a client that reaches server id at addrs[id] with the
// default binary codec.
func NewTCPClient(addrs map[quorum.ServerID]string) *TCPClient {
	return NewTCPClientCodec(addrs, CodecBinary)
}

// NewTCPClientCodec is NewTCPClient with an explicit codec; it must match
// the servers'.
func NewTCPClientCodec(addrs map[quorum.ServerID]string, codec Codec) *TCPClient {
	return NewTCPClientOpts(addrs, TCPClientOptions{Codec: codec})
}

// NewTCPClientOpts is NewTCPClient with full options (codec, clock, dialer
// injection, call timeout).
func NewTCPClientOpts(addrs map[quorum.ServerID]string, o TCPClientOptions) *TCPClient {
	wire.RegisterGob()
	cp := make(map[quorum.ServerID]string, len(addrs))
	for id, a := range addrs {
		cp[id] = a
	}
	clk := vtime.Or(o.Clock)
	dial := o.Dial
	if dial == nil {
		dial = func(_ quorum.ServerID, addr string) (net.Conn, error) {
			return net.Dial("tcp", addr)
		}
	}
	c := &TCPClient{
		addrs: cp, codec: o.Codec,
		clock: clk, sched: vtime.SchedOf(clk),
		dial: dial, callTimeout: o.CallTimeout,
		lifecycle: o.Lifecycle,
		states:    make(map[quorum.ServerID]*serverState),
	}
	if c.lifecycle.maintenance() {
		c.maintDone = make(chan struct{})
		c.maintStopped = make(chan struct{})
		c.sched.Go(c.maintainLoop)
	}
	return c
}

// newWaitGroup returns a WaitGroup on the client's clock (virtual-time
// aware under a SimClock).
func (c *TCPClient) newWaitGroup() *vtime.WaitGroup { return vtime.NewWaitGroup(c.clock) }

var _ Transport = (*TCPClient)(nil)

// Codec returns the codec the client speaks.
func (c *TCPClient) Codec() Codec { return c.codec }

// Stats returns a snapshot of the client's wire counters, aggregated over
// all its connections.
func (c *TCPClient) Stats() TCPStats {
	st := c.stats.snapshot()
	st.Codec = c.codecReg.total()
	return st
}

// ConnStats returns per-connection codec counters for the client's live
// connections.
func (c *TCPClient) ConnStats() []ConnCodecStats { return c.codecReg.perConn() }

// Call implements Transport. Transport-level outcomes (dial failures, send
// errors, torn connections, timeouts) feed the server's circuit breaker;
// server-answered RPC errors count as reachability successes and surface
// as *RPCError carrying the wire's transient/permanent classification.
func (c *TCPClient) Call(ctx context.Context, to quorum.ServerID, req any) (any, error) {
	conn, st, err := c.acquire(to)
	if err != nil {
		return nil, err
	}
	defer st.release(conn)
	id := c.nextID.Add(1)
	ch, err := conn.send(id, req)
	if err != nil {
		st.evict(conn)
		st.recordFailure()
		return nil, err
	}
	var timeoutC <-chan time.Time
	if c.callTimeout > 0 {
		t := c.clock.NewTimer(c.callTimeout)
		defer t.Stop()
		timeoutC = t.C
	}
	reply := func(r wire.ReplyEnvelope, ok bool) (any, error) {
		if !ok {
			st.evict(conn)
			st.recordFailure()
			return nil, fmt.Errorf("server %d: %w", to, ErrClosed)
		}
		st.recordSuccess()
		if r.Err != "" {
			return nil, &RPCError{Server: to, Kind: r.ErrKind, Msg: r.Err}
		}
		return r.Payload, nil
	}
	unpark := c.sched.Park()
	select {
	case r, ok := <-ch:
		unpark()
		c.sched.NoteRecv()
		return reply(r, ok)
	case <-timeoutC:
		unpark()
		c.sched.NoteRecv()
		if !conn.abandon(id) {
			// A reply (or the conn's failure close) raced the timer into the
			// buffered channel: consume it — its tracked send must not
			// strand the scheduler's pending count — and honor it, so the
			// call's outcome does not depend on which case of a same-instant
			// race the select happened to pick.
			r, ok := <-ch
			c.sched.NoteRecv()
			return reply(r, ok)
		}
		// The conn is suspect (slow, stalled, or its framing desynced by a
		// corrupted prefix): the call is abandoned and the conn torn down so
		// the next call re-dials a clean stream.
		st.evict(conn)
		st.recordFailure()
		return nil, fmt.Errorf("server %d: %w", to, errCallTimeout)
	case <-ctx.Done():
		unpark()
		if !conn.abandon(id) {
			// The reply (or the conn's failure close) already claimed the
			// call: its tracked wake-up is in the buffered channel or about
			// to land there. Consume it so the send's NoteSend cannot
			// strand the scheduler's pending count — under a SimClock an
			// unconsumed tracked message freezes virtual time forever.
			<-ch
			c.sched.NoteRecv()
		}
		// Cancellation proves nothing about the server; release a held
		// half-open trial slot without moving the breaker.
		st.recordNeutral()
		return nil, ctx.Err()
	}
}

// ServerDown implements HealthReporter: true when the server's circuit
// breaker would reject a call right now with ErrServerDown.
func (c *TCPClient) ServerDown(id quorum.ServerID) bool {
	if c.lifecycle.BreakerThreshold <= 0 {
		return false
	}
	c.mu.Lock()
	st := c.states[id]
	c.mu.Unlock()
	if st == nil {
		return false
	}
	return st.down(c.clock.Now(), &c.lifecycle)
}

// Close closes all connections and stops the maintenance loop. Subsequent
// calls fail.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	states := make([]*serverState, 0, len(c.states))
	for _, st := range c.states {
		states = append(states, st)
	}
	c.mu.Unlock()
	if c.maintDone != nil {
		c.sched.NoteSend() // the done close is one tracked wake-up
		close(c.maintDone)
		unpark := c.sched.Park()
		<-c.maintStopped
		unpark()
		c.sched.NoteRecv()
	}
	var first error
	for _, st := range states {
		if err := st.closeAll(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// acquire resolves the server's lifecycle state and leases a pooled
// connection from it (dialing as needed).
func (c *TCPClient) acquire(to quorum.ServerID) (*tcpConn, *serverState, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil, ErrClosed
	}
	st, ok := c.states[to]
	if !ok {
		if _, known := c.addrs[to]; !known {
			c.mu.Unlock()
			return nil, nil, fmt.Errorf("server %d: %w", to, ErrUnknownServer)
		}
		st = &serverState{c: c, id: to}
		c.states[to] = st
	}
	c.mu.Unlock()
	conn, err := st.acquire()
	if err != nil {
		return nil, nil, err
	}
	return conn, st, nil
}

// tcpConn is one multiplexed client connection.
type tcpConn struct {
	raw   net.Conn
	codec Codec
	w     *frameWriter
	stats *tcpCounters
	sched vtime.Sched
	cc    *codecCounters
	reg   *codecRegistry

	// leases counts callers currently holding the connection (calls in
	// flight plus health probes); lastUsed is the clock's UnixNano at the
	// last release. The maintenance loop reaps only unleased connections
	// idle past the configured timeout.
	leases   atomic.Int64
	lastUsed atomic.Int64

	mu        sync.Mutex
	pending   map[uint64]chan wire.ReplyEnvelope
	abandoned map[uint64]struct{}
	closed    bool
}

func (c *tcpConn) lease()   { c.leases.Add(1) }
func (c *tcpConn) unlease() { c.leases.Add(-1) }

// load is the number of live leases (the pool grows only when every
// connection has at least one).
func (c *tcpConn) load() int64 { return c.leases.Load() }

// touch stamps the idle clock; idleSince reads it.
func (c *tcpConn) touch(nanos int64) { c.lastUsed.Store(nanos) }
func (c *tcpConn) idleSince() int64  { return c.lastUsed.Load() }

func (c *tcpConn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func newTCPConn(raw net.Conn, codec Codec, stats *tcpCounters, sched vtime.Sched, cc *codecCounters, reg *codecRegistry) *tcpConn {
	c := &tcpConn{
		raw:       raw,
		codec:     codec,
		w:         newFrameWriter(raw, codec, stats, sched),
		stats:     stats,
		sched:     sched,
		cc:        cc,
		reg:       reg,
		pending:   make(map[uint64]chan wire.ReplyEnvelope),
		abandoned: make(map[uint64]struct{}),
	}
	sched.Go(c.readLoop)
	return c
}

func (c *tcpConn) send(id uint64, req any) (chan wire.ReplyEnvelope, error) {
	ch := make(chan wire.ReplyEnvelope, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()

	var err error
	if c.codec == CodecGob {
		c.cc.countEncode(0)
		err = c.w.writeGob(&wire.Envelope{ID: id, Payload: req})
	} else {
		bp := wire.GetBuffer()
		var frame []byte
		if c.codec == CodecBinaryFlate {
			var res wire.FlateResult
			frame, res, err = wire.AppendEnvelopeFlate(*bp, wire.Envelope{ID: id, Payload: req})
			if err == nil {
				c.cc.countFlate(res)
			}
		} else {
			frame, err = wire.AppendEnvelope(*bp, wire.Envelope{ID: id, Payload: req})
		}
		if err == nil {
			c.cc.countEncode(len(frame))
			err = c.w.writeFrame(frame)
			*bp = frame[:0]
		}
		wire.PutBuffer(bp)
	}
	if err != nil {
		c.forget(id)
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	return ch, nil
}

// forget drops a pending call without expecting its reply (send failure:
// the request never went out).
func (c *tcpConn) forget(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pending, id)
}

// abandon drops a pending call whose reply may still arrive (timeout or
// context cancellation); a late reply matching it is discarded silently
// instead of being treated as a protocol violation. It reports whether the
// call was still pending: false means deliver or failAll already claimed
// it, so a (tracked) wake-up is in — or imminently landing in — the
// call's buffered channel and the caller must consume it.
func (c *tcpConn) abandon(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pending[id]; ok {
		delete(c.pending, id)
		c.abandoned[id] = struct{}{}
		return true
	}
	return false
}

func (c *tcpConn) readLoop() {
	if c.codec == CodecGob {
		dec := gob.NewDecoder(bufio.NewReaderSize(c.raw, readBufSize))
		for {
			var reply wire.ReplyEnvelope
			if err := dec.Decode(&reply); err != nil {
				c.failAll()
				return
			}
			c.stats.framesRead.Add(1)
			c.cc.countDecode(0)
			if !c.deliver(reply) {
				return
			}
		}
	}
	br := bufio.NewReaderSize(c.raw, readBufSize)
	for {
		body, release, err := readFrame(br, c.stats)
		if err != nil {
			c.failAll()
			return
		}
		var reply wire.ReplyEnvelope
		if c.codec == CodecBinaryFlate {
			reply, err = wire.DecodeReplyEnvelopeFlate(body)
		} else {
			reply, err = wire.DecodeReplyEnvelope(body)
		}
		c.cc.countDecode(len(body))
		release()
		if err != nil {
			c.failAll()
			return
		}
		if !c.deliver(reply) {
			return
		}
	}
}

// deliver routes a reply to its waiting call. A reply matching no pending
// or abandoned call means the stream is desynced or an id was corrupted in
// flight: the connection is failed (false return stops the read loop).
func (c *tcpConn) deliver(reply wire.ReplyEnvelope) bool {
	c.mu.Lock()
	ch, ok := c.pending[reply.ID]
	if ok {
		delete(c.pending, reply.ID)
		c.mu.Unlock()
		c.sched.NoteSend()
		ch <- reply
		return true
	}
	if _, was := c.abandoned[reply.ID]; was {
		delete(c.abandoned, reply.ID)
		c.mu.Unlock()
		return true
	}
	c.mu.Unlock()
	c.failAll()
	return false
}

// failAll closes the connection and wakes every pending caller with a
// closed channel.
func (c *tcpConn) failAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for id, ch := range c.pending {
		c.sched.NoteSend() // the close below is one tracked wake-up
		close(ch)
		delete(c.pending, id)
	}
	c.abandoned = make(map[uint64]struct{})
	c.raw.Close() // before w.close: unblocks a flusher stuck in Flush
	c.w.close()
	c.reg.close(c.cc)
}

func (c *tcpConn) close() error {
	c.failAll()
	return nil
}

// IsTransient reports whether err is a transport-level failure that a
// client protocol may treat as a missing reply from one server (rather
// than a protocol violation): crashes, drops, partitions, closed
// transports, timeouts and network errors.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrCrashed) || errors.Is(err, ErrDropped) ||
		errors.Is(err, ErrPartitioned) || errors.Is(err, ErrClosed) ||
		errors.Is(err, ErrServerDown) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return true
	}
	var netErr net.Error
	return errors.As(err, &netErr)
}
