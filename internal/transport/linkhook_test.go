package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"pqs/internal/quorum"
)

// recordingHook scripts one CallFault per call and records what it saw.
type recordingHook struct {
	fault CallFault
	from  atomic.Int64
	calls atomic.Int64
}

func (h *recordingHook) FilterCall(from, to quorum.ServerID, req any) CallFault {
	h.calls.Add(1)
	h.from.Store(int64(from))
	return h.fault
}

// plainEcho replies with the request it received.
func plainEcho() Handler {
	return HandlerFunc(func(_ context.Context, req any) (any, error) { return req, nil })
}

func TestLinkHookDrop(t *testing.T) {
	n := NewMemNetwork(1)
	n.Register(1, plainEcho())
	h := &recordingHook{fault: CallFault{Drop: true}}
	n.SetLinkHook(h)
	if _, err := n.Call(context.Background(), 1, "x"); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	n.SetLinkHook(nil)
	if _, err := n.Call(context.Background(), 1, "x"); err != nil {
		t.Fatalf("after removing hook: %v", err)
	}
	if h.calls.Load() != 1 {
		t.Fatalf("hook consulted %d times, want 1", h.calls.Load())
	}
}

func TestLinkHookDuplicateAndReplace(t *testing.T) {
	n := NewMemNetwork(1)
	var handled atomic.Int64
	var last atomic.Value
	n.Register(1, HandlerFunc(func(_ context.Context, req any) (any, error) {
		handled.Add(1)
		last.Store(req)
		return req, nil
	}))
	n.SetLinkHook(&recordingHook{fault: CallFault{Duplicate: true, ReplaceReq: "corrupted"}})
	resp, err := n.Call(context.Background(), 1, "original")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "corrupted" {
		t.Fatalf("resp = %v, want the replaced request echoed", resp)
	}
	if handled.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2 (duplicate delivery)", handled.Load())
	}
	if last.Load() != "corrupted" {
		t.Fatalf("handler saw %v, want the replaced request", last.Load())
	}
}

func TestLinkHookMutateReply(t *testing.T) {
	n := NewMemNetwork(1)
	n.Register(1, plainEcho())
	n.SetLinkHook(&recordingHook{fault: CallFault{
		MutateReply: func(resp any, err error) (any, error) { return "mutated", err },
	}})
	resp, err := n.Call(context.Background(), 1, "x")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "mutated" {
		t.Fatalf("resp = %v, want mutated", resp)
	}
}

func TestLinkHookSeesSource(t *testing.T) {
	n := NewMemNetwork(1)
	n.Register(1, plainEcho())
	h := &recordingHook{}
	n.SetLinkHook(h)
	if _, err := n.Call(context.Background(), 1, "x"); err != nil {
		t.Fatal(err)
	}
	if got := quorum.ServerID(h.from.Load()); got != ClientSource {
		t.Fatalf("untagged call attributed to %d, want ClientSource", got)
	}
	if _, err := n.Call(WithSource(context.Background(), 7), 1, "x"); err != nil {
		t.Fatal(err)
	}
	if got := quorum.ServerID(h.from.Load()); got != 7 {
		t.Fatalf("tagged call attributed to %d, want 7", got)
	}
}

func TestDeregisterThenRejoin(t *testing.T) {
	n := NewMemNetwork(1)
	n.Register(1, plainEcho())
	if _, err := n.Call(context.Background(), 1, "x"); err != nil {
		t.Fatal(err)
	}
	n.Deregister(1)
	if _, err := n.Call(context.Background(), 1, "x"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err after Deregister = %v, want ErrUnknownServer", err)
	}
	n.Register(1, plainEcho())
	if _, err := n.Call(context.Background(), 1, "x"); err != nil {
		t.Fatalf("err after rejoin = %v", err)
	}
}

// TestDeregisterForgetsFaultState locks in Deregister's "as if never
// registered" contract: a crashed (or partitioned) server that leaves and
// rejoins must come back as a fresh, reachable member.
func TestDeregisterForgetsFaultState(t *testing.T) {
	n := NewMemNetwork(1)
	n.Register(1, plainEcho())
	n.Crash(1)
	n.SetPartition(map[quorum.ServerID]int{1: 9})
	n.Deregister(1)
	n.Register(1, plainEcho())
	if _, err := n.Call(context.Background(), 1, "x"); err != nil {
		t.Fatalf("rejoined server unreachable: %v (stale crash/partition state survived Deregister)", err)
	}
	if n.CrashedCount() != 0 {
		t.Fatalf("crashed count = %d after Deregister, want 0", n.CrashedCount())
	}
}

// TestDeterministicDrop locks in the counter-hashed drop path: two networks
// with the same seed and the same per-destination call sequence observe the
// same drop pattern, and a different seed observes a different one.
func TestDeterministicDrop(t *testing.T) {
	pattern := func(seed int64) []bool {
		n := NewMemNetwork(seed)
		n.Register(1, plainEcho())
		n.SetDropProb(0.3)
		out := make([]bool, 200)
		for i := range out {
			_, err := n.Call(context.Background(), 1, "x")
			out[i] = errors.Is(err, ErrDropped)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed drop patterns diverge at call %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical drop patterns")
	}
	drops := 0
	for _, d := range a {
		if d {
			drops++
		}
	}
	if drops < 30 || drops > 90 {
		t.Fatalf("drop rate %d/200 implausible for p=0.3", drops)
	}
}
