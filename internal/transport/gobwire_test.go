package transport

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/vtime"
	"pqs/internal/wire"
)

// startGobVirtualCluster is startVirtualCluster with both ends speaking the
// legacy encoding/gob codec.
func startGobVirtualCluster(t testing.TB, vn *VirtualNet, clk vtime.Clock, n int, timeout time.Duration) (*TCPClient, []*TCPServer) {
	t.Helper()
	servers := make([]*TCPServer, 0, n)
	addrs := make(map[quorum.ServerID]string, n)
	for i := 0; i < n; i++ {
		id := quorum.ServerID(i)
		l, err := vn.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, ServeListener(l, upperHandler{}, TCPOptions{Clock: clk, Codec: CodecGob}))
		addrs[id] = l.Addr().String()
	}
	client := NewTCPClientOpts(addrs, TCPClientOptions{
		Clock:       clk,
		Dial:        vn.Dialer(ClientSource),
		CallTimeout: timeout,
		Codec:       CodecGob,
	})
	return client, servers
}

// TestVirtualTCPGobRoundTrip is the CodecGob twin of the virtual round-trip
// test: the legacy gob framing must work over virtual-time byte streams
// with latency, including the lifecycle pool.
func TestVirtualTCPGobRoundTrip(t *testing.T) {
	sc := vtime.NewSimClock()
	sc.Run(func() {
		vn := NewVirtualNet(sc, 43)
		vn.SetLatency(time.Millisecond, 5*time.Millisecond)
		client, servers := startGobVirtualCluster(t, vn, sc, 3, time.Second)
		defer func() {
			client.Close()
			for _, s := range servers {
				s.Close()
			}
		}()
		ctx := context.Background()
		for i := 0; i < 9; i++ {
			id := quorum.ServerID(i % 3)
			key := fmt.Sprintf("gk%d", i)
			resp, err := client.Call(ctx, id, wire.ReadRequest{Key: key})
			if err != nil {
				t.Fatalf("gob call %d: %v", i, err)
			}
			if rr := resp.(wire.ReadReply); string(rr.Value) != strings.ToUpper(key) {
				t.Fatalf("gob call %d: got %q", i, rr.Value)
			}
		}
	})
}

// TestVirtualTCPGobDeterminism replays a seeded gob workload twice and
// requires identical completion stamps and chunk traffic — gob's framing
// (its own buffered writer, self-describing streams) must not leak
// scheduling nondeterminism into the virtual wire.
func TestVirtualTCPGobDeterminism(t *testing.T) {
	type trace struct {
		stamps []time.Duration
		chunks uint64
	}
	run := func() trace {
		sc := vtime.NewSimClock()
		var tr trace
		sc.Run(func() {
			vn := NewVirtualNet(sc, 47)
			vn.SetLatency(time.Millisecond, 7*time.Millisecond)
			vn.SetJitter(300 * time.Microsecond)
			client, servers := startGobVirtualCluster(t, vn, sc, 4, time.Second)
			ctx := context.Background()
			for i := 0; i < 20; i++ {
				id := quorum.ServerID(i % 4)
				if _, err := client.Call(ctx, id, wire.ReadRequest{Key: fmt.Sprintf("g%d", i)}); err != nil {
					t.Errorf("gob call %d: %v", i, err)
				}
				tr.stamps = append(tr.stamps, sc.Elapsed())
			}
			client.Close()
			for _, s := range servers {
				s.Close()
			}
			tr.chunks = vn.Stats().Chunks
		})
		return tr
	}
	a, b := run(), run()
	if a.chunks != b.chunks {
		t.Fatalf("gob chunk traffic diverged: %d vs %d", a.chunks, b.chunks)
	}
	for i := range a.stamps {
		if a.stamps[i] != b.stamps[i] {
			t.Fatalf("gob call %d completed at %v vs %v", i, a.stamps[i], b.stamps[i])
		}
	}
}
