package transport

import (
	"context"

	"pqs/internal/quorum"
)

// Offset returns a view of t whose server ids are shifted by base: a call
// to local id s is delivered to global id base+s. This is how a multi-cell
// client hands each per-cell gather engine a transport over ITS n replicas
// while the engine keeps working in cell-local ids [0, n): the engine's
// dispatch, hedging and drain never see a global identity, so the
// identity-blindness invariant (and the epsblind analyzer that mechanizes
// it) applies per cell unchanged.
//
// When t reports per-server health (HealthReporter — a breaker-enabled
// TCPClient), the returned transport forwards that too, translated into
// the same local id space, so per-cell engines keep their t=0 fast-fail
// path on degraded members.
func Offset(t Transport, base quorum.ServerID) Transport {
	o := offset{inner: t, base: base}
	if hr, ok := t.(HealthReporter); ok {
		return &offsetHealth{offset: o, hr: hr}
	}
	return &o
}

// offset shifts server ids on the way down.
type offset struct {
	inner Transport
	base  quorum.ServerID
}

// Call implements Transport.
func (o *offset) Call(ctx context.Context, to quorum.ServerID, req any) (any, error) {
	return o.inner.Call(ctx, o.base+to, req)
}

// offsetHealth additionally forwards per-server health in local ids.
type offsetHealth struct {
	offset
	hr HealthReporter
}

// ServerDown implements HealthReporter.
func (o *offsetHealth) ServerDown(id quorum.ServerID) bool {
	return o.hr.ServerDown(o.base + id)
}

var (
	_ Transport      = (*offset)(nil)
	_ HealthReporter = (*offsetHealth)(nil)
)
