// Connection lifecycle management for TCPClient: bounded per-server
// connection pools with idle reaping and health-check probes, dial
// coalescing (singleflight) with clock-aware jittered exponential backoff,
// and a per-server circuit breaker (closed/open/half-open).
//
// Everything here runs on the client's vtime.Clock: timers, backoff
// windows, breaker cooldowns and the maintenance loop all advance on
// virtual time under a SimClock, and the backoff jitter is counter-hashed
// (splitmix64 over seed, server id and attempt number), so the whole layer
// is deterministic inside the simulation harnesses.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/wire"
)

// ErrServerDown is returned immediately — without dialing or waiting — when
// a server's circuit breaker is open: recent consecutive failures proved
// the server unreachable, and the breaker's cooldown has not yet elapsed.
// It is transient (the breaker half-opens on the clock), so quorum clients
// treat it exactly like a missing reply and promote spares at t=0.
var ErrServerDown = errors.New("transport: server down (circuit breaker open)")

// HealthReporter is implemented by transports that track per-server
// reachability (TCPClient with a breaker-enabled LifecycleConfig). Quorum
// clients consult it at dispatch time to fail known-down access-set members
// instantly instead of burning hedge budget on them.
type HealthReporter interface {
	// ServerDown reports whether a call to id right now would fail fast
	// with ErrServerDown.
	ServerDown(id quorum.ServerID) bool
}

// RPCError is a reply the server answered with: the RPC reached the server
// and came back carrying an application-level error. Kind is the server's
// own transient/permanent classification (wire.ErrKind*), carried on the
// wire, so clients can stop retrying what retrying cannot fix. An RPCError
// is evidence the server is alive: the circuit breaker does not count it.
type RPCError struct {
	Server quorum.ServerID
	Kind   byte
	Msg    string
}

// Error implements error with the same text the stringly path produced.
func (e *RPCError) Error() string { return fmt.Sprintf("server %d: %s", e.Server, e.Msg) }

// Permanent reports the server-side classification; IsPermanent matches it.
func (e *RPCError) Permanent() bool { return e.Kind == wire.ErrKindPermanent }

// IsPermanent reports whether err is classified permanent: retrying the
// call — or re-sampling a quorum around it — cannot succeed (codec
// mismatch, unsupported payload, malformed request). Errors carry the
// classification via a `Permanent() bool` method (see RPCError).
func IsPermanent(err error) bool {
	var p interface{ Permanent() bool }
	return errors.As(err, &p) && p.Permanent()
}

// LifecycleConfig tunes TCPClient's per-server connection lifecycle. The
// zero value preserves the legacy behavior exactly: one connection per
// server, re-dialed eagerly on every failure, no backoff, no breaker, no
// background maintenance.
type LifecycleConfig struct {
	// PoolSize caps the connections kept per server (minimum 1). The pool
	// grows one connection at a time, only when every live connection has a
	// call in flight.
	PoolSize int
	// IdleTimeout, when positive, lets the maintenance loop close pool
	// connections that carried no call for at least this long.
	IdleTimeout time.Duration
	// ProbeEvery, when positive, makes the maintenance loop send a
	// wire.PingRequest health-check frame on every idle pool connection at
	// this period; a probe that fails or times out evicts the connection
	// and counts as a breaker failure.
	ProbeEvery time.Duration
	// ProbeTimeout bounds each health-check probe (default 1s).
	ProbeTimeout time.Duration
	// DialBackoffBase, when positive, enables exponential backoff between
	// redial attempts: after the n-th consecutive dial failure no new dial
	// is attempted for base·2ⁿ⁻¹ (capped at DialBackoffMax, jittered into
	// [d/2, d) by a counter-hashed draw). Calls landing inside the window
	// fail fast with the last dial error.
	DialBackoffBase time.Duration
	// DialBackoffMax caps the backoff window (default 16×base).
	DialBackoffMax time.Duration
	// BreakerThreshold, when positive, enables the per-server circuit
	// breaker: this many consecutive transport-level failures (failed
	// dials, send errors, torn connections, call timeouts — never
	// server-answered RPC errors) trip it open.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects calls with
	// ErrServerDown before half-opening to admit one trial call (default
	// 1s). The trial's success closes the breaker; its failure re-opens it
	// for another cooldown.
	BreakerCooldown time.Duration
	// Seed feeds the counter-hashed backoff jitter.
	Seed int64
}

// Enabled reports whether any lifecycle feature beyond the legacy
// single-connection behavior is configured.
func (c LifecycleConfig) Enabled() bool { return c.active() }

// active reports whether any lifecycle feature beyond the legacy behavior
// is enabled.
func (c LifecycleConfig) active() bool {
	return c.PoolSize > 1 || c.IdleTimeout > 0 || c.ProbeEvery > 0 ||
		c.DialBackoffBase > 0 || c.BreakerThreshold > 0
}

// maintenance reports whether a background maintenance loop is needed.
func (c LifecycleConfig) maintenance() bool { return c.IdleTimeout > 0 || c.ProbeEvery > 0 }

func (c LifecycleConfig) poolSize() int {
	if c.PoolSize < 1 {
		return 1
	}
	return c.PoolSize
}

func (c LifecycleConfig) probeTimeout() time.Duration {
	if c.ProbeTimeout > 0 {
		return c.ProbeTimeout
	}
	return time.Second
}

func (c LifecycleConfig) backoffMax() time.Duration {
	if c.DialBackoffMax > 0 {
		return c.DialBackoffMax
	}
	return 16 * c.DialBackoffBase
}

func (c LifecycleConfig) cooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return time.Second
}

// breakerState is the circuit breaker's three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// dialResult is what a coalesced dial delivers to its waiters.
type dialResult struct {
	conn *tcpConn
	err  error
}

// serverState is one server's slice of the client: its connection pool,
// singleflight dial, backoff window and circuit breaker. All fields below
// mu are guarded by it; the pool's connections carry their own lease and
// idle bookkeeping atomically.
type serverState struct {
	c  *TCPClient
	id quorum.ServerID

	mu     sync.Mutex
	closed bool
	conns  []*tcpConn
	rr     uint64 // round-robin cursor over conns

	// Singleflight: at most one dial per server is in flight; racing
	// callers park on a waiter channel and share its outcome.
	dialing bool
	waiters []chan dialResult

	// Backoff: consecutive dial failures widen a window during which
	// callers fail fast with the last dial error instead of re-dialing.
	dialFails    int
	backoffUntil time.Time
	lastDialErr  error

	// Breaker.
	brState    breakerState
	brFails    int // consecutive transport-level failures
	brOpenedAt time.Time
	brProbing  bool // a half-open trial call is in flight
}

// acquire returns a pooled connection to the server, dialing (or joining an
// in-flight dial) when the pool is empty or warrants growth. The returned
// connection is leased; the caller must release it via release().
func (s *serverState) acquire() (*tcpConn, error) {
	lc := &s.c.lifecycle
	now := s.c.clock.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if !s.breakerAdmitLocked(now, lc) {
		s.mu.Unlock()
		s.c.stats.breakerFastFails.Add(1)
		return nil, fmt.Errorf("server %d: %w", s.id, ErrServerDown)
	}
	conn := s.pickLocked(lc)
	if conn != nil {
		conn.lease()
		s.mu.Unlock()
		return conn, nil
	}
	if s.dialing {
		// Singleflight: join the in-flight dial. The dialer counts us
		// under s.mu, so its NoteSend/send pair cannot miss us, and it
		// leases the new connection once on our behalf before publishing
		// (so the maintenance loop cannot reap it in the hand-off gap) —
		// the connection arrives already leased; leasing again here would
		// leak a lease per waiter and pin the connection busy forever.
		ch := make(chan dialResult, 1)
		s.waiters = append(s.waiters, ch)
		s.mu.Unlock()
		s.c.stats.dialsCoalesced.Add(1)
		unpark := s.c.sched.Park()
		r := <-ch
		unpark()
		s.c.sched.NoteRecv()
		if r.err != nil {
			return nil, r.err
		}
		return r.conn, nil
	}
	if lc.DialBackoffBase > 0 && now.Before(s.backoffUntil) {
		// Inside the redial-backoff window. Growth can wait: fall back to
		// an existing connection if the pool has one, else fail fast with
		// the failure that opened the window.
		if len(s.conns) > 0 {
			conn = s.rrLocked()
			conn.lease()
			s.mu.Unlock()
			return conn, nil
		}
		err := s.lastDialErr
		s.mu.Unlock()
		s.c.stats.backoffFastFails.Add(1)
		s.recordNeutral() // release a half-open trial slot, if we held it
		return nil, fmt.Errorf("server %d: redial backoff: %w", s.id, err)
	}
	s.dialing = true
	s.mu.Unlock()
	return s.dial(now)
}

// pickLocked chooses a live pool connection, pruning dead ones. A nil
// return asks the caller to dial: the pool is empty, or every connection
// is busy and the pool may grow.
func (s *serverState) pickLocked(lc *LifecycleConfig) *tcpConn {
	live := s.conns[:0]
	for _, cn := range s.conns {
		if !cn.isClosed() {
			live = append(live, cn)
		}
	}
	s.conns = live
	if len(s.conns) == 0 {
		return nil
	}
	if len(s.conns) < lc.poolSize() && !s.dialing && s.allBusyLocked() {
		return nil
	}
	return s.rrLocked()
}

func (s *serverState) rrLocked() *tcpConn {
	s.rr++
	return s.conns[int(s.rr%uint64(len(s.conns)))]
}

func (s *serverState) allBusyLocked() bool {
	for _, cn := range s.conns {
		if cn.load() == 0 {
			return false
		}
	}
	return true
}

// dial performs the singleflight dial this state elected the caller to run,
// publishes the outcome to every coalesced waiter, and maintains the
// backoff window and breaker.
func (s *serverState) dial(now time.Time) (*tcpConn, error) {
	c := s.c
	raw, err := c.dial(s.id, c.addrs[s.id])
	var conn *tcpConn
	if err == nil {
		c.stats.conns.Add(1)
		conn = newTCPConn(raw, c.codec, &c.stats, c.sched, c.codecReg.open(), &c.codecReg)
		conn.touch(now.UnixNano())
	}

	s.mu.Lock()
	if err == nil && s.closed {
		// The client closed while we dialed; the pool no longer exists.
		conn.close()
		conn, err = nil, ErrClosed
	}
	s.dialing = false
	waiters := s.waiters
	s.waiters = nil
	if err == nil {
		s.conns = append(s.conns, conn)
		s.dialFails = 0
		s.backoffUntil = time.Time{}
		s.lastDialErr = nil
		conn.lease() // the dialer's own lease; released by its Call
		for range waiters {
			// One lease per waiter, taken on its behalf before the hand-off
			// (the waiter returns the conn without leasing again).
			conn.lease()
		}
	} else {
		s.dialFails++
		s.lastDialErr = err
		if d := s.backoffDelayLocked(); d > 0 {
			s.backoffUntil = now.Add(d)
		}
	}
	s.mu.Unlock()

	werr := err
	if werr != nil {
		werr = fmt.Errorf("server %d: %w", s.id, werr)
	}
	for _, ch := range waiters {
		c.sched.NoteSend()
		ch <- dialResult{conn: conn, err: werr}
	}
	if err != nil {
		s.recordFailure()
		return nil, fmt.Errorf("server %d: %w", s.id, err)
	}
	return conn, nil
}

// backoffDelayLocked computes the next backoff window: exponential in the
// consecutive-failure count, capped, and jittered into [d/2, d) by a
// counter-hashed draw (seed × server × attempt), so two runs from one seed
// replay the same redial schedule.
func (s *serverState) backoffDelayLocked() time.Duration {
	lc := &s.c.lifecycle
	base := lc.DialBackoffBase
	if base <= 0 {
		return 0
	}
	max := lc.backoffMax()
	shift := s.dialFails - 1
	if shift > 20 {
		shift = 20
	}
	d := base << shift
	if d <= 0 || d > max {
		d = max
	}
	h := splitmix64(uint64(lc.Seed) ^ 0x9E3779B97F4A7C15 ^ (uint64(s.id)+1)<<32 ^ uint64(s.dialFails))
	return d/2 + time.Duration(unitFloat(h)*float64(d/2))
}

// breakerAdmitLocked gates a call on the breaker, transitioning open →
// half-open when the cooldown has elapsed on the clock. In half-open state
// exactly one trial call is admitted at a time.
func (s *serverState) breakerAdmitLocked(now time.Time, lc *LifecycleConfig) bool {
	if lc.BreakerThreshold <= 0 {
		return true
	}
	switch s.brState {
	case breakerOpen:
		if now.Sub(s.brOpenedAt) < lc.cooldown() {
			return false
		}
		s.brState = breakerHalfOpen
		s.brProbing = true
		s.c.stats.breakerHalfOpens.Add(1)
		return true
	case breakerHalfOpen:
		if s.brProbing {
			return false
		}
		s.brProbing = true
		return true
	default:
		return true
	}
}

// recordFailure counts one transport-level failure (failed dial, send
// error, torn connection, call timeout) against the breaker.
func (s *serverState) recordFailure() {
	lc := &s.c.lifecycle
	if lc.BreakerThreshold <= 0 {
		return
	}
	s.mu.Lock()
	s.brFails++
	switch s.brState {
	case breakerClosed:
		if s.brFails >= lc.BreakerThreshold {
			s.brState = breakerOpen
			s.brOpenedAt = s.c.clock.Now()
			s.c.stats.breakerTrips.Add(1)
		}
	case breakerHalfOpen:
		s.brState = breakerOpen
		s.brOpenedAt = s.c.clock.Now()
		s.brProbing = false
		s.c.stats.breakerTrips.Add(1)
	}
	s.mu.Unlock()
}

// recordSuccess counts a transport-level success: the server answered
// (even with an application error), so consecutive-failure tracking resets
// and a half-open trial closes the breaker.
func (s *serverState) recordSuccess() {
	lc := &s.c.lifecycle
	if lc.BreakerThreshold <= 0 {
		return
	}
	s.mu.Lock()
	s.brFails = 0
	if s.brState == breakerHalfOpen {
		s.brState = breakerClosed
		s.brProbing = false
		s.c.stats.breakerCloses.Add(1)
	}
	s.mu.Unlock()
}

// recordNeutral resolves a call that proved nothing about the server
// (context cancellation, backoff fast-fail): it releases a held half-open
// trial slot without moving the state machine.
func (s *serverState) recordNeutral() {
	lc := &s.c.lifecycle
	if lc.BreakerThreshold <= 0 {
		return
	}
	s.mu.Lock()
	s.brProbing = false
	s.mu.Unlock()
}

// release returns a leased connection to the pool, stamping its idle clock.
func (s *serverState) release(conn *tcpConn) {
	if s.c.lifecycle.maintenance() {
		conn.touch(s.c.clock.Now().UnixNano())
	}
	conn.unlease()
}

// evict removes a failed connection from the pool and closes it.
func (s *serverState) evict(conn *tcpConn) {
	s.mu.Lock()
	for i, cn := range s.conns {
		if cn == conn {
			s.conns = append(s.conns[:i], s.conns[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	conn.close()
}

// down reports whether a call to the server right now would fail fast with
// ErrServerDown (TCPClient.ServerDown delegates here).
func (s *serverState) down(now time.Time, lc *LifecycleConfig) bool {
	if lc.BreakerThreshold <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.brState {
	case breakerOpen:
		// After the cooldown the next call is admitted as the half-open
		// trial, so the server no longer counts as down.
		return now.Sub(s.brOpenedAt) < lc.cooldown()
	case breakerHalfOpen:
		return s.brProbing
	default:
		return false
	}
}

// closeAll tears the state down: subsequent acquires fail, pooled
// connections close. In-flight dials observe closed at publish time.
func (s *serverState) closeAll() error {
	s.mu.Lock()
	s.closed = true
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	var first error
	for _, cn := range conns {
		if err := cn.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// maintainLoop is the client's background maintenance goroutine: on every
// tick of the clock it reaps idle connections past IdleTimeout and sends
// health-check probe frames on the idle survivors. Runs only when the
// lifecycle config enables either feature; stops when the client closes.
func (c *TCPClient) maintainLoop() {
	defer func() {
		c.sched.NoteSend() // pairs with Close's wait on maintStopped
		close(c.maintStopped)
	}()
	tick := c.lifecycle.ProbeEvery
	if tick <= 0 || (c.lifecycle.IdleTimeout > 0 && c.lifecycle.IdleTimeout < tick) {
		tick = c.lifecycle.IdleTimeout
	}
	for {
		t := c.clock.NewTimer(tick)
		unpark := c.sched.Park()
		select {
		case <-t.C:
			unpark()
			c.sched.NoteRecv()
			c.maintain()
		case <-c.maintDone:
			unpark()
			c.sched.NoteRecv()
			t.Stop()
			return
		}
	}
}

// maintain runs one maintenance pass over every server's pool.
func (c *TCPClient) maintain() {
	now := c.clock.Now()
	c.mu.Lock()
	states := make([]*serverState, 0, len(c.states))
	for _, s := range c.states {
		states = append(states, s)
	}
	c.mu.Unlock()
	for _, s := range states {
		s.maintain(now)
	}
}

// maintain reaps this server's idle-expired connections and probes the
// idle survivors with ping frames (concurrently; the pass waits for them).
func (s *serverState) maintain(now time.Time) {
	lc := &s.c.lifecycle
	var reap, probe []*tcpConn
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	keep := s.conns[:0]
	for _, cn := range s.conns {
		switch {
		case cn.isClosed():
		case lc.IdleTimeout > 0 && cn.load() == 0 && now.UnixNano()-cn.idleSince() >= int64(lc.IdleTimeout):
			reap = append(reap, cn)
		default:
			if lc.ProbeEvery > 0 && cn.load() == 0 {
				cn.lease() // pin against concurrent reap decisions
				probe = append(probe, cn)
			}
			keep = append(keep, cn)
		}
	}
	s.conns = keep
	s.mu.Unlock()
	for _, cn := range reap {
		s.c.stats.connsReaped.Add(1)
		cn.close()
	}
	if len(probe) == 0 {
		return
	}
	wg := s.c.newWaitGroup()
	for _, cn := range probe {
		cn := cn
		wg.Add(1)
		s.c.sched.Go(func() {
			defer wg.Done()
			defer cn.unlease()
			s.probeConn(cn)
		})
	}
	wg.Wait()
}

// probeConn sends one health-check ping on the connection and waits out the
// probe timeout. Failures evict the connection and count against the
// breaker; replies (any reply — the server is alive) count as successes.
func (s *serverState) probeConn(cn *tcpConn) {
	c := s.c
	c.stats.probesSent.Add(1)
	id := c.nextID.Add(1)
	ch, err := cn.send(id, wire.PingRequest{})
	if err != nil {
		c.stats.probeFailures.Add(1)
		s.evict(cn)
		s.recordFailure()
		return
	}
	t := c.clock.NewTimer(c.lifecycle.probeTimeout())
	defer t.Stop()
	unpark := c.sched.Park()
	select {
	case _, ok := <-ch:
		unpark()
		c.sched.NoteRecv()
		if !ok {
			c.stats.probeFailures.Add(1)
			s.evict(cn)
			s.recordFailure()
			return
		}
		s.recordSuccess()
	case <-t.C:
		unpark()
		c.sched.NoteRecv()
		if !cn.abandon(id) {
			// The reply raced the timer into the buffered channel; consume
			// its tracked send and honor it.
			_, ok := <-ch
			c.sched.NoteRecv()
			if ok {
				s.recordSuccess()
				return
			}
		}
		c.stats.probeFailures.Add(1)
		s.evict(cn)
		s.recordFailure()
	}
}
