// Package transport connects quorum clients to replica servers.
//
// Two implementations are provided. MemNetwork is an in-process simulated
// network with injectable latency, message loss, partitions and server
// crashes; it is the substrate for the experiment harness, exactly as the
// paper's analysis assumes an abstract message-passing system. TCPClient and
// TCPServer (tcp.go) carry the same messages over real sockets for
// deployments.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/vtime"
)

// Common transport errors. Callers match them with errors.Is.
var (
	// ErrUnknownServer indicates a call to a server id with no registered
	// handler or address.
	ErrUnknownServer = errors.New("transport: unknown server")
	// ErrCrashed indicates the destination server is crashed (simulated).
	ErrCrashed = errors.New("transport: server crashed")
	// ErrDropped indicates the simulated network lost the request or reply.
	ErrDropped = errors.New("transport: message dropped")
	// ErrPartitioned indicates the caller and destination are in different
	// partition groups.
	ErrPartitioned = errors.New("transport: network partitioned")
	// ErrClosed indicates the transport has been closed.
	ErrClosed = errors.New("transport: closed")
)

// Handler is the server side of the transport: replicas implement it.
type Handler interface {
	Handle(ctx context.Context, req any) (any, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, req any) (any, error)

// Handle implements Handler.
func (f HandlerFunc) Handle(ctx context.Context, req any) (any, error) { return f(ctx, req) }

// Transport is the client side: it delivers one request to one server and
// returns its response.
type Transport interface {
	Call(ctx context.Context, to quorum.ServerID, req any) (any, error)
}

// ClientSource is the source id MemNetwork attributes to direct callers
// (clients) that did not tag their context with WithSource. Server-to-server
// traffic (e.g. diffusion) tags its calls so per-link fault hooks can tell
// links apart.
const ClientSource quorum.ServerID = -1

// sourceKey is the context key carrying a call's source id.
type sourceKey struct{}

// WithSource returns a context whose MemNetwork calls are attributed to the
// given source server (used by server-initiated traffic such as gossip, so
// fault hooks see true per-link identities).
func WithSource(ctx context.Context, from quorum.ServerID) context.Context {
	return context.WithValue(ctx, sourceKey{}, from)
}

// SourceFromContext returns the source id attached by WithSource, or
// ClientSource when the context carries none.
func SourceFromContext(ctx context.Context) quorum.ServerID {
	if v, ok := ctx.Value(sourceKey{}).(quorum.ServerID); ok {
		return v
	}
	return ClientSource
}

// CallFault is a LinkHook's verdict on one call. The zero value delivers the
// call untouched. Effects compose in field order: a dropped call never
// reaches the server; a duplicated call is delivered twice (the second
// reply is discarded, exercising idempotency); Delay postpones delivery —
// with concurrent calls in flight on a link this lets later calls overtake
// earlier ones (reordering), while a sequential caller observes only the
// added latency and shuffled reply arrival across its access set;
// ReplaceReq substitutes the delivered request (frame corruption);
// MutateReply rewrites the reply (or error) on the way back.
type CallFault struct {
	Drop        bool
	Duplicate   bool
	Delay       time.Duration
	ReplaceReq  any
	MutateReply func(resp any, err error) (any, error)
}

// LinkHook intercepts every MemNetwork call on its way to a server. It is
// consulted after partition and crash checks and before the built-in drop
// and latency simulation, once per call, with the caller's source id (a
// server id for WithSource-tagged traffic, ClientSource otherwise).
// Implementations must be safe for concurrent use; determinism is the
// hook's responsibility (see internal/chaos for a seed-deterministic one).
type LinkHook interface {
	FilterCall(from, to quorum.ServerID, req any) CallFault
}

// MemNetwork is a simulated network hosting any number of in-process
// servers. The zero value is not usable; construct with NewMemNetwork.
// All configuration methods are safe for concurrent use with Call.
type MemNetwork struct {
	mu        sync.RWMutex
	handlers  map[quorum.ServerID]Handler
	crashed   map[quorum.ServerID]bool
	groups    map[quorum.ServerID]int // partition group per server; default 0
	dropProb  float64
	minLat    time.Duration
	maxLat    time.Duration
	perServer map[quorum.ServerID]latRange // overrides minLat/maxLat per server
	callGroup int                          // partition group of direct Call users (clients)

	// hook, when non-nil, intercepts every call (fault injection; see
	// LinkHook).
	hook LinkHook

	// sems, when non-empty, caps concurrent in-service calls per server
	// (see SetServerConcurrency): a call holds one slot of its
	// destination's semaphore across the simulated latency and the handler,
	// so latency becomes service time and each server gets a finite
	// throughput ceiling.
	sems map[quorum.ServerID]chan struct{}

	// clock supplies simulated-latency sleeps and fault delays. The wall
	// clock by default; the sim and chaos harnesses install a
	// vtime.SimClock so latency becomes virtual (instant to execute,
	// deterministic to replay). See SetClock.
	clock vtime.Clock

	// callSeq holds one counter per destination. Both the built-in drop
	// decision and the latency draw hash (seed, destination,
	// per-destination call count), so a run whose per-destination call
	// sequence is deterministic — sequential client operations, as in the
	// sim and chaos harnesses — replays its drop pattern AND its latency
	// schedule exactly from the seed, even though the calls themselves are
	// dispatched concurrently. (Which servers an operation calls never
	// depends on reply arrival order, only on the client's own seeded
	// sampling, so the per-destination counts are scheduling-independent.)
	// Counter-hashing replaced the PR 2 pooled-PRNG latency draws: it is
	// lock-free AND deterministic, which virtual-time hedging requires —
	// under a SimClock, latency decides which replies a hedged read
	// collects, so it must replay from the seed like drops always have.
	callSeq map[quorum.ServerID]*atomic.Uint64

	seed uint64
}

// latRange is a per-server latency override.
type latRange struct {
	min, max time.Duration
}

// NewMemNetwork returns an empty simulated network. seed fixes the fault
// randomness so that experiments are reproducible.
func NewMemNetwork(seed int64) *MemNetwork {
	return &MemNetwork{
		handlers: make(map[quorum.ServerID]Handler),
		crashed:  make(map[quorum.ServerID]bool),
		groups:   make(map[quorum.ServerID]int),
		callSeq:  make(map[quorum.ServerID]*atomic.Uint64),
		seed:     uint64(seed),
		clock:    vtime.Wall(),
	}
}

// SetClock installs the time source for simulated latency and fault
// delays (nil restores the wall clock). Install before traffic flows; the
// harnesses set it once at cluster construction.
func (n *MemNetwork) SetClock(clk vtime.Clock) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.clock = vtime.Or(clk)
}

// splitmix64 is the standard 64-bit finalizer used to decorrelate the
// per-call decision words derived from consecutive sequence numbers.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Register attaches a server handler under the given id, replacing any
// previous registration. Re-registering a departed id (see Deregister)
// models a server rejoining the membership.
func (n *MemNetwork) Register(id quorum.ServerID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
	if n.callSeq[id] == nil {
		n.callSeq[id] = new(atomic.Uint64)
	}
}

// Deregister removes a server from the membership: subsequent calls to it
// fail with ErrUnknownServer, exactly as if the id had never been
// registered — its crash flag, partition group and latency override are
// forgotten too, so a later Register rejoins a genuinely fresh member.
// Together with Register it models mid-run membership churn (leave/join).
// The call-sequence counter for the id is retained so a rejoin does not
// replay the departed server's fault pattern.
func (n *MemNetwork) Deregister(id quorum.ServerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.handlers, id)
	delete(n.crashed, id)
	delete(n.groups, id)
	delete(n.perServer, id)
}

// SetLinkHook installs (or, with nil, removes) the fault-injection hook
// consulted on every call. See LinkHook.
func (n *MemNetwork) SetLinkHook(h LinkHook) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hook = h
}

// Crash marks a server as crashed: calls to it fail with ErrCrashed.
func (n *MemNetwork) Crash(id quorum.ServerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Recover clears a server's crashed state.
func (n *MemNetwork) Recover(id quorum.ServerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// CrashedCount returns the number of currently crashed servers.
func (n *MemNetwork) CrashedCount() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.crashed)
}

// SetDropProb sets the probability that any single call is lost.
func (n *MemNetwork) SetDropProb(p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("transport: drop probability %v outside [0,1]", p))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropProb = p
}

// SetLatency sets the uniform per-call latency range. Zero disables
// simulated delay.
func (n *MemNetwork) SetLatency(min, max time.Duration) {
	if min < 0 || max < min {
		panic("transport: invalid latency range")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.minLat, n.maxLat = min, max
}

// SetServerLatency overrides the per-call latency range for one server,
// making it a straggler (or a fast path) relative to SetLatency's global
// range. A zero max restores the global range for that server.
func (n *MemNetwork) SetServerLatency(id quorum.ServerID, min, max time.Duration) {
	if min < 0 || max < min {
		panic("transport: invalid latency range")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.perServer == nil {
		n.perServer = make(map[quorum.ServerID]latRange)
	}
	if max == 0 {
		delete(n.perServer, id)
		return
	}
	n.perServer[id] = latRange{min: min, max: max}
}

// SetServerConcurrency caps every currently registered server at k calls
// in service at once (0 removes the cap). While the cap is in place a call
// occupies one of its destination's k slots across the simulated latency
// AND the handler, so the latency range set with SetLatency acts as per-call
// service time and each server's throughput ceiling is k/latency calls per
// second. This is the capacity model behind the multi-cell scaling
// benchmarks: without it an in-memory server is infinitely parallel and
// adding cells adds no measurable capacity.
func (n *MemNetwork) SetServerConcurrency(k int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if k <= 0 {
		n.sems = nil
		return
	}
	n.sems = make(map[quorum.ServerID]chan struct{}, len(n.handlers))
	for id := range n.handlers {
		n.sems[id] = make(chan struct{}, k)
	}
}

// SetPartition assigns servers to partition groups. Calls between different
// groups fail with ErrPartitioned. Servers not mentioned stay in group 0.
func (n *MemNetwork) SetPartition(groups map[quorum.ServerID]int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = make(map[quorum.ServerID]int, len(groups))
	for id, g := range groups {
		n.groups[id] = g
	}
}

// ClearPartition heals all partitions.
func (n *MemNetwork) ClearPartition() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = make(map[quorum.ServerID]int)
}

// SetCallerGroup places direct callers of Call (clients) into a partition
// group; the default group is 0.
func (n *MemNetwork) SetCallerGroup(g int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.callGroup = g
}

// Call implements Transport. The call observes, in order: partition state,
// crash state, the installed LinkHook (if any), simulated loss, simulated
// latency, then the server handler. Simulated loss surfaces promptly as
// ErrDropped rather than stalling until the context deadline, which keeps
// large experiments fast; production callers treat ErrDropped like a
// timeout.
func (n *MemNetwork) Call(ctx context.Context, to quorum.ServerID, req any) (any, error) {
	n.mu.RLock()
	h, ok := n.handlers[to]
	crashed := n.crashed[to]
	drop := n.dropProb
	callCnt := n.callSeq[to]
	hook := n.hook
	sem := n.sems[to]
	clock := n.clock
	minLat, maxLat := n.minLat, n.maxLat
	if lr, ok := n.perServer[to]; ok {
		minLat, maxLat = lr.min, lr.max
	}
	sameGroup := n.groups[to] == n.callGroup
	n.mu.RUnlock()

	if !ok {
		return nil, fmt.Errorf("server %d: %w", to, ErrUnknownServer)
	}
	if !sameGroup {
		return nil, fmt.Errorf("server %d: %w", to, ErrPartitioned)
	}
	if crashed {
		return nil, fmt.Errorf("server %d: %w", to, ErrCrashed)
	}
	var fault CallFault
	if hook != nil {
		fault = hook.FilterCall(SourceFromContext(ctx), to, req)
		if fault.Drop {
			return nil, fmt.Errorf("server %d: %w", to, ErrDropped)
		}
		if fault.ReplaceReq != nil {
			req = fault.ReplaceReq
		}
	}
	if sem != nil {
		// Service-time accounting (SetServerConcurrency): hold one of the
		// destination's slots across the latency sleep and the handler.
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if drop > 0 || maxLat > minLat {
		// One decision word per call, counter-hashed: both the drop verdict
		// and the latency draw depend only on (seed, destination,
		// per-destination call count), so harnesses that keep the call
		// sequence deterministic replay drops and latency byte-for-byte
		// (see callSeq).
		seq := callCnt.Add(1)
		base := splitmix64(n.seed ^ (uint64(to)+1)<<32 ^ seq)
		if drop > 0 {
			u := splitmix64(base ^ 0x0D)
			if float64(u>>11)/(1<<53) < drop {
				return nil, fmt.Errorf("server %d: %w", to, ErrDropped)
			}
		}
		if maxLat > minLat {
			d := minLat + time.Duration(splitmix64(base^0x1A)%uint64(maxLat-minLat+1))
			if d > 0 {
				if err := clock.SleepCtx(ctx, d); err != nil {
					return nil, err
				}
			}
		}
	}
	if maxLat == minLat && maxLat > 0 {
		if err := clock.SleepCtx(ctx, minLat); err != nil {
			return nil, err
		}
	}
	if fault.Delay > 0 {
		if err := clock.SleepCtx(ctx, fault.Delay); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := h.Handle(ctx, req)
	if fault.Duplicate {
		// Deliver the request a second time, discarding the second reply:
		// the visible effect is what idempotency (or its absence) makes it.
		h.Handle(ctx, req) //nolint:errcheck // duplicate delivery, reply discarded
	}
	if fault.MutateReply != nil {
		resp, err = fault.MutateReply(resp, err)
	}
	return resp, err
}

var _ Transport = (*MemNetwork)(nil)
