package transport

import (
	"bytes"
	"context"
	"testing"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/wire"
)

// TestTCPFlateRoundTripAndCounters runs the full exchange under
// CodecBinaryFlate with a compressible payload and checks that the
// compression counters surface through Stats: raw bytes exceed wire bytes,
// and the saved difference is consistent on both endpoints.
func TestTCPFlateRoundTripAndCounters(t *testing.T) {
	srv, err := ListenTCPCodec("127.0.0.1:0", &echoHandler{id: 3}, CodecBinaryFlate)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Codec() != CodecBinaryFlate {
		t.Fatalf("server codec %v", srv.Codec())
	}
	client := NewTCPClientCodec(map[quorum.ServerID]string{3: srv.Addr()}, CodecBinaryFlate)
	defer client.Close()

	// Small control traffic stays below the threshold: no compression.
	if _, err := client.Call(context.Background(), 3, wire.PingRequest{}); err != nil {
		t.Fatal(err)
	}
	cs := client.Stats()
	if cs.Codec.BytesSaved != 0 {
		t.Fatalf("sub-threshold ping saved %d bytes", cs.Codec.BytesSaved)
	}

	// A compressible multi-KB value compresses on both legs (echo).
	value := bytes.Repeat([]byte("wan-compression-pays-here!"), 512)
	resp, err := client.Call(context.Background(), 3, wire.WriteRequest{Key: "k", Value: value})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(wire.WriteRequest); !bytes.Equal(got.Value, value) {
		t.Fatalf("echoed value mismatch: %d bytes", len(got.Value))
	}
	for name, s := range map[string]TCPStats{"client": client.Stats(), "server": srv.Stats()} {
		c := s.Codec
		if c.RawBytes == 0 || c.WireBytes == 0 {
			t.Fatalf("%s: compression counters did not advance: %+v", name, c)
		}
		if c.WireBytes >= c.RawBytes {
			t.Errorf("%s: wire %d >= raw %d for a compressible payload", name, c.WireBytes, c.RawBytes)
		}
		if c.BytesSaved != c.RawBytes-c.WireBytes {
			t.Errorf("%s: BytesSaved %d != raw-wire %d", name, c.BytesSaved, c.RawBytes-c.WireBytes)
		}
	}
}

// TestTCPFlateVersionSkewFailsLoudly pins the transport-level failure mode
// of the minted TagCompressed: a CodecBinary client talking to a flate
// server works for sub-threshold traffic (byte-identical layout) but a
// compressed reply kills the call with an error — never a silent desync.
func TestTCPFlateVersionSkewFailsLoudly(t *testing.T) {
	srv, err := ListenTCPCodec("127.0.0.1:0", &echoHandler{id: 4}, CodecBinaryFlate)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	legacy := NewTCPClientCodec(map[quorum.ServerID]string{4: srv.Addr()}, CodecBinary)
	defer legacy.Close()

	// Sub-threshold exchanges are codec-agnostic.
	if _, err := legacy.Call(context.Background(), 4, wire.PingRequest{}); err != nil {
		t.Fatalf("sub-threshold cross-codec call failed: %v", err)
	}

	// A compressible echo forces a compressed reply the legacy client
	// cannot parse: the call must error, not hang or misparse.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	value := bytes.Repeat([]byte("compress-me-compress-me!"), 512)
	if _, err := legacy.Call(ctx, 4, wire.WriteRequest{Key: "k", Value: value}); err == nil {
		t.Fatal("legacy client parsed a compressed reply")
	}
}

// TestParseCodec covers the flag-level codec names.
func TestParseCodec(t *testing.T) {
	for name, want := range map[string]Codec{
		"binary":       CodecBinary,
		"gob":          CodecGob,
		"binary-flate": CodecBinaryFlate,
	} {
		got, err := ParseCodec(name)
		if err != nil || got != want {
			t.Errorf("ParseCodec(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("Codec(%v).String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, err := ParseCodec("zstd"); err == nil {
		t.Error("ParseCodec accepted an unknown codec")
	}
}
