// History recording and the consistency checker: classify every read of a
// recorded run against regular-register semantics per protocol mode,
// compute the empirical ε of Theorems 3.2/4.2/5.2 and a PBS-style
// staleness-depth distribution, and test the measured ε against the
// theorem bound at a configured confidence.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"pqs/internal/combin"
	"pqs/internal/quorum"
	"pqs/internal/register"
	"pqs/internal/ts"
)

// OpKind distinguishes history events.
type OpKind uint8

// Operation kinds.
const (
	OpWrite OpKind = iota + 1
	OpRead
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one recorded client operation. Every field is part of the
// determinism contract: two runs from the same seed must produce equal Ops.
type Op struct {
	// Seq is the operation's global sequence number (0-based).
	Seq int `json:"seq"`
	// Time is the logical time (the write/read pair index) the operation
	// ran at; schedule events fire at pair boundaries.
	Time int    `json:"t"`
	Kind OpKind `json:"kind"`
	Key  string `json:"key"`
	// Value is the written value, or the value the read returned.
	Value string `json:"value,omitempty"`
	// Stamp is the write's assigned timestamp, or the stamp attached to the
	// value the read accepted.
	Stamp ts.Stamp `json:"stamp"`
	// Found reports a read's Found outcome (⊥ is Found == false).
	Found bool `json:"found,omitempty"`
	// Full reports whether a write was acknowledged by its entire access
	// set — the premise of the consistency theorems. Reads following a
	// non-full write are recorded and classified but excluded from the
	// bound test (see CheckResult.EligibleReads).
	Full bool `json:"full,omitempty"`
	// Quorum is the access set the strategy chose for the operation.
	Quorum []quorum.ServerID `json:"quorum,omitempty"`
	// Cell is the quorum cell the operation's key routed to (always 0 in a
	// single-cell run). Part of the determinism contract: routing is a pure
	// function of the key and the ring view, so two runs from one seed must
	// attribute every operation to the same cell.
	Cell int `json:"cell,omitempty"`
	// View is the membership-view version the operation was issued under:
	// a counter the harness bumps once per membership departure or join
	// (Leave/Join schedule actions, load-generator churn waves). The timed-
	// quorum checker (CheckConfig.Timed) derives each read's churn depth D
	// as read.View minus the View of its key's latest write, which is what
	// the time-decayed ε bound is a function of. Always 0 in churn-free
	// runs.
	View uint64 `json:"view,omitempty"`
	// Err is the operation's error text ("" on success).
	Err string `json:"err,omitempty"`
}

// equal reports whether two ops are identical, including access sets.
func (o Op) equal(p Op) bool {
	if o.Seq != p.Seq || o.Time != p.Time || o.Kind != p.Kind || o.Key != p.Key ||
		o.Value != p.Value || o.Stamp != p.Stamp || o.Found != p.Found ||
		o.Full != p.Full || o.Cell != p.Cell || o.View != p.View ||
		o.Err != p.Err || len(o.Quorum) != len(p.Quorum) {
		return false
	}
	for i := range o.Quorum {
		if o.Quorum[i] != p.Quorum[i] {
			return false
		}
	}
	return true
}

// String renders an op compactly for diffs.
func (o Op) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d t=%d %s %s", o.Seq, o.Time, o.Kind, o.Key)
	if o.Kind == OpWrite {
		fmt.Fprintf(&b, " value=%q stamp=%v full=%v", o.Value, o.Stamp, o.Full)
	} else {
		fmt.Fprintf(&b, " found=%v value=%q stamp=%v", o.Found, o.Value, o.Stamp)
	}
	fmt.Fprintf(&b, " quorum=%v", o.Quorum)
	if o.Cell != 0 {
		fmt.Fprintf(&b, " cell=%d", o.Cell)
	}
	if o.View != 0 {
		fmt.Fprintf(&b, " view=%d", o.View)
	}
	if o.Err != "" {
		fmt.Fprintf(&b, " err=%q", o.Err)
	}
	return b.String()
}

// History is the ordered record of a run's client operations.
type History []Op

// Diff returns "" when the histories are identical, and otherwise a
// description of the first divergent event (or the length mismatch),
// rendered with both sides — the output the determinism regression test
// fails with.
func (h History) Diff(other History) string {
	n := len(h)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if !h[i].equal(other[i]) {
			return fmt.Sprintf("events diverge at index %d:\n  a: %s\n  b: %s", i, h[i], other[i])
		}
	}
	if len(h) != len(other) {
		return fmt.Sprintf("history lengths diverge: %d vs %d events (first %d equal)", len(h), len(other), n)
	}
	return ""
}

// CheckConfig parameterizes the consistency checker.
type CheckConfig struct {
	// Mode is the protocol mode the history was produced under.
	Mode register.Mode
	// Bound is the per-read failure probability the theorems allow (the ε
	// of Theorem 3.2, 4.2 or 5.2 for the system under test). 1 disables
	// the statistical test (violations are still checked).
	Bound float64
	// Alpha is the p-value below which the measured ε is declared to
	// exceed Bound (the configured confidence). Default 1e-6: the checker
	// only fails when the observed stale count would happen less than one
	// time in a million under the bound — deterministic-friendly, since a
	// seed either fails reproducibly or passes reproducibly.
	Alpha float64
	// Cells, when > 1, additionally tests EVERY cell's empirical ε against
	// Bound (each cell is an independent instance of the same construction,
	// so the theorem bound applies per cell, not just on average): the
	// result carries a per-cell section for each cell, and a run fails when
	// ANY cell's p-value drops below Alpha — a cell blowing its budget must
	// not hide inside a passing global average.
	Cells int
	// Timed, when set, replaces the flat bound test with the timed-quorum
	// verdict: eligible reads are bucketed by churn depth D (the read's
	// View minus its key's last-write View), each bucket is allowed the
	// time-decayed per-read bound min(1, Base + ε(D) - ε(0)) with ε(D) =
	// combin.TimedEpsilon(N, QW, QR, D), and the total bad count is tested
	// against the sum of bucket binomials. The flat PValue is still
	// computed and reported for reference, but Pass follows the timed
	// verdict (plus violations and per-cell sections, which keep using the
	// flat bound). See CheckResult.Timed.
	Timed *TimedBound
}

// TimedBound parameterizes the timed-quorum (time-decayed ε) test: the
// quorum geometry and the static per-read theorem bound it decays from.
type TimedBound struct {
	// N is the universe size and QW/QR the write/read quorum sizes of the
	// construction under test (per cell, in a multi-cell run).
	N  int `json:"n"`
	QW int `json:"qw"`
	QR int `json:"qr"`
	// Base is the static (D=0) per-read bound ε the theorems grant — the
	// same number the flat test uses. The timed test allows each depth-D
	// bucket Base plus the churn penalty TimedEpsilon(D) - TimedEpsilon(0).
	Base float64 `json:"base"`
}

// DefaultAlpha is CheckConfig.Alpha's default.
const DefaultAlpha = 1e-6

// CheckResult is the checker's verdict over one history.
type CheckResult struct {
	// Reads counts read operations; Correct/Stale/Fooled/Unavailable
	// partition them. A read is Correct when it returned the latest
	// completed genuine write (or ⊥ before any write), Stale when it
	// returned an older genuine pair or ⊥, Fooled when it returned a
	// value-stamp pair no writer ever produced, and Unavailable when it
	// errored.
	Reads       int `json:"reads"`
	Correct     int `json:"correct"`
	Stale       int `json:"stale"`
	Fooled      int `json:"fooled"`
	Unavailable int `json:"unavailable"`

	// Epsilon is the empirical per-read failure rate over all classified
	// reads: (Stale+Fooled) / (Correct+Stale+Fooled).
	Epsilon float64 `json:"epsilon"`

	// EligibleReads counts reads whose key's latest write attempt
	// completed with a full access set — the reads the theorems' premise
	// covers. EligibleBad counts those that were stale or fooled;
	// EligibleEpsilon is their ratio, the empirical ε tested against
	// Bound.
	EligibleReads   int     `json:"eligible_reads"`
	EligibleBad     int     `json:"eligible_bad"`
	EligibleEpsilon float64 `json:"eligible_epsilon"`

	// StaleDepth is the PBS-style staleness distribution over *genuine*
	// values: StaleDepth[d] counts stale reads that returned a value d
	// completed writes old (⊥ after w completed writes counts at depth w).
	// Depth 0 reads are Correct; fooled reads returned fabricated pairs
	// with no meaningful depth and are counted only in Fooled.
	StaleDepth map[int]int `json:"stale_depth,omitempty"`

	// Bound and PValue report the statistical test: PValue is the exact
	// binomial probability of observing at least EligibleBad failures in
	// EligibleReads reads if the true per-read failure rate were Bound.
	Bound  float64 `json:"bound"`
	PValue float64 `json:"p_value"`

	// Violations lists hard safety violations: reads that returned a
	// fabricated pair in a mode whose acceptance rule rules them out
	// entirely (benign with no Byzantine faults modeled, and
	// dissemination, where signatures must reject every forgery).
	// Masking reads may be fooled with probability ε, so there fooled
	// reads count toward the bound instead.
	Violations []string `json:"violations,omitempty"`

	// Timed carries the timed-quorum verdict when CheckConfig.Timed is
	// set: the depth-bucketed bounds and the grouped test that decides
	// Pass for churn runs. Nil otherwise.
	Timed *TimedResult `json:"timed,omitempty"`

	// Cells carries the per-cell sections of a multi-cell run
	// (CheckConfig.Cells > 1): the same eligibility accounting and binomial
	// test computed over each cell's own reads, against the same per-cell
	// Bound. Nil for single-cell histories.
	Cells []CellResult `json:"cells,omitempty"`

	// Pass is the overall verdict: no violations, the measured global ε is
	// statistically consistent with Bound (PValue >= Alpha), and — in a
	// multi-cell run — every per-cell section passes too.
	Pass bool `json:"pass"`
}

// CellResult is one cell's slice of a multi-cell consistency verdict.
type CellResult struct {
	// Cell is the cell index the section covers.
	Cell int `json:"cell"`
	// Reads counts the cell's read operations; Eligible* mirror the global
	// accounting restricted to this cell's keys.
	Reads           int     `json:"reads"`
	EligibleReads   int     `json:"eligible_reads"`
	EligibleBad     int     `json:"eligible_bad"`
	EligibleEpsilon float64 `json:"eligible_epsilon"`
	// Bound and PValue report the cell's own binomial test; Pass its
	// verdict (PValue >= Alpha).
	Bound  float64 `json:"bound"`
	PValue float64 `json:"p_value"`
	Pass   bool    `json:"pass"`
}

// writeRec is one write attempt as seen by the checker.
type writeRec struct {
	value     string
	stamp     ts.Stamp
	completed bool // the write returned success
	full      bool // every access-set member acknowledged
}

// Check classifies every read in h against the writes that preceded it and
// tests the empirical ε against cfg.Bound at confidence cfg.Alpha.
func Check(h History, cfg CheckConfig) CheckResult {
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.Bound == 0 {
		cfg.Bound = 1
	}
	res := CheckResult{StaleDepth: make(map[int]int), Bound: cfg.Bound}
	writes := make(map[string][]writeRec)
	completed := make(map[string]int) // completed-write count per key
	var lastView map[string]uint64    // view of each key's latest write attempt
	var timedGroups map[int]*TimedGroup
	if cfg.Timed != nil {
		lastView = make(map[string]uint64)
		timedGroups = make(map[int]*TimedGroup)
	}
	var cells []CellResult
	if cfg.Cells > 1 {
		cells = make([]CellResult, cfg.Cells)
		for i := range cells {
			cells[i] = CellResult{Cell: i, Bound: cfg.Bound}
		}
	}
	// perCell resolves an op's cell section, tolerating out-of-range ids
	// (a malformed history) by dropping the attribution rather than
	// panicking mid-check.
	perCell := func(op Op) *CellResult {
		if cells == nil || op.Cell < 0 || op.Cell >= len(cells) {
			return nil
		}
		return &cells[op.Cell]
	}

	for _, op := range h {
		switch op.Kind {
		case OpWrite:
			rec := writeRec{value: op.Value, stamp: op.Stamp, completed: op.Err == "", full: op.Err == "" && op.Full}
			writes[op.Key] = append(writes[op.Key], rec)
			if rec.completed {
				completed[op.Key]++
			}
			if lastView != nil {
				lastView[op.Key] = op.View
			}
		case OpRead:
			res.Reads++
			cell := perCell(op)
			if cell != nil {
				cell.Reads++
			}
			eligible := false
			if ws := writes[op.Key]; len(ws) > 0 {
				last := ws[len(ws)-1]
				eligible = last.completed && last.full
			} else {
				eligible = true // reads before any write trivially satisfy the premise
			}
			if eligible {
				res.EligibleReads++
				if cell != nil {
					cell.EligibleReads++
				}
			}
			class, depth := classifyRead(op, writes[op.Key], completed[op.Key])
			switch class {
			case readUnavailable:
				res.Unavailable++
				if eligible {
					res.EligibleReads-- // errored reads carry no consistency verdict
					if cell != nil {
						cell.EligibleReads--
					}
				}
				continue
			case readCorrect:
				res.Correct++
			case readStale:
				res.Stale++
				res.StaleDepth[depth]++
			case readFooled:
				res.Fooled++
				if cfg.Mode != register.Masking {
					res.Violations = append(res.Violations, fmt.Sprintf(
						"op #%d: %s mode read of %q returned fabricated pair (%q, %v)",
						op.Seq, cfg.Mode, op.Key, op.Value, op.Stamp))
				}
			}
			if eligible {
				if class != readCorrect {
					res.EligibleBad++
					if cell != nil {
						cell.EligibleBad++
					}
				}
				if timedGroups != nil {
					d := 0
					if lv := lastView[op.Key]; op.View > lv {
						d = int(op.View - lv)
					}
					tg := timedGroups[d]
					if tg == nil {
						tg = &TimedGroup{Departures: d}
						timedGroups[d] = tg
					}
					tg.Reads++
					if class != readCorrect {
						tg.Bad++
					}
				}
			}
		}
	}
	if cl := res.Correct + res.Stale + res.Fooled; cl > 0 {
		res.Epsilon = float64(res.Stale+res.Fooled) / float64(cl)
	}
	if res.EligibleReads > 0 {
		res.EligibleEpsilon = float64(res.EligibleBad) / float64(res.EligibleReads)
	}
	res.PValue = 1
	if res.EligibleBad > 0 && cfg.Bound < 1 {
		res.PValue = combin.BinomialTailGE(res.EligibleReads, cfg.Bound, res.EligibleBad)
	}
	res.Pass = len(res.Violations) == 0 && res.PValue >= cfg.Alpha
	if cfg.Timed != nil {
		gs := make([]TimedGroup, 0, len(timedGroups))
		for _, g := range timedGroups {
			gs = append(gs, *g)
		}
		res.Timed = EvaluateTimed(gs, *cfg.Timed, cfg.Alpha)
		// Under churn the flat bound is the wrong null hypothesis — the
		// timed verdict replaces it (violations and per-cell sections still
		// veto below).
		res.Pass = len(res.Violations) == 0 && res.Timed.Pass
	}
	for i := range cells {
		c := &cells[i]
		if c.EligibleReads > 0 {
			c.EligibleEpsilon = float64(c.EligibleBad) / float64(c.EligibleReads)
		}
		c.PValue = 1
		if c.EligibleBad > 0 && cfg.Bound < 1 {
			c.PValue = combin.BinomialTailGE(c.EligibleReads, cfg.Bound, c.EligibleBad)
		}
		c.Pass = c.PValue >= cfg.Alpha
		if !c.Pass {
			res.Pass = false
		}
	}
	res.Cells = cells
	return res
}

// TimedGroup is one churn-depth bucket of the timed-quorum test: Reads
// eligible reads issued D membership departures after their key's latest
// write, of which Bad were stale or fooled, allowed the per-read bound
// Bound (filled in by EvaluateTimed).
type TimedGroup struct {
	Departures int     `json:"departures"`
	Reads      int     `json:"reads"`
	Bad        int     `json:"bad"`
	Bound      float64 `json:"bound"`
}

// TimedResult is the timed-quorum verdict: depth-bucketed bounds and the
// grouped statistical test over the total bad count.
type TimedResult struct {
	// Groups are the depth buckets in increasing Departures order, bounds
	// filled.
	Groups []TimedGroup `json:"groups"`
	// MaxBound is the largest per-read bound any bucket was allowed — how
	// far churn stretched the budget beyond Base.
	MaxBound float64 `json:"max_bound"`
	// PValue is P(total bad ≥ observed) under the null hypothesis that each
	// bucket fails at exactly its bound (combin.GroupedBinomialTailGE).
	PValue float64 `json:"p_value"`
	// Pass is PValue >= alpha.
	Pass bool `json:"pass"`
}

// EvaluateTimed computes each bucket's time-decayed bound and tests the
// total bad count against the sum of bucket binomials at confidence alpha
// (0 = DefaultAlpha). Buckets arrive with Departures/Reads/Bad set; the
// input slice is sorted and its bounds filled in place. Exported because
// the load generator (internal/load) runs the same verdict over its own
// depth buckets without materializing a History.
func EvaluateTimed(groups []TimedGroup, tb TimedBound, alpha float64) *TimedResult {
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Departures < groups[j].Departures })
	base0 := combin.TimedEpsilon(tb.N, tb.QW, tb.QR, 0)
	res := &TimedResult{Groups: groups, PValue: 1}
	ms := make([]int, len(groups))
	ps := make([]float64, len(groups))
	totalBad := 0
	for i := range groups {
		g := &groups[i]
		d := g.Departures
		if d > tb.N {
			d = tb.N
		}
		bound := tb.Base + combin.TimedEpsilon(tb.N, tb.QW, tb.QR, d) - base0
		if bound > 1 {
			bound = 1
		}
		g.Bound = bound
		if bound > res.MaxBound {
			res.MaxBound = bound
		}
		ms[i] = g.Reads
		ps[i] = bound
		totalBad += g.Bad
	}
	if totalBad > 0 {
		res.PValue = combin.GroupedBinomialTailGE(ms, ps, totalBad)
	}
	res.Pass = res.PValue >= alpha
	return res
}

// read classifications.
type readClass int

const (
	readCorrect readClass = iota
	readStale
	readFooled
	readUnavailable
)

// classifyRead matches a read against the write record of its key. depth is
// the number of completed writes newer than what the read returned.
func classifyRead(op Op, ws []writeRec, completedCount int) (readClass, int) {
	if op.Err != "" {
		return readUnavailable, 0
	}
	if !op.Found {
		if completedCount == 0 {
			return readCorrect, 0
		}
		return readStale, completedCount
	}
	// Genuine iff the exact (value, stamp) pair was produced by a write
	// attempt (completed or not: a failed write may still have reached some
	// members, so reading it back is staleness, not fabrication).
	newerCompleted := completedCount
	for _, w := range ws {
		if w.completed {
			newerCompleted--
		}
		if w.value == op.Value && w.stamp == op.Stamp {
			if w.completed && newerCompleted == 0 {
				return readCorrect, 0
			}
			depth := newerCompleted
			if depth < 1 {
				depth = 1 // an uncompleted latest write read back: one behind the last completed state
			}
			return readStale, depth
		}
	}
	return readFooled, completedCount + 1
}
