package chaos

import (
	"flag"
	"fmt"
	"testing"

	"pqs/internal/register"
	"pqs/internal/ts"
	"pqs/internal/wire"
)

// chaosSeed replays the scenario matrix from a chosen seed:
//
//	go test ./internal/chaos -run TestChaos -chaos.seed=N -v
//
// A failing CI seed pasted here reproduces the identical history locally —
// that is the determinism contract under test below.
var chaosSeed = flag.Int64("chaos.seed", 1, "seed for the chaos scenario matrix")

// chaosScale multiplies per-scenario trial counts (CI runs 1).
var chaosScale = flag.Int("chaos.scale", 1, "trial-count multiplier for the chaos scenario matrix")

// TestChaosScenarios runs the full shipped matrix: every scenario must pass
// its theorem bound at the checker's confidence, with zero hard violations.
func TestChaosScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			cfg, err := sc.Build(*chaosScale, *chaosSeed)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			c := rep.Check
			t.Logf("%s: reads=%d correct=%d stale=%d fooled=%d unavailable=%d eligible=%d/%d ε=%.5f (eligible ε=%.5f) bound=%.3g p=%.3g depth=%v",
				sc.Name, c.Reads, c.Correct, c.Stale, c.Fooled, c.Unavailable,
				c.EligibleBad, c.EligibleReads, c.Epsilon, c.EligibleEpsilon, c.Bound, c.PValue, c.StaleDepth)
			for _, v := range c.Violations {
				t.Errorf("violation: %s", v)
			}
			if !c.Pass {
				t.Errorf("scenario %s failed its bound: eligible ε=%.5f over %d reads vs bound %.3g (p=%.3g); replay with -chaos.seed=%d",
					sc.Name, c.EligibleEpsilon, c.EligibleReads, c.Bound, c.PValue, rep.Seed)
			}
		})
	}
}

// TestScenarioLibrarySize pins the acceptance floor: at least 8 named
// scenarios ship.
func TestScenarioLibrarySize(t *testing.T) {
	if n := len(Scenarios()); n < 8 {
		t.Fatalf("scenario library has %d entries, want >= 8", n)
	}
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		if sc.Name == "" || sc.Doc == "" {
			t.Errorf("scenario %+v missing name or doc", sc)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if _, ok := Find(sc.Name); !ok {
			t.Errorf("Find(%q) failed", sc.Name)
		}
	}
}

// TestChaosDeterminism is the determinism regression: two runs of every
// scenario from the same seed must produce byte-identical histories. On
// divergence it fails with the first divergent event.
func TestChaosDeterminism(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			cfg, err := sc.Build(1, *chaosSeed)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			a, err := Run(cfg)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			cfg2, err := sc.Build(1, *chaosSeed)
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			b, err := Run(cfg2)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if d := a.History.Diff(b.History); d != "" {
				t.Fatalf("seed %d did not replay:\n%s", *chaosSeed, d)
			}
			if a.Check.Pass != b.Check.Pass || a.Check.Epsilon != b.Check.Epsilon {
				t.Fatalf("check verdicts diverge for identical histories")
			}
		})
	}
}

// TestChaosSeedSensitivity guards against the opposite failure: a harness
// that ignores its seed would trivially "replay". Different seeds must
// (for at least one scenario) choose different access sets.
func TestChaosSeedSensitivity(t *testing.T) {
	sc, ok := Find("benign/calm")
	if !ok {
		t.Fatal("benign/calm missing")
	}
	cfgA, _ := sc.Build(1, 1)
	cfgB, _ := sc.Build(1, 2)
	a, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.History.Diff(b.History); d == "" {
		t.Fatal("seeds 1 and 2 produced identical histories; the harness is ignoring its seed")
	}
}

// TestNegativeScenarioFails is the acceptance negative test: a Byzantine
// scenario whose measured ε exceeds the configured bound must fail the
// checker.
func TestNegativeScenarioFails(t *testing.T) {
	cfg, err := NegativeConfig(1, *chaosSeed)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	c := rep.Check
	t.Logf("negative: ε=%.4f (eligible %.4f over %d) bound=%.3g p=%.3g fooled=%d",
		c.Epsilon, c.EligibleEpsilon, c.EligibleReads, c.Bound, c.PValue, c.Fooled)
	if c.Fooled == 0 {
		t.Fatalf("negative scenario fooled no reads; the adversary is toothless")
	}
	if c.EligibleEpsilon <= c.Bound {
		t.Fatalf("measured ε %.4g not above the configured bound %.4g", c.EligibleEpsilon, c.Bound)
	}
	if c.Pass {
		t.Fatalf("checker passed a run whose measured ε %.4f exceeds the configured bound %.3g", c.EligibleEpsilon, c.Bound)
	}
}

// TestGossipUnderFireExercisesTheMachinery asserts the gossip-under-fire
// scenario genuinely runs what it advertises: a virtual-time run that
// consumed simulated seconds, hedged around stragglers, stepped diffusion
// rounds and merged entries across stores — not a configuration that
// silently degraded to the plain harness.
func TestGossipUnderFireExercisesTheMachinery(t *testing.T) {
	sc, ok := Find("masking/gossip-under-fire")
	if !ok {
		t.Fatal("masking/gossip-under-fire missing from the library")
	}
	cfg, err := sc.Build(1, *chaosSeed)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Virtual || rep.SimSeconds <= 0 {
		t.Errorf("run did not record virtual time: virtual=%v sim_seconds=%v", rep.Virtual, rep.SimSeconds)
	}
	if rep.GossipRounds == 0 {
		t.Error("no diffusion rounds ran")
	}
	if rep.GossipMerged == 0 {
		t.Error("diffusion never merged an entry; gossip was a no-op")
	}
	if !rep.Check.Pass {
		t.Errorf("scenario failed its bound: %+v", rep.Check)
	}
	t.Logf("simulated %.3fs, %d gossip rounds, %d entries merged",
		rep.SimSeconds, rep.GossipRounds, rep.GossipMerged)
}

// TestDeltaGossipSuppressesBytes is the delta-gossip acceptance check: in
// scenarios that run many rounds over mostly-stable stores, the watermark
// exchange must push strictly fewer payload bytes than the old
// full-snapshot push would have — counter-asserted on the aggregated
// BytesSuppressed — while the run still converges and passes its ε bound.
func TestDeltaGossipSuppressesBytes(t *testing.T) {
	for _, name := range []string{"benign/churn", "masking/gossip-under-fire"} {
		t.Run(name, func(t *testing.T) {
			sc, ok := Find(name)
			if !ok {
				t.Fatalf("%s missing from the library", name)
			}
			cfg, err := sc.Build(1, *chaosSeed)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !rep.Check.Pass {
				t.Fatalf("scenario failed its bound: %+v", rep.Check)
			}
			if rep.GossipMerged == 0 {
				t.Fatal("diffusion never merged an entry; gossip was a no-op")
			}
			if rep.GossipBytesPushed == 0 {
				t.Fatal("no gossip payload bytes pushed; counters are dead")
			}
			// Full push would have sent pushed+suppressed bytes every
			// round; the delta must have saved something real.
			if rep.GossipBytesSuppressed == 0 {
				t.Errorf("delta gossip suppressed 0 bytes over %d rounds (pushed %d)",
					rep.GossipRounds, rep.GossipBytesPushed)
			}
			t.Logf("%d rounds: pushed %d bytes, suppressed %d (%.1f%% of full push), %d full syncs",
				rep.GossipRounds, rep.GossipBytesPushed, rep.GossipBytesSuppressed,
				100*float64(rep.GossipBytesSuppressed)/float64(rep.GossipBytesPushed+rep.GossipBytesSuppressed),
				rep.GossipFullSyncs)
		})
	}
}

// TestCheckClassification exercises the checker on a hand-written history.
func TestCheckClassification(t *testing.T) {
	st := func(c uint64) ts.Stamp { return ts.Stamp{Counter: c, Writer: 1} }
	h := History{
		{Seq: 0, Time: 0, Kind: OpWrite, Key: "a", Value: "v0", Stamp: st(1), Full: true},
		{Seq: 1, Time: 0, Kind: OpRead, Key: "a", Value: "v0", Stamp: st(1), Found: true}, // correct
		{Seq: 2, Time: 1, Kind: OpWrite, Key: "a", Value: "v1", Stamp: st(2), Full: true},
		{Seq: 3, Time: 1, Kind: OpRead, Key: "a", Value: "v0", Stamp: st(1), Found: true}, // stale depth 1
		{Seq: 4, Time: 2, Kind: OpWrite, Key: "a", Value: "v2", Stamp: st(3), Full: true},
		{Seq: 5, Time: 2, Kind: OpRead, Key: "a", Value: "forged", Stamp: st(99), Found: true}, // fooled
		{Seq: 6, Time: 3, Kind: OpRead, Key: "a", Found: false},                                // stale depth 3 (⊥ after 3 writes)
		{Seq: 7, Time: 4, Kind: OpRead, Key: "a", Err: "no replies"},                           // unavailable
		{Seq: 8, Time: 5, Kind: OpRead, Key: "b", Found: false},                                // correct (no writes to b)
	}
	res := Check(h, CheckConfig{Mode: register.Benign, Bound: 0.01})
	if res.Correct != 2 || res.Stale != 2 || res.Fooled != 1 || res.Unavailable != 1 {
		t.Fatalf("classification = correct %d stale %d fooled %d unavailable %d, want 2/2/1/1",
			res.Correct, res.Stale, res.Fooled, res.Unavailable)
	}
	if res.StaleDepth[1] != 1 || res.StaleDepth[3] != 1 {
		t.Fatalf("stale depth histogram = %v, want depth 1 and 3 once each", res.StaleDepth)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v, want exactly the fooled benign read", res.Violations)
	}
	if res.Pass {
		t.Fatal("checker passed a history with a hard violation")
	}
	// The same fooled read in masking mode is not a violation, only ε.
	res = Check(h, CheckConfig{Mode: register.Masking, Bound: 1})
	if len(res.Violations) != 0 {
		t.Fatalf("masking-mode violations = %v, want none", res.Violations)
	}
	if !res.Pass {
		t.Fatal("bound 1 must pass without violations")
	}
}

// TestHistoryDiff checks the divergence reporting the determinism test
// relies on.
func TestHistoryDiff(t *testing.T) {
	a := History{{Seq: 0, Kind: OpWrite, Key: "k", Value: "x"}}
	if d := a.Diff(History{{Seq: 0, Kind: OpWrite, Key: "k", Value: "x"}}); d != "" {
		t.Fatalf("identical histories diff: %s", d)
	}
	if d := a.Diff(History{{Seq: 0, Kind: OpWrite, Key: "k", Value: "y"}}); d == "" {
		t.Fatal("divergent value not reported")
	}
	if d := a.Diff(History{}); d == "" {
		t.Fatal("length mismatch not reported")
	}
}

// TestCorruptMessage checks the corruption helper: the mutated message must
// either decode (and differ from the original in at least some runs) or be
// reported undecodable — never panic, never return the original encoding's
// identity for every draw.
func TestCorruptMessage(t *testing.T) {
	msg := wire.WriteRequest{Key: "k", Value: []byte("value"), Stamp: ts.Stamp{Counter: 7, Writer: 1}}
	changed := 0
	for r := uint64(0); r < 200; r++ {
		out, ok := CorruptMessage(msg, splitmix64(r))
		if !ok {
			continue
		}
		if w, isW := out.(wire.WriteRequest); !isW || string(w.Value) != "value" || w.Key != "k" || w.Stamp != msg.Stamp {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("200 corruption draws never changed the message")
	}
}

// TestEquivocatorUnique checks that an equivocator never repeats a pair —
// the property that keeps it below any masking threshold k >= 2.
func TestEquivocatorUnique(t *testing.T) {
	e := &Equivocator{ID: 3}
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		r, err := e.OnRead("k", wire.ReadReply{})
		if err != nil {
			t.Fatal(err)
		}
		key := string(r.Value) + r.Stamp.String()
		if seen[key] {
			t.Fatalf("equivocator repeated pair %q", key)
		}
		seen[key] = true
	}
}

// TestMostSampledDeterministic checks placement stability and size.
func TestMostSampledDeterministic(t *testing.T) {
	sc, _ := Find("masking/colluders")
	cfg, err := sc.Build(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	a := MostSampled(cfg.System, 5, 500, 42)
	b := MostSampled(cfg.System, 5, 500, 42)
	if len(a) != 5 {
		t.Fatalf("MostSampled returned %d ids, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("MostSampled not deterministic: %v vs %v", a, b)
		}
	}
}

// TestPerCellBoundHasTeeth is the per-cell negative test: one cell whose
// measured ε blows its per-cell bound must fail the run even though the
// GLOBAL average stays comfortably inside the same bound. A synthetic
// 4-cell history gives every cell 1000 eligible reads; cell 2 returns ⊥
// for 100 of them (ε=0.10) while the rest are perfect, so the global rate
// is 100/4000 = 0.025 — under the 0.03 bound the global binomial test
// happily accepts.
func TestPerCellBoundHasTeeth(t *testing.T) {
	const cells, readsPerCell, badInCell2 = 4, 1000, 100
	st := func(c uint64) ts.Stamp { return ts.Stamp{Counter: c, Writer: 1} }
	var h History
	seq := 0
	for c := 0; c < cells; c++ {
		key := fmt.Sprintf("cell-key-%d", c)
		h = append(h, Op{Seq: seq, Kind: OpWrite, Key: key, Value: "v", Stamp: st(1), Full: true, Cell: c})
		seq++
		for i := 0; i < readsPerCell; i++ {
			op := Op{Seq: seq, Kind: OpRead, Key: key, Cell: c}
			if c == 2 && i < badInCell2 {
				op.Found = false // stale: ⊥ after a completed full write
			} else {
				op.Found, op.Value, op.Stamp = true, "v", st(1)
			}
			h = append(h, op)
			seq++
		}
	}
	const bound = 0.03
	// Without per-cell accounting the run passes: the global average hides
	// the hot cell.
	global := Check(h, CheckConfig{Mode: register.Benign, Bound: bound})
	if !global.Pass {
		t.Fatalf("global-only check failed (ε=%.4f p=%.3g); the negative test needs a passing average to be meaningful",
			global.EligibleEpsilon, global.PValue)
	}
	// With per-cell accounting, cell 2 must sink the verdict.
	res := Check(h, CheckConfig{Mode: register.Benign, Bound: bound, Cells: cells})
	if len(res.Cells) != cells {
		t.Fatalf("per-cell sections = %d, want %d", len(res.Cells), cells)
	}
	if res.PValue < DefaultAlpha {
		t.Fatalf("global p-value %.3g rejects; the failure should come from the cell section alone", res.PValue)
	}
	for _, cr := range res.Cells {
		want := cr.Cell != 2
		if cr.Pass != want {
			t.Errorf("cell %d pass=%v (ε=%.4f over %d reads, p=%.3g), want pass=%v",
				cr.Cell, cr.Pass, cr.EligibleEpsilon, cr.EligibleReads, cr.PValue, want)
		}
	}
	if got := res.Cells[2].EligibleEpsilon; got < 0.09 || got > 0.11 {
		t.Errorf("cell 2 measured ε=%.4f, want ~0.10", got)
	}
	if res.Pass {
		t.Fatal("checker passed a run in which cell 2 exceeds its per-cell bound (global average masked it)")
	}
}
