package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"pqs/internal/config"
	"pqs/internal/diffusion"
	"pqs/internal/quorum"
	"pqs/internal/register"
	"pqs/internal/replica"
	"pqs/internal/sim"
	"pqs/internal/sv"
	"pqs/internal/transport"
	"pqs/internal/ts"
	"pqs/internal/vtime"
)

// Config drives one chaos run.
//
// The access-tuning knobs live canonically on the embedded config.Tuning
// block (which also brought HedgeDeviations, W and ReadRepair to chaos
// runs — knobs the flat era never exposed here) and the shape knobs on
// config.Topology; the flat fields of the same names below are deprecated
// aliases that forward, with the embedded block winning when both are set.
// See the README section "Configuring access tuning".
type Config struct {
	// Tuning is the canonical access-tuning block (register.Options knobs).
	config.Tuning
	// Topology is the canonical shape block: Cells/CellVnodes, Transport
	// and the latency model. Topology.N is ignored (the universe size
	// comes from System.N()).
	config.Topology

	// Name labels the run in reports.
	Name string
	// System is the quorum system under test.
	System quorum.System
	// Mode selects the access protocol; K is the masking threshold.
	Mode register.Mode
	K    int
	// Ops is the number of write-then-read pairs. Each pair writes a fresh
	// version of a key from a rotating set of Keys keys (default 8) and
	// reads it back, so staleness has measurable depth (the PBS-style
	// distribution in CheckResult.StaleDepth).
	Ops int
	// Keys is the rotating key-set size (default 8, clamped to Ops).
	Keys int
	// ReadLag, when positive, makes the read of pair t target the key
	// written at pair t-ReadLag (clamped at 0) instead of the key just
	// written — so schedule events (churn waves in particular) land
	// *between* a key's last write and its read, giving timed-quorum runs
	// reads with genuine churn depth D > 0. Use ReadLag < Keys, or the
	// lagged key will have been overwritten in the meantime. 0 keeps the
	// classic write-then-read-same-key pairing.
	ReadLag int
	// Seed fixes every random choice of the run. Two runs with equal
	// Config produce equal Histories.
	Seed int64
	// Schedule is the fault script, applied at pair boundaries.
	Schedule Schedule
	// Bound is the theorem's per-read ε for the system under test; Alpha
	// the checker confidence (see CheckConfig).
	Bound float64
	Alpha float64
	// Timed enables the timed-quorum verdict: ops record the membership-
	// view version (bumped by Leave/Join actions), and the checker buckets
	// eligible reads by churn depth D, allowing each bucket the time-
	// decayed bound Base + ε(D) - ε(0) with Base = Bound (see
	// CheckConfig.Timed). The natural pairing is a churn schedule plus
	// ReadLag, so reads actually observe D > 0.
	Timed bool

	// Virtual runs the whole scenario under a vtime.SimClock: simulated
	// latency, hedge timers and slow-lorris delays execute in virtual time
	// — instantly, and deterministically enough to join the byte-for-byte
	// replay contract that previously had to exclude hedged runs.
	Virtual bool
	// Transport selects the data plane: sim.TransportMem (default) drives
	// client traffic through the MemNetwork with the chaos engine as its
	// link hook; sim.TransportTCPVirtual drives it through the REAL TCP
	// stack — framing, binary codec, group-commit flusher, worker pool —
	// over virtual-time byte streams, with the schedule's faults
	// reimplemented at the byte-stream layer (drops reset connections,
	// corruption flips bits in framed chunks, blocks refuse dials and
	// reset streams; duplication is a deliberate no-op — TCP sequence
	// numbers preclude it). Implies Virtual.
	Transport string
	// WireCodec selects the TCP serialization under tcp-virtual (zero value
	// = CodecBinary, the production default; CodecGob exercises the legacy
	// framing). Ignored on the mem plane.
	WireCodec transport.Codec
	// Lifecycle configures connection pooling, redial backoff and the
	// circuit breaker on the tcp-virtual client (zero value = legacy
	// single-connection behavior). The register client detects the breaker
	// through the HealthReporter interface, so an open breaker fast-fails
	// quorum members at dispatch and spares promote at t=0. Ignored on the
	// mem plane.
	Lifecycle transport.LifecycleConfig
	// LatencyMin and LatencyMax, when LatencyMax > 0, give every call a
	// uniform simulated latency drawn deterministically from the seed.
	// Meaningful mainly with Virtual (wall runs would really sleep).
	LatencyMin, LatencyMax time.Duration
	// Spares, HedgeDelay, AdaptiveHedge and EagerRead enable the client's
	// straggler-tolerant access path for the run (register.Options),
	// putting hedge timers inside the chaos determinism contract.
	//
	// Deprecated: set the embedded Tuning block; these flat aliases
	// forward (as do the flat Transport/LatencyMin/LatencyMax/Cells, for
	// the Topology block).
	Spares        int
	HedgeDelay    time.Duration
	AdaptiveHedge bool
	EagerRead     bool

	// Cells, when > 1, runs the scenario against a multi-cell client: the
	// cluster holds Cells*System.N() replicas (cell i owning servers
	// [i*n, (i+1)*n)), every key routes to one cell by consistent hashing,
	// and the checker enforces the ε bound per cell as well as globally
	// (see CheckConfig.Cells). Schedule actions keep addressing global
	// server ids, so scenarios can partition between cells or crash a
	// whole cell.
	Cells int

	// GossipEvery, when positive, runs one synchronized diffusion round
	// (anti-entropy push-pull over the current membership) after every
	// GossipEvery-th write/read pair — lazy propagation running
	// concurrently with client traffic at operation granularity, which
	// keeps the interleaving deterministic. GossipFanout is the peers
	// contacted per engine per round (default 1).
	GossipEvery  int
	GossipFanout int
}

// Report is the outcome of a chaos run.
type Report struct {
	Name     string `json:"name"`
	Seed     int64  `json:"seed"`
	System   string `json:"system"`
	Mode     string `json:"mode"`
	Ops      int    `json:"ops"`
	Schedule string `json:"schedule,omitempty"`
	// Transport is the data plane the run used ("mem" or "tcp-virtual").
	Transport string      `json:"transport"`
	Check     CheckResult `json:"check"`
	// Virtual and SimSeconds report virtual-time runs: the simulated
	// duration the scenario covered (wall time spent is the caller's to
	// measure — the run itself never reads the wall clock).
	Virtual    bool    `json:"virtual,omitempty"`
	SimSeconds float64 `json:"sim_seconds,omitempty"`
	// GossipRounds and GossipMerged summarize the diffusion group when
	// Config.GossipEvery is set: synchronized rounds run and entries
	// adopted from peers across all engines.
	GossipRounds uint64 `json:"gossip_rounds,omitempty"`
	GossipMerged uint64 `json:"gossip_merged,omitempty"`
	// The delta-gossip byte accounting, summed over all engines:
	// BytesPushed is the binary payload volume the watermark deltas
	// actually carried, BytesSuppressed what the old full-snapshot pushes
	// would have added on top, and FullSyncs the pushes that fell back to
	// full state (first contact, post-churn rejoin, watermark regression).
	GossipBytesPushed     uint64 `json:"gossip_bytes_pushed,omitempty"`
	GossipBytesSuppressed uint64 `json:"gossip_bytes_suppressed,omitempty"`
	GossipFullSyncs       uint64 `json:"gossip_full_syncs,omitempty"`
	// Lifecycle snapshots the main client's connection-lifecycle counters
	// when Config.Lifecycle enables any feature under tcp-virtual. Counter
	// totals are aggregates, not part of the byte-for-byte determinism
	// contract (that contract covers History only).
	Lifecycle *LifecycleReport `json:"lifecycle,omitempty"`
	// StormCalls and StormErrors aggregate the side traffic of every Storm
	// action the schedule fired (dial-storm scenarios); StormCoalesced and
	// StormFastFails are the storm fleet's own dial-coalescing and
	// backoff-fast-fail counts, collected before the fleet is torn down.
	// Aggregates only; storm operations never enter History.
	StormCalls     uint64 `json:"storm_calls,omitempty"`
	StormErrors    uint64 `json:"storm_errors,omitempty"`
	StormCoalesced uint64 `json:"storm_dials_coalesced,omitempty"`
	StormFastFails uint64 `json:"storm_backoff_fast_fails,omitempty"`
	// History is the full operation record (omitted from JSON reports;
	// replay the seed to regenerate it).
	History History `json:"-"`
}

// Run executes cfg: it stands up a cluster with a deterministic fault
// engine, plays the schedule while driving write-then-read pairs, records
// every operation, and checks the resulting history. The returned report's
// Check field carries the verdict; Run itself errors only on setup or
// harness failures, never on consistency violations. With cfg.Virtual the
// whole scenario executes inside a vtime.SimClock scheduler.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.resolved()
	if cfg.Transport == sim.TransportTCPVirtual {
		// The byte-stream data plane schedules every chunk on the clock;
		// running it against the wall clock would really wait out the
		// latency, so tcp-virtual implies a virtual run.
		cfg.Virtual = true
	}
	if !cfg.Virtual {
		return run(cfg, nil)
	}
	sc := vtime.NewSimClock()
	var rep *Report
	var err error
	sc.Run(func() {
		rep, err = run(cfg, sc)
	})
	if rep != nil {
		rep.Virtual = true
		rep.SimSeconds = sc.Elapsed().Seconds()
	}
	return rep, err
}

// resolved returns cfg with the canonical Tuning/Topology blocks resolved
// against the deprecated flat aliases, and the flat fields rewritten to
// the resolved values so the run body (and anything reading the config
// back) sees one consistent spelling. A config written entirely in either
// spelling resolves to the same values — the bit-for-bit compat contract.
func (cfg Config) resolved() Config {
	tun := cfg.Tuning.Or(config.Tuning{
		Spares:        cfg.Spares,
		HedgeDelay:    cfg.HedgeDelay,
		AdaptiveHedge: cfg.AdaptiveHedge,
		EagerRead:     cfg.EagerRead,
	})
	topo := cfg.Topology.Or(config.Topology{
		Cells:      cfg.Cells,
		Transport:  cfg.Transport,
		LatencyMin: cfg.LatencyMin,
		LatencyMax: cfg.LatencyMax,
	})
	cfg.Tuning, cfg.Topology = tun, topo
	cfg.Spares, cfg.HedgeDelay, cfg.AdaptiveHedge, cfg.EagerRead = tun.Spares, tun.HedgeDelay, tun.AdaptiveHedge, tun.EagerRead
	cfg.Cells, cfg.Transport = topo.Cells, topo.Transport
	cfg.LatencyMin, cfg.LatencyMax = topo.LatencyMin, topo.LatencyMax
	return cfg
}

// run is the scenario body, on clk (nil = wall).
func run(cfg Config, clk *vtime.SimClock) (*Report, error) {
	if cfg.System == nil {
		return nil, errors.New("chaos: Config.System is required")
	}
	if cfg.Ops <= 0 {
		return nil, errors.New("chaos: Config.Ops must be positive")
	}
	keys := cfg.Keys
	if keys <= 0 {
		keys = 8
	}
	if keys > cfg.Ops {
		keys = cfg.Ops
	}

	cells := cfg.Cells
	if cells < 1 {
		cells = 1
	}

	var netClk vtime.Clock // avoid a typed-nil *SimClock inside the interface
	if clk != nil {
		netClk = clk
	}
	cluster := sim.NewClusterCfg(config.Cluster{Cells: cells, N: cfg.System.N(), Seed: cfg.Seed, Clock: netClk})
	var (
		eng           *Engine
		tc            *sim.TCPCluster
		callTransport transport.Transport
	)
	switch cfg.Transport {
	case "", sim.TransportMem:
		// The chaos engine is the MemNetwork's link hook: message-level
		// fault injection.
		eng = NewEngine(cfg.Seed + 0x9E3779B9)
		cluster.Net.SetLinkHook(eng)
		if cfg.LatencyMax > 0 {
			cluster.Net.SetLatency(cfg.LatencyMin, cfg.LatencyMax)
		}
		callTransport = cluster.Net
	case sim.TransportTCPVirtual:
		// The fault plane is the byte-stream network itself: the schedule's
		// actions reconfigure it, and every framed chunk consults it.
		var err error
		tc, err = sim.NewTCPClusterOpts(cluster, clk, cfg.Seed+0x9E3779B9, sim.TCPClusterOptions{
			Codec:     cfg.WireCodec,
			Lifecycle: cfg.Lifecycle,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: tcp cluster: %w", err)
		}
		defer tc.Close()
		if cfg.LatencyMax > 0 {
			tc.Net.SetLatency(cfg.LatencyMin, cfg.LatencyMax)
		}
		callTransport = tc.Client
	default:
		return nil, fmt.Errorf("chaos: unknown Transport %q", cfg.Transport)
	}

	opts := register.Options{
		System:          cfg.System,
		Mode:            cfg.Mode,
		K:               cfg.K,
		Transport:       callTransport,
		Rand:            rand.New(rand.NewSource(cfg.Seed + 1)),
		Clock:           ts.NewClock(1),
		Spares:          cfg.Spares,
		HedgeDelay:      cfg.HedgeDelay,
		AdaptiveHedge:   cfg.AdaptiveHedge,
		HedgeDeviations: cfg.Tuning.HedgeDeviations,
		EagerRead:       cfg.EagerRead,
		W:               cfg.Tuning.W,
		ReadRepair:      cfg.Tuning.ReadRepair,
		Cells:           cfg.Cells,
		RingVnodes:      cfg.Topology.CellVnodes,
	}
	if clk != nil {
		opts.Time = clk
	}
	if cfg.Mode == register.Dissemination {
		kp, err := sv.GenerateKey(sim.SeededReader(cfg.Seed + 2))
		if err != nil {
			return nil, fmt.Errorf("chaos: generate key: %w", err)
		}
		reg := sv.NewRegistry()
		reg.Add(1, kp.Public)
		opts.Signer = kp.Private
		opts.Registry = reg
	}
	client, err := register.NewClient(opts)
	if err != nil {
		return nil, fmt.Errorf("chaos: client: %w", err)
	}

	rt := &runtime{
		cluster:   cluster,
		eng:       eng,
		tcp:       tc,
		byID:      make(map[quorum.ServerID]*replica.Replica),
		clock:     vtime.Or(netClk),
		lifecycle: cfg.Lifecycle,
	}
	for _, r := range cluster.Replicas {
		rt.byID[r.ID()] = r
	}
	if cfg.GossipEvery > 0 {
		fanout := cfg.GossipFanout
		if fanout <= 0 {
			fanout = 1
		}
		gossipTr := transport.Transport(cluster.Net)
		if tc != nil {
			// Gossip rides the TCP data plane too, through per-source
			// clients so the byte-level fault plane sees true
			// server-to-server links.
			gossipTr = tc.GossipTransport()
		}
		group, err := diffusion.NewGroupClock(cluster.Replicas, gossipTr, fanout, nil, cfg.Seed+2, netClk)
		if err != nil {
			return nil, fmt.Errorf("chaos: diffusion group: %w", err)
		}
		rt.gossip = group
	}
	events := make([]Event, len(cfg.Schedule))
	copy(events, cfg.Schedule)
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })

	ctx := context.Background()
	hist := make(History, 0, 2*cfg.Ops)
	var gossipRounds uint64
	seq := 0
	next := 0
	for t := 0; t < cfg.Ops; t++ {
		for next < len(events) && events[next].T <= t {
			for _, act := range events[next].Acts {
				act.apply(rt)
			}
			next++
		}
		if rt.gossip != nil && t > 0 && t%cfg.GossipEvery == 0 {
			// Diffusion interleaves with client traffic at pair
			// boundaries: deterministic, and adversarial enough — the
			// round runs under whatever partition/fault state the
			// schedule has currently installed.
			if err := rt.gossip.Step(ctx); err != nil {
				return nil, fmt.Errorf("chaos: gossip round at t=%d: %w", t, err)
			}
			gossipRounds++
		}
		key := fmt.Sprintf("k%d", t%keys)
		value := fmt.Sprintf("v%d", t)
		opCell := client.CellFor(key)
		view := rt.view

		wr, werr := client.Write(ctx, key, []byte(value))
		wop := Op{
			Seq: seq, Time: t, Kind: OpWrite, Key: key, Value: value,
			Stamp:  wr.Stamp,
			Full:   werr == nil && len(wr.Acked) == len(wr.Quorum),
			Quorum: wr.Quorum,
			Cell:   opCell,
			View:   view,
		}
		if werr != nil {
			wop.Err = werr.Error()
		}
		hist = append(hist, wop)
		seq++

		// With ReadLag the read targets the key written ReadLag pairs ago,
		// so churn events since that write give the read genuine depth D.
		readKey, readCell := key, opCell
		if cfg.ReadLag > 0 {
			lagT := t - cfg.ReadLag
			if lagT < 0 {
				lagT = 0
			}
			readKey = fmt.Sprintf("k%d", lagT%keys)
			readCell = client.CellFor(readKey)
		}
		rr, rerr := client.Read(ctx, readKey)
		rop := Op{
			Seq: seq, Time: t, Kind: OpRead, Key: readKey,
			Value: string(rr.Value), Stamp: rr.Stamp, Found: rr.Found,
			Quorum: rr.Quorum,
			Cell:   readCell,
			View:   view,
		}
		if rerr != nil {
			rop.Err = rerr.Error()
		}
		hist = append(hist, rop)
		seq++
	}
	client.WaitDrained()

	transportName := cfg.Transport
	if transportName == "" {
		transportName = sim.TransportMem
	}
	checkCfg := CheckConfig{Mode: cfg.Mode, Bound: cfg.Bound, Alpha: cfg.Alpha, Cells: cfg.Cells}
	if cfg.Timed {
		q := cfg.System.QuorumSize()
		checkCfg.Timed = &TimedBound{N: cfg.System.N(), QW: q, QR: q, Base: cfg.Bound}
	}
	rep := &Report{
		Name:      cfg.Name,
		Seed:      cfg.Seed,
		System:    cfg.System.Name(),
		Mode:      cfg.Mode.String(),
		Ops:       cfg.Ops,
		Schedule:  cfg.Schedule.String(),
		Transport: transportName,
		History:   hist,
		Check:     Check(hist, checkCfg),
	}
	if rt.gossip != nil {
		rep.GossipRounds = gossipRounds
		for _, e := range rt.gossip.Engines() {
			st := e.Stats()
			rep.GossipMerged += st.Merged
			rep.GossipBytesPushed += st.BytesPushed
			rep.GossipBytesSuppressed += st.BytesSuppressed
			rep.GossipFullSyncs += st.FullSyncs
		}
	}
	if tc != nil && cfg.Lifecycle.Enabled() {
		st := tc.Client.Stats()
		rep.Lifecycle = &LifecycleReport{
			Conns:            st.Conns,
			DialsCoalesced:   st.DialsCoalesced,
			BackoffFastFails: st.BackoffFastFails,
			BreakerTrips:     st.BreakerTrips,
			BreakerHalfOpens: st.BreakerHalfOpens,
			BreakerCloses:    st.BreakerCloses,
			BreakerFastFails: st.BreakerFastFails,
			ConnsReaped:      st.ConnsReaped,
			ProbesSent:       st.ProbesSent,
		}
	}
	rep.StormCalls = rt.stormCalls.Load()
	rep.StormErrors = rt.stormErrors.Load()
	rep.StormCoalesced = rt.stormCoalesced.Load()
	rep.StormFastFails = rt.stormFastFails.Load()
	return rep, nil
}

// LifecycleReport is the connection-lifecycle slice of the tcp-virtual
// client's transport counters, attached to a Report when Config.Lifecycle
// enables any feature. See transport.TCPStats for field semantics.
type LifecycleReport struct {
	Conns            uint64 `json:"conns"`
	DialsCoalesced   uint64 `json:"dials_coalesced"`
	BackoffFastFails uint64 `json:"backoff_fast_fails"`
	BreakerTrips     uint64 `json:"breaker_trips"`
	BreakerHalfOpens uint64 `json:"breaker_half_opens"`
	BreakerCloses    uint64 `json:"breaker_closes"`
	BreakerFastFails uint64 `json:"breaker_fast_fails"`
	ConnsReaped      uint64 `json:"conns_reaped"`
	ProbesSent       uint64 `json:"probes_sent"`
}
