package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"pqs/internal/quorum"
	"pqs/internal/register"
	"pqs/internal/replica"
	"pqs/internal/sim"
	"pqs/internal/sv"
	"pqs/internal/ts"
)

// Config drives one chaos run.
type Config struct {
	// Name labels the run in reports.
	Name string
	// System is the quorum system under test.
	System quorum.System
	// Mode selects the access protocol; K is the masking threshold.
	Mode register.Mode
	K    int
	// Ops is the number of write-then-read pairs. Each pair writes a fresh
	// version of a key from a rotating set of Keys keys (default 8) and
	// reads it back, so staleness has measurable depth (the PBS-style
	// distribution in CheckResult.StaleDepth).
	Ops int
	// Keys is the rotating key-set size (default 8, clamped to Ops).
	Keys int
	// Seed fixes every random choice of the run. Two runs with equal
	// Config produce equal Histories.
	Seed int64
	// Schedule is the fault script, applied at pair boundaries.
	Schedule Schedule
	// Bound is the theorem's per-read ε for the system under test; Alpha
	// the checker confidence (see CheckConfig).
	Bound float64
	Alpha float64
}

// Report is the outcome of a chaos run.
type Report struct {
	Name     string      `json:"name"`
	Seed     int64       `json:"seed"`
	System   string      `json:"system"`
	Mode     string      `json:"mode"`
	Ops      int         `json:"ops"`
	Schedule string      `json:"schedule,omitempty"`
	Check    CheckResult `json:"check"`
	// History is the full operation record (omitted from JSON reports;
	// replay the seed to regenerate it).
	History History `json:"-"`
}

// Run executes cfg: it stands up a cluster with a deterministic fault
// engine, plays the schedule while driving write-then-read pairs, records
// every operation, and checks the resulting history. The returned report's
// Check field carries the verdict; Run itself errors only on setup or
// harness failures, never on consistency violations.
func Run(cfg Config) (*Report, error) {
	if cfg.System == nil {
		return nil, errors.New("chaos: Config.System is required")
	}
	if cfg.Ops <= 0 {
		return nil, errors.New("chaos: Config.Ops must be positive")
	}
	keys := cfg.Keys
	if keys <= 0 {
		keys = 8
	}
	if keys > cfg.Ops {
		keys = cfg.Ops
	}

	cluster := sim.NewCluster(cfg.System.N(), cfg.Seed)
	eng := NewEngine(cfg.Seed + 0x9E3779B9)
	cluster.Net.SetLinkHook(eng)

	opts := register.Options{
		System:    cfg.System,
		Mode:      cfg.Mode,
		K:         cfg.K,
		Transport: cluster.Net,
		Rand:      rand.New(rand.NewSource(cfg.Seed + 1)),
		Clock:     ts.NewClock(1),
	}
	if cfg.Mode == register.Dissemination {
		kp, err := sv.GenerateKey(sim.SeededReader(cfg.Seed + 2))
		if err != nil {
			return nil, fmt.Errorf("chaos: generate key: %w", err)
		}
		reg := sv.NewRegistry()
		reg.Add(1, kp.Public)
		opts.Signer = kp.Private
		opts.Registry = reg
	}
	client, err := register.NewClient(opts)
	if err != nil {
		return nil, fmt.Errorf("chaos: client: %w", err)
	}

	rt := &runtime{cluster: cluster, eng: eng, byID: make(map[quorum.ServerID]*replica.Replica)}
	for _, r := range cluster.Replicas {
		rt.byID[r.ID()] = r
	}
	events := make([]Event, len(cfg.Schedule))
	copy(events, cfg.Schedule)
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })

	ctx := context.Background()
	hist := make(History, 0, 2*cfg.Ops)
	seq := 0
	next := 0
	for t := 0; t < cfg.Ops; t++ {
		for next < len(events) && events[next].T <= t {
			for _, act := range events[next].Acts {
				act.apply(rt)
			}
			next++
		}
		key := fmt.Sprintf("k%d", t%keys)
		value := fmt.Sprintf("v%d", t)

		wr, werr := client.Write(ctx, key, []byte(value))
		wop := Op{
			Seq: seq, Time: t, Kind: OpWrite, Key: key, Value: value,
			Stamp:  wr.Stamp,
			Full:   werr == nil && len(wr.Acked) == len(wr.Quorum),
			Quorum: wr.Quorum,
		}
		if werr != nil {
			wop.Err = werr.Error()
		}
		hist = append(hist, wop)
		seq++

		rr, rerr := client.Read(ctx, key)
		rop := Op{
			Seq: seq, Time: t, Kind: OpRead, Key: key,
			Value: string(rr.Value), Stamp: rr.Stamp, Found: rr.Found,
			Quorum: rr.Quorum,
		}
		if rerr != nil {
			rop.Err = rerr.Error()
		}
		hist = append(hist, rop)
		seq++
	}
	client.WaitDrained()

	rep := &Report{
		Name:     cfg.Name,
		Seed:     cfg.Seed,
		System:   cfg.System.Name(),
		Mode:     cfg.Mode.String(),
		Ops:      cfg.Ops,
		Schedule: cfg.Schedule.String(),
		History:  hist,
		Check:    Check(hist, CheckConfig{Mode: cfg.Mode, Bound: cfg.Bound, Alpha: cfg.Alpha}),
	}
	return rep, nil
}
