package chaos

// Chaos over the REAL data plane: the same scenario matrix, replayed
// through the TCP stack (framing, binary codec, group-commit flusher,
// worker pool) over virtual-time byte streams. Two properties are gated:
// every scenario still passes its theorem bound when the faults act on
// framed bytes instead of messages, and every run replays byte-for-byte
// from its seed — the CI chaos-tcp job runs exactly these.

import (
	"testing"

	"pqs/internal/sim"
)

// tcpConfig rebuilds a scenario's config for the tcp-virtual data plane.
func tcpConfig(t *testing.T, sc Scenario, scale int, seed int64) Config {
	t.Helper()
	cfg, err := sc.Build(scale, seed)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	cfg.Transport = sim.TransportTCPVirtual
	return cfg
}

// TestChaosScenariosTCPVirtual runs the full shipped matrix over the
// virtual TCP data plane: every scenario must pass its theorem bound with
// the fault schedule reimplemented at the byte-stream layer.
func TestChaosScenariosTCPVirtual(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(tcpConfig(t, sc, *chaosScale, *chaosSeed))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !rep.Virtual {
				t.Fatalf("tcp-virtual run did not report Virtual")
			}
			if rep.Transport != sim.TransportTCPVirtual {
				t.Fatalf("report transport %q", rep.Transport)
			}
			c := rep.Check
			t.Logf("%s[tcp]: reads=%d correct=%d stale=%d fooled=%d eligible=%d/%d ε=%.5f bound=%.3g p=%.3g sim=%.2fs",
				sc.Name, c.Reads, c.Correct, c.Stale, c.Fooled,
				c.EligibleBad, c.EligibleReads, c.EligibleEpsilon, c.Bound, c.PValue, rep.SimSeconds)
			for _, v := range c.Violations {
				t.Errorf("violation: %s", v)
			}
			if !c.Pass {
				t.Errorf("scenario %s failed its bound over tcp-virtual: eligible ε=%.5f over %d reads vs bound %.3g (p=%.3g); replay with -chaos.seed=%d",
					sc.Name, c.EligibleEpsilon, c.EligibleReads, c.Bound, c.PValue, rep.Seed)
			}
		})
	}
}

// TestChaosDeterminismTCPVirtual is the replay regression for the real
// wire path: two runs of every scenario over tcp-virtual from one seed
// must produce byte-identical histories — chunk latency draws, connection
// resets, hedge timers and all.
func TestChaosDeterminismTCPVirtual(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			a, err := Run(tcpConfig(t, sc, 1, *chaosSeed))
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := Run(tcpConfig(t, sc, 1, *chaosSeed))
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if d := a.History.Diff(b.History); d != "" {
				t.Fatalf("seed %d did not replay over tcp-virtual:\n%s", *chaosSeed, d)
			}
			if a.Check.Pass != b.Check.Pass || a.Check.Epsilon != b.Check.Epsilon {
				t.Fatalf("check verdicts diverge for identical histories")
			}
		})
	}
}

// TestNegativeScenarioFailsTCPVirtual proves the checker keeps its teeth
// over the real wire path too.
func TestNegativeScenarioFailsTCPVirtual(t *testing.T) {
	cfg, err := NegativeConfig(1, *chaosSeed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = sim.TransportTCPVirtual
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Check.Pass {
		t.Fatalf("negative scenario passed over tcp-virtual (ε=%.5f vs bound %.3g); the checker lost its teeth",
			rep.Check.EligibleEpsilon, rep.Check.Bound)
	}
}
