// Package chaos is a deterministic fault-schedule engine for the simulated
// network: it validates the paper's probabilistic guarantees (Theorems 3.2,
// 4.2 and 5.2) against *adversarial* schedules rather than the i.i.d. noise
// the sim package injects.
//
// The package has four pieces:
//
//   - Engine, a transport.LinkHook whose per-link fault decisions (drop,
//     duplicate, reorder, corrupt, asymmetric blocks) are pure functions of
//     the run seed and a per-link call counter, so every run replays
//     byte-for-byte from its seed;
//   - an adversary-replica library (adversary.go): equivocating replicas,
//     stale echoes, slow lorrises, and colluding forger sets that can target
//     the most-sampled servers of a strategy;
//   - a scenario DSL (schedule.go): Schedule{At(40, Crash(1, 2)),
//     At(80, Heal())} applied at client-operation boundaries, with a library
//     of named scenarios (scenarios.go);
//   - Run (run.go), which drives write-then-read operations against a
//     sim.Cluster under a schedule, records every operation into a History,
//     and hands it to the consistency checker (history.go), which computes
//     an empirical ε and a PBS-style staleness distribution and fails when
//     ε exceeds the configured theorem bound at the configured confidence.
//
// Determinism contract: operations are issued sequentially, every random
// choice (quorum sampling, fault decisions, adversary replies) is derived
// from the run seed through per-link or per-replica counters, and no
// decision depends on reply arrival order. Wall-clock time never enters a
// decision, so the recorded History is identical across runs — the
// determinism regression test locks this in.
package chaos

import (
	"sync"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/transport"
	"pqs/internal/wire"
)

// Any is a wildcard endpoint for Block/Unblock: Block(Any, to) severs every
// inbound link of to, Block(from, Any) every outbound link of from.
const Any quorum.ServerID = -2

// The two fault planes must agree on the wildcard value, since block
// actions pass it through to either verbatim; the index is out of range
// at compile time for ANY nonzero difference.
var _ = [1]struct{}{}[Any-transport.Anyone]

// linkKey identifies one directed link. Clients appear as
// transport.ClientSource.
type linkKey struct{ from, to quorum.ServerID }

// Engine is the deterministic per-link fault injector. Install it with
// MemNetwork.SetLinkHook; drive it through the schedule actions or the
// setter methods. All methods are safe for concurrent use.
//
// Every decision is drawn from splitmix64(seed, link, per-link sequence
// number): two runs that issue the same call sequence per link — which the
// Run harness guarantees by issuing operations sequentially — observe the
// same faults in the same places.
type Engine struct {
	seed uint64

	mu         sync.Mutex
	seq        map[linkKey]uint64
	blocked    map[linkKey]bool
	dropP      float64
	dupP       float64
	corruptP   float64
	reorderMax time.Duration
}

// NewEngine returns an engine whose fault pattern is fixed by seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		seed:    uint64(seed),
		seq:     make(map[linkKey]uint64),
		blocked: make(map[linkKey]bool),
	}
}

// splitmix64 is the standard 64-bit finalizer (same as the transport
// package's); it decorrelates the per-call decision words.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unit maps a decision word to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// SetDrop sets the per-call loss probability applied by the engine
// (deterministically, unlike MemNetwork.SetDropProb's legacy path it
// subsumes in chaos runs).
func (e *Engine) SetDrop(p float64) { e.mu.Lock(); e.dropP = p; e.mu.Unlock() }

// SetDuplicate sets the probability that a call is delivered twice.
func (e *Engine) SetDuplicate(p float64) { e.mu.Lock(); e.dupP = p; e.mu.Unlock() }

// SetCorrupt sets the probability that a call's message is re-encoded with
// a flipped bit (frame corruption). Messages that no longer decode are
// dropped, matching the TCP transport's treatment of a corrupt stream;
// messages that still decode are delivered corrupted, exercising the
// protocol's end-to-end defenses (signatures, thresholds).
func (e *Engine) SetCorrupt(p float64) { e.mu.Lock(); e.corruptP = p; e.mu.Unlock() }

// SetReorder sets the maximum extra delivery delay injected per call
// (jitter). Under the Run harness — one outstanding call per link — this
// shuffles reply arrival order across an operation's access set rather
// than overtaking messages on a single link; true per-link overtaking
// additionally needs concurrent traffic on the link (e.g. concurrent
// clients sharing a MemNetwork). Either way no recorded decision may
// depend on the resulting timing, which the determinism tests enforce.
func (e *Engine) SetReorder(d time.Duration) { e.mu.Lock(); e.reorderMax = d; e.mu.Unlock() }

// Block severs the directed link from→to: calls on it fail with
// ErrDropped. Either endpoint may be Any (wildcard), and from may be
// transport.ClientSource to cut clients off a server while leaving
// server-to-server traffic (gossip) intact — an asymmetric partition no
// partition-group model can express.
func (e *Engine) Block(from, to quorum.ServerID) {
	e.mu.Lock()
	e.blocked[linkKey{from, to}] = true
	e.mu.Unlock()
}

// Unblock restores the directed link from→to (exact key match with a prior
// Block call).
func (e *Engine) Unblock(from, to quorum.ServerID) {
	e.mu.Lock()
	delete(e.blocked, linkKey{from, to})
	e.mu.Unlock()
}

// Heal removes every block and zeroes every fault probability.
func (e *Engine) Heal() {
	e.mu.Lock()
	e.blocked = make(map[linkKey]bool)
	e.dropP, e.dupP, e.corruptP, e.reorderMax = 0, 0, 0, 0
	e.mu.Unlock()
}

// FilterCall implements transport.LinkHook.
func (e *Engine) FilterCall(from, to quorum.ServerID, req any) transport.CallFault {
	key := linkKey{from, to}
	e.mu.Lock()
	if e.blocked[key] || e.blocked[linkKey{Any, to}] || e.blocked[linkKey{from, Any}] {
		e.mu.Unlock()
		return transport.CallFault{Drop: true}
	}
	e.seq[key]++
	seq := e.seq[key]
	dropP, dupP, corruptP, reorderMax := e.dropP, e.dupP, e.corruptP, e.reorderMax
	e.mu.Unlock()

	if dropP == 0 && dupP == 0 && corruptP == 0 && reorderMax == 0 {
		return transport.CallFault{}
	}
	// One decision word per call, sub-draws per fault class, all derived
	// from (seed, link, seq) only.
	base := splitmix64(e.seed ^ uint64(from+3)<<40 ^ uint64(to+3)<<20 ^ seq)
	var fault transport.CallFault
	if dropP > 0 && unit(splitmix64(base^0x01)) < dropP {
		fault.Drop = true
		return fault
	}
	if dupP > 0 && unit(splitmix64(base^0x02)) < dupP {
		fault.Duplicate = true
	}
	if reorderMax > 0 {
		fault.Delay = time.Duration(unit(splitmix64(base^0x03)) * float64(reorderMax))
	}
	if corruptP > 0 && unit(splitmix64(base^0x04)) < corruptP {
		if corrupted, ok := CorruptMessage(req, splitmix64(base^0x05)); ok {
			fault.ReplaceReq = corrupted
		} else {
			fault.Drop = true // frame no longer decodes: the stream is lost
		}
	}
	return fault
}

var _ transport.LinkHook = (*Engine)(nil)

// CorruptMessage re-encodes msg with the binary wire codec, flips one bit
// chosen by r, and decodes the result. It returns (corrupted, true) when
// the mutated frame still decodes to a message, and (nil, false) when the
// mutation broke the frame (the caller should treat the call as lost) or
// the message is not a wire type the codec carries.
func CorruptMessage(msg any, r uint64) (any, bool) {
	buf, err := wire.AppendMessage(nil, msg)
	if err != nil || len(buf) == 0 {
		return nil, false
	}
	i := int(r % uint64(len(buf)))
	buf[i] ^= byte(1 << ((r >> 32) % 8))
	out, rest, err := wire.DecodeMessage(buf)
	if err != nil || len(rest) != 0 {
		return nil, false
	}
	return out, true
}
