// The scenario DSL: a Schedule is a list of events fired at logical times
// (write/read pair indices), each carrying actions that mutate the network,
// the membership, or replica behaviors. Because actions fire at operation
// boundaries and contain no randomness of their own, a schedule replays
// identically from the run seed.
package chaos

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"pqs/internal/diffusion"
	"pqs/internal/quorum"
	"pqs/internal/replica"
	"pqs/internal/sim"
	"pqs/internal/transport"
	"pqs/internal/vtime"
)

// Action is one step of a fault schedule.
type Action interface {
	apply(rt *runtime)
	String() string
}

// Event fires one or more actions at logical time T (before the T-th
// write/read pair runs).
type Event struct {
	T    int
	Acts []Action
}

// At builds an event: At(100, Partition(...), Drop(0.1)).
func At(t int, acts ...Action) Event { return Event{T: t, Acts: acts} }

// Schedule is an ordered fault script. Events may be listed in any order;
// Run sorts them by time (stable, so same-time events fire in listing
// order).
type Schedule []Event

// String renders the schedule for reports.
func (s Schedule) String() string {
	var b strings.Builder
	for i, ev := range s {
		if i > 0 {
			b.WriteString("; ")
		}
		names := make([]string, len(ev.Acts))
		for j, a := range ev.Acts {
			names[j] = a.String()
		}
		fmt.Fprintf(&b, "@%d %s", ev.T, strings.Join(names, ","))
	}
	return b.String()
}

// runtime is the mutable state actions operate on. Exactly one fault plane
// is live: eng (message-level, on the MemNetwork) for mem runs, tcp (byte-
// stream-level, on the VirtualNet) for tcp-virtual runs. Actions go through
// the dispatch methods below so every scenario drives either plane
// unchanged.
type runtime struct {
	cluster *sim.Cluster
	eng     *Engine         // mem runs; nil under tcp-virtual
	tcp     *sim.TCPCluster // tcp-virtual runs; nil under mem
	byID    map[quorum.ServerID]*replica.Replica
	// clock is the run's time source (the SimClock under Config.Virtual);
	// behaviors with delays are built against it.
	clock vtime.Clock
	// gossip is the diffusion group stepped between operation pairs when
	// Config.GossipEvery is set; Leave and Join keep its membership
	// current.
	gossip *diffusion.Group
	// lifecycle is Config.Lifecycle, handed to the dial-storm side clients
	// so they exercise the same pooling/backoff/breaker policy as the main
	// client.
	lifecycle transport.LifecycleConfig
	// stormCalls and stormErrors aggregate every Storm action's side
	// traffic for the report; stormCoalesced and stormFastFails collect the
	// storm fleet's lifecycle counters before the fleet is torn down.
	// Aggregates only — never part of History.
	stormCalls, stormErrors, stormCoalesced, stormFastFails atomic.Uint64
	// view is the membership-view version: bumped once per server whose
	// store is destroyed by churn — a Leave, or a Join that replaces a
	// still-live replica in place (a Join refilling a departed slot with an
	// empty store does not bump again; its Leave already did). Crash and
	// Recover are not membership churn — a crashed server keeps its store.
	// The run loop stamps view into each Op.View, which is what the timed-
	// quorum checker buckets reads by.
	view     uint64
	departed map[quorum.ServerID]bool
}

// noteLeave counts one copy-destroying departure.
func (rt *runtime) noteLeave(id quorum.ServerID) {
	rt.view++
	if rt.departed == nil {
		rt.departed = make(map[quorum.ServerID]bool)
	}
	rt.departed[id] = true
}

// noteJoin counts a join: a fresh empty replica over a live one destroys
// that store (a departure in timed-quorum terms); refilling an already-
// departed slot does not destroy anything further.
func (rt *runtime) noteJoin(id quorum.ServerID) {
	if rt.departed[id] {
		delete(rt.departed, id)
		return
	}
	rt.view++
}

// crash marks a server crashed on the live plane. On the byte-stream plane
// this also resets every connection touching the server (a crashed host's
// sockets die; clients re-dial after recovery).
func (rt *runtime) crash(id quorum.ServerID) {
	if rt.tcp != nil {
		rt.tcp.Net.Crash(id)
		return
	}
	rt.cluster.Net.Crash(id)
}

func (rt *runtime) recoverServer(id quorum.ServerID) {
	if rt.tcp != nil {
		rt.tcp.Net.Recover(id)
		return
	}
	rt.cluster.Net.Recover(id)
}

// leave departs a server from the membership on the live plane.
func (rt *runtime) leave(id quorum.ServerID) {
	if rt.tcp != nil {
		rt.tcp.Net.Deregister(id)
		return
	}
	rt.cluster.Net.Deregister(id)
}

// installReplica wires a fresh replica behind id's endpoint on the live
// plane (a membership rejoin).
func (rt *runtime) installReplica(id quorum.ServerID, r *replica.Replica) {
	if rt.tcp != nil {
		if err := rt.tcp.SetHandler(id, r); err != nil {
			panic(fmt.Sprintf("chaos: rejoin tcp %d: %v", id, err))
		}
		return
	}
	rt.cluster.Net.Register(id, r)
}

// block severs a directed link on the live plane (wildcards allowed; the
// chaos Any and transport.Anyone wildcards share a value by construction).
func (rt *runtime) block(from, to quorum.ServerID) {
	if rt.tcp != nil {
		rt.tcp.Net.Block(from, to)
		return
	}
	rt.eng.Block(from, to)
}

func (rt *runtime) heal() {
	if rt.tcp != nil {
		rt.tcp.Net.Heal()
		return
	}
	rt.eng.Heal()
}

// setDrop sets the loss probability: per call on the message plane, per
// framed chunk on the byte-stream plane (where a loss resets the
// connection — a stream cannot survive a gap).
func (rt *runtime) setDrop(p float64) {
	if rt.tcp != nil {
		rt.tcp.Net.SetDrop(p)
		return
	}
	rt.eng.SetDrop(p)
}

// setDuplicate sets the duplication probability. On the byte-stream plane
// this is a deliberate no-op: TCP sequence numbers deduplicate segments,
// so at-least-once delivery is a fault class the stream transport provably
// rules out (the scenario still runs; the fault simply cannot manifest).
func (rt *runtime) setDuplicate(p float64) {
	if rt.tcp != nil {
		return
	}
	rt.eng.SetDuplicate(p)
}

// setCorrupt sets the corruption probability: message re-encode + bit flip
// on the message plane, a bit flip inside a framed chunk on the
// byte-stream plane (which may break the length prefix, the body, or land
// in a payload byte the end-to-end defenses must absorb).
func (rt *runtime) setCorrupt(p float64) {
	if rt.tcp != nil {
		rt.tcp.Net.SetCorrupt(p)
		return
	}
	rt.eng.SetCorrupt(p)
}

// setReorder sets the maximum extra delivery delay (jitter).
func (rt *runtime) setReorder(d time.Duration) {
	if rt.tcp != nil {
		rt.tcp.Net.SetJitter(d)
		return
	}
	rt.eng.SetReorder(d)
}

// setByteRate limits link bandwidth per direction (bytes/sec; 0 = infinite;
// toServer paces request legs and gossip pushes, toClient paces replies).
// On the message plane this is a deliberate no-op: bandwidth is a property
// of a byte stream, and the MemNetwork carries messages, not bytes (the
// scenario still runs there; the fault simply cannot manifest — the same
// contract as Duplicate on the stream plane).
func (rt *runtime) setByteRate(toServer, toClient int64) {
	if rt.tcp != nil {
		rt.tcp.Net.SetByteRateAsym(toServer, toClient)
	}
}

// actionFunc adapts a closure to Action.
type actionFunc struct {
	name string
	fn   func(rt *runtime)
}

func (a actionFunc) apply(rt *runtime) { a.fn(rt) }
func (a actionFunc) String() string    { return a.name }

// Crash marks servers crashed (calls fail with ErrCrashed; on the
// byte-stream plane their connections are reset too).
func Crash(ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("crash%v", ids), func(rt *runtime) {
		for _, id := range ids {
			rt.crash(id)
		}
	}}
}

// Recover clears servers' crashed state.
func Recover(ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("recover%v", ids), func(rt *runtime) {
		for _, id := range ids {
			rt.recoverServer(id)
		}
	}}
}

// Leave departs servers from the membership: subsequent calls to them fail
// with ErrUnknownServer, as if the address were gone. A diffusion group,
// when the run has one, stops gossiping with them too.
func Leave(ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("leave%v", ids), func(rt *runtime) {
		for _, id := range ids {
			rt.leave(id)
			rt.noteLeave(id)
			if rt.gossip != nil {
				rt.gossip.Remove(id)
			}
		}
	}}
}

// Join (re-)joins servers with fresh, empty replicas — a rejoining server
// remembers nothing, the hardest membership-churn case for consistency.
func Join(ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("join%v", ids), func(rt *runtime) {
		for _, id := range ids {
			r := replica.New(id)
			if _, ok := rt.byID[id]; ok {
				for i, old := range rt.cluster.Replicas {
					if old.ID() == id {
						rt.cluster.Replicas[i] = r
					}
				}
			} else {
				rt.cluster.Replicas = append(rt.cluster.Replicas, r)
			}
			rt.byID[id] = r
			rt.installReplica(id, r)
			rt.noteJoin(id)
			if rt.gossip != nil {
				rt.gossip.Remove(id) // tolerate a Join without a prior Leave
				if err := rt.gossip.Add(r); err != nil {
					panic(fmt.Sprintf("chaos: rejoin gossip %d: %v", id, err))
				}
			}
		}
	}}
}

// BlockInbound severs every link *into* the listed servers (clients and
// peers cannot reach them; their own outbound calls still flow) — an
// asymmetric partition.
func BlockInbound(ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("block-in%v", ids), func(rt *runtime) {
		for _, id := range ids {
			rt.block(Any, id)
		}
	}}
}

// BlockLink severs one directed link (from may be transport.ClientSource or
// Any).
func BlockLink(from, to quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("block(%d->%d)", from, to), func(rt *runtime) {
		rt.block(from, to)
	}}
}

// Heal removes every block and zeroes every link-fault probability.
func Heal() Action {
	return actionFunc{"heal", func(rt *runtime) { rt.heal() }}
}

// Drop sets the deterministic per-call (mem) or per-chunk (tcp-virtual)
// loss probability.
func Drop(p float64) Action {
	return actionFunc{fmt.Sprintf("drop(%g)", p), func(rt *runtime) { rt.setDrop(p) }}
}

// Duplicate sets the per-call duplication probability (no-op over a stream
// transport; see runtime.setDuplicate).
func Duplicate(p float64) Action {
	return actionFunc{fmt.Sprintf("dup(%g)", p), func(rt *runtime) { rt.setDuplicate(p) }}
}

// Corrupt sets the per-call (mem) or per-chunk (tcp-virtual) corruption
// probability.
func Corrupt(p float64) Action {
	return actionFunc{fmt.Sprintf("corrupt(%g)", p), func(rt *runtime) { rt.setCorrupt(p) }}
}

// Reorder sets the maximum extra per-call (mem) or per-chunk (tcp-virtual)
// delivery delay.
func Reorder(max time.Duration) Action {
	return actionFunc{fmt.Sprintf("reorder(%v)", max), func(rt *runtime) { rt.setReorder(max) }}
}

// ByteRate limits every virtual link to bytesPerSec in both directions
// (0 restores infinite bandwidth). Chunks queue behind their serialization
// delay, so large frames — uncompressed gossip pushes above all — stretch
// op latency. No-op on the message plane (see runtime.setByteRate).
func ByteRate(bytesPerSec int64) Action {
	return actionFunc{fmt.Sprintf("byterate(%d)", bytesPerSec), func(rt *runtime) {
		rt.setByteRate(bytesPerSec, bytesPerSec)
	}}
}

// ByteRateAsym limits virtual-link bandwidth per direction: toServer paces
// client→server chunks (request legs, gossip pushes), toClient the reply
// legs. Models asymmetric WAN access links. No-op on the message plane.
func ByteRateAsym(toServer, toClient int64) Action {
	return actionFunc{fmt.Sprintf("byterate(%d/%d)", toServer, toClient), func(rt *runtime) {
		rt.setByteRate(toServer, toClient)
	}}
}

// Behave installs a behavior on the listed replicas (shared instance; use
// BehaveEach for stateful behaviors).
func Behave(b replica.Behavior, ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("behave%v", ids), func(rt *runtime) {
		Install(rt.cluster, b, ids...)
	}}
}

// BehaveEach installs a freshly built behavior per listed replica.
func BehaveEach(mk func(id quorum.ServerID) replica.Behavior, ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("behave-each%v", ids), func(rt *runtime) {
		InstallEach(rt.cluster, mk, ids...)
	}}
}

// Collude turns the listed replicas into a colluding forger set serving the
// given fabricated value.
func Collude(value string, ids ...quorum.ServerID) Action {
	return Behave(Colluders(value), ids...)
}

// Equivocate turns the listed replicas into equivocators.
func Equivocate(ids ...quorum.ServerID) Action {
	return BehaveEach(func(id quorum.ServerID) replica.Behavior { return &Equivocator{ID: id} }, ids...)
}

// StaleEchoes turns the listed replicas into stale echoes.
func StaleEchoes(ids ...quorum.ServerID) Action {
	return Behave(StaleEcho(), ids...)
}

// SlowDown turns the listed replicas into slow lorrises (per-replica
// escalating delay, capped at max, slept on the run's clock — virtual
// under Config.Virtual).
func SlowDown(step, max time.Duration, ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("behave-each%v", ids), func(rt *runtime) {
		InstallEach(rt.cluster, func(quorum.ServerID) replica.Behavior {
			return &SlowLorris{Step: step, Max: max, Clock: rt.clock}
		}, ids...)
	}}
}

// Restore resets the listed replicas to correct behavior.
func Restore(ids ...quorum.ServerID) Action {
	return Behave(replica.Correct{}, ids...)
}
