// The scenario DSL: a Schedule is a list of events fired at logical times
// (write/read pair indices), each carrying actions that mutate the network,
// the membership, or replica behaviors. Because actions fire at operation
// boundaries and contain no randomness of their own, a schedule replays
// identically from the run seed.
package chaos

import (
	"fmt"
	"strings"
	"time"

	"pqs/internal/diffusion"
	"pqs/internal/quorum"
	"pqs/internal/replica"
	"pqs/internal/sim"
	"pqs/internal/vtime"
)

// Action is one step of a fault schedule.
type Action interface {
	apply(rt *runtime)
	String() string
}

// Event fires one or more actions at logical time T (before the T-th
// write/read pair runs).
type Event struct {
	T    int
	Acts []Action
}

// At builds an event: At(100, Partition(...), Drop(0.1)).
func At(t int, acts ...Action) Event { return Event{T: t, Acts: acts} }

// Schedule is an ordered fault script. Events may be listed in any order;
// Run sorts them by time (stable, so same-time events fire in listing
// order).
type Schedule []Event

// String renders the schedule for reports.
func (s Schedule) String() string {
	var b strings.Builder
	for i, ev := range s {
		if i > 0 {
			b.WriteString("; ")
		}
		names := make([]string, len(ev.Acts))
		for j, a := range ev.Acts {
			names[j] = a.String()
		}
		fmt.Fprintf(&b, "@%d %s", ev.T, strings.Join(names, ","))
	}
	return b.String()
}

// runtime is the mutable state actions operate on.
type runtime struct {
	cluster *sim.Cluster
	eng     *Engine
	byID    map[quorum.ServerID]*replica.Replica
	// clock is the run's time source (the SimClock under Config.Virtual);
	// behaviors with delays are built against it.
	clock vtime.Clock
	// gossip is the diffusion group stepped between operation pairs when
	// Config.GossipEvery is set; Leave and Join keep its membership
	// current.
	gossip *diffusion.Group
}

// actionFunc adapts a closure to Action.
type actionFunc struct {
	name string
	fn   func(rt *runtime)
}

func (a actionFunc) apply(rt *runtime) { a.fn(rt) }
func (a actionFunc) String() string    { return a.name }

// Crash marks servers crashed (calls fail with ErrCrashed).
func Crash(ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("crash%v", ids), func(rt *runtime) {
		for _, id := range ids {
			rt.cluster.Net.Crash(id)
		}
	}}
}

// Recover clears servers' crashed state.
func Recover(ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("recover%v", ids), func(rt *runtime) {
		for _, id := range ids {
			rt.cluster.Net.Recover(id)
		}
	}}
}

// Leave departs servers from the membership: subsequent calls to them fail
// with ErrUnknownServer, as if the address were gone. A diffusion group,
// when the run has one, stops gossiping with them too.
func Leave(ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("leave%v", ids), func(rt *runtime) {
		for _, id := range ids {
			rt.cluster.Net.Deregister(id)
			if rt.gossip != nil {
				rt.gossip.Remove(id)
			}
		}
	}}
}

// Join (re-)joins servers with fresh, empty replicas — a rejoining server
// remembers nothing, the hardest membership-churn case for consistency.
func Join(ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("join%v", ids), func(rt *runtime) {
		for _, id := range ids {
			r := replica.New(id)
			if _, ok := rt.byID[id]; ok {
				for i, old := range rt.cluster.Replicas {
					if old.ID() == id {
						rt.cluster.Replicas[i] = r
					}
				}
			} else {
				rt.cluster.Replicas = append(rt.cluster.Replicas, r)
			}
			rt.byID[id] = r
			rt.cluster.Net.Register(id, r)
			if rt.gossip != nil {
				rt.gossip.Remove(id) // tolerate a Join without a prior Leave
				if err := rt.gossip.Add(r); err != nil {
					panic(fmt.Sprintf("chaos: rejoin gossip %d: %v", id, err))
				}
			}
		}
	}}
}

// BlockInbound severs every link *into* the listed servers (clients and
// peers cannot reach them; their own outbound calls still flow) — an
// asymmetric partition.
func BlockInbound(ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("block-in%v", ids), func(rt *runtime) {
		for _, id := range ids {
			rt.eng.Block(Any, id)
		}
	}}
}

// BlockLink severs one directed link (from may be transport.ClientSource or
// Any).
func BlockLink(from, to quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("block(%d->%d)", from, to), func(rt *runtime) {
		rt.eng.Block(from, to)
	}}
}

// Heal removes every block and zeroes every link-fault probability.
func Heal() Action {
	return actionFunc{"heal", func(rt *runtime) { rt.eng.Heal() }}
}

// Drop sets the deterministic per-call loss probability.
func Drop(p float64) Action {
	return actionFunc{fmt.Sprintf("drop(%g)", p), func(rt *runtime) { rt.eng.SetDrop(p) }}
}

// Duplicate sets the per-call duplication probability.
func Duplicate(p float64) Action {
	return actionFunc{fmt.Sprintf("dup(%g)", p), func(rt *runtime) { rt.eng.SetDuplicate(p) }}
}

// Corrupt sets the per-call frame-corruption probability.
func Corrupt(p float64) Action {
	return actionFunc{fmt.Sprintf("corrupt(%g)", p), func(rt *runtime) { rt.eng.SetCorrupt(p) }}
}

// Reorder sets the maximum extra per-call delivery delay (message
// reordering).
func Reorder(max time.Duration) Action {
	return actionFunc{fmt.Sprintf("reorder(%v)", max), func(rt *runtime) { rt.eng.SetReorder(max) }}
}

// Behave installs a behavior on the listed replicas (shared instance; use
// BehaveEach for stateful behaviors).
func Behave(b replica.Behavior, ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("behave%v", ids), func(rt *runtime) {
		Install(rt.cluster, b, ids...)
	}}
}

// BehaveEach installs a freshly built behavior per listed replica.
func BehaveEach(mk func(id quorum.ServerID) replica.Behavior, ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("behave-each%v", ids), func(rt *runtime) {
		InstallEach(rt.cluster, mk, ids...)
	}}
}

// Collude turns the listed replicas into a colluding forger set serving the
// given fabricated value.
func Collude(value string, ids ...quorum.ServerID) Action {
	return Behave(Colluders(value), ids...)
}

// Equivocate turns the listed replicas into equivocators.
func Equivocate(ids ...quorum.ServerID) Action {
	return BehaveEach(func(id quorum.ServerID) replica.Behavior { return &Equivocator{ID: id} }, ids...)
}

// StaleEchoes turns the listed replicas into stale echoes.
func StaleEchoes(ids ...quorum.ServerID) Action {
	return Behave(StaleEcho(), ids...)
}

// SlowDown turns the listed replicas into slow lorrises (per-replica
// escalating delay, capped at max, slept on the run's clock — virtual
// under Config.Virtual).
func SlowDown(step, max time.Duration, ids ...quorum.ServerID) Action {
	return actionFunc{fmt.Sprintf("behave-each%v", ids), func(rt *runtime) {
		InstallEach(rt.cluster, func(quorum.ServerID) replica.Behavior {
			return &SlowLorris{Step: step, Max: max, Clock: rt.clock}
		}, ids...)
	}}
}

// Restore resets the listed replicas to correct behavior.
func Restore(ids ...quorum.ServerID) Action {
	return Behave(replica.Correct{}, ids...)
}
