// The named scenario library: every scenario is a Config builder, so the
// test suite, the CLI (cmd/pqs-chaos) and CI all run the same matrix.
//
// A scenario's Bound is the theorem's ε for its system (Theorem 3.16 for
// ε-intersecting, Theorem 4.4 for dissemination, Theorem 5.10 for masking),
// so the checker enforces exactly the paper's claim under that scenario's
// adversary. Fault intensities are chosen so the premise degradation the
// theorems do not model (partial writes under crashes, etc.) is absorbed by
// the eligibility filter (CheckResult.EligibleReads) and the runs pass with
// real margin; the negative scenario shows the checker has teeth.
package chaos

import (
	"time"

	"pqs/internal/core"
	"pqs/internal/quorum"
	"pqs/internal/register"
	"pqs/internal/transport"
)

// Scenario is one named entry of the chaos matrix.
type Scenario struct {
	Name string
	// Doc is a one-line description for -list and the README.
	Doc string
	// Build instantiates the scenario at the given scale (trial-count
	// multiplier; 1 is the CI-friendly short run) and seed.
	Build func(scale int, seed int64) (Config, error)
}

// baseN is the universe size every shipped single-cell scenario uses.
const baseN = 100

// cellN is the per-cell universe size of the cells/ scenarios: 4 cells of
// 25 servers keep the total at baseN, so multi-cell runs cost the same as
// the rest of the matrix.
const cellN = 25

// ids returns [from, from+count) as server ids.
func ids(from, count int) []quorum.ServerID {
	out := make([]quorum.ServerID, count)
	for i := range out {
		out[i] = quorum.ServerID(from + i)
	}
	return out
}

// Scenarios returns the shipped scenario library. Every entry passes its
// theorem bound; run them via cmd/pqs-chaos or the chaos tests.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "benign/calm",
			Doc:  "no faults; empirical ε of R(n, 3√n) vs the e^{-ℓ²} bound of Theorem 3.16",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(baseN, 3)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "benign/calm", System: sys, Mode: register.Benign,
					Ops: 150 * scale, Seed: seed, Bound: sys.EpsilonBound(),
				}, nil
			},
		},
		{
			Name: "benign/lossy-dup-reorder",
			Doc:  "2% deterministic loss + 10% duplication + delivery-delay jitter; loss shrinks write coverage, duplication and shuffled reply arrival must be harmless",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(baseN, 2.5)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "benign/lossy-dup-reorder", System: sys, Mode: register.Benign,
					Ops: 150 * scale, Seed: seed, Bound: sys.EpsilonBound(),
					Schedule: Schedule{
						At(0, Drop(0.02), Duplicate(0.10), Reorder(200*time.Microsecond)),
					},
				}, nil
			},
		},
		{
			Name: "benign/crash-wave",
			Doc:  "8 servers crash mid-run and recover later; reads over the gap must stay within ε",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(baseN, 2.5)
				if err != nil {
					return Config{}, err
				}
				ops := 150 * scale
				return Config{
					Name: "benign/crash-wave", System: sys, Mode: register.Benign,
					Ops: ops, Seed: seed, Bound: sys.EpsilonBound(),
					Schedule: Schedule{
						At(ops/3, Crash(ids(20, 8)...)),
						At(2*ops/3, Recover(ids(20, 8)...)),
					},
				}, nil
			},
		},
		{
			Name: "benign/partition-flap",
			Doc:  "an asymmetric partition (inbound links cut) flaps on and off twice",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(baseN, 2.5)
				if err != nil {
					return Config{}, err
				}
				ops := 150 * scale
				group := ids(90, 8)
				return Config{
					Name: "benign/partition-flap", System: sys, Mode: register.Benign,
					Ops: ops, Seed: seed, Bound: sys.EpsilonBound(),
					Schedule: Schedule{
						At(ops/5, BlockInbound(group...)),
						At(2*ops/5, Heal()),
						At(3*ops/5, BlockInbound(group...)),
						At(4*ops/5, Heal()),
					},
				}, nil
			},
		},
		{
			Name: "benign/churn",
			Doc:  "6 servers leave the membership mid-run and rejoin empty later; delta gossip keeps converging across the membership change (rejoiners are first contact again)",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(baseN, 2.5)
				if err != nil {
					return Config{}, err
				}
				ops := 150 * scale
				churned := ids(40, 6)
				return Config{
					Name: "benign/churn", System: sys, Mode: register.Benign,
					Ops: ops, Seed: seed, Bound: sys.EpsilonBound(),
					GossipEvery: 5, GossipFanout: 2,
					Schedule: Schedule{
						At(ops/3, Leave(churned...)),
						At(2*ops/3, Join(churned...)),
					},
				}, nil
			},
		},
		{
			Name: "benign/churn-timed",
			Doc:  "four replacement waves (leave + rejoin empty, 5 servers each) with lagged reads; every op carries the membership-view version and the checker enforces the TIME-DECAYED timed-quorum bound ε(D) per churn-depth bucket (Gramoli & Raynal) instead of the flat ε",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(baseN, 2.5)
				if err != nil {
					return Config{}, err
				}
				ops := 150 * scale
				return Config{
					Name: "benign/churn-timed", System: sys, Mode: register.Benign,
					// Lagged reads make churn waves land BETWEEN a key's write
					// and its read, so the depth buckets D=5,10,... are
					// actually populated (ReadLag < Keys, see Config.ReadLag).
					Ops: ops, Keys: 24, ReadLag: 8,
					Seed: seed, Bound: sys.EpsilonBound(), Timed: true,
					// No gossip: the rejoined-empty stores stay empty until
					// rewritten, so the decay the timed bound allows for is
					// genuinely visible.
					Schedule: Schedule{
						At(ops/5, Leave(ids(10, 5)...), Join(ids(10, 5)...)),
						At(2*ops/5, Leave(ids(30, 5)...), Join(ids(30, 5)...)),
						At(3*ops/5, Leave(ids(50, 5)...), Join(ids(50, 5)...)),
						At(4*ops/5, Leave(ids(70, 5)...), Join(ids(70, 5)...)),
					},
				}, nil
			},
		},
		{
			Name: "benign/slow-lorris",
			Doc:  "10 servers answer ever more slowly; slowness must never affect safety, only latency",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(baseN, 3)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "benign/slow-lorris", System: sys, Mode: register.Benign,
					Ops: 60 * scale, Seed: seed, Bound: sys.EpsilonBound(),
					Schedule: Schedule{
						At(0, SlowDown(20*time.Microsecond, 500*time.Microsecond, ids(0, 10)...)),
					},
				}, nil
			},
		},
		{
			Name: "benign/dial-storm",
			Doc:  "1200 concurrent clients pound one server while it is crashed and again right after it recovers; lifecycle clients (pool + jittered backoff + breaker) absorb the storm through coalesced dials and backoff fast-fails, and the recorded history replays byte-for-byte",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(baseN, 3)
				if err != nil {
					return Config{}, err
				}
				ops := 60 * scale
				target := quorum.ServerID(7)
				return Config{
					Name: "benign/dial-storm", System: sys, Mode: register.Benign,
					Ops: ops, Seed: seed, Bound: sys.EpsilonBound(),
					// Virtual with zero latency: every storm call resolves at
					// one virtual instant, so storm-side scheduling races can
					// never leak into the main client's timing.
					Virtual: true,
					Lifecycle: transport.LifecycleConfig{
						PoolSize:         4,
						DialBackoffBase:  time.Millisecond,
						BreakerThreshold: 3,
						BreakerCooldown:  5 * time.Millisecond,
						Seed:             seed,
					},
					Schedule: Schedule{
						At(ops/4, Crash(target), Storm(target, 1200, 2)),
						At(ops/2, Recover(target), Storm(target, 1200, 2)),
					},
				}, nil
			},
		},
		{
			Name: "benign/flapping-server",
			Doc:  "5 servers crash and recover repeatedly; under tcp-virtual the client's circuit breaker trips on consecutive failures, fast-fails while open, half-opens after the cooldown and closes once the trial succeeds, while spares absorb the gaps",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(baseN, 2.5)
				if err != nil {
					return Config{}, err
				}
				ops := 90 * scale
				group := ids(10, 5)
				return Config{
					Name: "benign/flapping-server", System: sys, Mode: register.Benign,
					Ops: ops, Seed: seed, Bound: sys.EpsilonBound(),
					// Nonzero latency makes virtual time advance, so breaker
					// cooldowns genuinely elapse and half-open trials run.
					Virtual:    true,
					LatencyMin: 200 * time.Microsecond, LatencyMax: 800 * time.Microsecond,
					Spares: 2, HedgeDelay: 2 * time.Millisecond, EagerRead: true,
					Lifecycle: transport.LifecycleConfig{
						PoolSize:         2,
						DialBackoffBase:  time.Millisecond,
						BreakerThreshold: 2,
						BreakerCooldown:  2 * time.Millisecond,
						Seed:             seed,
					},
					Schedule: Schedule{
						At(ops/6, Crash(group...)),
						At(2*ops/6, Recover(group...)),
						At(3*ops/6, Crash(group...)),
						At(4*ops/6, Recover(group...)),
						At(5*ops/6, Crash(group...)),
					},
				}, nil
			},
		},
		{
			Name: "benign/gob-wire",
			Doc:  "the legacy encoding/gob codec carries the whole run under 1% chunk loss and delivery jitter; end-to-end behavior must match the binary codec's (the codec is framing, not semantics)",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(baseN, 2.5)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "benign/gob-wire", System: sys, Mode: register.Benign,
					Ops: 100 * scale, Seed: seed, Bound: sys.EpsilonBound(),
					WireCodec: transport.CodecGob,
					Schedule: Schedule{
						At(0, Drop(0.01), Reorder(200*time.Microsecond)),
					},
				}, nil
			},
		},
		{
			Name: "wan/slow-link",
			Doc:  "every link byte-limited to 256 KB/s (64 KB/s mid-run) with WAN latency; the compressed codec carries the run under tcp-virtual while delta gossip interleaves — serialization delay stretches tails but ε must stay within the Theorem 3.16 bound",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(baseN, 2.5)
				if err != nil {
					return Config{}, err
				}
				ops := 150 * scale
				return Config{
					Name: "wan/slow-link", System: sys, Mode: register.Benign,
					Ops: ops, Seed: seed, Bound: sys.EpsilonBound(),
					// Byte rates only exist on the byte-stream plane, so the
					// scenario runs virtual; on mem the ByteRate actions are
					// documented no-ops and the run degrades to a latency
					// scenario (the determinism contract still holds).
					Virtual:    true,
					LatencyMin: 2 * time.Millisecond, LatencyMax: 8 * time.Millisecond,
					WireCodec:   transport.CodecBinaryFlate,
					GossipEvery: 5, GossipFanout: 2,
					Schedule: Schedule{
						At(0, ByteRate(256<<10)),
						At(2*ops/5, ByteRate(64<<10)),
						At(4*ops/5, ByteRate(256<<10)),
					},
				}, nil
			},
		},
		{
			Name: "wan/asym-bandwidth",
			Doc:  "asymmetric WAN access link: 256 KB/s upstream vs 32 KB/s downstream, so reply legs (value-carrying reads, gossip pulls) pay most of the serialization delay; compressed codec, delta gossip, ε within bound",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(baseN, 2.5)
				if err != nil {
					return Config{}, err
				}
				ops := 150 * scale
				return Config{
					Name: "wan/asym-bandwidth", System: sys, Mode: register.Benign,
					Ops: ops, Seed: seed, Bound: sys.EpsilonBound(),
					Virtual:    true,
					LatencyMin: 2 * time.Millisecond, LatencyMax: 8 * time.Millisecond,
					WireCodec:   transport.CodecBinaryFlate,
					GossipEvery: 5, GossipFanout: 2,
					Schedule: Schedule{
						At(0, ByteRateAsym(256<<10, 32<<10)),
						// Flip the asymmetry mid-run: now pushes (writes,
						// gossip deltas) crawl while replies flow.
						At(ops/2, ByteRateAsym(32<<10, 256<<10)),
					},
				}, nil
			},
		},
		{
			Name: "cells/inter-cell-partition",
			Doc:  "4 quorum cells of 25 servers each; an inbound partition isolates cell 2 mid-run and heals, with 2% loss throughout — the per-cell ε sections must each stay within the Theorem 3.16 bound, not just the cross-cell average",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(cellN, 2)
				if err != nil {
					return Config{}, err
				}
				ops := 150 * scale
				return Config{
					Name: "cells/inter-cell-partition", System: sys, Mode: register.Benign,
					Cells: 4, Keys: 16,
					Ops: ops, Seed: seed, Bound: sys.EpsilonBound(),
					Schedule: Schedule{
						At(0, Drop(0.02)),
						// Cell 2 owns global servers [50, 75).
						At(ops/4, BlockInbound(ids(2*cellN, cellN)...)),
						At(ops/2, Heal(), Drop(0.02)),
					},
				}, nil
			},
		},
		{
			Name: "cells/cell-crash",
			Doc:  "4 quorum cells of 25 servers each; cell 1 crashes WHOLE mid-run and recovers — its keys go unavailable (excluded by the eligibility filter) while the surviving cells' per-cell ε sections must keep passing",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewEpsilonIntersectingEll(cellN, 2)
				if err != nil {
					return Config{}, err
				}
				ops := 150 * scale
				return Config{
					Name: "cells/cell-crash", System: sys, Mode: register.Benign,
					Cells: 4, Keys: 16,
					Ops: ops, Seed: seed, Bound: sys.EpsilonBound(),
					Schedule: Schedule{
						// Cell 1 owns global servers [25, 50).
						At(ops/3, Crash(ids(cellN, cellN)...)),
						At(2*ops/3, Recover(ids(cellN, cellN)...)),
					},
				}, nil
			},
		},
		{
			Name: "cells/dissem-forgers",
			Doc:  "4 dissemination cells with b=5 colluding forgers planted in EVERY cell; signatures must reject all forgeries per cell (Theorem 4.4 bound per cell)",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewDisseminationEll(cellN, 5, 2.8)
				if err != nil {
					return Config{}, err
				}
				forgers := make([]quorum.ServerID, 0, 4*5)
				for cell := 0; cell < 4; cell++ {
					forgers = append(forgers, ids(cell*cellN, 5)...)
				}
				return Config{
					Name: "cells/dissem-forgers", System: sys, Mode: register.Dissemination,
					Cells: 4, Keys: 16,
					Ops: 120 * scale, Seed: seed, Bound: sys.EpsilonBound(),
					Schedule: Schedule{
						At(0, Collude("forged:cells", forgers...)),
					},
				}, nil
			},
		},
		{
			Name: "dissem/forgers",
			Doc:  "b=10 colluding forgers with overwhelming timestamps; signatures must reject every forgery (a single fooled read is a hard violation)",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewDisseminationEll(baseN, 10, 3.5)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "dissem/forgers", System: sys, Mode: register.Dissemination,
					Ops: 120 * scale, Seed: seed, Bound: sys.EpsilonBound(),
					Schedule: Schedule{
						At(0, Collude("forged:dissem", ids(0, sys.B())...)),
					},
				}, nil
			},
		},
		{
			Name: "dissem/corrupt",
			Doc:  "5% frame corruption on every link plus b=10 forgers; corrupted writes store unverifiable garbage that reads must discard",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewDisseminationEll(baseN, 10, 3.5)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "dissem/corrupt", System: sys, Mode: register.Dissemination,
					Ops: 120 * scale, Seed: seed, Bound: sys.EpsilonBound(),
					Schedule: Schedule{
						At(0, Corrupt(0.05), Collude("forged:corrupt", ids(0, sys.B())...)),
					},
				}, nil
			},
		},
		{
			Name: "masking/colluders",
			Doc:  "a colluding B-set placed on the strategy's most-sampled servers; the threshold k must keep P(fooled) within Theorem 5.10's ε",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewMasking(baseN, 35, 5)
				if err != nil {
					return Config{}, err
				}
				targets := MostSampled(sys, sys.B(), 2000, seed+7)
				return Config{
					Name: "masking/colluders", System: sys, Mode: register.Masking, K: sys.K(),
					Ops: 120 * scale, Seed: seed, Bound: sys.EpsilonBound(),
					Schedule: Schedule{
						At(0, Collude("forged:mask", targets...)),
					},
				}, nil
			},
		},
		{
			Name: "masking/equivocate",
			Doc:  "b=8 equivocators hand every reader a different fabricated pair; no pair can reach k vouchers",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewMasking(baseN, 40, 8)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "masking/equivocate", System: sys, Mode: register.Masking, K: sys.K(),
					Ops: 120 * scale, Seed: seed, Bound: sys.EpsilonBound(),
					Schedule: Schedule{
						At(0, Equivocate(ids(0, sys.B())...)),
					},
				}, nil
			},
		},
		{
			Name: "masking/gossip-under-fire",
			Doc:  "diffusion rounds interleave with hedged client traffic while an asymmetric partition flaps and 2% loss arrives; runs virtual (SimClock) with adaptive hedging, checked against the Theorem 5.2 masking bound",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewMasking(baseN, 35, 5)
				if err != nil {
					return Config{}, err
				}
				ops := 150 * scale
				group := ids(70, 8)
				return Config{
					Name: "masking/gossip-under-fire", System: sys, Mode: register.Masking, K: sys.K(),
					Ops: ops, Seed: seed, Bound: sys.EpsilonBound(),
					// The whole scenario runs in virtual time: per-call
					// latency, hedge timers and the diffusion cadence are
					// deterministic and instant to execute — the hedged
					// configuration PR 3 could not cover.
					Virtual:    true,
					LatencyMin: 200 * time.Microsecond, LatencyMax: 800 * time.Microsecond,
					Spares: 2, HedgeDelay: 2 * time.Millisecond,
					AdaptiveHedge: true, EagerRead: true,
					GossipEvery: 3, GossipFanout: 2,
					Schedule: Schedule{
						At(ops/5, BlockInbound(group...)),
						At(2*ops/5, Heal()),
						At(3*ops/5, Drop(0.02), BlockInbound(group...)),
						At(4*ops/5, Heal()),
					},
				}, nil
			},
		},
		{
			Name: "masking/stale-echo",
			Doc:  "b=5 stale echoes acknowledge writes they never apply; timestamp order must defeat the old-value attack",
			Build: func(scale int, seed int64) (Config, error) {
				sys, err := core.NewMasking(baseN, 35, 5)
				if err != nil {
					return Config{}, err
				}
				return Config{
					Name: "masking/stale-echo", System: sys, Mode: register.Masking, K: sys.K(),
					Ops: 120 * scale, Seed: seed, Bound: sys.EpsilonBound(),
					Schedule: Schedule{
						At(0, StaleEchoes(ids(0, sys.B())...)),
					},
				}, nil
			},
		},
	}
}

// Find returns the named scenario.
func Find(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// NegativeConfig is the intentionally failing configuration the negative
// test (and cmd/pqs-chaos -negative) runs: an overrun masking system —
// b = 20 colluders against threshold k = 3, where the colluders reach the
// threshold in ~80% of reads — checked against a bound (1e-9) far below
// the measured ε. The checker MUST fail it; it is not part of Scenarios().
func NegativeConfig(scale int, seed int64) (Config, error) {
	sys, err := core.NewMaskingWithK(baseN, 20, 20, 3)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Name: "negative/masking-overrun", System: sys, Mode: register.Masking, K: sys.K(),
		Ops: 40 * scale, Seed: seed, Bound: 1e-9,
		Schedule: Schedule{
			At(0, Collude("forged:overrun", ids(0, sys.B())...)),
		},
	}, nil
}
