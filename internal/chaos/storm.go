// The dial-storm action: a burst of side traffic from many concurrent
// clients, aimed at one server, that runs to completion between two
// operation pairs. The storm exists to exercise the transport's connection
// lifecycle under contention — dial coalescing, redial backoff fast-fails,
// breaker trips — while the main client's recorded history stays
// byte-for-byte deterministic: storm traffic rides its own source
// identities (its own VirtualNet links, whose chunk sequences are keyed
// separately), its results are aggregated into Report counters, and none of
// its operations enter History.
package chaos

import (
	"context"
	"fmt"

	"pqs/internal/quorum"
	"pqs/internal/transport"
	"pqs/internal/vtime"
	"pqs/internal/wire"
)

// stormFleet is the number of distinct side clients a storm stands up on
// the tcp-virtual plane; workers share them round-robin, so pool slots and
// in-flight dials are genuinely contended.
const stormFleet = 16

// stormSourceBase is the first source identity the storm fleet dials from,
// far above any replica id so the fault plane attributes the links
// correctly.
const stormSourceBase quorum.ServerID = 1_000_000

// Storm fires workers concurrent clients at target, each issuing calls
// ping RPCs back to back, and waits for all of them before the schedule
// proceeds. On the tcp-virtual plane the storm runs through
// lifecycle-enabled TCP clients (Config.Lifecycle), so a storm against a
// crashed server measures backoff fast-fails and dial coalescing rather
// than a thundering herd of doomed dials; on the mem plane it calls the
// MemNetwork directly. Results land in Report.StormCalls/StormErrors.
func Storm(target quorum.ServerID, workers, calls int) Action {
	return actionFunc{fmt.Sprintf("storm(%d,%dx%d)", target, workers, calls), func(rt *runtime) {
		rt.storm(target, workers, calls)
	}}
}

// storm is the action body; it blocks until every worker finishes, so storm
// traffic never overlaps the recorded client operations.
func (rt *runtime) storm(target quorum.ServerID, workers, calls int) {
	ctx := context.Background()
	sched := vtime.SchedOf(rt.clock)

	var fleet []*transport.TCPClient
	if rt.tcp != nil {
		n := stormFleet
		if workers < n {
			n = workers
		}
		fleet = make([]*transport.TCPClient, n)
		for i := range fleet {
			fleet[i] = rt.tcp.NewSourceClient(stormSourceBase+quorum.ServerID(i), rt.lifecycle)
		}
	}

	wg := vtime.NewWaitGroup(rt.clock)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		sched.Go(func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				var err error
				if fleet != nil {
					_, err = fleet[w%len(fleet)].Call(ctx, target, wire.PingRequest{})
				} else {
					_, err = rt.cluster.Net.Call(ctx, target, wire.PingRequest{})
				}
				rt.stormCalls.Add(1)
				if err != nil {
					rt.stormErrors.Add(1)
				}
			}
		})
	}
	wg.Wait()
	for _, cl := range fleet {
		st := cl.Stats()
		rt.stormCoalesced.Add(st.DialsCoalesced)
		rt.stormFastFails.Add(st.BackoffFastFails)
		cl.Close()
	}
}
