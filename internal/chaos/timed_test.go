package chaos

import (
	"testing"

	"pqs/internal/core"
	"pqs/internal/register"
)

// TestTimedChurnScenario pins the timed-quorum machinery end to end: the
// churn-timed scenario populates depth buckets beyond D=0 (the whole point
// of ReadLag), carries a timed verdict, and passes its decayed bound.
func TestTimedChurnScenario(t *testing.T) {
	sc, ok := Find("benign/churn-timed")
	if !ok {
		t.Fatal("benign/churn-timed missing from the library")
	}
	cfg, err := sc.Build(1, *chaosSeed)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tr := rep.Check.Timed
	if tr == nil {
		t.Fatal("Timed config set but CheckResult.Timed is nil")
	}
	deep := 0
	for _, g := range tr.Groups {
		t.Logf("D=%d: reads=%d bad=%d bound=%.4g", g.Departures, g.Reads, g.Bad, g.Bound)
		if g.Departures > 0 {
			deep += g.Reads
		}
		if g.Departures > 0 && g.Bound <= rep.Check.Bound {
			t.Errorf("depth bucket D=%d bound %.4g not decayed above base %.4g",
				g.Departures, g.Bound, rep.Check.Bound)
		}
	}
	if deep == 0 {
		t.Error("no reads landed in D>0 buckets; ReadLag/churn pairing is broken")
	}
	t.Logf("timed: maxBound=%.4g p=%.3g pass=%v (flat p=%.3g)", tr.MaxBound, tr.PValue, tr.Pass, rep.Check.PValue)
	if !tr.Pass || !rep.Check.Pass {
		t.Errorf("churn-timed failed its decayed bound: p=%.3g", tr.PValue)
	}
}

// TestTimedBoundHasTeeth is the negative test for the timed gate: an
// observed bad-read count far above what the decayed bounds admit must
// fail EvaluateTimed, and a view-blind history (all ops stamped with view
// 0, as a broken harness would produce) re-checked under the same timed
// config must not be granted the churn allowance.
func TestTimedBoundHasTeeth(t *testing.T) {
	// Synthetic gate check: 2000 reads at depth 0 with 40 bad is a ~2%
	// empirical ε against a 1e-3-ish decayed bound — hopeless at any alpha.
	tb := TimedBound{N: 100, QW: 25, QR: 25, Base: 1e-3}
	res := EvaluateTimed([]TimedGroup{
		{Departures: 0, Reads: 2000, Bad: 40},
		{Departures: 5, Reads: 500, Bad: 2},
	}, tb, 0.001)
	if res.Pass {
		t.Fatalf("EvaluateTimed passed an overrun history (p=%.3g)", res.PValue)
	}

	// View-blind replay: run a churn storm harsh enough that depth
	// staleness is statistically unmistakable — half the universe replaced
	// (empty) every 30 pairs, with reads lagging 20 pairs behind their
	// writes so most depth-reads straddle a wave. With views the decayed
	// bounds absorb the misses; with the view stamps stripped every read
	// collapses into the D=0 bucket, whose bound has no churn allowance,
	// and the same history must fail.
	cfg, rep := timedStormRun(t)
	blind := make(History, len(rep.History))
	copy(blind, rep.History)
	for i := range blind {
		blind[i].View = 0
	}
	q := cfg.System.QuorumSize()
	check := Check(blind, CheckConfig{
		Mode: cfg.Mode, Bound: cfg.Bound, Alpha: cfg.Alpha,
		Timed: &TimedBound{N: cfg.System.N(), QW: q, QR: q, Base: cfg.Bound},
	})
	if check.Timed == nil {
		t.Fatal("view-blind re-check produced no timed result")
	}
	for _, g := range check.Timed.Groups {
		if g.Departures != 0 {
			t.Errorf("view-blind history produced depth bucket D=%d", g.Departures)
		}
	}
	if check.Timed.Pass {
		t.Errorf("view-blind history passed the timed gate (p=%.3g): the depth bucketing is not load-bearing", check.Timed.PValue)
	}
}

// timedStormRun runs the harsh replacement-storm config the teeth tests
// share: n=100, q=25, half the universe replaced empty every 30 pairs.
func timedStormRun(t *testing.T) (Config, *Report) {
	t.Helper()
	sys, err := core.NewEpsilonIntersectingEll(100, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{}
	for w := 1; w < 20; w++ {
		half := ids(0, 50)
		if w%2 == 0 {
			half = ids(50, 50)
		}
		sched = append(sched, At(30*w, Leave(half...), Join(half...)))
	}
	cfg := Config{
		Name: "timed/storm", System: sys, Mode: register.Benign,
		Ops: 600, Keys: 24, ReadLag: 20,
		Seed: *chaosSeed, Bound: sys.EpsilonBound(), Timed: true,
		Schedule: sched,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return cfg, rep
}

// TestTimedStormPassesWithViews is the positive half of the teeth pair:
// the SAME storm history that fails view-blind passes when ops carry their
// view stamps, because the Gramoli-Raynal decay admits exactly the extra
// staleness the replacement waves cause.
func TestTimedStormPassesWithViews(t *testing.T) {
	_, rep := timedStormRun(t)
	tr := rep.Check.Timed
	if tr == nil {
		t.Fatal("no timed result")
	}
	for _, g := range tr.Groups {
		t.Logf("D=%d: reads=%d bad=%d bound=%.4g", g.Departures, g.Reads, g.Bad, g.Bound)
	}
	t.Logf("timed: maxBound=%.4g p=%.3g pass=%v", tr.MaxBound, tr.PValue, tr.Pass)
	if !tr.Pass {
		t.Errorf("storm failed WITH views (p=%.3g): the decayed bound is mis-calibrated", tr.PValue)
	}
	if len(rep.Check.Violations) > 0 {
		t.Errorf("storm produced %d hard violations", len(rep.Check.Violations))
	}
}
