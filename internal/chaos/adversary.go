// Adversary-replica library: Byzantine behaviors beyond the colluding
// forger the sim package installs, plus helpers for placing an adversary
// set where it hurts the most.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/replica"
	"pqs/internal/sim"
	"pqs/internal/ts"
	"pqs/internal/vtime"
	"pqs/internal/wire"
)

// forgedStampBase keeps fabricated timestamps above anything an honest
// writer can reach while leaving room for per-call increments.
const forgedStampBase = math.MaxUint64 / 2

// Equivocator answers every read with a *different* fabricated value-stamp
// pair (a per-call counter makes replies unique and the sequence
// deterministic), and acknowledges writes without applying them. Against a
// masking system with threshold k >= 2 its replies can never gather k
// vouchers, so equivocation is strictly weaker than collusion — which is
// exactly what the masking analysis predicts and the equivocation scenario
// measures.
type Equivocator struct {
	// ID distinguishes the fabricated values of different equivocators.
	ID quorum.ServerID
	n  atomic.Uint64
}

// OnRead implements replica.Behavior.
func (e *Equivocator) OnRead(_ string, _ wire.ReadReply) (wire.ReadReply, error) {
	n := e.n.Add(1)
	return wire.ReadReply{
		Found: true,
		Value: []byte(fmt.Sprintf("equivocate:%d:%d", e.ID, n)),
		Stamp: ts.Stamp{Counter: forgedStampBase + n, Writer: 0xEEEE},
		Sig:   []byte("equivocation-has-no-signature"),
	}, nil
}

// OnWrite implements replica.Behavior: acknowledges without storing.
func (e *Equivocator) OnWrite(wire.WriteRequest) (bool, error) { return false, nil }

// SlowLorris answers correctly but ever more slowly: the i-th call is
// delayed i*Step, capped at Max. It models a server that degrades under
// load instead of failing, the adversary that latency hedging (PR 1) is
// designed to absorb; in the chaos harness it demonstrates that slowness
// alone can never affect safety, only latency. A nil Clock sleeps on the
// wall clock; virtual runs inject the run's SimClock (SlowDown does this
// automatically), making the degradation instant to simulate.
type SlowLorris struct {
	Step  time.Duration
	Max   time.Duration
	Clock vtime.Clock
	n     atomic.Uint64
}

func (s *SlowLorris) delay() {
	d := time.Duration(s.n.Add(1)) * s.Step
	if s.Max > 0 && d > s.Max {
		d = s.Max
	}
	vtime.Or(s.Clock).Sleep(d)
}

// OnRead implements replica.Behavior.
func (s *SlowLorris) OnRead(_ string, correct wire.ReadReply) (wire.ReadReply, error) {
	s.delay()
	return correct, nil
}

// OnWrite implements replica.Behavior.
func (s *SlowLorris) OnWrite(wire.WriteRequest) (bool, error) {
	s.delay()
	return true, nil
}

// StaleEcho is the stale-echo adversary: it acknowledges every write
// without applying it and keeps serving whatever it held when it turned
// faulty — the "old value" attack that timestamp ordering must defeat.
// (It is replica.Stale under its adversary-library name.)
func StaleEcho() replica.Behavior { return replica.Stale{} }

// Colluders returns the shared behavior of a colluding forger set: every
// member serves the same fabricated value under the same overwhelming
// timestamp, so their replies pool into a single candidate — the strongest
// read-side adversary the masking analysis covers, defeated only by the
// threshold k (or by signatures in dissemination mode).
func Colluders(value string) replica.Behavior {
	return replica.Forger{
		Value: []byte(value),
		Stamp: ts.Stamp{Counter: forgedStampBase, Writer: 0xFFFF},
		Sig:   []byte("colluders-have-no-valid-signature"),
	}
}

// MostSampled empirically ranks servers by how often the system's access
// strategy samples them and returns the b most-sampled ids (ties broken by
// id, so the placement is deterministic given the seed). For the uniform
// strategy every placement is equivalent; for structured or weighted
// strategies this is where a colluding B-set does the most damage, since
// P(|Q ∩ B| >= k) grows with the members' access frequency.
func MostSampled(sys quorum.System, b, trials int, seed int64) []quorum.ServerID {
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, sys.N())
	for i := 0; i < trials; i++ {
		for _, id := range sys.Pick(rng) {
			counts[id]++
		}
	}
	ids := make([]quorum.ServerID, sys.N())
	for i := range ids {
		ids[i] = quorum.ServerID(i)
	}
	sort.SliceStable(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if b > len(ids) {
		b = len(ids)
	}
	return ids[:b:b]
}

// Install sets the behavior of every listed replica in the cluster,
// skipping ids that are not (or no longer) members. For behaviors with
// per-replica state (Equivocator, SlowLorris) use InstallEach.
func Install(c *sim.Cluster, b replica.Behavior, ids ...quorum.ServerID) {
	for _, id := range ids {
		for _, r := range c.Replicas {
			if r.ID() == id {
				r.SetBehavior(b)
			}
		}
	}
}

// InstallEach installs a freshly made behavior per listed replica.
func InstallEach(c *sim.Cluster, mk func(id quorum.ServerID) replica.Behavior, ids ...quorum.ServerID) {
	for _, id := range ids {
		for _, r := range c.Replicas {
			if r.ID() == id {
				r.SetBehavior(mk(id))
			}
		}
	}
}
