package sim

// TCPCluster stands a replica set up behind the REAL TCP data plane —
// framing, binary codec, group-commit flusher, worker pool — running over
// virtual-time byte streams (transport.VirtualNet), so the harnesses can
// measure ε and replay chaos schedules against the code path production
// actually runs instead of the MemNetwork stand-in.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/transport"
	"pqs/internal/vtime"
)

// Transport selector values for ConsistencyConfig.Transport (and
// chaos.Config.Transport, which aliases them).
const (
	// TransportMem runs client calls directly on the in-process MemNetwork
	// (the default, and the only option before the virtual TCP data plane).
	TransportMem = "mem"
	// TransportTCPVirtual runs every call through the real TCP stack over
	// SimClock-scheduled byte streams. Requires a virtual run.
	TransportTCPVirtual = "tcp-virtual"
)

// DefaultCallTimeout bounds each TCP call in the harnesses (virtual time,
// so a timed-out call costs no wall clock). It must dominate any legitimate
// round trip the scenarios produce — straggler latencies run to a few
// hundred milliseconds — while still reaping the stalls only byte-level
// faults can cause (a corrupted length prefix desyncing a stream).
const DefaultCallTimeout = time.Second

// swapHandler lets the harness replace a server's replica mid-run
// (membership rejoin installs a fresh, empty replica) without tearing the
// TCP server down: the server holds the indirection, not the replica.
type swapHandler struct {
	mu sync.RWMutex
	h  transport.Handler
}

func (s *swapHandler) set(h transport.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// Handle implements transport.Handler.
func (s *swapHandler) Handle(ctx context.Context, req any) (any, error) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	return h.Handle(ctx, req)
}

// TCPCluster is the TCP data plane wired over a cluster's replicas.
type TCPCluster struct {
	// Net is the virtual byte-stream network: latency, pacing and
	// byte-level faults are configured here.
	Net *transport.VirtualNet
	// Client is the quorum client's transport (source identity
	// transport.ClientSource). Calls are bounded by the call timeout.
	Client *transport.TCPClient

	clk     vtime.Clock
	timeout time.Duration
	codec   transport.Codec

	mu       sync.Mutex
	handlers map[quorum.ServerID]*swapHandler
	servers  []*transport.TCPServer
	addrs    map[quorum.ServerID]string
	gossip   map[quorum.ServerID]*transport.TCPClient
}

// TCPClusterOptions parameterises NewTCPClusterOpts beyond the required
// cluster/clock/seed triple.
type TCPClusterOptions struct {
	// CallTimeout bounds each client call; <= 0 means DefaultCallTimeout.
	CallTimeout time.Duration
	// Codec selects the wire codec for every server and client in the
	// fixture (zero value = CodecBinary, the production default).
	Codec transport.Codec
	// Lifecycle configures pooling, redial backoff and the circuit breaker
	// on the main client (zero value = legacy single-connection behaviour).
	Lifecycle transport.LifecycleConfig
}

// NewTCPCluster wires every replica of c behind its own TCP server on a
// fresh VirtualNet over clk, and returns the fixture plus a client
// reaching all of them. callTimeout <= 0 means DefaultCallTimeout.
func NewTCPCluster(c *Cluster, clk vtime.Clock, seed int64, callTimeout time.Duration) (*TCPCluster, error) {
	return NewTCPClusterOpts(c, clk, seed, TCPClusterOptions{CallTimeout: callTimeout})
}

// NewTCPClusterOpts is NewTCPCluster with the full option set.
func NewTCPClusterOpts(c *Cluster, clk vtime.Clock, seed int64, opts TCPClusterOptions) (*TCPCluster, error) {
	if clk == nil {
		return nil, errors.New("sim: TCP cluster requires a clock (virtual run)")
	}
	callTimeout := opts.CallTimeout
	if callTimeout <= 0 {
		callTimeout = DefaultCallTimeout
	}
	t := &TCPCluster{
		Net:      transport.NewVirtualNet(clk, seed),
		clk:      clk,
		timeout:  callTimeout,
		codec:    opts.Codec,
		handlers: make(map[quorum.ServerID]*swapHandler),
		addrs:    make(map[quorum.ServerID]string),
		gossip:   make(map[quorum.ServerID]*transport.TCPClient),
	}
	for _, r := range c.Replicas {
		if err := t.serve(r.ID(), r); err != nil {
			return nil, err
		}
	}
	t.Client = t.NewSourceClient(transport.ClientSource, opts.Lifecycle)
	return t, nil
}

// NewSourceClient builds an extra client over the fixture's network with its
// own source identity and lifecycle configuration. The dial-storm chaos
// action uses this to stand up many independent clients hammering one
// address space; tests use it to compare lifecycle policies side by side.
// The caller owns the client's Close (the fixture does not track it).
func (t *TCPCluster) NewSourceClient(src quorum.ServerID, lc transport.LifecycleConfig) *transport.TCPClient {
	return transport.NewTCPClientOpts(t.addrs, transport.TCPClientOptions{
		Clock:       t.clk,
		Dial:        t.Net.Dialer(src),
		CallTimeout: t.timeout,
		Codec:       t.codec,
		Lifecycle:   lc,
	})
}

// serve binds id's listener and starts its TCP server behind the handler
// indirection. t.mu must not be held.
func (t *TCPCluster) serve(id quorum.ServerID, h transport.Handler) error {
	l, err := t.Net.Listen(id)
	if err != nil {
		return fmt.Errorf("sim: tcp cluster: %w", err)
	}
	t.mu.Lock()
	sh, ok := t.handlers[id]
	if !ok {
		sh = &swapHandler{}
		t.handlers[id] = sh
	}
	sh.set(h)
	t.servers = append(t.servers, transport.ServeListener(l, sh, transport.TCPOptions{Clock: t.clk, Codec: t.codec}))
	t.addrs[id] = l.Addr().String()
	t.mu.Unlock()
	return nil
}

// SetHandler replaces the replica behind id's server (membership rejoin
// with a fresh replica). If id's listener was deregistered (a prior
// leave), a new server is bound; otherwise the live server simply serves
// the new handler.
func (t *TCPCluster) SetHandler(id quorum.ServerID, h transport.Handler) error {
	t.mu.Lock()
	sh, ok := t.handlers[id]
	t.mu.Unlock()
	if ok {
		sh.set(h)
		// Rebind only if a leave removed the address; Listen fails harmlessly
		// when the binding is still live.
		if l, err := t.Net.Listen(id); err == nil {
			t.mu.Lock()
			t.servers = append(t.servers, transport.ServeListener(l, sh, transport.TCPOptions{Clock: t.clk, Codec: t.codec}))
			t.mu.Unlock()
		}
		return nil
	}
	return t.serve(id, h)
}

// GossipTransport returns a Transport for server-initiated traffic
// (diffusion): each call is routed through a per-source TCP client keyed by
// the transport.WithSource identity, so the byte-level fault plane sees
// true server-to-server links instead of attributing gossip to the client.
func (t *TCPCluster) GossipTransport() transport.Transport {
	return gossipTransport{t}
}

type gossipTransport struct{ t *TCPCluster }

// Call implements transport.Transport.
func (g gossipTransport) Call(ctx context.Context, to quorum.ServerID, req any) (any, error) {
	from := transport.SourceFromContext(ctx)
	g.t.mu.Lock()
	cl, ok := g.t.gossip[from]
	if !ok {
		cl = transport.NewTCPClientOpts(g.t.addrs, transport.TCPClientOptions{
			Clock:       g.t.clk,
			Dial:        g.t.Net.Dialer(from),
			CallTimeout: g.t.timeout,
			Codec:       g.t.codec,
		})
		g.t.gossip[from] = cl
	}
	g.t.mu.Unlock()
	return cl.Call(ctx, to, req)
}

// Close tears the whole fixture down: clients first (their connections
// reset), then every server. Inside a SimClock run this must happen before
// the run body returns, so the scheduler's workers all retire.
func (t *TCPCluster) Close() {
	t.mu.Lock()
	servers := t.servers
	t.servers = nil
	gossip := t.gossip
	t.gossip = make(map[quorum.ServerID]*transport.TCPClient)
	t.mu.Unlock()
	if t.Client != nil {
		t.Client.Close()
	}
	for _, cl := range gossip {
		cl.Close()
	}
	for _, s := range servers {
		s.Close()
	}
}
