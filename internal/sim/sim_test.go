package sim

import (
	"math"
	"testing"

	"pqs/internal/combin"
	"pqs/internal/core"
	"pqs/internal/quorum"
	"pqs/internal/register"
)

// tolerance returns a 5-sigma binomial confidence band around eps.
func tolerance(eps float64, trials int) float64 {
	return 5*math.Sqrt(eps*(1-eps)/float64(trials)) + 1e-4
}

func TestEmpiricalEpsilonBenign(t *testing.T) {
	// Theorem 3.2: the stale-read rate of the real protocol must match the
	// exact non-intersection probability of the construction.
	e, err := core.NewEpsilonIntersecting(36, 8)
	if err != nil {
		t.Fatal(err)
	}
	exact := e.Epsilon()
	if exact < 0.01 || exact > 0.5 {
		t.Fatalf("test parameters degenerate: exact eps = %v", exact)
	}
	trials := 4000
	res, err := MeasureConsistency(ConsistencyConfig{
		System: e, Mode: register.Benign, Trials: trials, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fooled != 0 {
		t.Errorf("benign run reported %d fooled reads", res.Fooled)
	}
	if diff := math.Abs(res.Rate - exact); diff > tolerance(exact, trials) {
		t.Errorf("empirical rate %v vs exact eps %v (diff %v)", res.Rate, exact, diff)
	}
}

func TestEmpiricalEpsilonDissemination(t *testing.T) {
	// Theorem 4.2 with b colluding forgers whose replies cannot verify.
	n, q, b := 36, 10, 6
	d, err := core.NewDissemination(n, q, b)
	if err != nil {
		t.Fatal(err)
	}
	exact := d.Epsilon()
	if exact < 0.005 || exact > 0.5 {
		t.Fatalf("test parameters degenerate: exact eps = %v", exact)
	}
	trials := 4000
	res, err := MeasureConsistency(ConsistencyConfig{
		System: d, Mode: register.Dissemination, B: b, Trials: trials, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Self-verifying data: fabrications must never be accepted.
	if res.Fooled != 0 {
		t.Errorf("dissemination reads accepted %d forgeries", res.Fooled)
	}
	if diff := math.Abs(res.Rate - exact); diff > tolerance(exact, trials) {
		t.Errorf("empirical rate %v vs exact eps %v (diff %v)", res.Rate, exact, diff)
	}
}

func TestEmpiricalEpsilonMasking(t *testing.T) {
	// Theorem 5.2: the failure rate of the threshold read protocol must
	// match the exact masking error probability.
	n, q, b := 36, 18, 3
	m, err := core.NewMasking(n, q, b)
	if err != nil {
		t.Fatal(err)
	}
	exact := m.Epsilon()
	if exact < 0.005 || exact > 0.5 {
		t.Fatalf("test parameters degenerate: exact eps = %v (k=%d)", exact, m.K())
	}
	trials := 4000
	res, err := MeasureConsistency(ConsistencyConfig{
		System: m, Mode: register.Masking, K: m.K(), B: b, Trials: trials, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(res.Rate - exact); diff > tolerance(exact, trials) {
		t.Errorf("empirical rate %v vs exact eps %v (diff %v)", res.Rate, exact, diff)
	}
	// The threshold makes forged acceptance possible but must be rare; it
	// is included in the overall rate which we already checked. Accounting:
	if res.Correct+res.Stale+res.Fooled != res.Trials {
		t.Errorf("accounting broken: %+v", res)
	}
}

func TestMaskingFooledMatchesHypergeometricTail(t *testing.T) {
	// The fooled fraction alone must match P(|Q∩B| >= k) (forged candidates
	// carry an overwhelming stamp, so they win exactly when they pass k).
	n, q, b := 25, 15, 4
	m, err := core.NewMasking(n, q, b)
	if err != nil {
		t.Fatal(err)
	}
	exact := combin.HypergeomTailGE(n, b, q, m.K())
	trials := 4000
	res, err := MeasureConsistency(ConsistencyConfig{
		System: m, Mode: register.Masking, K: m.K(), B: b, Trials: trials, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fooledRate := float64(res.Fooled) / float64(res.Trials)
	if diff := math.Abs(fooledRate - exact); diff > tolerance(exact, trials) {
		t.Errorf("fooled rate %v vs P(X>=k) %v", fooledRate, exact)
	}
}

func TestMeasureConsistencyValidation(t *testing.T) {
	e, _ := core.NewEpsilonIntersecting(10, 3)
	if _, err := MeasureConsistency(ConsistencyConfig{System: e, Mode: register.Benign}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := MeasureConsistency(ConsistencyConfig{Mode: register.Benign, Trials: 1}); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := MeasureConsistency(ConsistencyConfig{System: e, Mode: register.Mode(0), Trials: 1}); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestMeasureLoadUniform(t *testing.T) {
	u, err := quorum.NewUniform(30, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureLoad(u, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := u.Load() // 0.2
	if math.Abs(res.MeanRate-want) > 0.01 {
		t.Errorf("mean rate %v, want %v", res.MeanRate, want)
	}
	if math.Abs(res.MaxRate-want) > 0.03 {
		t.Errorf("max rate %v, want ~%v (uniform system: all servers equal)", res.MaxRate, want)
	}
	if len(res.PerServer) != 30 {
		t.Errorf("per-server size %d", len(res.PerServer))
	}
	if _, err := MeasureLoad(u, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestMeasureLoadGrid(t *testing.T) {
	g, err := quorum.NewGrid(36)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureLoad(g, 20000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MaxRate-g.Load()) > 0.02 {
		t.Errorf("grid max rate %v, want ~%v", res.MaxRate, g.Load())
	}
}

func TestMeasureAvailabilityMatchesExact(t *testing.T) {
	trials := 30000
	u, err := quorum.NewUniform(30, 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := quorum.NewGrid(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []quorum.System{u, g} {
		for _, p := range []float64{0.3, 0.6, 0.8} {
			emp, err := MeasureAvailability(sys, p, trials, 7)
			if err != nil {
				t.Fatal(err)
			}
			exact := sys.FailProb(p)
			if diff := math.Abs(emp - exact); diff > tolerance(exact, trials) {
				t.Errorf("%s p=%v: MC %v vs exact %v", sys.Name(), p, emp, exact)
			}
		}
	}
}

func TestMeasureAvailabilityByzGridWithinBounds(t *testing.T) {
	// ByzGrid.FailProb is a documented union-bound approximation; the MC
	// estimate is the ground truth and must not exceed it.
	g, err := quorum.NewMaskGrid(49, 3)
	if err != nil {
		t.Fatal(err)
	}
	trials := 20000
	for _, p := range []float64{0.1, 0.3, 0.5} {
		emp, err := MeasureAvailability(g, p, trials, 8)
		if err != nil {
			t.Fatal(err)
		}
		upper := g.FailProb(p)
		if emp > upper+tolerance(upper, trials) {
			t.Errorf("p=%v: MC %v exceeds union bound %v", p, emp, upper)
		}
	}
}

func TestMeasureAvailabilityValidation(t *testing.T) {
	u, _ := quorum.NewUniform(10, 3)
	if _, err := MeasureAvailability(u, -0.1, 10, 1); err == nil {
		t.Error("bad p accepted")
	}
	if _, err := MeasureAvailability(u, 0.5, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestConsistencyUnderCrashes(t *testing.T) {
	sys, err := quorum.NewMajority(15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureConsistencyUnderCrashes(CrashConsistencyConfig{
		System: sys, CrashP: 0.1, Trials: 300, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct+res.Stale+res.Unavailable != res.Trials {
		t.Errorf("accounting broken: %+v", res)
	}
	// Majority quorums with 10% crashes: the overlap server is crashed only
	// occasionally; failure rate must stay small but the harness must not
	// report exactly zero information (all trials unavailable would be a bug).
	if res.Unavailable == res.Trials {
		t.Errorf("all trials unavailable: %+v", res)
	}
	if res.Rate > 0.2 {
		t.Errorf("failure rate %v implausibly high for majority at p=0.1", res.Rate)
	}
}

func TestClusterHelpers(t *testing.T) {
	c := NewCluster(5, 1)
	if c.N() != 5 || len(c.Replicas) != 5 {
		t.Error("cluster size wrong")
	}
	for i, r := range c.Replicas {
		if int(r.ID()) != i {
			t.Errorf("replica %d has id %d", i, r.ID())
		}
	}
}
