package sim

import (
	"fmt"
	"testing"
	"time"

	"pqs/internal/core"
	"pqs/internal/register"
)

// TestMeasureConsistencyDeterministic is the determinism regression for the
// Monte-Carlo harness: two MeasureConsistency invocations with the same
// seed must produce identical results, including under simulated loss and
// failure-triggered spare promotion (drop decisions and latency draws are
// counter-hashed per destination, so both replay from the seed even though
// calls are dispatched concurrently). Hedge timers used to be the one
// wall-clock input and forced HedgeDelay to zero here; under Virtual the
// vtime.SimClock folds them into the replayable event order, so the
// hedged cases below assert bit-equality too.
func TestMeasureConsistencyDeterministic(t *testing.T) {
	sys, err := core.NewEpsilonIntersectingEll(60, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := core.NewMasking(60, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  ConsistencyConfig
	}{
		{"benign", ConsistencyConfig{System: sys, Mode: register.Benign, Trials: 150, Seed: 11}},
		{"benign-lossy", ConsistencyConfig{System: sys, Mode: register.Benign, Trials: 150, Seed: 12, DropProb: 0.08}},
		{"benign-lossy-spares", ConsistencyConfig{System: sys, Mode: register.Benign, Trials: 150, Seed: 13, DropProb: 0.08, Spares: 3}},
		{"masking-byz", ConsistencyConfig{System: mask, Mode: register.Masking, K: mask.K(), B: mask.B(), Trials: 120, Seed: 14}},
		{"dissem-byz-eager", ConsistencyConfig{System: sys, Mode: register.Dissemination, B: 4, Trials: 120, Seed: 15, EagerRead: true}},

		// Hedged configurations under a SimClock — the cases PR 3 had to
		// exclude from this suite because hedge timers read the wall
		// clock. Virtual time puts timer firing into the replayable event
		// order, so even runs whose spare promotion is timer-driven must
		// be bit-identical.
		{"virtual-hedged", ConsistencyConfig{
			System: sys, Mode: register.Benign, Trials: 120, Seed: 16,
			Virtual: true, LatencyMin: time.Millisecond, LatencyMax: 3 * time.Millisecond,
			StragglerN: 3, StragglerLatency: 25 * time.Millisecond,
			Spares: 2, HedgeDelay: 5 * time.Millisecond, EagerRead: true,
		}},
		{"virtual-adaptive-hedged-lossy", ConsistencyConfig{
			System: sys, Mode: register.Benign, Trials: 120, Seed: 17,
			Virtual: true, LatencyMin: time.Millisecond, LatencyMax: 3 * time.Millisecond,
			StragglerN: 3, StragglerLatency: 25 * time.Millisecond, DropProb: 0.05,
			Spares: 3, HedgeDelay: 5 * time.Millisecond, AdaptiveHedge: true, EagerRead: true,
		}},
		{"virtual-masking-byz-hedged", ConsistencyConfig{
			System: mask, Mode: register.Masking, K: mask.K(), B: mask.B(), Trials: 100, Seed: 18,
			Virtual: true, LatencyMin: time.Millisecond, LatencyMax: 3 * time.Millisecond,
			StragglerN: 2, StragglerLatency: 20 * time.Millisecond,
			Spares: 2, HedgeDelay: 4 * time.Millisecond, AdaptiveHedge: true, EagerRead: true,
		}},

		// The REAL data plane: calls framed by the binary codec, coalesced
		// by the group-commit flusher, carried over virtual-time byte
		// streams. Byte-level chunk latency draws and connection-reset
		// faults must replay from the seed exactly like MemNetwork's
		// per-call draws do.
		{"tcp-virtual", ConsistencyConfig{
			System: sys, Mode: register.Benign, Trials: 100, Seed: 19,
			Virtual: true, Transport: TransportTCPVirtual,
			LatencyMin: time.Millisecond, LatencyMax: 3 * time.Millisecond,
		}},
		{"tcp-virtual-lossy-hedged", ConsistencyConfig{
			System: sys, Mode: register.Benign, Trials: 100, Seed: 20,
			Virtual: true, Transport: TransportTCPVirtual,
			LatencyMin: time.Millisecond, LatencyMax: 3 * time.Millisecond,
			StragglerN: 3, StragglerLatency: 25 * time.Millisecond, DropProb: 0.01,
			Spares: 3, HedgeDelay: 8 * time.Millisecond, AdaptiveHedge: true, EagerRead: true,
		}},
		{"tcp-virtual-masking-byz", ConsistencyConfig{
			System: mask, Mode: register.Masking, K: mask.K(), B: mask.B(), Trials: 80, Seed: 21,
			Virtual: true, Transport: TransportTCPVirtual,
			LatencyMin: time.Millisecond, LatencyMax: 3 * time.Millisecond,
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			a, err := MeasureConsistency(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := MeasureConsistency(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("same seed, divergent results:\n%s", diffResults(a, b))
			}
		})
	}
}

// diffResults renders the first divergent field of two consistency results.
func diffResults(a, b ConsistencyResult) string {
	type field struct {
		name string
		av   any
		bv   any
	}
	for _, f := range []field{
		{"Trials", a.Trials, b.Trials},
		{"Correct", a.Correct, b.Correct},
		{"Stale", a.Stale, b.Stale},
		{"Fooled", a.Fooled, b.Fooled},
		{"Rate", a.Rate, b.Rate},
	} {
		if f.av != f.bv {
			return fmt.Sprintf("first divergent field %s: %v vs %v\n  a: %+v\n  b: %+v", f.name, f.av, f.bv, a, b)
		}
	}
	return fmt.Sprintf("results differ but fields match?\n  a: %+v\n  b: %+v", a, b)
}

// TestMeasureConsistencyHedgedStillSafe pins down the remaining knowingly
// nondeterministic configuration: hedging under the WALL clock (Virtual
// unset), where spare promotion depends on real timers and results may
// legitimately differ between runs — but the measurement must still
// complete and stay within sane bounds. This documents the boundary of the
// determinism contract: wall-clock hedging is best-effort, virtual-clock
// hedging (above) is bit-exact.
func TestMeasureConsistencyHedgedStillSafe(t *testing.T) {
	sys, err := core.NewEpsilonIntersectingEll(40, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureConsistency(ConsistencyConfig{
		System: sys, Mode: register.Benign, Trials: 60, Seed: 21,
		Spares: 2, HedgeDelay: 200 * time.Microsecond, DropProb: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct+res.Stale+res.Fooled != res.Trials {
		t.Fatalf("classification does not partition trials: %+v", res)
	}
}
