package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"pqs/internal/diffusion"
	"pqs/internal/quorum"
	"pqs/internal/register"
	"pqs/internal/ts"
)

// MeasureDiffusionConsistency measures the Section 1.1 claim that a
// diffusion mechanism drives the effective ε toward zero for updates
// sufficiently dispersed in time: each trial writes under the benign
// protocol, lets the cluster run the given number of synchronized push-pull
// gossip rounds (with the given fanout), then reads, on a fresh cluster per
// trial. With rounds = 0 the rate reproduces the construction's ε; as
// rounds grow past the O(log n) epidemic spreading time the rate drops to
// zero.
func MeasureDiffusionConsistency(sys quorum.System, rounds, fanout, trials int, seed int64) (ConsistencyResult, error) {
	if trials <= 0 {
		return ConsistencyResult{}, errors.New("sim: trials must be positive")
	}
	if rounds < 0 || fanout < 1 {
		return ConsistencyResult{}, errors.New("sim: rounds must be >= 0 and fanout >= 1")
	}
	res := ConsistencyResult{Trials: trials}
	ctx := context.Background()
	for i := 0; i < trials; i++ {
		cluster := NewCluster(sys.N(), seed+int64(i)*13)
		client, err := register.NewClient(register.Options{
			System:    sys,
			Mode:      register.Benign,
			Transport: cluster.Net,
			Rand:      rand.New(rand.NewSource(seed + int64(i)*17 + 1)),
			Clock:     ts.NewClock(1),
		})
		if err != nil {
			return res, err
		}
		group, err := diffusion.NewGroup(cluster.Replicas, cluster.Net, fanout, nil, seed+int64(i)*19)
		if err != nil {
			return res, err
		}
		key, want := "x", fmt.Sprintf("v%d", i)
		if _, err := client.Write(ctx, key, []byte(want)); err != nil {
			return res, fmt.Errorf("sim: trial %d write: %w", i, err)
		}
		for r := 0; r < rounds; r++ {
			if err := group.Step(ctx); err != nil {
				return res, err
			}
		}
		rr, err := client.Read(ctx, key)
		if err != nil {
			return res, fmt.Errorf("sim: trial %d read: %w", i, err)
		}
		if rr.Found && string(rr.Value) == want {
			res.Correct++
		} else {
			res.Stale++
		}
	}
	res.Rate = 1 - float64(res.Correct)/float64(res.Trials)
	return res, nil
}
