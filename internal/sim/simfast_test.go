package sim

import (
	"math"
	"testing"
	"time"

	"pqs/internal/core"
	"pqs/internal/register"
)

// TestSimFastLongFormEpsilon is the CI `sim-fast` gate: the long-form ε
// measurement — hundreds of trials over a 100-server cluster with tens of
// milliseconds of injected per-call latency, stragglers and adaptive
// hedging — which real-time sleeps made far too slow for CI. Under a
// SimClock it must cover its simulated duration at least 50x faster than
// wall time, proving the virtual-time speedup is real and gating
// regressions that would reintroduce wall-clock waits into the simulated
// path.
//
// Run it alone with: make sim-fast
func TestSimFastLongFormEpsilon(t *testing.T) {
	sys, err := core.NewEpsilonIntersectingEll(100, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConsistencyConfig{
		System: sys, Mode: register.Benign, Trials: 400, Seed: 42,
		Virtual:    true,
		LatencyMin: 20 * time.Millisecond, LatencyMax: 60 * time.Millisecond,
		StragglerN: 5, StragglerLatency: 150 * time.Millisecond,
		Spares: 2, HedgeDelay: 80 * time.Millisecond, AdaptiveHedge: true,
		EagerRead: true,
	}
	start := time.Now()
	res, err := MeasureConsistency(cfg)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimElapsed < 10*time.Second {
		t.Fatalf("run simulated only %v; the latency injection is not reaching the clock", res.SimElapsed)
	}
	speedup := float64(res.SimElapsed) / float64(wall)
	t.Logf("simulated %v in %v wall: %.0fx speedup (ε=%.4f over %d trials, bound %.3g)",
		res.SimElapsed.Round(time.Millisecond), wall.Round(time.Millisecond),
		speedup, res.Rate, res.Trials, sys.EpsilonBound())
	if speedup < 50 {
		t.Fatalf("virtual time ran only %.1fx faster than wall (%v simulated in %v); want >= 50x",
			speedup, res.SimElapsed, wall)
	}
	// The measurement itself must stay sane: the bound check with slack
	// for the finite trial count (the adversarial version lives in the
	// chaos suite; this is the smoke assertion for the long-form run).
	sigma := math.Sqrt(sys.EpsilonBound() * (1 - sys.EpsilonBound()) / float64(cfg.Trials))
	if res.Rate > sys.EpsilonBound()+3*sigma {
		t.Fatalf("long-form ε %.5f far above bound %.5f", res.Rate, sys.EpsilonBound())
	}
}

// TestSimFastLongFormEpsilonTCP is the virtual-TCP half of the `sim-fast`
// gate: the long-form ε measurement runs through the REAL data plane —
// binary codec, group-commit flusher, worker pool — over SimClock-scheduled
// byte streams, with per-chunk latency in the tens of milliseconds,
// stragglers and adaptive hedging. The wire path costs real scheduler work
// (every chunk is a timer, every reply crosses read loop → call → gather),
// so the bar is >= 20x rather than the MemNetwork run's 50x; what it gates
// is the same property: simulated seconds must not cost wall seconds, now
// for the code path production actually runs.
//
// Run it alone with: make sim-fast
func TestSimFastLongFormEpsilonTCP(t *testing.T) {
	sys, err := core.NewEpsilonIntersectingEll(100, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConsistencyConfig{
		System: sys, Mode: register.Benign, Trials: 200, Seed: 42,
		Virtual:    true,
		Transport:  TransportTCPVirtual,
		LatencyMin: 10 * time.Millisecond, LatencyMax: 30 * time.Millisecond,
		StragglerN: 5, StragglerLatency: 80 * time.Millisecond,
		Spares: 2, HedgeDelay: 90 * time.Millisecond, AdaptiveHedge: true,
		EagerRead: true,
	}
	start := time.Now()
	res, err := MeasureConsistency(cfg)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimElapsed < 5*time.Second {
		t.Fatalf("run simulated only %v; chunk latency is not reaching the byte streams", res.SimElapsed)
	}
	speedup := float64(res.SimElapsed) / float64(wall)
	t.Logf("virtual TCP: simulated %v in %v wall: %.0fx speedup (ε=%.4f over %d trials, bound %.3g)",
		res.SimElapsed.Round(time.Millisecond), wall.Round(time.Millisecond),
		speedup, res.Rate, res.Trials, sys.EpsilonBound())
	if speedup < 20 {
		t.Fatalf("virtual TCP ran only %.1fx faster than wall (%v simulated in %v); want >= 20x",
			speedup, res.SimElapsed, wall)
	}
	sigma := math.Sqrt(sys.EpsilonBound() * (1 - sys.EpsilonBound()) / float64(cfg.Trials))
	if res.Rate > sys.EpsilonBound()+3*sigma {
		t.Fatalf("long-form ε %.5f far above bound %.5f", res.Rate, sys.EpsilonBound())
	}
}

// TestAdaptiveHedgeEpsilonPreserved re-measures ε with adaptive hedging in
// effect: the hedged client's failure rate must not exceed the unhedged
// client's beyond finite-sample noise, because spare promotion — whether
// failure-triggered or timer-triggered — only conditions the completed
// access set on liveness, never on returned values (the promotion argument
// in register.Options). Both runs are deterministic (same seed, virtual
// clock); the slack tolerates legitimate future shifts in the sampling
// sequence, not run-to-run randomness.
func TestAdaptiveHedgeEpsilonPreserved(t *testing.T) {
	sys, err := core.NewEpsilonIntersectingEll(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := ConsistencyConfig{
		System: sys, Mode: register.Benign, Trials: 500, Seed: 23,
		Virtual:    true,
		LatencyMin: time.Millisecond, LatencyMax: 3 * time.Millisecond,
		StragglerN: 4, StragglerLatency: 25 * time.Millisecond,
		DropProb: 0.08,
	}
	hedged := base
	hedged.Spares = 3
	hedged.HedgeDelay = 5 * time.Millisecond
	hedged.AdaptiveHedge = true
	hedged.EagerRead = true

	rb, err := MeasureConsistency(base)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := MeasureConsistency(hedged)
	if err != nil {
		t.Fatal(err)
	}
	sigma := math.Sqrt(math.Max(rb.Rate, 0.01) * (1 - rb.Rate) / float64(base.Trials))
	t.Logf("ε unhedged %.4f, adaptive-hedged %.4f (3σ slack %.4f), hedged run simulated %v vs %v",
		rb.Rate, rh.Rate, 3*sigma, rh.SimElapsed.Round(time.Millisecond), rb.SimElapsed.Round(time.Millisecond))
	if rh.Rate > rb.Rate+3*sigma {
		t.Fatalf("adaptive hedging degraded ε: %.4f hedged vs %.4f unhedged (+3σ = %.4f)",
			rh.Rate, rb.Rate, rb.Rate+3*sigma)
	}
	// And it must actually have hedged something: the straggler subset
	// plus drops guarantee promotions, so a zero here means the knob was
	// silently disconnected.
	if rh.SimElapsed >= rb.SimElapsed {
		t.Fatalf("hedged run was not faster in virtual time (%v vs %v); hedging is not engaging",
			rh.SimElapsed, rb.SimElapsed)
	}
}
