// Package sim is the Monte-Carlo harness that validates the paper's
// analytic results against the actual protocol implementation: it stands up
// clusters of replicas on the simulated network, injects crash and
// Byzantine failures, drives the register client, and measures
//
//   - empirical consistency error (the ε of Theorems 3.2, 4.2 and 5.2),
//   - empirical per-server load (Definition 2.4), and
//   - empirical availability (failure probability, Definition 2.6).
//
// Every measurement is deterministic given its seed.
package sim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"pqs/internal/config"
	"pqs/internal/quorum"
	"pqs/internal/register"
	"pqs/internal/replica"
	"pqs/internal/sv"
	"pqs/internal/transport"
	"pqs/internal/ts"
	"pqs/internal/vtime"
)

// Cluster is a set of replicas on a simulated network.
type Cluster struct {
	Net      *transport.MemNetwork
	Replicas []*replica.Replica
}

// NewClusterCfg builds a cluster from the unified config.Cluster options
// struct shared with the public pqs.NewCluster: Cells × N replicas (Cells
// 0 or 1 = single cell) on one simulated network, with the network's
// latency on cfg.Clock (nil = wall clock). The historical constructors
// NewCluster, NewClusterClock and NewClusterCellsClock are thin wrappers.
func NewClusterCfg(cfg config.Cluster) *Cluster {
	c := &Cluster{Net: transport.NewMemNetwork(cfg.Seed)}
	c.Net.SetClock(cfg.Clock)
	total := cfg.Total()
	for i := 0; i < total; i++ {
		r := replica.New(quorum.ServerID(i))
		c.Replicas = append(c.Replicas, r)
		c.Net.Register(quorum.ServerID(i), r)
	}
	return c
}

// NewCluster builds n correct replicas on a fresh simulated network (wall
// clock).
func NewCluster(n int, seed int64) *Cluster {
	return NewClusterCfg(config.Cluster{N: n, Seed: seed})
}

// NewClusterClock builds a cluster whose network runs on the given time
// source (nil means the wall clock). The harnesses pass a vtime.SimClock
// so simulated latency is virtual: instant to execute, deterministic to
// replay.
func NewClusterClock(n int, seed int64, clk vtime.Clock) *Cluster {
	return NewClusterCfg(config.Cluster{N: n, Seed: seed, Clock: clk})
}

// NewClusterCellsClock builds a multi-cell cluster: cells×n replicas laid
// out for a cell-partitioned client (register.Options.Cells = cells over a
// system with N = n), cell i owning global ids [i·n, (i+1)·n). All cells
// share one simulated network and clock, so cross-cell faults are injected
// with the usual per-server methods over global ids. The chaos harness and
// the TCP plane (NewTCPCluster wraps the whole Cluster, so every cell's
// replicas get virtual byte streams) build on this layout.
func NewClusterCellsClock(cells, n int, seed int64, clk vtime.Clock) *Cluster {
	return NewClusterCfg(config.Cluster{Cells: cells, N: n, Seed: seed, Clock: clk})
}

// N returns the cluster size.
func (c *Cluster) N() int { return len(c.Replicas) }

// ConsistencyConfig drives MeasureConsistency.
//
// The access-tuning knobs live canonically on the embedded config.Tuning
// block (Tuning.W is what the legacy flat WriteW forwarded to; ReadRepair
// and full HedgeDeviations parity arrived with the block) and the shape
// knobs on config.Topology; the flat fields of the same names below are
// deprecated aliases that forward, with the embedded block winning when
// both are set. See the README section "Configuring access tuning".
type ConsistencyConfig struct {
	// Tuning is the canonical access-tuning block (register.Options knobs).
	config.Tuning
	// Topology is the canonical shape block. MeasureConsistency honors
	// Cells/CellVnodes (a cell-partitioned measurement), Transport and the
	// latency model; Topology.N is ignored (the universe size comes from
	// System.N()).
	config.Topology
	// System is the quorum system under test (carrier + strategy).
	System quorum.System
	// Mode selects the protocol; K is the masking threshold.
	Mode register.Mode
	K    int
	// B Byzantine servers (ids 0..B-1) are installed for Dissemination and
	// Masking modes: forgers colluding on a fabricated value with an
	// overwhelming timestamp (the strongest adversary the analysis covers,
	// since timestamp order decides among accepted candidates). Ignored in
	// Benign mode.
	B int
	// Trials is the number of independent write-then-read experiments.
	Trials int
	// Seed makes the run reproducible.
	Seed int64

	// Spares, HedgeDelay and EagerRead enable the client's straggler-
	// tolerant access path (register.Options), so the empirical ε can be
	// measured with hedging in effect. Spares requires System to implement
	// quorum.SpareSampler.
	//
	// Deprecated: set the embedded Tuning block; these flat aliases forward.
	Spares     int
	HedgeDelay time.Duration
	EagerRead  bool
	// AdaptiveHedge and HedgeDeviations enable the adaptive hedge-delay
	// estimator (register.Options.AdaptiveHedge): the delay tracks
	// SRTT + HedgeDeviations·RTTVAR of the observed reply latencies.
	AdaptiveHedge   bool
	HedgeDeviations float64
	// DropProb makes the simulated network lose each call with this
	// probability, forcing failure-triggered spare promotion.
	DropProb float64
	// WriteW, when non-zero, completes writes at WriteW acknowledgements
	// (register.Options.W).
	//
	// Deprecated: set Tuning.W; this flat alias forwards.
	WriteW int

	// Virtual runs the measurement under a fresh vtime.SimClock: simulated
	// latency and hedge timers execute in virtual time, so a run that
	// simulates minutes completes in wall milliseconds AND is bit-for-bit
	// deterministic even with hedging enabled — the configuration the
	// wall clock could never replay.
	Virtual bool
	// Transport selects the data plane: TransportMem (default) calls the
	// replicas through the in-process MemNetwork; TransportTCPVirtual runs
	// every call through the real TCP stack — framing, binary codec,
	// group-commit flusher, worker pool — over virtual-time byte streams,
	// so the measured ε covers the deployed read/write path. The latency,
	// straggler and drop knobs then configure the byte-stream network
	// (per-chunk draws; DropProb resets connections, the stream analogue
	// of a lost call). Requires Virtual.
	Transport string
	// LatencyMin and LatencyMax, when LatencyMax > 0, give every call a
	// uniform simulated latency in [LatencyMin, LatencyMax] (drawn
	// deterministically from the seed). This is what makes hedge timers
	// meaningful under Virtual: without latency every reply is instant and
	// no hedge ever fires.
	//
	// Deprecated: set Topology.LatencyMin/LatencyMax; these flat aliases
	// forward (as does the flat Transport above, for Topology.Transport).
	LatencyMin, LatencyMax time.Duration
	// StragglerN and StragglerLatency, when StragglerN > 0, override the
	// latency of servers 0..StragglerN-1 to exactly StragglerLatency,
	// modelling a slow subset the hedge should route around.
	StragglerN       int
	StragglerLatency time.Duration
}

// ConsistencyResult summarizes a consistency measurement.
type ConsistencyResult struct {
	Trials int
	// Correct counts reads that returned the last written value.
	Correct int
	// Stale counts reads that returned an older genuine value or found
	// nothing.
	Stale int
	// Fooled counts reads that returned a fabricated value.
	Fooled int
	// Rate is the empirical failure probability (1 - Correct/Trials): the
	// quantity Theorems 3.2/4.2/5.2 bound by ε.
	Rate float64
	// SimElapsed is the virtual time the run consumed (zero unless
	// ConsistencyConfig.Virtual): the "simulated seconds" side of the
	// speedup a SimClock buys over real-time sleeps.
	SimElapsed time.Duration
}

// MeasureConsistency runs write-then-read trials (reads never concurrent
// with writes, matching the theorems' premise) and reports how often the
// read missed the last written value. With cfg.Virtual the whole
// measurement executes inside a vtime.SimClock scheduler.
func MeasureConsistency(cfg ConsistencyConfig) (ConsistencyResult, error) {
	if !cfg.Virtual {
		return measureConsistency(cfg, nil)
	}
	sc := vtime.NewSimClock()
	var res ConsistencyResult
	var err error
	sc.Run(func() {
		res, err = measureConsistency(cfg, sc)
	})
	res.SimElapsed = sc.Elapsed()
	return res, err
}

// measureConsistency is the measurement body, running on clk (nil = wall;
// under a SimClock the caller is a registered scheduler worker).
func measureConsistency(cfg ConsistencyConfig, clk *vtime.SimClock) (ConsistencyResult, error) {
	if cfg.Trials <= 0 {
		return ConsistencyResult{}, errors.New("sim: Trials must be positive")
	}
	if cfg.System == nil {
		return ConsistencyResult{}, errors.New("sim: System is required")
	}
	n := cfg.System.N()
	// Resolve the canonical Tuning/Topology blocks against the deprecated
	// flat aliases (WriteW is the legacy spelling of Tuning.W). A config
	// written entirely in either spelling resolves to the same values.
	tun := cfg.Tuning.Or(config.Tuning{
		Spares:          cfg.Spares,
		HedgeDelay:      cfg.HedgeDelay,
		AdaptiveHedge:   cfg.AdaptiveHedge,
		HedgeDeviations: cfg.HedgeDeviations,
		EagerRead:       cfg.EagerRead,
		W:               cfg.WriteW,
	})
	topo := cfg.Topology.Or(config.Topology{
		Transport:  cfg.Transport,
		LatencyMin: cfg.LatencyMin,
		LatencyMax: cfg.LatencyMax,
	})
	var netClk vtime.Clock // avoid a typed-nil *SimClock inside the interface
	if clk != nil {
		netClk = clk
	}
	cluster := NewClusterCfg(config.Cluster{Cells: topo.Cells, N: n, Seed: cfg.Seed, Clock: netClk})
	var callTransport transport.Transport = cluster.Net
	switch topo.Transport {
	case "", TransportMem:
		if cfg.DropProb > 0 {
			cluster.Net.SetDropProb(cfg.DropProb)
		}
		if topo.LatencyMax > 0 {
			cluster.Net.SetLatency(topo.LatencyMin, topo.LatencyMax)
		}
		for i := 0; i < cfg.StragglerN && i < n; i++ {
			cluster.Net.SetServerLatency(quorum.ServerID(i), cfg.StragglerLatency, cfg.StragglerLatency)
		}
	case TransportTCPVirtual:
		if clk == nil {
			return ConsistencyResult{}, errors.New("sim: Transport tcp-virtual requires Virtual")
		}
		tc, err := NewTCPCluster(cluster, clk, cfg.Seed+0x7C9, 0)
		if err != nil {
			return ConsistencyResult{}, err
		}
		defer tc.Close()
		if cfg.DropProb > 0 {
			tc.Net.SetDrop(cfg.DropProb)
		}
		if topo.LatencyMax > 0 {
			tc.Net.SetLatency(topo.LatencyMin, topo.LatencyMax)
		}
		for i := 0; i < cfg.StragglerN && i < n; i++ {
			tc.Net.SetServerLatency(quorum.ServerID(i), cfg.StragglerLatency, cfg.StragglerLatency)
		}
		callTransport = tc.Client
	default:
		return ConsistencyResult{}, fmt.Errorf("sim: unknown Transport %q", topo.Transport)
	}

	opts := register.Options{
		System:          cfg.System,
		Mode:            cfg.Mode,
		K:               cfg.K,
		Transport:       callTransport,
		Rand:            rand.New(rand.NewSource(cfg.Seed + 1)),
		Clock:           ts.NewClock(1),
		Spares:          tun.Spares,
		HedgeDelay:      tun.HedgeDelay,
		EagerRead:       tun.EagerRead,
		AdaptiveHedge:   tun.AdaptiveHedge,
		HedgeDeviations: tun.HedgeDeviations,
		W:               tun.W,
		ReadRepair:      tun.ReadRepair,
		Cells:           topo.Cells,
		RingVnodes:      topo.CellVnodes,
	}
	if clk != nil {
		opts.Time = clk
	}

	forgedValue := []byte("\x00fabricated")
	switch cfg.Mode {
	case register.Benign:
	case register.Dissemination:
		kp, err := sv.GenerateKey(SeededReader(cfg.Seed + 2))
		if err != nil {
			return ConsistencyResult{}, err
		}
		reg := sv.NewRegistry()
		reg.Add(1, kp.Public)
		opts.Signer = kp.Private
		opts.Registry = reg
		installForgers(cluster, cfg.B, forgedValue)
	case register.Masking:
		installForgers(cluster, cfg.B, forgedValue)
	default:
		return ConsistencyResult{}, fmt.Errorf("sim: unsupported mode %v", cfg.Mode)
	}

	client, err := register.NewClient(opts)
	if err != nil {
		return ConsistencyResult{}, err
	}

	ctx := context.Background()
	res := ConsistencyResult{Trials: cfg.Trials}
	for i := 0; i < cfg.Trials; i++ {
		key := fmt.Sprintf("k%d", i)
		want := fmt.Sprintf("v%d", i)
		if _, err := client.Write(ctx, key, []byte(want)); err != nil {
			return res, fmt.Errorf("sim: trial %d write: %w", i, err)
		}
		rr, err := client.Read(ctx, key)
		if err != nil {
			return res, fmt.Errorf("sim: trial %d read: %w", i, err)
		}
		switch {
		case rr.Found && string(rr.Value) == want:
			res.Correct++
		case rr.Found && string(rr.Value) == string(forgedValue):
			res.Fooled++
		default:
			res.Stale++
		}
	}
	res.Rate = 1 - float64(res.Correct)/float64(res.Trials)
	client.WaitDrained() // retire background drains before the cluster goes away
	return res, nil
}

// installForgers makes servers 0..b-1 collude on a fabricated value with an
// overwhelming timestamp.
func installForgers(c *Cluster, b int, value []byte) {
	forged := replica.Forger{
		Value: value,
		Stamp: ts.Stamp{Counter: math.MaxUint64 / 2, Writer: 0xFFFF},
		Sig:   []byte("no-valid-signature"),
	}
	for i := 0; i < b && i < len(c.Replicas); i++ {
		c.Replicas[i].SetBehavior(forged)
	}
}

// SeededReader returns a deterministic entropy source for reproducible
// signing keys (shared by the sim and chaos harnesses). The stream
// advances across Reads like a real entropy source.
func SeededReader(seed int64) io.Reader {
	return &seededReader{rng: rand.New(rand.NewSource(seed))}
}

type seededReader struct{ rng *rand.Rand }

func (s *seededReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(s.rng.Intn(256))
	}
	return len(p), nil
}

// LoadResult summarizes an empirical load measurement.
type LoadResult struct {
	// Trials is the number of quorums sampled.
	Trials int
	// MaxRate is the access frequency of the busiest server: the empirical
	// load L_w(Q) of Definition 2.4.
	MaxRate float64
	// MeanRate is the average access frequency, E|Q|/n.
	MeanRate float64
	// PerServer is each server's access frequency.
	PerServer []float64
}

// MeasureLoad samples quorums under the system's strategy and reports
// per-server access frequencies.
func MeasureLoad(sys quorum.System, trials int, seed int64) (LoadResult, error) {
	if trials <= 0 {
		return LoadResult{}, errors.New("sim: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, sys.N())
	for i := 0; i < trials; i++ {
		for _, id := range sys.Pick(rng) {
			counts[id]++
		}
	}
	res := LoadResult{Trials: trials, PerServer: make([]float64, sys.N())}
	var sum float64
	for i, c := range counts {
		f := float64(c) / float64(trials)
		res.PerServer[i] = f
		sum += f
		if f > res.MaxRate {
			res.MaxRate = f
		}
	}
	res.MeanRate = sum / float64(sys.N())
	return res, nil
}

// MeasureAvailability estimates the failure probability F_p by sampling
// crash patterns (each server down independently with probability p) and
// checking for a live quorum. The system must implement quorum.LiveChecker.
func MeasureAvailability(sys quorum.System, p float64, trials int, seed int64) (float64, error) {
	checker, ok := sys.(quorum.LiveChecker)
	if !ok {
		return 0, fmt.Errorf("sim: %s does not support live-quorum checking", sys.Name())
	}
	if trials <= 0 {
		return 0, errors.New("sim: trials must be positive")
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("sim: crash probability %v outside [0,1]", p)
	}
	rng := rand.New(rand.NewSource(seed))
	n := sys.N()
	crashed := make([]bool, n)
	failures := 0
	for t := 0; t < trials; t++ {
		for i := range crashed {
			crashed[i] = rng.Float64() < p
		}
		if !checker.LiveQuorumExists(func(id quorum.ServerID) bool { return crashed[id] }) {
			failures++
		}
	}
	return float64(failures) / float64(trials), nil
}

// CrashConsistencyConfig drives MeasureConsistencyUnderCrashes: benign-mode
// consistency where a random fraction of servers crash between the write
// and the read. This exercises the interplay of availability and
// consistency that motivates fault tolerance A = n - q + 1.
type CrashConsistencyConfig struct {
	System quorum.System
	// CrashP is each server's independent crash probability after the write.
	CrashP float64
	Trials int
	Seed   int64
}

// CrashConsistencyResult summarizes MeasureConsistencyUnderCrashes.
type CrashConsistencyResult struct {
	Trials int
	// Correct, Stale: as in ConsistencyResult.
	Correct int
	Stale   int
	// Unavailable counts trials where the read got no replies at all.
	Unavailable int
	Rate        float64
}

// MeasureConsistencyUnderCrashes writes, crashes servers with probability
// CrashP, then reads (best effort). Crashed quorum members simply do not
// reply; the read works with what answers.
func MeasureConsistencyUnderCrashes(cfg CrashConsistencyConfig) (CrashConsistencyResult, error) {
	if cfg.Trials <= 0 {
		return CrashConsistencyResult{}, errors.New("sim: Trials must be positive")
	}
	n := cfg.System.N()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := CrashConsistencyResult{Trials: cfg.Trials}
	ctx := context.Background()
	for i := 0; i < cfg.Trials; i++ {
		cluster := NewCluster(n, cfg.Seed+int64(i))
		client, err := register.NewClient(register.Options{
			System:    cfg.System,
			Mode:      register.Benign,
			Transport: cluster.Net,
			Rand:      rand.New(rand.NewSource(cfg.Seed + int64(i)*31 + 7)),
			Clock:     ts.NewClock(1),
		})
		if err != nil {
			return res, err
		}
		key, want := "x", fmt.Sprintf("v%d", i)
		if _, err := client.Write(ctx, key, []byte(want)); err != nil {
			return res, fmt.Errorf("sim: trial %d write: %w", i, err)
		}
		for id := 0; id < n; id++ {
			if rng.Float64() < cfg.CrashP {
				cluster.Net.Crash(quorum.ServerID(id))
			}
		}
		rr, err := client.Read(ctx, key)
		switch {
		case errors.Is(err, register.ErrNoReplies):
			res.Unavailable++
			continue
		case err != nil:
			return res, fmt.Errorf("sim: trial %d read: %w", i, err)
		}
		if rr.Found && string(rr.Value) == want {
			res.Correct++
		} else {
			res.Stale++
		}
	}
	res.Rate = 1 - float64(res.Correct)/float64(res.Trials)
	return res, nil
}
