package register

import (
	"context"
	"sync/atomic"
	"time"

	"pqs/internal/quorum"
)

// This file implements the straggler-tolerant access engine shared by Read
// and Write: it dispatches one RPC per access-set member, promotes spare
// servers when a member fails or a hedge delay elapses, and returns as soon
// as the caller's completion rule is decidable, leaving stragglers to a
// background drain that can never leak goroutines (every in-flight call owns
// one goroutine that terminates when its transport call returns, and the
// reply channel is buffered for every call that can ever be dispatched, so
// senders never block).
//
// Promotion preserves the attempt-level ε argument documented on
// RetryingClient and quorum.SpareSampler: a spare is dispatched only when a
// member has observably failed or when a hedge timer — independent of server
// identity — fires, so the access set that completes is the strategy's
// sample conditioned on liveness, the same conditioning a full re-sample
// performs, at a fraction of the latency.

// callReply carries one server's response through the gather loop.
type callReply struct {
	id   quorum.ServerID
	resp any
	err  error
}

// gatherSpec parameterizes one gather run.
type gatherSpec struct {
	req    any
	quorum []quorum.ServerID
	spares []quorum.ServerID
	// onOK consumes a successful reply in arrival order (called from the
	// gather goroutine, so no locking is needed). Returning a non-nil error
	// reclassifies the reply as a failure, triggering spare promotion.
	onOK func(id quorum.ServerID, resp any) error
	// decided, when non-nil, is checked after every accepted reply; a true
	// return completes the gather immediately, leaving outstanding calls to
	// the drain.
	decided func(ok, outstanding int) bool
}

// gatherOutcome reports a gather run.
type gatherOutcome struct {
	ok       int
	errs     map[quorum.ServerID]error
	promoted int
	early    bool
	leftover int
	ctxErr   error
	ch       <-chan callReply
}

// gather runs the access engine. It returns when the completion rule is
// decidable, when every dispatched call has resolved, or when ctx is done.
func (c *Client) gather(ctx context.Context, spec gatherSpec) gatherOutcome {
	total := len(spec.quorum) + len(spec.spares)
	ch := make(chan callReply, total)
	dispatch := func(id quorum.ServerID) {
		go func() {
			resp, err := c.opts.Transport.Call(ctx, id, spec.req)
			ch <- callReply{id: id, resp: resp, err: err}
		}()
	}
	for _, id := range spec.quorum {
		dispatch(id)
	}
	out := gatherOutcome{errs: make(map[quorum.ServerID]error), ch: ch}
	outstanding := len(spec.quorum)
	next := 0
	promote := func() bool {
		if next >= len(spec.spares) {
			return false
		}
		dispatch(spec.spares[next])
		next++
		outstanding++
		out.promoted++
		c.statPromoted.Add(1)
		return true
	}
	var hedge *time.Timer
	var hedgeC <-chan time.Time
	if c.opts.HedgeDelay > 0 && len(spec.spares) > 0 {
		hedge = time.NewTimer(c.opts.HedgeDelay)
		defer hedge.Stop()
		hedgeC = hedge.C
	}
	for outstanding > 0 {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil && spec.onOK != nil {
				r.err = spec.onOK(r.id, r.resp)
			}
			if r.err != nil {
				out.errs[r.id] = r.err
				promote()
				continue
			}
			out.ok++
			if spec.decided != nil && spec.decided(out.ok, outstanding) {
				out.early = outstanding > 0
				out.leftover = outstanding
				if out.early {
					c.statEarly.Add(1)
				}
				return out
			}
		case <-hedgeC:
			if promote() {
				hedge.Reset(c.opts.HedgeDelay)
			} else {
				hedgeC = nil // spares exhausted; stop hedging
			}
		case <-ctx.Done():
			out.leftover = outstanding
			out.ctxErr = ctx.Err()
			return out
		}
	}
	return out
}

// drain consumes the replies still in flight when a gather completed early,
// from a background goroutine tracked by WaitDrained. onLate, when non-nil,
// sees each late reply (successful or failed) in arrival order. The late
// calls run on the operation's context: a caller that cancels it after the
// operation returns also aborts the stragglers (normal cancellation
// semantics), in which case there is nothing to drain but errors — only
// successful late replies count toward AccessStats.LateReplies.
func (c *Client) drain(out gatherOutcome, onLate func(callReply)) {
	if out.leftover == 0 {
		return
	}
	c.drainWG.Add(1)
	go func() {
		defer c.drainWG.Done()
		for i := 0; i < out.leftover; i++ {
			r := <-out.ch
			if r.err == nil {
				c.statLate.Add(1)
			}
			if onLate != nil {
				onLate(r)
			}
		}
	}()
}

// pickWithSpares samples one access set plus the configured number of
// spares under the client's strategy. Spare-free picks from an
// InplacePicker-capable system run through the client's buffer freelist, so
// steady-state sampling performs zero allocations; each operation returns
// its buffer with recyclePick when it completes.
func (c *Client) pickWithSpares() (q, spares []quorum.ServerID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opts.Spares > 0 {
		if ss, ok := c.opts.System.(quorum.SpareSampler); ok {
			return ss.PickWithSpares(c.rng, c.opts.Spares)
		}
	}
	if ip, ok := c.opts.System.(quorum.InplacePicker); ok {
		return ip.PickInto(c.rng, c.takeBufLocked()), nil
	}
	return c.opts.System.Pick(c.rng), nil
}

// maxPickFree bounds the sampling-buffer freelist; beyond the steady
// concurrency level extra buffers are garbage, not cache.
const maxPickFree = 8

// takeBufLocked pops a sampling buffer from the freelist. c.mu must be held.
func (c *Client) takeBufLocked() []quorum.ServerID {
	if n := len(c.pickFree); n > 0 {
		buf := c.pickFree[n-1]
		c.pickFree = c.pickFree[:n-1]
		return buf[:0]
	}
	return make([]quorum.ServerID, 0, c.opts.System.QuorumSize())
}

// recyclePick returns a completed operation's access-set buffer to the
// freelist. The buffer never escapes the operation: Read and Write copy it
// into the result's Quorum field, so recycling cannot rewrite anything a
// caller holds.
func (c *Client) recyclePick(q []quorum.ServerID) {
	if cap(q) == 0 {
		return
	}
	c.mu.Lock()
	if len(c.pickFree) < maxPickFree {
		c.pickFree = append(c.pickFree, q)
	}
	c.mu.Unlock()
}

// spareCapable reports whether sys can supply spares.
func spareCapable(sys quorum.System) bool {
	_, ok := sys.(quorum.SpareSampler)
	return ok
}

// AccessStats counts straggler-tolerance events over a client's lifetime.
// All counters are cumulative and safe to read concurrently via Stats.
type AccessStats struct {
	// SparesPromoted is the number of spare servers dispatched, whether
	// triggered by member failure or by hedge-delay expiry.
	SparesPromoted uint64
	// EarlyCompletions counts operations that returned at their completion
	// threshold while calls were still outstanding.
	EarlyCompletions uint64
	// LateReplies counts successful replies delivered to the background
	// drain after the operation had already returned. Calls aborted by the
	// caller cancelling the operation's context are not counted.
	LateReplies uint64
	// LateRepairs counts read-repair writes pushed to servers whose replies
	// arrived after an eager read returned.
	LateRepairs uint64
}

// Stats returns a snapshot of the client's straggler-tolerance counters.
func (c *Client) Stats() AccessStats {
	return AccessStats{
		SparesPromoted:   c.statPromoted.Load(),
		EarlyCompletions: c.statEarly.Load(),
		LateReplies:      c.statLate.Load(),
		LateRepairs:      c.statLateRepairs.Load(),
	}
}

// WaitDrained blocks until every background drain spawned by completed
// operations has finished. Call it with no operations in flight (e.g. at
// shutdown, or in tests that assert on Stats or goroutine counts).
func (c *Client) WaitDrained() { c.drainWG.Wait() }

// counters live on Client (register.go); typed here for proximity to the
// engine that updates them.
type accessCounters struct {
	statPromoted    atomic.Uint64
	statEarly       atomic.Uint64
	statLate        atomic.Uint64
	statLateRepairs atomic.Uint64
}
