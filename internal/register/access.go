package register

import (
	"context"
	"sync/atomic"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/transport"
	"pqs/internal/vtime"
)

// This file implements the straggler-tolerant access engine shared by Read
// and Write: it dispatches one RPC per access-set member, promotes spare
// servers when a member fails or a hedge delay elapses, and returns as soon
// as the caller's completion rule is decidable, leaving stragglers to a
// background drain that can never leak goroutines (every in-flight call owns
// one worker that terminates when its transport call returns, and the
// reply channel is buffered for every call that can ever be dispatched, so
// senders never block).
//
// Promotion preserves the attempt-level ε argument documented on
// RetryingClient and quorum.SpareSampler: a spare is dispatched only when a
// member has observably failed or when a hedge timer — independent of server
// identity — fires, so the access set that completes is the strategy's
// sample conditioned on liveness, the same conditioning a full re-sample
// performs, at a fraction of the latency.
//
// All timers and spawns go through the client's vtime.Clock. Under the
// wall clock, calls run on a small pool of idle-retiring worker goroutines
// (steady-state operations spawn no goroutines at all); under a
// vtime.SimClock, every call runs as a registered scheduler worker and the
// gather loop parks around its select, so hedge firing is part of the
// deterministic virtual-time order.

// callReply carries one server's response through the gather loop. lat is
// the call's round-trip latency, measured only when adaptive hedging needs
// it.
type callReply struct {
	id   quorum.ServerID
	resp any
	err  error
	lat  time.Duration
}

// dispatchJob is one transport call handed to a worker.
type dispatchJob struct {
	ctx   context.Context
	id    quorum.ServerID
	req   any
	ch    chan<- callReply
	timed bool
}

// poolIdleRetire is how long an idle wall-mode dispatch worker lingers for
// the next job before exiting. Long enough to serve back-to-back
// operations without spawning, short enough that a quiescent client leaves
// no goroutines behind (the leak regressions poll well past this).
const poolIdleRetire = 100 * time.Millisecond

// runJob executes one transport call and delivers the reply. The reply
// channel is buffered for every call that can ever be dispatched, so the
// send never blocks; under a SimClock it is a tracked message.
func (c *cell) runJob(j dispatchJob) {
	var start time.Time
	if j.timed {
		start = c.clock.Now()
	}
	resp, err := c.opts.Transport.Call(j.ctx, j.id, j.req)
	r := callReply{id: j.id, resp: resp, err: err}
	if j.timed {
		r.lat = c.clock.Since(start)
	}
	if c.sched != nil {
		c.sched.NoteSend()
	}
	j.ch <- r
}

// dispatch hands one call to a worker: a registered scheduler worker under
// a SimClock, otherwise an idle pooled goroutine (spawning a fresh one
// only when none is parked on the jobs channel — after the first
// operation warms the pool, steady-state reads and writes spawn nothing).
func (c *cell) dispatch(ctx context.Context, id quorum.ServerID, req any, ch chan<- callReply, timed bool) {
	if c.health != nil && c.health.ServerDown(id) {
		// The transport's circuit breaker already proved this member
		// unreachable: deliver the failure at t=0 so the gather promotes a
		// spare immediately instead of burning hedge budget. The check sits
		// at dispatch — the hedge/promote logic never consults identity, so
		// the ε argument (promotion conditioned on observable failure) is
		// untouched.
		c.statServerDown.Add(1)
		if c.sched != nil {
			c.sched.NoteSend()
		}
		ch <- callReply{id: id, err: transport.ErrServerDown}
		return
	}
	j := dispatchJob{ctx: ctx, id: id, req: req, ch: ch, timed: timed}
	if c.sched != nil {
		if c.opts.InlineDispatch {
			// The reply channel is buffered for the full access set, so a
			// synchronous runJob can never block on delivery.
			c.runJob(j)
			return
		}
		c.sched.Go(func() { c.runJob(j) })
		return
	}
	select {
	case c.jobs <- j:
	default:
		//pqslint:allow rawgo wall-clock-only fallback: this branch runs iff c.sched is nil, i.e. there is no SimClock to enroll the worker with
		go c.poolWorker(j)
	}
}

// poolWorker runs jobs until it has been idle for poolIdleRetire. The jobs
// channel is unbuffered, so a handoff only succeeds while a worker is
// committed to receiving — a worker that chose to retire can never strand
// a job.
func (c *cell) poolWorker(j dispatchJob) {
	idle := c.clock.NewTimer(poolIdleRetire)
	defer idle.Stop()
	for {
		c.runJob(j)
		idle.Reset(poolIdleRetire)
		select {
		case j = <-c.jobs:
		case <-idle.C:
			return
		}
	}
}

// goWorker runs fn on a goroutine the clock's scheduler knows about.
func (c *cell) goWorker(fn func()) {
	if c.sched != nil {
		c.sched.Go(fn)
		return
	}
	//pqslint:allow rawgo wall-clock-only fallback: this branch runs iff c.sched is nil, i.e. there is no SimClock to enroll the worker with
	go fn()
}

// noopUnpark is park's no-op under the wall clock.
func noopUnpark() {}

// park marks the caller blocked for the SimClock quiescence detector; the
// returned function must run as soon as the blocking select returns.
func (c *cell) park() func() {
	if c.sched == nil {
		return noopUnpark
	}
	return c.sched.Park()
}

// noteRecv records consumption of a tracked message (a reply or a hedge
// fire) under a SimClock.
func (c *cell) noteRecv() {
	if c.sched != nil {
		c.sched.NoteRecv()
	}
}

// gatherSpec parameterizes one gather run.
type gatherSpec struct {
	req    any
	quorum []quorum.ServerID
	spares []quorum.ServerID
	// onOK consumes a successful reply in arrival order (called from the
	// gather goroutine, so no locking is needed). Returning a non-nil error
	// reclassifies the reply as a failure, triggering spare promotion.
	onOK func(id quorum.ServerID, resp any) error
	// decided, when non-nil, is checked after every accepted reply; a true
	// return completes the gather immediately, leaving outstanding calls to
	// the drain.
	decided func(ok, outstanding int) bool
}

// gatherOutcome reports a gather run.
type gatherOutcome struct {
	ok       int
	errs     map[quorum.ServerID]error
	promoted int
	early    bool
	leftover int
	ctxErr   error
	ch       <-chan callReply
}

// gather runs the access engine. It returns when the completion rule is
// decidable, when every dispatched call has resolved, or when ctx is done.
func (c *cell) gather(ctx context.Context, spec gatherSpec) gatherOutcome {
	total := len(spec.quorum) + len(spec.spares)
	ch := make(chan callReply, total)
	timed := c.opts.AdaptiveHedge
	for _, id := range spec.quorum {
		c.dispatch(ctx, id, spec.req, ch, timed)
	}
	out := gatherOutcome{errs: make(map[quorum.ServerID]error), ch: ch}
	outstanding := len(spec.quorum)
	next := 0
	promote := func() bool {
		if next >= len(spec.spares) {
			return false
		}
		c.dispatch(ctx, spec.spares[next], spec.req, ch, timed)
		next++
		outstanding++
		out.promoted++
		c.statPromoted.Add(1)
		return true
	}
	// The hedge delay is fixed for the whole operation: with AdaptiveHedge
	// it is the estimator's current quantile, a function of pooled latency
	// history from past operations only — never of this operation's access
	// set — so hedge firing stays independent of server identity.
	hedgeDelay := c.hedgeDelay()
	var hedge *vtime.Timer
	var hedgeC <-chan time.Time
	if hedgeDelay > 0 && len(spec.spares) > 0 {
		hedge = c.clock.NewTimer(hedgeDelay)
		defer hedge.Stop()
		hedgeC = hedge.C
	}
	// handle consumes one reply; a true return means the completion rule
	// decided and the gather is done.
	handle := func(r callReply) bool {
		outstanding--
		if r.err == nil {
			if timed {
				c.lat.observe(r.id, r.lat)
			}
			if spec.onOK != nil {
				r.err = spec.onOK(r.id, r.resp)
			}
		}
		if r.err != nil {
			out.errs[r.id] = r.err
			promote()
			return false
		}
		out.ok++
		if spec.decided != nil && spec.decided(out.ok, outstanding) {
			out.early = outstanding > 0
			out.leftover = outstanding
			if out.early {
				c.statEarly.Add(1)
			}
			return true
		}
		return false
	}
	inline := c.opts.InlineDispatch && c.sched != nil
	for outstanding > 0 {
		if inline {
			// Inline dispatch already buffered every reply, including the
			// ones a promote() just issued: consume without parking. The
			// empty-channel fallthrough to the parking select is for safety
			// only (it cannot fire while replies are delivered inline).
			select {
			case r := <-ch:
				c.noteRecv()
				if handle(r) {
					return out
				}
				continue
			default:
			}
		}
		unpark := c.park()
		select {
		case r := <-ch:
			unpark()
			c.noteRecv()
			if handle(r) {
				return out
			}
		case <-hedgeC:
			unpark()
			c.noteRecv()
			if promote() {
				hedge.Reset(hedgeDelay)
			} else {
				hedgeC = nil // spares exhausted; stop hedging
			}
		case <-ctx.Done():
			unpark()
			out.leftover = outstanding
			out.ctxErr = ctx.Err()
			return out
		}
	}
	return out
}

// drain consumes the replies still in flight when a gather completed early,
// from a background worker tracked by WaitDrained. onLate, when non-nil,
// sees each late reply (successful or failed) in arrival order. The late
// calls run on the operation's context: a caller that cancels it after the
// operation returns also aborts the stragglers (normal cancellation
// semantics), in which case there is nothing to drain but errors — only
// successful late replies count toward AccessStats.LateReplies.
//
// Late replies deliberately do NOT feed the adaptive-hedge latency
// estimator: the estimator measures the population of replies that
// complete operations, which is what the hedge delay competes with. A
// straggler the hedge routed around is the tail being avoided — folding it
// back in would drag the delay toward that tail until hedging stopped
// firing at all. The loop stays self-correcting in the other direction
// because a gather can never finish before quorum-size replies arrive: if
// the whole cluster slows down, the in-gather samples slow down with it
// and the delay rises.
func (c *cell) drain(out gatherOutcome, onLate func(callReply)) {
	if out.leftover == 0 {
		return
	}
	c.drainWG.Add(1)
	c.goWorker(func() {
		defer c.drainWG.Done()
		for i := 0; i < out.leftover; i++ {
			unpark := c.park()
			r := <-out.ch
			unpark()
			c.noteRecv()
			if r.err == nil {
				c.statLate.Add(1)
			}
			if onLate != nil {
				onLate(r)
			}
		}
	})
}

// pickWithSpares samples one access set plus the configured number of
// spares under the client's strategy. Spare-free picks from an
// InplacePicker-capable system run through the client's buffer freelist, so
// steady-state sampling performs zero allocations; each operation returns
// its buffer with recyclePick when it completes.
func (c *cell) pickWithSpares() (q, spares []quorum.ServerID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opts.Spares > 0 {
		if ss, ok := c.opts.System.(quorum.SpareSampler); ok {
			return ss.PickWithSpares(c.rng, c.opts.Spares)
		}
	}
	if ip, ok := c.opts.System.(quorum.InplacePicker); ok {
		return ip.PickInto(c.rng, c.takeBufLocked()), nil
	}
	return c.opts.System.Pick(c.rng), nil
}

// maxPickFree bounds the sampling-buffer freelist; beyond the steady
// concurrency level extra buffers are garbage, not cache.
const maxPickFree = 8

// takeBufLocked pops a sampling buffer from the freelist. c.mu must be held.
func (c *cell) takeBufLocked() []quorum.ServerID {
	if n := len(c.pickFree); n > 0 {
		buf := c.pickFree[n-1]
		c.pickFree = c.pickFree[:n-1]
		return buf[:0]
	}
	return make([]quorum.ServerID, 0, c.opts.System.QuorumSize())
}

// recyclePick returns a completed operation's access-set buffer to the
// freelist. The buffer never escapes the operation: Read and Write copy it
// into the result's Quorum field, so recycling cannot rewrite anything a
// caller holds.
func (c *cell) recyclePick(q []quorum.ServerID) {
	if cap(q) == 0 {
		return
	}
	c.mu.Lock()
	if len(c.pickFree) < maxPickFree {
		c.pickFree = append(c.pickFree, q)
	}
	c.mu.Unlock()
}

// spareCapable reports whether sys can supply spares.
func spareCapable(sys quorum.System) bool {
	_, ok := sys.(quorum.SpareSampler)
	return ok
}

// AccessStats counts straggler-tolerance events over a client's lifetime.
// All counters are cumulative and safe to read concurrently via Stats.
type AccessStats struct {
	// SparesPromoted is the number of spare servers dispatched, whether
	// triggered by member failure or by hedge-delay expiry.
	SparesPromoted uint64
	// EarlyCompletions counts operations that returned at their completion
	// threshold while calls were still outstanding.
	EarlyCompletions uint64
	// LateReplies counts successful replies delivered to the background
	// drain after the operation had already returned. Calls aborted by the
	// caller cancelling the operation's context are not counted.
	LateReplies uint64
	// LateRepairs counts read-repair writes pushed to servers whose replies
	// arrived after an eager read returned.
	LateRepairs uint64
	// ServerDownFastFails counts access-set members failed at dispatch
	// because the transport's circuit breaker reported them down
	// (transport.ErrServerDown): each such member's slot fails at t=0,
	// promoting a spare immediately instead of waiting out the hedge timer.
	ServerDownFastFails uint64

	// LatencySamples, SRTT, RTTVar and HedgeDelay describe the adaptive-
	// hedge latency estimator (zero unless Options.AdaptiveHedge is set):
	// the number of reply latencies observed, the pooled latency EWMA and
	// deviation EWMA, and the hedge delay currently in effect
	// (SRTT + HedgeDeviations·RTTVAR once warmed up).
	LatencySamples uint64
	SRTT           time.Duration
	RTTVar         time.Duration
	HedgeDelay     time.Duration
}

// Stats returns a snapshot of the client's straggler-tolerance counters.
func (c *cell) Stats() AccessStats {
	s := AccessStats{
		SparesPromoted:      c.statPromoted.Load(),
		EarlyCompletions:    c.statEarly.Load(),
		LateReplies:         c.statLate.Load(),
		LateRepairs:         c.statLateRepairs.Load(),
		ServerDownFastFails: c.statServerDown.Load(),
	}
	if c.opts.AdaptiveHedge {
		s.LatencySamples, s.SRTT, s.RTTVar = c.lat.snapshot()
		s.HedgeDelay = c.hedgeDelay()
	}
	return s
}

// WaitDrained blocks until every background drain spawned by completed
// operations has finished. Call it with no operations in flight (e.g. at
// shutdown, or in tests that assert on Stats or goroutine counts).
func (c *cell) WaitDrained() { c.drainWG.Wait() }

// counters live on Client (register.go); typed here for proximity to the
// engine that updates them.
type accessCounters struct {
	statPromoted    atomic.Uint64
	statEarly       atomic.Uint64
	statLate        atomic.Uint64
	statLateRepairs atomic.Uint64
	statServerDown  atomic.Uint64
}
