// Package register implements the paper's replicated-variable access
// protocols on top of a quorum system and a transport: the multi-reader
// single-writer protocol of Section 3.1 (benign failures), the verifiable
// read protocol of Section 4 ((b, ε)-dissemination systems, self-verifying
// data) and the threshold read protocol of Section 5.2 ((b, ε)-masking
// systems, arbitrary data).
//
// The protocols approximate a safe variable: Theorems 3.2, 4.2 and 5.2 show
// that a read not concurrent with any write returns the last written value
// with probability at least 1-ε. The sim package measures exactly this.
package register

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"pqs/internal/quorum"
	"pqs/internal/sv"
	"pqs/internal/transport"
	"pqs/internal/ts"
	"pqs/internal/wire"
)

// Mode selects which of the paper's three access protocols a client runs.
type Mode int

// Protocol modes.
const (
	// Benign is the Section 3.1 protocol: highest timestamp wins.
	Benign Mode = iota + 1
	// Dissemination is the Section 4 protocol: only verifiable (signed)
	// replies are considered, then highest timestamp wins.
	Dissemination
	// Masking is the Section 5.2 protocol: only values vouched for by at
	// least K servers are considered, then highest timestamp wins.
	Masking
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Benign:
		return "benign"
	case Dissemination:
		return "dissemination"
	case Masking:
		return "masking"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Errors returned by the client. Match with errors.Is.
var (
	// ErrNoReplies indicates no server in the chosen quorum answered.
	ErrNoReplies = errors.New("register: no replies from quorum")
	// ErrPartialWrite indicates fewer than the full quorum acknowledged a
	// write under RequireFullWrite.
	ErrPartialWrite = errors.New("register: write reached only part of the quorum")
)

// Options configures a Client.
type Options struct {
	// System supplies quorums; its built-in access strategy is what the
	// ε analysis assumes, so the client never deviates from it.
	System quorum.System
	// Mode selects the access protocol.
	Mode Mode
	// K is the masking read threshold (required when Mode == Masking;
	// use the K() of a core.Masking system).
	K int
	// Transport delivers RPCs.
	Transport transport.Transport
	// Rand drives the access strategy. Required.
	Rand *rand.Rand
	// Clock issues write timestamps. Required for writers.
	Clock *ts.Clock
	// Signer, when set, signs writes (self-verifying data).
	Signer ed25519.PrivateKey
	// Registry verifies replies in Dissemination mode. Required for
	// dissemination readers.
	Registry *sv.Registry
	// RequireFullWrite makes Write fail with ErrPartialWrite unless every
	// quorum member acknowledged. The paper's analysis assumes updates
	// reach the whole chosen quorum; leaving this false (best effort)
	// trades a further ε degradation for availability.
	RequireFullWrite bool
	// ReadRepair pushes the value a read accepted back to the read-quorum
	// members observed to be stale, with its original signature. Valid in
	// Benign and Dissemination modes; rejected in Masking mode, where a
	// fooled read must not persist a fabricated value onto correct servers.
	ReadRepair bool
}

// Client reads and writes a replicated variable through quorums.
// It is safe for concurrent use, though the single-writer protocol
// requires that at most one client writes any given key.
type Client struct {
	opts Options

	mu  sync.Mutex // guards rand (rand.Rand is not goroutine safe)
	rng *rand.Rand
}

// NewClient validates the option combination and returns a client.
func NewClient(opts Options) (*Client, error) {
	if opts.System == nil {
		return nil, errors.New("register: Options.System is required")
	}
	if opts.Transport == nil {
		return nil, errors.New("register: Options.Transport is required")
	}
	if opts.Rand == nil {
		return nil, errors.New("register: Options.Rand is required")
	}
	switch opts.Mode {
	case Benign:
	case Dissemination:
		if opts.Registry == nil {
			return nil, errors.New("register: dissemination mode requires Options.Registry")
		}
	case Masking:
		if opts.K < 1 {
			return nil, fmt.Errorf("register: masking mode requires K >= 1, got %d", opts.K)
		}
		if opts.ReadRepair {
			return nil, errors.New("register: read repair is unsafe in masking mode (a fooled read would persist a fabricated value)")
		}
	default:
		return nil, fmt.Errorf("register: unknown mode %d", opts.Mode)
	}
	return &Client{opts: opts, rng: opts.Rand}, nil
}

// Mode returns the client's protocol mode.
func (c *Client) Mode() Mode { return c.opts.Mode }

// System returns the client's quorum system.
func (c *Client) System() quorum.System { return c.opts.System }

// pick samples a quorum under the client's strategy.
func (c *Client) pick() []quorum.ServerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opts.System.Pick(c.rng)
}

// WriteResult reports the outcome of a write.
type WriteResult struct {
	// Quorum is the access set chosen by the strategy.
	Quorum []quorum.ServerID
	// Acked lists the members that acknowledged.
	Acked []quorum.ServerID
	// Errs maps failed members to their errors.
	Errs map[quorum.ServerID]error
	// Stamp is the timestamp assigned to this write.
	Stamp ts.Stamp
}

// Write performs the Section 3.1 write protocol: choose a quorum, choose a
// timestamp greater than any previous one, install the value at every
// member. The value slice is not retained.
func (c *Client) Write(ctx context.Context, key string, value []byte) (WriteResult, error) {
	if c.opts.Clock == nil {
		return WriteResult{}, errors.New("register: client has no clock; cannot write")
	}
	q := c.pick()
	stamp := c.opts.Clock.Next()
	val := make([]byte, len(value))
	copy(val, value)
	var sig []byte
	if c.opts.Signer != nil {
		sig = sv.Sign(c.opts.Signer, key, val, stamp)
	}
	req := wire.WriteRequest{Key: key, Value: val, Stamp: stamp, Sig: sig}

	res := WriteResult{Quorum: q, Stamp: stamp, Errs: make(map[quorum.ServerID]error)}
	type ack struct {
		id  quorum.ServerID
		err error
	}
	acks := make(chan ack, len(q))
	for _, id := range q {
		go func(id quorum.ServerID) {
			_, err := c.opts.Transport.Call(ctx, id, req)
			acks <- ack{id: id, err: err}
		}(id)
	}
	for range q {
		a := <-acks
		if a.err != nil {
			res.Errs[a.id] = a.err
			continue
		}
		res.Acked = append(res.Acked, a.id)
	}
	if len(res.Acked) == 0 {
		return res, fmt.Errorf("%w: all %d members failed", ErrNoReplies, len(q))
	}
	if c.opts.RequireFullWrite && len(res.Acked) < len(q) {
		return res, fmt.Errorf("%w: %d/%d acknowledged", ErrPartialWrite, len(res.Acked), len(q))
	}
	return res, nil
}

// ReadResult reports the outcome of a read.
type ReadResult struct {
	// Quorum is the access set chosen by the strategy.
	Quorum []quorum.ServerID
	// Found reports whether any value passed the mode's acceptance rule.
	// The masking protocol's ⊥ outcome is Found == false with nil error.
	Found bool
	// Value and Stamp are the accepted value-timestamp pair.
	Value []byte
	Stamp ts.Stamp
	// Replies counts servers that answered at all.
	Replies int
	// Vouchers counts servers that vouched for the accepted pair.
	Vouchers int
	// Discarded counts replies rejected by verification (dissemination) or
	// left under threshold (masking).
	Discarded int
	// Repaired counts quorum members the read pushed the accepted value
	// back to (only with Options.ReadRepair).
	Repaired int
}

// Read performs the mode's read protocol: query every member of a chosen
// quorum, filter replies by the mode's acceptance rule, return the
// highest-timestamped survivor.
func (c *Client) Read(ctx context.Context, key string) (ReadResult, error) {
	q := c.pick()
	type reply struct {
		id  quorum.ServerID
		msg wire.ReadReply
		err error
	}
	replies := make(chan reply, len(q))
	req := wire.ReadRequest{Key: key}
	for _, id := range q {
		go func(id quorum.ServerID) {
			resp, err := c.opts.Transport.Call(ctx, id, req)
			if err != nil {
				replies <- reply{id: id, err: err}
				return
			}
			msg, ok := resp.(wire.ReadReply)
			if !ok {
				replies <- reply{id: id, err: fmt.Errorf("register: unexpected reply type %T", resp)}
				return
			}
			replies <- reply{id: id, msg: msg}
		}(id)
	}

	res := ReadResult{Quorum: q}
	collected := make([]wire.ReadReply, 0, len(q))
	byID := make(map[quorum.ServerID]wire.ReadReply, len(q))
	for range q {
		r := <-replies
		if r.err != nil {
			continue
		}
		res.Replies++
		byID[r.id] = r.msg
		if r.msg.Found {
			collected = append(collected, r.msg)
		}
	}
	if res.Replies == 0 {
		return res, fmt.Errorf("%w: quorum size %d", ErrNoReplies, len(q))
	}

	switch c.opts.Mode {
	case Benign:
		c.selectBenign(&res, collected)
	case Dissemination:
		c.selectDissemination(&res, key, collected)
	case Masking:
		c.selectMasking(&res, collected)
	}
	if res.Found && c.opts.Clock != nil {
		// A writer that also reads keeps its clock ahead of what it saw.
		c.opts.Clock.Witness(res.Stamp)
	}
	if c.opts.ReadRepair {
		c.repair(ctx, key, &res, byID)
	}
	return res, nil
}

// selectBenign implements step 3 of the Section 3.1 read protocol: the pair
// with the highest timestamp.
func (c *Client) selectBenign(res *ReadResult, replies []wire.ReadReply) {
	for _, r := range replies {
		if !res.Found || res.Stamp.Less(r.Stamp) {
			res.Found = true
			res.Value = r.Value
			res.Stamp = r.Stamp
		}
	}
	for _, r := range replies {
		if res.Found && r.Stamp == res.Stamp && string(r.Value) == string(res.Value) {
			res.Vouchers++
		}
	}
}

// selectDissemination implements steps 3-4 of the Section 4 read protocol:
// compute the verifiable subset V', then take the highest timestamp.
func (c *Client) selectDissemination(res *ReadResult, key string, replies []wire.ReadReply) {
	for _, r := range replies {
		if !c.opts.Registry.VerifyEntry(key, r.Value, r.Stamp, r.Sig) {
			res.Discarded++
			continue
		}
		if !res.Found || res.Stamp.Less(r.Stamp) {
			res.Found = true
			res.Value = r.Value
			res.Stamp = r.Stamp
		}
	}
	for _, r := range replies {
		if res.Found && r.Stamp == res.Stamp && string(r.Value) == string(res.Value) {
			res.Vouchers++
		}
	}
}

// selectMasking implements steps 3-4 of the Section 5.2 read protocol:
// V' = pairs vouched for by at least K members; highest timestamp in V', or
// ⊥ (Found=false) when V' is empty.
func (c *Client) selectMasking(res *ReadResult, replies []wire.ReadReply) {
	type candidate struct {
		stamp ts.Stamp
		value string
	}
	votes := make(map[candidate]int)
	for _, r := range replies {
		votes[candidate{stamp: r.Stamp, value: string(r.Value)}]++
	}
	for cand, n := range votes {
		if n < c.opts.K {
			res.Discarded += n
			continue
		}
		if !res.Found || res.Stamp.Less(cand.stamp) {
			res.Found = true
			res.Value = []byte(cand.value)
			res.Stamp = cand.stamp
			res.Vouchers = n
		}
	}
}
