// Package register implements the paper's replicated-variable access
// protocols on top of a quorum system and a transport: the multi-reader
// single-writer protocol of Section 3.1 (benign failures), the verifiable
// read protocol of Section 4 ((b, ε)-dissemination systems, self-verifying
// data) and the threshold read protocol of Section 5.2 ((b, ε)-masking
// systems, arbitrary data).
//
// The protocols approximate a safe variable: Theorems 3.2, 4.2 and 5.2 show
// that a read not concurrent with any write returns the last written value
// with probability at least 1-ε. The sim package measures exactly this.
package register

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/sv"
	"pqs/internal/transport"
	"pqs/internal/ts"
	"pqs/internal/vtime"
	"pqs/internal/wire"
)

// Mode selects which of the paper's three access protocols a client runs.
type Mode int

// Protocol modes.
const (
	// Benign is the Section 3.1 protocol: highest timestamp wins.
	Benign Mode = iota + 1
	// Dissemination is the Section 4 protocol: only verifiable (signed)
	// replies are considered, then highest timestamp wins.
	Dissemination
	// Masking is the Section 5.2 protocol: only values vouched for by at
	// least K servers are considered, then highest timestamp wins.
	Masking
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Benign:
		return "benign"
	case Dissemination:
		return "dissemination"
	case Masking:
		return "masking"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Errors returned by the client. Match with errors.Is.
var (
	// ErrNoReplies indicates no server in the chosen quorum answered.
	ErrNoReplies = errors.New("register: no replies from quorum")
	// ErrPartialWrite indicates fewer than the full quorum acknowledged a
	// write under RequireFullWrite.
	ErrPartialWrite = errors.New("register: write reached only part of the quorum")
)

// permanentNoReplies marks an ErrNoReplies outcome in which every member
// failure was classified permanent (codec mismatch, unsupported payload):
// re-sampling another quorum cannot help, so transport.IsPermanent matches
// it and RetryingClient stops retrying. It wraps the plain error, so
// errors.Is(err, ErrNoReplies) keeps matching.
type permanentNoReplies struct{ err error }

func (e *permanentNoReplies) Error() string   { return e.err.Error() }
func (e *permanentNoReplies) Unwrap() error   { return e.err }
func (e *permanentNoReplies) Permanent() bool { return true }

// noRepliesError wraps the zero-reply failure, marking it permanent when
// every member error carries a permanent classification.
func noRepliesError(err error, errs map[quorum.ServerID]error) error {
	if len(errs) == 0 {
		return err
	}
	for _, merr := range errs {
		if !transport.IsPermanent(merr) {
			return err
		}
	}
	return &permanentNoReplies{err: err}
}

// Options configures a Client.
type Options struct {
	// System supplies quorums; its built-in access strategy is what the
	// ε analysis assumes, so the client never deviates from it.
	System quorum.System
	// Mode selects the access protocol.
	Mode Mode
	// K is the masking read threshold (required when Mode == Masking;
	// use the K() of a core.Masking system).
	K int
	// Transport delivers RPCs.
	Transport transport.Transport
	// Rand drives the access strategy. Required.
	Rand *rand.Rand
	// Clock issues write timestamps. Required for writers.
	Clock *ts.Clock
	// Signer, when set, signs writes (self-verifying data).
	Signer ed25519.PrivateKey
	// Registry verifies replies in Dissemination mode. Required for
	// dissemination readers.
	Registry *sv.Registry
	// RequireFullWrite makes Write fail with ErrPartialWrite unless every
	// quorum member acknowledged. The paper's analysis assumes updates
	// reach the whole chosen quorum; leaving this false (best effort)
	// trades a further ε degradation for availability.
	RequireFullWrite bool
	// ReadRepair pushes the value a read accepted back to the read-quorum
	// members observed to be stale, with its original signature. Valid in
	// Benign and Dissemination modes; rejected in Masking mode, where a
	// fooled read must not persist a fabricated value onto correct servers.
	ReadRepair bool

	// Spares is the number of extra servers sampled alongside every access
	// set (oversampling). A spare is dispatched ("promoted") when a member's
	// call fails, or each time HedgeDelay elapses without the operation
	// completing. Requires System to implement quorum.SpareSampler.
	//
	// Promotion preserves the attempt-level ε argument documented on
	// RetryingClient: spares are drawn by the same strategy and promoted
	// only on observed failure or on an identity-blind timer, so the access
	// set that completes is the strategy's sample conditioned on liveness —
	// the same conditioning a full re-sample performs. With spares in play,
	// RequireFullWrite is satisfied by quorum-size acknowledgements, whether
	// they came from original members or promoted spares.
	Spares int
	// HedgeDelay, when positive, promotes one spare each time this delay
	// elapses before the operation completes (latency hedging). Zero means
	// spares are promoted only on observed member failure. With
	// AdaptiveHedge set this is only the bootstrap value used until the
	// latency estimator has warmed up.
	HedgeDelay time.Duration
	// AdaptiveHedge derives the hedge delay from an online latency
	// estimate instead of the fixed HedgeDelay: the client keeps a pooled
	// EWMA of reply latency (SRTT) and an EWMA of its deviation (RTTVAR,
	// Jacobson/Karels gains) and hedges at SRTT + HedgeDeviations·RTTVAR —
	// an upper-quantile estimate that tracks the cluster as it speeds up
	// or degrades. Per-server EWMAs are kept for observability
	// (ServerLatencies) but never steer the delay: the hedge timer stays a
	// function of pooled history from past operations only, independent of
	// which servers the current access set contains, preserving the
	// identity-blind-timer premise of the ε argument above. Requires
	// Spares > 0 and a positive HedgeDelay (the pre-warmup bootstrap).
	AdaptiveHedge bool
	// HedgeDeviations is the adaptive-hedge quantile knob: the number of
	// deviations above the latency EWMA at which the hedge fires.
	// 0 means the default (4, the classic RTO multiplier).
	HedgeDeviations float64
	// Time supplies timers, sleeps and latency measurement. Nil means the
	// wall clock. The sim and chaos harnesses install a vtime.SimClock,
	// which makes hedge timers deterministic and virtual-latency runs
	// complete in wall-clock milliseconds; every goroutine the client
	// spawns then registers with the SimClock scheduler.
	Time vtime.Clock
	// EagerRead makes Read return as soon as the mode's acceptance rule is
	// decidable instead of waiting for every dispatched call:
	//
	//   - Benign: quorum-size replies collected;
	//   - Dissemination: quorum-size replies plus at least one verified one;
	//   - Masking: some pair holds K vouchers and no rival (seen or unseen)
	//     can still reach K with the replies outstanding.
	//
	// Remaining replies are drained in the background (see Stats and
	// WaitDrained); with ReadRepair set, late stale repliers are repaired
	// from the drain as well.
	EagerRead bool
	// W, when between 1 and the quorum size, completes Write as soon as W
	// members acknowledged, leaving the rest to the background drain. Zero
	// (or RequireFullWrite) keeps the default: wait for the full access set.
	// W below the quorum size trades a further ε degradation for latency,
	// exactly as best-effort writes already do; the calls already in flight
	// keep delivering the write to the remaining members as long as the
	// operation's context stays live (cancelling it aborts them).
	W int

	// Cells partitions the keyspace across this many independent quorum
	// cells. Cell i is a full copy of the configured system over servers
	// [i*n, (i+1)*n) of the Transport, where n = System.N(); a consistent-
	// hash ring (internal/ring) routes each key to one cell, and all
	// protocol state — strategy, ε budget, hedging, stats — is per cell.
	// 0 or 1 means the classic single-cell client over servers [0, n).
	Cells int
	// RingVnodes is the virtual-node count per cell on the routing ring
	// (0 = ring.DefaultVnodes). Only meaningful with Cells > 1.
	RingVnodes int

	// InlineDispatch, under a SimClock, runs each member call synchronously
	// on the issuing worker instead of spawning a scheduler worker per
	// call, and the gather consumes the already-buffered replies without
	// parking. This collapses the per-operation scheduler cost from
	// O(quorum) worker spawns and timer handshakes to roughly zero, which
	// is what makes million-op population runs (internal/load) affordable.
	// Only sensible on a zero-latency transport: a transport that sleeps
	// per call would serialize those sleeps on the issuing worker. Ignored
	// without a SimClock.
	InlineDispatch bool
}

// cell is the per-cell gather engine: it runs the paper's access protocols
// against ONE quorum cell — a universe of Options.System.N() servers
// addressed in cell-local ids [0, n). Client (router.go) routes every key
// to one cell; a single-cell client is a Client wrapping exactly one of
// these. All dispatch, hedging, spare promotion and drain state lives
// here, per cell and identity-blind, so the ε-preservation argument (and
// the epsblind analyzer) applies to each cell independently.
//
// It is safe for concurrent use, though the single-writer protocol
// requires that at most one client writes any given key.
type cell struct {
	opts Options

	// clock is Options.Time or the wall clock; sched is non-nil when it is
	// a vtime.SimClock, switching every spawn and blocking wait to the
	// scheduler's discipline (see access.go).
	clock vtime.Clock
	sched *vtime.SimClock

	mu       sync.Mutex // guards rng (not goroutine safe) and pickFree
	rng      *rand.Rand
	pickFree [][]quorum.ServerID // recycled sampling buffers (see access.go)

	// jobs hands dispatch work to idle pooled workers (wall mode only; see
	// dispatch in access.go).
	jobs chan dispatchJob

	// lat is the adaptive-hedge latency estimator; hedgeK its quantile
	// knob (Options.HedgeDeviations resolved).
	lat    latencyEstimator
	hedgeK float64

	// health is non-nil when the transport reports per-server reachability
	// (a breaker-enabled TCPClient): dispatch fails known-down members at
	// t=0 so the gather promotes spares immediately (see access.go).
	health transport.HealthReporter

	accessCounters
	drainWG *vtime.WaitGroup
}

// newCell validates the option combination and returns a per-cell engine.
// NewClient (router.go) is the public constructor; it calls this once per
// cell with an Offset transport and a cell-private rng.
func newCell(opts Options) (*cell, error) {
	if opts.System == nil {
		return nil, errors.New("register: Options.System is required")
	}
	if opts.Transport == nil {
		return nil, errors.New("register: Options.Transport is required")
	}
	if opts.Rand == nil {
		return nil, errors.New("register: Options.Rand is required")
	}
	switch opts.Mode {
	case Benign:
	case Dissemination:
		if opts.Registry == nil {
			return nil, errors.New("register: dissemination mode requires Options.Registry")
		}
	case Masking:
		if opts.K < 1 {
			return nil, fmt.Errorf("register: masking mode requires K >= 1, got %d", opts.K)
		}
		if opts.ReadRepair {
			return nil, errors.New("register: read repair is unsafe in masking mode (a fooled read would persist a fabricated value)")
		}
	default:
		return nil, fmt.Errorf("register: unknown mode %d", opts.Mode)
	}
	if opts.Spares < 0 {
		return nil, fmt.Errorf("register: Spares %d must be non-negative", opts.Spares)
	}
	if opts.Spares > 0 && !spareCapable(opts.System) {
		return nil, fmt.Errorf("register: system %s cannot supply spares (no quorum.SpareSampler)", opts.System.Name())
	}
	if opts.HedgeDelay < 0 {
		return nil, fmt.Errorf("register: HedgeDelay %v must be non-negative", opts.HedgeDelay)
	}
	if opts.W < 0 {
		return nil, fmt.Errorf("register: W %d must be non-negative", opts.W)
	}
	if opts.HedgeDeviations < 0 {
		return nil, fmt.Errorf("register: HedgeDeviations %v must be non-negative", opts.HedgeDeviations)
	}
	if opts.AdaptiveHedge {
		if opts.Spares <= 0 {
			return nil, errors.New("register: AdaptiveHedge requires Spares > 0")
		}
		if opts.HedgeDelay <= 0 {
			return nil, errors.New("register: AdaptiveHedge requires a positive HedgeDelay bootstrap")
		}
	}
	clk := vtime.Or(opts.Time)
	sched, _ := clk.(*vtime.SimClock)
	k := opts.HedgeDeviations
	if k == 0 {
		k = defaultHedgeDeviations
	}
	c := &cell{
		opts:    opts,
		clock:   clk,
		sched:   sched,
		rng:     opts.Rand,
		jobs:    make(chan dispatchJob),
		hedgeK:  k,
		drainWG: vtime.NewWaitGroup(clk),
	}
	if hr, ok := opts.Transport.(transport.HealthReporter); ok {
		c.health = hr
	}
	return c, nil
}

// Mode returns the client's protocol mode.
func (c *cell) Mode() Mode { return c.opts.Mode }

// System returns the client's quorum system.
func (c *cell) System() quorum.System { return c.opts.System }

// WriteResult reports the outcome of a write.
type WriteResult struct {
	// Quorum is the access set chosen by the strategy. The caller owns the
	// slice (the client samples into a reused internal buffer and copies it
	// here, so concurrent operations can never rewrite a returned result).
	Quorum []quorum.ServerID
	// Acked lists the members (or promoted spares) that acknowledged before
	// the write completed; late acknowledgements land in Stats.
	Acked []quorum.ServerID
	// Errs maps failed members to their errors.
	Errs map[quorum.ServerID]error
	// Stamp is the timestamp assigned to this write.
	Stamp ts.Stamp
	// Promoted counts spares dispatched during this write.
	Promoted int
	// Early reports whether the write returned at its completion threshold
	// while calls were still outstanding (drained in the background).
	Early bool
}

// Write performs the Section 3.1 write protocol: choose a quorum, choose a
// timestamp greater than any previous one, install the value at every
// member. The value slice is not retained. With Options.W set, the write
// completes at W acknowledgements; with Options.Spares, failed or lagging
// members are hedged with spare servers.
func (c *cell) Write(ctx context.Context, key string, value []byte) (WriteResult, error) {
	if c.opts.Clock == nil {
		return WriteResult{}, errors.New("register: client has no clock; cannot write")
	}
	q, spares := c.pickWithSpares()
	defer c.recyclePick(q)
	stamp := c.opts.Clock.Next()
	val := make([]byte, len(value))
	copy(val, value)
	var sig []byte
	if c.opts.Signer != nil {
		sig = sv.Sign(c.opts.Signer, key, val, stamp)
	}
	req := wire.WriteRequest{Key: key, Value: val, Stamp: stamp, Sig: sig}

	res := WriteResult{Quorum: append([]quorum.ServerID(nil), q...), Stamp: stamp}
	target := len(q)
	if !c.opts.RequireFullWrite && c.opts.W > 0 && c.opts.W < target {
		target = c.opts.W
	}
	out := c.gather(ctx, gatherSpec{
		req:    req,
		quorum: q,
		spares: spares,
		onOK: func(id quorum.ServerID, _ any) error {
			res.Acked = append(res.Acked, id)
			return nil
		},
		decided: func(ok, _ int) bool { return ok >= target },
	})
	res.Errs = out.errs
	res.Promoted = out.promoted
	res.Early = out.early
	c.drain(out, nil) // late acks still improve durability; count them
	if len(res.Acked) == 0 {
		if out.ctxErr != nil {
			return res, out.ctxErr
		}
		return res, noRepliesError(fmt.Errorf("%w: all %d members failed", ErrNoReplies, len(q)), out.errs)
	}
	if c.opts.RequireFullWrite && len(res.Acked) < len(q) {
		return res, fmt.Errorf("%w: %d/%d acknowledged", ErrPartialWrite, len(res.Acked), len(q))
	}
	return res, nil
}

// ReadResult reports the outcome of a read.
type ReadResult struct {
	// Quorum is the access set chosen by the strategy. The caller owns the
	// slice (the client samples into a reused internal buffer and copies it
	// here, so concurrent operations can never rewrite a returned result).
	Quorum []quorum.ServerID
	// Found reports whether any value passed the mode's acceptance rule.
	// The masking protocol's ⊥ outcome is Found == false with nil error.
	Found bool
	// Value and Stamp are the accepted value-timestamp pair.
	Value []byte
	Stamp ts.Stamp
	// Replies counts servers that answered at all.
	Replies int
	// Vouchers counts servers that vouched for the accepted pair.
	Vouchers int
	// Discarded counts replies rejected by verification (dissemination) or
	// left under threshold (masking).
	Discarded int
	// Repaired counts quorum members the read pushed the accepted value
	// back to (only with Options.ReadRepair).
	Repaired int
	// Promoted counts spares dispatched during this read.
	Promoted int
	// Early reports whether the read returned at its mode's completion
	// threshold while calls were still outstanding (drained in the
	// background).
	Early bool
}

// voteKey identifies a value-timestamp candidate in the masking vote count.
type voteKey struct {
	stamp ts.Stamp
	value string
}

// maskDecided reports whether the Section 5.2 acceptance rule is already
// decidable: some candidate holds at least k vouchers, and no rival with a
// higher timestamp — seen (current vouchers + outstanding < k) or unseen
// (outstanding < k) — can still reach the threshold.
func maskDecided(votes map[voteKey]int, k, outstanding int) bool {
	if k < 1 || outstanding >= k {
		return false
	}
	var best voteKey
	found := false
	for cand, n := range votes {
		if n >= k && (!found || best.stamp.Less(cand.stamp)) {
			best, found = cand, true
		}
	}
	if !found {
		return false
	}
	for cand, n := range votes {
		if best.stamp.Less(cand.stamp) && n+outstanding >= k {
			return false
		}
	}
	return true
}

// Read performs the mode's read protocol: query every member of a chosen
// quorum, filter replies by the mode's acceptance rule, return the
// highest-timestamped survivor. With Options.EagerRead it returns as soon
// as the acceptance rule is decidable; with Options.Spares, failed or
// lagging members are hedged with spare servers.
func (c *cell) Read(ctx context.Context, key string) (ReadResult, error) {
	q, spares := c.pickWithSpares()
	defer c.recyclePick(q)
	req := wire.ReadRequest{Key: key}

	res := ReadResult{Quorum: append([]quorum.ServerID(nil), q...)}
	collected := make([]wire.ReadReply, 0, len(q))
	byID := make(map[quorum.ServerID]wire.ReadReply, len(q))
	verified := 0
	var collectedOK []bool    // parallel to collected (Dissemination only)
	var votes map[voteKey]int // vote tally shared by maskDecided and selectMasking
	if c.opts.Mode == Masking {
		votes = make(map[voteKey]int)
	}
	target := len(q)
	var decided func(ok, outstanding int) bool
	if c.opts.EagerRead {
		decided = func(ok, outstanding int) bool {
			switch c.opts.Mode {
			case Benign:
				return ok >= target
			case Dissemination:
				return ok >= target && verified > 0
			case Masking:
				return maskDecided(votes, c.opts.K, outstanding)
			}
			return false
		}
	}
	out := c.gather(ctx, gatherSpec{
		req:    req,
		quorum: q,
		spares: spares,
		onOK: func(id quorum.ServerID, resp any) error {
			msg, ok := resp.(wire.ReadReply)
			if !ok {
				return fmt.Errorf("register: unexpected reply type %T", resp)
			}
			res.Replies++
			byID[id] = msg
			if msg.Found {
				collected = append(collected, msg)
				switch c.opts.Mode {
				case Dissemination:
					// Verify once, here; the selection step reuses the result.
					ok := c.opts.Registry.VerifyEntry(key, msg.Value, msg.Stamp, msg.Sig)
					collectedOK = append(collectedOK, ok)
					if ok {
						verified++
					}
				case Masking:
					votes[voteKey{stamp: msg.Stamp, value: string(msg.Value)}]++
				}
			}
			return nil
		},
		decided: decided,
	})
	res.Promoted = out.promoted
	res.Early = out.early
	if res.Replies == 0 {
		c.drain(out, nil)
		if out.ctxErr != nil {
			return res, out.ctxErr
		}
		return res, noRepliesError(fmt.Errorf("%w: quorum size %d", ErrNoReplies, len(q)), out.errs)
	}

	switch c.opts.Mode {
	case Benign:
		c.selectBenign(&res, collected)
	case Dissemination:
		c.selectDissemination(&res, collected, collectedOK)
	case Masking:
		c.selectMasking(&res, votes)
	}
	if res.Found && c.opts.Clock != nil {
		// A writer that also reads keeps its clock ahead of what it saw.
		c.opts.Clock.Witness(res.Stamp)
	}
	if c.opts.ReadRepair {
		c.repair(ctx, key, &res, byID, out.errs, out.leftover > 0)
	}
	c.drain(out, c.lateReadHandler(ctx, key, &res, byID))
	return res, nil
}

// selectBenign implements step 3 of the Section 3.1 read protocol: the pair
// with the highest timestamp.
func (c *cell) selectBenign(res *ReadResult, replies []wire.ReadReply) {
	for _, r := range replies {
		if !res.Found || res.Stamp.Less(r.Stamp) {
			res.Found = true
			res.Value = r.Value
			res.Stamp = r.Stamp
		}
	}
	for _, r := range replies {
		if res.Found && r.Stamp == res.Stamp && string(r.Value) == string(res.Value) {
			res.Vouchers++
		}
	}
}

// selectDissemination implements steps 3-4 of the Section 4 read protocol:
// compute the verifiable subset V', then take the highest timestamp.
// verified[i] carries the signature check already performed on replies[i]
// when it was collected.
func (c *cell) selectDissemination(res *ReadResult, replies []wire.ReadReply, verified []bool) {
	for i, r := range replies {
		if !verified[i] {
			res.Discarded++
			continue
		}
		if !res.Found || res.Stamp.Less(r.Stamp) {
			res.Found = true
			res.Value = r.Value
			res.Stamp = r.Stamp
		}
	}
	for _, r := range replies {
		if res.Found && r.Stamp == res.Stamp && string(r.Value) == string(res.Value) {
			res.Vouchers++
		}
	}
}

// selectMasking implements steps 3-4 of the Section 5.2 read protocol:
// V' = pairs vouched for by at least K members; highest timestamp in V', or
// ⊥ (Found=false) when V' is empty. votes is the tally Read accumulated
// while collecting replies.
func (c *cell) selectMasking(res *ReadResult, votes map[voteKey]int) {
	for cand, n := range votes {
		if n < c.opts.K {
			res.Discarded += n
			continue
		}
		if !res.Found || res.Stamp.Less(cand.stamp) {
			res.Found = true
			res.Value = []byte(cand.value)
			res.Stamp = cand.stamp
			res.Vouchers = n
		}
	}
}
