package register

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"pqs/internal/quorum"
	"pqs/internal/ts"
)

func TestReadWriteUnderPartition(t *testing.T) {
	c := newCluster(t, 9)
	sys := majoritySystem(t, 9)
	cl := benignClient(t, c, sys, 1)
	ctx := context.Background()

	if _, err := cl.Write(ctx, "x", []byte("before")); err != nil {
		t.Fatal(err)
	}

	// Partition: servers 0-3 in group 1, servers 4-8 in group 0 with the
	// client. Quorums of size 5 must now be served entirely by the five
	// reachable servers, so some picks fail partially.
	groups := map[quorum.ServerID]int{}
	for i := 0; i < 4; i++ {
		groups[quorum.ServerID(i)] = 1
	}
	c.net.SetPartition(groups)

	// Best-effort operations keep working whenever at least one reachable
	// member lands in the quorum (always true: quorum size 5, reachable 5,
	// universe 9 → at least one overlap).
	for i := 0; i < 20; i++ {
		if _, err := cl.Write(ctx, "x", []byte("during")); err != nil {
			t.Fatalf("write during partition: %v", err)
		}
		rr, err := cl.Read(ctx, "x")
		if err != nil {
			t.Fatalf("read during partition: %v", err)
		}
		if string(rr.Value) != "during" && string(rr.Value) != "before" {
			t.Fatalf("read %+v", rr)
		}
	}

	// A full-write client observes the partition as ErrPartialWrite when
	// its quorum straddles the cut.
	strict, err := NewClient(Options{
		System: sys, Mode: Benign, Transport: c.net,
		Rand:             rand.New(rand.NewSource(99)),
		Clock:            ts.NewClock(2),
		RequireFullWrite: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawPartial := false
	for i := 0; i < 30 && !sawPartial; i++ {
		// The strict writer owns its own key: one writer per key.
		_, err := strict.Write(ctx, "y", []byte("strict"))
		if errors.Is(err, ErrPartialWrite) {
			sawPartial = true
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if !sawPartial {
		t.Error("partition never produced a partial write")
	}

	// Healing restores full-quorum writes and read-your-write freshness.
	c.net.ClearPartition()
	if _, err := strict.Write(ctx, "y", []byte("healed")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	rr, err := cl.Read(ctx, "y")
	if err != nil {
		t.Fatal(err)
	}
	if string(rr.Value) != "healed" {
		t.Errorf("read after heal: %+v", rr)
	}
}
