package register

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pqs/internal/transport"
)

// RetryingClient wraps a Client with quorum re-sampling on transient
// failure, the practical counterpart of the live-quorum-finding ("probing")
// literature the paper points to in Section 2.1 [PW96, Baz96]: when the
// chosen quorum turns out to be partially or wholly dead, choose another.
//
// Each attempt draws a fresh quorum from the SAME access strategy, so the
// ε analysis still applies to the attempt that succeeds (uniform
// conditioned on success remains uniform); the paper's remark about
// enforcing the strategy is preserved.
type RetryingClient struct {
	*Client
	// Attempts is the maximum number of quorum samples per operation
	// (>= 1).
	Attempts int
	// Backoff, when positive, is slept on the client's clock between
	// attempts (clock-aware: virtual under a vtime.SimClock, so retry
	// schedules replay deterministically in the harnesses and a retry
	// storm in a simulated run costs no wall time). Zero retries
	// immediately, as before.
	Backoff time.Duration
}

// NewRetryingClient wraps client with up to attempts quorum samples per
// operation.
func NewRetryingClient(client *Client, attempts int) (*RetryingClient, error) {
	if client == nil {
		return nil, errors.New("register: client is required")
	}
	if attempts < 1 {
		return nil, fmt.Errorf("register: attempts %d must be >= 1", attempts)
	}
	return &RetryingClient{Client: client, Attempts: attempts}, nil
}

// backoff sleeps between attempts on the client's clock, honouring ctx.
func (c *RetryingClient) backoff(ctx context.Context, attempt int) {
	if c.Backoff > 0 && attempt+1 < c.Attempts {
		_ = c.Client.clock.SleepCtx(ctx, c.Backoff)
	}
}

// Write retries the underlying write until a quorum fully acknowledges or
// attempts are exhausted; the last result and error are returned.
func (c *RetryingClient) Write(ctx context.Context, key string, value []byte) (WriteResult, error) {
	var (
		res WriteResult
		err error
	)
	for i := 0; i < c.Attempts; i++ {
		// Bail out before burning an attempt on a context that is already
		// cancelled: dispatching a fresh quorum sample would only produce
		// doomed calls.
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			return res, err
		}
		res, err = c.Client.Write(ctx, key, value)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrNoReplies) && !errors.Is(err, ErrPartialWrite) {
			return res, err
		}
		if transport.IsPermanent(err) {
			// Every member failed with a permanent classification (codec
			// mismatch, unsupported payload): a fresh quorum sample would
			// fail the same way, so stop burning attempts.
			return res, err
		}
		c.backoff(ctx, i)
	}
	return res, err
}

// Read retries the underlying read until some quorum member answers or
// attempts are exhausted.
func (c *RetryingClient) Read(ctx context.Context, key string) (ReadResult, error) {
	var (
		res ReadResult
		err error
	)
	for i := 0; i < c.Attempts; i++ {
		// As in Write: check for cancellation before sampling a new quorum,
		// not after the attempt has already been spent.
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			return res, err
		}
		res, err = c.Client.Read(ctx, key)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrNoReplies) {
			return res, err
		}
		if transport.IsPermanent(err) {
			// As in Write: permanently-failed quorums do not improve with
			// re-sampling.
			return res, err
		}
		c.backoff(ctx, i)
	}
	return res, err
}

// Update runs the read-modify-write cycle through the RETRYING Read and
// Write paths, so a transient first-attempt failure (dead quorum sample,
// partial write) still completes the RMW. Before this method existed, calls
// to Update through the embedded *Client used the non-retrying protocol
// directly — silently bypassing Attempts/Backoff; see Client.Update for the
// RMW semantics.
func (c *RetryingClient) Update(ctx context.Context, key string, f func(old []byte, found bool) []byte) (WriteResult, error) {
	r, err := c.Read(ctx, key)
	if err != nil {
		return WriteResult{}, fmt.Errorf("register: update read: %w", err)
	}
	next := f(r.Value, r.Found)
	return c.Write(ctx, key, next)
}
