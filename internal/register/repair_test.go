package register

import (
	"context"
	"math/rand"
	"testing"

	"pqs/internal/quorum"
	"pqs/internal/replica"
	"pqs/internal/sv"
	"pqs/internal/ts"
)

func storeEntry(v string, counter uint64) replica.Entry {
	return replica.Entry{Value: []byte(v), Stamp: ts.Stamp{Counter: counter, Writer: 1}}
}

func storeEntrySig(v []byte, stamp ts.Stamp, sig []byte) replica.Entry {
	return replica.Entry{Value: v, Stamp: stamp, Sig: sig}
}

func TestReadRepairHealsStaleMembers(t *testing.T) {
	c := newCluster(t, 10)
	// Write to servers 0..4 only by applying entries directly, simulating a
	// write quorum the read quorum only partially overlaps.
	for i := 0; i < 5; i++ {
		c.reps[i].Store().Apply("x", storeEntry("fresh", 7))
	}
	full, err := quorum.NewUniform(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(Options{
		System: full, Mode: Benign, Transport: c.net,
		Rand:       rand.New(rand.NewSource(1)),
		ReadRepair: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := cl.Read(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Found || string(rr.Value) != "fresh" {
		t.Fatalf("read %+v", rr)
	}
	if rr.Repaired != 5 {
		t.Errorf("repaired %d members, want 5", rr.Repaired)
	}
	// Every server now holds the value.
	for i, rep := range c.reps {
		e, ok := rep.Store().Get("x")
		if !ok || string(e.Value) != "fresh" {
			t.Errorf("server %d not repaired: %+v", i, e)
		}
	}
}

func TestReadRepairPreservesSignatures(t *testing.T) {
	kp, err := sv.GenerateKey(&zeroReader{})
	if err != nil {
		t.Fatal(err)
	}
	reg := sv.NewRegistry()
	reg.Add(1, kp.Public)

	c := newCluster(t, 6)
	stamp := ts.Stamp{Counter: 3, Writer: 1}
	sig := sv.Sign(kp.Private, "x", []byte("signed"), stamp)
	for i := 0; i < 3; i++ {
		c.reps[i].Store().Apply("x", storeEntrySig([]byte("signed"), stamp, sig))
	}
	full, err := quorum.NewUniform(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(Options{
		System: full, Mode: Dissemination, Transport: c.net,
		Rand:       rand.New(rand.NewSource(2)),
		Registry:   reg,
		ReadRepair: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	// Repaired copies carry the original signature and verify.
	for i, rep := range c.reps {
		e, ok := rep.Store().Get("x")
		if !ok {
			t.Fatalf("server %d missing entry", i)
		}
		if !reg.VerifyEntry("x", e.Value, e.Stamp, e.Sig) {
			t.Errorf("server %d holds unverifiable repaired entry", i)
		}
	}
}

func TestReadRepairRejectedInMaskingMode(t *testing.T) {
	c := newCluster(t, 4)
	full, err := quorum.NewUniform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewClient(Options{
		System: full, Mode: Masking, K: 2, Transport: c.net,
		Rand:       rand.New(rand.NewSource(3)),
		ReadRepair: true,
	})
	if err == nil {
		t.Fatal("masking + read repair must be rejected")
	}
}

func TestReadRepairNoopWhenNothingFound(t *testing.T) {
	c := newCluster(t, 4)
	full, err := quorum.NewUniform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(Options{
		System: full, Mode: Benign, Transport: c.net,
		Rand:       rand.New(rand.NewSource(4)),
		ReadRepair: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := cl.Read(context.Background(), "missing")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Found || rr.Repaired != 0 {
		t.Errorf("unexpected repair on missing key: %+v", rr)
	}
	for i, rep := range c.reps {
		if rep.Store().Len() != 0 {
			t.Errorf("server %d store polluted", i)
		}
	}
}
