package register_test

// Degraded-mode routing: when the transport's circuit breaker has a quorum
// member open, the access layer must treat it as instantly failed at
// dispatch — promoting a spare at t=0 — instead of burning the hedge delay
// on every read that samples it. This test measures exactly that: tail
// latency under a hung server with hedge timers alone versus hedge timers
// plus the breaker.

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/register"
	"pqs/internal/sim"
	"pqs/internal/transport"
	"pqs/internal/ts"
	"pqs/internal/vtime"
)

// TestBreakerBeatsHedgeOnStalledServer runs the same hedged workload over
// the virtual TCP plane against one stalled (hung, not crashed) server,
// with and without the circuit breaker. Without it, every read that samples
// the stalled member pays the full hedge delay before a spare is promoted;
// with it, after the first call timeouts trip the breaker, dispatch
// fast-fails the member and the spare goes out at t=0 — so the breaker run's
// p99 must beat the hedge-only run's, and must land below the hedge delay.
func TestBreakerBeatsHedgeOnStalledServer(t *testing.T) {
	const (
		n, q       = 9, 3
		reads      = 1000
		keys       = 16
		hedgeDelay = 10 * time.Millisecond
		stalled    = quorum.ServerID(4)
	)

	run := func(lc transport.LifecycleConfig) (p99 time.Duration, downFails uint64) {
		sc := vtime.NewSimClock()
		var durs []time.Duration
		sc.Run(func() {
			cluster := sim.NewClusterClock(n, 7, sc)
			tc, err := sim.NewTCPClusterOpts(cluster, sc, 7, sim.TCPClusterOptions{
				CallTimeout: 50 * time.Millisecond,
				Lifecycle:   lc,
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer tc.Close()
			tc.Net.SetLatency(200*time.Microsecond, 800*time.Microsecond)

			sys, err := quorum.NewUniform(n, q)
			if err != nil {
				t.Error(err)
				return
			}
			client, err := register.NewClient(register.Options{
				System:     sys,
				Mode:       register.Benign,
				Transport:  tc.Client,
				Rand:       rand.New(rand.NewSource(21)),
				Clock:      ts.NewClock(1),
				Time:       sc,
				Spares:     2,
				HedgeDelay: hedgeDelay,
				EagerRead:  true,
			})
			if err != nil {
				t.Error(err)
				return
			}

			ctx := context.Background()
			for i := 0; i < keys; i++ {
				if _, err := client.Write(ctx, key(i), []byte{byte(i)}); err != nil {
					t.Errorf("seed write %d: %v", i, err)
					return
				}
			}

			tc.Net.Stall(stalled)
			for i := 0; i < reads; i++ {
				start := sc.Elapsed()
				if _, err := client.Read(ctx, key(i%keys)); err != nil {
					t.Errorf("read %d: %v", i, err)
					return
				}
				durs = append(durs, sc.Elapsed()-start)
			}
			downFails = client.Stats().ServerDownFastFails
			client.WaitDrained()
		})
		if len(durs) != reads {
			t.Fatalf("recorded %d read durations, want %d", len(durs), reads)
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return durs[reads*99/100], downFails
	}

	hedgeOnly, _ := run(transport.LifecycleConfig{})
	withBreaker, downFails := run(transport.LifecycleConfig{
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second, // never half-opens within the run
	})

	if hedgeOnly < hedgeDelay {
		t.Fatalf("hedge-only p99 = %v, expected at least the hedge delay %v (stall not biting?)", hedgeOnly, hedgeDelay)
	}
	if withBreaker >= hedgeOnly {
		t.Fatalf("breaker p99 = %v did not beat hedge-only p99 = %v", withBreaker, hedgeOnly)
	}
	if withBreaker >= hedgeDelay {
		t.Fatalf("breaker p99 = %v still pays the hedge delay %v; spares are not promoting at t=0", withBreaker, hedgeDelay)
	}
	if downFails == 0 {
		t.Fatal("breaker run recorded no ServerDownFastFails; dispatch never consulted the breaker")
	}
	t.Logf("p99: hedge-only %v, with breaker %v (%d dispatch fast-fails)", hedgeOnly, withBreaker, downFails)
}

func key(i int) string { return "dk" + string(rune('a'+i%26)) }
