package register

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"pqs/internal/quorum"
	"pqs/internal/replica"
	"pqs/internal/sv"
	"pqs/internal/transport"
	"pqs/internal/ts"
)

type cluster struct {
	net  *transport.MemNetwork
	reps []*replica.Replica
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{net: transport.NewMemNetwork(42)}
	for i := 0; i < n; i++ {
		r := replica.New(quorum.ServerID(i))
		c.reps = append(c.reps, r)
		c.net.Register(quorum.ServerID(i), r)
	}
	return c
}

func majoritySystem(t *testing.T, n int) quorum.System {
	t.Helper()
	s, err := quorum.NewMajority(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func benignClient(t *testing.T, c *cluster, sys quorum.System, writer uint32) *Client {
	t.Helper()
	cl, err := NewClient(Options{
		System:    sys,
		Mode:      Benign,
		Transport: c.net,
		Rand:      rand.New(rand.NewSource(int64(writer) + 1)),
		Clock:     ts.NewClock(writer),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestNewClientValidation(t *testing.T) {
	c := newCluster(t, 3)
	sys := majoritySystem(t, 3)
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		opts Options
	}{
		{"no system", Options{Mode: Benign, Transport: c.net, Rand: rng}},
		{"no transport", Options{System: sys, Mode: Benign, Rand: rng}},
		{"no rand", Options{System: sys, Mode: Benign, Transport: c.net}},
		{"bad mode", Options{System: sys, Mode: 0, Transport: c.net, Rand: rng}},
		{"dissemination without registry", Options{System: sys, Mode: Dissemination, Transport: c.net, Rand: rng}},
		{"masking without k", Options{System: sys, Mode: Masking, Transport: c.net, Rand: rng}},
	}
	for _, tc := range cases {
		if _, err := NewClient(tc.opts); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestBenignReadYourWrite(t *testing.T) {
	c := newCluster(t, 10)
	cl := benignClient(t, c, majoritySystem(t, 10), 1)
	ctx := context.Background()
	for i, val := range []string{"v1", "v2", "v3"} {
		wr, err := cl.Write(ctx, "x", []byte(val))
		if err != nil {
			t.Fatal(err)
		}
		if len(wr.Acked) != len(wr.Quorum) {
			t.Fatalf("write %d: %d/%d acked", i, len(wr.Acked), len(wr.Quorum))
		}
		if wr.Stamp.Counter != uint64(i+1) {
			t.Fatalf("write %d stamp %v", i, wr.Stamp)
		}
		rr, err := cl.Read(ctx, "x")
		if err != nil {
			t.Fatal(err)
		}
		// Majority quorums always intersect: the read is guaranteed fresh.
		if !rr.Found || string(rr.Value) != val {
			t.Fatalf("read after write %q returned %+v", val, rr)
		}
		if rr.Stamp != wr.Stamp {
			t.Fatalf("read stamp %v != write stamp %v", rr.Stamp, wr.Stamp)
		}
		if rr.Vouchers < 1 || rr.Replies != len(rr.Quorum) {
			t.Fatalf("diagnostics: %+v", rr)
		}
	}
}

func TestReadMissingKey(t *testing.T) {
	c := newCluster(t, 5)
	cl := benignClient(t, c, majoritySystem(t, 5), 1)
	rr, err := cl.Read(context.Background(), "never-written")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Found {
		t.Errorf("missing key reported found: %+v", rr)
	}
	if rr.Replies != len(rr.Quorum) {
		t.Errorf("replies %d != quorum %d", rr.Replies, len(rr.Quorum))
	}
}

func TestWriteWithoutClock(t *testing.T) {
	c := newCluster(t, 3)
	cl, err := NewClient(Options{
		System:    majoritySystem(t, 3),
		Mode:      Benign,
		Transport: c.net,
		Rand:      rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Write(context.Background(), "x", []byte("v")); err == nil {
		t.Error("write without clock must fail")
	}
	// Reading is fine without a clock.
	if _, err := cl.Read(context.Background(), "x"); err != nil {
		t.Errorf("read without clock: %v", err)
	}
}

func TestPartialWrite(t *testing.T) {
	c := newCluster(t, 5)
	sys := majoritySystem(t, 5) // quorums of size 3
	c.net.Crash(0)
	c.net.Crash(1)

	strict, err := NewClient(Options{
		System: sys, Mode: Benign, Transport: c.net,
		Rand:  rand.New(rand.NewSource(3)),
		Clock: ts.NewClock(1), RequireFullWrite: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With servers 0 and 1 down, some quorum picks hit them; retry until we
	// observe a partial write. Seeded rand makes this deterministic.
	sawPartial := false
	for i := 0; i < 50 && !sawPartial; i++ {
		_, err := strict.Write(context.Background(), "x", []byte("v"))
		if errors.Is(err, ErrPartialWrite) {
			sawPartial = true
		} else if err != nil {
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	if !sawPartial {
		t.Error("never observed ErrPartialWrite despite crashed members")
	}

	// Best-effort client tolerates the same crashes.
	loose := benignClient(t, c, sys, 2)
	for i := 0; i < 20; i++ {
		wr, err := loose.Write(context.Background(), "x", []byte("v"))
		if err != nil {
			t.Fatalf("best-effort write failed: %v", err)
		}
		if len(wr.Acked)+len(wr.Errs) != len(wr.Quorum) {
			t.Fatalf("accounting broken: %+v", wr)
		}
	}
}

func TestAllCrashed(t *testing.T) {
	c := newCluster(t, 4)
	for i := 0; i < 4; i++ {
		c.net.Crash(quorum.ServerID(i))
	}
	cl := benignClient(t, c, majoritySystem(t, 4), 1)
	if _, err := cl.Write(context.Background(), "x", []byte("v")); !errors.Is(err, ErrNoReplies) {
		t.Errorf("write err = %v, want ErrNoReplies", err)
	}
	if _, err := cl.Read(context.Background(), "x"); !errors.Is(err, ErrNoReplies) {
		t.Errorf("read err = %v, want ErrNoReplies", err)
	}
}

// byzSetup builds a 10-server cluster where servers 0..b-1 are Byzantine
// forgers colluding on value "forged" with an enormous timestamp.
func byzSetup(t *testing.T, b int, forgedSig []byte) *cluster {
	t.Helper()
	c := newCluster(t, 10)
	forged := replica.Forger{
		Value: []byte("forged"),
		Stamp: ts.Stamp{Counter: 1 << 40, Writer: 99},
		Sig:   forgedSig,
	}
	for i := 0; i < b; i++ {
		c.reps[i].SetBehavior(forged)
	}
	return c
}

type zeroReader struct{ b byte }

func (z *zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = z.b
		z.b++
	}
	return len(p), nil
}

func TestDisseminationFiltersForgeries(t *testing.T) {
	kp, err := sv.GenerateKey(&zeroReader{})
	if err != nil {
		t.Fatal(err)
	}
	reg := sv.NewRegistry()
	reg.Add(1, kp.Public)

	b := 3
	c := byzSetup(t, b, []byte("not a real signature"))
	sys, err := quorum.NewDissemThreshold(10, b) // quorums of size 7, overlap >= 4 > b
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(Options{
		System: sys, Mode: Dissemination, Transport: c.net,
		Rand:     rand.New(rand.NewSource(5)),
		Clock:    ts.NewClock(1),
		Signer:   kp.Private,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cl.Write(ctx, "x", []byte("genuine")); err != nil {
		t.Fatal(err)
	}
	// Strict dissemination quorums guarantee a correct up-to-date server in
	// every read quorum, so every read must return the genuine value.
	for i := 0; i < 50; i++ {
		rr, err := cl.Read(ctx, "x")
		if err != nil {
			t.Fatal(err)
		}
		if !rr.Found || string(rr.Value) != "genuine" {
			t.Fatalf("read %d returned %+v", i, rr)
		}
		if rr.Discarded == 0 && quorumHitsByz(rr.Quorum, b) {
			t.Fatalf("read %d: quorum hit byzantine servers but nothing was discarded", i)
		}
	}
}

func quorumHitsByz(q []quorum.ServerID, b int) bool {
	for _, id := range q {
		if int(id) < b {
			return true
		}
	}
	return false
}

func TestBenignModeIsFooledByForgery(t *testing.T) {
	// The contrast case motivating Section 4: without verification, a single
	// forged huge-timestamp reply wins the benign protocol.
	b := 3
	c := byzSetup(t, b, nil)
	cl := benignClient(t, c, majoritySystem(t, 10), 1)
	ctx := context.Background()
	if _, err := cl.Write(ctx, "x", []byte("genuine")); err != nil {
		t.Fatal(err)
	}
	fooled := false
	for i := 0; i < 20 && !fooled; i++ {
		rr, err := cl.Read(ctx, "x")
		if err != nil {
			t.Fatal(err)
		}
		if string(rr.Value) == "forged" {
			fooled = true
		}
	}
	if !fooled {
		t.Error("benign protocol was never fooled; Byzantine injection is not working")
	}
}

func TestMaskingOutvotesColluders(t *testing.T) {
	b := 3
	c := byzSetup(t, b, nil)
	full, err := quorum.NewUniform(10, 10) // full-universe quorums: deterministic counts
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(Options{
		System: full, Mode: Masking, K: b + 1, Transport: c.net,
		Rand:  rand.New(rand.NewSource(6)),
		Clock: ts.NewClock(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cl.Write(ctx, "x", []byte("genuine")); err != nil {
		t.Fatal(err)
	}
	rr, err := cl.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Found || string(rr.Value) != "genuine" {
		t.Fatalf("masking read returned %+v", rr)
	}
	if rr.Vouchers != 10-b {
		t.Errorf("vouchers = %d, want %d", rr.Vouchers, 10-b)
	}
	if rr.Discarded != b {
		t.Errorf("discarded = %d, want %d (the colluders)", rr.Discarded, b)
	}
}

func TestMaskingThresholdTooLowIsFooled(t *testing.T) {
	// With k <= the number of colluders, the forged candidate passes the
	// threshold and its huge timestamp wins: exactly the failure mode
	// Definition 5.1 guards against when k is chosen per Section 5.3.
	b := 3
	c := byzSetup(t, b, nil)
	full, err := quorum.NewUniform(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(Options{
		System: full, Mode: Masking, K: b, Transport: c.net,
		Rand:  rand.New(rand.NewSource(7)),
		Clock: ts.NewClock(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cl.Write(ctx, "x", []byte("genuine")); err != nil {
		t.Fatal(err)
	}
	rr, err := cl.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(rr.Value) != "forged" {
		t.Fatalf("expected the forged value to win at k=%d, got %+v", b, rr)
	}
}

func TestMaskingBottom(t *testing.T) {
	// A value below threshold yields ⊥ (Found=false, no error): write to
	// only two replicas directly, then read with k=4.
	c := newCluster(t, 10)
	for i := 0; i < 2; i++ {
		c.reps[i].Store().Apply("x", replica.Entry{Value: []byte("rare"), Stamp: ts.Stamp{Counter: 1, Writer: 1}})
	}
	full, err := quorum.NewUniform(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(Options{
		System: full, Mode: Masking, K: 4, Transport: c.net,
		Rand: rand.New(rand.NewSource(8)),
	})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := cl.Read(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Found {
		t.Fatalf("sub-threshold value accepted: %+v", rr)
	}
	if rr.Discarded != 2 {
		t.Errorf("discarded = %d, want 2", rr.Discarded)
	}
}

func TestClockWitnessOnRead(t *testing.T) {
	c := newCluster(t, 5)
	sys := majoritySystem(t, 5)
	w1 := benignClient(t, c, sys, 1)
	ctx := context.Background()
	// Writer 1 writes 5 times; its clock reaches 5.
	for i := 0; i < 5; i++ {
		if _, err := w1.Write(ctx, "x", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// A recovering writer (fresh clock) reads, witnesses stamp 5, and its
	// next write must dominate.
	w2 := benignClient(t, c, sys, 1)
	if _, err := w2.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	wr, err := w2.Write(ctx, "x", []byte("recovered"))
	if err != nil {
		t.Fatal(err)
	}
	if wr.Stamp.Counter <= 5 {
		t.Errorf("recovered writer stamp %v does not dominate", wr.Stamp)
	}
	rr, err := w1.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(rr.Value) != "recovered" {
		t.Errorf("read %+v after recovery write", rr)
	}
}

func TestModeString(t *testing.T) {
	if Benign.String() != "benign" || Dissemination.String() != "dissemination" ||
		Masking.String() != "masking" || Mode(9).String() != "mode(9)" {
		t.Error("Mode.String wrong")
	}
}
