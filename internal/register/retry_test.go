package register

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/replica"
	"pqs/internal/transport"
	"pqs/internal/ts"
	"pqs/internal/vtime"
)

func TestRetryingClientValidation(t *testing.T) {
	c := newCluster(t, 3)
	cl := benignClient(t, c, majoritySystem(t, 3), 1)
	if _, err := NewRetryingClient(nil, 3); err == nil {
		t.Error("nil client accepted")
	}
	if _, err := NewRetryingClient(cl, 0); err == nil {
		t.Error("zero attempts accepted")
	}
}

func TestRetryingWriteSurvivesLossyNetwork(t *testing.T) {
	c := newCluster(t, 9)
	sys := majoritySystem(t, 9)
	base, err := NewClient(Options{
		System: sys, Mode: Benign, Transport: c.net,
		Rand:  rand.New(rand.NewSource(1)),
		Clock: ts.NewClock(1), RequireFullWrite: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRetryingClient(base, 50)
	if err != nil {
		t.Fatal(err)
	}
	// 30% message loss: single attempts of 5-member full-quorum writes
	// succeed with probability 0.7^5 ≈ 17%, but 50 attempts virtually
	// always find a fully-acknowledging quorum.
	c.net.SetDropProb(0.3)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := rc.Write(ctx, "x", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("write %d failed despite retries: %v", i, err)
		}
	}
	c.net.SetDropProb(0)
	rr, err := rc.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(rr.Value) != "v19" {
		t.Errorf("read %+v", rr)
	}
}

func TestRetryingReadGivesUpEventually(t *testing.T) {
	c := newCluster(t, 4)
	for i := 0; i < 4; i++ {
		c.net.Crash(quorum.ServerID(i))
	}
	base := benignClient(t, c, majoritySystem(t, 4), 1)
	rc, err := NewRetryingClient(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Read(context.Background(), "x"); !errors.Is(err, ErrNoReplies) {
		t.Errorf("err = %v, want ErrNoReplies", err)
	}
	if _, err := rc.Write(context.Background(), "x", []byte("v")); !errors.Is(err, ErrNoReplies) {
		t.Errorf("write err = %v, want ErrNoReplies", err)
	}
}

func TestRetryingDoesNotMaskRealErrors(t *testing.T) {
	c := newCluster(t, 3)
	base, err := NewClient(Options{
		System: majoritySystem(t, 3), Mode: Benign, Transport: c.net,
		Rand: rand.New(rand.NewSource(2)),
		// no clock: writes fail with a non-transient error
	})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRetryingClient(base, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Write(context.Background(), "x", []byte("v")); err == nil ||
		errors.Is(err, ErrNoReplies) || errors.Is(err, ErrPartialWrite) {
		t.Errorf("expected immediate non-transient error, got %v", err)
	}
}

func TestUpdateReadModifyWrite(t *testing.T) {
	c := newCluster(t, 7)
	sys := majoritySystem(t, 7)
	cl := benignClient(t, c, sys, 1)
	ctx := context.Background()

	incr := func(old []byte, found bool) []byte {
		n := 0
		if found {
			fmt.Sscanf(string(old), "%d", &n)
		}
		return []byte(fmt.Sprint(n + 1))
	}
	for i := 0; i < 10; i++ {
		if _, err := cl.Update(ctx, "counter", incr); err != nil {
			t.Fatal(err)
		}
	}
	rr, err := cl.Read(ctx, "counter")
	if err != nil {
		t.Fatal(err)
	}
	if string(rr.Value) != "10" {
		t.Errorf("counter = %s, want 10", rr.Value)
	}
}

func TestUpdateTwoWritersConverge(t *testing.T) {
	// Two writers update the same key through read-modify-write; majority
	// quorums make every read see the latest committed stamp, so stamps
	// strictly increase and both writers converge to one history.
	c := newCluster(t, 7)
	sys := majoritySystem(t, 7)
	w1 := benignClient(t, c, sys, 1)
	w2 := benignClient(t, c, sys, 2)
	ctx := context.Background()
	appendSelf := func(tag string) func([]byte, bool) []byte {
		return func(old []byte, _ bool) []byte {
			return append(append([]byte{}, old...), []byte(tag)...)
		}
	}
	var lastStamp ts.Stamp
	for i := 0; i < 6; i++ {
		wr, err := w1.Update(ctx, "log", appendSelf("a"))
		if err != nil {
			t.Fatal(err)
		}
		if !lastStamp.Less(wr.Stamp) {
			t.Fatalf("stamp did not advance: %v then %v", lastStamp, wr.Stamp)
		}
		lastStamp = wr.Stamp
		wr, err = w2.Update(ctx, "log", appendSelf("b"))
		if err != nil {
			t.Fatal(err)
		}
		if !lastStamp.Less(wr.Stamp) {
			t.Fatalf("stamp did not advance: %v then %v", lastStamp, wr.Stamp)
		}
		lastStamp = wr.Stamp
	}
	rr, err := w1.Read(ctx, "log")
	if err != nil {
		t.Fatal(err)
	}
	if string(rr.Value) != "abababababab" {
		t.Errorf("log = %s", rr.Value)
	}
}

// TestRetryingBackoffOnClock checks the clock-aware inter-attempt backoff:
// under a SimClock, a retry sequence against crashed servers consumes
// exactly (Attempts-1)·Backoff of virtual time — deterministic, and free
// in wall time — while a zero Backoff consumes none.
func TestRetryingBackoffOnClock(t *testing.T) {
	run := func(backoff time.Duration) time.Duration {
		sc := vtime.NewSimClock()
		var elapsed time.Duration
		sc.Run(func() {
			net := transport.NewMemNetwork(7)
			net.SetClock(sc)
			sys := majoritySystem(t, 3)
			for i := 0; i < 3; i++ {
				net.Register(quorum.ServerID(i), replica.New(quorum.ServerID(i)))
				net.Crash(quorum.ServerID(i))
			}
			base, err := NewClient(Options{
				System: sys, Mode: Benign, Transport: net,
				Rand:  rand.New(rand.NewSource(1)),
				Clock: ts.NewClock(1),
				Time:  sc,
			})
			if err != nil {
				t.Error(err)
				return
			}
			rc, err := NewRetryingClient(base, 4)
			if err != nil {
				t.Error(err)
				return
			}
			rc.Backoff = backoff
			if _, err := rc.Read(context.Background(), "k"); !errors.Is(err, ErrNoReplies) {
				t.Errorf("read against crashed cluster: %v, want ErrNoReplies", err)
			}
			elapsed = sc.Elapsed()
		})
		return elapsed
	}
	if got := run(0); got != 0 {
		t.Errorf("zero backoff consumed %v virtual time", got)
	}
	// 4 attempts, 3 sleeps between them.
	if got, want := run(50*time.Millisecond), 150*time.Millisecond; got != want {
		t.Errorf("backoff consumed %v virtual time, want %v", got, want)
	}
}

// stampingTransport records the virtual time of every call before
// delegating, so a test can reconstruct the retry schedule.
type stampingTransport struct {
	inner  transport.Transport
	clk    *vtime.SimClock
	mu     sync.Mutex
	stamps []time.Duration
}

func (s *stampingTransport) Call(ctx context.Context, to quorum.ServerID, req any) (any, error) {
	s.mu.Lock()
	s.stamps = append(s.stamps, s.clk.Elapsed())
	s.mu.Unlock()
	return s.inner.Call(ctx, to, req)
}

// TestRetryingBackoffDeterminism replays the same failing workload twice
// under SimClocks from one seed and requires the identical retry schedule:
// every attempt's dispatch timestamps must match to the nanosecond, spaced
// exactly Backoff apart. (The retry layer sleeps on the injected clock and
// draws quorums from the seeded Rand, so nothing in the schedule may wobble
// between runs.)
func TestRetryingBackoffDeterminism(t *testing.T) {
	const attempts = 5
	run := func() []time.Duration {
		sc := vtime.NewSimClock()
		var schedule []time.Duration
		sc.Run(func() {
			net := transport.NewMemNetwork(7)
			net.SetClock(sc)
			sys := majoritySystem(t, 3)
			for i := 0; i < 3; i++ {
				net.Register(quorum.ServerID(i), replica.New(quorum.ServerID(i)))
				net.Crash(quorum.ServerID(i))
			}
			st := &stampingTransport{inner: net, clk: sc}
			base, err := NewClient(Options{
				System: sys, Mode: Benign, Transport: st,
				Rand:  rand.New(rand.NewSource(5)),
				Clock: ts.NewClock(1),
				Time:  sc,
			})
			if err != nil {
				t.Error(err)
				return
			}
			rc, err := NewRetryingClient(base, attempts)
			if err != nil {
				t.Error(err)
				return
			}
			rc.Backoff = 20 * time.Millisecond
			if _, err := rc.Read(context.Background(), "k"); !errors.Is(err, ErrNoReplies) {
				t.Errorf("read against crashed cluster: %v, want ErrNoReplies", err)
			}
			// Concurrent member dispatches within one attempt share a virtual
			// instant; the distinct timestamps are the attempt schedule.
			st.mu.Lock()
			for _, s := range st.stamps {
				if len(schedule) == 0 || schedule[len(schedule)-1] != s {
					schedule = append(schedule, s)
				}
			}
			st.mu.Unlock()
		})
		return schedule
	}
	a, b := run(), run()
	if len(a) != attempts {
		t.Fatalf("observed %d attempts (%v), want %d", len(a), a, attempts)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d dispatched at %v vs %v: retry schedule is not replaying", i, a[i], b[i])
		}
		if want := time.Duration(i) * 20 * time.Millisecond; a[i] != want {
			t.Fatalf("attempt %d at %v, want %v (Backoff spacing)", i, a[i], want)
		}
	}
}

// flakyTransport fails its first failN calls with a transient error, then
// delegates — a server set that is briefly unreachable and then recovers.
type flakyTransport struct {
	inner transport.Transport
	mu    sync.Mutex
	failN int
	calls int
}

func (f *flakyTransport) Call(ctx context.Context, to quorum.ServerID, req any) (any, error) {
	f.mu.Lock()
	f.calls++
	fail := f.failN > 0
	if fail {
		f.failN--
	}
	f.mu.Unlock()
	if fail {
		return nil, errors.New("flaky: transient outage")
	}
	return f.inner.Call(ctx, to, req)
}

// TestRetryingUpdateRetriesTransientFailure pins the retry-bypass bug:
// Update used to be defined only on *Client, so calls through the embedded
// pointer ran the NON-retrying Read/Write and a transient first-attempt
// failure failed the whole RMW. RetryingClient.Update must ride the
// retrying paths instead.
func TestRetryingUpdateRetriesTransientFailure(t *testing.T) {
	const n = 3 // majority quorum size 2
	net := transport.NewMemNetwork(11)
	for i := 0; i < n; i++ {
		net.Register(quorum.ServerID(i), replica.New(quorum.ServerID(i)))
	}
	sys := majoritySystem(t, n)
	flaky := &flakyTransport{inner: net}
	base, err := NewClient(Options{
		System: sys, Mode: Benign, Transport: flaky,
		Rand:  rand.New(rand.NewSource(3)),
		Clock: ts.NewClock(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRetryingClient(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := rc.Write(ctx, "counter", []byte("41")); err != nil {
		t.Fatal(err)
	}
	// Fail the next full read quorum: the RMW's first read attempt dies,
	// the retry succeeds, and the increment must still land.
	flaky.mu.Lock()
	flaky.failN = 2
	flaky.mu.Unlock()
	wr, err := rc.Update(ctx, "counter", func(old []byte, found bool) []byte {
		if !found {
			t.Errorf("update read lost the committed value")
		}
		v := 0
		fmt.Sscanf(string(old), "%d", &v)
		return []byte(fmt.Sprint(v + 1))
	})
	if err != nil {
		t.Fatalf("Update with transient first-attempt failure: %v", err)
	}
	if wr.Stamp.IsZero() {
		t.Fatal("update write did not commit")
	}
	rr, err := rc.Read(ctx, "counter")
	if err != nil {
		t.Fatal(err)
	}
	if string(rr.Value) != "42" {
		t.Errorf("counter = %s, want 42 (RMW did not complete through retries)", rr.Value)
	}
}
