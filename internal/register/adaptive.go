package register

import (
	"sync"
	"time"

	"pqs/internal/quorum"
)

// Adaptive hedging (Options.AdaptiveHedge): instead of a hand-tuned fixed
// HedgeDelay, the client estimates the reply-latency distribution online
// and hedges at an upper quantile of it, so the delay tracks the cluster —
// tightening as it speeds up, backing off as it degrades — without
// retuning.
//
// The estimator is the Jacobson/Karels RTT filter TCP retransmission
// timers use: a latency EWMA (SRTT, gain 1/8) plus a deviation EWMA
// (RTTVAR, gain 1/4), with the hedge firing at SRTT + k·RTTVAR (k =
// Options.HedgeDeviations, default 4). For a roughly symmetric latency
// distribution that sits past the far tail of normal replies, so hedges
// fire for genuine stragglers, not for ordinary variance.
//
// ε-preservation: the delay for an operation is computed once, before any
// of its calls resolve, from POOLED history of earlier operations. Which
// servers the current access set contains never enters the computation —
// per-server EWMAs exist only for observability (ServerLatencies). The
// hedge timer therefore remains the "timer independent of server identity"
// the PR 1 promotion argument requires: conditioned on the timer firing,
// the completing access set is still the strategy's sample conditioned on
// liveness. TestAdaptiveDelayIdentityBlind locks the pooling in;
// TestAdaptiveHedgeEpsilonPreserved re-measures ε under adaptive hedging.

const (
	// srttGain and rttvarGain are the classic Jacobson/Karels filter
	// gains (α = 1/8, β = 1/4).
	srttGain   = 0.125
	rttvarGain = 0.25
	// defaultHedgeDeviations is k in SRTT + k·RTTVAR when
	// Options.HedgeDeviations is zero — the classic RTO multiplier.
	defaultHedgeDeviations = 4.0
	// adaptiveWarmup is the number of latency samples required before the
	// estimate replaces the bootstrap HedgeDelay.
	adaptiveWarmup = 8
	// minAdaptiveDelay floors the computed delay so a cluster with
	// near-zero measured latency cannot drive the hedge timer to zero and
	// promote every spare on every operation.
	minAdaptiveDelay = 10 * time.Microsecond
)

// latencyEstimator maintains the pooled SRTT/RTTVAR pair and the
// per-server observability EWMAs. Safe for concurrent use.
type latencyEstimator struct {
	mu        sync.Mutex
	samples   uint64
	srtt      float64 // nanoseconds
	rttvar    float64 // nanoseconds
	perServer map[quorum.ServerID]float64
}

// observe folds one successful reply latency into the estimate.
func (e *latencyEstimator) observe(id quorum.ServerID, d time.Duration) {
	x := float64(d)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.samples == 0 {
		e.srtt = x
		e.rttvar = x / 2
	} else {
		diff := e.srtt - x
		if diff < 0 {
			diff = -diff
		}
		e.rttvar += rttvarGain * (diff - e.rttvar)
		e.srtt += srttGain * (x - e.srtt)
	}
	e.samples++
	if e.perServer == nil {
		e.perServer = make(map[quorum.ServerID]float64)
	}
	if cur, ok := e.perServer[id]; ok {
		e.perServer[id] = cur + srttGain*(x-cur)
	} else {
		e.perServer[id] = x
	}
}

// delay returns the current hedge delay: the bootstrap fallback until
// warmed up, then SRTT + k·RTTVAR floored at minAdaptiveDelay.
func (e *latencyEstimator) delay(k float64, fallback time.Duration) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.samples < adaptiveWarmup {
		return fallback
	}
	d := time.Duration(e.srtt + k*e.rttvar)
	if d < minAdaptiveDelay {
		d = minAdaptiveDelay
	}
	return d
}

// snapshot returns the pooled estimator state for AccessStats.
func (e *latencyEstimator) snapshot() (samples uint64, srtt, rttvar time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.samples, time.Duration(e.srtt), time.Duration(e.rttvar)
}

// hedgeDelay returns the delay the next operation hedges at: the static
// Options.HedgeDelay, or the adaptive estimate once warmed up.
func (c *cell) hedgeDelay() time.Duration {
	if !c.opts.AdaptiveHedge {
		return c.opts.HedgeDelay
	}
	return c.lat.delay(c.hedgeK, c.opts.HedgeDelay)
}

// ServerLatencies returns a snapshot of the per-server reply-latency EWMAs
// the adaptive estimator has observed — observability only; the hedge
// delay never reads them (see the ε-preservation note above).
func (c *cell) ServerLatencies() map[quorum.ServerID]time.Duration {
	c.lat.mu.Lock()
	defer c.lat.mu.Unlock()
	out := make(map[quorum.ServerID]time.Duration, len(c.lat.perServer))
	for id, v := range c.lat.perServer {
		out[id] = time.Duration(v)
	}
	return out
}
