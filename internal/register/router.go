package register

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/ring"
	"pqs/internal/transport"
)

// ViewKey is the reserved register key under which a multi-cell deployment
// stores its encoded ring.View. It lives in cell 0 — routing to it never
// depends on the view itself, so every client can bootstrap or refresh its
// ring from a fixed location — and diffusion spreads it replica-to-replica
// within that cell like any other entry.
const ViewKey = "\x00pqs/ring-view"

// Client is the public face of the package: a router over one or more
// per-cell gather engines. With Options.Cells <= 1 it wraps a single cell
// over servers [0, n) and behaves exactly as the classic client did; with
// Options.Cells = C it partitions the keyspace by consistent hashing
// (internal/ring) across C independent cells, cell i owning servers
// [i*n, (i+1)*n) of the transport, each with its own strategy instance,
// ε budget and stats.
//
// The routing decision — key → cell — is the ONLY identity-dependent step:
// once a key is routed, the cell's dispatch, hedging, spare promotion and
// drain are identity-blind exactly as before (mechanized by the epsblind
// analyzer), so the paper's ε analysis applies to each cell independently
// and the deployment's ε is the max over cells of their per-cell ε.
type Client struct {
	cells []*cell
	// n is the per-cell universe size (System.N()); global server id of
	// cell i's local server s is i*n + s.
	n int
	// clock mirrors the engines' vtime clock for RetryingClient.backoff.
	clock clockShim

	// mu guards ring and view; Read/Write take the read lock only on the
	// multi-cell path.
	mu   sync.RWMutex
	ring *ring.Ring
	view ring.View
}

// clockShim is the subset of vtime.Clock the router itself needs.
type clockShim interface {
	SleepCtx(ctx context.Context, d time.Duration) error
}

// NewClient validates opts and returns a client. With Cells > 1 the
// option set is instantiated once per cell: each cell gets the transport
// offset to its slice of the server universe and a private rng derived
// from Options.Rand (so multi-cell runs stay deterministic under a fixed
// seed), while the write Clock is shared (ts.Clock is concurrency safe and
// per-writer monotonic across all cells).
func NewClient(opts Options) (*Client, error) {
	if opts.Cells < 0 {
		return nil, fmt.Errorf("register: Cells %d must be non-negative", opts.Cells)
	}
	if opts.RingVnodes < 0 {
		return nil, fmt.Errorf("register: RingVnodes %d must be non-negative", opts.RingVnodes)
	}
	if opts.Cells <= 1 {
		// Single-cell fast path: hand the engine the caller's options
		// verbatim (same rng, same transport) so existing deployments,
		// seeds and replayable histories are bit-for-bit unchanged.
		eng, err := newCell(opts)
		if err != nil {
			return nil, err
		}
		return &Client{cells: []*cell{eng}, n: opts.System.N(), clock: eng.clock}, nil
	}
	if opts.System == nil {
		return nil, errors.New("register: Options.System is required")
	}
	if opts.Rand == nil {
		return nil, errors.New("register: Options.Rand is required")
	}
	n := opts.System.N()
	c := &Client{cells: make([]*cell, 0, opts.Cells), n: n}
	members := make([]int, opts.Cells)
	for i := 0; i < opts.Cells; i++ {
		copt := opts
		copt.Cells, copt.RingVnodes = 0, 0
		copt.Transport = transport.Offset(opts.Transport, quorum.ServerID(i*n))
		// Derive the cell rng from the caller's: deterministic under a
		// fixed seed, yet independent streams per cell.
		copt.Rand = rand.New(rand.NewSource(opts.Rand.Int63()))
		eng, err := newCell(copt)
		if err != nil {
			return nil, fmt.Errorf("register: cell %d: %w", i, err)
		}
		c.cells = append(c.cells, eng)
		members[i] = i
	}
	c.clock = c.cells[0].clock
	r, err := ring.New(members, opts.RingVnodes)
	if err != nil {
		return nil, err
	}
	c.ring = r
	c.view = ring.View{Version: 1, Members: members, Vnodes: opts.RingVnodes}
	return c, nil
}

// routeCell maps a key to its owning cell via the current ring view. This
// is the one sanctioned identity-dependent step of the access path (see
// the Client doc comment); everything downstream is identity-blind.
func (c *Client) routeCell(key string) *cell {
	if len(c.cells) == 1 {
		return c.cells[0]
	}
	c.mu.RLock()
	r := c.ring
	c.mu.RUnlock()
	return c.cells[r.Lookup(key)]
}

// CellFor returns the index of the cell currently owning key (always 0 for
// a single-cell client). Exposed for the measurement stack: the chaos
// checker attributes each operation to a cell for per-cell ε accounting.
func (c *Client) CellFor(key string) int {
	if len(c.cells) == 1 {
		return 0
	}
	c.mu.RLock()
	r := c.ring
	c.mu.RUnlock()
	return r.Lookup(key)
}

// Cells returns the number of quorum cells the client routes across.
func (c *Client) Cells() int { return len(c.cells) }

// Mode returns the client's protocol mode (identical across cells).
func (c *Client) Mode() Mode { return c.cells[0].Mode() }

// System returns the per-cell quorum system.
func (c *Client) System() quorum.System { return c.cells[0].System() }

// Write routes key to its cell and runs the Section 3.1 write protocol
// there; see the cell Write for the protocol contract.
func (c *Client) Write(ctx context.Context, key string, value []byte) (WriteResult, error) {
	return c.routeCell(key).Write(ctx, key, value)
}

// Read routes key to its cell and runs the mode's read protocol there; see
// the cell Read for the protocol contract.
func (c *Client) Read(ctx context.Context, key string) (ReadResult, error) {
	return c.routeCell(key).Read(ctx, key)
}

// Update implements the read-modify-write pattern that extends the
// single-writer protocol toward multiple writers, following the paper's
// Section 3.1 pointer to [Lam86, IS92]: read the variable (witnessing the
// highest timestamp seen, so the local clock dominates it), apply f to the
// value read, and write the result. With one writer per key this is exactly
// read-then-write; with several concurrent writers the per-writer tiebreak
// on timestamps keeps the register's history totally ordered (last writer
// wins), giving regular-variable-style behavior rather than atomicity —
// sufficient for the lock and counter patterns the paper's applications
// use.
//
// The cell is pinned once for the whole cycle, so a concurrent view change
// cannot split the read and the write across different cells mid-RMW.
func (c *Client) Update(ctx context.Context, key string, f func(old []byte, found bool) []byte) (WriteResult, error) {
	eng := c.routeCell(key)
	r, err := eng.Read(ctx, key)
	if err != nil {
		return WriteResult{}, fmt.Errorf("register: update read: %w", err)
	}
	next := f(r.Value, r.Found)
	return eng.Write(ctx, key, next)
}

// Stats returns the client's straggler-tolerance counters. Single-cell
// clients return their cell's snapshot unchanged; multi-cell clients sum
// the event counters across cells, with the adaptive-hedge estimator
// fields (SRTT, RTTVar, HedgeDelay) taken from cell 0 as a representative
// — use CellStats for the per-cell estimators.
func (c *Client) Stats() AccessStats {
	if len(c.cells) == 1 {
		return c.cells[0].Stats()
	}
	agg := c.cells[0].Stats()
	for _, eng := range c.cells[1:] {
		s := eng.Stats()
		agg.SparesPromoted += s.SparesPromoted
		agg.EarlyCompletions += s.EarlyCompletions
		agg.LateReplies += s.LateReplies
		agg.LateRepairs += s.LateRepairs
		agg.ServerDownFastFails += s.ServerDownFastFails
		agg.LatencySamples += s.LatencySamples
	}
	return agg
}

// CellStats returns cell i's own counter snapshot.
func (c *Client) CellStats(i int) AccessStats { return c.cells[i].Stats() }

// WaitDrained blocks until every cell's background drains have finished.
func (c *Client) WaitDrained() {
	for _, eng := range c.cells {
		eng.WaitDrained()
	}
}

// ServerLatencies merges the per-cell latency estimates into global server
// ids (cell i's local server s reported as i*n + s). Nil unless
// AdaptiveHedge is enabled.
func (c *Client) ServerLatencies() map[quorum.ServerID]time.Duration {
	var out map[quorum.ServerID]time.Duration
	for i, eng := range c.cells {
		m := eng.ServerLatencies()
		if m == nil {
			continue
		}
		if out == nil {
			out = make(map[quorum.ServerID]time.Duration, len(m)*len(c.cells))
		}
		base := quorum.ServerID(i * c.n)
		for id, d := range m {
			out[base+id] = d
		}
	}
	return out
}

// View returns the ring view the client currently routes by. The zero View
// (Version 0, no members) is returned by single-cell clients, which have
// no ring.
func (c *Client) View() ring.View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v := c.view
	v.Members = append([]int(nil), v.Members...)
	return v
}

// ApplyView swaps the routing ring to v if it is strictly newer than the
// view in effect. Members must index into the construction-time cell set:
// a view may shrink the serving set (cell crash/Leave) or restore it
// (Join), but cannot reference cells the client has no engines for. New
// keys route to the new view immediately; operations already routed finish
// on the cell they started on.
func (c *Client) ApplyView(v ring.View) error {
	if len(c.cells) == 1 {
		return errors.New("register: single-cell client has no ring view")
	}
	for _, m := range v.Members {
		if m < 0 || m >= len(c.cells) {
			return fmt.Errorf("register: view member %d outside configured cells [0,%d)", m, len(c.cells))
		}
	}
	r, err := v.Ring()
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v.Version <= c.view.Version {
		return nil // stale or duplicate advertisement; keep routing as is
	}
	c.ring = r
	c.view = v
	return nil
}

// AdvertiseView publishes v under ViewKey (in cell 0, where every client
// can find it regardless of view) and applies it locally. Diffusion, when
// enabled on the cluster, then spreads the entry through cell 0's replicas
// so clients that refresh against any quorum observe it.
func (c *Client) AdvertiseView(ctx context.Context, v ring.View) error {
	if len(c.cells) == 1 {
		return errors.New("register: single-cell client has no ring view")
	}
	if err := c.ApplyView(v); err != nil {
		return err
	}
	if _, err := c.cells[0].Write(ctx, ViewKey, v.Encode()); err != nil {
		return fmt.Errorf("register: advertise view: %w", err)
	}
	return nil
}

// RefreshView reads ViewKey from cell 0 and applies any newer view found
// there. It returns the view in effect after the refresh.
func (c *Client) RefreshView(ctx context.Context) (ring.View, error) {
	if len(c.cells) == 1 {
		return ring.View{}, errors.New("register: single-cell client has no ring view")
	}
	r, err := c.cells[0].Read(ctx, ViewKey)
	if err != nil {
		return c.View(), fmt.Errorf("register: refresh view: %w", err)
	}
	if r.Found && len(r.Value) > 0 {
		v, derr := ring.DecodeView(r.Value)
		if derr != nil {
			return c.View(), derr
		}
		if aerr := c.ApplyView(v); aerr != nil {
			return c.View(), aerr
		}
	}
	return c.View(), nil
}
