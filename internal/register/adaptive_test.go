package register

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/replica"
	"pqs/internal/transport"
	"pqs/internal/ts"
	"pqs/internal/vtime"
)

// Deterministic adaptive-hedge tests: everything runs under a
// vtime.SimClock, so the latency distribution, the hedge firings and the
// resulting stats are pure functions of the seed — the CI-testable form of
// the PR 1 "adaptive hedge delay" follow-up.

// newVirtualNet builds a MemNetwork of n correct replicas on clk.
func newVirtualNet(n int, seed int64, clk vtime.Clock) *transport.MemNetwork {
	net := transport.NewMemNetwork(seed)
	net.SetClock(clk)
	for i := 0; i < n; i++ {
		net.Register(quorum.ServerID(i), replica.New(quorum.ServerID(i)))
	}
	return net
}

// adaptiveRun drives ops sequential write/read pairs under a fresh
// SimClock and returns the final stats and the virtual time consumed.
func adaptiveRun(t *testing.T, opts func(net *transport.MemNetwork) Options, ops int) (AccessStats, time.Duration) {
	t.Helper()
	clk := vtime.NewSimClock()
	var stats AccessStats
	var failed error
	clk.Run(func() {
		net := newVirtualNet(10, 7, clk)
		o := opts(net)
		o.Transport = net
		o.Time = clk
		c, err := NewClient(o)
		if err != nil {
			failed = err
			return
		}
		ctx := context.Background()
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("k%d", i)
			if _, err := c.Write(ctx, key, []byte("v")); err != nil {
				failed = fmt.Errorf("write %d: %w", i, err)
				return
			}
			if _, err := c.Read(ctx, key); err != nil {
				failed = fmt.Errorf("read %d: %w", i, err)
				return
			}
		}
		c.WaitDrained()
		stats = c.Stats()
	})
	if failed != nil {
		t.Fatal(failed)
	}
	return stats, clk.Elapsed()
}

// baseOptions is the shared 10-server, quorum-3 configuration.
func baseOptions(t *testing.T) Options {
	t.Helper()
	sys, err := quorum.NewUniform(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		System: sys,
		Mode:   Benign,
		Rand:   rand.New(rand.NewSource(3)),
		Clock:  ts.NewClock(1),
	}
}

// TestAdaptiveDelayConverges: with uniform 1-2ms virtual latency and a
// wildly wrong 80ms bootstrap, the estimator must pull the hedge delay
// down to the SRTT + 4·RTTVAR neighborhood of the real distribution.
func TestAdaptiveDelayConverges(t *testing.T) {
	stats, _ := adaptiveRun(t, func(net *transport.MemNetwork) Options {
		net.SetLatency(time.Millisecond, 2*time.Millisecond)
		o := baseOptions(t)
		o.Spares = 2
		o.HedgeDelay = 80 * time.Millisecond
		o.AdaptiveHedge = true
		o.EagerRead = true
		return o
	}, 100)
	if stats.LatencySamples < 100 {
		t.Fatalf("estimator saw only %d samples", stats.LatencySamples)
	}
	if stats.HedgeDelay >= 10*time.Millisecond || stats.HedgeDelay <= time.Millisecond {
		t.Fatalf("adaptive delay %v did not converge (SRTT %v, RTTVAR %v); want ~2-4ms",
			stats.HedgeDelay, stats.SRTT, stats.RTTVar)
	}
	if stats.SRTT < time.Millisecond || stats.SRTT > 2*time.Millisecond {
		t.Fatalf("SRTT %v outside the injected 1-2ms latency range", stats.SRTT)
	}
}

// TestAdaptiveHedgeRoutesAroundStraggler is the payoff measurement, made
// deterministic by virtual time: with one 40ms straggler in a 1-2ms
// cluster, adaptive hedging must cut the total virtual time of the
// workload by at least 2x against the unhedged client, because hedged
// operations complete at (converged delay + fast latency) instead of
// waiting 40ms whenever the straggler is sampled.
func TestAdaptiveHedgeRoutesAroundStraggler(t *testing.T) {
	const straggler = 40 * time.Millisecond
	configure := func(net *transport.MemNetwork) {
		net.SetLatency(time.Millisecond, 2*time.Millisecond)
		net.SetServerLatency(0, straggler, straggler)
	}
	baseline, baseElapsed := adaptiveRun(t, func(net *transport.MemNetwork) Options {
		configure(net)
		return baseOptions(t)
	}, 150)
	hedged, hedgedElapsed := adaptiveRun(t, func(net *transport.MemNetwork) Options {
		configure(net)
		o := baseOptions(t)
		o.Spares = 2
		o.HedgeDelay = 5 * time.Millisecond
		o.AdaptiveHedge = true
		o.EagerRead = true
		return o
	}, 150)
	if baseline.SparesPromoted != 0 {
		t.Fatalf("unhedged baseline promoted %d spares", baseline.SparesPromoted)
	}
	if hedged.SparesPromoted == 0 {
		t.Fatal("adaptive client never hedged despite the straggler")
	}
	if hedgedElapsed*2 > baseElapsed {
		t.Fatalf("adaptive hedging saved too little: %v hedged vs %v baseline (want >=2x)",
			hedgedElapsed, baseElapsed)
	}
	t.Logf("virtual workload time: baseline %v, adaptive %v (%.1fx), final delay %v",
		baseElapsed, hedgedElapsed, float64(baseElapsed)/float64(hedgedElapsed), hedged.HedgeDelay)
}

// TestAdaptiveRunDeterministic: the configuration PR 3 had to exclude from
// the determinism contract — hedge timers live — now replays exactly:
// same seed, same stats, same virtual duration.
func TestAdaptiveRunDeterministic(t *testing.T) {
	run := func() (AccessStats, time.Duration) {
		return adaptiveRun(t, func(net *transport.MemNetwork) Options {
			net.SetLatency(time.Millisecond, 2*time.Millisecond)
			net.SetServerLatency(0, 40*time.Millisecond, 40*time.Millisecond)
			o := baseOptions(t)
			o.Spares = 2
			o.HedgeDelay = 5 * time.Millisecond
			o.AdaptiveHedge = true
			o.EagerRead = true
			return o
		}, 80)
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 {
		t.Fatalf("same seed, divergent stats:\n  a: %+v\n  b: %+v", s1, s2)
	}
	if e1 != e2 {
		t.Fatalf("same seed, divergent virtual durations: %v vs %v", e1, e2)
	}
	if s1.SparesPromoted == 0 {
		t.Fatal("determinism case never hedged; the test is vacuous")
	}
}

// TestAdaptiveDelayIdentityBlind pins the ε-preservation mechanism: the
// hedge delay is a function of the pooled latency multiset only —
// reattributing the same latencies to different servers cannot change it.
func TestAdaptiveDelayIdentityBlind(t *testing.T) {
	latencies := []time.Duration{
		900 * time.Microsecond, 1200 * time.Microsecond, 2 * time.Millisecond,
		800 * time.Microsecond, 5 * time.Millisecond, 1100 * time.Microsecond,
		950 * time.Microsecond, 3 * time.Millisecond, 1500 * time.Microsecond,
		1 * time.Millisecond,
	}
	var a, b latencyEstimator
	for i, d := range latencies {
		a.observe(quorum.ServerID(i%3), d)     // spread over servers 0-2
		b.observe(quorum.ServerID(9-(i%4)), d) // entirely different ids
	}
	if da, db := a.delay(4, time.Second), b.delay(4, time.Second); da != db {
		t.Fatalf("delay depends on server attribution: %v vs %v", da, db)
	}
}

// TestServerLatenciesObservability: the per-server EWMAs single out the
// straggler without influencing the delay (previous test).
func TestServerLatenciesObservability(t *testing.T) {
	clk := vtime.NewSimClock()
	var per map[quorum.ServerID]time.Duration
	clk.Run(func() {
		net := newVirtualNet(10, 7, clk)
		net.SetLatency(time.Millisecond, 2*time.Millisecond)
		net.SetServerLatency(0, 30*time.Millisecond, 30*time.Millisecond)
		o := baseOptions(t)
		o.Transport = net
		o.Time = clk
		o.Spares = 1
		o.HedgeDelay = 50 * time.Millisecond // effectively no hedging: observe everyone
		o.AdaptiveHedge = true
		c, err := NewClient(o)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := context.Background()
		for i := 0; i < 80; i++ {
			key := fmt.Sprintf("k%d", i)
			if _, err := c.Write(ctx, key, []byte("v")); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
		c.WaitDrained()
		per = c.ServerLatencies()
	})
	if t.Failed() {
		return
	}
	slow, ok := per[0]
	if !ok {
		t.Fatalf("straggler never observed: %v", per)
	}
	if slow < 20*time.Millisecond {
		t.Fatalf("straggler EWMA %v, want ~30ms", slow)
	}
	for id, d := range per {
		if id == 0 {
			continue
		}
		if d > 5*time.Millisecond {
			t.Fatalf("server %d EWMA %v, want ~1-2ms", id, d)
		}
	}
}

// TestAdaptiveHedgeValidation: the option combination rules.
func TestAdaptiveHedgeValidation(t *testing.T) {
	base := func() Options {
		o := baseOptions(t)
		o.Transport = transport.NewMemNetwork(1)
		return o
	}
	o := base()
	o.AdaptiveHedge = true
	if _, err := NewClient(o); err == nil {
		t.Fatal("AdaptiveHedge without Spares accepted")
	}
	o = base()
	o.AdaptiveHedge = true
	o.Spares = 1
	if _, err := NewClient(o); err == nil {
		t.Fatal("AdaptiveHedge without a HedgeDelay bootstrap accepted")
	}
	o = base()
	o.HedgeDeviations = -1
	if _, err := NewClient(o); err == nil {
		t.Fatal("negative HedgeDeviations accepted")
	}
	o = base()
	o.AdaptiveHedge = true
	o.Spares = 1
	o.HedgeDelay = time.Millisecond
	if _, err := NewClient(o); err != nil {
		t.Fatalf("valid adaptive config rejected: %v", err)
	}
}
