package register

import (
	"context"
	"math/rand"
	"testing"

	"pqs/internal/quorum"
	"pqs/internal/replica"
	"pqs/internal/transport"
	"pqs/internal/ts"
)

// TestSteadyStateSamplingZeroAlloc is the acceptance gate for the O(k)
// sampling fast path: once the client's buffer freelist is warm, picking a
// quorum allocates nothing. This is the sampling component of a steady-state
// Read/Write (each operation recycles its buffer on completion).
func TestSteadyStateSamplingZeroAlloc(t *testing.T) {
	u, err := quorum.NewUniform(100, 23)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(Options{
		System:    u,
		Mode:      Benign,
		Transport: transport.NewMemNetwork(1),
		Rand:      rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := c.cells[0]
	// Warm the freelist with one pick, as the first operation would.
	q, spares := eng.pickWithSpares()
	if len(q) != 23 || spares != nil {
		t.Fatalf("pick: %d members, %d spares", len(q), len(spares))
	}
	eng.recyclePick(q)
	allocs := testing.AllocsPerRun(500, func() {
		q, _ := eng.pickWithSpares()
		eng.recyclePick(q)
	})
	if allocs != 0 {
		t.Errorf("steady-state quorum sampling: %v allocs/op, want 0", allocs)
	}
}

// TestRecycledQuorumBufferStaysCorrect drives sequential reads through a
// live MemNetwork cluster and checks that buffer reuse never corrupts the
// access set an operation is using: every result's Quorum is sorted,
// distinct and of quorum size while the result is current.
func TestRecycledQuorumBufferStaysCorrect(t *testing.T) {
	const n, q = 25, 13 // majority size: reads always intersect the write
	net := transport.NewMemNetwork(1)
	for i := 0; i < n; i++ {
		net.Register(quorum.ServerID(i), replica.New(quorum.ServerID(i)))
	}
	u, err := quorum.NewUniform(n, q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(Options{
		System: u, Mode: Benign, Transport: net,
		Rand:  rand.New(rand.NewSource(2)),
		Clock: ts.NewClock(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		rr, err := c.Read(ctx, "k")
		if err != nil {
			t.Fatal(err)
		}
		if len(rr.Quorum) != q {
			t.Fatalf("read %d: quorum size %d, want %d", i, len(rr.Quorum), q)
		}
		for j := 1; j < len(rr.Quorum); j++ {
			if rr.Quorum[j] <= rr.Quorum[j-1] {
				t.Fatalf("read %d: quorum not sorted/distinct: %v", i, rr.Quorum)
			}
		}
		if !rr.Found || string(rr.Value) != "v" {
			t.Fatalf("read %d: %+v", i, rr)
		}
	}
}
