package register

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/ts"
)

// uniformSystem builds the R(n, q) probabilistic system used by the
// straggler tests (Uniform implements quorum.SpareSampler).
func uniformSystem(t *testing.T, n, q int) *quorum.Uniform {
	t.Helper()
	u, err := quorum.NewUniform(n, q)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func hedgedClient(t *testing.T, c *cluster, sys quorum.System, opts Options) *Client {
	t.Helper()
	opts.System = sys
	opts.Transport = c.net
	if opts.Rand == nil {
		opts.Rand = rand.New(rand.NewSource(99))
	}
	if opts.Clock == nil {
		opts.Clock = ts.NewClock(1)
	}
	if opts.Mode == 0 {
		opts.Mode = Benign
	}
	cl, err := NewClient(opts)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// settleGoroutines waits for the goroutine count to return to the given
// baseline, failing the test if it does not within the deadline — the
// leak-check half of the background-drain contract.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEagerReadSkipsStraggler is the tail-latency regression test: under
// global latency skew, with one crashed member and two heavy stragglers, an
// early-threshold read with hedged spares must complete without waiting for
// the stragglers, and the background drain must not leak goroutines.
func TestEagerReadSkipsStraggler(t *testing.T) {
	const (
		n, q          = 9, 5
		stragglerWait = 300 * time.Millisecond
	)
	c := newCluster(t, n)
	sys := uniformSystem(t, n, q)
	cl := hedgedClient(t, c, sys, Options{
		Spares:     4,
		HedgeDelay: 2 * time.Millisecond,
		EagerRead:  true,
	})
	ctx := context.Background()
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, k := range keys {
		if _, err := cl.Write(ctx, k, []byte("val-"+k)); err != nil {
			t.Fatal(err)
		}
	}

	baseline := runtime.NumGoroutine()
	c.net.SetLatency(50*time.Microsecond, 2*time.Millisecond) // skew
	c.net.Crash(0)
	c.net.SetServerLatency(1, stragglerWait, stragglerWait)
	c.net.SetServerLatency(2, stragglerWait, stragglerWait)

	sawStraggler := false
	for _, k := range keys {
		start := time.Now()
		rr, err := cl.Read(ctx, k)
		took := time.Since(start)
		if err != nil {
			t.Fatalf("read %q: %v", k, err)
		}
		if !rr.Found || string(rr.Value) != "val-"+k {
			t.Fatalf("read %q returned %+v", k, rr)
		}
		if took >= stragglerWait/2 {
			t.Fatalf("read %q took %v: waited for a straggler", k, took)
		}
		if quorum.Contains(rr.Quorum, 1) || quorum.Contains(rr.Quorum, 2) {
			sawStraggler = true
			if !rr.Early {
				t.Errorf("read %q sampled a straggler but did not return early: %+v", k, rr)
			}
		}
	}
	if !sawStraggler {
		t.Fatal("no sampled quorum contained a straggler; test exercised nothing")
	}
	st := cl.Stats()
	if st.EarlyCompletions == 0 {
		t.Error("no early completions recorded")
	}
	if st.SparesPromoted == 0 {
		t.Error("no spares promoted despite crash + stragglers")
	}

	// The stragglers' replies are still in flight; the drain must consume
	// them and every goroutine must retire once they resolve.
	cl.WaitDrained()
	settleGoroutines(t, baseline)
	if cl.Stats().LateReplies == 0 {
		t.Error("drain recorded no late replies")
	}
}

// TestEagerReadMasking checks the masking completion rule end to end: with
// every replica correct and one straggler, the read returns as soon as no
// rival candidate can reach the K threshold, skipping the straggler.
func TestEagerReadMasking(t *testing.T) {
	const n = 7
	c := newCluster(t, n)
	sys := uniformSystem(t, n, n) // access set = whole universe
	cl := hedgedClient(t, c, sys, Options{Mode: Masking, K: 2, EagerRead: true})
	ctx := context.Background()
	if _, err := cl.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	const stragglerWait = 250 * time.Millisecond
	c.net.SetServerLatency(6, stragglerWait, stragglerWait)
	start := time.Now()
	rr, err := cl.Read(ctx, "x")
	took := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Found || string(rr.Value) != "v" {
		t.Fatalf("read returned %+v", rr)
	}
	if !rr.Early {
		t.Error("masking read did not return early")
	}
	if took >= stragglerWait/2 {
		t.Fatalf("masking read took %v: waited for the straggler", took)
	}
	if rr.Vouchers < 2 {
		t.Fatalf("accepted with %d vouchers, want >= K=2", rr.Vouchers)
	}
	cl.WaitDrained()
}

// TestEagerWriteThreshold checks the W knob: a write completes at W acks
// without waiting for a straggler, and the drain still delivers the write
// to the straggler afterwards.
func TestEagerWriteThreshold(t *testing.T) {
	const n = 5
	c := newCluster(t, n)
	sys := uniformSystem(t, n, n)
	cl := hedgedClient(t, c, sys, Options{W: 3})
	ctx := context.Background()
	const stragglerWait = 250 * time.Millisecond
	c.net.SetServerLatency(4, stragglerWait, stragglerWait)
	start := time.Now()
	wr, err := cl.Write(ctx, "x", []byte("v"))
	took := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(wr.Acked) < 3 {
		t.Fatalf("acked %d, want >= 3", len(wr.Acked))
	}
	if !wr.Early {
		t.Error("write did not return early")
	}
	if took >= stragglerWait/2 {
		t.Fatalf("write took %v: waited for the straggler", took)
	}
	cl.WaitDrained()
	// The straggler's write was still delivered by the in-flight call.
	if e, ok := c.reps[4].Store().Get("x"); !ok || string(e.Value) != "v" {
		t.Errorf("straggler store after drain: %+v ok=%v", e, ok)
	}
}

// countingSystem wraps a SpareSampler and counts strategy invocations, so
// tests can distinguish spare promotion (same sample) from a full re-sample
// (a new attempt).
type countingSystem struct {
	quorum.SpareSampler
	samples int
}

func (cs *countingSystem) Pick(r *rand.Rand) []quorum.ServerID {
	cs.samples++
	return cs.SpareSampler.Pick(r)
}

func (cs *countingSystem) PickWithSpares(r *rand.Rand, spares int) ([]quorum.ServerID, []quorum.ServerID) {
	cs.samples++
	return cs.SpareSampler.PickWithSpares(r, spares)
}

// TestHedgePromotesSparesBeforeResample: with crashed members in every
// possible quorum, a single attempt must succeed by promoting spares — no
// second quorum sample.
func TestHedgePromotesSparesBeforeResample(t *testing.T) {
	const n, q = 9, 5
	c := newCluster(t, n)
	cs := &countingSystem{SpareSampler: uniformSystem(t, n, q)}
	cl := hedgedClient(t, c, cs, Options{Spares: 4})
	rc, err := NewRetryingClient(cl, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cl.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	cs.samples = 0
	// Crash 5 servers: every 5-subset contains at least one crashed member.
	for id := 0; id < 5; id++ {
		c.net.Crash(quorum.ServerID(id))
	}
	rr, err := rc.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if cs.samples != 1 {
		t.Errorf("%d quorum samples, want 1 (spares should absorb the failures)", cs.samples)
	}
	if rr.Promoted == 0 {
		t.Error("no spares promoted despite guaranteed crashed members")
	}
	if rr.Replies == 0 {
		t.Error("no replies collected")
	}
}

// TestRetryFallsThroughOnDeadQuorum: when the whole universe is dead, spares
// cannot help; every attempt must fall through to ErrNoReplies and the
// retrying client must consume all its attempts.
func TestRetryFallsThroughOnDeadQuorum(t *testing.T) {
	const n, q = 6, 3
	c := newCluster(t, n)
	cs := &countingSystem{SpareSampler: uniformSystem(t, n, q)}
	cl := hedgedClient(t, c, cs, Options{Spares: 2})
	rc, err := NewRetryingClient(cl, 3)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n; id++ {
		c.net.Crash(quorum.ServerID(id))
	}
	_, err = rc.Read(context.Background(), "x")
	if !errors.Is(err, ErrNoReplies) {
		t.Fatalf("err = %v, want ErrNoReplies", err)
	}
	if cs.samples != 3 {
		t.Errorf("%d quorum samples, want 3 (one per attempt)", cs.samples)
	}
}

// TestRetryBailsOutBeforeAttemptOnCancelledContext: a cancelled context must
// be detected before a quorum is sampled and dispatched, not after.
func TestRetryBailsOutBeforeAttemptOnCancelledContext(t *testing.T) {
	const n, q = 6, 3
	c := newCluster(t, n)
	cs := &countingSystem{SpareSampler: uniformSystem(t, n, q)}
	cl := hedgedClient(t, c, cs, Options{})
	rc, err := NewRetryingClient(cl, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rc.Read(ctx, "x"); !errors.Is(err, context.Canceled) {
		t.Errorf("Read err = %v, want context.Canceled", err)
	}
	if _, err := rc.Write(ctx, "x", []byte("v")); !errors.Is(err, context.Canceled) {
		t.Errorf("Write err = %v, want context.Canceled", err)
	}
	if cs.samples != 0 {
		t.Errorf("%d quorum samples dispatched on a dead context, want 0", cs.samples)
	}
}

// TestLateReadRepair: a straggler holding a stale value is repaired from the
// background drain after an eager read returned without it.
func TestLateReadRepair(t *testing.T) {
	const n, q = 9, 8
	const straggler = quorum.ServerID(8)
	c := newCluster(t, n)
	sys := uniformSystem(t, n, q)
	cl := hedgedClient(t, c, sys, Options{
		Spares:     1,
		HedgeDelay: 2 * time.Millisecond,
		EagerRead:  true,
		ReadRepair: true,
	})
	ctx := context.Background()
	if _, err := cl.Write(ctx, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// The straggler misses the second write...
	c.net.Crash(straggler)
	if _, err := cl.Write(ctx, "x", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// ...then recovers, slow.
	c.net.Recover(straggler)
	const stragglerWait = 200 * time.Millisecond
	c.net.SetServerLatency(straggler, stragglerWait, stragglerWait)

	exercised := false
	for i := 0; i < 30 && !exercised; i++ {
		start := time.Now()
		rr, err := cl.Read(ctx, "x")
		took := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if !rr.Found || string(rr.Value) != "v2" {
			t.Fatalf("read returned %+v", rr)
		}
		if quorum.Contains(rr.Quorum, straggler) && rr.Early {
			exercised = true
			if took >= stragglerWait/2 {
				t.Fatalf("read took %v: waited for the straggler", took)
			}
		}
		cl.WaitDrained()
	}
	if !exercised {
		t.Fatal("no read sampled the straggler and returned early")
	}
	if cl.Stats().LateRepairs == 0 {
		t.Error("no late repairs recorded")
	}
	if e, ok := c.reps[straggler].Store().Get("x"); !ok || string(e.Value) != "v2" {
		t.Errorf("straggler store after late repair: %+v ok=%v", e, ok)
	}
}

// TestMaskDecided unit-tests the masking decidability rule.
func TestMaskDecided(t *testing.T) {
	s := func(c uint64) ts.Stamp { return ts.Stamp{Counter: c, Writer: 1} }
	cases := []struct {
		name   string
		votes  map[voteKey]int
		k, out int
		want   bool
	}{
		{"no candidates", map[voteKey]int{}, 2, 1, false},
		{"unseen rival possible", map[voteKey]int{{s(1), "a"}: 5}, 2, 2, false},
		{"threshold met, no rivals", map[voteKey]int{{s(1), "a"}: 3}, 2, 1, true},
		{"under threshold", map[voteKey]int{{s(1), "a"}: 1}, 2, 1, false},
		{"higher-stamp rival can reach k", map[voteKey]int{{s(1), "a"}: 3, {s(2), "b"}: 1}, 2, 1, false},
		{"higher-stamp rival cannot reach k", map[voteKey]int{{s(1), "a"}: 3, {s(2), "b"}: 0}, 2, 1, true},
		{"lower-stamp rival irrelevant", map[voteKey]int{{s(5), "a"}: 3, {s(1), "b"}: 1}, 2, 1, true},
		{"zero k never decides", map[voteKey]int{{s(1), "a"}: 3}, 0, 0, false},
	}
	for _, tc := range cases {
		if got := maskDecided(tc.votes, tc.k, tc.out); got != tc.want {
			t.Errorf("%s: maskDecided = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestSpareRequiresSampler: asking for spares from a system without spare
// support must fail loudly at construction, not silently degrade.
func TestSpareRequiresSampler(t *testing.T) {
	c := newCluster(t, 3)
	single, err := quorum.NewSingleton(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewClient(Options{
		System:    single,
		Mode:      Benign,
		Transport: c.net,
		Rand:      rand.New(rand.NewSource(1)),
		Spares:    2,
	})
	if err == nil {
		t.Fatal("Spares accepted for a system without SpareSampler")
	}
}
