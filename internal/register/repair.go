package register

import (
	"context"
	"sync"

	"pqs/internal/quorum"
	"pqs/internal/ts"
	"pqs/internal/wire"
)

// repair pushes the accepted value-timestamp pair (with its original
// signature, so self-verifying data stays verifiable) back to the read
// quorum members that reported something older or nothing. Read repair is
// the classical complement to lazy diffusion: it heals exactly the servers
// a read just observed to be stale, shrinking the window in which a second
// read can miss the value.
//
// Repair is valid in benign mode (no adversary) and dissemination mode (the
// repaired entry carries a verifiable signature, so even a fooled-free read
// can only propagate genuine data). It must NOT be used in masking mode:
// there a read that was fooled by k colluders would write the fabricated
// value into correct servers, converting a transient inconsistency into a
// persistent one. NewClient enforces this.
func (c *Client) repair(ctx context.Context, key string, res *ReadResult, byID map[quorum.ServerID]wire.ReadReply) {
	if !res.Found {
		return
	}
	var sig []byte
	for _, r := range byID {
		if r.Found && r.Stamp == res.Stamp && string(r.Value) == string(res.Value) {
			sig = r.Sig
			break
		}
	}
	req := wire.WriteRequest{Key: key, Value: res.Value, Stamp: res.Stamp, Sig: sig}
	var wg sync.WaitGroup
	for _, id := range res.Quorum {
		r, answered := byID[id]
		if answered && r.Found && !r.Stamp.Less(res.Stamp) {
			continue // already current
		}
		wg.Add(1)
		go func(id quorum.ServerID) {
			defer wg.Done()
			// Best effort: a failed repair changes nothing.
			_, _ = c.opts.Transport.Call(ctx, id, req)
		}(id)
	}
	wg.Wait()
	res.Repaired = countRepairTargets(res.Quorum, byID, res.Stamp)
}

func countRepairTargets(q []quorum.ServerID, byID map[quorum.ServerID]wire.ReadReply, stamp ts.Stamp) int {
	n := 0
	for _, id := range q {
		r, answered := byID[id]
		if answered && r.Found && !r.Stamp.Less(stamp) {
			continue
		}
		n++
	}
	return n
}
