package register

import (
	"context"

	"pqs/internal/quorum"
	"pqs/internal/vtime"
	"pqs/internal/wire"
)

// repair pushes the accepted value-timestamp pair (with its original
// signature, so self-verifying data stays verifiable) back to the read
// quorum members that reported something older or nothing. Read repair is
// the classical complement to lazy diffusion: it heals exactly the servers
// a read just observed to be stale, shrinking the window in which a second
// read can miss the value.
//
// Repair is valid in benign mode (no adversary) and dissemination mode (the
// repaired entry carries a verifiable signature, so even a fooled-free read
// can only propagate genuine data). It must NOT be used in masking mode:
// there a read that was fooled by k colluders would write the fabricated
// value into correct servers, converting a transient inconsistency into a
// persistent one. NewClient enforces this.
func (c *cell) repair(ctx context.Context, key string, res *ReadResult, byID map[quorum.ServerID]wire.ReadReply, errs map[quorum.ServerID]error, inFlight bool) {
	if !res.Found {
		return
	}
	var sig []byte
	for _, r := range byID {
		if r.Found && r.Stamp == res.Stamp && string(r.Value) == string(res.Value) {
			sig = r.Sig
			break
		}
	}
	targets := repairTargets(res, byID, errs, inFlight)
	req := wire.WriteRequest{Key: key, Value: res.Value, Stamp: res.Stamp, Sig: sig}
	wg := vtime.NewWaitGroup(c.clock)
	for _, id := range targets {
		id := id
		wg.Add(1)
		c.goWorker(func() {
			defer wg.Done()
			// Best effort: a failed repair changes nothing.
			_, _ = c.opts.Transport.Call(ctx, id, req)
		})
	}
	wg.Wait()
	res.Repaired = len(targets)
}

// repairTargets lists the servers the synchronous repair pass pushes to:
// access-set members that answered stale (or nothing, if their call already
// failed or everything has resolved), plus promoted spares observed stale.
// Members whose replies are still in flight (inFlight covers both eager
// returns and context-cancelled gathers) are left to the background drain's
// lateReadHandler, so repair never re-introduces the straggler wait the
// eager read just avoided and never targets members whose calls merely
// have not resolved yet.
func repairTargets(res *ReadResult, byID map[quorum.ServerID]wire.ReadReply, errs map[quorum.ServerID]error, inFlight bool) []quorum.ServerID {
	var targets []quorum.ServerID
	for _, id := range res.Quorum {
		r, answered := byID[id]
		switch {
		case answered:
			if r.Found && !r.Stamp.Less(res.Stamp) {
				continue // already current
			}
			targets = append(targets, id)
		default:
			if _, failed := errs[id]; failed || !inFlight {
				targets = append(targets, id)
			}
		}
	}
	for id, r := range byID {
		if quorum.Contains(res.Quorum, id) {
			continue
		}
		if r.Found && !r.Stamp.Less(res.Stamp) {
			continue
		}
		targets = append(targets, id)
	}
	return targets
}

// lateReadHandler returns the background-drain hook for a completed read:
// it inspects replies that arrive after an eager read returned and, when
// read repair is enabled and the read accepted a value, pushes that value
// (with its original signature) to late repliers observed stale. The late
// read itself still runs on the operation's context (cancelling it aborts
// the straggler and there is nothing to repair); only the repair write is
// detached, so a reply that does arrive is healed even if the caller
// cancels between the reply and the repair. The drain goroutine remains
// bounded by the late calls already in flight.
func (c *cell) lateReadHandler(ctx context.Context, key string, res *ReadResult, byID map[quorum.ServerID]wire.ReadReply) func(callReply) {
	if !c.opts.ReadRepair || !res.Found {
		return nil
	}
	value, stamp := res.Value, res.Stamp
	var sig []byte
	for _, r := range byID {
		if r.Found && r.Stamp == stamp && string(r.Value) == string(value) {
			sig = r.Sig
			break
		}
	}
	req := wire.WriteRequest{Key: key, Value: value, Stamp: stamp, Sig: sig}
	rctx := context.WithoutCancel(ctx)
	return func(r callReply) {
		if r.err != nil {
			return
		}
		msg, ok := r.resp.(wire.ReadReply)
		if !ok {
			return
		}
		if msg.Found && !msg.Stamp.Less(stamp) {
			return // already current
		}
		if _, err := c.opts.Transport.Call(rctx, r.id, req); err == nil {
			c.statLateRepairs.Add(1)
		}
	}
}
