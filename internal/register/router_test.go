package register

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pqs/internal/quorum"
	"pqs/internal/replica"
	"pqs/internal/ring"
	"pqs/internal/transport"
	"pqs/internal/ts"
)

// newCellFixture builds a MemNetwork with cells*n replicas and a router
// client over them (majority quorums, so reads always intersect writes).
func newCellFixture(t *testing.T, cells, n, q int, seed int64) (*Client, *transport.MemNetwork) {
	t.Helper()
	net := transport.NewMemNetwork(seed)
	for i := 0; i < cells*n; i++ {
		net.Register(quorum.ServerID(i), replica.New(quorum.ServerID(i)))
	}
	u, err := quorum.NewUniform(n, q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(Options{
		System: u, Mode: Benign, Transport: net,
		Rand:  rand.New(rand.NewSource(seed)),
		Clock: ts.NewClock(1),
		Cells: cells,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, net
}

func TestMultiCellRoutesToOwningCellOnly(t *testing.T) {
	const cells, n, q = 4, 10, 6
	c, _ := newCellFixture(t, cells, n, q, 1)
	if c.Cells() != cells {
		t.Fatalf("Cells() = %d, want %d", c.Cells(), cells)
	}
	ctx := context.Background()
	used := make([]bool, cells)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("key-%d", i)
		cell := c.CellFor(key)
		if cell < 0 || cell >= cells {
			t.Fatalf("CellFor(%q) = %d outside [0,%d)", key, cell, cells)
		}
		used[cell] = true
		wr, err := c.Write(ctx, key, []byte(key))
		if err != nil {
			t.Fatal(err)
		}
		// Every quorum member's GLOBAL id must be inside the owning cell's
		// server slice [cell*n, (cell+1)*n); the engine reports local ids.
		for _, id := range wr.Quorum {
			if id < 0 || int(id) >= n {
				t.Fatalf("write %q: local id %d outside cell universe [0,%d)", key, id, n)
			}
		}
		rr, err := c.Read(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if !rr.Found || string(rr.Value) != key {
			t.Fatalf("read %q: %+v", key, rr)
		}
	}
	for i, u := range used {
		if !u {
			t.Errorf("cell %d never used across 40 keys (ring imbalance)", i)
		}
	}
	// Same seed, same member set: routing is a pure function.
	c2, _ := newCellFixture(t, cells, n, q, 1)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("key-%d", i)
		if c.CellFor(key) != c2.CellFor(key) {
			t.Fatalf("routing not deterministic for %q", key)
		}
	}
}

func TestMultiCellIsolatesCellFailure(t *testing.T) {
	const cells, n, q = 4, 10, 6
	c, net := newCellFixture(t, cells, n, q, 2)
	ctx := context.Background()
	// Find a key in cell 0 and one elsewhere.
	var in0, out0 string
	for i := 0; in0 == "" || out0 == ""; i++ {
		key := fmt.Sprintf("k-%d", i)
		if c.CellFor(key) == 0 {
			if in0 == "" {
				in0 = key
			}
		} else if out0 == "" {
			out0 = key
		}
	}
	if _, err := c.Write(ctx, out0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Crash ALL of cell 0's servers: keys routed there fail, others don't.
	for i := 0; i < n; i++ {
		net.Crash(quorum.ServerID(i))
	}
	if _, err := c.Write(ctx, in0, []byte("x")); err == nil {
		t.Fatalf("write to fully-crashed cell 0 succeeded")
	}
	rr, err := c.Read(ctx, out0)
	if err != nil || !rr.Found || string(rr.Value) != "ok" {
		t.Fatalf("healthy cell affected by cell 0 crash: %v %+v", err, rr)
	}
}

func TestViewApplyReroutesDepartedCell(t *testing.T) {
	const cells, n, q = 4, 10, 6
	c, _ := newCellFixture(t, cells, n, q, 3)
	before := make(map[string]int)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		before[key] = c.CellFor(key)
	}
	// Cell 2 leaves. Only its keys move; no key routes to 2 afterwards.
	if err := c.ApplyView(ring.View{Version: 2, Members: []int{0, 1, 3}}); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for key, was := range before {
		now := c.CellFor(key)
		if now == 2 {
			t.Fatalf("key %q still routes to departed cell 2", key)
		}
		if was != 2 && now != was {
			t.Fatalf("key %q moved from surviving cell %d to %d", key, was, now)
		}
		if was == 2 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by cell 2")
	}
	// A stale advertisement must not roll the view back.
	if err := c.ApplyView(ring.View{Version: 1, Members: []int{0, 1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if got := c.View().Version; got != 2 {
		t.Fatalf("stale view applied: version %d, want 2", got)
	}
	// A view naming a cell we have no engines for is rejected.
	if err := c.ApplyView(ring.View{Version: 3, Members: []int{0, 4}}); err == nil {
		t.Fatal("view with out-of-range member accepted")
	}
}

func TestAdvertiseAndRefreshViewPropagates(t *testing.T) {
	const cells, n, q = 4, 10, 6
	net := transport.NewMemNetwork(4)
	for i := 0; i < cells*n; i++ {
		net.Register(quorum.ServerID(i), replica.New(quorum.ServerID(i)))
	}
	u, err := quorum.NewUniform(n, q)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) *Client {
		c, err := NewClient(Options{
			System: u, Mode: Benign, Transport: net,
			Rand:  rand.New(rand.NewSource(seed)),
			Clock: ts.NewClock(uint32(seed)),
			Cells: cells,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(1), mk(2)
	ctx := context.Background()
	want := ring.View{Version: 7, Members: []int{0, 1, 3}}
	if err := a.AdvertiseView(ctx, want); err != nil {
		t.Fatal(err)
	}
	got, err := b.RefreshView(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || len(got.Members) != len(want.Members) {
		t.Fatalf("refreshed view %+v, want %+v", got, want)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		if b.CellFor(key) == 2 {
			t.Fatalf("key %q routes to departed cell 2 after refresh", key)
		}
		if b.CellFor(key) != a.CellFor(key) {
			t.Fatalf("clients disagree on %q after view propagation", key)
		}
	}
}

func TestSingleCellHasNoRingView(t *testing.T) {
	c, _ := newCellFixture(t, 1, 10, 6, 5)
	if err := c.ApplyView(ring.View{Version: 2, Members: []int{0}}); err == nil {
		t.Fatal("single-cell ApplyView should fail")
	}
	if _, err := c.RefreshView(context.Background()); err == nil {
		t.Fatal("single-cell RefreshView should fail")
	}
	if v := c.View(); v.Version != 0 || len(v.Members) != 0 {
		t.Fatalf("single-cell view should be zero, got %+v", v)
	}
}
