package quorum

// LiveChecker is implemented by systems that can decide, given a crash
// pattern, whether some quorum consisting entirely of live servers exists.
// The sim package uses it for Monte-Carlo availability estimates, which in
// turn validate (or, for ByzGrid, refine) the analytic FailProb values.
type LiveChecker interface {
	// LiveQuorumExists reports whether a fully-live quorum exists when
	// crashed(id) reports the crash state of each server.
	LiveQuorumExists(crashed func(ServerID) bool) bool
}

// LiveQuorumExists implements LiveChecker: any q live servers form a quorum.
func (u *Uniform) LiveQuorumExists(crashed func(ServerID) bool) bool {
	alive := 0
	for i := 0; i < u.n; i++ {
		if !crashed(ServerID(i)) {
			alive++
			if alive >= u.q {
				return true
			}
		}
	}
	return false
}

// LiveQuorumExists implements LiveChecker.
func (s *Singleton) LiveQuorumExists(crashed func(ServerID) bool) bool {
	return !crashed(s.id)
}

// LiveQuorumExists implements LiveChecker: a live quorum needs one fully
// live row and one fully live column.
func (g *Grid) LiveQuorumExists(crashed func(ServerID) bool) bool {
	return g.liveRows(crashed, 1) && g.liveCols(crashed, 1)
}

func (g *Grid) liveRows(crashed func(ServerID) bool, need int) bool {
	found := 0
	for r := 0; r < g.rows; r++ {
		all := true
		for c := 0; c < g.cols; c++ {
			if crashed(ServerID(r*g.cols + c)) {
				all = false
				break
			}
		}
		if all {
			found++
			if found >= need {
				return true
			}
		}
	}
	return false
}

func (g *Grid) liveCols(crashed func(ServerID) bool, need int) bool {
	found := 0
	for c := 0; c < g.cols; c++ {
		all := true
		for r := 0; r < g.rows; r++ {
			if crashed(ServerID(r*g.cols + c)) {
				all = false
				break
			}
		}
		if all {
			found++
			if found >= need {
				return true
			}
		}
	}
	return false
}

// LiveQuorumExists implements LiveChecker: a live quorum needs r fully live
// rows and r fully live columns.
func (g *ByzGrid) LiveQuorumExists(crashed func(ServerID) bool) bool {
	liveRows := 0
	for r := 0; r < g.side; r++ {
		all := true
		for c := 0; c < g.side; c++ {
			if crashed(ServerID(r*g.side + c)) {
				all = false
				break
			}
		}
		if all {
			liveRows++
		}
	}
	if liveRows < g.r {
		return false
	}
	liveCols := 0
	for c := 0; c < g.side; c++ {
		all := true
		for r := 0; r < g.side; r++ {
			if crashed(ServerID(r*g.side + c)) {
				all = false
				break
			}
		}
		if all {
			liveCols++
		}
	}
	return liveCols >= g.r
}

var (
	_ LiveChecker = (*Uniform)(nil)
	_ LiveChecker = (*Threshold)(nil) // via embedded Uniform
	_ LiveChecker = (*Singleton)(nil)
	_ LiveChecker = (*Grid)(nil)
	_ LiveChecker = (*ByzGrid)(nil)
)
