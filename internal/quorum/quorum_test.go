package quorum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleKBasic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(50)
		k := r.Intn(n + 1)
		s := SampleK(r, n, k)
		if len(s) != k {
			t.Fatalf("SampleK(%d,%d) returned %d elements", n, k, len(s))
		}
		for i := range s {
			if s[i] < 0 || int(s[i]) >= n {
				t.Fatalf("element %d outside universe %d", s[i], n)
			}
			if i > 0 && s[i] <= s[i-1] {
				t.Fatalf("not sorted/distinct: %v", s)
			}
		}
	}
}

func TestSampleKUniform(t *testing.T) {
	// Every element should appear with frequency ~ k/n.
	r := rand.New(rand.NewSource(2))
	n, k, trials := 20, 5, 40000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, id := range SampleK(r, n, k) {
			counts[id]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for id, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("element %d appeared %d times, want ~%.0f", id, c, want)
		}
	}
}

// TestSampleKIntoZeroAlloc is the data-plane fast-path guarantee: sampling
// into a buffer with sufficient capacity allocates nothing, so steady-state
// quorum picks are allocation-free.
func TestSampleKIntoZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	buf := make([]ServerID, 0, 23)
	allocs := testing.AllocsPerRun(200, func() {
		buf = SampleKInto(r, 100, 23, buf)
	})
	if allocs != 0 {
		t.Errorf("SampleKInto with capacity: %v allocs/op, want 0", allocs)
	}
	u, err := NewUniform(100, 23)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(200, func() {
		buf = u.PickInto(r, buf)
	})
	if allocs != 0 {
		t.Errorf("Uniform.PickInto with capacity: %v allocs/op, want 0", allocs)
	}
}

// TestSampleKIntoMatchesContract checks PickInto against Pick's contract:
// sorted, distinct, in-universe, and uniform per-element frequency (the
// distribution equality with the old Fisher-Yates sampler).
func TestSampleKIntoMatchesContract(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n, k, trials := 20, 5, 40000
	counts := make([]int, n)
	buf := make([]ServerID, 0, k)
	for i := 0; i < trials; i++ {
		buf = SampleKInto(r, n, k, buf)
		for j, id := range buf {
			if id < 0 || int(id) >= n {
				t.Fatalf("element %d outside universe", id)
			}
			if j > 0 && buf[j] <= buf[j-1] {
				t.Fatalf("not sorted/distinct: %v", buf)
			}
			counts[id]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for id, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("element %d appeared %d times, want ~%.0f", id, c, want)
		}
	}
}

// TestSampleKUnsortedUniformOrder checks the Floyd+shuffle rewrite kept both
// properties spare promotion depends on: uniform membership and uniform draw
// order (each element equally likely in each position).
func TestSampleKUnsortedUniformOrder(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n, k, trials := 10, 4, 40000
	posCounts := make([][]int, k)
	for i := range posCounts {
		posCounts[i] = make([]int, n)
	}
	for i := 0; i < trials; i++ {
		s := SampleKUnsorted(r, n, k)
		if len(s) != k {
			t.Fatalf("len %d, want %d", len(s), k)
		}
		seen := make(map[ServerID]bool, k)
		for pos, id := range s {
			if seen[id] {
				t.Fatalf("duplicate %d in %v", id, s)
			}
			seen[id] = true
			posCounts[pos][id]++
		}
	}
	want := float64(trials) / float64(n)
	for pos := range posCounts {
		for id, c := range posCounts[pos] {
			if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
				t.Errorf("position %d: element %d appeared %d times, want ~%.0f", pos, id, c, want)
			}
		}
	}
}

func TestSampleKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SampleK(rand.New(rand.NewSource(1)), 5, 6)
}

func TestIntersectAndContains(t *testing.T) {
	a := []ServerID{1, 3, 5, 7, 9}
	b := []ServerID{2, 3, 4, 7, 10}
	got := Intersect(a, b)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("Intersect = %v, want [3 7]", got)
	}
	if Intersect(a, nil) != nil {
		t.Error("Intersect with empty should be nil")
	}
	for _, id := range a {
		if !Contains(a, id) {
			t.Errorf("Contains(%v, %d) = false", a, id)
		}
	}
	for _, id := range []ServerID{0, 2, 4, 8, 11} {
		if Contains(a, id) {
			t.Errorf("Contains(%v, %d) = true", a, id)
		}
	}
}

func TestIntersectQuick(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(40)
		a := SampleK(rr, n, rr.Intn(n+1))
		b := SampleK(rr, n, rr.Intn(n+1))
		inter := Intersect(a, b)
		// Every element of inter is in both; every common element is in inter.
		set := make(map[ServerID]bool)
		for _, id := range inter {
			set[id] = true
			if !Contains(a, id) || !Contains(b, id) {
				return false
			}
		}
		for _, id := range a {
			if Contains(b, id) && !set[id] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestUniformMeasures(t *testing.T) {
	u, err := NewUniform(100, 22)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 100 || u.QuorumSize() != 22 {
		t.Error("dimensions wrong")
	}
	if got := u.Load(); got != 0.22 {
		t.Errorf("Load = %v, want 0.22", got)
	}
	if got := u.FaultTolerance(); got != 79 {
		t.Errorf("FaultTolerance = %v, want 79 (paper Table 2)", got)
	}
	if got := u.FailProb(0); got != 0 {
		t.Errorf("FailProb(0) = %v", got)
	}
	if got := u.FailProb(1); got != 1 {
		t.Errorf("FailProb(1) = %v", got)
	}
	// F_p must be increasing in p.
	prev := 0.0
	for p := 0.0; p <= 1.0; p += 0.05 {
		f := u.FailProb(p)
		if f < prev-1e-12 {
			t.Fatalf("FailProb not monotone at p=%v", p)
		}
		prev = f
	}
}

func TestUniformNonIntersectEmpirical(t *testing.T) {
	u, err := NewUniform(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	exact := u.NonIntersectProb()
	r := rand.New(rand.NewSource(4))
	trials, misses := 200000, 0
	for i := 0; i < trials; i++ {
		if len(Intersect(u.Pick(r), u.Pick(r))) == 0 {
			misses++
		}
	}
	emp := float64(misses) / float64(trials)
	se := math.Sqrt(exact * (1 - exact) / float64(trials))
	if math.Abs(emp-exact) > 5*se+1e-4 {
		t.Errorf("empirical non-intersection %v vs exact %v", emp, exact)
	}
}

func TestNewUniformValidation(t *testing.T) {
	for _, c := range []struct{ n, q int }{{0, 1}, {-5, 1}, {10, 0}, {10, 11}, {10, -1}} {
		if _, err := NewUniform(c.n, c.q); err == nil {
			t.Errorf("NewUniform(%d,%d) should fail", c.n, c.q)
		}
	}
}

func TestMajorityPaperSizes(t *testing.T) {
	// Table 2 threshold column: quorum size and fault tolerance. The paper
	// lists fault tolerance equal to the quorum size in every row; the exact
	// value A = n-q+1 coincides with that for odd n and is one lower for
	// even n (see EXPERIMENTS.md).
	want := map[int][2]int{
		25: {13, 13}, 100: {51, 50}, 225: {113, 113},
		400: {201, 200}, 625: {313, 313}, 900: {451, 450},
	}
	for n, w := range want {
		m, err := NewMajority(n)
		if err != nil {
			t.Fatal(err)
		}
		if m.QuorumSize() != w[0] {
			t.Errorf("n=%d: quorum size %d, want %d", n, m.QuorumSize(), w[0])
		}
		if m.FaultTolerance() != w[1] {
			t.Errorf("n=%d: fault tolerance %d, want %d", n, m.FaultTolerance(), w[1])
		}
	}
}

func TestThresholdIntersectionGuarantee(t *testing.T) {
	th, err := NewThreshold(20, 11)
	if err != nil {
		t.Fatal(err)
	}
	if th.MinIntersect() != 2 {
		t.Errorf("MinIntersect = %d, want 2", th.MinIntersect())
	}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a, b := th.Pick(r), th.Pick(r)
		if len(Intersect(a, b)) < th.MinIntersect() {
			t.Fatalf("quorums intersect in %d < %d", len(Intersect(a, b)), th.MinIntersect())
		}
	}
	if _, err := NewThreshold(20, 10); err == nil {
		t.Error("2q <= n must be rejected")
	}
}

func TestDissemThresholdPaperSizes(t *testing.T) {
	// Table 3 threshold column with b = floor((sqrt(n)-1)/2). The n=225 row
	// is OCR-corrupted in the source; the formula values are used
	// (see DESIGN.md).
	cases := []struct{ n, b, size, ft int }{
		{25, 2, 14, 12},
		{100, 4, 53, 48},
		{225, 7, 117, 109},
		{400, 9, 205, 196},
		{625, 12, 319, 307},
		{900, 14, 458, 443},
	}
	for _, c := range cases {
		th, err := NewDissemThreshold(c.n, c.b)
		if err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		if th.QuorumSize() != c.size {
			t.Errorf("n=%d: size %d, want %d", c.n, th.QuorumSize(), c.size)
		}
		if th.FaultTolerance() != c.ft {
			t.Errorf("n=%d: fault tolerance %d, want %d", c.n, th.FaultTolerance(), c.ft)
		}
		if th.MinIntersect() < c.b+1 {
			t.Errorf("n=%d: overlap %d < b+1", c.n, th.MinIntersect())
		}
	}
	if _, err := NewDissemThreshold(10, 4); err == nil {
		t.Error("b > (n-1)/3 must be rejected")
	}
	if _, err := NewDissemThreshold(10, -1); err == nil {
		t.Error("negative b must be rejected")
	}
}

func TestMaskThresholdPaperSizes(t *testing.T) {
	// Table 4 threshold column.
	cases := []struct{ n, b, size, ft int }{
		{25, 2, 15, 11},
		{100, 4, 55, 46},
		{225, 7, 120, 106},
		{400, 9, 210, 191},
		{625, 12, 325, 301},
		{900, 14, 465, 436},
	}
	for _, c := range cases {
		th, err := NewMaskThreshold(c.n, c.b)
		if err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		if th.QuorumSize() != c.size {
			t.Errorf("n=%d: size %d, want %d", c.n, th.QuorumSize(), c.size)
		}
		if th.FaultTolerance() != c.ft {
			t.Errorf("n=%d: fault tolerance %d, want %d", c.n, th.FaultTolerance(), c.ft)
		}
		if th.MinIntersect() < 2*c.b+1 {
			t.Errorf("n=%d: overlap %d < 2b+1", c.n, th.MinIntersect())
		}
	}
	if _, err := NewMaskThreshold(10, 3); err == nil {
		t.Error("b > (n-1)/4 must be rejected")
	}
}

func TestResilienceBounds(t *testing.T) {
	// Table 1: b <= floor((n-1)/3) and floor((n-1)/4).
	if MaxDissemB(100) != 33 || MaxMaskB(100) != 24 {
		t.Errorf("bounds: %d, %d", MaxDissemB(100), MaxMaskB(100))
	}
	if MaxDissemB(4) != 1 || MaxMaskB(5) != 1 {
		t.Errorf("small-n bounds: %d, %d", MaxDissemB(4), MaxMaskB(5))
	}
}

func TestSingleton(t *testing.T) {
	s, err := NewSingleton(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Pick(rand.New(rand.NewSource(1))); len(got) != 1 || got[0] != 3 {
		t.Errorf("Pick = %v", got)
	}
	if s.Load() != 1 || s.FaultTolerance() != 1 || s.QuorumSize() != 1 {
		t.Error("singleton measures wrong")
	}
	if s.FailProb(0.37) != 0.37 {
		t.Error("singleton FailProb must equal p")
	}
	if _, err := NewSingleton(5, 5); err == nil {
		t.Error("out-of-universe id must be rejected")
	}
}

func TestGridBasics(t *testing.T) {
	g, err := NewGrid(25)
	if err != nil {
		t.Fatal(err)
	}
	if g.QuorumSize() != 9 {
		t.Errorf("quorum size %d, want 9 (Table 2)", g.QuorumSize())
	}
	if g.FaultTolerance() != 5 {
		t.Errorf("fault tolerance %d, want 5 (Table 2)", g.FaultTolerance())
	}
	wantLoad := 2.0/5 - 1.0/25
	if math.Abs(g.Load()-wantLoad) > 1e-12 {
		t.Errorf("load %v, want %v", g.Load(), wantLoad)
	}
	if _, err := NewGrid(24); err == nil {
		t.Error("non-square universe must be rejected")
	}
}

func TestGridPickShape(t *testing.T) {
	g, err := NewRectGrid(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		q := g.Pick(r)
		if len(q) != g.QuorumSize() {
			t.Fatalf("size %d, want %d", len(q), g.QuorumSize())
		}
		// Quorum must be exactly one full row plus one full column.
		rowCount := make(map[int]int)
		colCount := make(map[int]int)
		for _, id := range q {
			rowCount[int(id)/6]++
			colCount[int(id)%6]++
		}
		fullRows, fullCols := 0, 0
		for _, c := range rowCount {
			if c == 6 {
				fullRows++
			}
		}
		for _, c := range colCount {
			if c == 4 {
				fullCols++
			}
		}
		if fullRows != 1 || fullCols != 1 {
			t.Fatalf("quorum is not row+column: %v", q)
		}
	}
}

func TestGridLoadEmpirical(t *testing.T) {
	g, err := NewGrid(36)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	trials := 30000
	counts := make([]int, g.N())
	for i := 0; i < trials; i++ {
		for _, id := range g.Pick(r) {
			counts[id]++
		}
	}
	want := g.Load() * float64(trials)
	for id, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("cell %d accessed %d times, want ~%.0f", id, c, want)
		}
	}
}

// bruteGridFailProb enumerates all crash patterns of a rows x cols grid.
func bruteGridFailProb(rows, cols int, p float64) float64 {
	n := rows * cols
	var fail float64
	for mask := 0; mask < 1<<uint(n); mask++ { // bit set = crashed
		// Live quorum exists iff some row all-alive and some col all-alive.
		liveRow := false
		for r := 0; r < rows && !liveRow; r++ {
			all := true
			for c := 0; c < cols; c++ {
				if mask&(1<<uint(r*cols+c)) != 0 {
					all = false
					break
				}
			}
			liveRow = liveRow || all
		}
		liveCol := false
		for c := 0; c < cols && !liveCol; c++ {
			all := true
			for r := 0; r < rows; r++ {
				if mask&(1<<uint(r*cols+c)) != 0 {
					all = false
					break
				}
			}
			liveCol = liveCol || all
		}
		if liveRow && liveCol {
			continue
		}
		dead := 0
		for m := mask; m != 0; m &= m - 1 {
			dead++
		}
		fail += math.Pow(p, float64(dead)) * math.Pow(1-p, float64(n-dead))
	}
	return fail
}

func TestGridFailProbExact(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {2, 3}, {3, 3}, {3, 4}} {
		g, err := NewRectGrid(dims[0], dims[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []float64{0.05, 0.2, 0.5, 0.8, 0.95} {
			want := bruteGridFailProb(dims[0], dims[1], p)
			got := g.FailProb(p)
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("grid %dx%d p=%v: FailProb %v, want %v", dims[0], dims[1], p, got, want)
			}
		}
	}
}

func TestGridFailProbEdges(t *testing.T) {
	g, _ := NewGrid(100)
	if g.FailProb(0) != 0 || g.FailProb(1) != 1 {
		t.Error("edge probabilities wrong")
	}
	prev := 0.0
	for p := 0.0; p <= 1.0; p += 0.02 {
		f := g.FailProb(p)
		if f < prev-1e-9 {
			t.Fatalf("grid FailProb not monotone at p=%v: %v < %v", p, f, prev)
		}
		prev = f
	}
}

func TestByzGridPaperSizes(t *testing.T) {
	// Table 3 grid column (dissemination) and Table 4 grid column (masking).
	dissem := []struct{ n, b, size int }{
		{25, 2, 16}, {100, 4, 36}, {225, 7, 56}, {400, 9, 111}, {625, 12, 141}, {900, 14, 171},
	}
	for _, c := range dissem {
		g, err := NewDissemGrid(c.n, c.b)
		if err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		if g.QuorumSize() != c.size {
			t.Errorf("dissem grid n=%d: size %d, want %d", c.n, g.QuorumSize(), c.size)
		}
	}
	mask := []struct{ n, b, size int }{
		{25, 2, 16}, {100, 4, 51}, {225, 7, 81}, {400, 9, 144}, {625, 12, 184}, {900, 14, 224},
	}
	for _, c := range mask {
		g, err := NewMaskGrid(c.n, c.b)
		if err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		if g.QuorumSize() != c.size {
			t.Errorf("mask grid n=%d: size %d, want %d", c.n, g.QuorumSize(), c.size)
		}
	}
}

func TestByzGridOverlap(t *testing.T) {
	g, err := NewMaskGrid(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		a, b := g.Pick(r), g.Pick(r)
		if len(a) != g.QuorumSize() || len(b) != g.QuorumSize() {
			t.Fatalf("pick size %d/%d, want %d", len(a), len(b), g.QuorumSize())
		}
		if got := len(Intersect(a, b)); got < 2*g.B()+1 {
			t.Fatalf("overlap %d < 2b+1 = %d", got, 2*g.B()+1)
		}
	}
}

func TestByzGridMeasures(t *testing.T) {
	g, err := NewDissemGrid(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	// r = ceil(sqrt(5/2)) = 2; A = 10 - 2 + 1 = 9.
	if g.RowsPerQuorum() != 2 {
		t.Errorf("r = %d, want 2", g.RowsPerQuorum())
	}
	if g.FaultTolerance() != 9 {
		t.Errorf("fault tolerance %d, want 9", g.FaultTolerance())
	}
	wantLoad := 1 - 0.8*0.8
	if math.Abs(g.Load()-wantLoad) > 1e-12 {
		t.Errorf("load %v, want %v", g.Load(), wantLoad)
	}
	if g.FailProb(0) != 0 || g.FailProb(1) != 1 {
		t.Error("edge fail probs wrong")
	}
}

func TestCeilSqrtHalf(t *testing.T) {
	for x := 0; x <= 2000; x++ {
		r := ceilSqrtHalf(x)
		if x == 0 {
			if r != 0 {
				t.Fatalf("ceilSqrtHalf(0) = %d", r)
			}
			continue
		}
		if 2*r*r < x {
			t.Fatalf("ceilSqrtHalf(%d) = %d too small", x, r)
		}
		if r > 1 && 2*(r-1)*(r-1) >= x {
			t.Fatalf("ceilSqrtHalf(%d) = %d not minimal", x, r)
		}
	}
}

func TestLoadLowerBoundNaorWool(t *testing.T) {
	// L(Q) >= max(1/c(Q), c(Q)/n) >= 1/sqrt(n) for all strict systems here.
	systems := []System{}
	if m, err := NewMajority(100); err == nil {
		systems = append(systems, m)
	}
	if g, err := NewGrid(100); err == nil {
		systems = append(systems, g)
	}
	if s, err := NewSingleton(100, 0); err == nil {
		systems = append(systems, s)
	}
	for _, s := range systems {
		if s.Load() < 1/math.Sqrt(float64(s.N()))-1e-12 {
			t.Errorf("%s: load %v below 1/sqrt(n)", s.Name(), s.Load())
		}
		c := float64(s.QuorumSize())
		lower := math.Max(1/c, c/float64(s.N()))
		if s.Load() < lower-1e-12 {
			t.Errorf("%s: load %v below max(1/c, c/n) = %v", s.Name(), s.Load(), lower)
		}
	}
}
