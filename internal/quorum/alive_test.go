package quorum

import "testing"

func crashedSet(ids ...ServerID) func(ServerID) bool {
	set := make(map[ServerID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(id ServerID) bool { return set[id] }
}

func TestUniformLiveQuorumExists(t *testing.T) {
	u, err := NewUniform(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !u.LiveQuorumExists(crashedSet()) {
		t.Error("no crashes: quorum must exist")
	}
	if !u.LiveQuorumExists(crashedSet(0, 1)) {
		t.Error("2 crashes with q=3, n=5: quorum must exist")
	}
	if u.LiveQuorumExists(crashedSet(0, 1, 2)) {
		t.Error("3 crashes leave only 2 alive < q=3")
	}
}

func TestSingletonLiveQuorumExists(t *testing.T) {
	s, err := NewSingleton(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !s.LiveQuorumExists(crashedSet(0, 2)) {
		t.Error("server 1 alive: quorum exists")
	}
	if s.LiveQuorumExists(crashedSet(1)) {
		t.Error("server 1 crashed: no quorum")
	}
}

func TestGridLiveQuorumExists(t *testing.T) {
	g, err := NewRectGrid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.LiveQuorumExists(crashedSet()) {
		t.Error("no crashes")
	}
	// Crash one full row (ids 0,1,2): rows 1,2 and all... columns each lose
	// one cell, so no column is fully live: system down.
	if g.LiveQuorumExists(crashedSet(0, 1, 2)) {
		t.Error("full row crashed kills every column")
	}
	// Crash a diagonal (0, 4, 8): no live row... row0 loses 0, row1 loses 4,
	// row2 loses 8: no fully live row: system down.
	if g.LiveQuorumExists(crashedSet(0, 4, 8)) {
		t.Error("diagonal crash kills every row")
	}
	// Crash two cells in one row: that row dead, but row 1 and 2 live; the
	// columns of the crashed cells are dead but another column is live.
	if !g.LiveQuorumExists(crashedSet(0, 1)) {
		t.Error("row 1,2 and column 2 live: quorum exists")
	}
}

func TestByzGridLiveQuorumExists(t *testing.T) {
	g, err := NewDissemGrid(25, 2) // r = 2 rows + 2 cols per quorum
	if err != nil {
		t.Fatal(err)
	}
	if !g.LiveQuorumExists(crashedSet()) {
		t.Error("no crashes")
	}
	// Kill cells across 4 of 5 rows: only 1 live row < r=2.
	if g.LiveQuorumExists(crashedSet(0, 5, 10, 15)) {
		t.Error("only one live row remains; need r=2")
	}
	// Kill one full row: 4 live rows, but every column loses a cell...
	// columns 0..4 each contain a cell of row 0, so no live column at all.
	if g.LiveQuorumExists(crashedSet(0, 1, 2, 3, 4)) {
		t.Error("full row crash kills all columns")
	}
	// Two crashes in the same row: 4 live rows >= 2, 3 live cols >= 2.
	if !g.LiveQuorumExists(crashedSet(0, 1)) {
		t.Error("quorum should exist")
	}
}

func TestFaultToleranceMatchesLiveCheck(t *testing.T) {
	// Property: crashing any FaultTolerance()-1 servers leaves a live quorum
	// for the uniform system (its A is exact and worst-case-free), and some
	// FaultTolerance() crashes disable it.
	u, err := NewUniform(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := u.FaultTolerance()
	var ids []ServerID
	for i := 0; i < a-1; i++ {
		ids = append(ids, ServerID(i))
	}
	if !u.LiveQuorumExists(crashedSet(ids...)) {
		t.Error("A-1 crashes must not disable the uniform system")
	}
	ids = append(ids, ServerID(a-1))
	if u.LiveQuorumExists(crashedSet(ids...)) {
		t.Error("A crashes must disable the uniform system")
	}
}
