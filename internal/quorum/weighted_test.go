package quorum

import (
	"math"
	"math/rand"
	"testing"
)

func TestWeightedValidation(t *testing.T) {
	if _, err := NewWeighted(nil, 1); err == nil {
		t.Error("empty votes accepted")
	}
	if _, err := NewWeighted([]int{1, 0, 1}, 2); err == nil {
		t.Error("zero vote accepted")
	}
	if _, err := NewWeighted([]int{1, 1, 1, 1}, 2); err == nil {
		t.Error("2T <= total accepted (non-intersecting)")
	}
	if _, err := NewWeighted([]int{1, 1}, 3); err == nil {
		t.Error("T > total accepted")
	}
}

func TestWeightedUniformEqualsMajority(t *testing.T) {
	// Unit votes with T = majority reduce exactly to the majority system.
	n := 9
	votes := make([]int, n)
	for i := range votes {
		votes[i] = 1
	}
	w, err := NewWeighted(votes, MajoritySize(n))
	if err != nil {
		t.Fatal(err)
	}
	maj, err := NewMajority(n)
	if err != nil {
		t.Fatal(err)
	}
	if w.FaultTolerance() != maj.FaultTolerance() {
		t.Errorf("fault tolerance %d vs majority %d", w.FaultTolerance(), maj.FaultTolerance())
	}
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		a, b := w.FailProb(p), maj.FailProb(p)
		if math.Abs(a-b) > 1e-10 {
			t.Errorf("p=%v: FailProb %v vs majority %v", p, a, b)
		}
	}
	if w.QuorumSize() != maj.QuorumSize() {
		t.Errorf("quorum size %d vs majority %d", w.QuorumSize(), maj.QuorumSize())
	}
	if math.Abs(w.Load()-maj.Load()) > 0.02 {
		t.Errorf("load %v vs majority %v", w.Load(), maj.Load())
	}
}

func TestWeightedPickReachesThreshold(t *testing.T) {
	votes := []int{5, 1, 1, 1, 1, 1, 3, 2}
	total := 15
	w, err := NewWeighted(votes, 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = total
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		q := w.Pick(r)
		got := 0
		for _, id := range q {
			got += votes[id]
		}
		if got < 8 {
			t.Fatalf("quorum %v has %d votes < 8", q, got)
		}
		// Minimality of the prefix: dropping the last-added member must go
		// below the threshold. Pick sorts, so check sum-minus-any >= 8 does
		// not hold for all members (at least one is essential).
		essential := false
		for _, id := range q {
			if got-votes[id] < 8 {
				essential = true
				break
			}
		}
		if !essential {
			t.Fatalf("quorum %v has no essential member", q)
		}
	}
}

func TestWeightedIntersection(t *testing.T) {
	votes := []int{4, 3, 2, 1, 1, 1}
	w, err := NewWeighted(votes, 7) // total 12, 2*7 > 12
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b := w.Pick(r), w.Pick(r)
		if len(Intersect(a, b)) == 0 {
			t.Fatalf("weighted quorums failed to intersect: %v, %v", a, b)
		}
	}
}

func TestWeightedFaultTolerance(t *testing.T) {
	// votes 4,3,2,1,1,1 total 12, T=7: crash the 4 -> 8 left >= 7 alive;
	// crash 4+3 -> 5 < 7: A = 2.
	w, err := NewWeighted([]int{4, 3, 2, 1, 1, 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.FaultTolerance(); got != 2 {
		t.Errorf("fault tolerance %d, want 2", got)
	}
	// The live check agrees: crashing servers 0,1 disables, 0 alone does not.
	if !w.LiveQuorumExists(crashedSet(0)) {
		t.Error("single heavy crash should not disable")
	}
	if w.LiveQuorumExists(crashedSet(0, 1)) {
		t.Error("two heaviest crashes should disable")
	}
}

func TestWeightedFailProbAgainstMC(t *testing.T) {
	votes := []int{4, 3, 2, 1, 1, 1}
	w, err := NewWeighted(votes, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for _, p := range []float64{0.2, 0.5, 0.8} {
		trials, fails := 40000, 0
		for i := 0; i < trials; i++ {
			got := 0
			for _, v := range votes {
				if r.Float64() >= p {
					got += v
				}
			}
			if got < 7 {
				fails++
			}
		}
		mc := float64(fails) / float64(trials)
		exact := w.FailProb(p)
		se := math.Sqrt(exact * (1 - exact) / float64(trials))
		if math.Abs(mc-exact) > 5*se+1e-3 {
			t.Errorf("p=%v: exact %v vs MC %v", p, exact, mc)
		}
	}
	if w.FailProb(0) != 0 || w.FailProb(1) != 1 {
		t.Error("edge cases wrong")
	}
}

func TestWeightedAccessors(t *testing.T) {
	votes := []int{2, 1}
	w, err := NewWeighted(votes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 2 || w.Threshold() != 2 {
		t.Error("accessors wrong")
	}
	got := w.Votes()
	got[0] = 99
	if w.Votes()[0] != 2 {
		t.Error("Votes aliases internal state")
	}
	if w.Name() == "" {
		t.Error("empty name")
	}
}

func TestWeightedHeavyServerDominatesLoad(t *testing.T) {
	// A server holding T votes alone appears in (almost) every quorum under
	// any reasonable strategy; its load must far exceed the light servers'.
	votes := []int{10, 1, 1, 1, 1, 1, 1, 1, 1, 1} // total 19, T = 10
	w, err := NewWeighted(votes, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w.Load() < 0.5 {
		t.Errorf("heavy server load %v suspiciously low", w.Load())
	}
	if w.FaultTolerance() != 1 {
		t.Errorf("fault tolerance %d, want 1 (crash the heavy server)", w.FaultTolerance())
	}
}

// TestWeightedUnreachableThresholdErrors pins the construction-time guard
// behind the PickWithSpares contract: a threshold the vote sum can never
// reach must fail at NewWeighted (not surface later as a silent
// whole-universe "quorum" from the access strategy).
func TestWeightedUnreachableThresholdErrors(t *testing.T) {
	votes := []int{2, 1, 1} // total 4
	if _, err := NewWeighted(votes, 5); err == nil {
		t.Fatal("threshold above total votes accepted")
	}
	// At the boundary T = total the quorum is the whole universe — legal,
	// intersecting, and Pick must return exactly all servers.
	w, err := NewWeighted(votes, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := w.Pick(rand.New(rand.NewSource(1)))
	if len(q) != len(votes) {
		t.Fatalf("T=total quorum has %d members, want %d", len(q), len(votes))
	}
}

// TestWeightedPickPanicsOnBrokenInvariant pins the defensive check in
// PickWithSpares: a Weighted whose votes cannot reach the threshold (only
// constructible by bypassing NewWeighted) must fail loudly rather than
// return the entire universe as a quorum without error.
func TestWeightedPickPanicsOnBrokenInvariant(t *testing.T) {
	w := &Weighted{votes: []int{1, 1}, total: 2, t: 5} // invariant broken
	defer func() {
		if recover() == nil {
			t.Fatal("PickWithSpares on an under-threshold Weighted did not panic")
		}
	}()
	w.PickWithSpares(rand.New(rand.NewSource(1)), 1)
}
