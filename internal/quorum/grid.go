package quorum

import (
	"fmt"
	"math"
	"math/rand"

	"pqs/internal/combin"
)

// Grid is the Maekawa grid quorum system: the n servers are arranged in a
// rows x cols rectangle (server id = row*cols + col) and each quorum is the
// union of one full row and one full column. The access strategy picks the
// row and the column independently and uniformly.
type Grid struct {
	rows, cols int
}

var _ System = (*Grid)(nil)

// NewGrid returns the square grid system over n servers; n must be a perfect
// square (the layout used in Section 6 of the paper).
func NewGrid(n int) (*Grid, error) {
	if n <= 0 || !combin.IsPerfectSquare(n) {
		return nil, fmt.Errorf("quorum: grid universe %d is not a positive perfect square", n)
	}
	s := combin.IntSqrt(n)
	return &Grid{rows: s, cols: s}, nil
}

// NewRectGrid returns the rows x cols grid system.
func NewRectGrid(rows, cols int) (*Grid, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("quorum: grid dimensions %dx%d must be positive", rows, cols)
	}
	return &Grid{rows: rows, cols: cols}, nil
}

// Name implements System.
func (g *Grid) Name() string { return fmt.Sprintf("grid(%dx%d)", g.rows, g.cols) }

// N implements System.
func (g *Grid) N() int { return g.rows * g.cols }

// Rows returns the number of grid rows.
func (g *Grid) Rows() int { return g.rows }

// Cols returns the number of grid columns.
func (g *Grid) Cols() int { return g.cols }

// QuorumSize implements System: one row plus one column share one cell.
func (g *Grid) QuorumSize() int { return g.rows + g.cols - 1 }

// Pick implements System.
func (g *Grid) Pick(r *rand.Rand) []ServerID {
	row := r.Intn(g.rows)
	col := r.Intn(g.cols)
	out := make([]ServerID, 0, g.QuorumSize())
	for c := 0; c < g.cols; c++ {
		out = append(out, ServerID(row*g.cols+c))
	}
	for rr := 0; rr < g.rows; rr++ {
		if rr == row {
			continue
		}
		out = append(out, ServerID(rr*g.cols+col))
	}
	sortIDs(out)
	return out
}

// Load implements System. Under the uniform row/column strategy a cell is
// accessed iff its row or its column is chosen:
// 1/rows + 1/cols - 1/(rows*cols), which is 2/sqrt(n) - 1/n for the square
// grid — the classical O(1/sqrt(n)) grid load.
func (g *Grid) Load() float64 {
	r, c := float64(g.rows), float64(g.cols)
	return 1/r + 1/c - 1/(r*c)
}

// FaultTolerance implements System. A full row (or column, whichever is
// smaller) meets every quorum, and no smaller set does: a set with fewer
// than min(rows, cols) elements leaves some row i and some column j empty,
// and the quorum (row i, col j) avoids it. Hence A = min(rows, cols).
func (g *Grid) FaultTolerance() int {
	if g.rows < g.cols {
		return g.rows
	}
	return g.cols
}

// FailProb implements System, exactly. A live quorum exists iff some row is
// fully alive AND some column is fully alive. With A = "no fully-alive row"
// and B = "no fully-alive column",
//
//	F_p = P(A ∪ B) = P(B) + P(A ∩ B^c)
//
// and P(A ∩ B^c) — no live row but at least one live column — expands by
// inclusion-exclusion over the set of columns forced fully alive: forcing j
// particular columns alive costs (1-p)^{rows·j} and leaves each row needing
// one of its remaining cols-j cells dead:
//
//	P(A ∩ B^c) = Σ_{j=1..cols} (-1)^{j+1} C(cols, j) (1-p)^{rows·j} (1-(1-p)^{cols-j})^{rows}.
func (g *Grid) FailProb(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	r, c := g.rows, g.cols
	alive := 1 - p
	// P(B): every column has at least one dead cell.
	pb := math.Pow(1-math.Pow(alive, float64(r)), float64(c))
	sum := pb
	sign := 1.0
	for j := 1; j <= c; j++ {
		term := combin.Binom(c, j) *
			math.Pow(alive, float64(r*j)) *
			math.Pow(1-math.Pow(alive, float64(c-j)), float64(r))
		sum += sign * term
		sign = -sign
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// ByzGrid is the grid-based Byzantine quorum construction used as the strict
// baseline in Tables 3 and 4: each quorum is the union of r full rows and r
// full columns of a square s x s grid, with r = ceil(sqrt((b+1)/2)) for
// dissemination systems and r = ceil(sqrt((2b+1)/2)) for masking systems, so
// that two quorums overlap in at least 2r^2 >= b+1 (resp. 2b+1) servers.
type ByzGrid struct {
	side int // grid is side x side
	r    int // rows and columns per quorum
	b    int // tolerated Byzantine failures
	name string
}

var _ System = (*ByzGrid)(nil)

// NewDissemGrid returns the grid b-dissemination construction over n servers
// (n a perfect square): r = ceil(sqrt((b+1)/2)) rows and columns.
func NewDissemGrid(n, b int) (*ByzGrid, error) {
	r := ceilSqrtHalf(b + 1)
	g, err := newByzGrid(n, b, r)
	if err != nil {
		return nil, err
	}
	if 2*r*r < b+1 {
		return nil, fmt.Errorf("quorum: internal: grid overlap %d < b+1=%d", 2*r*r, b+1)
	}
	g.name = fmt.Sprintf("dissem-grid(n=%d,b=%d,r=%d)", n, b, r)
	return g, nil
}

// NewMaskGrid returns the grid b-masking construction over n servers
// (n a perfect square): r = ceil(sqrt((2b+1)/2)) rows and columns.
func NewMaskGrid(n, b int) (*ByzGrid, error) {
	r := ceilSqrtHalf(2*b + 1)
	g, err := newByzGrid(n, b, r)
	if err != nil {
		return nil, err
	}
	if 2*r*r < 2*b+1 {
		return nil, fmt.Errorf("quorum: internal: grid overlap %d < 2b+1=%d", 2*r*r, 2*b+1)
	}
	g.name = fmt.Sprintf("mask-grid(n=%d,b=%d,r=%d)", n, b, r)
	return g, nil
}

// ceilSqrtHalf returns ceil(sqrt(x/2)) for integer x >= 0.
func ceilSqrtHalf(x int) int {
	if x <= 0 {
		return 0
	}
	r := int(math.Ceil(math.Sqrt(float64(x) / 2)))
	for r > 1 && 2*(r-1)*(r-1) >= x {
		r--
	}
	for 2*r*r < x {
		r++
	}
	return r
}

func newByzGrid(n, b, r int) (*ByzGrid, error) {
	if n <= 0 || !combin.IsPerfectSquare(n) {
		return nil, fmt.Errorf("quorum: grid universe %d is not a positive perfect square", n)
	}
	if b < 0 {
		return nil, fmt.Errorf("quorum: negative fault threshold %d", b)
	}
	side := combin.IntSqrt(n)
	if r < 1 || r > side {
		return nil, fmt.Errorf("quorum: grid quorum needs %d rows/cols but grid side is %d", r, side)
	}
	return &ByzGrid{side: side, r: r, b: b}, nil
}

// Name implements System.
func (g *ByzGrid) Name() string { return g.name }

// N implements System.
func (g *ByzGrid) N() int { return g.side * g.side }

// B returns the number of Byzantine failures the construction masks.
func (g *ByzGrid) B() int { return g.b }

// RowsPerQuorum returns r, the number of rows (and of columns) per quorum.
func (g *ByzGrid) RowsPerQuorum() int { return g.r }

// QuorumSize implements System: r rows and r columns overlap in r*r cells,
// so |Q| = 2*r*side - r*r.
func (g *ByzGrid) QuorumSize() int { return 2*g.r*g.side - g.r*g.r }

// Pick implements System: r distinct rows and r distinct columns chosen
// uniformly and independently.
func (g *ByzGrid) Pick(rnd *rand.Rand) []ServerID {
	rows := SampleK(rnd, g.side, g.r)
	cols := SampleK(rnd, g.side, g.r)
	inRows := make(map[int]bool, g.r)
	for _, rr := range rows {
		inRows[int(rr)] = true
	}
	out := make([]ServerID, 0, g.QuorumSize())
	for _, rr := range rows {
		for c := 0; c < g.side; c++ {
			out = append(out, ServerID(int(rr)*g.side+c))
		}
	}
	for _, cc := range cols {
		for rr := 0; rr < g.side; rr++ {
			if inRows[rr] {
				continue
			}
			out = append(out, ServerID(rr*g.side+int(cc)))
		}
	}
	sortIDs(out)
	return out
}

// Load implements System: a cell is accessed iff its row or its column is
// chosen, i.e. 1 - (1 - r/s)^2 for the square grid.
func (g *ByzGrid) Load() float64 {
	f := float64(g.r) / float64(g.side)
	return 1 - (1-f)*(1-f)
}

// FaultTolerance implements System. Hitting side-r+1 rows (one crash per
// row) leaves at most r-1 rows untouched, so no quorum can assemble r clean
// rows; no smaller set suffices, because with at most side-r crashed-in rows
// there remain r fully clean rows and, symmetrically, r clean columns.
// Hence A = side - r + 1. (The paper's Tables 3-4 list sqrt(n) here; see
// EXPERIMENTS.md for the discrepancy note.)
func (g *ByzGrid) FaultTolerance() int { return g.side - g.r + 1 }

// FailProb implements System, approximately: it returns the union bound
//
//	P(< r live rows) + P(< r live cols)
//
// where the two marginals are exact binomial tails (rows are independent of
// one another, as are columns, but rows are not independent of columns; the
// exact joint requires exponential-size inclusion-exclusion). The bound is
// exact at p=0 and p=1 and within a factor 2 everywhere; package sim offers
// a Monte-Carlo estimate when more precision is needed.
func (g *ByzGrid) FailProb(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	rowAlive := math.Pow(1-p, float64(g.side))
	// #live rows ~ Binomial(side, rowAlive); fail when fewer than r live.
	short := 1 - combin.BinomialTailGE(g.side, rowAlive, g.r)
	u := 2 * short // rows and columns are exchangeable on a square grid
	if u > 1 {
		return 1
	}
	return u
}
