package quorum

import (
	"fmt"
	"math/rand"
)

// Weighted is Gifford-style weighted voting [Gif79], the earliest quorum
// baseline the paper cites: server i carries votes[i] votes and a quorum is
// any set whose votes total at least the threshold T, with 2T > total so
// that two quorums always share a vote (and, votes being held by servers, a
// server). The access strategy draws a uniformly random server permutation
// and takes the shortest prefix reaching T — the natural "ask servers in
// random order until enough votes answer" strategy.
//
// Load and quorum size under this strategy have no closed form for general
// vote vectors; they are estimated once at construction by a seeded
// Monte-Carlo pass (deterministic, documented on the accessors). Fault
// tolerance, failure probability and the live-quorum check are exact.
type Weighted struct {
	votes []int
	total int
	t     int

	// Monte-Carlo estimates fixed at construction.
	estLoad float64
	estSize int
}

var (
	_ System      = (*Weighted)(nil)
	_ LiveChecker = (*Weighted)(nil)
)

// weightedLoadTrials is the construction-time Monte-Carlo sample size for
// the load and expected-quorum-size estimates.
const weightedLoadTrials = 20000

// NewWeighted returns the weighted-voting system with the given votes and
// threshold. It requires positive votes and 2*threshold > total votes.
func NewWeighted(votes []int, threshold int) (*Weighted, error) {
	if len(votes) == 0 {
		return nil, fmt.Errorf("quorum: weighted voting needs at least one server")
	}
	total := 0
	for i, v := range votes {
		if v <= 0 {
			return nil, fmt.Errorf("quorum: server %d has non-positive votes %d", i, v)
		}
		total += v
	}
	if 2*threshold <= total {
		return nil, fmt.Errorf("quorum: threshold %d does not guarantee intersection over %d total votes", threshold, total)
	}
	if threshold > total {
		return nil, fmt.Errorf("quorum: threshold %d exceeds total votes %d", threshold, total)
	}
	w := &Weighted{votes: append([]int(nil), votes...), total: total, t: threshold}
	w.estimate()
	return w, nil
}

// estimate runs the construction-time Monte-Carlo pass for load and
// expected quorum size under the random-permutation-prefix strategy.
func (w *Weighted) estimate() {
	rng := rand.New(rand.NewSource(0x9e3779b9)) // fixed: estimates are deterministic
	counts := make([]int, len(w.votes))
	sizeSum := 0
	for trial := 0; trial < weightedLoadTrials; trial++ {
		q := w.Pick(rng)
		sizeSum += len(q)
		for _, id := range q {
			counts[id]++
		}
	}
	maxc := 0
	for _, c := range counts {
		if c > maxc {
			maxc = c
		}
	}
	w.estLoad = float64(maxc) / float64(weightedLoadTrials)
	w.estSize = (sizeSum + weightedLoadTrials/2) / weightedLoadTrials
}

// Name implements System.
func (w *Weighted) Name() string {
	return fmt.Sprintf("weighted(n=%d,T=%d/%d)", len(w.votes), w.t, w.total)
}

// N implements System.
func (w *Weighted) N() int { return len(w.votes) }

// Votes returns a copy of the vote assignment.
func (w *Weighted) Votes() []int { return append([]int(nil), w.votes...) }

// Threshold returns the vote threshold T.
func (w *Weighted) Threshold() int { return w.t }

// QuorumSize implements System: the Monte-Carlo estimate of the expected
// quorum size under the built-in strategy (exact only for uniform votes).
func (w *Weighted) QuorumSize() int { return w.estSize }

// Pick implements System: a uniformly random permutation's shortest prefix
// reaching the vote threshold.
func (w *Weighted) Pick(r *rand.Rand) []ServerID {
	q, _ := w.PickWithSpares(r, 0)
	return q
}

// Load implements System: the seeded Monte-Carlo estimate of the busiest
// server's access probability under the built-in strategy (deterministic
// across runs; exact closed forms exist only for special vote vectors).
func (w *Weighted) Load() float64 { return w.estLoad }

// FaultTolerance implements System, exactly: the adversary crashes
// highest-vote servers first; the system is disabled as soon as surviving
// votes drop below T.
func (w *Weighted) FaultTolerance() int {
	sorted := append([]int(nil), w.votes...)
	// descending insertion sort; n is small
	for i := 1; i < len(sorted); i++ {
		v := sorted[i]
		j := i - 1
		for j >= 0 && sorted[j] < v {
			sorted[j+1] = sorted[j]
			j--
		}
		sorted[j+1] = v
	}
	remaining := w.total
	for i, v := range sorted {
		remaining -= v
		if remaining < w.t {
			return i + 1
		}
	}
	return len(sorted)
}

// FailProb implements System, exactly: the distribution of surviving votes
// is the convolution of independent (vote_i with probability 1-p) masses,
// computed by dynamic programming over vote totals; the system fails when
// surviving votes < T.
func (w *Weighted) FailProb(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	dist := make([]float64, w.total+1)
	dist[0] = 1
	upper := 0
	for _, v := range w.votes {
		upper += v
		for s := upper; s >= 0; s-- {
			alive := 0.0
			if s >= v {
				alive = dist[s-v] * (1 - p)
			}
			dist[s] = dist[s]*p + alive
		}
	}
	var fail float64
	for s := 0; s < w.t; s++ {
		fail += dist[s]
	}
	if fail > 1 {
		return 1
	}
	return fail
}

// LiveQuorumExists implements LiveChecker: surviving votes must reach T.
func (w *Weighted) LiveQuorumExists(crashed func(ServerID) bool) bool {
	got := 0
	for i, v := range w.votes {
		if !crashed(ServerID(i)) {
			got += v
			if got >= w.t {
				return true
			}
		}
	}
	return false
}
