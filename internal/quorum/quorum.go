// Package quorum defines the quorum-system abstraction shared by the strict
// baseline constructions and the probabilistic constructions of Malkhi,
// Reiter, Wool and Wright, together with the strict systems themselves:
// threshold (majority) systems, the Maekawa grid, Byzantine threshold
// systems, Byzantine grid systems, and the singleton system.
//
// A quorum system here is a sampling procedure (the access strategy w of
// Definition 2.3) plus analytic quality measures: load (Definition 2.4),
// crash fault tolerance (Definition 2.5) and failure probability
// (Definition 2.6).
package quorum

import (
	"fmt"
	"math/rand"

	"pqs/internal/combin"
)

// ServerID identifies a server in the universe U = {0, ..., n-1}.
type ServerID int

// System is a quorum system equipped with its access strategy.
//
// Pick samples one quorum according to the system's access strategy. The
// returned slice is freshly allocated and sorted ascending. The probabilistic
// guarantees of every construction in this repository hold only under the
// built-in strategy (see the Remark after Theorem 3.2 in the paper: a
// different strategy on the same set system can void the intersection
// guarantee), which is why the strategy is not a separate injectable.
type System interface {
	// Name returns a short human-readable identifier.
	Name() string
	// N returns the universe size.
	N() int
	// QuorumSize returns the size of quorums chosen by the strategy.
	QuorumSize() int
	// Pick samples a quorum using r as the randomness source.
	Pick(r *rand.Rand) []ServerID
	// Load returns the load induced by the built-in access strategy
	// (Definition 2.4 / 3.3).
	Load() float64
	// FaultTolerance returns A(Q): the size of the smallest set of servers
	// intersecting every (high-quality) quorum. The system survives any
	// A(Q)-1 crashes.
	FaultTolerance() int
	// FailProb returns the probability that every quorum contains at least
	// one crashed server when servers crash independently with probability p.
	// It is exact for every system in this package except ByzGrid, which
	// documents its approximation.
	FailProb(p float64) float64
}

// InplacePicker is implemented by systems whose access strategy can sample
// into a caller-supplied buffer, letting steady-state clients pick quorums
// without allocating. The returned slice has exactly Pick's distribution and
// sorted-ascending contract; it aliases dst when dst had capacity.
type InplacePicker interface {
	System
	// PickInto samples one quorum into dst (reset to length 0 first),
	// growing it only when capacity is insufficient.
	PickInto(r *rand.Rand, dst []ServerID) []ServerID
}

// SampleK returns k distinct values uniformly drawn from {0, ..., n-1},
// sorted ascending.
func SampleK(r *rand.Rand, n, k int) []ServerID {
	return SampleKInto(r, n, k, nil)
}

// SampleKInto is SampleK sampling into dst (grown as needed): with
// cap(dst) >= k it performs zero allocations, which is what lets a client's
// steady-state quorum sampling run allocation-free. It uses Floyd's
// algorithm — O(k) space and O(k^2) worst-case time from sorted insertion,
// where quorum sizes (~l*sqrt(n), at most a few hundred) keep the insertion
// cost below a map's — replacing the previous partial Fisher-Yates shuffle,
// which allocated an O(n) permutation per pick.
func SampleKInto(r *rand.Rand, n, k int, dst []ServerID) []ServerID {
	if k < 0 || k > n {
		panic(fmt.Sprintf("quorum: SampleK(%d, %d) outside domain", n, k))
	}
	dst = dst[:0]
	// Floyd: for j in [n-k, n), draw t uniform on [0, j]; take t unless
	// already taken, else take j. Every element drawn in earlier rounds is
	// < j, so "else take j" appends at the tail of the sorted slice.
	for j := n - k; j < n; j++ {
		t := ServerID(r.Intn(j + 1))
		i := searchIDs(dst, t)
		if i < len(dst) && dst[i] == t {
			dst = append(dst, ServerID(j))
			continue
		}
		dst = append(dst, 0)
		copy(dst[i+1:], dst[i:])
		dst[i] = t
	}
	return dst
}

// searchIDs returns the insertion index of v in ascending-sorted s.
func searchIDs(s []ServerID, v ServerID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sortIDs sorts a small ServerID slice ascending (insertion sort: quorum
// sizes are at most a few hundred, where this beats sort.Slice).
func sortIDs(s []ServerID) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// Intersect returns the intersection of two ascending-sorted ID slices.
func Intersect(a, b []ServerID) []ServerID {
	var out []ServerID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Contains reports whether ascending-sorted s contains id.
func Contains(s []ServerID, id ServerID) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s[mid] < id:
			lo = mid + 1
		case s[mid] > id:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// MajoritySize returns the quorum size of the majority threshold system,
// ceil((n+1)/2).
func MajoritySize(n int) int { return (n + 2) / 2 }

// DissemThresholdSize returns the quorum size of the strict b-dissemination
// threshold construction, ceil((n+b+1)/2) (Section 6).
func DissemThresholdSize(n, b int) int { return (n + b + 2) / 2 }

// MaskThresholdSize returns the quorum size of the strict b-masking threshold
// construction, ceil((n+2b+1)/2) (Section 6).
func MaskThresholdSize(n, b int) int { return (n + 2*b + 2) / 2 }

// MaxDissemB returns the largest b for which a strict b-dissemination system
// over n servers exists: floor((n-1)/3) (Table 1).
func MaxDissemB(n int) int { return (n - 1) / 3 }

// MaxMaskB returns the largest b for which a strict b-masking system over n
// servers exists: floor((n-1)/4) (Table 1).
func MaxMaskB(n int) int { return (n - 1) / 4 }

// Uniform is the set system of all q-subsets of an n-universe under the
// uniform access strategy: the paper's R(n, q) (Definition 3.13). With
// q >= ceil((n+1)/2) it is also a strict quorum system; with smaller q it is
// the carrier of the probabilistic constructions in package core.
type Uniform struct {
	n, q int
}

// NewUniform returns the R(n, q) system.
func NewUniform(n, q int) (*Uniform, error) {
	if n <= 0 {
		return nil, fmt.Errorf("quorum: universe size %d must be positive", n)
	}
	if q <= 0 || q > n {
		return nil, fmt.Errorf("quorum: quorum size %d outside [1, %d]", q, n)
	}
	return &Uniform{n: n, q: q}, nil
}

var _ System = (*Uniform)(nil)

// Name implements System.
func (u *Uniform) Name() string { return fmt.Sprintf("uniform(n=%d,q=%d)", u.n, u.q) }

// N implements System.
func (u *Uniform) N() int { return u.n }

// QuorumSize implements System.
func (u *Uniform) QuorumSize() int { return u.q }

// Pick implements System: a uniformly random q-subset.
func (u *Uniform) Pick(r *rand.Rand) []ServerID { return SampleK(r, u.n, u.q) }

// PickInto implements InplacePicker: Pick sampling into dst, zero-alloc when
// dst has capacity q.
func (u *Uniform) PickInto(r *rand.Rand, dst []ServerID) []ServerID {
	return SampleKInto(r, u.n, u.q, dst)
}

// Load implements System. Every element lies in the same fraction q/n of
// quorums under the uniform strategy (Section 3.4).
func (u *Uniform) Load() float64 { return float64(u.q) / float64(u.n) }

// FaultTolerance implements System: all quorums are high quality by symmetry,
// so the system is disabled only when fewer than q servers survive:
// A = n - q + 1 (Section 3.4).
func (u *Uniform) FaultTolerance() int { return u.n - u.q + 1 }

// FailProb implements System: the system fails iff more than n-q servers
// crash; exact binomial tail.
func (u *Uniform) FailProb(p float64) float64 {
	return combin.BinomialTailGT(u.n, p, u.n-u.q)
}

// NonIntersectProb returns the exact probability that two independently
// sampled quorums are disjoint, C(n-q, q)/C(n, q) (Lemma 3.15 computes the
// e^{-l^2} upper bound for this quantity).
func (u *Uniform) NonIntersectProb() float64 {
	return combin.ProbDisjoint(u.n, u.q, u.q)
}

// Threshold is the strict threshold quorum system: all subsets of size q
// with 2q > n, under the uniform strategy. With q = MajoritySize(n) it is
// the majority system; with the dissemination/masking sizes it is the strict
// Byzantine threshold construction of Section 6.
type Threshold struct {
	Uniform
	minIntersect int // guaranteed minimum overlap of any two quorums: 2q-n
	name         string
}

var _ System = (*Threshold)(nil)

// NewThreshold returns the strict threshold system with quorum size q.
// It fails unless every two quorums are guaranteed to intersect (2q > n).
func NewThreshold(n, q int) (*Threshold, error) {
	u, err := NewUniform(n, q)
	if err != nil {
		return nil, err
	}
	if 2*q <= n {
		return nil, fmt.Errorf("quorum: threshold size %d does not guarantee intersection over %d servers", q, n)
	}
	return &Threshold{
		Uniform:      *u,
		minIntersect: 2*q - n,
		name:         fmt.Sprintf("threshold(n=%d,q=%d)", n, q),
	}, nil
}

// NewMajority returns the majority system: quorums of size ceil((n+1)/2).
func NewMajority(n int) (*Threshold, error) {
	t, err := NewThreshold(n, MajoritySize(n))
	if err != nil {
		return nil, err
	}
	t.name = fmt.Sprintf("majority(n=%d)", n)
	return t, nil
}

// NewDissemThreshold returns the strict b-dissemination threshold system:
// quorums of size ceil((n+b+1)/2), guaranteeing overlap >= b+1
// (Definition 2.7). Requires b <= floor((n-1)/3).
func NewDissemThreshold(n, b int) (*Threshold, error) {
	if b < 0 {
		return nil, fmt.Errorf("quorum: negative fault threshold %d", b)
	}
	if b > MaxDissemB(n) {
		return nil, fmt.Errorf("quorum: b=%d exceeds dissemination resilience bound %d for n=%d", b, MaxDissemB(n), n)
	}
	q := DissemThresholdSize(n, b)
	t, err := NewThreshold(n, q)
	if err != nil {
		return nil, err
	}
	if t.minIntersect < b+1 {
		return nil, fmt.Errorf("quorum: internal: overlap %d < b+1", t.minIntersect)
	}
	t.name = fmt.Sprintf("dissem-threshold(n=%d,b=%d)", n, b)
	return t, nil
}

// NewMaskThreshold returns the strict b-masking threshold system: quorums of
// size ceil((n+2b+1)/2), guaranteeing overlap >= 2b+1 (Definition 2.7).
// Requires b <= floor((n-1)/4).
func NewMaskThreshold(n, b int) (*Threshold, error) {
	if b < 0 {
		return nil, fmt.Errorf("quorum: negative fault threshold %d", b)
	}
	if b > MaxMaskB(n) {
		return nil, fmt.Errorf("quorum: b=%d exceeds masking resilience bound %d for n=%d", b, MaxMaskB(n), n)
	}
	q := MaskThresholdSize(n, b)
	t, err := NewThreshold(n, q)
	if err != nil {
		return nil, err
	}
	if t.minIntersect < 2*b+1 {
		return nil, fmt.Errorf("quorum: internal: overlap %d < 2b+1", t.minIntersect)
	}
	t.name = fmt.Sprintf("mask-threshold(n=%d,b=%d)", n, b)
	return t, nil
}

// Name implements System.
func (t *Threshold) Name() string { return t.name }

// MinIntersect returns the guaranteed minimum overlap 2q-n of any two
// quorums.
func (t *Threshold) MinIntersect() int { return t.minIntersect }

// Singleton is the one-server quorum system {{u}}. It has the best possible
// failure probability p among strict systems when p >= 1/2 (Peleg-Wool), and
// appears as one branch of the strict lower-bound curve in Figures 1-3.
type Singleton struct {
	n  int
	id ServerID
}

var _ System = (*Singleton)(nil)

// NewSingleton returns the singleton system over n servers using server id.
func NewSingleton(n int, id ServerID) (*Singleton, error) {
	if n <= 0 || id < 0 || int(id) >= n {
		return nil, fmt.Errorf("quorum: singleton id %d outside universe of %d", id, n)
	}
	return &Singleton{n: n, id: id}, nil
}

// Name implements System.
func (s *Singleton) Name() string { return fmt.Sprintf("singleton(n=%d)", s.n) }

// N implements System.
func (s *Singleton) N() int { return s.n }

// QuorumSize implements System.
func (s *Singleton) QuorumSize() int { return 1 }

// Pick implements System.
func (s *Singleton) Pick(_ *rand.Rand) []ServerID { return []ServerID{s.id} }

// Load implements System: the single server carries every access.
func (s *Singleton) Load() float64 { return 1 }

// FaultTolerance implements System.
func (s *Singleton) FaultTolerance() int { return 1 }

// FailProb implements System.
func (s *Singleton) FailProb(p float64) float64 { return p }
