package quorum

import (
	"math"
	"math/rand"
	"testing"
)

// checkSpares validates the SpareSampler contract: the quorum matches the
// system's size and sorting invariants, spares are in-universe, and the two
// sets are disjoint (with no duplicate spares).
func checkSpares(t *testing.T, sys SpareSampler, r *rand.Rand, want int) {
	t.Helper()
	q, spare := sys.PickWithSpares(r, want)
	if len(q) == 0 {
		t.Fatalf("%s: empty quorum", sys.Name())
	}
	for i := 1; i < len(q); i++ {
		if q[i-1] >= q[i] {
			t.Fatalf("%s: quorum not strictly ascending: %v", sys.Name(), q)
		}
	}
	if len(spare) > want {
		t.Fatalf("%s: %d spares returned, want <= %d", sys.Name(), len(spare), want)
	}
	seen := map[ServerID]bool{}
	for _, id := range spare {
		if id < 0 || int(id) >= sys.N() {
			t.Fatalf("%s: spare %d outside universe", sys.Name(), id)
		}
		if Contains(q, id) {
			t.Fatalf("%s: spare %d also in quorum %v", sys.Name(), id, q)
		}
		if seen[id] {
			t.Fatalf("%s: duplicate spare %d", sys.Name(), id)
		}
		seen[id] = true
	}
}

func TestPickWithSparesContract(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	u, err := NewUniform(30, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(25)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := NewMaskGrid(36, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWeighted([]int{3, 1, 1, 1, 2, 2, 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []SpareSampler{u, g, bg, w} {
		for trial := 0; trial < 200; trial++ {
			checkSpares(t, sys, r, trial%5)
		}
	}
}

// TestPickWithSparesExhaustsUniverse asks for more spares than exist and
// expects the complement, not a panic.
func TestPickWithSparesExhaustsUniverse(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	u, err := NewUniform(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	q, spare := u.PickWithSpares(r, 100)
	if len(q) != 4 || len(spare) != 6 {
		t.Fatalf("got |q|=%d |spare|=%d, want 4 and 6", len(q), len(spare))
	}
}

// TestUniformSparesPreserveQuorumDistribution checks that asking for spares
// does not perturb the marginal access frequency of the primary quorum:
// every server should appear in the quorum with frequency ~ q/n, the load of
// the uniform strategy.
func TestUniformSparesPreserveQuorumDistribution(t *testing.T) {
	const n, q, spares, trials = 20, 5, 3, 40000
	u, err := NewUniform(n, q)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		quor, _ := u.PickWithSpares(r, spares)
		for _, id := range quor {
			counts[id]++
		}
	}
	want := float64(q) / float64(n)
	for id, c := range counts {
		got := float64(c) / float64(trials)
		if math.Abs(got-want) > 0.015 {
			t.Errorf("server %d quorum frequency %.4f, want %.4f +/- 0.015", id, got, want)
		}
	}
}

// TestWeightedSparesFollowPermutation checks the weighted strategy's spares
// are exactly the servers the permutation-prefix strategy would have asked
// next: quorum and spares together never repeat a server and cover votes in
// permutation order.
func TestWeightedSparesFollowPermutation(t *testing.T) {
	w, err := NewWeighted([]int{1, 1, 1, 1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		q, spare := w.PickWithSpares(r, 2)
		if len(q) != 3 || len(spare) != 2 {
			t.Fatalf("got |q|=%d |spare|=%d, want 3 and 2", len(q), len(spare))
		}
	}
}
