package quorum

import (
	"fmt"
	"math/rand"
)

// SpareSampler is implemented by systems whose access strategy can produce,
// alongside one quorum, a ranked list of spare servers to promote when a
// quorum member fails or lags (hedged access). Spares are drawn from outside
// the returned quorum by the same randomness that drives the strategy, in
// promotion order: spares[0] is dispatched first.
//
// The intersection analysis of each construction applies to the quorum as
// sampled. Promoting a spare only when a member is observed to have failed
// (or to be slower than a hedge delay that is independent of server
// identity) is the same conditioning the retrying client already documents:
// the access set that completes is the strategy's sample conditioned on
// having answered, so the attempt-level ε argument carries over. The sim
// package's consistency harness and the empirical-ε benchmarks measure
// exactly this with hedging enabled.
type SpareSampler interface {
	System
	// PickWithSpares samples one quorum plus up to spares extra servers.
	// The quorum slice is sorted ascending exactly as Pick's; the spare
	// slice is in promotion order and disjoint from the quorum. Fewer
	// spares than requested are returned when the universe runs out.
	PickWithSpares(r *rand.Rand, spares int) (q, spare []ServerID)
}

// SampleKWithSpares draws k+spares distinct values uniformly from
// {0, ..., n-1} and splits them: the first k (sorted ascending) form the
// primary sample, the rest stay in draw order as spares. The primary sample
// has exactly the distribution of SampleK(r, n, k); the spares are uniform
// over the complement, so promotion by failure keeps the completed set
// uniform over live k-subsets.
func SampleKWithSpares(r *rand.Rand, n, k, spares int) (q, spare []ServerID) {
	if spares < 0 {
		spares = 0
	}
	if spares > n-k {
		spares = n - k
	}
	all := SampleKUnsorted(r, n, k+spares)
	q = all[:k:k]
	spare = all[k:]
	sortIDs(q)
	return q, spare
}

// SampleKUnsorted is SampleK in uniformly random order: k distinct values
// uniformly drawn from {0, ..., n-1}, in draw order. It samples the subset
// with Floyd's algorithm and shuffles it, which has exactly the distribution
// of the k-prefix of a Fisher-Yates permutation (uniform subset x uniform
// order) at O(k) instead of O(n) space.
func SampleKUnsorted(r *rand.Rand, n, k int) []ServerID {
	if k < 0 || k > n {
		panic("quorum: SampleKUnsorted outside domain")
	}
	out := SampleKInto(r, n, k, make([]ServerID, 0, k))
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// sampleComplement draws up to want distinct servers uniformly from the
// universe {0, ..., n-1} minus the ascending-sorted set q, in draw order.
func sampleComplement(r *rand.Rand, n int, q []ServerID, want int) []ServerID {
	avail := n - len(q)
	if want > avail {
		want = avail
	}
	if want <= 0 {
		return nil
	}
	rest := make([]ServerID, 0, avail)
	for i := 0; i < n; i++ {
		if !Contains(q, ServerID(i)) {
			rest = append(rest, ServerID(i))
		}
	}
	for i := 0; i < want; i++ {
		j := i + r.Intn(len(rest)-i)
		rest[i], rest[j] = rest[j], rest[i]
	}
	return rest[:want:want]
}

// PickWithSpares implements SpareSampler: the quorum is a uniform q-subset
// (identical in distribution to Pick) and the spares are uniform over the
// remaining servers.
func (u *Uniform) PickWithSpares(r *rand.Rand, spares int) ([]ServerID, []ServerID) {
	return SampleKWithSpares(r, u.n, u.q, spares)
}

// PickWithSpares implements SpareSampler: the quorum is Pick's row+column;
// spares are uniform over the remaining cells. A promoted spare substitutes
// for a failed or lagging cell in count-based acceptance; the strict
// row/column structure is carried by the original sample.
func (g *Grid) PickWithSpares(r *rand.Rand, spares int) ([]ServerID, []ServerID) {
	q := g.Pick(r)
	return q, sampleComplement(r, g.N(), q, spares)
}

// PickWithSpares implements SpareSampler: Pick's r rows + r columns, with
// spares uniform over the remaining cells (see Grid.PickWithSpares).
func (g *ByzGrid) PickWithSpares(rnd *rand.Rand, spares int) ([]ServerID, []ServerID) {
	q := g.Pick(rnd)
	return q, sampleComplement(rnd, g.N(), q, spares)
}

// PickWithSpares implements SpareSampler. The strategy already asks servers
// in a uniformly random order and stops at the vote threshold, so the spares
// are simply the next servers of the same permutation — exactly the servers
// the strategy would have asked next had a member been dead.
func (w *Weighted) PickWithSpares(r *rand.Rand, spares int) ([]ServerID, []ServerID) {
	perm := r.Perm(len(w.votes))
	got := 0
	cut := 0
	var out []ServerID
	for i, idx := range perm {
		out = append(out, ServerID(idx))
		got += w.votes[idx]
		if got >= w.t {
			cut = i + 1
			break
		}
	}
	if got < w.t {
		// NewWeighted guarantees threshold <= total votes, so even the full
		// permutation reaching fewer than t votes means the invariant was
		// broken (a zero-value or mutated Weighted). Returning the whole
		// universe as a "quorum" here would silently void the intersection
		// guarantee every ε bound rests on — fail loudly instead.
		panic(fmt.Sprintf("quorum: weighted votes total %d below threshold %d; Weighted must be built with NewWeighted", got, w.t))
	}
	sortIDs(out)
	if spares > len(perm)-cut {
		spares = len(perm) - cut
	}
	if spares < 0 {
		spares = 0
	}
	spare := make([]ServerID, 0, spares)
	for _, idx := range perm[cut : cut+spares] {
		spare = append(spare, ServerID(idx))
	}
	return out, spare
}

var (
	_ SpareSampler = (*Uniform)(nil)
	_ SpareSampler = (*Threshold)(nil) // via embedded Uniform
	_ SpareSampler = (*Grid)(nil)
	_ SpareSampler = (*ByzGrid)(nil)
	_ SpareSampler = (*Weighted)(nil)
)
