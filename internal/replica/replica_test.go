package replica

import (
	"context"
	"errors"
	"sync"
	"testing"

	"pqs/internal/ts"
	"pqs/internal/wire"
)

func TestStoreApplyLastWriterWins(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("x"); ok {
		t.Error("empty store returned a value")
	}
	if !s.Apply("x", Entry{Value: []byte("v1"), Stamp: ts.Stamp{Counter: 1}}) {
		t.Error("first apply rejected")
	}
	if !s.Apply("x", Entry{Value: []byte("v2"), Stamp: ts.Stamp{Counter: 2}}) {
		t.Error("newer apply rejected")
	}
	// Older or equal stamps must not regress the value.
	if s.Apply("x", Entry{Value: []byte("old"), Stamp: ts.Stamp{Counter: 1}}) {
		t.Error("older apply accepted")
	}
	if s.Apply("x", Entry{Value: []byte("dup"), Stamp: ts.Stamp{Counter: 2}}) {
		t.Error("equal-stamp apply accepted")
	}
	e, ok := s.Get("x")
	if !ok || string(e.Value) != "v2" {
		t.Errorf("final entry %+v", e)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStoreSnapshotAndKeys(t *testing.T) {
	s := NewStore()
	s.Apply("a", Entry{Value: []byte("1"), Stamp: ts.Stamp{Counter: 1}})
	s.Apply("b", Entry{Value: []byte("2"), Stamp: ts.Stamp{Counter: 1}})
	snap := s.Snapshot()
	if len(snap) != 2 || string(snap["a"].Value) != "1" {
		t.Errorf("snapshot %+v", snap)
	}
	// Mutating the snapshot must not affect the store.
	snap["a"] = Entry{Value: []byte("oops"), Stamp: ts.Stamp{Counter: 99}}
	if e, _ := s.Get("a"); string(e.Value) != "1" {
		t.Error("snapshot aliases store")
	}
	if got := s.Keys(); len(got) != 2 {
		t.Errorf("Keys = %v", got)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 200; i++ {
				s.Apply("x", Entry{Value: []byte{byte(g)}, Stamp: ts.Stamp{Counter: uint64(i), Writer: uint32(g)}})
				s.Get("x")
			}
		}(g)
	}
	wg.Wait()
	e, ok := s.Get("x")
	if !ok || e.Stamp.Counter != 200 {
		t.Errorf("final stamp %v", e.Stamp)
	}
}

func write(t *testing.T, r *Replica, key, val string, c uint64) wire.WriteReply {
	t.Helper()
	resp, err := r.Handle(context.Background(), wire.WriteRequest{
		Key: key, Value: []byte(val), Stamp: ts.Stamp{Counter: c, Writer: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.(wire.WriteReply)
}

func read(t *testing.T, r *Replica, key string) (wire.ReadReply, error) {
	t.Helper()
	resp, err := r.Handle(context.Background(), wire.ReadRequest{Key: key})
	if err != nil {
		return wire.ReadReply{}, err
	}
	return resp.(wire.ReadReply), nil
}

func TestReplicaReadWrite(t *testing.T) {
	r := New(3)
	if r.ID() != 3 {
		t.Errorf("ID = %d", r.ID())
	}
	if rep := write(t, r, "x", "hello", 1); !rep.Stored {
		t.Error("write not stored")
	}
	got, err := read(t, r, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || string(got.Value) != "hello" || got.Stamp.Counter != 1 {
		t.Errorf("read = %+v", got)
	}
	// Reading a missing key reports Found=false, no error.
	got, err = read(t, r, "missing")
	if err != nil || got.Found {
		t.Errorf("missing key: %+v, %v", got, err)
	}
	// Stale write is acknowledged but not stored.
	write(t, r, "x", "new", 5)
	if rep := write(t, r, "x", "older", 2); rep.Stored {
		t.Error("older write stored")
	}
}

func TestReplicaPingAndUnknown(t *testing.T) {
	r := New(7)
	resp, err := r.Handle(context.Background(), wire.PingRequest{})
	if err != nil || resp.(wire.PingReply).ServerID != 7 {
		t.Errorf("ping: %+v, %v", resp, err)
	}
	if _, err := r.Handle(context.Background(), struct{ X int }{1}); err == nil {
		t.Error("unknown request type accepted")
	}
}

func TestForgerBehavior(t *testing.T) {
	r := New(0)
	write(t, r, "x", "genuine", 1)
	forged := Forger{Value: []byte("evil"), Stamp: ts.Stamp{Counter: 1 << 40}}
	r.SetBehavior(forged)
	got, err := read(t, r, "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Value) != "evil" || got.Stamp.Counter != 1<<40 {
		t.Errorf("forger read = %+v", got)
	}
	// Forger discards writes but still acknowledges.
	rep := write(t, r, "x", "update", 9)
	if rep.Stored {
		t.Error("forger claimed to store")
	}
	r.SetBehavior(Correct{})
	got, _ = read(t, r, "x")
	if string(got.Value) != "genuine" {
		t.Errorf("store was corrupted by forger: %+v", got)
	}
}

func TestStaleBehavior(t *testing.T) {
	r := New(0)
	write(t, r, "x", "v1", 1)
	r.SetBehavior(Stale{})
	write(t, r, "x", "v2", 2)
	got, _ := read(t, r, "x")
	if string(got.Value) != "v1" {
		t.Errorf("stale replica should still serve v1, got %+v", got)
	}
}

func TestSilentBehavior(t *testing.T) {
	r := New(0)
	write(t, r, "x", "v1", 1)
	r.SetBehavior(Silent{})
	if _, err := read(t, r, "x"); !errors.Is(err, ErrSuppressed) {
		t.Errorf("silent read err = %v", err)
	}
	if _, err := r.Handle(context.Background(), wire.WriteRequest{Key: "x"}); !errors.Is(err, ErrSuppressed) {
		t.Errorf("silent write err = %v", err)
	}
	r.SetBehavior(nil) // nil resets to correct
	if _, err := read(t, r, "x"); err != nil {
		t.Errorf("after reset: %v", err)
	}
}

func TestGossipMerge(t *testing.T) {
	a, b := New(0), New(1)
	a.Store().Apply("x", Entry{Value: []byte("newer"), Stamp: ts.Stamp{Counter: 5, Writer: 1}})
	a.Store().Apply("only-a", Entry{Value: []byte("A"), Stamp: ts.Stamp{Counter: 1, Writer: 1}})
	b.Store().Apply("x", Entry{Value: []byte("older"), Stamp: ts.Stamp{Counter: 2, Writer: 1}})
	b.Store().Apply("only-b", Entry{Value: []byte("B"), Stamp: ts.Stamp{Counter: 1, Writer: 1}})

	// a pushes its state to b; b adopts newer entries and returns what a lacks.
	var push wire.GossipRequest
	for k, e := range a.Store().Snapshot() {
		push.Entries = append(push.Entries, wire.Item{Key: k, Value: e.Value, Stamp: e.Stamp, Sig: e.Sig})
	}
	resp, err := b.Handle(context.Background(), push)
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := b.Store().Get("x"); string(e.Value) != "newer" {
		t.Errorf("b did not adopt newer x: %+v", e)
	}
	if e, _ := b.Store().Get("only-a"); string(e.Value) != "A" {
		t.Errorf("b did not adopt only-a: %+v", e)
	}
	reply := resp.(wire.GossipReply)
	found := false
	for _, item := range reply.Entries {
		if item.Key == "x" && string(item.Value) == "older" {
			t.Error("b returned dominated entry")
		}
		if item.Key == "only-b" {
			found = true
		}
	}
	if !found {
		t.Error("b did not return only-b")
	}
}

func TestGossipVerifierBlocksForgeries(t *testing.T) {
	r := New(0)
	r.Store().Apply("x", Entry{Value: []byte("good"), Stamp: ts.Stamp{Counter: 1, Writer: 1}})
	// Verifier accepts only entries whose sig equals "valid".
	r.SetVerifier(func(_ string, _ []byte, _ ts.Stamp, sig []byte) bool {
		return string(sig) == "valid"
	})
	push := wire.GossipRequest{Entries: []wire.Item{
		{Key: "x", Value: []byte("forged"), Stamp: ts.Stamp{Counter: 99, Writer: 1}, Sig: []byte("bogus")},
		{Key: "y", Value: []byte("legit"), Stamp: ts.Stamp{Counter: 1, Writer: 1}, Sig: []byte("valid")},
	}}
	if _, err := r.Handle(context.Background(), push); err != nil {
		t.Fatal(err)
	}
	if e, _ := r.Store().Get("x"); string(e.Value) != "good" {
		t.Errorf("forged entry accepted: %+v", e)
	}
	if e, ok := r.Store().Get("y"); !ok || string(e.Value) != "legit" {
		t.Errorf("valid entry rejected: %+v", e)
	}
}
