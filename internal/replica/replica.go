package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pqs/internal/quorum"
	"pqs/internal/ts"
	"pqs/internal/vtime"
	"pqs/internal/wire"
)

// ErrSuppressed is returned by silent (fail-stop-on-read) behaviors.
var ErrSuppressed = errors.New("replica: reply suppressed")

// Verifier decides whether an incoming entry is acceptable. Used on the
// gossip path to keep Byzantine peers from injecting fabricated state when
// self-verifying data is in use; nil accepts everything (benign model).
type Verifier func(key string, value []byte, stamp ts.Stamp, sig []byte) bool

// Behavior customizes how a replica answers, enabling Byzantine fault
// injection. Correct servers use Correct{}.
type Behavior interface {
	// OnRead may rewrite the correct reply arbitrarily, or suppress it by
	// returning an error.
	OnRead(key string, correct wire.ReadReply) (wire.ReadReply, error)
	// OnWrite reports whether the write should be applied to the store.
	// Returning false with nil error acknowledges the write without
	// performing it (a lying server); returning an error refuses it.
	OnWrite(req wire.WriteRequest) (bool, error)
}

// Correct is the specified (non-faulty) behavior.
type Correct struct{}

// OnRead implements Behavior.
func (Correct) OnRead(_ string, correct wire.ReadReply) (wire.ReadReply, error) {
	return correct, nil
}

// OnWrite implements Behavior.
func (Correct) OnWrite(wire.WriteRequest) (bool, error) { return true, nil }

// Forger fabricates a value with an overwhelming timestamp on every read and
// discards writes. Against self-verifying data its replies carry no valid
// signature, so dissemination readers reject them; against a masking system
// it is defeated only by the threshold k. Colluding forgers share Value and
// Stamp so their replies count toward the same candidate.
type Forger struct {
	Value []byte
	Stamp ts.Stamp
	// Sig, if set, is attached to the forged reply (e.g. a stolen stale
	// signature, which will not verify against the forged value).
	Sig []byte
}

// OnRead implements Behavior.
func (f Forger) OnRead(_ string, _ wire.ReadReply) (wire.ReadReply, error) {
	return wire.ReadReply{Found: true, Value: f.Value, Stamp: f.Stamp, Sig: f.Sig}, nil
}

// OnWrite implements Behavior: acknowledges without storing.
func (f Forger) OnWrite(wire.WriteRequest) (bool, error) { return false, nil }

// Stale acknowledges writes without applying them, so the replica forever
// serves whatever it held when the behavior was installed. This models the
// "old value" adversary, which timestamps alone must defeat.
type Stale struct{}

// OnRead implements Behavior.
func (Stale) OnRead(_ string, correct wire.ReadReply) (wire.ReadReply, error) {
	return correct, nil
}

// OnWrite implements Behavior.
func (Stale) OnWrite(wire.WriteRequest) (bool, error) { return false, nil }

// Delayed wraps a behavior with a fixed artificial delay before every
// answer, turning a live server into a straggler. It is the fault-injection
// counterpart of MemNetwork's per-server latency for transports (like TCP)
// that carry real traffic and cannot inject delay themselves. A nil Inner
// delays Correct behavior; a nil Clock sleeps on the wall clock, while the
// harnesses inject a vtime.SimClock so the delay is virtual.
type Delayed struct {
	Inner Behavior
	Delay time.Duration
	Clock vtime.Clock
}

func (d Delayed) inner() Behavior {
	if d.Inner == nil {
		return Correct{}
	}
	return d.Inner
}

// OnRead implements Behavior.
func (d Delayed) OnRead(key string, correct wire.ReadReply) (wire.ReadReply, error) {
	vtime.Or(d.Clock).Sleep(d.Delay)
	return d.inner().OnRead(key, correct)
}

// OnWrite implements Behavior.
func (d Delayed) OnWrite(req wire.WriteRequest) (bool, error) {
	vtime.Or(d.Clock).Sleep(d.Delay)
	return d.inner().OnWrite(req)
}

// Silent suppresses all replies (reads fail, writes are dropped), modelling
// a server that is up but mute — indistinguishable from a crash to clients.
type Silent struct{}

// OnRead implements Behavior.
func (Silent) OnRead(string, wire.ReadReply) (wire.ReadReply, error) {
	return wire.ReadReply{}, ErrSuppressed
}

// OnWrite implements Behavior.
func (Silent) OnWrite(wire.WriteRequest) (bool, error) { return false, ErrSuppressed }

// The two possible write replies, boxed once (see Handle).
var (
	writeReplyStored  any = wire.WriteReply{Stored: true}
	writeReplyIgnored any = wire.WriteReply{Stored: false}
)

// Replica is one data server. It implements transport.Handler.
type Replica struct {
	id    quorum.ServerID
	store *Store

	mu       sync.RWMutex
	behavior Behavior
	verifier Verifier
}

// New returns a correct replica with an empty store.
func New(id quorum.ServerID) *Replica {
	return &Replica{id: id, store: NewStore(), behavior: Correct{}}
}

// ID returns the replica's server id.
func (r *Replica) ID() quorum.ServerID { return r.id }

// Store exposes the replica's local state (used by the diffusion engine and
// by tests).
func (r *Replica) Store() *Store { return r.store }

// SetBehavior swaps the replica's behavior (fault injection).
func (r *Replica) SetBehavior(b Behavior) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b == nil {
		b = Correct{}
	}
	r.behavior = b
}

// SetVerifier installs the entry verifier used on the gossip merge path.
func (r *Replica) SetVerifier(v Verifier) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.verifier = v
}

func (r *Replica) current() (Behavior, Verifier) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.behavior, r.verifier
}

// Handle implements transport.Handler.
func (r *Replica) Handle(_ context.Context, req any) (any, error) {
	behavior, verifier := r.current()
	switch m := req.(type) {
	case wire.ReadRequest:
		var correct wire.ReadReply
		if e, ok := r.store.Get(m.Key); ok {
			correct = wire.ReadReply{Found: true, Value: e.Value, Stamp: e.Stamp, Sig: e.Sig}
		}
		return behavior.OnRead(m.Key, correct)
	case wire.WriteRequest:
		apply, err := behavior.OnWrite(m)
		if err != nil {
			return nil, err
		}
		stored := false
		if apply {
			stored = r.store.Apply(m.Key, Entry{Value: m.Value, Stamp: m.Stamp, Sig: m.Sig})
		}
		// Pre-boxed: a fresh wire.WriteReply literal would allocate on every
		// boxing into `any`, and the write path runs millions of times in
		// population-scale runs.
		if stored {
			return writeReplyStored, nil
		}
		return writeReplyIgnored, nil
	case wire.GossipRequest:
		return r.handleGossip(m, verifier), nil
	case wire.GossipDeltaRequest:
		return r.handleGossipDelta(m, verifier), nil
	case wire.PingRequest:
		return wire.PingReply{ServerID: int(r.id)}, nil
	default:
		// No retry can make an unsupported request type succeed; the marker
		// travels to clients as wire.ErrKindPermanent.
		return nil, wire.PermanentError(fmt.Errorf("replica %d: unknown request type %T", r.id, req))
	}
}

// handleGossip merges the initiator's entries into the local store (subject
// to the verifier) and returns entries where the local copy dominates or
// the initiator mentioned nothing.
func (r *Replica) handleGossip(m wire.GossipRequest, verify Verifier) wire.GossipReply {
	offered := make(map[string]ts.Stamp, len(m.Entries))
	for _, e := range m.Entries {
		offered[e.Key] = e.Stamp
		if verify != nil && !verify(e.Key, e.Value, e.Stamp, e.Sig) {
			continue
		}
		r.store.Apply(e.Key, Entry{Value: e.Value, Stamp: e.Stamp, Sig: e.Sig})
	}
	var reply wire.GossipReply
	for key, e := range r.store.Snapshot() {
		if st, ok := offered[key]; ok && !st.Less(e.Stamp) {
			continue
		}
		reply.Entries = append(reply.Entries, wire.Item{Key: key, Value: e.Value, Stamp: e.Stamp, Sig: e.Sig})
	}
	return reply
}

// handleGossipDelta answers the watermark-bounded anti-entropy exchange: it
// merges the initiator's entries (subject to the verifier) and returns the
// local entries adopted in (Since, UpTo] of this store's own sequence. The
// handler keeps no per-peer state — the initiator owns the watermarks.
func (r *Replica) handleGossipDelta(m wire.GossipDeltaRequest, verify Verifier) wire.GossipDeltaReply {
	// Bound the reply at the sequence observed BEFORE merging, so entries
	// this very request delivered are not echoed straight back at their
	// sender; the initiator pulls anything adopted past cur next round.
	cur := r.store.Seq()
	for _, e := range m.Entries {
		if verify != nil && !verify(e.Key, e.Value, e.Stamp, e.Sig) {
			continue
		}
		r.store.Apply(e.Key, Entry{Value: e.Value, Stamp: e.Stamp, Sig: e.Sig})
	}
	since := m.Since
	if since > cur {
		// The initiator has pulled past our current sequence: we lost
		// state (restart). Answer with a full pull so it can re-sync.
		since = 0
	}
	changes := r.store.Changes(since, cur)
	reply := wire.GossipDeltaReply{UpTo: cur}
	if len(changes) > 0 {
		reply.Entries = make([]wire.Item, 0, len(changes))
	}
	for _, c := range changes {
		reply.Entries = append(reply.Entries, wire.Item{Key: c.Key, Value: c.Entry.Value, Stamp: c.Entry.Stamp, Sig: c.Entry.Sig})
	}
	return reply
}
