package replica

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pqs/internal/ts"
)

// TestStoreApplyOrderIndependence verifies the core convergence invariant
// of timestamped last-writer-wins state: applying any permutation of the
// same entry set leaves the store holding the maximum-stamp entry per key.
// This is what makes both the write protocol and diffusion merges safe to
// reorder and repeat.
func TestStoreApplyOrderIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nEntries := 1 + rng.Intn(20)
		keys := []string{"a", "b", "c"}
		entries := make([]struct {
			key string
			e   Entry
		}, nEntries)
		for i := range entries {
			entries[i].key = keys[rng.Intn(len(keys))]
			entries[i].e = Entry{
				Value: []byte{byte(i)},
				Stamp: ts.Stamp{Counter: uint64(rng.Intn(6)), Writer: uint32(rng.Intn(3))},
			}
		}
		// Expected winner per key: maximum stamp, first occurrence among
		// equal stamps (Apply rejects non-strict improvements).
		want := make(map[string]Entry)
		for _, en := range entries {
			cur, ok := want[en.key]
			if !ok || cur.Stamp.Less(en.e.Stamp) {
				want[en.key] = en.e
			}
		}
		// Apply in two different orders.
		s1, s2 := NewStore(), NewStore()
		for _, en := range entries {
			s1.Apply(en.key, en.e)
		}
		perm := rng.Perm(nEntries)
		for _, i := range perm {
			s2.Apply(entries[i].key, entries[i].e)
		}
		for key, w := range want {
			g1, ok1 := s1.Get(key)
			g2, ok2 := s2.Get(key)
			if !ok1 || !ok2 {
				return false
			}
			// Stamps must agree with the max and with each other; values
			// may differ only among equal stamps, which Apply breaks by
			// arrival order — so compare stamps, the protocol-visible part.
			if g1.Stamp != w.Stamp || g2.Stamp != w.Stamp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStoreApplyIdempotent verifies that re-applying the same entry never
// changes the outcome (diffusion re-delivers entries constantly).
func TestStoreApplyIdempotent(t *testing.T) {
	f := func(c uint64, w uint32, v byte) bool {
		s := NewStore()
		e := Entry{Value: []byte{v}, Stamp: ts.Stamp{Counter: c%100 + 1, Writer: w % 8}}
		first := s.Apply("k", e)
		second := s.Apply("k", e)
		got, ok := s.Get("k")
		return first && !second && ok && got.Stamp == e.Stamp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
