// Package replica implements the data servers of the paper's model: each
// server "stores a copy of the replicated variable x and an associated
// timestamp t" (Section 3.1) and answers the read/write RPCs of the access
// protocols. Fault injection is first-class: a replica can be configured
// with a Behavior that deviates arbitrarily from the protocol, which is how
// the experiment harness realizes the paper's Byzantine failure model.
package replica

import (
	"sync"
	"sync/atomic"

	"pqs/internal/ts"
)

// Entry is one stored value-timestamp pair, with the writer's signature when
// self-verifying data is in use.
type Entry struct {
	Value []byte
	Stamp ts.Stamp
	Sig   []byte
}

// numShards is the store's shard count. The load analysis puts ~l*sqrt(n)
// concurrent accesses on a busy replica; 64 shards keep the probability of
// two concurrent distinct-key operations colliding on a shard's lock small
// without bloating the zero-value footprint. Must be a power of two.
const numShards = 64

// Store is a replica's local key-value state, sharded by key hash so that
// operations on distinct keys proceed without contending on a single lock.
// It is safe for concurrent use.
type Store struct {
	shards [numShards]shard

	// op counters (cumulative; see Stats)
	gets, applies, adopted atomic.Uint64
}

type shard struct {
	mu sync.RWMutex
	m  map[string]Entry
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]Entry)
	}
	return s
}

// shardFor hashes key with FNV-1a (inlined; hash/fnv would allocate a
// hasher per call) and selects a shard.
func (s *Store) shardFor(key string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &s.shards[h&(numShards-1)]
}

// Get returns the entry for key, if any.
func (s *Store) Get(key string) (Entry, bool) {
	s.gets.Add(1)
	sh := s.shardFor(key)
	sh.mu.RLock()
	e, ok := sh.m[key]
	sh.mu.RUnlock()
	return e, ok
}

// Apply adopts the entry if its stamp strictly dominates the stored one
// (last-writer-wins merge; the standard timestamped-register update). It
// reports whether the entry was adopted.
func (s *Store) Apply(key string, e Entry) bool {
	s.applies.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	cur, ok := sh.m[key]
	if ok && !cur.Stamp.Less(e.Stamp) {
		sh.mu.Unlock()
		return false
	}
	sh.m[key] = e
	sh.mu.Unlock()
	s.adopted.Add(1)
	return true
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Keys returns all stored keys (unordered).
func (s *Store) Keys() []string {
	out := make([]string, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Snapshot returns a copy of the full key-entry map. Entries share the
// underlying value slices, which callers must treat as immutable (every
// write path in this library stores fresh slices). The snapshot is
// per-shard-consistent, not point-in-time across shards: concurrent writes
// may appear in some shards and not others, which is harmless to the gossip
// path (anti-entropy converges regardless of which rounds see which
// entries).
func (s *Store) Snapshot() map[string]Entry {
	out := make(map[string]Entry, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			out[k] = v
		}
		sh.mu.RUnlock()
	}
	return out
}

// StoreStats reports a store's shape and cumulative operation counters.
type StoreStats struct {
	// Keys is the number of stored keys; Shards the shard count.
	Keys   int
	Shards int
	// MaxShardKeys is the most keys held by one shard (skew indicator).
	MaxShardKeys int
	// Gets and Applies count operations; Adopted counts the Applies whose
	// entry won the last-writer-wins merge.
	Gets    uint64
	Applies uint64
	Adopted uint64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Shards:  numShards,
		Gets:    s.gets.Load(),
		Applies: s.applies.Load(),
		Adopted: s.adopted.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n := len(sh.m)
		sh.mu.RUnlock()
		st.Keys += n
		if n > st.MaxShardKeys {
			st.MaxShardKeys = n
		}
	}
	return st
}
