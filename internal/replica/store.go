// Package replica implements the data servers of the paper's model: each
// server "stores a copy of the replicated variable x and an associated
// timestamp t" (Section 3.1) and answers the read/write RPCs of the access
// protocols. Fault injection is first-class: a replica can be configured
// with a Behavior that deviates arbitrarily from the protocol, which is how
// the experiment harness realizes the paper's Byzantine failure model.
package replica

import (
	"sync"

	"pqs/internal/ts"
)

// Entry is one stored value-timestamp pair, with the writer's signature when
// self-verifying data is in use.
type Entry struct {
	Value []byte
	Stamp ts.Stamp
	Sig   []byte
}

// Store is a replica's local key-value state. It is safe for concurrent use.
type Store struct {
	mu sync.RWMutex
	m  map[string]Entry
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{m: make(map[string]Entry)}
}

// Get returns the entry for key, if any.
func (s *Store) Get(key string) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.m[key]
	return e, ok
}

// Apply adopts the entry if its stamp strictly dominates the stored one
// (last-writer-wins merge; the standard timestamped-register update). It
// reports whether the entry was adopted.
func (s *Store) Apply(key string, e Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.m[key]
	if ok && !cur.Stamp.Less(e.Stamp) {
		return false
	}
	s.m[key] = e
	return true
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Keys returns all stored keys (unordered).
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	return out
}

// Snapshot returns a copy of the full key-entry map. Entries share the
// underlying value slices, which callers must treat as immutable (every
// write path in this library stores fresh slices).
func (s *Store) Snapshot() map[string]Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Entry, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	return out
}
