// Package replica implements the data servers of the paper's model: each
// server "stores a copy of the replicated variable x and an associated
// timestamp t" (Section 3.1) and answers the read/write RPCs of the access
// protocols. Fault injection is first-class: a replica can be configured
// with a Behavior that deviates arbitrarily from the protocol, which is how
// the experiment harness realizes the paper's Byzantine failure model.
package replica

import (
	"sort"
	"sync"
	"sync/atomic"

	"pqs/internal/ts"
	"pqs/internal/wire"
)

// Entry is one stored value-timestamp pair, with the writer's signature when
// self-verifying data is in use.
type Entry struct {
	Value []byte
	Stamp ts.Stamp
	Sig   []byte
}

// numShards is the store's shard count. The load analysis puts ~l*sqrt(n)
// concurrent accesses on a busy replica; 64 shards keep the probability of
// two concurrent distinct-key operations colliding on a shard's lock small
// without bloating the zero-value footprint. Must be a power of two.
const numShards = 64

// Store is a replica's local key-value state, sharded by key hash so that
// operations on distinct keys proceed without contending on a single lock.
// It is safe for concurrent use.
type Store struct {
	shards [numShards]shard

	// seq is the store-wide adoption sequence: every Apply that wins the
	// last-writer-wins merge draws the next number and records it against
	// the key, giving delta gossip a high-watermark to scan from
	// (Changes). Sequence numbers are store-local bookkeeping — they are
	// never serialized and two replicas' sequences are unrelated.
	seq atomic.Uint64

	// op counters (cumulative; see Stats)
	gets, applies, adopted atomic.Uint64
}

type shard struct {
	mu sync.RWMutex
	m  map[string]stored
	// bytes tracks the summed binary wire size (wire.Item.EncodedSize) of
	// the shard's current entries, so "what would a full push cost"
	// stays O(shards) to answer instead of O(keys).
	bytes int64
}

// stored is a shard's record for one key: the entry, its adoption sequence
// number (see Store.seq) and its cached wire size. Keeping all three
// inline in one map — values, not pointers — matters at population scale:
// a parallel seq map would double the hash work on the Apply fast path,
// and boxing records behind pointers adds millions of GC-scannable
// objects (measured ~10% slower end-to-end on the scale/ matrix). The
// cached size makes the re-write path's bytes accounting one EncodedSize
// call instead of two.
type stored struct {
	e    Entry
	seq  uint64
	size int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]stored)
	}
	return s
}

// shardFor hashes key with FNV-1a (inlined; hash/fnv would allocate a
// hasher per call) and selects a shard.
func (s *Store) shardFor(key string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &s.shards[h&(numShards-1)]
}

// Get returns the entry for key, if any.
func (s *Store) Get(key string) (Entry, bool) {
	s.gets.Add(1)
	sh := s.shardFor(key)
	sh.mu.RLock()
	st, ok := sh.m[key]
	sh.mu.RUnlock()
	return st.e, ok
}

// Apply adopts the entry if its stamp strictly dominates the stored one
// (last-writer-wins merge; the standard timestamped-register update). It
// reports whether the entry was adopted.
func (s *Store) Apply(key string, e Entry) bool {
	s.applies.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	cur, ok := sh.m[key]
	if ok && !cur.e.Stamp.Less(e.Stamp) {
		sh.mu.Unlock()
		return false
	}
	// The sequence number is drawn under the shard lock so that any
	// number at or below a Seq() observation is visible to a subsequent
	// Changes scan of this shard (the scan serializes on the same lock).
	size := int64(itemWireSize(key, e))
	sh.m[key] = stored{e: e, seq: s.seq.Add(1), size: size}
	sh.bytes += size
	if ok {
		sh.bytes -= cur.size
	}
	sh.mu.Unlock()
	s.adopted.Add(1)
	return true
}

// itemWireSize is the exact binary-codec size of the entry as a gossip item.
func itemWireSize(key string, e Entry) int {
	return wire.Item{Key: key, Value: e.Value, Stamp: e.Stamp, Sig: e.Sig}.EncodedSize()
}

// Seq returns the store's current adoption sequence. Entries adopted at or
// below the returned value are guaranteed visible to a later Changes scan.
func (s *Store) Seq() uint64 { return s.seq.Load() }

// WireSize returns the summed binary wire size of all current entries — the
// payload cost a full-snapshot gossip push would incur right now.
func (s *Store) WireSize() int64 {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.bytes
		sh.mu.RUnlock()
	}
	return n
}

// Change is one entry surfaced by Changes, with the adoption sequence it was
// recorded under.
type Change struct {
	Key   string
	Entry Entry
	Seq   uint64
}

// Changes returns the entries adopted with sequence numbers in
// (since, upTo], ordered by ascending sequence. The ordering is
// deterministic (map iteration order never leaks into the result), which
// matters on simulated transports: gossip frame bytes — and therefore
// compressed frame sizes and virtual-link pacing — must replay identically
// for a given seed. The scan is O(keys); a store-side ring of recent
// adoptions could make it O(delta) if gossip rounds ever dominate profiles.
func (s *Store) Changes(since, upTo uint64) []Change {
	if upTo <= since {
		return nil
	}
	var out []Change
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, st := range sh.m {
			if st.seq > since && st.seq <= upTo {
				out = append(out, Change{Key: k, Entry: st.e, Seq: st.seq})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Keys returns all stored keys (unordered).
func (s *Store) Keys() []string {
	out := make([]string, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Snapshot returns a copy of the full key-entry map. Entries share the
// underlying value slices, which callers must treat as immutable (every
// write path in this library stores fresh slices). The snapshot is
// per-shard-consistent, not point-in-time across shards: concurrent writes
// may appear in some shards and not others, which is harmless to the gossip
// path (anti-entropy converges regardless of which rounds see which
// entries).
func (s *Store) Snapshot() map[string]Entry {
	out := make(map[string]Entry, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, st := range sh.m {
			out[k] = st.e
		}
		sh.mu.RUnlock()
	}
	return out
}

// StoreStats reports a store's shape and cumulative operation counters.
type StoreStats struct {
	// Keys is the number of stored keys; Shards the shard count.
	Keys   int
	Shards int
	// MaxShardKeys is the most keys held by one shard (skew indicator).
	MaxShardKeys int
	// Gets and Applies count operations; Adopted counts the Applies whose
	// entry won the last-writer-wins merge.
	Gets    uint64
	Applies uint64
	Adopted uint64
	// Seq is the adoption sequence (the delta-gossip high-watermark).
	Seq uint64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Shards:  numShards,
		Gets:    s.gets.Load(),
		Applies: s.applies.Load(),
		Adopted: s.adopted.Load(),
		Seq:     s.seq.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n := len(sh.m)
		sh.mu.RUnlock()
		st.Keys += n
		if n > st.MaxShardKeys {
			st.MaxShardKeys = n
		}
	}
	return st
}
