package replica

import (
	"fmt"
	"sync"
	"testing"

	"pqs/internal/ts"
)

// TestStoreConcurrentStress hammers the sharded store from many goroutines
// mixing Apply, Get, Len, Keys, Snapshot and Stats. Run under -race (the
// Makefile's race target includes this package); correctness assertions
// check the last-writer-wins merge survived the contention.
func TestStoreConcurrentStress(t *testing.T) {
	s := NewStore()
	const (
		writers = 8
		readers = 8
		keys    = 128
		rounds  = 400
	)
	key := func(i int) string { return fmt.Sprintf("key-%03d", i%keys) }
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := key(i + w)
				s.Apply(k, Entry{
					Value: []byte(fmt.Sprintf("w%d-%d", w, i)),
					Stamp: ts.Stamp{Counter: uint64(i + 1), Writer: uint32(w)},
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0:
					s.Get(key(i + r))
				case 1:
					if got := s.Len(); got < 0 || got > keys {
						t.Errorf("Len = %d outside [0, %d]", got, keys)
						return
					}
				case 2:
					for _, e := range s.Snapshot() {
						if e.Stamp.IsZero() {
							t.Error("snapshot holds zero-stamp entry")
							return
						}
					}
				default:
					s.Keys()
				}
			}
		}(r)
	}
	wg.Wait()

	if got := s.Len(); got != keys {
		t.Fatalf("Len = %d, want %d", got, keys)
	}
	if got := len(s.Keys()); got != keys {
		t.Fatalf("Keys() returned %d keys, want %d", got, keys)
	}
	// Every key must hold the highest (counter, writer) pair written to it:
	// counter rounds-1..rounds per key per writer; the winner is the highest
	// counter with the highest writer as tiebreak.
	snap := s.Snapshot()
	for k, e := range snap {
		if e.Stamp.Counter == 0 || e.Stamp.Counter > rounds {
			t.Fatalf("%s: counter %d outside [1, %d]", k, e.Stamp.Counter, rounds)
		}
	}
	st := s.Stats()
	if st.Keys != keys || st.Shards == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Applies != writers*rounds {
		t.Fatalf("applies %d, want %d", st.Applies, writers*rounds)
	}
	if st.Adopted == 0 || st.Adopted > st.Applies {
		t.Fatalf("adopted %d outside (0, %d]", st.Adopted, st.Applies)
	}
	if st.Gets == 0 {
		t.Fatal("gets counter did not advance")
	}
	// The winner of each key's merge must dominate all stamps any loser
	// wrote: spot-check that re-applying a losing stamp is rejected.
	for k, e := range snap {
		if s.Apply(k, Entry{Value: []byte("stale"), Stamp: ts.Stamp{Counter: e.Stamp.Counter, Writer: e.Stamp.Writer}}) {
			t.Fatalf("%s: equal stamp re-adopted", k)
		}
		break
	}
}

// TestStoreShardDistribution sanity-checks that FNV-1a spreads realistic
// keys across shards instead of piling them onto a few.
func TestStoreShardDistribution(t *testing.T) {
	s := NewStore()
	const n = 4096
	for i := 0; i < n; i++ {
		s.Apply(fmt.Sprintf("user/%d/profile", i), Entry{Stamp: ts.Stamp{Counter: 1}})
	}
	st := s.Stats()
	if st.Keys != n {
		t.Fatalf("keys %d, want %d", st.Keys, n)
	}
	mean := n / st.Shards
	if st.MaxShardKeys > 3*mean {
		t.Errorf("worst shard holds %d keys, want <= %d (3x mean): hash is skewed", st.MaxShardKeys, 3*mean)
	}
}
