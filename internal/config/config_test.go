package config

import (
	"testing"
	"time"
)

func TestTuningOr(t *testing.T) {
	legacy := Tuning{
		Spares:          2,
		HedgeDelay:      3 * time.Millisecond,
		AdaptiveHedge:   true,
		HedgeDeviations: 4,
		EagerRead:       true,
		W:               5,
		ReadRepair:      true,
	}
	// Zero canonical block: legacy wins everywhere.
	if got := (Tuning{}).Or(legacy); got != legacy {
		t.Fatalf("zero.Or(legacy) = %+v, want %+v", got, legacy)
	}
	// Canonical non-zero fields win; zero fields fall back.
	canon := Tuning{Spares: 7, W: 9}
	got := canon.Or(legacy)
	want := legacy
	want.Spares = 7
	want.W = 9
	if got != want {
		t.Fatalf("canon.Or(legacy) = %+v, want %+v", got, want)
	}
	// Booleans OR: enabled canonically stays enabled over a false legacy.
	if got := (Tuning{EagerRead: true}).Or(Tuning{}); !got.EagerRead {
		t.Fatal("EagerRead lost in Or")
	}
}

func TestTopologyOr(t *testing.T) {
	legacy := Topology{
		Cells:      4,
		CellVnodes: 16,
		N:          100,
		Transport:  "tcp-virtual",
		LatencyMin: time.Millisecond,
		LatencyMax: 4 * time.Millisecond,
	}
	if got := (Topology{}).Or(legacy); got != legacy {
		t.Fatalf("zero.Or(legacy) = %+v, want %+v", got, legacy)
	}
	canon := Topology{Transport: "mem", N: 1000}
	got := canon.Or(legacy)
	want := legacy
	want.Transport = "mem"
	want.N = 1000
	if got != want {
		t.Fatalf("canon.Or(legacy) = %+v, want %+v", got, want)
	}
}

func TestClusterTotal(t *testing.T) {
	if got := (Cluster{N: 25}).Total(); got != 25 {
		t.Fatalf("Total single cell = %d, want 25", got)
	}
	if got := (Cluster{Cells: 4, N: 25}).Total(); got != 100 {
		t.Fatalf("Total 4 cells = %d, want 100", got)
	}
}
