// Package config holds the two configuration blocks shared by every harness
// that drives the register client — the public pqs.ClientConfig, the
// Monte-Carlo sim.ConsistencyConfig, the adversarial chaos.Config and the
// population-scale load.Config:
//
//   - Tuning: the access-tuning knobs (straggler tolerance, hedging, early
//     completion, read repair) that parameterize register.Options.
//   - Topology: the cluster-shape knobs (cells, universe size, data plane,
//     latency model).
//
// Before this package each config struct carried its own flat copy of these
// fields, and the copies drifted (sim lacked ReadRepair, chaos lacked
// HedgeDeviations/W). Now every config embeds Tuning and Topology; the old
// flat fields survive as deprecated aliases that forward, resolved by Or:
// an embedded (canonical) field wins when set, the legacy flat field fills
// zero-valued gaps, and boolean knobs combine by OR. A reflection test at
// the repo root pins the rule that no config struct ever grows a private
// copy of a tuning knob again.
//
// The package is deliberately leaf-level (it imports only vtime), so the
// public API, the harnesses and the load generator can all share it without
// cycles.
package config

import (
	"time"

	"pqs/internal/vtime"
)

// Tuning is the access-tuning block shared by every client-driving config:
// the straggler-tolerance and consistency/latency trade-off knobs of
// register.Options. Zero values mean "protocol default" everywhere, so an
// all-zero Tuning is the classic wait-for-all client.
//
// See register.Options for the full semantics of each knob; the field names
// match one-to-one.
type Tuning struct {
	// Spares oversamples every access set by this many extra servers,
	// promoted on member failure or hedge-timer expiry.
	Spares int
	// HedgeDelay promotes one spare each time this delay elapses before the
	// operation completes (with AdaptiveHedge, the warmup bootstrap).
	HedgeDelay time.Duration
	// AdaptiveHedge derives the hedge delay from the pooled reply-latency
	// estimator (SRTT + HedgeDeviations·RTTVAR) instead of HedgeDelay.
	AdaptiveHedge bool
	// HedgeDeviations is the adaptive-hedge quantile knob (0 = default 4).
	HedgeDeviations float64
	// EagerRead returns reads at the mode's decidable completion threshold,
	// draining stragglers in the background.
	EagerRead bool
	// W completes writes after W acknowledgements (0 = full access set).
	W int
	// ReadRepair pushes the value a read accepted back to stale members.
	ReadRepair bool
}

// Or resolves t against a legacy flat-field block: every zero-valued knob of
// t is filled from legacy, and booleans combine by OR (a knob enabled
// through either spelling stays enabled). Configs that embed Tuning call
// this with their deprecated flat fields so old code keeps its exact
// behavior while new code sets the embedded block only.
func (t Tuning) Or(legacy Tuning) Tuning {
	if t.Spares == 0 {
		t.Spares = legacy.Spares
	}
	if t.HedgeDelay == 0 {
		t.HedgeDelay = legacy.HedgeDelay
	}
	t.AdaptiveHedge = t.AdaptiveHedge || legacy.AdaptiveHedge
	if t.HedgeDeviations == 0 {
		t.HedgeDeviations = legacy.HedgeDeviations
	}
	t.EagerRead = t.EagerRead || legacy.EagerRead
	if t.W == 0 {
		t.W = legacy.W
	}
	t.ReadRepair = t.ReadRepair || legacy.ReadRepair
	return t
}

// Topology is the cluster-shape block shared by every harness config: how
// many quorum cells, how many replicas, which data plane, and the simulated
// latency model. Zero values mean "single cell, size from the quorum
// system, mem plane, no injected latency".
type Topology struct {
	// Cells partitions the keyspace across this many quorum cells (0 or 1 =
	// the classic single-cell layout).
	Cells int
	// CellVnodes is the per-cell virtual-node count on the routing ring
	// (0 = the ring package default).
	CellVnodes int
	// N is the per-cell replica count. Harnesses that carry a quorum system
	// leave it 0 and derive it from System.N(); the load generator sets it
	// explicitly.
	N int
	// Transport selects the data plane ("mem" or "tcp-virtual"; empty =
	// mem).
	Transport string
	// LatencyMin and LatencyMax, when LatencyMax > 0, give every call a
	// uniform simulated latency in [LatencyMin, LatencyMax].
	LatencyMin, LatencyMax time.Duration
}

// Or resolves t against a legacy flat-field block, exactly as Tuning.Or:
// zero-valued fields fill from legacy.
func (t Topology) Or(legacy Topology) Topology {
	if t.Cells == 0 {
		t.Cells = legacy.Cells
	}
	if t.CellVnodes == 0 {
		t.CellVnodes = legacy.CellVnodes
	}
	if t.N == 0 {
		t.N = legacy.N
	}
	if t.Transport == "" {
		t.Transport = legacy.Transport
	}
	if t.LatencyMin == 0 {
		t.LatencyMin = legacy.LatencyMin
	}
	if t.LatencyMax == 0 {
		t.LatencyMax = legacy.LatencyMax
	}
	return t
}

// Cluster describes a replica-cluster layout: the one options struct behind
// the five historical cluster constructors (pqs.NewLocalCluster,
// pqs.NewLocalClusterCells, sim.NewCluster, sim.NewClusterClock,
// sim.NewClusterCellsClock), which survive as thin wrappers. pqs.NewCluster
// and sim.NewClusterCfg both take it; they differ only in return type.
type Cluster struct {
	// Cells is the quorum-cell count (0 or 1 = single cell).
	Cells int
	// N is the replica count per cell.
	N int
	// Seed fixes the simulated network's randomness.
	Seed int64
	// Clock is the cluster's time source (nil = wall clock). Harnesses pass
	// a vtime.SimClock so simulated latency is virtual and deterministic.
	Clock vtime.Clock
}

// Total returns the total replica count (Cells × N, with Cells clamped to
// at least 1).
func (c Cluster) Total() int {
	cells := c.Cells
	if cells < 1 {
		cells = 1
	}
	return cells * c.N
}
