package combin

import (
	"math"
	"testing"
)

func TestTimedEpsilonEndpoints(t *testing.T) {
	n, qw, qr := 100, 25, 25
	base := ProbDisjoint(n, qw, qr)
	if got := TimedEpsilon(n, qw, qr, 0); got != base {
		t.Fatalf("TimedEpsilon(D=0) = %g, want static bound %g", got, base)
	}
	if got := TimedEpsilon(n, qw, qr, -3); got != base {
		t.Fatalf("TimedEpsilon(D<0) = %g, want static bound %g", got, base)
	}
	if got := TimedEpsilon(n, qw, qr, n); got != 1 {
		t.Fatalf("TimedEpsilon(D=n) = %g, want 1", got)
	}
	if got := TimedEpsilon(n, qw, qr, 10*n); got != 1 {
		t.Fatalf("TimedEpsilon(D>n) = %g, want 1", got)
	}
}

func TestTimedEpsilonMonotoneInDepartures(t *testing.T) {
	n, qw, qr := 1000, 64, 64
	prev := -1.0
	for _, d := range []int{0, 10, 50, 100, 250, 500, 900, 999} {
		eps := TimedEpsilon(n, qw, qr, d)
		if eps < prev {
			t.Fatalf("TimedEpsilon not monotone: ε(%d) = %g < previous %g", d, eps, prev)
		}
		if eps < 0 || eps > 1 {
			t.Fatalf("TimedEpsilon(%d) = %g outside [0,1]", d, eps)
		}
		prev = eps
	}
	// Heavy churn must dominate the static bound decisively.
	if base, heavy := TimedEpsilon(n, qw, qr, 0), TimedEpsilon(n, qw, qr, 800); heavy < 10*base {
		t.Fatalf("ε(800) = %g not well above base %g", heavy, base)
	}
}

func TestTimedEpsilonAgainstDirectSum(t *testing.T) {
	// Small enough to recompute the mixture naively with explicit binomials.
	n, qw, qr, d := 20, 5, 6, 7
	ps := 1 - float64(d)/float64(n)
	want := 0.0
	for j := 0; j <= qw; j++ {
		w := Binom(qw, j) * math.Pow(ps, float64(j)) * math.Pow(1-ps, float64(qw-j))
		want += w * ProbDisjoint(n, j, qr)
	}
	got := TimedEpsilon(n, qw, qr, d)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TimedEpsilon = %g, direct sum = %g", got, want)
	}
}

func TestGroupedBinomialTailGESingleGroupMatchesBinomial(t *testing.T) {
	n, p := 200, 0.07
	for _, k := range []int{0, 1, 5, 14, 30, 200, 201} {
		want := BinomialTailGE(n, p, k)
		got := GroupedBinomialTailGE([]int{n}, []float64{p}, k)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("k=%d: grouped = %g, single binomial = %g", k, got, want)
		}
	}
}

func TestGroupedBinomialTailGEConvolution(t *testing.T) {
	// Two groups small enough to enumerate the joint distribution exactly.
	ms := []int{4, 3}
	ps := []float64{0.3, 0.6}
	for k := 0; k <= 8; k++ {
		want := 0.0
		for a := 0; a <= ms[0]; a++ {
			for b := 0; b <= ms[1]; b++ {
				if a+b >= k {
					want += BinomialPMF(ms[0], ps[0], a) * BinomialPMF(ms[1], ps[1], b)
				}
			}
		}
		got := GroupedBinomialTailGE(ms, ps, k)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("k=%d: grouped = %g, enumeration = %g", k, got, want)
		}
	}
}

func TestGroupedBinomialTailGEUnderflowGroup(t *testing.T) {
	// A group with m·ln(1-p) far below the float64 exponent range: the
	// per-term log-space PMF must keep the convolution meaningful. With
	// mean 2000 in the big group, P(X ≥ 10) is essentially 1.
	ms := []int{2_000_000, 10}
	ps := []float64{1e-3, 0.5}
	got := GroupedBinomialTailGE(ms, ps, 10)
	if got < 0.999999 {
		t.Fatalf("tail with huge-mean group = %g, want ≈ 1", got)
	}
}

func TestGroupedBinomialTailGEFallback(t *testing.T) {
	// Force the Hoeffding fallback with instances beyond the exact work cap.
	ms := []int{5_000_000, 5_000_000}
	ps := []float64{0.01, 0.02}
	mean := 0.01*5e6 + 0.02*5e6 // 150k
	// At the mean the conservative fallback must return 1.
	if got := GroupedBinomialTailGE(ms, ps, int(mean)); got != 1 {
		t.Fatalf("fallback at mean = %g, want 1", got)
	}
	// Far above the mean it must be decisively small, and bounded by
	// Hoeffding.
	k := 400_000
	got := GroupedBinomialTailGE(ms, ps, k)
	dev := float64(k) - mean
	hoeffding := math.Exp(-2 * dev * dev / 1e7)
	if got > hoeffding {
		t.Fatalf("fallback tail %g exceeds Hoeffding bound %g", got, hoeffding)
	}
	if got > 1e-4 {
		t.Fatalf("fallback tail %g not decisive", got)
	}
}

func TestGroupedBinomialTailGEDomain(t *testing.T) {
	if got := GroupedBinomialTailGE(nil, nil, 0); got != 1 {
		t.Fatalf("empty groups k=0: %g, want 1", got)
	}
	if got := GroupedBinomialTailGE(nil, nil, 1); got != 0 {
		t.Fatalf("empty groups k=1: %g, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	GroupedBinomialTailGE([]int{1}, nil, 1)
}
