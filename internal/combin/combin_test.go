package combin

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestLnFactorialSmall(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880}
	for n, w := range want {
		got := math.Exp(LnFactorial(n))
		if !almostEqual(got, w, 1e-12) {
			t.Errorf("exp(LnFactorial(%d)) = %v, want %v", n, got, w)
		}
	}
}

func TestLnFactorialLargeMatchesLgamma(t *testing.T) {
	for _, n := range []int{100, 255, 256, 300, 1000, 100000} {
		want, _ := math.Lgamma(float64(n) + 1)
		if got := LnFactorial(n); !almostEqual(got, want, 1e-12) {
			t.Errorf("LnFactorial(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestLnFactorialPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative argument")
		}
	}()
	LnFactorial(-1)
}

func TestBinomSmallValues(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1},
		{5, 0, 1},
		{5, 5, 1},
		{5, 2, 10},
		{10, 3, 120},
		{25, 9, 2042975},
		{52, 5, 2598960},
		{5, 6, 0},
		{5, -1, 0},
	}
	for _, c := range cases {
		if got := Binom(c.n, c.k); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("Binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestLnBinomSymmetry(t *testing.T) {
	f := func(n, k uint8) bool {
		nn := int(n%200) + 1
		kk := int(k) % (nn + 1)
		return almostEqual(LnBinom(nn, kk), LnBinom(nn, nn-kk), 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLnBinomPascalIdentity(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) verified in linear space for moderate n.
	for n := 2; n <= 60; n++ {
		for k := 1; k < n; k++ {
			lhs := Binom(n, k)
			rhs := Binom(n-1, k-1) + Binom(n-1, k)
			if !almostEqual(lhs, rhs, 1e-9) {
				t.Fatalf("Pascal identity failed at n=%d k=%d: %v vs %v", n, k, lhs, rhs)
			}
		}
	}
}

func TestLogAdd(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{math.Log(2), math.Log(3), math.Log(5)},
		{math.Inf(-1), math.Log(3), math.Log(3)},
		{math.Log(3), math.Inf(-1), math.Log(3)},
		{-1000, -1000, -1000 + math.Ln2},
	}
	for _, c := range cases {
		if got := LogAdd(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("LogAdd(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %v, want -Inf", got)
	}
	xs := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(xs); !almostEqual(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v, want ln 6", got)
	}
	// Stability for extreme magnitudes.
	xs = []float64{-1e4, -1e4 + math.Log(2)}
	if got := LogSumExp(xs); !almostEqual(got, -1e4+math.Log(3), 1e-9) {
		t.Errorf("LogSumExp extreme = %v", got)
	}
}

func TestHypergeomPMFSumsToOne(t *testing.T) {
	cases := []struct{ pop, marked, draw int }{
		{10, 3, 4}, {20, 10, 5}, {100, 30, 22}, {7, 7, 3}, {9, 0, 4},
	}
	for _, c := range cases {
		var sum float64
		for k := 0; k <= c.draw; k++ {
			sum += HypergeomPMF(c.pop, c.marked, c.draw, k)
		}
		if !almostEqual(sum, 1, 1e-10) {
			t.Errorf("hypergeom(%d,%d,%d) pmf sums to %v", c.pop, c.marked, c.draw, sum)
		}
	}
}

func TestHypergeomAgainstDirectCount(t *testing.T) {
	// For pop=6, marked=3, draw=3: P(X=k) = C(3,k) C(3,3-k) / C(6,3).
	total := 20.0
	want := []float64{1 / total, 9 / total, 9 / total, 1 / total}
	for k, w := range want {
		if got := HypergeomPMF(6, 3, 3, k); !almostEqual(got, w, 1e-12) {
			t.Errorf("HypergeomPMF(6,3,3,%d) = %v, want %v", k, got, w)
		}
	}
}

func TestHypergeomCDFProperties(t *testing.T) {
	pop, marked, draw := 50, 20, 15
	prev := 0.0
	for k := -1; k <= draw+1; k++ {
		c := HypergeomCDF(pop, marked, draw, k)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at k=%d: %v < %v", k, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range at k=%d: %v", k, c)
		}
		prev = c
	}
	if got := HypergeomCDF(pop, marked, draw, draw); got != 1 {
		t.Errorf("CDF at max = %v, want 1", got)
	}
	// CDF + strict upper tail must equal 1.
	for k := 0; k <= draw; k++ {
		s := HypergeomCDF(pop, marked, draw, k) + HypergeomTailGE(pop, marked, draw, k+1)
		if !almostEqual(s, 1, 1e-10) {
			t.Errorf("CDF+tail = %v at k=%d", s, k)
		}
	}
}

func TestHypergeomMean(t *testing.T) {
	// E[X] = draw*marked/pop, verified against the PMF.
	pop, marked, draw := 40, 12, 9
	var mean float64
	for k := 0; k <= draw; k++ {
		mean += float64(k) * HypergeomPMF(pop, marked, draw, k)
	}
	if want := HypergeomMean(pop, marked, draw); !almostEqual(mean, want, 1e-10) {
		t.Errorf("mean via pmf %v, formula %v", mean, want)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, c := range []struct {
		n int
		p float64
	}{{10, 0.3}, {50, 0.5}, {100, 0.01}, {7, 0}, {7, 1}} {
		var sum float64
		for k := 0; k <= c.n; k++ {
			sum += BinomialPMF(c.n, c.p, k)
		}
		if !almostEqual(sum, 1, 1e-10) {
			t.Errorf("binomial(%d,%v) pmf sums to %v", c.n, c.p, sum)
		}
	}
}

func TestBinomialTailEdges(t *testing.T) {
	if got := BinomialTailGE(10, 0.4, 0); got != 1 {
		t.Errorf("TailGE k=0: %v", got)
	}
	if got := BinomialTailGE(10, 0.4, 11); got != 0 {
		t.Errorf("TailGE k>n: %v", got)
	}
	if got := BinomialTailGE(10, 0, 1); got != 0 {
		t.Errorf("TailGE p=0: %v", got)
	}
	if got := BinomialTailGE(10, 1, 10); got != 1 {
		t.Errorf("TailGE p=1: %v", got)
	}
	if got := BinomialTailGT(10, 1, 9); got != 1 {
		t.Errorf("TailGT p=1 k=9: %v", got)
	}
}

func TestBinomialTailMonotoneInK(t *testing.T) {
	n, p := 60, 0.37
	prev := 1.0
	for k := 0; k <= n+1; k++ {
		tail := BinomialTailGE(n, p, k)
		if tail > prev+1e-12 {
			t.Fatalf("tail increased at k=%d: %v > %v", k, tail, prev)
		}
		prev = tail
	}
}

func TestBinomialTailAgainstSymmetry(t *testing.T) {
	// For p = 1/2 the distribution is symmetric: P(X >= k) = P(X <= n-k).
	n := 31
	for k := 0; k <= n; k++ {
		a := BinomialTailGE(n, 0.5, k)
		var b float64
		for i := 0; i <= n-k; i++ {
			b += BinomialPMF(n, 0.5, i)
		}
		if !almostEqual(a, b, 1e-9) {
			t.Errorf("symmetry failed at k=%d: %v vs %v", k, a, b)
		}
	}
}

// subsets enumerates all subsets of {0..n-1} of size q as bitmasks.
func subsets(n, q int) []uint32 {
	var out []uint32
	var rec func(start int, chosen uint32, left int)
	rec = func(start int, chosen uint32, left int) {
		if left == 0 {
			out = append(out, chosen)
			return
		}
		for i := start; i <= n-left; i++ {
			rec(i+1, chosen|1<<uint(i), left-1)
		}
	}
	rec(0, 0, q)
	return out
}

func popcount(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestProbDisjointBruteForce(t *testing.T) {
	for _, c := range []struct{ n, q int }{{6, 2}, {8, 3}, {9, 4}, {10, 2}} {
		qs := subsets(c.n, c.q)
		var disjoint, total int
		for _, a := range qs {
			for _, b := range qs {
				total++
				if a&b == 0 {
					disjoint++
				}
			}
		}
		want := float64(disjoint) / float64(total)
		if got := ProbDisjoint(c.n, c.q, c.q); !almostEqual(got, want, 1e-10) {
			t.Errorf("ProbDisjoint(%d,%d,%d) = %v, want %v", c.n, c.q, c.q, got, want)
		}
	}
}

func TestProbDisjointAsymmetric(t *testing.T) {
	// P(disjoint) must be symmetric in q1, q2 and 0 when q1+q2 > n.
	if got := ProbDisjoint(10, 6, 5); got != 0 {
		t.Errorf("overfull universe: %v", got)
	}
	a := ProbDisjoint(12, 3, 5)
	b := ProbDisjoint(12, 5, 3)
	if !almostEqual(a, b, 1e-12) {
		t.Errorf("asymmetric: %v vs %v", a, b)
	}
	if got := ProbDisjoint(10, 0, 5); got != 1 {
		t.Errorf("empty quorum: %v", got)
	}
}

func TestProbDisjointPaperValue(t *testing.T) {
	// n=25, q=9: C(16,9)/C(25,9) = 11440/2042975.
	want := 11440.0 / 2042975.0
	if got := ProbDisjoint(25, 9, 9); !almostEqual(got, want, 1e-12) {
		t.Errorf("ProbDisjoint(25,9,9) = %v, want %v", got, want)
	}
}

func TestProbIntersectWithinBruteForce(t *testing.T) {
	// B is always taken as the lowest b elements; by symmetry of the uniform
	// strategy the probability is the same for every B of size b.
	for _, c := range []struct{ n, q, b int }{{6, 2, 2}, {8, 3, 2}, {9, 3, 3}, {7, 3, 0}} {
		qs := subsets(c.n, c.q)
		bad := uint32(1<<uint(c.b)) - 1
		var hit, total int
		for _, a := range qs {
			for _, b2 := range qs {
				total++
				if a&b2&^bad == 0 { // intersection entirely inside B
					hit++
				}
			}
		}
		want := float64(hit) / float64(total)
		if got := ProbIntersectWithin(c.n, c.q, c.b); !almostEqual(got, want, 1e-10) {
			t.Errorf("ProbIntersectWithin(%d,%d,%d) = %v, want %v", c.n, c.q, c.b, got, want)
		}
	}
}

func TestProbIntersectWithinReducesToDisjoint(t *testing.T) {
	// With b = 0 the event "intersection ⊆ ∅" is exactly disjointness.
	for _, c := range []struct{ n, q int }{{10, 3}, {30, 7}, {100, 10}} {
		a := ProbIntersectWithin(c.n, c.q, 0)
		b := ProbDisjoint(c.n, c.q, c.q)
		if !almostEqual(a, b, 1e-12) {
			t.Errorf("n=%d q=%d: %v vs %v", c.n, c.q, a, b)
		}
	}
}

func TestProbIntersectWithinMonotoneInB(t *testing.T) {
	n, q := 64, 16
	prev := 0.0
	for b := 0; b <= n; b += 4 {
		p := ProbIntersectWithin(n, q, b)
		if p < prev-1e-12 {
			t.Fatalf("not monotone in b at b=%d: %v < %v", b, p, prev)
		}
		prev = p
	}
	if got := ProbIntersectWithin(n, q, n); got != 1 {
		t.Errorf("b=n should be certain: %v", got)
	}
}

func TestMaskingErrExactBruteForce(t *testing.T) {
	for _, c := range []struct{ n, q, b, k int }{
		{6, 3, 1, 1}, {8, 4, 2, 2}, {9, 4, 2, 1}, {8, 3, 0, 1},
	} {
		qs := subsets(c.n, c.q)
		bad := uint32(1<<uint(c.b)) - 1
		var ok, total int
		for _, a := range qs {
			for _, b2 := range qs {
				total++
				x := popcount(a & bad)
				y := popcount(a & b2 &^ bad)
				if x < c.k && y >= c.k {
					ok++
				}
			}
		}
		want := 1 - float64(ok)/float64(total)
		if got := MaskingErrExact(c.n, c.q, c.b, c.k); !almostEqual(got, want, 1e-10) {
			t.Errorf("MaskingErrExact(%d,%d,%d,%d) = %v, want %v", c.n, c.q, c.b, c.k, got, want)
		}
	}
}

func TestMaskingErrExactEdges(t *testing.T) {
	// k = 0 means |Q∩B| < 0 is impossible: error probability 1.
	if got := MaskingErrExact(10, 4, 2, 0); got != 1 {
		t.Errorf("k=0: %v", got)
	}
	// A huge k can never be met by the intersection: error probability 1.
	if got := MaskingErrExact(10, 4, 2, 9); got != 1 {
		t.Errorf("k>q: %v", got)
	}
	// No Byzantine servers, k=1: error iff quorums disjoint.
	got := MaskingErrExact(20, 6, 0, 1)
	want := ProbDisjoint(20, 6, 6)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("b=0,k=1: %v want %v", got, want)
	}
}

func TestChernoffBounds(t *testing.T) {
	// The bounds must actually bound exact binomial tails.
	n, p := 200, 0.1
	mu := float64(n) * p
	for _, gamma := range []float64{0.5, 1, 2, 5, 10} {
		k := int(math.Ceil((1 + gamma) * mu))
		exact := BinomialTailGT(n, p, int((1+gamma)*mu))
		bound := ChernoffUpperMult(mu, gamma)
		if exact > bound+1e-12 {
			t.Errorf("upper bound violated at gamma=%v: exact %v > bound %v (k=%d)", gamma, exact, bound, k)
		}
	}
	for _, delta := range []float64{0.3, 0.5, 0.9} {
		k := int(math.Floor((1 - delta) * mu))
		var exact float64
		for i := 0; i < k; i++ {
			exact += BinomialPMF(n, p, i)
		}
		bound := ChernoffLowerMult(mu, delta)
		if exact > bound+1e-12 {
			t.Errorf("lower bound violated at delta=%v: exact %v > bound %v", delta, exact, bound)
		}
	}
	if ChernoffUpperMult(10, 0) != 1 || ChernoffLowerMult(10, 0) != 1 {
		t.Error("zero deviation should give trivial bound 1")
	}
}

func TestHoeffdingBoundsBinomialTail(t *testing.T) {
	for _, c := range []struct {
		n    int
		p, x float64
	}{{100, 0.3, 0.5}, {300, 0.5, 0.7}, {900, 0.9, 0.95}} {
		exact := BinomialTailGT(c.n, c.p, int(float64(c.n)*c.x))
		bound := HoeffdingTailAbove(c.n, c.p, c.x)
		if exact > bound+1e-12 {
			t.Errorf("Hoeffding violated n=%d p=%v x=%v: %v > %v", c.n, c.p, c.x, exact, bound)
		}
	}
	if HoeffdingTailAbove(100, 0.5, 0.4) != 1 {
		t.Error("x <= p should give trivial bound")
	}
}

func TestIntSqrt(t *testing.T) {
	for n := 0; n <= 10000; n++ {
		s := IntSqrt(n)
		if s*s > n || (s+1)*(s+1) <= n {
			t.Fatalf("IntSqrt(%d) = %d", n, s)
		}
	}
	if !IsPerfectSquare(0) || !IsPerfectSquare(900) || IsPerfectSquare(899) || IsPerfectSquare(-4) {
		t.Error("IsPerfectSquare misclassified")
	}
}

func TestIntSqrtQuick(t *testing.T) {
	f := func(x uint32) bool {
		n := int(x % 10_000_000)
		s := IntSqrt(n)
		return s*s <= n && (s+1)*(s+1) > n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampProbThroughPublicAPI(t *testing.T) {
	// Probabilities returned by public helpers must lie in [0,1] for a sweep
	// of parameters, including ones prone to rounding.
	for n := 1; n <= 40; n += 3 {
		for q := 0; q <= n; q += 2 {
			for b := 0; b <= n; b += 5 {
				p := ProbIntersectWithin(n, q, b)
				if p < 0 || p > 1 {
					t.Fatalf("out of range: n=%d q=%d b=%d p=%v", n, q, b, p)
				}
			}
		}
	}
}
