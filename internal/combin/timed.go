package combin

import "math"

// TimedEpsilon returns the time-decayed non-intersection bound for a
// probabilistic quorum access under churn, after the model of timed quorum
// systems (Gramoli & Raynal, "Timed Quorum System for Large-Scale and
// Dynamic Environments", arXiv 0802.0552): a write quorum's validity decays
// as members depart, because departed (replaced) servers no longer hold the
// written value.
//
// The model: a write landed on a uniformly random write quorum of size qw in
// an n-universe; since then, `departures` membership departures occurred,
// each removing a uniformly random live server (replacements arrive empty).
// Every member of the write quorum therefore survives independently with
// probability ps = max(0, 1-departures/n), so the surviving copy count is
// Binomial(qw, ps), and a fresh uniformly random read quorum of size qr
// misses all survivors with probability
//
//	ε(D) = Σ_{j=0..qw} C(qw,j) ps^j (1-ps)^(qw-j) · ProbDisjoint(n, j, qr).
//
// The binomial survivor model upper-bounds the exchangeable
// (hypergeometric) departure process — ProbDisjoint is convex and
// decreasing in j, and the binomial mixture has the same mean but more
// spread — and counting repeat departures of the same slot separately only
// lowers ps further, so ε(D) is conservative for the simulated churn
// drivers. ε(0) is exactly the static miss probability
// ProbDisjoint(n, qw, qr), and ε(D) → 1 as D → n.
func TimedEpsilon(n, qw, qr, departures int) float64 {
	if qw < 0 || qr < 0 || qw > n || qr > n {
		panic("combin: TimedEpsilon parameters outside domain")
	}
	if departures <= 0 {
		return ProbDisjoint(n, qw, qr)
	}
	if departures >= n {
		return 1
	}
	ps := 1 - float64(departures)/float64(n)
	var sum float64
	for j := 0; j <= qw; j++ {
		w := BinomialPMF(qw, ps, j)
		if w == 0 {
			continue
		}
		sum += w * ProbDisjoint(n, j, qr)
	}
	return clampProb(sum)
}

// groupedExactWorkCap bounds the truncated-convolution work (k · Σ min(m,k)
// multiply-adds) for the exact grouped tail; larger instances fall back to
// the conservative Hoeffding bound.
const groupedExactWorkCap = 1 << 26

// GroupedBinomialTailGE returns P(X ≥ k) where X = Σ_g Binomial(ms[g],
// ps[g]) is a sum of independent binomial groups — the null distribution of
// the total stale-read count when reads are bucketed by churn depth D and
// each bucket g of ms[g] reads carries its own timed bound ps[g] =
// TimedEpsilon-derived ε. It is the grouped generalization of
// BinomialTailGE, used by the chaos checker's timed verdict.
//
// For small instances the tail is exact: the distribution of X truncated at
// k is built by convolving per-group PMFs (computed in log space, so groups
// whose (1-p)^m underflows still contribute correctly). When the
// truncated-convolution work would exceed groupedExactWorkCap the function
// falls back to a conservative upper bound on the p-value: 1 if k is at or
// below the mean, else the Hoeffding bound exp(-2(k-μ)²/Σm). The fallback
// only ever over-estimates the tail, so a checker comparing it against a
// significance level can fail spuriously never — only pass spuriously, by
// at most the slack of Hoeffding.
func GroupedBinomialTailGE(ms []int, ps []float64, k int) float64 {
	if len(ms) != len(ps) {
		panic("combin: GroupedBinomialTailGE group length mismatch")
	}
	total := 0
	mean := 0.0
	work := 0
	for i, m := range ms {
		if m < 0 || ps[i] < 0 || ps[i] > 1 {
			panic("combin: GroupedBinomialTailGE parameters outside domain")
		}
		total += m
		mean += float64(m) * ps[i]
		if m < k {
			work += m
		} else {
			work += k
		}
	}
	if k <= 0 {
		return 1
	}
	if k > total {
		return 0
	}
	if k*work <= groupedExactWorkCap {
		return groupedTailExact(ms, ps, k)
	}
	if float64(k) <= mean {
		return 1
	}
	dev := float64(k) - mean
	return clampProb(math.Exp(-2 * dev * dev / float64(total)))
}

// groupedTailExact computes P(Σ_g Binomial(ms[g], ps[g]) ≥ k) by truncated
// convolution: probs[i] tracks P(X = i) for i < k; mass at or above k is
// 1 - Σ probs.
func groupedTailExact(ms []int, ps []float64, k int) float64 {
	probs := make([]float64, k)
	probs[0] = 1
	scratch := make([]float64, k)
	for g, m := range ms {
		p := ps[g]
		if p == 0 || m == 0 {
			continue
		}
		jmax := m
		if jmax > k-1 {
			jmax = k - 1
		}
		pmf := make([]float64, jmax+1)
		for j := 0; j <= jmax; j++ {
			pmf[j] = math.Exp(BinomialLnPMF(m, p, j))
		}
		for i := 0; i < k; i++ {
			var s float64
			hi := i
			if hi > jmax {
				hi = jmax
			}
			for j := 0; j <= hi; j++ {
				s += probs[i-j] * pmf[j]
			}
			scratch[i] = s
		}
		probs, scratch = scratch, probs
	}
	var below float64
	for _, v := range probs {
		below += v
	}
	return clampProb(1 - below)
}
