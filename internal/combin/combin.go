// Package combin provides exact combinatorial and probabilistic primitives
// used throughout the probabilistic-quorum-system library.
//
// All heavy computations are carried out in log space so that quantities such
// as C(900, 450) or hypergeometric tail probabilities around 10^-40 remain
// representable. The package is pure math: it knows nothing about quorums.
// The quorum-specific probability formulas built on top of these primitives
// live in package core.
package combin

import (
	"errors"
	"math"
)

// ErrDomain is returned (wrapped) by functions whose arguments lie outside
// their mathematical domain.
var ErrDomain = errors.New("combin: argument outside domain")

// LnFactorial returns ln(n!). It panics if n is negative, since a negative
// factorial is a programming error rather than a data error.
func LnFactorial(n int) float64 {
	if n < 0 {
		panic("combin: LnFactorial of negative argument")
	}
	if n < len(lnFactTable) {
		return lnFactTable[n]
	}
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}

// lnFactTable caches ln(n!) for small n where table lookup beats Lgamma and
// where exactness matters most (the values are exact for n <= 20 because the
// factorials are exactly representable in float64).
var lnFactTable = func() []float64 {
	t := make([]float64, 256)
	f := 1.0
	for n := 1; n < len(t); n++ {
		if n <= 170 {
			f *= float64(n)
			t[n] = math.Log(f)
		} else {
			v, _ := math.Lgamma(float64(n) + 1)
			t[n] = v
		}
	}
	return t
}()

// LnBinom returns ln C(n, k), the natural log of the binomial coefficient.
// It returns -Inf when the coefficient is zero (k < 0 or k > n).
func LnBinom(n, k int) float64 {
	if n < 0 {
		panic("combin: LnBinom with negative n")
	}
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return LnFactorial(n) - LnFactorial(k) - LnFactorial(n-k)
}

// Binom returns C(n, k) as a float64. The result overflows to +Inf for very
// large coefficients; callers that need ratios of large coefficients should
// work with LnBinom instead.
func Binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	return math.Exp(LnBinom(n, k))
}

// LogAdd returns ln(e^a + e^b) computed stably.
func LogAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogSumExp returns ln(sum_i e^{xs[i]}) computed stably. It returns -Inf for
// an empty slice.
func LogSumExp(xs []float64) float64 {
	maxv := math.Inf(-1)
	for _, x := range xs {
		if x > maxv {
			maxv = x
		}
	}
	if math.IsInf(maxv, -1) {
		return maxv
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - maxv)
	}
	return maxv + math.Log(sum)
}

// HypergeomLnPMF returns ln P(X = k) where X follows the hypergeometric
// distribution counting marked items in a uniform sample: a sample of size
// draw is taken without replacement from a population of size pop containing
// marked marked items. Returns -Inf when k is impossible.
func HypergeomLnPMF(pop, marked, draw, k int) float64 {
	if pop < 0 || marked < 0 || marked > pop || draw < 0 || draw > pop {
		panic("combin: hypergeometric parameters outside domain")
	}
	if k < 0 || k > draw || k > marked || draw-k > pop-marked {
		return math.Inf(-1)
	}
	return LnBinom(marked, k) + LnBinom(pop-marked, draw-k) - LnBinom(pop, draw)
}

// HypergeomPMF returns P(X = k) for the hypergeometric distribution described
// at HypergeomLnPMF.
func HypergeomPMF(pop, marked, draw, k int) float64 {
	return math.Exp(HypergeomLnPMF(pop, marked, draw, k))
}

// HypergeomCDF returns P(X <= k) for the hypergeometric distribution.
// Probabilities are accumulated in linear space; all terms are non-negative
// and bounded by one, so the summation is stable.
func HypergeomCDF(pop, marked, draw, k int) float64 {
	if k < 0 {
		return 0
	}
	hi := draw
	if marked < hi {
		hi = marked
	}
	if k >= hi {
		return 1
	}
	// Sum the smaller tail for accuracy and speed.
	lo := 0
	if d := draw - (pop - marked); d > lo {
		lo = d
	}
	if k-lo <= hi-k {
		var sum float64
		for i := lo; i <= k; i++ {
			sum += HypergeomPMF(pop, marked, draw, i)
		}
		return clampProb(sum)
	}
	var sum float64
	for i := k + 1; i <= hi; i++ {
		sum += HypergeomPMF(pop, marked, draw, i)
	}
	return clampProb(1 - sum)
}

// HypergeomTailGE returns P(X >= k) for the hypergeometric distribution.
func HypergeomTailGE(pop, marked, draw, k int) float64 {
	return clampProb(1 - HypergeomCDF(pop, marked, draw, k-1))
}

// HypergeomMean returns E[X] = draw * marked / pop.
func HypergeomMean(pop, marked, draw int) float64 {
	if pop == 0 {
		return 0
	}
	return float64(draw) * float64(marked) / float64(pop)
}

// BinomialLnPMF returns ln P(X = k) for X ~ Binomial(n, p).
func BinomialLnPMF(n int, p float64, k int) float64 {
	if n < 0 || p < 0 || p > 1 {
		panic("combin: binomial parameters outside domain")
	}
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	switch p {
	case 0:
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	case 1:
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return LnBinom(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n int, p float64, k int) float64 {
	return math.Exp(BinomialLnPMF(n, p, k))
}

// BinomialTailGE returns P(X >= k) for X ~ Binomial(n, p), computed exactly
// by summing the smaller of the two tails.
func BinomialTailGE(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	mean := float64(n) * p
	if float64(k) >= mean {
		var sum float64
		for i := k; i <= n; i++ {
			sum += BinomialPMF(n, p, i)
		}
		return clampProb(sum)
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += BinomialPMF(n, p, i)
	}
	return clampProb(1 - sum)
}

// BinomialTailGT returns P(X > k) for X ~ Binomial(n, p).
func BinomialTailGT(n int, p float64, k int) float64 {
	return BinomialTailGE(n, p, k+1)
}

// ProbDisjoint returns the probability that two independent uniformly random
// subsets of sizes q1 and q2, drawn from a universe of size n, are disjoint:
//
//	P(Q1 ∩ Q2 = ∅) = C(n-q1, q2) / C(n, q2).
//
// This is the exact value of the non-intersection probability ε for the
// paper's R(n, q) construction (Section 3.4).
func ProbDisjoint(n, q1, q2 int) float64 {
	if q1 < 0 || q2 < 0 || q1 > n || q2 > n {
		panic("combin: ProbDisjoint parameters outside domain")
	}
	if q1 == 0 || q2 == 0 {
		return 1
	}
	if q1+q2 > n {
		return 0
	}
	return math.Exp(LnBinom(n-q1, q2) - LnBinom(n, q2))
}

// ProbIntersectWithin returns the probability that the intersection of two
// independent uniformly random q-subsets of an n-universe is entirely
// contained in a fixed set B of size b:
//
//	P(Q ∩ Q' ⊆ B).
//
// This is the exact ε for the (b, ε)-dissemination construction (Section 4):
// conditioning on x = |Q ∩ B| (hypergeometric), Q' must avoid the q-x
// elements of Q \ B.
func ProbIntersectWithin(n, q, b int) float64 {
	if q < 0 || q > n || b < 0 || b > n {
		panic("combin: ProbIntersectWithin parameters outside domain")
	}
	hi := q
	if b < hi {
		hi = b
	}
	var sum float64
	for x := 0; x <= hi; x++ {
		px := HypergeomPMF(n, b, q, x)
		if px == 0 {
			continue
		}
		outside := q - x // |Q \ B|
		var avoid float64
		if outside+q > n {
			avoid = 0
		} else {
			avoid = math.Exp(LnBinom(n-outside, q) - LnBinom(n, q))
		}
		sum += px * avoid
	}
	return clampProb(sum)
}

// MaskingErrExact returns the exact probability that the masking read
// protocol's threshold test fails for one read/write quorum pair
// (Definition 5.1 with the complement event):
//
//	1 - P( |Q ∩ B| < k  AND  |Q ∩ Q' \ B| >= k )
//
// where Q and Q' are independent uniform q-subsets of an n-universe and B is
// any fixed set of b (Byzantine) servers. Writing X = |Q ∩ B| and, given
// X = x, Y = |Q ∩ Q' \ B| ~ Hypergeometric(n, q-x, q) (Q' is independent of
// Q and must hit the q-x marked elements of Q \ B), the exact value is
//
//	1 - Σ_{x<k} P(X = x) · P(Y >= k | X = x).
func MaskingErrExact(n, q, b, k int) float64 {
	if q < 0 || q > n || b < 0 || b > n || k < 0 {
		panic("combin: MaskingErrExact parameters outside domain")
	}
	hiX := k - 1
	if q < hiX {
		hiX = q
	}
	if b < hiX {
		hiX = b
	}
	var good float64
	for x := 0; x <= hiX; x++ {
		px := HypergeomPMF(n, b, q, x)
		if px == 0 {
			continue
		}
		good += px * HypergeomTailGE(n, q-x, q, k)
	}
	return clampProb(1 - good)
}

// ChernoffUpperMult bounds the upper tail of a sum of independent Bernoulli
// variables with mean mu: P(X > (1+gamma) mu). It uses the two-regime form
// quoted in the paper (Lemma 5.7, following Motwani & Raghavan):
//
//	e^{-mu γ²/4}          for 0 < γ <= 2e-1,
//	2^{-(1+γ) mu}         for γ > 2e-1.
func ChernoffUpperMult(mu, gamma float64) float64 {
	if gamma <= 0 {
		return 1
	}
	if gamma <= 2*math.E-1 {
		return math.Exp(-mu * gamma * gamma / 4)
	}
	return math.Exp(-(1 + gamma) * mu * math.Ln2)
}

// ChernoffLowerMult bounds the lower tail: P(X < (1-delta) mu) <= e^{-mu δ²/2}
// for 0 <= delta <= 1.
func ChernoffLowerMult(mu, delta float64) float64 {
	if delta <= 0 {
		return 1
	}
	if delta > 1 {
		delta = 1
	}
	return math.Exp(-mu * delta * delta / 2)
}

// HoeffdingTailAbove bounds P(Binomial(n,p) > n*x) for x > p by e^{-2n(x-p)²}.
// The paper uses this form for failure probabilities: with x = 1 - q/n it
// bounds the probability that more than n-q servers crash.
func HoeffdingTailAbove(n int, p, x float64) float64 {
	if x <= p {
		return 1
	}
	d := x - p
	return math.Exp(-2 * float64(n) * d * d)
}

// IntSqrt returns the integer square root of n (the largest s with s*s <= n).
func IntSqrt(n int) int {
	if n < 0 {
		panic("combin: IntSqrt of negative argument")
	}
	s := int(math.Sqrt(float64(n)))
	for s > 0 && s*s > n {
		s--
	}
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// IsPerfectSquare reports whether n is a perfect square.
func IsPerfectSquare(n int) bool {
	if n < 0 {
		return false
	}
	s := IntSqrt(n)
	return s*s == n
}

// clampProb forces small floating-point excursions back into [0, 1].
func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
