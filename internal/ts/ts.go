// Package ts provides the timestamps that order write operations in the
// quorum access protocols of Section 3.1: each writer tags every write with
// a value strictly greater than any it used before, and readers select the
// value with the highest timestamp. Stamps carry the writer id so that the
// order is total even across writers (the paper's protocols are
// single-writer; the writer component makes the library safe to extend to
// multiple writers per key, as Section 3.1 suggests via [Lam86, IS92]).
package ts

import (
	"fmt"
	"sync"
)

// Stamp is a logical timestamp: a per-writer monotonic counter with the
// writer id breaking ties. The zero Stamp orders before every stamp a
// writer can produce.
type Stamp struct {
	// Counter is the writer-local sequence number, starting at 1.
	Counter uint64
	// Writer identifies the client that produced the stamp.
	Writer uint32
}

// IsZero reports whether s is the zero stamp (no write observed).
func (s Stamp) IsZero() bool { return s.Counter == 0 && s.Writer == 0 }

// Less reports whether s orders strictly before o (lexicographic on
// counter, then writer).
func (s Stamp) Less(o Stamp) bool {
	if s.Counter != o.Counter {
		return s.Counter < o.Counter
	}
	return s.Writer < o.Writer
}

// Compare returns -1, 0 or +1 as s orders before, equal to or after o.
func (s Stamp) Compare(o Stamp) int {
	switch {
	case s.Less(o):
		return -1
	case o.Less(s):
		return 1
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (s Stamp) String() string { return fmt.Sprintf("%d@%d", s.Counter, s.Writer) }

// Clock issues strictly increasing stamps for one writer. The zero value is
// not usable; construct with NewClock. Clock is safe for concurrent use.
type Clock struct {
	mu     sync.Mutex
	writer uint32
	last   uint64
}

// NewClock returns a Clock for the given writer id.
func NewClock(writer uint32) *Clock {
	return &Clock{writer: writer}
}

// Writer returns the writer id the clock stamps with.
func (c *Clock) Writer() uint32 {
	return c.writer
}

// Next returns a stamp strictly greater than every stamp this clock has
// returned or witnessed.
func (c *Clock) Next() Stamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.last++
	return Stamp{Counter: c.last, Writer: c.writer}
}

// Witness advances the clock past an observed stamp, so that subsequent
// Next calls dominate it. Required when a writer recovers its state by
// reading, or when extending the protocol to multiple writers.
func (c *Clock) Witness(s Stamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.Counter > c.last {
		c.last = s.Counter
	}
}

// Max returns the larger of a and b.
func Max(a, b Stamp) Stamp {
	if a.Less(b) {
		return b
	}
	return a
}
