package ts

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestStampOrder(t *testing.T) {
	cases := []struct {
		a, b Stamp
		cmp  int
	}{
		{Stamp{}, Stamp{}, 0},
		{Stamp{}, Stamp{Counter: 1}, -1},
		{Stamp{Counter: 1, Writer: 0}, Stamp{Counter: 1, Writer: 1}, -1},
		{Stamp{Counter: 2, Writer: 0}, Stamp{Counter: 1, Writer: 9}, 1},
		{Stamp{Counter: 5, Writer: 3}, Stamp{Counter: 5, Writer: 3}, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.cmp {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.cmp)
		}
		if got := c.b.Compare(c.a); got != -c.cmp {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.b, c.a, got, -c.cmp)
		}
	}
}

func TestStampTotalOrderProperties(t *testing.T) {
	// Antisymmetry and totality: exactly one of a<b, b<a, a==b.
	f := func(c1, c2 uint64, w1, w2 uint32) bool {
		a := Stamp{Counter: c1, Writer: w1}
		b := Stamp{Counter: c2, Writer: w2}
		lt, gt, eq := a.Less(b), b.Less(a), a == b
		count := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStampTransitivity(t *testing.T) {
	f := func(c1, c2, c3 uint64, w1, w2, w3 uint32) bool {
		a := Stamp{Counter: c1 % 8, Writer: w1 % 4}
		b := Stamp{Counter: c2 % 8, Writer: w2 % 4}
		c := Stamp{Counter: c3 % 8, Writer: w3 % 4}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIsZero(t *testing.T) {
	if !(Stamp{}).IsZero() {
		t.Error("zero stamp should be zero")
	}
	if (Stamp{Counter: 1}).IsZero() || (Stamp{Writer: 1}).IsZero() {
		t.Error("non-zero stamps misclassified")
	}
	// The zero stamp orders before anything a clock produces.
	c := NewClock(0)
	if !(Stamp{}).Less(c.Next()) {
		t.Error("zero stamp must order before first clock stamp")
	}
}

func TestClockMonotone(t *testing.T) {
	c := NewClock(7)
	if c.Writer() != 7 {
		t.Errorf("Writer = %d", c.Writer())
	}
	prev := Stamp{}
	for i := 0; i < 1000; i++ {
		s := c.Next()
		if !prev.Less(s) {
			t.Fatalf("stamp %v not after %v", s, prev)
		}
		if s.Writer != 7 {
			t.Fatalf("stamp writer %d", s.Writer)
		}
		prev = s
	}
}

func TestClockWitness(t *testing.T) {
	c := NewClock(1)
	c.Witness(Stamp{Counter: 100, Writer: 2})
	if s := c.Next(); s.Counter != 101 {
		t.Errorf("after witness, Next = %v, want counter 101", s)
	}
	// Witnessing something old must not move the clock backwards.
	c.Witness(Stamp{Counter: 5, Writer: 9})
	if s := c.Next(); s.Counter != 102 {
		t.Errorf("after stale witness, Next = %v, want counter 102", s)
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock(3)
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	out := make([][]Stamp, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				out[g] = append(out[g], c.Next())
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[Stamp]bool)
	for _, stamps := range out {
		for i, s := range stamps {
			if seen[s] {
				t.Fatalf("duplicate stamp %v", s)
			}
			seen[s] = true
			if i > 0 && !stamps[i-1].Less(s) {
				t.Fatalf("per-goroutine order violated: %v then %v", stamps[i-1], s)
			}
		}
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("expected %d distinct stamps, got %d", goroutines*perG, len(seen))
	}
}

func TestMax(t *testing.T) {
	a := Stamp{Counter: 3, Writer: 1}
	b := Stamp{Counter: 3, Writer: 2}
	if Max(a, b) != b || Max(b, a) != b {
		t.Error("Max wrong")
	}
	if Max(a, a) != a {
		t.Error("Max of equal wrong")
	}
}

func TestString(t *testing.T) {
	if got := (Stamp{Counter: 12, Writer: 4}).String(); got != "12@4" {
		t.Errorf("String = %q", got)
	}
}
