package wire

import (
	"bytes"
	"compress/flate"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"pqs/internal/ts"
)

// compressibleValue is a payload deflate shrinks dramatically: repeated
// structured text, the shape of real redundant application data.
func compressibleValue(n int) []byte {
	return bytes.Repeat([]byte("the-same-sixteen!"), n/16+1)[:n]
}

// incompressibleValue is high-entropy data deflate cannot shrink.
func incompressibleValue(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestFlateEnvelopeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		var value []byte
		if i%2 == 0 {
			value = compressibleValue(512 + r.Intn(8192))
		} else {
			value = incompressibleValue(r, 512+r.Intn(8192))
		}
		env := Envelope{
			ID:      r.Uint64(),
			Payload: WriteRequest{Key: randKey(r), Value: value, Stamp: randStamp(r), Sig: randBytes(r)},
		}
		b, res, err := AppendEnvelopeFlate(nil, env)
		if err != nil {
			t.Fatal(err)
		}
		if res.RawBytes < FlateMinSize {
			t.Fatalf("trial %d: raw payload %d below threshold, test is vacuous", i, res.RawBytes)
		}
		if i%2 == 0 && !res.Compressed {
			t.Fatalf("trial %d: compressible %d-byte payload went out raw", i, res.RawBytes)
		}
		if res.Compressed && res.WireBytes >= res.RawBytes {
			t.Fatalf("trial %d: compressed but wire %d >= raw %d", i, res.WireBytes, res.RawBytes)
		}
		if !res.Compressed && res.WireBytes != res.RawBytes {
			t.Fatalf("trial %d: raw fallback but wire %d != raw %d", i, res.WireBytes, res.RawBytes)
		}
		got, err := DecodeEnvelopeFlate(b)
		if err != nil {
			t.Fatal(err)
		}
		want := Envelope{ID: env.ID, Payload: gobRoundTrip(t, env.Payload)}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: flate envelope round trip mismatch (compressed=%v)", i, res.Compressed)
		}
	}
}

// TestFlateSubThresholdIdentical pins interop rule 1: payload slots below
// FlateMinSize are byte-identical to the legacy layout, so a CodecBinary
// capture and a CodecBinaryFlate capture of small traffic compare equal.
func TestFlateSubThresholdIdentical(t *testing.T) {
	env := Envelope{ID: 42, Payload: ReadRequest{Key: "k"}}
	legacy, err := AppendEnvelope(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	flated, res, err := AppendEnvelopeFlate(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressed {
		t.Fatal("sub-threshold frame was compressed")
	}
	if !bytes.Equal(legacy, flated) {
		t.Fatalf("sub-threshold flate layout differs from legacy:\n%x\n%x", legacy, flated)
	}
	// And the legacy decoder reads it, naturally.
	if _, err := DecodeEnvelope(flated); err != nil {
		t.Fatal(err)
	}
}

// TestFlateIncompressibleFallback pins interop rule 2: a high-entropy
// payload above the threshold keeps the raw layout (no inflation tax) and
// stays legacy-readable.
func TestFlateIncompressibleFallback(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	env := Envelope{ID: 7, Payload: WriteRequest{Key: "k", Value: incompressibleValue(r, 4096)}}
	legacy, err := AppendEnvelope(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	flated, res, err := AppendEnvelopeFlate(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressed {
		t.Fatalf("4 KiB of random bytes claimed compressible (wire %d, raw %d)", res.WireBytes, res.RawBytes)
	}
	if !bytes.Equal(legacy, flated) {
		t.Fatal("incompressible fallback layout differs from legacy")
	}
}

// TestFlateLegacyDecoderFailsLoudly pins interop rule 3 (the versioning
// rule's failure mode): a CodecBinary peer handed a compressed frame gets
// ErrUnknownTag, never a silent desync.
func TestFlateLegacyDecoderFailsLoudly(t *testing.T) {
	env := Envelope{ID: 9, Payload: WriteRequest{Key: "k", Value: compressibleValue(4096)}}
	b, res, err := AppendEnvelopeFlate(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compressed {
		t.Fatal("frame unexpectedly went out raw; test is vacuous")
	}
	if _, err := DecodeEnvelope(b); !errors.Is(err, ErrUnknownTag) {
		t.Fatalf("legacy decode of compressed frame: err = %v, want ErrUnknownTag", err)
	}
}

func TestFlateReplyEnvelopeRoundTrip(t *testing.T) {
	cases := []ReplyEnvelope{
		{ID: 1, Payload: ReadReply{Found: true, Value: compressibleValue(8192), Stamp: ts.Stamp{Counter: 3, Writer: 1}}},
		{ID: 2, Payload: GossipReply{Entries: []Item{{Key: "k", Value: compressibleValue(2048)}}}},
		{ID: 3, Payload: WriteReply{Stored: true}}, // sub-threshold
	}
	for _, env := range cases {
		b, _, err := AppendReplyEnvelopeFlate(nil, env)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeReplyEnvelopeFlate(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != env.ID || !reflect.DeepEqual(got.Payload, gobRoundTrip(t, env.Payload)) {
			t.Fatalf("flate reply round trip mismatch for ID %d", env.ID)
		}
	}
}

// TestFlateErrorRepliesStayLegacy: error replies (TagNone / TagErrKind) are
// byte-identical under both codecs — the error fast path never hides behind
// compression.
func TestFlateErrorRepliesStayLegacy(t *testing.T) {
	cases := []ReplyEnvelope{
		{ID: 4, Err: "boom"},
		{ID: 5, Err: "overloaded", ErrKind: ErrKindTransient},
	}
	for _, env := range cases {
		legacy, err := AppendReplyEnvelope(nil, env)
		if err != nil {
			t.Fatal(err)
		}
		flated, res, err := AppendReplyEnvelopeFlate(nil, env)
		if err != nil {
			t.Fatal(err)
		}
		if res.Compressed || res.RawBytes != 0 {
			t.Fatalf("error reply produced FlateResult %+v, want zero", res)
		}
		if !bytes.Equal(legacy, flated) {
			t.Fatalf("error reply layout differs from legacy for %+v", env)
		}
		got, err := DecodeReplyEnvelopeFlate(flated)
		if err != nil {
			t.Fatal(err)
		}
		if got.Err != env.Err || got.ErrKind != env.ErrKind {
			t.Fatalf("error reply round trip: got %+v want %+v", got, env)
		}
	}
}

// TestFlateRejectsLyingLengthPrefix: the rawLen prefix must match the
// deflate stream exactly — a claim too large (stream exhausts early), too
// small (stream has leftovers), or past the allocation cap is an error
// before any decoded field is trusted.
func TestFlateRejectsLyingLengthPrefix(t *testing.T) {
	env := Envelope{ID: 1, Payload: WriteRequest{Key: "k", Value: compressibleValue(4096)}}
	b, res, err := AppendEnvelopeFlate(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compressed {
		t.Fatal("frame unexpectedly raw; test is vacuous")
	}
	// Envelope body = uvarint(ID=1) ++ TagCompressed ++ uvarint(rawLen) ++ stream.
	if b[1] != TagCompressed {
		t.Fatalf("unexpected layout: slot tag %d", b[1])
	}
	rawLen, stream, err := decodeUvarint(b[2:])
	if err != nil {
		t.Fatal(err)
	}
	rebuild := func(claim uint64) []byte {
		out := []byte{b[0], TagCompressed}
		out = appendUvarint(out, claim)
		return append(out, stream...)
	}
	for name, frame := range map[string][]byte{
		"claims too many bytes": rebuild(rawLen + 100),
		"claims too few bytes":  rebuild(rawLen - 100),
		"claims past alloc cap": rebuild(maxInflatedSize + 1),
		"truncated stream":      b[:len(b)-10],
		"corrupted stream":      append(append([]byte{}, b[:len(b)-10]...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff),
		"empty stream":          rebuild(rawLen)[:2+len(b)-2-len(stream)],
	} {
		if _, err := DecodeEnvelopeFlate(frame); err == nil {
			t.Errorf("%s: decoder accepted the frame", name)
		}
	}
}

// TestFlateTrailingGarbageInsideFrame: a compressed stream that inflates to
// a valid message followed by extra bytes is rejected — the inner decode
// must consume the inflated buffer exactly.
func TestFlateTrailingGarbageInsideFrame(t *testing.T) {
	msg, err := AppendMessage(nil, ReadRequest{Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	raw := append(msg, []byte("trailing-garbage")...)
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	frame := appendUvarint(nil, 1) // envelope ID
	frame = append(frame, TagCompressed)
	frame = appendUvarint(frame, uint64(len(raw)))
	frame = append(frame, buf.Bytes()...)
	if _, err := DecodeEnvelopeFlate(frame); err == nil {
		t.Fatal("decoder accepted trailing bytes inside a compressed frame")
	}
}
