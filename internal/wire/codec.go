package wire

// This file implements the hand-rolled binary codec used by the TCP
// transport's fast path (transport.CodecBinary). See the package doc for the
// frame layout, the type-tag table and the versioning rule.
//
// Design constraints, in order:
//
//  1. Zero reflection on the hot path. Every message implements
//     AppendTo([]byte) []byte / DecodeFrom([]byte) ([]byte, error)
//     directly against the wire bytes.
//  2. Bounded allocation. Encoders append into caller-supplied (usually
//     pooled, see GetBuffer/PutBuffer) buffers; decoders copy variable-length
//     fields out of the shared read buffer exactly once, because the buffer
//     is reused for the next frame while decoded values escape to the
//     protocol layer.
//  3. Hostile input safety. Every length read from the wire is checked
//     against the bytes actually remaining before any allocation, so a
//     corrupt or malicious frame cannot make the decoder allocate more than
//     the frame's own size (FuzzDecodeMessage locks this in).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"pqs/internal/ts"
)

// Type tags identifying each message on the wire. Tags are append-only and
// never reused: changing a message's field layout requires minting a new tag
// (see the versioning rule in the package doc). Tag 0 is reserved for "no
// payload" in reply envelopes.
const (
	TagNone         byte = 0
	TagReadRequest  byte = 1
	TagReadReply    byte = 2
	TagWriteRequest byte = 3
	TagWriteReply   byte = 4
	TagGossipReq    byte = 5
	TagGossipReply  byte = 6
	TagPingRequest  byte = 7
	TagPingReply    byte = 8
	// TagErrKind is valid only in a reply envelope's payload slot: it
	// carries no message, just one ErrKind* byte classifying the reply's
	// error. Minted (rather than appending a field to the envelope layout)
	// so a decoder predating it fails the frame with ErrUnknownTag instead
	// of desyncing; see the versioning rule in the package doc.
	TagErrKind byte = 9
	// TagCompressed wraps a DEFLATE-compressed tagged message in an
	// envelope's payload slot (transport.CodecBinaryFlate; see flate.go).
	// Minted as its own tag so a decoder predating compression fails the
	// frame with ErrUnknownTag instead of misparsing deflate bytes.
	TagCompressed byte = 10
	// TagGossipDeltaReq / TagGossipDeltaReply carry the watermark-bounded
	// anti-entropy exchange that supersedes the full-snapshot
	// GossipRequest/GossipReply pair for WAN deployments.
	TagGossipDeltaReq   byte = 11
	TagGossipDeltaReply byte = 12
)

// Codec decode errors.
var (
	// ErrShortBuffer indicates a message was truncated.
	ErrShortBuffer = errors.New("wire: short buffer")
	// ErrUnknownTag indicates an unrecognized message type tag.
	ErrUnknownTag = errors.New("wire: unknown message tag")
)

// Codec activity counters live with the transport now, one set per
// connection (transport.ConnCodecStats): the process-wide atomics this
// package used to bump on every encode and decode were a single cache line
// shared by every connection in the process — measurable contention on the
// hot path, and useless for attributing traffic. The codec itself is
// counter-free.

// bufPool recycles encode scratch buffers across calls and connections.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetBuffer returns a pooled byte buffer (length 0) for encoding frames.
// Return it with PutBuffer when the bytes have been flushed to the wire.
func GetBuffer() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuffer recycles a buffer obtained from GetBuffer. Oversized buffers
// (from the occasional huge gossip frame) are dropped rather than pinned in
// the pool.
func PutBuffer(b *[]byte) {
	if cap(*b) > 1<<20 {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// --- primitive append/decode helpers -----------------------------------

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func decodeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrShortBuffer
	}
	return v, b[n:], nil
}

// appendBytes writes a uvarint length followed by the raw bytes. nil and
// empty slices are indistinguishable on the wire (both decode to nil, which
// matches what an encoding/gob round trip produces).
func appendBytes(b, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// decodeBytes reads a length-prefixed field, copying it out of b (the read
// buffer is reused for the next frame, decoded values escape). A zero length
// decodes to nil.
func decodeBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := decodeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, ErrShortBuffer
	}
	if n == 0 {
		return nil, rest, nil
	}
	out := make([]byte, n)
	copy(out, rest[:n])
	return out, rest[n:], nil
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	n, rest, err := decodeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, ErrShortBuffer
	}
	return string(rest[:n]), rest[n:], nil
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func decodeBool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, ErrShortBuffer
	}
	return b[0] != 0, b[1:], nil
}

func appendStamp(b []byte, s ts.Stamp) []byte {
	b = appendUvarint(b, s.Counter)
	return appendUvarint(b, uint64(s.Writer))
}

func decodeStamp(b []byte) (ts.Stamp, []byte, error) {
	c, b, err := decodeUvarint(b)
	if err != nil {
		return ts.Stamp{}, nil, err
	}
	w, b, err := decodeUvarint(b)
	if err != nil {
		return ts.Stamp{}, nil, err
	}
	return ts.Stamp{Counter: c, Writer: uint32(w)}, b, nil
}

// --- per-message AppendTo / DecodeFrom ---------------------------------

// AppendTo appends the message body (no tag) to b.
func (m ReadRequest) AppendTo(b []byte) []byte { return appendString(b, m.Key) }

// DecodeFrom decodes the message body from b, returning the unconsumed rest.
func (m *ReadRequest) DecodeFrom(b []byte) ([]byte, error) {
	var err error
	m.Key, b, err = decodeString(b)
	return b, err
}

// AppendTo appends the message body (no tag) to b.
func (m ReadReply) AppendTo(b []byte) []byte {
	b = appendBool(b, m.Found)
	b = appendBytes(b, m.Value)
	b = appendStamp(b, m.Stamp)
	return appendBytes(b, m.Sig)
}

// DecodeFrom decodes the message body from b, returning the unconsumed rest.
func (m *ReadReply) DecodeFrom(b []byte) ([]byte, error) {
	var err error
	if m.Found, b, err = decodeBool(b); err != nil {
		return nil, err
	}
	if m.Value, b, err = decodeBytes(b); err != nil {
		return nil, err
	}
	if m.Stamp, b, err = decodeStamp(b); err != nil {
		return nil, err
	}
	m.Sig, b, err = decodeBytes(b)
	return b, err
}

// AppendTo appends the message body (no tag) to b.
func (m WriteRequest) AppendTo(b []byte) []byte {
	b = appendString(b, m.Key)
	b = appendBytes(b, m.Value)
	b = appendStamp(b, m.Stamp)
	return appendBytes(b, m.Sig)
}

// DecodeFrom decodes the message body from b, returning the unconsumed rest.
func (m *WriteRequest) DecodeFrom(b []byte) ([]byte, error) {
	var err error
	if m.Key, b, err = decodeString(b); err != nil {
		return nil, err
	}
	if m.Value, b, err = decodeBytes(b); err != nil {
		return nil, err
	}
	if m.Stamp, b, err = decodeStamp(b); err != nil {
		return nil, err
	}
	m.Sig, b, err = decodeBytes(b)
	return b, err
}

// AppendTo appends the message body (no tag) to b.
func (m WriteReply) AppendTo(b []byte) []byte { return appendBool(b, m.Stored) }

// DecodeFrom decodes the message body from b, returning the unconsumed rest.
func (m *WriteReply) DecodeFrom(b []byte) ([]byte, error) {
	var err error
	m.Stored, b, err = decodeBool(b)
	return b, err
}

func appendItem(b []byte, it Item) []byte {
	b = appendString(b, it.Key)
	b = appendBytes(b, it.Value)
	b = appendStamp(b, it.Stamp)
	return appendBytes(b, it.Sig)
}

func decodeItem(b []byte) (Item, []byte, error) {
	var it Item
	var err error
	if it.Key, b, err = decodeString(b); err != nil {
		return it, nil, err
	}
	if it.Value, b, err = decodeBytes(b); err != nil {
		return it, nil, err
	}
	if it.Stamp, b, err = decodeStamp(b); err != nil {
		return it, nil, err
	}
	it.Sig, b, err = decodeBytes(b)
	return it, b, err
}

func appendItems(b []byte, items []Item) []byte {
	b = appendUvarint(b, uint64(len(items)))
	for _, it := range items {
		b = appendItem(b, it)
	}
	return b
}

func decodeItems(b []byte) ([]Item, []byte, error) {
	n, b, err := decodeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, b, nil
	}
	// Every item occupies at least 5 bytes (three length prefixes plus a
	// minimal two-uvarint stamp), so a count beyond len/5 is corrupt;
	// reject it before allocating anything for it.
	if n > uint64(len(b))/5 {
		return nil, nil, ErrShortBuffer
	}
	items := make([]Item, 0, n)
	for i := uint64(0); i < n; i++ {
		var it Item
		if it, b, err = decodeItem(b); err != nil {
			return nil, nil, err
		}
		items = append(items, it)
	}
	return items, b, nil
}

// AppendTo appends the message body (no tag) to b.
func (m GossipRequest) AppendTo(b []byte) []byte { return appendItems(b, m.Entries) }

// DecodeFrom decodes the message body from b, returning the unconsumed rest.
func (m *GossipRequest) DecodeFrom(b []byte) ([]byte, error) {
	var err error
	m.Entries, b, err = decodeItems(b)
	return b, err
}

// AppendTo appends the message body (no tag) to b.
func (m GossipReply) AppendTo(b []byte) []byte { return appendItems(b, m.Entries) }

// DecodeFrom decodes the message body from b, returning the unconsumed rest.
func (m *GossipReply) DecodeFrom(b []byte) ([]byte, error) {
	var err error
	m.Entries, b, err = decodeItems(b)
	return b, err
}

// AppendTo appends the message body (no tag) to b.
func (m GossipDeltaRequest) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.Since)
	return appendItems(b, m.Entries)
}

// DecodeFrom decodes the message body from b, returning the unconsumed rest.
func (m *GossipDeltaRequest) DecodeFrom(b []byte) ([]byte, error) {
	var err error
	if m.Since, b, err = decodeUvarint(b); err != nil {
		return nil, err
	}
	m.Entries, b, err = decodeItems(b)
	return b, err
}

// AppendTo appends the message body (no tag) to b.
func (m GossipDeltaReply) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.UpTo)
	return appendItems(b, m.Entries)
}

// DecodeFrom decodes the message body from b, returning the unconsumed rest.
func (m *GossipDeltaReply) DecodeFrom(b []byte) ([]byte, error) {
	var err error
	if m.UpTo, b, err = decodeUvarint(b); err != nil {
		return nil, err
	}
	m.Entries, b, err = decodeItems(b)
	return b, err
}

// uvarintLen returns the encoded size of v as a uvarint, without encoding.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EncodedSize returns the exact number of bytes appendItem would emit for
// it, computed arithmetically so byte accounting (diffusion's
// suppressed-bytes counters) never has to serialize anything.
func (it Item) EncodedSize() int {
	return uvarintLen(uint64(len(it.Key))) + len(it.Key) +
		uvarintLen(uint64(len(it.Value))) + len(it.Value) +
		uvarintLen(it.Stamp.Counter) + uvarintLen(uint64(it.Stamp.Writer)) +
		uvarintLen(uint64(len(it.Sig))) + len(it.Sig)
}

// AppendTo appends the message body (no tag) to b.
func (m PingRequest) AppendTo(b []byte) []byte { return b }

// DecodeFrom decodes the message body from b, returning the unconsumed rest.
func (m *PingRequest) DecodeFrom(b []byte) ([]byte, error) { return b, nil }

// AppendTo appends the message body (no tag) to b.
func (m PingReply) AppendTo(b []byte) []byte {
	return binary.AppendVarint(b, int64(m.ServerID))
}

// DecodeFrom decodes the message body from b, returning the unconsumed rest.
func (m *PingReply) DecodeFrom(b []byte) ([]byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return nil, ErrShortBuffer
	}
	m.ServerID = int(v)
	return b[n:], nil
}

// --- tagged messages and envelopes -------------------------------------

// AppendMessage appends msg's type tag and body to b. It fails on payload
// types outside the 10 wire messages (the binary codec is deliberately
// closed; see the versioning rule in the package doc).
func AppendMessage(b []byte, msg any) ([]byte, error) {

	switch m := msg.(type) {
	case ReadRequest:
		b = m.AppendTo(append(b, TagReadRequest))
	case ReadReply:
		b = m.AppendTo(append(b, TagReadReply))
	case WriteRequest:
		b = m.AppendTo(append(b, TagWriteRequest))
	case WriteReply:
		b = m.AppendTo(append(b, TagWriteReply))
	case GossipRequest:
		b = m.AppendTo(append(b, TagGossipReq))
	case GossipReply:
		b = m.AppendTo(append(b, TagGossipReply))
	case GossipDeltaRequest:
		b = m.AppendTo(append(b, TagGossipDeltaReq))
	case GossipDeltaReply:
		b = m.AppendTo(append(b, TagGossipDeltaReply))
	case PingRequest:
		b = m.AppendTo(append(b, TagPingRequest))
	case PingReply:
		b = m.AppendTo(append(b, TagPingReply))
	default:
		return b, fmt.Errorf("wire: cannot binary-encode %T", msg)
	}
	return b, nil
}

// DecodeMessage decodes one tagged message from b, returning the decoded
// value (a concrete wire struct, matching what the gob path delivers) and
// the unconsumed rest.
func DecodeMessage(b []byte) (any, []byte, error) {
	if len(b) < 1 {
		return nil, nil, ErrShortBuffer
	}
	tag, body := b[0], b[1:]
	var (
		msg  any
		rest []byte
		err  error
	)
	switch tag {
	case TagReadRequest:
		var m ReadRequest
		rest, err = m.DecodeFrom(body)
		msg = m
	case TagReadReply:
		var m ReadReply
		rest, err = m.DecodeFrom(body)
		msg = m
	case TagWriteRequest:
		var m WriteRequest
		rest, err = m.DecodeFrom(body)
		msg = m
	case TagWriteReply:
		var m WriteReply
		rest, err = m.DecodeFrom(body)
		msg = m
	case TagGossipReq:
		var m GossipRequest
		rest, err = m.DecodeFrom(body)
		msg = m
	case TagGossipReply:
		var m GossipReply
		rest, err = m.DecodeFrom(body)
		msg = m
	case TagGossipDeltaReq:
		var m GossipDeltaRequest
		rest, err = m.DecodeFrom(body)
		msg = m
	case TagGossipDeltaReply:
		var m GossipDeltaReply
		rest, err = m.DecodeFrom(body)
		msg = m
	case TagPingRequest:
		var m PingRequest
		rest, err = m.DecodeFrom(body)
		msg = m
	case TagPingReply:
		var m PingReply
		rest, err = m.DecodeFrom(body)
		msg = m
	default:
		return nil, nil, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
	}
	if err != nil {
		return nil, nil, err
	}
	return msg, rest, nil
}

// AppendEnvelope appends a request envelope body (no frame length prefix;
// the transport adds it) to b.
func AppendEnvelope(b []byte, env Envelope) ([]byte, error) {
	b = appendUvarint(b, env.ID)
	return AppendMessage(b, env.Payload)
}

// DecodeEnvelope decodes a request envelope body produced by AppendEnvelope.
func DecodeEnvelope(b []byte) (Envelope, error) {
	var env Envelope
	var err error
	if env.ID, b, err = decodeUvarint(b); err != nil {
		return env, err
	}
	env.Payload, b, err = DecodeMessage(b)
	if err != nil {
		return env, err
	}
	if len(b) != 0 {
		return env, fmt.Errorf("wire: %d trailing bytes after envelope", len(b))
	}
	return env, nil
}

// AppendReplyEnvelope appends a reply envelope body to b. Error replies
// carry no payload: their payload slot holds TagNone when the error is
// unclassified — byte-identical to the pre-ErrKind layout — or TagErrKind
// plus one classification byte otherwise (a minted tag, per the versioning
// rule, so decoders predating it fail the frame instead of desyncing).
// Success replies with a nil payload are written as TagNone.
func AppendReplyEnvelope(b []byte, env ReplyEnvelope) ([]byte, error) {
	b = appendUvarint(b, env.ID)
	b = appendString(b, env.Err)
	if env.Err != "" {
		if env.ErrKind == ErrKindUnknown {
			return append(b, TagNone), nil
		}
		return append(b, TagErrKind, env.ErrKind), nil
	}
	if env.Payload == nil {
		return append(b, TagNone), nil
	}
	return AppendMessage(b, env.Payload)
}

// DecodeReplyEnvelope decodes a reply envelope body produced by
// AppendReplyEnvelope. A payload slot holding TagNone leaves ErrKind at
// ErrKindUnknown, so replies from peers predating the kind extension decode
// as unclassified (retryable) rather than failing.
func DecodeReplyEnvelope(b []byte) (ReplyEnvelope, error) {
	var env ReplyEnvelope
	var err error
	if env.ID, b, err = decodeUvarint(b); err != nil {
		return env, err
	}
	if env.Err, b, err = decodeString(b); err != nil {
		return env, err
	}
	if len(b) < 1 {
		return env, ErrShortBuffer
	}
	switch b[0] {
	case TagNone:
		b = b[1:]
	case TagErrKind:
		if len(b) < 2 {
			return env, ErrShortBuffer
		}
		env.ErrKind = b[1]
		b = b[2:]
	default:
		if env.Payload, b, err = DecodeMessage(b); err != nil {
			return env, err
		}
	}
	if len(b) != 0 {
		return env, fmt.Errorf("wire: %d trailing bytes after reply envelope", len(b))
	}
	return env, nil
}
