package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"pqs/internal/ts"
)

func TestRegisterGobIdempotent(t *testing.T) {
	RegisterGob()
	RegisterGob() // must not panic on duplicate registration
}

// roundTrip encodes and decodes an envelope carrying payload.
func roundTrip(t *testing.T, payload any) any {
	t.Helper()
	RegisterGob()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Envelope{ID: 7, Payload: payload}); err != nil {
		t.Fatalf("encode %T: %v", payload, err)
	}
	var out Envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode %T: %v", payload, err)
	}
	if out.ID != 7 {
		t.Fatalf("envelope id %d", out.ID)
	}
	return out.Payload
}

func TestEnvelopeRoundTripAllMessages(t *testing.T) {
	stamp := ts.Stamp{Counter: 42, Writer: 7}
	msgs := []any{
		ReadRequest{Key: "k"},
		ReadReply{Found: true, Value: []byte("v"), Stamp: stamp, Sig: []byte("s")},
		WriteRequest{Key: "k", Value: []byte("v"), Stamp: stamp, Sig: []byte("s")},
		WriteReply{Stored: true},
		GossipRequest{Entries: []Item{{Key: "k", Value: []byte("v"), Stamp: stamp}}},
		GossipReply{Entries: []Item{{Key: "k2", Value: []byte("w"), Stamp: stamp}}},
		PingRequest{},
		PingReply{ServerID: 3},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		switch orig := m.(type) {
		case ReadReply:
			rr, ok := got.(ReadReply)
			if !ok || !rr.Found || string(rr.Value) != "v" || rr.Stamp != stamp {
				t.Errorf("ReadReply round trip: %+v", got)
			}
		case WriteRequest:
			wr, ok := got.(WriteRequest)
			if !ok || wr.Key != orig.Key || wr.Stamp != stamp {
				t.Errorf("WriteRequest round trip: %+v", got)
			}
		case GossipRequest:
			gr, ok := got.(GossipRequest)
			if !ok || len(gr.Entries) != 1 || gr.Entries[0].Key != "k" {
				t.Errorf("GossipRequest round trip: %+v", got)
			}
		case PingReply:
			pr, ok := got.(PingReply)
			if !ok || pr.ServerID != 3 {
				t.Errorf("PingReply round trip: %+v", got)
			}
		default:
			if got == nil {
				t.Errorf("%T round trip returned nil", m)
			}
		}
	}
}

func TestReplyEnvelopeCarriesError(t *testing.T) {
	RegisterGob()
	var buf bytes.Buffer
	in := ReplyEnvelope{ID: 9, Err: "boom"}
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatal(err)
	}
	var out ReplyEnvelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 9 || out.Err != "boom" || out.Payload != nil {
		t.Errorf("round trip: %+v", out)
	}
}
