// Package wire defines the messages exchanged between clients and replica
// servers: the read and write RPCs of the paper's access protocols
// (Sections 3.1, 4 and 5.2) plus the push-pull messages of the diffusion
// mechanism (Section 1.1). Both transports carry these types; the TCP
// transport additionally gob-encodes them, which is why RegisterGob exists.
package wire

import (
	"encoding/gob"
	"sync"

	"pqs/internal/ts"
)

// ReadRequest asks a server for its current copy of a key.
type ReadRequest struct {
	Key string
}

// ReadReply carries one server's value-timestamp pair (the paper's
// ⟨v_u, t_u⟩). Sig is empty in benign deployments and carries the writer's
// ed25519 signature when self-verifying data is in use.
type ReadReply struct {
	Found bool
	Value []byte
	Stamp ts.Stamp
	Sig   []byte
}

// WriteRequest installs a value-timestamp pair at a server.
type WriteRequest struct {
	Key   string
	Value []byte
	Stamp ts.Stamp
	Sig   []byte
}

// WriteReply acknowledges a write. Stored reports whether the server adopted
// the value (false when it already held a later timestamp for the key).
type WriteReply struct {
	Stored bool
}

// Item is one replicated entry as exchanged by the diffusion protocol.
type Item struct {
	Key   string
	Value []byte
	Stamp ts.Stamp
	Sig   []byte
}

// GossipRequest is a push-pull anti-entropy round: the initiator sends a
// sample of its entries and asks for anything the peer holds with a newer
// timestamp.
type GossipRequest struct {
	Entries []Item
}

// GossipReply returns the entries the peer holds that dominate what the
// initiator sent (or that the initiator did not mention).
type GossipReply struct {
	Entries []Item
}

// PingRequest probes server liveness.
type PingRequest struct{}

// PingReply answers a ping.
type PingReply struct {
	ServerID int
}

// Envelope frames a request on the TCP transport.
type Envelope struct {
	ID      uint64
	Payload any
}

// ReplyEnvelope frames a response on the TCP transport. Err is the
// server-side error text, empty on success.
type ReplyEnvelope struct {
	ID      uint64
	Payload any
	Err     string
}

var registerOnce sync.Once

// RegisterGob registers every wire message with encoding/gob. Safe to call
// multiple times; the TCP transport calls it on construction.
func RegisterGob() {
	registerOnce.Do(func() {
		gob.Register(ReadRequest{})
		gob.Register(ReadReply{})
		gob.Register(WriteRequest{})
		gob.Register(WriteReply{})
		gob.Register(GossipRequest{})
		gob.Register(GossipReply{})
		gob.Register(PingRequest{})
		gob.Register(PingReply{})
	})
}
