// Package wire defines the messages exchanged between clients and replica
// servers: the read and write RPCs of the paper's access protocols
// (Sections 3.1, 4 and 5.2) plus the push-pull messages of the diffusion
// mechanism (Section 1.1). Both transports carry these types. The TCP
// transport serializes them with the hand-rolled binary codec in codec.go by
// default, and can fall back to encoding/gob (which is why RegisterGob
// exists) for wire-compat testing.
//
// # Binary wire format
//
// The TCP transport frames every message as
//
//	frame     := uvarint(len(body)) body
//	body      := request | reply
//	request   := uvarint(ID) tag(1 byte) payload
//	reply     := uvarint(ID) string(Err) tag(1 byte) payload
//	string    := uvarint(len) bytes
//
// where uvarint is Go's encoding/binary unsigned varint. The one-byte tag
// selects the payload layout:
//
//	1 ReadRequest    key
//	2 ReadReply      found value stamp sig
//	3 WriteRequest   key value stamp sig
//	4 WriteReply     stored
//	5 GossipRequest  uvarint(count) item*
//	6 GossipReply    uvarint(count) item*
//	7 PingRequest    (empty)
//	8 PingReply      varint(serverID)
//	9 ErrKind        kind(1 byte)          (reply payload slot only)
//	10 Compressed    uvarint(rawLen) deflate(tag payload)
//	11 GossipDeltaRequest  uvarint(since) uvarint(count) item*
//	12 GossipDeltaReply    uvarint(upTo) uvarint(count) item*
//	item             key value stamp sig
//	stamp            uvarint(counter) uvarint(writer)
//
// Tag 9 carries no message: in an error reply's payload slot it holds one
// byte with the server's classification of its own error (ErrKind*).
// Unclassified error replies — and every reply from a server predating the
// extension — use tag 0 there instead, exactly the legacy layout, and
// decode with ErrKind zero (Unknown, retryable). A decoder predating tag 9
// that meets a classified reply fails the frame with ErrUnknownTag and
// closes the connection — the versioning rule's loud failure mode, never a
// silent desync.
//
// Tag 10 is the compressed-frame wrapper used by transport.CodecBinaryFlate
// (flate.go): it occupies the payload slot of a request or reply envelope,
// and its body is the DEFLATE stream of the tagged message (`tag payload`)
// that would have sat there uncompressed, prefixed by the decompressed
// length. The envelope prefix (uvarint ID, and the Err string on replies)
// stays uncompressed and byte-identical to the legacy layout. Frames below
// the compression threshold — or ones deflate cannot shrink — are emitted in
// the legacy uncompressed layout, so small traffic is byte-identical across
// the two codecs. A decoder predating tag 10 that meets a compressed frame
// fails loudly with ErrUnknownTag, per the versioning rule.
//
// found/stored are one byte (0/1); key is a string; value/sig are
// length-prefixed byte fields where a zero length decodes to nil (matching a
// gob round trip of an empty slice). Tag 0 is reserved: a reply whose
// payload slot holds tag 0 carries no payload (error replies).
//
// Versioning rule: tags are append-only and never reused. Message layouts
// are frozen once a tag ships — extending a message means minting a new tag
// (and keeping the old decoder alive for one release), never appending
// fields to an existing layout, because decoders reject frames with trailing
// bytes. Unknown tags fail the frame, closing the connection, which is the
// same failure mode as a gob type mismatch.
package wire

import (
	"encoding/gob"
	"sync"

	"pqs/internal/ts"
)

// ReadRequest asks a server for its current copy of a key.
type ReadRequest struct {
	Key string
}

// ReadReply carries one server's value-timestamp pair (the paper's
// ⟨v_u, t_u⟩). Sig is empty in benign deployments and carries the writer's
// ed25519 signature when self-verifying data is in use.
type ReadReply struct {
	Found bool
	Value []byte
	Stamp ts.Stamp
	Sig   []byte
}

// WriteRequest installs a value-timestamp pair at a server.
type WriteRequest struct {
	Key   string
	Value []byte
	Stamp ts.Stamp
	Sig   []byte
}

// WriteReply acknowledges a write. Stored reports whether the server adopted
// the value (false when it already held a later timestamp for the key).
type WriteReply struct {
	Stored bool
}

// Item is one replicated entry as exchanged by the diffusion protocol.
type Item struct {
	Key   string
	Value []byte
	Stamp ts.Stamp
	Sig   []byte
}

// GossipRequest is a push-pull anti-entropy round: the initiator sends a
// sample of its entries and asks for anything the peer holds with a newer
// timestamp.
type GossipRequest struct {
	Entries []Item
}

// GossipReply returns the entries the peer holds that dominate what the
// initiator sent (or that the initiator did not mention).
type GossipReply struct {
	Entries []Item
}

// GossipDeltaRequest is a watermark-bounded anti-entropy round (the WAN
// replacement for GossipRequest's full-snapshot push). The initiator sends
// only the entries its store adopted since the last acknowledged exchange
// with this peer, plus Since — the high-watermark of the peer's own store
// sequence the initiator has already pulled — asking for everything newer.
// Watermark state lives entirely on the initiator; the handler is stateless.
type GossipDeltaRequest struct {
	// Since is the peer-store sequence number up to which the initiator
	// already holds the peer's entries. Zero requests a full pull (first
	// contact). A Since ahead of the peer's current sequence means the
	// peer lost state (restart); the peer answers with a full pull.
	Since uint64
	// Entries are the initiator's adopted entries the peer has not
	// acknowledged: a full snapshot on first contact, a delta afterwards.
	Entries []Item
}

// GossipDeltaReply answers a GossipDeltaRequest with the entries the peer
// adopted in (Since, UpTo] of its own store sequence. UpTo becomes the
// initiator's new pull watermark for this peer.
type GossipDeltaReply struct {
	// UpTo is the peer's store sequence as of this reply; Entries covers
	// (request.Since, UpTo]. An UpTo below the Since the initiator sent
	// signals the peer regressed (restarted) and Entries is a full pull.
	UpTo    uint64
	Entries []Item
}

// PingRequest probes server liveness.
type PingRequest struct{}

// PingReply answers a ping.
type PingReply struct {
	ServerID int
}

// Envelope frames a request on the TCP transport.
type Envelope struct {
	ID      uint64
	Payload any
}

// Error kinds carried on reply envelopes: the server's classification of
// its own error, so clients can tell failures worth retrying from failures
// no retry can fix without parsing error strings.
const (
	// ErrKindUnknown is the zero value: an error the server did not
	// positively classify (or a reply from a peer predating the kind
	// extension). Clients treat Unknown as retryable.
	ErrKindUnknown byte = 0
	// ErrKindTransient marks failures that may succeed on retry: handler
	// timeouts, shutdown races, overload shedding.
	ErrKindTransient byte = 1
	// ErrKindPermanent marks failures retrying cannot fix: codec
	// mismatches, unsupported payload types, malformed requests.
	ErrKindPermanent byte = 2
)

// PermanentError marks err as a positively-identified permanent failure:
// retrying the request — or re-sampling a quorum around it — cannot succeed
// (unsupported request type, malformed payload, codec mismatch). The TCP
// server carries the classification to clients as ErrKindPermanent; errors
// not so marked travel as Unknown (or Transient) and stay retryable.
func PermanentError(err error) error { return &permanentError{err} }

type permanentError struct{ err error }

func (e *permanentError) Error() string   { return e.err.Error() }
func (e *permanentError) Unwrap() error   { return e.err }
func (e *permanentError) Permanent() bool { return true }

// ReplyEnvelope frames a response on the TCP transport. Err is the
// server-side error text, empty on success; ErrKind classifies it
// (ErrKind*) and is meaningful only when Err is non-empty.
type ReplyEnvelope struct {
	ID      uint64
	Payload any
	Err     string
	ErrKind byte
}

var registerOnce sync.Once

// RegisterGob registers every wire message with encoding/gob. Safe to call
// multiple times; the TCP transport calls it on construction.
func RegisterGob() {
	registerOnce.Do(func() {
		gob.Register(ReadRequest{})
		gob.Register(ReadReply{})
		gob.Register(WriteRequest{})
		gob.Register(WriteReply{})
		gob.Register(GossipRequest{})
		gob.Register(GossipReply{})
		gob.Register(GossipDeltaRequest{})
		gob.Register(GossipDeltaReply{})
		gob.Register(PingRequest{})
		gob.Register(PingReply{})
	})
}
