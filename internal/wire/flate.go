package wire

// Compressed frames for transport.CodecBinaryFlate.
//
// The compressed layout wraps only the payload slot of an envelope: the
// uvarint ID (and, on replies, the Err string and the TagNone/TagErrKind
// fast paths) stay byte-identical to the legacy layout, and the tagged
// message that would have followed is replaced by
//
//	TagCompressed uvarint(rawLen) deflate(tag payload)
//
// where rawLen is the decompressed length of `tag payload`. Three rules keep
// the two codecs interoperable-by-failure rather than silently divergent:
//
//  1. Threshold: payloads shorter than FlateMinSize are emitted in the
//     legacy uncompressed layout — deflate's fixed overhead loses on small
//     frames, and byte-identical small traffic keeps goldens and captures
//     comparable across codecs.
//  2. Incompressible fallback: if the deflate stream (plus wrapper overhead)
//     is not strictly smaller than the raw payload, the raw layout is kept.
//     Already-compressed or high-entropy values never pay an inflation tax.
//  3. Loud failure: TagCompressed is a minted tag, so a CodecBinary peer
//     that receives a compressed frame fails it with ErrUnknownTag and
//     closes the connection — the versioning rule's failure mode, never a
//     desync. (Both ends must agree on the codec; the framing is not
//     self-describing.)
//
// Decoding is hostile-input safe: rawLen is capped before any allocation,
// the inflated stream must produce exactly rawLen bytes (a lying length
// prefix in either direction is an error), and the inflated payload must
// decode with no trailing bytes. FuzzDecodeMessage locks this in.

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// FlateMinSize is the compression threshold: envelope payloads shorter than
// this are sent in the legacy uncompressed layout. 256 bytes clears every
// control message (reads, acks, pings) while catching value-bearing replies
// and gossip batches, where deflate actually pays.
const FlateMinSize = 256

// maxInflatedSize bounds the decompressed size a compressed frame may claim,
// mirroring the transport's 64 MiB frame cap so a hostile rawLen cannot make
// the decoder allocate unboundedly.
const maxInflatedSize = 64 << 20

// FlateResult reports what one compressed-capable encode did, for the
// transport's raw-bytes/wire-bytes/bytes-saved counters.
type FlateResult struct {
	// RawBytes is the size of the uncompressed payload slot (tag+payload).
	RawBytes int
	// WireBytes is the size the payload slot occupies on the wire: equal
	// to RawBytes when the frame went out raw, smaller when compressed.
	WireBytes int
	// Compressed reports whether the compressed layout was used.
	Compressed bool
}

// flateWriterPool recycles *flate.Writer values (each holds ~64 KiB of
// state; constructing one per frame would dominate the encode cost).
var flateWriterPool = sync.Pool{
	New: func() any {
		w, err := flate.NewWriter(io.Discard, flate.DefaultCompression)
		if err != nil {
			// Only reachable with an invalid level constant.
			panic(err)
		}
		return w
	},
}

// flateReader bundles the inflater with its source so both reset together
// from one pool hit.
type flateReader struct {
	src bytes.Reader
	fr  io.ReadCloser
}

var flateReaderPool = sync.Pool{
	New: func() any {
		r := &flateReader{}
		r.fr = flate.NewReader(&r.src)
		return r
	},
}

// appendSink adapts an append-grown byte slice to io.Writer for the flate
// writer, avoiding a bytes.Buffer copy.
type appendSink struct{ b []byte }

func (s *appendSink) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// appendCompressed appends the payload slot for raw (a `tag payload` byte
// string) to b, choosing the compressed or legacy layout per the rules in
// the file comment. raw must not alias b's free capacity.
func appendCompressed(b, raw []byte) ([]byte, FlateResult) {
	res := FlateResult{RawBytes: len(raw), WireBytes: len(raw)}
	if len(raw) < FlateMinSize {
		return append(b, raw...), res
	}
	sink := getSink()
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(sink)
	_, werr := fw.Write(raw)
	cerr := fw.Close()
	flateWriterPool.Put(fw)
	// The wrapper costs the tag byte plus the rawLen prefix; compression
	// must beat the raw layout including that overhead, strictly.
	overhead := 1 + uvarintLen(uint64(len(raw)))
	if werr != nil || cerr != nil || len(sink.b)+overhead >= len(raw) {
		b = append(b, raw...)
		putSink(sink)
		return b, res
	}
	b = append(b, TagCompressed)
	b = appendUvarint(b, uint64(len(raw)))
	b = append(b, sink.b...)
	res.WireBytes = len(sink.b) + overhead
	res.Compressed = true
	putSink(sink)
	return b, res
}

// sinkPool recycles compression scratch sinks (distinct from bufPool so a
// caller already holding a GetBuffer can't deadlock-by-aliasing).
var sinkPool = sync.Pool{New: func() any { return &appendSink{b: make([]byte, 0, 512)} }}

func getSink() *appendSink { return sinkPool.Get().(*appendSink) }

func putSink(s *appendSink) {
	if cap(s.b) > 1<<20 {
		return
	}
	s.b = s.b[:0]
	sinkPool.Put(s)
}

// decodeCompressed inflates a payload slot that starts with TagCompressed
// (b[0] == TagCompressed on entry) and returns the decompressed `tag
// payload` bytes in a pooled buffer. The caller must PutBuffer the returned
// buffer after the decoded message's fields have been copied out (which
// DecodeMessage's decoders always do).
func decodeCompressed(b []byte) (*[]byte, error) {
	rawLen, comp, err := decodeUvarint(b[1:])
	if err != nil {
		return nil, err
	}
	if rawLen > maxInflatedSize {
		return nil, fmt.Errorf("wire: compressed frame claims %d inflated bytes (cap %d)", rawLen, int64(maxInflatedSize))
	}
	fr := flateReaderPool.Get().(*flateReader)
	defer flateReaderPool.Put(fr)
	defer fr.src.Reset(nil) // don't pin the frame buffer while pooled
	fr.src.Reset(comp)
	if err := fr.fr.(flate.Resetter).Reset(&fr.src, nil); err != nil {
		return nil, err
	}
	bp := GetBuffer()
	if cap(*bp) < int(rawLen) {
		*bp = make([]byte, rawLen)
	}
	raw := (*bp)[:rawLen]
	if _, err := io.ReadFull(fr.fr, raw); err != nil {
		// Truncated or corrupt stream, or a length prefix claiming more
		// bytes than the stream holds.
		PutBuffer(bp)
		return nil, fmt.Errorf("wire: inflate compressed frame: %w", err)
	}
	// A length prefix claiming FEWER bytes than the stream holds is just as
	// much a lie: the stream must be exhausted exactly at rawLen.
	var one [1]byte
	if n, err := fr.fr.Read(one[:]); n != 0 || err != io.EOF {
		PutBuffer(bp)
		return nil, fmt.Errorf("wire: compressed frame longer than its %d-byte length prefix", rawLen)
	}
	*bp = raw
	return bp, nil
}

// decodeMessageMaybeCompressed decodes the payload slot at b, accepting both
// the legacy uncompressed layout and the TagCompressed wrapper. It returns
// the decoded message and the unconsumed rest of b (always empty bytes after
// a compressed slot, which spans the remainder of the envelope).
func decodeMessageMaybeCompressed(b []byte) (any, []byte, error) {
	if len(b) >= 1 && b[0] == TagCompressed {
		bp, err := decodeCompressed(b)
		if err != nil {
			return nil, nil, err
		}
		msg, rest, err := DecodeMessage(*bp)
		if err == nil && len(rest) != 0 {
			err = fmt.Errorf("wire: %d trailing bytes inside compressed frame", len(rest))
		}
		PutBuffer(bp)
		if err != nil {
			return nil, nil, err
		}
		return msg, nil, nil
	}
	return DecodeMessage(b)
}

// AppendEnvelopeFlate appends a request envelope body in the
// compressed-capable layout (CodecBinaryFlate): identical to AppendEnvelope
// except that payload slots of FlateMinSize bytes or more that deflate can
// shrink go out as TagCompressed frames. The FlateResult reports raw and
// wire payload sizes for the transport's codec counters.
func AppendEnvelopeFlate(b []byte, env Envelope) ([]byte, FlateResult, error) {
	b = appendUvarint(b, env.ID)
	scratch := GetBuffer()
	raw, err := AppendMessage(*scratch, env.Payload)
	if err != nil {
		PutBuffer(scratch)
		return b, FlateResult{}, err
	}
	var res FlateResult
	b, res = appendCompressed(b, raw)
	*scratch = raw
	PutBuffer(scratch)
	return b, res, nil
}

// DecodeEnvelopeFlate decodes a request envelope body produced by
// AppendEnvelopeFlate — or by AppendEnvelope, since sub-threshold frames are
// byte-identical to the legacy layout.
func DecodeEnvelopeFlate(b []byte) (Envelope, error) {
	var env Envelope
	var err error
	if env.ID, b, err = decodeUvarint(b); err != nil {
		return env, err
	}
	env.Payload, b, err = decodeMessageMaybeCompressed(b)
	if err != nil {
		return env, err
	}
	if len(b) != 0 {
		return env, fmt.Errorf("wire: %d trailing bytes after envelope", len(b))
	}
	return env, nil
}

// AppendReplyEnvelopeFlate appends a reply envelope body in the
// compressed-capable layout. Error replies (TagNone / TagErrKind payload
// slots) are byte-identical to AppendReplyEnvelope — they are far below the
// threshold and compressing them would hide the fast error path from
// packet captures.
func AppendReplyEnvelopeFlate(b []byte, env ReplyEnvelope) ([]byte, FlateResult, error) {
	if env.Err != "" || env.Payload == nil {
		b, err := AppendReplyEnvelope(b, env)
		return b, FlateResult{}, err
	}
	b = appendUvarint(b, env.ID)
	b = appendString(b, env.Err)
	scratch := GetBuffer()
	raw, err := AppendMessage(*scratch, env.Payload)
	if err != nil {
		PutBuffer(scratch)
		return b, FlateResult{}, err
	}
	var res FlateResult
	b, res = appendCompressed(b, raw)
	*scratch = raw
	PutBuffer(scratch)
	return b, res, nil
}

// DecodeReplyEnvelopeFlate decodes a reply envelope body produced by
// AppendReplyEnvelopeFlate (or AppendReplyEnvelope; sub-threshold frames
// are byte-identical).
func DecodeReplyEnvelopeFlate(b []byte) (ReplyEnvelope, error) {
	var env ReplyEnvelope
	var err error
	if env.ID, b, err = decodeUvarint(b); err != nil {
		return env, err
	}
	if env.Err, b, err = decodeString(b); err != nil {
		return env, err
	}
	if len(b) < 1 {
		return env, ErrShortBuffer
	}
	switch b[0] {
	case TagNone:
		b = b[1:]
	case TagErrKind:
		if len(b) < 2 {
			return env, ErrShortBuffer
		}
		env.ErrKind = b[1]
		b = b[2:]
	default:
		if env.Payload, b, err = decodeMessageMaybeCompressed(b); err != nil {
			return env, err
		}
	}
	if len(b) != 0 {
		return env, fmt.Errorf("wire: %d trailing bytes after reply envelope", len(b))
	}
	return env, nil
}
