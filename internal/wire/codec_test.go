package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"pqs/internal/ts"
)

// binaryRoundTrip encodes msg with the binary codec and decodes it back.
func binaryRoundTrip(t *testing.T, msg any) any {
	t.Helper()
	b, err := AppendMessage(nil, msg)
	if err != nil {
		t.Fatalf("AppendMessage(%T): %v", msg, err)
	}
	out, rest, err := DecodeMessage(b)
	if err != nil {
		t.Fatalf("DecodeMessage(%T): %v", msg, err)
	}
	if len(rest) != 0 {
		t.Fatalf("DecodeMessage(%T): %d trailing bytes", msg, len(rest))
	}
	return out
}

// gobRoundTrip encodes msg with encoding/gob (through an Envelope, as the
// gob transport path does) and decodes it back.
func gobRoundTrip(t *testing.T, msg any) any {
	t.Helper()
	RegisterGob()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Envelope{ID: 1, Payload: msg}); err != nil {
		t.Fatalf("gob encode %T: %v", msg, err)
	}
	var out Envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode %T: %v", msg, err)
	}
	return out.Payload
}

// randBytes draws a value/sig field biased toward the edge cases the codecs
// must agree on: nil, empty, and occasionally large slices.
func randBytes(r *rand.Rand) []byte {
	switch r.Intn(5) {
	case 0:
		return nil
	case 1:
		return []byte{}
	case 2:
		b := make([]byte, 16+r.Intn(64))
		r.Read(b)
		return b
	case 3:
		b := make([]byte, 4096+r.Intn(8192)) // large value
		r.Read(b)
		return b
	default:
		b := make([]byte, 1+r.Intn(8))
		r.Read(b)
		return b
	}
}

func randKey(r *rand.Rand) string {
	if r.Intn(8) == 0 {
		return ""
	}
	return fmt.Sprintf("key-%d/%s", r.Intn(1000), strings.Repeat("x", r.Intn(40)))
}

func randStamp(r *rand.Rand) ts.Stamp {
	return ts.Stamp{Counter: r.Uint64() >> uint(r.Intn(64)), Writer: uint32(r.Uint32() >> uint(r.Intn(32)))}
}

func randItems(r *rand.Rand) []Item {
	switch r.Intn(4) {
	case 0:
		return nil
	case 1:
		return []Item{}
	default:
		items := make([]Item, r.Intn(20))
		for i := range items {
			items[i] = Item{Key: randKey(r), Value: randBytes(r), Stamp: randStamp(r), Sig: randBytes(r)}
		}
		return items
	}
}

// TestBinaryMatchesGobRoundTrip is the codec equivalence property of the
// data-plane fast path: for every one of the 10 wire message types, decoding
// a binary encoding yields exactly what decoding a gob encoding yields —
// including the nil/empty-slice normalization gob performs and multi-KB
// values.
func TestBinaryMatchesGobRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const trials = 200
	for i := 0; i < trials; i++ {
		msgs := []any{
			ReadRequest{Key: randKey(r)},
			ReadReply{Found: r.Intn(2) == 0, Value: randBytes(r), Stamp: randStamp(r), Sig: randBytes(r)},
			WriteRequest{Key: randKey(r), Value: randBytes(r), Stamp: randStamp(r), Sig: randBytes(r)},
			WriteReply{Stored: r.Intn(2) == 0},
			GossipRequest{Entries: randItems(r)},
			GossipReply{Entries: randItems(r)},
			PingRequest{},
			PingReply{ServerID: r.Intn(1 << 20)},
			GossipDeltaRequest{Since: r.Uint64() >> uint(r.Intn(64)), Entries: randItems(r)},
			GossipDeltaReply{UpTo: r.Uint64() >> uint(r.Intn(64)), Entries: randItems(r)},
		}
		for _, m := range msgs {
			viaBinary := binaryRoundTrip(t, m)
			viaGob := gobRoundTrip(t, m)
			if !reflect.DeepEqual(viaBinary, viaGob) {
				t.Fatalf("trial %d, %T:\n binary RT: %#v\n    gob RT: %#v", i, m, viaBinary, viaGob)
			}
		}
	}
}

func TestBinaryEnvelopeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		env := Envelope{
			ID:      r.Uint64(),
			Payload: WriteRequest{Key: randKey(r), Value: randBytes(r), Stamp: randStamp(r), Sig: randBytes(r)},
		}
		b, err := AppendEnvelope(nil, env)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeEnvelope(b)
		if err != nil {
			t.Fatal(err)
		}
		want := Envelope{ID: env.ID, Payload: gobRoundTrip(t, env.Payload)}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("envelope round trip:\n got: %#v\nwant: %#v", got, want)
		}
	}
}

func TestBinaryReplyEnvelopeRoundTrip(t *testing.T) {
	cases := []ReplyEnvelope{
		{ID: 1, Payload: WriteReply{Stored: true}},
		{ID: 2, Err: "storage exploded"}, // nil payload, unclassified error
		{ID: 3, Payload: ReadReply{Found: true, Value: []byte("v"), Stamp: ts.Stamp{Counter: 9, Writer: 2}}},
		{ID: 1<<64 - 1, Payload: PingReply{ServerID: 41}},
		{ID: 4, Err: "overloaded", ErrKind: ErrKindTransient},
		{ID: 5, Err: "bad codec", ErrKind: ErrKindPermanent},
	}
	for _, env := range cases {
		b, err := AppendReplyEnvelope(nil, env)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeReplyEnvelope(b)
		if err != nil {
			t.Fatalf("%+v: %v", env, err)
		}
		if got.ID != env.ID || got.Err != env.Err || got.ErrKind != env.ErrKind {
			t.Fatalf("reply round trip: got %+v want %+v", got, env)
		}
		if (got.Payload == nil) != (env.Payload == nil) {
			t.Fatalf("payload presence: got %+v want %+v", got, env)
		}
	}
}

// TestReplyEnvelopeErrKindSkew pins the version-skew story for the ErrKind
// extension (tag 9): unclassified error replies stay byte-identical to the
// legacy layout (TagNone in the payload slot), a new decoder reading a
// legacy error reply degrades to ErrKindUnknown, and a legacy decoder
// meeting a classified reply fails loudly with ErrUnknownTag — the package's
// documented failure mode for layout extensions — never a silent desync.
func TestReplyEnvelopeErrKindSkew(t *testing.T) {
	// Unclassified error replies carry TagNone: the exact legacy bytes.
	legacy, err := AppendReplyEnvelope(nil, ReplyEnvelope{ID: 7, Err: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	if got := legacy[len(legacy)-1]; got != TagNone {
		t.Fatalf("unclassified error reply ends in tag %d, want TagNone", got)
	}
	dec, err := DecodeReplyEnvelope(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ErrKind != ErrKindUnknown {
		t.Fatalf("legacy error reply decoded with ErrKind %d, want Unknown", dec.ErrKind)
	}

	// A classified reply puts TagErrKind in the payload slot; a decoder
	// predating the tag (simulated by handing the slot to DecodeMessage,
	// which is exactly what the old DecodeReplyEnvelope did) rejects it.
	classified, err := AppendReplyEnvelope(nil, ReplyEnvelope{ID: 7, Err: "boom", ErrKind: ErrKindTransient})
	if err != nil {
		t.Fatal(err)
	}
	slot := classified[len(classified)-2:]
	if slot[0] != TagErrKind {
		t.Fatalf("classified error reply payload slot starts with tag %d, want TagErrKind", slot[0])
	}
	if _, _, err := DecodeMessage(slot); !errors.Is(err, ErrUnknownTag) {
		t.Fatalf("legacy decode of TagErrKind slot: err = %v, want ErrUnknownTag", err)
	}

	// A truncated classified reply (tag without its kind byte) is rejected
	// before any field is trusted.
	if _, err := DecodeReplyEnvelope(classified[:len(classified)-1]); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("truncated ErrKind slot: err = %v, want ErrShortBuffer", err)
	}
}

func TestAppendMessageRejectsUnknownType(t *testing.T) {
	if _, err := AppendMessage(nil, struct{ X int }{1}); err == nil {
		t.Fatal("expected error for non-wire payload type")
	}
}

func TestDecodeMessageRejectsCorruptInput(t *testing.T) {
	cases := [][]byte{
		nil,                 // empty
		{99},                // unknown tag
		{TagReadRequest},    // missing key length
		{TagReadReply, 1},   // truncated after found
		{TagGossipReq, 250}, // item count exceeding buffer
	}
	for _, b := range cases {
		if _, _, err := DecodeMessage(b); err == nil {
			t.Errorf("DecodeMessage(%v) accepted corrupt input", b)
		}
	}
	// A huge length prefix must be rejected before allocation.
	b := append([]byte{TagReadRequest}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, _, err := DecodeMessage(b); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("huge length: err = %v, want ErrShortBuffer", err)
	}
}

// FuzzDecodeMessage asserts the decoders never panic or over-allocate on
// arbitrary bytes: whatever DecodeMessage accepts must re-encode, and the
// compressed-capable envelope decoders must error (not panic, not desync)
// on truncated or corrupted deflate streams and lying length prefixes.
func FuzzDecodeMessage(f *testing.F) {
	seed, err := AppendMessage(nil, WriteRequest{Key: "k", Value: []byte("v"), Stamp: ts.Stamp{Counter: 1, Writer: 2}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{TagGossipReq, 3, 1, 'k', 0, 1, 1, 0})
	f.Add([]byte{})
	// A well-formed compressed request envelope, plus truncated and
	// corrupted variants and a lying rawLen prefix, to steer the fuzzer
	// into the inflate path.
	env := Envelope{ID: 3, Payload: WriteRequest{Key: "k", Value: bytes.Repeat([]byte("abcd"), 512)}}
	comp, res, err := AppendEnvelopeFlate(nil, env)
	if err != nil {
		f.Fatal(err)
	}
	if !res.Compressed {
		f.Fatal("fuzz seed envelope unexpectedly raw")
	}
	f.Add(comp)
	f.Add(comp[:len(comp)/2])
	corrupt := append([]byte{}, comp...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	lying := append([]byte{}, comp...)
	lying[2] ^= 0x55 // inside the rawLen uvarint
	f.Add(lying)
	f.Add([]byte{TagCompressed, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		// The compressed-capable decoders must never panic; errors are the
		// expected outcome for hostile input.
		_, _ = DecodeEnvelopeFlate(data)
		_, _ = DecodeReplyEnvelopeFlate(data)
		msg, _, err := DecodeMessage(data)
		if err != nil {
			return
		}
		if _, err := AppendMessage(nil, msg); err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
	})
}

func TestBufferPool(t *testing.T) {
	b := GetBuffer()
	if len(*b) != 0 {
		t.Fatalf("pooled buffer has length %d", len(*b))
	}
	*b = append(*b, make([]byte, 1024)...)
	PutBuffer(b)
	b2 := GetBuffer()
	if len(*b2) != 0 {
		t.Fatalf("recycled buffer has length %d", len(*b2))
	}
	PutBuffer(b2)
}

// Codec activity counters are per-connection now (transport.ConnCodecStats);
// TestTCPStatsAndCoalescing and the admin endpoint test cover them.
