package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pqs/internal/combin"
)

// TestEpsilonBoundDominatesExactQuick samples random (n, q) configurations
// and checks the Theorem 3.16 relationship ε_exact <= e^{-ℓ²} everywhere,
// not just at the table sizes.
func TestEpsilonBoundDominatesExactQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(600)
		q := 1 + rng.Intn(n/2)
		e, err := NewEpsilonIntersecting(n, q)
		if err != nil {
			return false
		}
		return e.Epsilon() <= e.EpsilonBound()+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestDisseminationAtLeastIntersectingQuick: for any b >= 0, the
// dissemination ε (intersection swallowed by B) is at least the plain
// non-intersection probability, and both lie in [0, 1].
func TestDisseminationAtLeastIntersectingQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(300)
		q := 1 + rng.Intn(n/3+1)
		b := rng.Intn(n - q + 1)
		if b >= n {
			return true
		}
		d, err := NewDissemination(n, q, b)
		if err != nil {
			return false
		}
		plain := combin.ProbDisjoint(n, q, q)
		eps := d.Epsilon()
		return eps >= plain-1e-15 && eps >= 0 && eps <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMaskingEpsilonDominatedByComponentsQuick: the exact masking error is
// at most P(X >= k) + P(Y < k | worst case) + cross terms — concretely, it
// must always be at least each individual failure mode's probability and at
// most their sum computed by the union bound with the conditional Y
// distribution. We check the cheap direction (>= P(X >= k)) plus range.
func TestMaskingEpsilonDominatedByComponentsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(300)
		q := 2 + rng.Intn(n/2)
		b := rng.Intn(q / 2)
		if q > n-b {
			return true
		}
		m, err := NewMasking(n, q, b)
		if err != nil {
			return false
		}
		eps := m.Epsilon()
		pxk := combin.HypergeomTailGE(n, b, q, m.K())
		return eps >= pxk-1e-12 && eps >= 0 && eps <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSolversAreMinimalQuick: the minimal-q solvers return a q that meets
// the target while q-1 does not (when q > 1), across random targets.
func TestSolversAreMinimalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(400)
		eps := []float64{0.1, 0.01, 1e-3, 1e-4}[rng.Intn(4)]
		q, err := MinQForEpsilon(n, eps)
		if err != nil {
			return false
		}
		if combin.ProbDisjoint(n, q, q) > eps {
			return false
		}
		if q > 1 && combin.ProbDisjoint(n, q-1, q-1) <= eps {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
