package core

import (
	"math"
	"testing"
)

func TestEpsilonIntersectingPaperTable2(t *testing.T) {
	// Table 2: n, ℓ, quorum size, fault tolerance.
	cases := []struct {
		n    int
		ell  float64
		q, a int
	}{
		{25, 1.80, 9, 17},
		{100, 2.20, 22, 79},
		{225, 2.40, 36, 190},
		{400, 2.45, 49, 352},
		{625, 2.48, 62, 564},
		{900, 2.50, 75, 826},
	}
	for _, c := range cases {
		e, err := NewEpsilonIntersectingEll(c.n, c.ell)
		if err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		if e.QuorumSize() != c.q {
			t.Errorf("n=%d: quorum size %d, want %d", c.n, e.QuorumSize(), c.q)
		}
		if e.FaultTolerance() != c.a {
			t.Errorf("n=%d: fault tolerance %d, want %d", c.n, e.FaultTolerance(), c.a)
		}
		if load, want := e.Load(), float64(c.q)/float64(c.n); math.Abs(load-want) > 1e-12 {
			t.Errorf("n=%d: load %v, want %v", c.n, load, want)
		}
	}
}

func TestEpsilonExactBelowBound(t *testing.T) {
	// Lemma 3.15 / Theorem 3.16: exact ε < e^{-ℓ²}.
	for _, n := range []int{25, 100, 300, 900} {
		for q := 2; q*2 <= n; q += 3 {
			e, err := NewEpsilonIntersecting(n, q)
			if err != nil {
				t.Fatal(err)
			}
			if e.Epsilon() > e.EpsilonBound()+1e-15 {
				t.Errorf("n=%d q=%d: exact %v exceeds bound %v", n, q, e.Epsilon(), e.EpsilonBound())
			}
		}
	}
}

func TestEpsilonDecreasingInQ(t *testing.T) {
	n := 144
	prev := 1.1
	for q := 1; q <= n/2+1; q++ {
		e, err := NewEpsilonIntersecting(n, q)
		if err != nil {
			t.Fatal(err)
		}
		eps := e.Epsilon()
		if eps > prev+1e-15 {
			t.Fatalf("epsilon not decreasing at q=%d: %v > %v", q, eps, prev)
		}
		prev = eps
	}
}

func TestMinQForEpsilon(t *testing.T) {
	for _, c := range []struct {
		n   int
		eps float64
	}{{100, 1e-3}, {100, 1e-6}, {400, 1e-3}, {49, 0.01}} {
		q, err := MinQForEpsilon(c.n, c.eps)
		if err != nil {
			t.Fatalf("n=%d eps=%v: %v", c.n, c.eps, err)
		}
		e, err := NewEpsilonIntersecting(c.n, q)
		if err != nil {
			t.Fatal(err)
		}
		if e.Epsilon() > c.eps {
			t.Errorf("n=%d: q=%d has eps %v > %v", c.n, q, e.Epsilon(), c.eps)
		}
		if q > 1 {
			e2, err := NewEpsilonIntersecting(c.n, q-1)
			if err != nil {
				t.Fatal(err)
			}
			if e2.Epsilon() <= c.eps {
				t.Errorf("n=%d: q=%d not minimal (q-1 gives %v)", c.n, q, e2.Epsilon())
			}
		}
	}
	if _, err := MinQForEpsilon(10, 0); err == nil {
		t.Error("eps=0 must be rejected")
	}
	if _, err := MinQForEpsilon(10, 1); err == nil {
		t.Error("eps=1 must be rejected")
	}
}

func TestDisseminationReducesToIntersecting(t *testing.T) {
	// With b = 0, P(Q∩Q' ⊆ ∅) is exactly the non-intersection probability.
	d, err := NewDissemination(100, 22, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEpsilonIntersecting(100, 22)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Epsilon()-e.Epsilon()) > 1e-15 {
		t.Errorf("b=0 dissemination eps %v != intersecting eps %v", d.Epsilon(), e.Epsilon())
	}
}

func TestDisseminationExactBelowBound(t *testing.T) {
	// Theorem 4.4 (b = n/3) and Theorem 4.6 (b = αn): exact ≤ bound.
	for _, c := range []struct{ n, q, b int }{
		{99, 30, 33},   // b = n/3
		{90, 25, 30},   // b = n/3
		{100, 40, 50},  // α = 1/2
		{100, 30, 60},  // α = 0.6, q <= n-b
		{400, 80, 200}, // α = 1/2, larger n
	} {
		d, err := NewDissemination(c.n, c.q, c.b)
		if err != nil {
			t.Fatalf("n=%d q=%d b=%d: %v", c.n, c.q, c.b, err)
		}
		if d.Epsilon() > d.EpsilonBound()+1e-15 {
			t.Errorf("n=%d q=%d b=%d: exact %v exceeds bound %v",
				c.n, c.q, c.b, d.Epsilon(), d.EpsilonBound())
		}
	}
}

func TestDisseminationEpsilonIncreasesWithB(t *testing.T) {
	n, q := 225, 37
	prev := -1.0
	for b := 0; b <= n-q; b += 15 {
		d, err := NewDissemination(n, q, b)
		if err != nil {
			t.Fatal(err)
		}
		eps := d.Epsilon()
		if eps < prev-1e-15 {
			t.Fatalf("epsilon not increasing in b at b=%d", b)
		}
		prev = eps
	}
}

func TestDisseminationValidation(t *testing.T) {
	// Definition 4.1 requires A > b, i.e. q <= n-b.
	if _, err := NewDissemination(100, 80, 30); err == nil {
		t.Error("q > n-b must be rejected")
	}
	if _, err := NewDissemination(100, 22, -1); err == nil {
		t.Error("negative b must be rejected")
	}
	if _, err := NewDissemination(100, 22, 100); err == nil {
		t.Error("b >= n must be rejected")
	}
}

func TestMinQForDissemination(t *testing.T) {
	n, b := 100, 10
	q, err := MinQForDissemination(n, b, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDissemination(n, q, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Epsilon() > 1e-3 {
		t.Errorf("q=%d gives eps %v", q, d.Epsilon())
	}
	if q > 1 {
		d2, err := NewDissemination(n, q-1, b)
		if err == nil && d2.Epsilon() <= 1e-3 {
			t.Errorf("q=%d not minimal", q)
		}
	}
	// Impossible target: n=10 with b=8 cannot reach 1e-9 (q <= 2).
	if _, err := MinQForDissemination(10, 8, 1e-9); err == nil {
		t.Error("unreachable epsilon must error")
	}
}

func TestMaskingThresholdChoice(t *testing.T) {
	// Paper Section 5.3: k = q²/2n. For n=100, q=38: k = ceil(7.22) = 8.
	m, err := NewMasking(100, 38, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 8 {
		t.Errorf("k = %d, want 8", m.K())
	}
	// k must sit strictly between E|Q∩B| and E|Q∩Q'\B| (Section 5.3).
	eBad := float64(38*38) / (float64(38) / 4 * 100) // q²/ℓn with ℓ=q/b
	eGood := float64(38*38) / 100 * (1 - float64(38)/(float64(38)/4*100))
	if float64(m.K()) <= eBad || float64(m.K()) >= eGood {
		t.Errorf("k=%d outside (E[X]=%v, E[Y]=%v)", m.K(), eBad, eGood)
	}
}

func TestMaskingExactBelowBound(t *testing.T) {
	// Theorem 5.10: exact ε ≤ 2exp(-(q²/n)min{ψ1,ψ2}) for ℓ = q/b > 2.
	for _, c := range []struct{ n, q, b int }{
		{100, 38, 4},
		{225, 64, 7},
		{400, 94, 9},
		{625, 123, 12},
		{900, 152, 14},
		{400, 120, 20}, // ℓ = 6
	} {
		m, err := NewMasking(c.n, c.q, c.b)
		if err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		if m.Ell() <= 2 {
			t.Fatalf("test case must have ℓ > 2")
		}
		if m.Epsilon() > m.EpsilonBound()+1e-15 {
			t.Errorf("n=%d q=%d b=%d: exact %v exceeds bound %v",
				c.n, c.q, c.b, m.Epsilon(), m.EpsilonBound())
		}
	}
}

func TestMaskingPaperTable4(t *testing.T) {
	// Table 4: ℓ (as q/√n), quorum size, fault tolerance; all with ε ≤ 1e-3
	// by the paper's claim — our exact computation confirms for these rows.
	cases := []struct {
		n, b int
		ell  float64
		q, a int
	}{
		{100, 4, 3.80, 38, 63},
		{225, 7, 4.27, 64, 162},
		{400, 9, 4.70, 94, 307},
		{625, 12, 4.92, 123, 503},
		{900, 14, 5.07, 152, 749},
	}
	for _, c := range cases {
		q := QFromEll(c.n, c.ell)
		if q != c.q {
			t.Errorf("n=%d: derived q=%d, want %d", c.n, q, c.q)
		}
		m, err := NewMasking(c.n, c.q, c.b)
		if err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		if m.FaultTolerance() != c.a {
			t.Errorf("n=%d: fault tolerance %d, want %d", c.n, m.FaultTolerance(), c.a)
		}
	}
}

func TestMaskingValidation(t *testing.T) {
	if _, err := NewMaskingWithK(100, 20, 4, 0); err == nil {
		t.Error("k < 1 must be rejected")
	}
	if _, err := NewMaskingWithK(100, 20, 4, 21); err == nil {
		t.Error("k > q must be rejected")
	}
	if _, err := NewMasking(100, 97, 4); err == nil {
		t.Error("q > n-b must be rejected")
	}
	if _, err := NewMasking(100, 38, -2); err == nil {
		t.Error("negative b must be rejected")
	}
}

func TestMinQForMasking(t *testing.T) {
	n, b := 400, 9
	q, err := MinQForMasking(n, b, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMasking(n, q, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epsilon() > 1e-3 {
		t.Errorf("q=%d gives eps %v", q, m.Epsilon())
	}
	// Paper's Table 4 uses q=94 for this row; the solver must not do worse.
	if q > 94 {
		t.Errorf("solver q=%d exceeds paper's 94", q)
	}
}

func TestPsiFactors(t *testing.T) {
	// Paper remark after Theorem 5.10: ℓ=3 gives ε ≤ 2e^{-q²/48n}; ℓ=20
	// gives ε ≤ 2e^{-q²/10n} (approximately; ψ is the min of the factors).
	if got := math.Min(Psi1(3), Psi2(3)); math.Abs(got-1.0/48) > 1e-9 {
		t.Errorf("min psi at ℓ=3: %v, want 1/48", got)
	}
	got := math.Min(Psi1(20), Psi2(20))
	if got < 1.0/12 || got > 1.0/9 {
		t.Errorf("min psi at ℓ=20: %v, want ≈ 1/10", got)
	}
	if Psi1(2) != 0 || Psi2(2) != 0 {
		t.Error("psi must vanish at ℓ=2")
	}
	// ψ1 switches Chernoff regimes at ℓ = 4e; both pieces must be positive
	// on their side of the switch (the pieces are intentionally not equal
	// at the switch point — each is the valid bound in its own regime).
	if Psi1(4*math.E-1e-9) <= 0 || Psi1(4*math.E+1e-9) <= 0 {
		t.Error("psi1 must be positive around the regime switch")
	}
}

func TestConstructionMeetsLowerBounds(t *testing.T) {
	// Theorem 3.9: the R(n, q) load q/n must respect the general lower bound.
	for _, c := range []struct{ n, q int }{{100, 22}, {400, 49}, {900, 75}} {
		e, err := NewEpsilonIntersecting(c.n, c.q)
		if err != nil {
			t.Fatal(err)
		}
		lb := LoadLowerBoundIntersecting(c.n, float64(c.q), e.Epsilon())
		if e.Load() < lb-1e-12 {
			t.Errorf("n=%d q=%d: load %v below Thm 3.9 bound %v", c.n, c.q, e.Load(), lb)
		}
		glb := LoadLowerBoundIntersectingGlobal(c.n, e.Epsilon())
		if e.Load() < glb-1e-12 {
			t.Errorf("n=%d q=%d: load %v below Cor 3.12 bound %v", c.n, c.q, e.Load(), glb)
		}
	}
	// Theorem 5.5 for the masking construction.
	for _, c := range []struct{ n, q, b int }{{100, 38, 4}, {400, 94, 9}} {
		m, err := NewMasking(c.n, c.q, c.b)
		if err != nil {
			t.Fatal(err)
		}
		lb := LoadLowerBoundMasking(c.n, c.b, m.Epsilon())
		if m.Load() < lb-1e-12 {
			t.Errorf("n=%d q=%d b=%d: load %v below Thm 5.5 bound %v", c.n, c.q, c.b, m.Load(), lb)
		}
	}
}

func TestMaskingBeatsStrictLoadBound(t *testing.T) {
	// Section 5.5: for b = Θ(√n), choosing ℓ = n^{1/5} yields load O(n^{-0.3})
	// beating the strict Ω(√(b/n)) = Ω(n^{-1/4}) bound. Verify at n = 10000:
	// b = 100, ℓ = n^{1/5} ≈ 6.31, q = ℓb ≈ 631.
	n := 10000
	b := 100
	ell := math.Pow(float64(n), 0.2)
	q := int(math.Ceil(ell * float64(b)))
	m, err := NewMasking(n, q, b)
	if err != nil {
		t.Fatal(err)
	}
	strictBound := MaskLoadLowerBound(n, b)
	if m.Load() >= strictBound {
		t.Errorf("masking load %v does not beat strict bound %v", m.Load(), strictBound)
	}
	if m.Epsilon() > 1e-3 {
		t.Errorf("epsilon %v exceeds the paper's working guarantee", m.Epsilon())
	}
}

func TestTable1Bounds(t *testing.T) {
	n := 100
	if got := StrictLoadLowerBound(n); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("strict bound %v, want 0.1", got)
	}
	if got := DissemLoadLowerBound(n, 3); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("dissem bound %v, want 0.2", got)
	}
	if got := MaskLoadLowerBound(n, 12); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mask bound %v, want 0.5", got)
	}
}

func TestStrictFailLowerBound(t *testing.T) {
	n := 300
	// At p >= 1/2 the bound must be at most p (singleton branch).
	for _, p := range []float64{0.5, 0.6, 0.9} {
		if got := StrictFailLowerBound(n, p); got > p+1e-15 {
			t.Errorf("p=%v: bound %v exceeds singleton", p, got)
		}
	}
	// For p < 1/2 it must equal the majority failure probability and be tiny.
	if got := StrictFailLowerBound(n, 0.3); got > 1e-10 {
		t.Errorf("p=0.3: bound %v suspiciously large", got)
	}
	if StrictFailLowerBound(n, 0) != 0 || StrictFailLowerBound(n, 1) != 1 {
		t.Error("edge values wrong")
	}
	// Monotone in p.
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.01 {
		v := StrictFailLowerBound(n, p)
		if v < prev-1e-12 {
			t.Fatalf("bound not monotone at p=%v", p)
		}
		prev = v
	}
}

func TestProbabilisticBeatsStrictFailureProbability(t *testing.T) {
	// The headline claim of Figures 1-3: for p in [1/2, 1-ℓ/√n] the
	// construction's failure probability beats the strict lower bound.
	e, err := NewEpsilonIntersectingEll(100, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.5, 0.55, 0.6, 0.65, 0.7} {
		ours := e.FailProb(p)
		bound := StrictFailLowerBound(100, p)
		if ours >= bound {
			t.Errorf("p=%v: probabilistic F_p %v not below strict bound %v", p, ours, bound)
		}
	}
}

func TestEllAccessors(t *testing.T) {
	e, _ := NewEpsilonIntersecting(100, 22)
	if math.Abs(e.Ell()-2.2) > 1e-12 {
		t.Errorf("Ell = %v, want 2.2", e.Ell())
	}
	d, _ := NewDissemination(100, 22, 10)
	if math.Abs(d.Ell()-2.2) > 1e-12 {
		t.Errorf("dissem Ell = %v", d.Ell())
	}
	if d.B() != 10 {
		t.Errorf("B = %d", d.B())
	}
	m, _ := NewMasking(100, 40, 10)
	if math.Abs(m.Ell()-4) > 1e-12 {
		t.Errorf("masking Ell = %v, want 4 (q/b)", m.Ell())
	}
	m0, _ := NewMasking(100, 40, 0)
	if !math.IsInf(m0.Ell(), 1) {
		t.Error("masking Ell with b=0 must be +Inf")
	}
}
