// Package core implements the probabilistic quorum systems of Malkhi,
// Reiter, Wool and Wright: ε-intersecting quorum systems (Section 3),
// (b, ε)-dissemination quorum systems (Section 4) and (b, ε)-masking quorum
// systems (Section 5), all instantiated over the uniform construction
// R(n, q) / R_k(n, q) of Definitions 3.13 and 5.6.
//
// Each construction exposes two ε values: Epsilon, the exact
// non-intersection (or threshold-failure) probability computed from
// hypergeometric identities, and EpsilonBound, the closed-form bound the
// paper proves (Theorems 3.16, 4.4, 4.6 and 5.10). The exact value is always
// at most the bound; tests enforce this.
//
// The package also provides the paper's lower bounds on load
// (Theorems 3.9 and 5.5, and the strict-system bounds of Table 1) and
// solvers that pick the smallest quorum size achieving a target ε.
package core

import (
	"fmt"
	"math"

	"pqs/internal/combin"
	"pqs/internal/quorum"
)

// EpsilonIntersecting is the ε-intersecting quorum system R(n, ℓ√n) of
// Section 3.4: all q-subsets of the universe under the uniform access
// strategy. It embeds the carrier set system and adds the probabilistic
// consistency analysis.
type EpsilonIntersecting struct {
	*quorum.Uniform
}

// NewEpsilonIntersecting returns R(n, q) viewed as an ε-intersecting quorum
// system.
func NewEpsilonIntersecting(n, q int) (*EpsilonIntersecting, error) {
	u, err := quorum.NewUniform(n, q)
	if err != nil {
		return nil, err
	}
	return &EpsilonIntersecting{Uniform: u}, nil
}

// NewEpsilonIntersectingEll returns R(n, round(ℓ√n)), the paper's preferred
// parameterization. Rounding to nearest reproduces every quorum size in
// Tables 2-4 for the paper's ℓ values.
func NewEpsilonIntersectingEll(n int, ell float64) (*EpsilonIntersecting, error) {
	if ell <= 0 {
		return nil, fmt.Errorf("core: ell %v must be positive", ell)
	}
	return NewEpsilonIntersecting(n, QFromEll(n, ell))
}

// QFromEll converts the paper's ℓ parameter to a quorum size, q = round(ℓ√n).
func QFromEll(n int, ell float64) int {
	return int(math.Round(ell * math.Sqrt(float64(n))))
}

// Ell returns ℓ = q/√n.
func (e *EpsilonIntersecting) Ell() float64 {
	return float64(e.QuorumSize()) / math.Sqrt(float64(e.N()))
}

// Epsilon returns the exact probability that two quorums chosen by the
// strategy fail to intersect: C(n-q, q)/C(n, q).
func (e *EpsilonIntersecting) Epsilon() float64 { return e.NonIntersectProb() }

// EpsilonBound returns the paper's closed-form bound e^{-ℓ²}
// (Theorem 3.16 via Lemma 3.15).
func (e *EpsilonIntersecting) EpsilonBound() float64 {
	l := e.Ell()
	return math.Exp(-l * l)
}

// MinQForEpsilon returns the smallest quorum size q such that R(n, q) is
// ε'-intersecting with exact ε' <= eps. The exact non-intersection
// probability is strictly decreasing in q, so the scan terminates at the
// optimum. It returns an error if even q = n misses the target (impossible
// for eps > 0, since ε = 0 once q > n/2).
func MinQForEpsilon(n int, eps float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("core: epsilon target %v outside (0, 1)", eps)
	}
	for q := 1; q <= n; q++ {
		if combin.ProbDisjoint(n, q, q) <= eps {
			return q, nil
		}
	}
	return 0, fmt.Errorf("core: no quorum size over %d servers achieves epsilon %v", n, eps)
}

// Dissemination is the (b, ε)-dissemination quorum system of Section 4:
// R(n, q) used with self-verifying data against up to b Byzantine servers.
// Definition 4.1 additionally requires crash fault tolerance above b, which
// the constructor enforces (q <= n-b).
type Dissemination struct {
	*quorum.Uniform
	b int
}

// NewDissemination returns R(n, q) viewed as a (b, ε)-dissemination quorum
// system.
func NewDissemination(n, q, b int) (*Dissemination, error) {
	if b < 0 || b >= n {
		return nil, fmt.Errorf("core: byzantine threshold %d outside [0, %d)", b, n)
	}
	u, err := quorum.NewUniform(n, q)
	if err != nil {
		return nil, err
	}
	if u.FaultTolerance() <= b {
		return nil, fmt.Errorf("core: fault tolerance %d must exceed b=%d (need q <= n-b; Definition 4.1)",
			u.FaultTolerance(), b)
	}
	return &Dissemination{Uniform: u, b: b}, nil
}

// NewDisseminationEll returns R(n, ceil(ℓ√n)) as a (b, ε)-dissemination
// system.
func NewDisseminationEll(n, b int, ell float64) (*Dissemination, error) {
	if ell <= 0 {
		return nil, fmt.Errorf("core: ell %v must be positive", ell)
	}
	return NewDissemination(n, QFromEll(n, ell), b)
}

// B returns the number of Byzantine failures tolerated.
func (d *Dissemination) B() int { return d.b }

// Ell returns ℓ = q/√n.
func (d *Dissemination) Ell() float64 {
	return float64(d.QuorumSize()) / math.Sqrt(float64(d.N()))
}

// Epsilon returns the exact probability that two chosen quorums intersect
// only inside a worst-case Byzantine set B of size b:
// P(Q ∩ Q' ⊆ B), which by symmetry of the uniform strategy is the same for
// every B of that size.
func (d *Dissemination) Epsilon() float64 {
	return combin.ProbIntersectWithin(d.N(), d.QuorumSize(), d.b)
}

// EpsilonBound returns the paper's closed-form bound: 2e^{-ℓ²/6} when
// b <= n/3 (Theorem 4.4), and for b = αn with 1/3 < α < 1 the generalized
// bound ε_α = 2/(1-α) · α^{ℓ²(1-√α)/2} (Theorem 4.6). For α where both
// apply, the minimum is returned.
func (d *Dissemination) EpsilonBound() float64 {
	l := d.Ell()
	alpha := float64(d.b) / float64(d.N())
	bound := math.Inf(1)
	if 3*d.b <= d.N() {
		bound = 2 * math.Exp(-l*l/6)
	}
	if alpha > 0 && alpha < 1 {
		ea := 2 / (1 - alpha) * math.Pow(alpha, l*l*(1-math.Sqrt(alpha))/2)
		if ea < bound {
			bound = ea
		}
	}
	if math.IsInf(bound, 1) {
		return 1
	}
	return math.Min(bound, 1)
}

// MinQForDissemination returns the smallest q such that the exact
// dissemination ε over n servers with b Byzantine failures is at most eps,
// subject to the Definition 4.1 constraint q <= n-b.
func MinQForDissemination(n, b int, eps float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("core: epsilon target %v outside (0, 1)", eps)
	}
	if b < 0 || b >= n {
		return 0, fmt.Errorf("core: byzantine threshold %d outside [0, %d)", b, n)
	}
	for q := 1; q <= n-b; q++ {
		if combin.ProbIntersectWithin(n, q, b) <= eps {
			return q, nil
		}
	}
	return 0, fmt.Errorf("core: no quorum size over %d servers with b=%d achieves epsilon %v", n, b, eps)
}

// Masking is the (b, ε)-masking quorum system R_k(n, q) of Section 5.2:
// R(n, q) together with the read-acceptance threshold k. A reading client
// accepts a value only if at least k servers vouch for it; k is chosen
// between E|Q∩B| = q²/ℓn and E|Q∩Q'\B| ≈ q²/n so that with probability
// 1-ε the faulty servers fall short of the threshold while the up-to-date
// correct servers exceed it.
type Masking struct {
	*quorum.Uniform
	b, k int
}

// NewMasking returns R_k(n, q) with the paper's threshold choice
// k = ceil(q²/2n) (Section 5.3).
func NewMasking(n, q, b int) (*Masking, error) {
	k := int(math.Ceil(float64(q) * float64(q) / (2 * float64(n))))
	if k < 1 {
		k = 1
	}
	return NewMaskingWithK(n, q, b, k)
}

// NewMaskingWithK returns R_k(n, q) with an explicit threshold k, used by
// the threshold-choice ablation.
func NewMaskingWithK(n, q, b, k int) (*Masking, error) {
	if b < 0 || b >= n {
		return nil, fmt.Errorf("core: byzantine threshold %d outside [0, %d)", b, n)
	}
	if k < 1 || k > q {
		return nil, fmt.Errorf("core: read threshold %d outside [1, q=%d]", k, q)
	}
	u, err := quorum.NewUniform(n, q)
	if err != nil {
		return nil, err
	}
	if u.FaultTolerance() <= b {
		return nil, fmt.Errorf("core: fault tolerance %d must exceed b=%d (need q <= n-b; Definition 5.1)",
			u.FaultTolerance(), b)
	}
	return &Masking{Uniform: u, b: b, k: k}, nil
}

// B returns the number of Byzantine failures tolerated.
func (m *Masking) B() int { return m.b }

// K returns the read-acceptance threshold.
func (m *Masking) K() int { return m.k }

// Ell returns ℓ = q/b, the ratio the paper's masking analysis is
// parameterized by (Section 5.2). It is +Inf when b = 0.
func (m *Masking) Ell() float64 {
	if m.b == 0 {
		return math.Inf(1)
	}
	return float64(m.QuorumSize()) / float64(m.b)
}

// Epsilon returns the exact probability that a read/write quorum pair
// violates Definition 5.1's threshold condition for a worst-case Byzantine
// set of size b: 1 - P(|Q∩B| < k AND |Q∩Q'\B| >= k).
func (m *Masking) Epsilon() float64 {
	return combin.MaskingErrExact(m.N(), m.QuorumSize(), m.b, m.k)
}

// EpsilonBound returns the paper's closed-form bound
// 2·exp(-(q²/n)·min{ψ₁(ℓ), ψ₂(ℓ)}) of Theorem 5.10, valid for ℓ = q/b > 2.
// Outside that domain it returns 1 (the theorem gives no guarantee).
func (m *Masking) EpsilonBound() float64 {
	l := m.Ell()
	if l <= 2 {
		return 1
	}
	q := float64(m.QuorumSize())
	n := float64(m.N())
	psi := math.Min(Psi1(l), Psi2(l))
	return math.Min(1, 2*math.Exp(-q*q/n*psi))
}

// Psi1 is the exponent factor of Lemma 5.7:
// (ℓ/2-1)²/(4ℓ) for 2 < ℓ <= 4e, and 1/3 for ℓ > 4e.
func Psi1(ell float64) float64 {
	if ell <= 2 {
		return 0
	}
	if ell > 4*math.E {
		return 1.0 / 3
	}
	d := ell/2 - 1
	return d * d / (4 * ell)
}

// Psi2 is the exponent factor of Lemma 5.9: (ℓ-2)²/(8ℓ(ℓ-1)).
func Psi2(ell float64) float64 {
	if ell <= 2 {
		return 0
	}
	d := ell - 2
	return d * d / (8 * ell * (ell - 1))
}

// MinQForMasking returns the smallest q (with the standard k = ceil(q²/2n))
// whose exact masking ε is at most eps, subject to q <= n-b. Unlike the
// plain intersection probability, the masking error is not monotone in q for
// very small q (the integer threshold jumps), so the scan checks every q.
func MinQForMasking(n, b int, eps float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("core: epsilon target %v outside (0, 1)", eps)
	}
	if b < 0 || b >= n {
		return 0, fmt.Errorf("core: byzantine threshold %d outside [0, %d)", b, n)
	}
	for q := 1; q <= n-b; q++ {
		m, err := NewMasking(n, q, b)
		if err != nil {
			continue
		}
		if m.Epsilon() <= eps {
			return q, nil
		}
	}
	return 0, fmt.Errorf("core: no quorum size over %d servers with b=%d achieves masking epsilon %v", n, b, eps)
}

// LoadLowerBoundIntersecting returns the Theorem 3.9 lower bound on the load
// of any ε-intersecting quorum system with expected quorum size eq over n
// servers: max(eq/n, (1-√ε)²/eq).
func LoadLowerBoundIntersecting(n int, eq, eps float64) float64 {
	if eps < 0 {
		eps = 0
	}
	if eps > 1 {
		eps = 1
	}
	r := 1 - math.Sqrt(eps)
	return math.Max(eq/float64(n), r*r/eq)
}

// LoadLowerBoundIntersectingGlobal returns the Corollary 3.12 bound
// (1-√ε)/√n, the minimum over all expected quorum sizes of
// LoadLowerBoundIntersecting.
func LoadLowerBoundIntersectingGlobal(n int, eps float64) float64 {
	if eps < 0 {
		eps = 0
	}
	if eps > 1 {
		eps = 1
	}
	return (1 - math.Sqrt(eps)) / math.Sqrt(float64(n))
}

// LoadLowerBoundMasking returns the Theorem 5.5 lower bound on the load of
// any (b, ε)-masking quorum system: (1-2ε)/(1-ε) · b/n (zero when ε >= 1/2,
// where the bound is vacuous).
func LoadLowerBoundMasking(n, b int, eps float64) float64 {
	if eps >= 0.5 {
		return 0
	}
	return (1 - 2*eps) / (1 - eps) * float64(b) / float64(n)
}

// StrictLoadLowerBound returns the Naor-Wool lower bound 1/√n on the load of
// any strict quorum system (Table 1).
func StrictLoadLowerBound(n int) float64 { return 1 / math.Sqrt(float64(n)) }

// DissemLoadLowerBound returns the √((b+1)/n) lower bound on the load of any
// strict b-dissemination quorum system (Table 1).
func DissemLoadLowerBound(n, b int) float64 {
	return math.Sqrt(float64(b+1) / float64(n))
}

// MaskLoadLowerBound returns the √((2b+1)/n) lower bound on the load of any
// strict b-masking quorum system (Table 1).
func MaskLoadLowerBound(n, b int) float64 {
	return math.Sqrt(float64(2*b+1) / float64(n))
}

// StrictFailLowerBound returns the lower bound on the failure probability of
// ANY strict quorum system over at most n servers at crash probability p:
// the minimum of the majority system's failure probability (optimal for
// p < 1/2) and the singleton's p (optimal for p >= 1/2), following
// Barbara-Garcia-Molina and Peleg-Wool as used for the strict curve in
// Figures 1-3.
func StrictFailLowerBound(n int, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	q := quorum.MajoritySize(n)
	maj := combin.BinomialTailGT(n, p, n-q)
	return math.Min(maj, p)
}
